package jumpslice

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/lang"
)

// fuzzAlgos are the algorithms FuzzSliceExplain sweeps; the pick byte
// indexes into this list.
var fuzzAlgos = []Algorithm{
	Agrawal, AgrawalLST, Structured, Conservative, Conventional,
	BallHorwitz, Weiser, Lyle, Gallagher, JiangZhouRobson,
}

var critRe = regexp.MustCompile(`criterion:\s*(\w+)@(\d+)`)

// FuzzSliceExplain drives the whole pipeline — parse, analysis,
// every slicing algorithm, provenance — with arbitrary programs and
// criteria. The invariants: no panic or hang anywhere; a computed
// slice materializes to source that parses again (a slice is a
// projection of the program); and the Figure 7 slice's provenance is
// computable whenever the slice is.
func FuzzSliceExplain(f *testing.F) {
	files, _ := filepath.Glob("testdata/*.mc")
	for i, fn := range files {
		data, err := os.ReadFile(fn)
		if err != nil {
			continue
		}
		src := string(data)
		v, line := "x", 1
		if m := critRe.FindStringSubmatch(src); m != nil {
			v = m[1]
			line, _ = strconv.Atoi(m[2])
		}
		f.Add(src, v, line, uint8(i))
	}
	f.Add("x = 1; write(x);", "x", 2, uint8(0))
	f.Add("while (!eof()) { read(x); if (x) break; } write(x);", "x", 4, uint8(1))

	f.Fuzz(func(t *testing.T, src, variable string, line int, algoPick uint8) {
		if len(src) > 4096 {
			// Bound per-exec analysis cost; depth and size stress lives
			// in FuzzParse.
			return
		}
		s, err := New(src)
		if err != nil {
			return
		}
		algo := fuzzAlgos[int(algoPick)%len(fuzzAlgos)]
		if _, err := s.SliceWith(algo, variable, line); err != nil {
			return // unknown criterion, unstructured program, ...
		}
		// A slice is a projection of the program: materialize it and
		// require the result to print and re-parse.
		sl, err := s.coreSlice(algo, core.Criterion{Var: variable, Line: line})
		if err != nil {
			t.Fatalf("coreSlice failed after SliceWith succeeded: %v", err)
		}
		text := lang.Format(sl.Materialize(), lang.PrintOptions{})
		if _, err := lang.Parse(text); err != nil {
			t.Fatalf("materialized %s slice does not re-parse: %v\nprogram:\n%s\nslice:\n%s",
				algo, err, src, text)
		}
		if algo == Agrawal {
			ex, err := s.Explain(variable, line)
			if err != nil {
				t.Fatalf("Explain failed for a sliceable criterion: %v\nprogram:\n%s", err, src)
			}
			for _, l := range ex.Result.Lines {
				if len(ex.Reasons[l]) == 0 {
					t.Fatalf("slice line %d has no provenance\nprogram:\n%s", l, src)
				}
			}
		}
	})
}
