package jumpslice_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/paper"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden snapshots")

// TestGoldenListings snapshots the full materialized-slice listings
// (conventional and Figure 7) for every corpus figure. Any formatting
// or slicing change that alters a listing shows up as a diff against
// testdata/golden/; regenerate deliberately with
//
//	go test -run TestGoldenListings -update-golden .
func TestGoldenListings(t *testing.T) {
	for _, f := range paper.All() {
		a, err := core.Analyze(f.Parse())
		if err != nil {
			t.Fatal(err)
		}
		c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
		conv, err := a.Conventional(c)
		if err != nil {
			t.Fatal(err)
		}
		ag, err := a.Agrawal(c)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString("== " + f.Name + " — criterion " + c.String() + " ==\n")
		sb.WriteString("\n-- conventional slice --\n")
		sb.WriteString(conv.Format())
		sb.WriteString("\n-- Figure 7 slice --\n")
		sb.WriteString(ag.Format())

		slug := strings.ReplaceAll(strings.ToLower(f.Name), " ", "_")
		slug = strings.ReplaceAll(slug, "figure_", "fig")
		path := filepath.Join("testdata", "golden", slug+".txt")
		if *updateGolden {
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", path, err)
		}
		if string(want) != sb.String() {
			t.Errorf("%s: listing drifted from golden snapshot\n--- got ---\n%s\n--- want ---\n%s",
				path, sb.String(), want)
		}
	}
}
