package jumpslice_test

import (
	"reflect"
	"strings"
	"testing"

	"jumpslice"
	"jumpslice/internal/paper"
)

func newSlicer(t *testing.T, src string) *jumpslice.Slicer {
	t.Helper()
	s, err := jumpslice.New(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeQuickstart(t *testing.T) {
	s := newSlicer(t, paper.Fig5().Source)
	res, err := s.Slice("positives", 14)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Lines, []int{2, 3, 4, 5, 7, 8, 14}) {
		t.Errorf("lines = %v", res.Lines)
	}
	if !strings.Contains(res.Text, "continue;") {
		t.Errorf("slice text missing the continue:\n%s", res.Text)
	}
	if !reflect.DeepEqual(res.JumpLines, []int{7}) {
		t.Errorf("jump lines = %v, want [7]", res.JumpLines)
	}
}

func TestFacadeAllAlgorithms(t *testing.T) {
	s := newSlicer(t, paper.Fig16().Source)
	algos := []jumpslice.Algorithm{
		jumpslice.Conventional, jumpslice.Weiser, jumpslice.Agrawal,
		jumpslice.AgrawalLST, jumpslice.Structured, jumpslice.Conservative,
		jumpslice.BallHorwitz, jumpslice.Lyle, jumpslice.Gallagher,
		jumpslice.JiangZhouRobson,
	}
	for _, algo := range algos {
		if _, err := s.SliceWith(algo, "y", 10); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	if _, err := s.SliceWith("nonsense", "y", 10); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestFacadeSliceAll(t *testing.T) {
	for _, f := range []*paper.Figure{paper.Fig3(), paper.Fig5(), paper.Fig8()} {
		s := newSlicer(t, f.Source)
		crits := []jumpslice.Criterion{
			{Var: f.Criterion.Var, Line: f.Criterion.Line},
			{Var: f.Criterion.Var, Line: f.Criterion.Line},
		}
		batch, err := s.SliceAll(crits)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if len(batch) != len(crits) {
			t.Fatalf("%s: got %d results, want %d", f.Name, len(batch), len(crits))
		}
		single, err := s.Slice(f.Criterion.Var, f.Criterion.Line)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range batch {
			if !reflect.DeepEqual(res.Lines, single.Lines) {
				t.Errorf("%s[%d]: batch lines = %v, Slice lines = %v", f.Name, i, res.Lines, single.Lines)
			}
			if res.Text != single.Text {
				t.Errorf("%s[%d]: batch text differs from Slice text", f.Name, i)
			}
		}
	}
	s := newSlicer(t, paper.Fig3().Source)
	if _, err := s.SliceAll([]jumpslice.Criterion{{Var: "no_such", Line: 999}}); err == nil {
		t.Error("SliceAll with a bad criterion should error")
	}
}

func TestFacadeStructuredDetection(t *testing.T) {
	if s := newSlicer(t, paper.Fig5().Source); !s.Structured() {
		t.Error("Figure 5-a should be structured")
	}
	if s := newSlicer(t, paper.Fig3().Source); s.Structured() {
		t.Error("Figure 3-a should be unstructured")
	}
}

func TestFacadeRelabeling(t *testing.T) {
	s := newSlicer(t, paper.Fig8().Source)
	res, err := s.Slice("positives", 15)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"L12": 13, "L14": 15}
	if !reflect.DeepEqual(res.RelabeledTo, want) {
		t.Errorf("relabeled = %v, want %v", res.RelabeledTo, want)
	}
}

func TestFacadeDOT(t *testing.T) {
	s := newSlicer(t, paper.Fig10().Source)
	res, err := s.Slice("y", 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []jumpslice.GraphKind{
		jumpslice.GraphCFG, jumpslice.GraphPDT, jumpslice.GraphLST,
		jumpslice.GraphCDG, jumpslice.GraphDDG, jumpslice.GraphPDG,
	} {
		dot, err := s.DOT(kind, res)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.HasPrefix(dot, "digraph") {
			t.Errorf("%s: not DOT", kind)
		}
	}
	if _, err := s.DOT("nope", nil); err == nil {
		t.Error("unknown graph kind should error")
	}
}

func TestFacadeRun(t *testing.T) {
	s := newSlicer(t, paper.Fig1().Source)
	out, err := s.Run([]int64{3, -1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1] != 2 {
		t.Errorf("output = %v, want positives = 2", out)
	}
}

func TestFacadeRunSliceAgreement(t *testing.T) {
	s := newSlicer(t, paper.Fig3().Source)
	sliceObs, origObs, err := s.RunSlice(jumpslice.Agrawal, "positives", 15, []int64{1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sliceObs, origObs) {
		t.Errorf("slice observes %v, original %v", sliceObs, origObs)
	}
	// The conventional slice disagrees on this input — the paper's
	// whole point, visible through the public API.
	sliceObs, origObs, err = s.RunSlice(jumpslice.Conventional, "positives", 15, []int64{1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(sliceObs, origObs) {
		t.Error("conventional slice should disagree with the original on this input")
	}
}

func TestFacadeParseError(t *testing.T) {
	if _, err := jumpslice.New("x = ;"); err == nil {
		t.Error("expected parse error")
	}
}

func TestFacadeSourceEcho(t *testing.T) {
	s := newSlicer(t, "a = 1;\nwrite(a);")
	src := s.Source()
	if !strings.Contains(src, "1: a = 1;") || !strings.Contains(src, "2: write(a);") {
		t.Errorf("source echo malformed:\n%s", src)
	}
}

func TestFacadeDynamicSlice(t *testing.T) {
	s := newSlicer(t, paper.Fig5().Source)
	dyn, err := s.DynamicSlice("positives", 14, []int64{-1, -2})
	if err != nil {
		t.Fatal(err)
	}
	static, err := s.Slice("positives", 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.Lines) >= len(static.Lines) {
		t.Errorf("dynamic %v should be smaller than static %v on one-sided input",
			dyn.Lines, static.Lines)
	}
	if !reflect.DeepEqual(dyn.Lines, []int{2, 14}) {
		t.Errorf("dynamic lines = %v, want [2 14]", dyn.Lines)
	}
}

func TestFacadeFlatten(t *testing.T) {
	s := newSlicer(t, paper.Fig3().Source)
	src, jumps, err := s.Flatten("positives", 15)
	if err != nil {
		t.Fatal(err)
	}
	if jumps == 0 {
		t.Error("expected synthesized jumps")
	}
	flat, err := jumpslice.New(src)
	if err != nil {
		t.Fatalf("flattened source does not parse: %v\n%s", err, src)
	}
	out, err := flat.Run([]int64{1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The executable slice writes only positives-relevant values; its
	// single write is positives = 2.
	if len(out) != 1 || out[0] != 2 {
		t.Errorf("flat slice output = %v, want [2]", out)
	}
}

func TestFacadeForwardAndChop(t *testing.T) {
	s := newSlicer(t, "read(a);\nb = a + 1;\nc = 5;\nwrite(b);\nwrite(c);")
	fwd, err := s.ForwardSlice("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fwd.Lines, []int{1, 2, 4}) {
		t.Errorf("forward = %v, want [1 2 4]", fwd.Lines)
	}
	chop, err := s.Chop("a", 1, "b", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chop.Lines, []int{1, 2, 4}) {
		t.Errorf("chop = %v, want [1 2 4]", chop.Lines)
	}
	writes, err := s.AffectedWrites("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(writes, []int{4}) {
		t.Errorf("affected writes = %v, want [4]", writes)
	}
}

func TestFacadeRestructure(t *testing.T) {
	s := newSlicer(t, paper.Fig3().Source)
	flat, err := s.Restructure()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(flat, "goto") {
		t.Errorf("restructured program contains goto:\n%s", flat)
	}
	rs := newSlicer(t, flat)
	if !rs.Structured() {
		t.Error("restructured program should be structured")
	}
	a, err := rs.Run([]int64{1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run([]int64{1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("restructured output %v, original %v", a, b)
	}
}
