package jumpslice_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"jumpslice"
	"jumpslice/internal/paper"
)

// TestTestdataMatchesCorpus keeps the on-disk sample programs in sync
// with the built-in corpus: same statements, same slices, with the
// criterion documented in the trailing comment.
func TestTestdataMatchesCorpus(t *testing.T) {
	for _, f := range paper.All() {
		slug := strings.ReplaceAll(strings.ToLower(f.Name), " ", "_")
		slug = strings.ReplaceAll(slug, "figure_", "fig")
		path := filepath.Join("testdata", slug+".mc")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		src := string(data)
		if !strings.Contains(src, "criterion: "+f.Criterion.Var) {
			t.Errorf("%s: missing criterion comment", path)
		}
		s, err := jumpslice.New(src)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		res, err := s.Slice(f.Criterion.Var, f.Criterion.Line)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !reflect.DeepEqual(res.Lines, f.AgrawalLines) {
			t.Errorf("%s: slice %v, want %v — file drifted from corpus",
				path, res.Lines, f.AgrawalLines)
		}
	}
}
