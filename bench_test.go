// Benchmarks regenerating the paper's evaluation, one benchmark per
// figure, plus the scaling and ablation measurements reported in
// EXPERIMENTS.md (tables E3 and E5). Run with:
//
//	go test -bench=. -benchmem ./...
//
// Figure benchmarks measure one slice computation (analysis reused,
// which matches the intended usage: analyze once, slice many times);
// the BenchmarkAnalyze series measures analysis construction itself.
package jumpslice_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"jumpslice/internal/baselines"
	"jumpslice/internal/cdg"
	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
	"jumpslice/internal/dom"
	"jumpslice/internal/dynslice"
	"jumpslice/internal/exps"
	"jumpslice/internal/incremental"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
	"jumpslice/internal/restructure"
	"jumpslice/internal/slicecache"
)

// benchFigure runs the Figure 7 algorithm on a corpus figure,
// asserting the paper's line set once so a buggy benchmark cannot
// silently measure the wrong thing.
func benchFigure(b *testing.B, f *paper.Figure) {
	a, err := core.Analyze(f.Parse())
	if err != nil {
		b.Fatal(err)
	}
	c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
	s, err := a.Agrawal(c)
	if err != nil {
		b.Fatal(err)
	}
	got := s.Lines()
	if len(got) != len(f.AgrawalLines) {
		b.Fatalf("slice = %v, want %v", got, f.AgrawalLines)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Agrawal(c); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per example-program figure of the paper.

func BenchmarkFigure01(b *testing.B) { benchFigure(b, paper.Fig1()) }
func BenchmarkFigure03(b *testing.B) { benchFigure(b, paper.Fig3()) }
func BenchmarkFigure05(b *testing.B) { benchFigure(b, paper.Fig5()) }
func BenchmarkFigure08(b *testing.B) { benchFigure(b, paper.Fig8()) }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, paper.Fig10()) }
func BenchmarkFigure14(b *testing.B) { benchFigure(b, paper.Fig14()) }
func BenchmarkFigure16(b *testing.B) { benchFigure(b, paper.Fig16()) }

// BenchmarkFigure02Graphs measures construction of every structure
// behind the paper's graph figures (2, 4, 6, 9, 11, 15): flowgraph,
// postdominator tree, dependence graphs and lexical successor tree.
func BenchmarkFigure02Graphs(b *testing.B) {
	for _, f := range paper.All() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			prog := f.Parse()
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithms compares every algorithm on the same program
// (the paper's Figure 3-a for the general ones, Figure 5-a for the
// structured-only ones) — the E3 comparison at paper scale.
func BenchmarkAlgorithms(b *testing.B) {
	goto3, err := core.Analyze(paper.Fig3().Parse())
	if err != nil {
		b.Fatal(err)
	}
	c3 := core.Criterion{Var: "positives", Line: 15}
	cont5, err := core.Analyze(paper.Fig5().Parse())
	if err != nil {
		b.Fatal(err)
	}
	c5 := core.Criterion{Var: "positives", Line: 14}

	cases := []struct {
		name string
		a    *core.Analysis
		c    core.Criterion
		run  func(*core.Analysis, core.Criterion) (*core.Slice, error)
	}{
		{"Conventional", goto3, c3, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.Conventional(c) }},
		{"Agrawal", goto3, c3, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.Agrawal(c) }},
		{"AgrawalLST", goto3, c3, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.AgrawalLST(c) }},
		{"Structured", cont5, c5, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.AgrawalStructured(c) }},
		{"Conservative", cont5, c5, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.AgrawalConservative(c) }},
		{"BallHorwitz", goto3, c3, baselines.BallHorwitz},
		{"Lyle", goto3, c3, baselines.Lyle},
		{"Gallagher", goto3, c3, baselines.Gallagher},
		{"JiangZhouRobson", goto3, c3, baselines.JiangZhouRobson},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.run(tc.a, tc.c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scalingSizes are the program sizes of the E3 sweep.
var scalingSizes = []int{25, 100, 400, 1600}

// BenchmarkScalingAgrawal measures the Figure 7 algorithm against
// program size on the structured corpus.
func BenchmarkScalingAgrawal(b *testing.B) {
	benchScaling(b, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
		return a.Agrawal(c)
	})
}

// BenchmarkScalingConventional is the conventional baseline's sweep.
func BenchmarkScalingConventional(b *testing.B) {
	benchScaling(b, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
		return a.Conventional(c)
	})
}

// BenchmarkScalingConservative is the Figure 13 sweep, showing the
// on-the-fly variant's overhead is essentially the conventional
// algorithm's.
func BenchmarkScalingConservative(b *testing.B) {
	benchScaling(b, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
		return a.AgrawalConservative(c)
	})
}

// BenchmarkScalingBallHorwitz is the augmented-PDG baseline's sweep.
// Note Ball–Horwitz rebuilds the augmented graph per slice, which is
// where its overhead against Agrawal comes from — the paper's
// "leaves the flowgraph and the PDG intact" argument, measured.
func BenchmarkScalingBallHorwitz(b *testing.B) {
	benchScaling(b, baselines.BallHorwitz)
}

func benchScaling(b *testing.B, run func(*core.Analysis, core.Criterion) (*core.Slice, error)) {
	for _, size := range scalingSizes {
		size := size
		b.Run(fmt.Sprintf("stmts=%d", size), func(b *testing.B) {
			p := progen.Structured(progen.Config{Seed: 7, Stmts: size})
			a, err := core.Analyze(p)
			if err != nil {
				b.Fatal(err)
			}
			crits := progen.WriteCriteria(p)
			c := core.Criterion{Var: crits[len(crits)-1].Var, Line: crits[len(crits)-1].Line}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run(a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSliceAll measures the batch slicing engine against
// independent per-criterion calls: a 100-criterion corpus (write
// criteria spread over several generated programs), sliced once with
// per-criterion Agrawal (per-node BFS closures) and once with
// SliceAll (shared SCC-condensed, memoized bitset closures). The
// slices are asserted identical before timing; the acceptance target
// is batch ≥ 2× faster.
func BenchmarkSliceAll(b *testing.B) {
	type task struct {
		a     *core.Analysis
		crits []core.Criterion
	}
	var tasks []task
	total := 0
	for seed := int64(0); total < 100; seed++ {
		p := progen.Structured(progen.Config{Seed: seed, Stmts: 120})
		a, err := core.Analyze(p)
		if err != nil {
			b.Fatal(err)
		}
		var crits []core.Criterion
		for _, wc := range progen.WriteCriteria(p) {
			crits = append(crits, core.Criterion{Var: wc.Var, Line: wc.Line})
		}
		total += len(crits)
		tasks = append(tasks, task{a, crits})
	}
	for _, tk := range tasks {
		batch, err := tk.a.SliceAll(tk.crits)
		if err != nil {
			b.Fatal(err)
		}
		for i, c := range tk.crits {
			s, err := tk.a.Agrawal(c)
			if err != nil {
				b.Fatal(err)
			}
			if !s.Nodes.Equal(batch[i].Nodes) {
				b.Fatalf("batch slice differs from Agrawal at %s", c)
			}
		}
	}
	b.Logf("criteria: %d over %d programs", total, len(tasks))
	b.Run("independent-agrawal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tk := range tasks {
				for _, c := range tk.crits {
					if _, err := tk.a.Agrawal(c); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("batch-sliceall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tk := range tasks {
				if _, err := tk.a.SliceAll(tk.crits); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkCachedSlice measures the analysis cache's hit path against
// rebuilding the pipeline from source: each iteration resolves the
// same program text to an analysis (cached: content-hash lookup +
// Rebind view; uncached: parse + full analysis) and computes one
// Agrawal slice. The acceptance target is cached ≥ 5× faster; the
// slices are asserted identical before timing.
func BenchmarkCachedSlice(b *testing.B) {
	p := progen.Structured(progen.Config{Seed: 7, Stmts: 400})
	src := lang.Format(p, lang.PrintOptions{})
	crits := progen.WriteCriteria(p)
	c := core.Criterion{Var: crits[len(crits)-1].Var, Line: crits[len(crits)-1].Line}
	ctx := context.Background()
	build := func(bctx context.Context) (*core.Analysis, error) {
		prog, err := lang.Parse(src)
		if err != nil {
			return nil, err
		}
		built, err := core.AnalyzeObservedContext(bctx, prog, nil, nil)
		if err != nil {
			return nil, err
		}
		return built.Rebind(nil, nil, nil), nil
	}

	cache := slicecache.New(slicecache.Options{})
	warm, _, err := cache.Get(ctx, src, build)
	if err != nil {
		b.Fatal(err)
	}
	ws, err := warm.Agrawal(c)
	if err != nil {
		b.Fatal(err)
	}
	cold, err := build(ctx)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := cold.Agrawal(c)
	if err != nil {
		b.Fatal(err)
	}
	if !ws.Nodes.Equal(cs.Nodes) {
		b.Fatal("cached and uncached slices differ")
	}

	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := build(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.Agrawal(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, _, err := cache.Get(ctx, src, build)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.Rebind(ctx, nil, nil).Agrawal(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorpusParallel measures the slicebench corpus evaluation
// serial vs parallel (the -parallel flag's worker pool), on the E1
// precision experiment — the parallel path produces identical tables,
// so on a multicore machine the speedup is free (on one CPU it shows
// the pool's overhead is negligible).
func BenchmarkCorpusParallel(b *testing.B) {
	base := exps.Options{Seeds: 24, Stmts: 40}
	workerSet := []int{1, 4}
	if n := exps.DefaultParallel(); n > 4 {
		workerSet = append(workerSet, n)
	}
	for _, workers := range workerSet {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := base
			o.Parallel = workers
			for i := 0; i < b.N; i++ {
				if _, err := exps.Precision(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyze measures analysis construction (flowgraph +
// postdominators + dependence graphs + lexical successor tree)
// against program size.
func BenchmarkAnalyze(b *testing.B) {
	for _, size := range scalingSizes {
		size := size
		b.Run(fmt.Sprintf("stmts=%d", size), func(b *testing.B) {
			p := progen.Structured(progen.Config{Seed: 7, Stmts: size})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDominatorsAblation compares the two dominator algorithms
// (iterative Cooper–Harvey–Kennedy vs Lengauer–Tarjan) on the largest
// sweep program — the substrate ablation DESIGN.md calls out.
func BenchmarkDominatorsAblation(b *testing.B) {
	p := progen.Structured(progen.Config{Seed: 7, Stmts: 1600})
	a, err := core.Analyze(p)
	if err != nil {
		b.Fatal(err)
	}
	g := a.CFG
	b.Run("iterative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dom.PostDominators(g, g.Exit.ID)
		}
	})
	b.Run("lengauer-tarjan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dom.PostDominatorsLT(g, g.Exit.ID)
		}
	})
}

// BenchmarkTraversalDriverAblation compares the two search drivers the
// paper says are interchangeable: preorder of the postdominator tree
// vs preorder of the lexical successor tree, on the figure that needs
// multiple traversals.
func BenchmarkTraversalDriverAblation(b *testing.B) {
	a, err := core.Analyze(paper.Fig10().Parse())
	if err != nil {
		b.Fatal(err)
	}
	c := core.Criterion{Var: "y", Line: 9}
	b.Run("pdt-preorder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Agrawal(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lst-preorder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.AgrawalLST(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaterialize measures slice-to-program projection.
func BenchmarkMaterialize(b *testing.B) {
	p := progen.Structured(progen.Config{Seed: 7, Stmts: 400})
	a, err := core.Analyze(p)
	if err != nil {
		b.Fatal(err)
	}
	crits := progen.WriteCriteria(p)
	c := core.Criterion{Var: crits[len(crits)-1].Var, Line: crits[len(crits)-1].Line}
	s, err := a.Agrawal(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Materialize()
	}
}

// BenchmarkCDGAblation compares the two control dependence
// constructions (FOW edge walk vs Cytron postdominance frontiers).
func BenchmarkCDGAblation(b *testing.B) {
	p := progen.Structured(progen.Config{Seed: 7, Stmts: 400})
	g, err := cfg.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	pdt := dom.PostDominators(g, g.Exit.ID)
	b.Run("fow-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cdg.Build(g, pdt)
		}
	})
	b.Run("postdominance-frontier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cdg.ParentsByPDF(g, pdt)
		}
	})
}

// BenchmarkExtensions measures the extension subsystems at paper
// scale: the Choi–Ferrante flattener, the pc-loop restructurer, and
// the dynamic slicer.
func BenchmarkExtensions(b *testing.B) {
	f := paper.Fig3()
	a, err := core.Analyze(f.Parse())
	if err != nil {
		b.Fatal(err)
	}
	c := core.Criterion{Var: "positives", Line: 15}
	b.Run("choi-ferrante-flatten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.ChoiFerranteExecutable(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restructure", func(b *testing.B) {
		prog := f.Parse()
		for i := 0; i < b.N; i++ {
			if _, err := restructure.Program(prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dynamic-slice", func(b *testing.B) {
		in := []int64{3, -1, 4, 0, 5}
		for i := 0; i < b.N; i++ {
			if _, err := dynslice.Slice(a, c, dynslice.Options{Input: in}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weiser", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baselines.Weiser(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalEdit measures the editor loop on the 400-stmt
// structured corpus program: a one-line expression edit re-sliced via
// the incremental engine (SpliceLine into the previous AST, then
// ReanalyzeProgram reusing every shape-pure phase) against a cold
// parse-and-analyze of the edited text. The acceptance target —
// gated in benchgate — is incremental < 5% of cold; the edit is
// asserted to land in the "patched" tier and to produce a slice
// byte-identical to the cold run before timing.
func BenchmarkIncrementalEdit(b *testing.B) {
	p := progen.Structured(progen.Config{Seed: 7, Stmts: 400})
	src := lang.Format(p, lang.PrintOptions{})
	crits := progen.WriteCriteria(p)
	c := core.Criterion{Var: crits[len(crits)-1].Var, Line: crits[len(crits)-1].Line}
	ctx := context.Background()

	prev, err := core.AnalyzeObservedContext(ctx, p, nil, nil)
	if err != nil {
		b.Fatal(err)
	}

	// The session holds a warmed analysis: its batch condensation is
	// built once and patched across edits, exactly what the sliced
	// daemon's PATCH handler does.
	if _, err := prev.SliceAll([]core.Criterion{c}); err != nil {
		b.Fatal(err)
	}

	// Pick a line SpliceLine accepts whose edit stays in the patched
	// tier with a patchable condensation: an unlabeled assignment,
	// rewritten with the same target variable so no definition moves,
	// and whose dependence SCC is a singleton so the memoized closures
	// survive.
	line, text := 0, ""
	for _, s := range lang.Statements(p) {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			continue
		}
		cand := fmt.Sprintf("%s = %s + 1;", as.Name, as.Name)
		p2, ok := incremental.SpliceLine(p, as.Pos().Line, cand)
		if !ok {
			continue
		}
		inc, stats, err := core.ReanalyzeProgram(ctx, prev, p2, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Outcome == "patched" && stats.CondensationPatched {
			// Keep the last (latest) candidate: closures of components
			// below the edit survive the patch, so a late edit shares
			// most of the warmed work — the common editor case.
			line, text = as.Pos().Line, cand
			_ = inc
		}
	}
	if line == 0 {
		b.Fatal("no condensation-patchable assignment found in the corpus program")
	}
	lines := strings.Split(src, "\n")
	lines[line-1] = text
	newSrc := strings.Join(lines, "\n")

	coldBuild := func() (*core.Analysis, error) {
		prog, err := lang.Parse(newSrc)
		if err != nil {
			return nil, err
		}
		return core.AnalyzeObservedContext(ctx, prog, nil, nil)
	}

	// Correctness gate before timing: the incremental re-analysis must
	// be patched-tier and slice byte-identically to the cold rebuild.
	p2, ok := incremental.SpliceLine(prev.Prog, line, text)
	if !ok {
		b.Fatal("SpliceLine refused the benchmark edit")
	}
	inc, stats, err := core.ReanalyzeProgram(ctx, prev, p2, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Outcome != "patched" || !stats.CondensationPatched {
		b.Fatalf("benchmark edit landed in tier %q (fallback %q, condensation %v), want patched",
			stats.Outcome, stats.Fallback, stats.CondensationPatched)
	}
	iss, err := inc.SliceAll([]core.Criterion{c})
	if err != nil {
		b.Fatal(err)
	}
	cold, err := coldBuild()
	if err != nil {
		b.Fatal(err)
	}
	cs, err := cold.Agrawal(c)
	if err != nil {
		b.Fatal(err)
	}
	if !iss[0].Nodes.Equal(cs.Nodes) {
		b.Fatal("incremental and cold slices differ")
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a, err := coldBuild()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.Agrawal(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p2, ok := incremental.SpliceLine(prev.Prog, line, text)
			if !ok {
				b.Fatal("SpliceLine refused the benchmark edit")
			}
			a, _, err := core.ReanalyzeProgram(ctx, prev, p2, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.SliceAll([]core.Criterion{c}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSliceSDG measures the two-pass interprocedural slice on a
// generated multi-procedure program set, split into the two phases a
// serving process actually sees: the first slice of a fresh program
// set runs the HRB summary-edge worklist before its two traversals
// ("cold"), every later slice reuses the cached summaries ("warm").
// The acceptance target — gated in benchgate — is warm ≤ 20% of cold:
// summary construction must amortize across a slice session. The
// criterion is the main write whose slice is smallest, so the gated
// ratio isolates the summary worklist rather than closure size, and
// the warm slice is asserted identical to the cold one before timing.
func BenchmarkSliceSDG(b *testing.B) {
	p := progen.MultiProc(progen.Config{Seed: 11, Stmts: 40, Procs: 16, Vars: 24})
	crits := progen.MainWriteCriteria(p)
	if len(crits) == 0 {
		b.Fatal("multi-procedure corpus program has no main write criteria")
	}
	pick := func() (core.Criterion, []int) {
		ps, err := core.AnalyzeProgramSet(p)
		if err != nil {
			b.Fatal(err)
		}
		best, bestLines := core.Criterion{}, []int(nil)
		for _, wc := range crits {
			s, err := ps.SliceInterproc(core.Criterion{Var: wc.Var, Line: wc.Line})
			if err != nil {
				b.Fatal(err)
			}
			if bestLines == nil || len(s.Lines()) < len(bestLines) {
				best, bestLines = s.Criterion, s.Lines()
			}
		}
		return best, bestLines
	}
	c, coldLines := pick()

	warmSet, err := core.AnalyzeProgramSet(p)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := warmSet.SliceInterproc(c) // computes the summaries once
	if err != nil {
		b.Fatal(err)
	}
	if fmt.Sprint(warm.Lines()) != fmt.Sprint(coldLines) {
		b.Fatalf("warm slice %v differs from cold slice %v", warm.Lines(), coldLines)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ps, err := core.AnalyzeProgramSet(p)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := ps.SliceInterproc(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := warmSet.SliceInterproc(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}
