package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzHandleSlice drives the /slice handler with arbitrary bodies and
// query parameters, deliberately bypassing the panic-recovery
// middleware: any panic crashes the fuzzer and is a finding. The
// other invariants: no request produces a 5xx (client input can never
// be a server fault on this path — the per-request timeout is
// disabled), and every non-2xx response carries the structured JSON
// error envelope.
func FuzzHandleSlice(f *testing.F) {
	files, _ := filepath.Glob("../../testdata/*.mc")
	for _, fn := range files {
		if data, err := os.ReadFile(fn); err == nil {
			f.Add(data, "positives", "14", "agrawal", false, true)
		}
	}
	f.Add([]byte(`{"source":"x = 1; write(x);","var":"x","line":2}`), "", "", "", true, false)
	f.Add([]byte("x = 1;"), "x", "1", "conventional", false, false)
	f.Add([]byte("x = 1;"), "x", "one", "magic", false, true)
	f.Add([]byte("while ("), "x", "1", "", false, false)
	f.Add([]byte{}, "", "-1", "structured", true, true)

	f.Fuzz(func(t *testing.T, body []byte, varName, lineStr, algo string, asJSON, explain bool) {
		if len(body) > 1<<16 {
			return // bound per-exec analysis cost
		}
		cfg := defaultConfig()
		cfg.Flight = 64
		cfg.Timeout = 0 // a fuzz exec must never 503 on time
		cfg.MaxBody = 1 << 17
		cfg.MaxStmts = 2000
		s := newServer(cfg, io.Discard)

		q := url.Values{}
		if varName != "" {
			q.Set("var", varName)
		}
		if lineStr != "" {
			q.Set("line", lineStr)
		}
		if algo != "" {
			q.Set("algo", algo)
		}
		if explain {
			q.Set("explain", "1")
		}
		req := httptest.NewRequest("POST", "/slice?"+q.Encode(), strings.NewReader(string(body)))
		if asJSON {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		s.mux.ServeHTTP(rec, req) // no recovery middleware: panics surface

		switch rec.Code {
		case 200, 400, 404, 405, 413, 422:
		default:
			t.Fatalf("status %d for client input (body %q, query %q): %s",
				rec.Code, body, q.Encode(), rec.Body.String())
		}
		if rec.Code != 200 {
			var ae apiError
			if err := json.Unmarshal(rec.Body.Bytes(), &ae); err != nil {
				t.Fatalf("status %d without the JSON error envelope: %v: %s", rec.Code, err, rec.Body.String())
			}
			if ae.Error.Code == "" || ae.Error.Status != rec.Code {
				t.Fatalf("malformed envelope for status %d: %+v", rec.Code, ae.Error)
			}
		}
	})
}
