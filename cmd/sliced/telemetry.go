package main

// The daemon's telemetry plane: wide request events, sliding-window
// SLOs, and build/runtime health reporting.
//
// Every request is summarized into exactly one obs.WideEvent by the
// instrument middleware — endpoint, status, duration, response bytes,
// per-phase pipeline timings, cache and incremental tiers, slice
// size, and how the request ended (ok / client_error / error / shed /
// timeout / canceled / panic). The same record is (a) emitted as the
// access log line — text or JSON, identical fields either way — and
// (b) kept in a bounded ring served by GET /debug/requests, so the
// log stream and the queryable view can never disagree. The event
// also feeds the per-endpoint SLO window, whose per-bucket slowest
// request ID (the exemplar) links a latency spike straight back to
// GET /debug/trace?id=.
//
// Handlers annotate the in-flight event through a *reqInfo carried in
// the request context; all reqInfo setters are nil-safe so handlers
// invoked outside the middleware (direct tests) need no guards.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"jumpslice/internal/obs"
)

// reqInfo is the per-request annotation sheet handlers fill in while
// serving; the instrument middleware folds it into the wide event
// after the response is written. A request is served by exactly one
// goroutine, so plain fields suffice (the SpanLog has its own lock —
// a coalesced cache build may record spans from another goroutine).
type reqInfo struct {
	algo       string
	stmts      int
	sliceLines int
	errCode    string
	outcome    string // set only by gate/panic paths; "" = derive from status
	spans      *obs.SpanLog
}

func (ri *reqInfo) setAlgo(a string) {
	if ri != nil {
		ri.algo = a
	}
}

func (ri *reqInfo) setStmts(n int) {
	if ri != nil {
		ri.stmts = n
	}
}

func (ri *reqInfo) setSliceLines(n int) {
	if ri != nil {
		ri.sliceLines = n
	}
}

func (ri *reqInfo) setErrCode(c string) {
	if ri != nil {
		ri.errCode = c
	}
}

func (ri *reqInfo) setOutcome(o string) {
	if ri != nil {
		ri.outcome = o
	}
}

func (ri *reqInfo) spanLog() *obs.SpanLog {
	if ri == nil {
		return nil
	}
	return ri.spans
}

const reqInfoKey ctxKey = 1

// reqInfoFrom returns the request's annotation sheet (nil outside the
// middleware; every use is nil-safe).
func reqInfoFrom(r *http.Request) *reqInfo {
	ri, _ := r.Context().Value(reqInfoKey).(*reqInfo)
	return ri
}

// tracerFor derives the request's tracer: events stamped with the
// request ID, spans teed into the wide event's phase collector.
func (s *server) tracerFor(r *http.Request) *obs.Tracer {
	return s.tr.ForRequest(requestID(r)).WithSpans(reqInfoFrom(r).spanLog())
}

// endpointOf normalizes a request path to its bounded-cardinality
// route label: dynamic segments collapse ("/session/17" →
// "/session/{id}"), unknown paths fold to "(other)" so a URL scanner
// cannot inflate the SLO map.
func endpointOf(path string) string {
	switch path {
	case "/slice", "/session", "/metrics", "/healthz",
		"/debug/flight", "/debug/trace", "/debug/cache",
		"/debug/requests", "/debug/slo", "/debug/build", "/debug/spool",
		"/debug/cluster", "/internal/fill":
		return path
	}
	if strings.HasPrefix(path, "/session/") {
		return "/session/{id}"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "(other)"
}

// outcomeOf classifies how the request ended. Explicit outcomes from
// the admission gate ("shed") and panic recovery ("panic") win;
// otherwise the status and envelope code decide.
func outcomeOf(ri *reqInfo, status int) string {
	var code string
	if ri != nil {
		if ri.outcome != "" {
			return ri.outcome
		}
		code = ri.errCode
	}
	switch {
	case status == statusClientClosedRequest:
		return "canceled"
	case code == "timeout":
		return "timeout"
	case status >= 500:
		return "error"
	case status >= 400:
		return "client_error"
	}
	return "ok"
}

// instrument is the outermost middleware: it assigns the request ID,
// measures the whole exchange, assembles the wide event, records it
// into the request ring and the SLO window, bumps the per-tier
// http.incr.* counters, and emits the access log line.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := uint64(s.reqID.Add(1))
		w.Header().Set("X-Request-ID", strconv.FormatUint(id, 10))
		// In cluster mode every response names the node that serves it;
		// the proxy path overrides this with the upstream's value, so
		// the header always names the node that did the work.
		if s.cluster != nil {
			w.Header().Set("X-Sliced-Node", s.cluster.self)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ri := &reqInfo{spans: &obs.SpanLog{}}
		ctx := context.WithValue(r.Context(), reqIDKey, id)
		ctx = context.WithValue(ctx, reqInfoKey, ri)
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		dur := time.Since(start)

		ev := obs.WideEvent{
			Req:         id,
			TimeNS:      start.UnixNano(),
			Method:      r.Method,
			Path:        r.URL.Path,
			Endpoint:    endpointOf(r.URL.Path),
			Status:      sw.status,
			DurationNS:  dur.Nanoseconds(),
			BytesOut:    sw.bytes,
			Outcome:     outcomeOf(ri, sw.status),
			ErrorCode:   ri.errCode,
			Algo:        ri.algo,
			Stmts:       ri.stmts,
			SliceLines:  ri.sliceLines,
			Cache:       sw.Header().Get("X-Cache"),
			Incremental: sw.Header().Get("X-Incremental"),
			Route:       sw.Header().Get("X-Sliced-Route"),
			Peer:        sw.Header().Get("X-Sliced-Peer"),
			Phases:      ri.spans.Spans(),
		}
		s.requests.Record(ev)
		s.spool.Enqueue(ev)
		s.slo.Observe(ev.Endpoint, ev.Status, ev.Outcome == "shed", dur, id)
		if c := s.incrTier[ev.Incremental]; c != nil {
			c.Add(1)
		}
		s.logAccess(&ev)
	})
}

// logAccess emits one access log line per request. Both formats carry
// the wide event's scalar fields; the JSON format additionally
// carries the per-phase timings (too noisy for a text line, and the
// JSON consumer is a machine anyway).
func (s *server) logAccess(ev *obs.WideEvent) {
	if s.cfg.LogFormat == "json" {
		data, err := json.Marshal(ev)
		if err != nil {
			s.logger.Printf("req=%d access-log marshal failed: %v", ev.Req, err)
			return
		}
		s.logger.Print(string(data))
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "req=%d %s %s %d %s bytes=%d outcome=%s",
		ev.Req, ev.Method, ev.Path, ev.Status, time.Duration(ev.DurationNS), ev.BytesOut, ev.Outcome)
	if ev.ErrorCode != "" {
		fmt.Fprintf(&sb, " code=%s", ev.ErrorCode)
	}
	if ev.Cache != "" {
		fmt.Fprintf(&sb, " cache=%s", ev.Cache)
	}
	if ev.Incremental != "" {
		fmt.Fprintf(&sb, " incr=%s", ev.Incremental)
	}
	if ev.Route != "" {
		fmt.Fprintf(&sb, " route=%s", ev.Route)
	}
	if ev.Peer != "" {
		fmt.Fprintf(&sb, " peer=%s", ev.Peer)
	}
	if ev.Algo != "" {
		fmt.Fprintf(&sb, " algo=%s", ev.Algo)
	}
	if ev.Stmts > 0 {
		fmt.Fprintf(&sb, " stmts=%d", ev.Stmts)
	}
	if ev.SliceLines > 0 {
		fmt.Fprintf(&sb, " slice=%d", ev.SliceLines)
	}
	s.logger.Print(sb.String())
}

// handleRequests (GET /debug/requests) serves the wide-event ring,
// newest last, optionally filtered. All filters validate strictly: a
// filter that says "status 5xx please" but sends garbage answers a
// structured 422, never a silently unfiltered dump.
//
//	?status=N     only events with that exact response status
//	?min_ms=N     only events at least N milliseconds slow
//	?endpoint=E   only events on that normalized endpoint
//	?outcome=O    only events that ended that way (one of the
//	              outcome taxonomy: ok, client_error, error, shed,
//	              timeout, canceled, panic)
//	?route=R      only events cluster routing placed that way (one of
//	              local, proxied, peer-fill)
//	?n=N          at most the newest N matching events
func (s *server) handleRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	intParam := func(name string, min, max int) (int, bool, error) {
		vs, present := q[name]
		if !present {
			return 0, false, nil
		}
		v := ""
		if len(vs) > 0 {
			v = vs[0]
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < min || (max > 0 && n > max) {
			return 0, true, httpErrorf(http.StatusUnprocessableEntity, "invalid_parameter",
				"parameter %s must be an integer in [%d, %d], got %q", name, min, max, v)
		}
		return n, true, nil
	}
	status, haveStatus, err := intParam("status", 100, 599)
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	minMS, haveMinMS, err := intParam("min_ms", 0, 0)
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	n, haveN, err := intParam("n", 0, 0)
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	endpoint, haveEndpoint := "", false
	if vs, present := q["endpoint"]; present {
		haveEndpoint = true
		if len(vs) > 0 {
			endpoint = vs[0]
		}
		if endpoint == "" {
			s.fail(w, r, http.StatusUnprocessableEntity, "invalid_parameter",
				"parameter endpoint must name a route (e.g. /slice), got %q", endpoint)
			return
		}
	}
	outcome, haveOutcome := "", false
	if vs, present := q["outcome"]; present {
		haveOutcome = true
		if len(vs) > 0 {
			outcome = vs[0]
		}
		if !validOutcomes[outcome] {
			s.fail(w, r, http.StatusUnprocessableEntity, "invalid_parameter",
				"parameter outcome must be one of ok|client_error|error|shed|timeout|canceled|panic, got %q", outcome)
			return
		}
	}
	route, haveRoute := "", false
	if vs, present := q["route"]; present {
		haveRoute = true
		if len(vs) > 0 {
			route = vs[0]
		}
		if !validRoutes[route] {
			s.fail(w, r, http.StatusUnprocessableEntity, "invalid_parameter",
				"parameter route must be one of local|proxied|peer-fill, got %q", route)
			return
		}
	}

	all := s.requests.Events()
	matched := make([]obs.WideEvent, 0, len(all))
	for _, e := range all {
		if haveStatus && e.Status != status {
			continue
		}
		if haveMinMS && e.DurationNS < int64(minMS)*int64(time.Millisecond) {
			continue
		}
		if haveEndpoint && e.Endpoint != endpoint {
			continue
		}
		if haveOutcome && e.Outcome != outcome {
			continue
		}
		if haveRoute && e.Route != route {
			continue
		}
		matched = append(matched, e)
	}
	if haveN && n < len(matched) {
		matched = matched[len(matched)-n:]
	}
	writeJSON(w, http.StatusOK, struct {
		Written  uint64          `json:"written"`
		Capacity int             `json:"capacity"`
		Count    int             `json:"count"`
		Requests []obs.WideEvent `json:"requests"`
	}{s.requests.Written(), s.requests.Cap(), len(matched), matched})
}

// validOutcomes is the closed outcome taxonomy every wide event's
// Outcome field draws from (see outcomeOf). The ?outcome= filter
// validates against it so a typo answers 422, not an empty result.
var validOutcomes = map[string]bool{
	"ok": true, "client_error": true, "error": true, "shed": true,
	"timeout": true, "canceled": true, "panic": true,
}

// validRoutes is the closed routing taxonomy cluster mode stamps on
// wide events (see cluster.go); the ?route= filter validates against
// it the same way ?outcome= does.
var validRoutes = map[string]bool{
	"local": true, "proxied": true, "peer-fill": true,
}

// handleSpool (GET /debug/spool) reports the durable telemetry
// spool's health: resident segments and bytes against the budget,
// enqueue/write/drop totals, and the active segment pointer. With no
// -spool-dir configured it reports {"enabled": false}.
func (s *server) handleSpool(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.spoolDetails())
}

// handleSLO (GET /debug/slo) serves the sliding-window SLO view:
// per-endpoint percentiles, error/shed rates, burn rates against the
// configured objectives, and the per-bucket exemplars.
func (s *server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Snapshot())
}

// buildDetails is the /debug/build payload, resolved once at startup.
type buildDetails struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path"`
	Revision  string `json:"revision"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// readBuildDetails extracts version provenance from the binary's
// embedded build info. Binaries built outside a VCS checkout (go test,
// plain go build of a tarball) report revision "unknown".
func readBuildDetails() buildDetails {
	d := buildDetails{Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return d
	}
	d.GoVersion = bi.GoVersion
	d.Path = bi.Main.Path
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			d.Revision = kv.Value
		case "vcs.time":
			d.VCSTime = kv.Value
		case "vcs.modified":
			d.Modified = kv.Value == "true"
		}
	}
	return d
}

// handleBuild (GET /debug/build) reports what this binary is.
func (s *server) handleBuild(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.build)
}

// handleHealthz (GET /healthz) is the liveness probe; it names the
// build revision so a fleet rollout can be confirmed endpoint by
// endpoint.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Revision string `json:"revision"`
	}{"ok", s.build.Revision})
}
