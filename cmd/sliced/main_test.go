package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"jumpslice/internal/obs"
)

// fig5 is the Figure 5-a program (continue version): the slice on
// positives@14 must include the continue at line 7 but not the one at
// line 11.
func fig5(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/fig5-a.mc")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// testConfig is the default daemon configuration for tests: a small
// flight recorder and failpoints armed.
func testConfig(flight int) config {
	cfg := defaultConfig()
	cfg.Flight = flight
	cfg.Failpoints = true
	return cfg
}

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerConfig(t, testConfig(1<<12))
}

func newTestServerConfig(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg, io.Discard)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSlice(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, *sliceResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/slice?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /slice?%s: status %d: %s", query, resp.StatusCode, data)
	}
	var sr sliceResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, &sr
}

func TestSliceFig5RawBody(t *testing.T) {
	_, ts := newTestServer(t)
	resp, sr := postSlice(t, ts, "var=positives&line=14", fig5(t))

	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("missing X-Request-ID header")
	}
	if sr.Algorithm != "agrawal" {
		t.Errorf("algorithm = %q, want agrawal", sr.Algorithm)
	}
	has := func(line int) bool {
		for _, l := range sr.Lines {
			if l == line {
				return true
			}
		}
		return false
	}
	// The paper's Figure 5 point: continue at 7 is needed, 11 is not.
	if !has(7) {
		t.Errorf("slice %v should include continue at line 7", sr.Lines)
	}
	if has(11) || has(10) {
		t.Errorf("slice %v should not include lines 10-11", sr.Lines)
	}
	if len(sr.JumpLines) != 1 || sr.JumpLines[0] != 7 {
		t.Errorf("jump_lines = %v, want [7]", sr.JumpLines)
	}
	if sr.Text == "" || !strings.Contains(sr.Text, "continue") {
		t.Errorf("materialized text should contain the kept continue:\n%s", sr.Text)
	}
}

func TestSliceJSONBodyWithExplain(t *testing.T) {
	_, ts := newTestServer(t)
	body, err := json.Marshal(sliceRequest{Source: fig5(t), Var: "positives", Line: 14})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/slice?explain=1", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr sliceResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Reasons) == 0 {
		t.Error("explain=1 response has no reasons")
	}
	found := false
	for _, rs := range sr.Reasons[7] {
		if strings.Contains(rs, "jump-rule") {
			found = true
		}
	}
	if !found {
		t.Errorf("line 7 reasons %v should include a jump-rule record", sr.Reasons[7])
	}
	if !strings.Contains(sr.Listing, "continue") {
		t.Errorf("listing should show the kept continue:\n%s", sr.Listing)
	}
}

func TestSliceAlgorithms(t *testing.T) {
	_, ts := newTestServer(t)
	src := fig5(t)
	for algo, wantJumps := range map[string]int{
		"agrawal": 1, "agrawal-lst": 1, "structured": 1, "conservative": 1, "conventional": 0,
	} {
		_, sr := postSlice(t, ts, "var=positives&line=14&algo="+algo, src)
		if len(sr.JumpLines) != wantJumps {
			t.Errorf("%s: jump_lines = %v, want %d jumps", algo, sr.JumpLines, wantJumps)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	postSlice(t, ts, "var=positives&line=14", fig5(t))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text v0.0.4", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"jumpslice_core_slices_total 1",
		"# TYPE jumpslice_phase_analyze_ns histogram",
		"jumpslice_phase_analyze_ns_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFlightJSONL(t *testing.T) {
	s, ts := newTestServer(t)
	postSlice(t, ts, "var=positives&line=14", fig5(t))

	resp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Flight-Written"); got == "" || got == "0" {
		t.Errorf("X-Flight-Written = %q, want a positive count", got)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	kinds := map[string]bool{}
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		kinds[ev["kind"].(string)] = true
		lines++
	}
	if lines == 0 {
		t.Fatal("flight journal is empty after a slice request")
	}
	if want := int(s.fr.Written()); lines != want {
		t.Errorf("flight journal has %d lines, recorder wrote %d", lines, want)
	}
	for _, k := range []string{"span", "jump-admitted", "slice"} {
		if !kinds[k] {
			t.Errorf("flight journal missing %q events (kinds: %v)", k, kinds)
		}
	}

	// ?n= caps the journal to the most recent events.
	resp2, err := http.Get(ts.URL + "/debug/flight?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data, _ := io.ReadAll(resp2.Body)
	if got := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; got != 2 {
		t.Errorf("flight?n=2 returned %d lines", got)
	}
}

// TestTraceChromeSchema is the acceptance check: the chrome-trace for
// a fig5 slice request must be schema-valid trace_event JSON.
func TestTraceChromeSchema(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postSlice(t, ts, "var=positives&line=14", fig5(t))
	id := resp.Header.Get("X-Request-ID")

	tresp, err := http.Get(ts.URL + "/debug/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace?id=%s: status %d", id, tresp.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			Pid  *int           `json:"pid"`
			Tid  *uint64        `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	sawSpan, sawJump := false, false
	for i, ev := range trace.TraceEvents {
		if ev.Name == "" || ev.TS == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			sawSpan = true
		case "i":
			if ev.S != "t" {
				t.Errorf("instant event %d has scope %q, want t", i, ev.S)
			}
		default:
			t.Errorf("event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Name == "fig7.jump" || ev.Args["nearest_pd"] != nil {
			sawJump = true
		}
		if fmt.Sprint(*ev.Tid) != id {
			t.Errorf("event %d has tid %d, want request id %s", i, *ev.Tid, id)
		}
	}
	if !sawSpan {
		t.Error("trace has no complete (ph=X) span events")
	}
	if !sawJump {
		t.Error("trace has no jump-admission evidence")
	}
}

func TestTraceUnknownRequest(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/trace?id=424242")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown request id: status %d, want 404", resp.StatusCode)
	}
}

func TestSliceErrors(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(query, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/slice?"+query, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("line=14", fig5(t)); got != http.StatusBadRequest {
		t.Errorf("missing var: status %d, want 400", got)
	}
	if got := post("var=positives", fig5(t)); got != http.StatusBadRequest {
		t.Errorf("missing line: status %d, want 400", got)
	}
	if got := post("var=positives&line=14", ""); got != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", got)
	}
	if got := post("var=positives&line=14", "while ("); got != http.StatusUnprocessableEntity {
		t.Errorf("parse error: status %d, want 422", got)
	}
	if got := post("var=positives&line=14&algo=magic", fig5(t)); got != http.StatusBadRequest {
		t.Errorf("unknown algorithm: status %d, want 400", got)
	}
	resp, err := http.Get(ts.URL + "/slice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /slice: status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentSlices exercises the full handler chain — per-request
// tracers publishing into the shared flight recorder, shared metrics
// registry — from many goroutines; the CI race job runs it under
// -race.
func TestConcurrentSlices(t *testing.T) {
	const workers, perWorker = 8, 6
	// Enough admission slots for every worker: this test exercises
	// data races, not load shedding, and the default 2×GOMAXPROCS can
	// shed on single-CPU machines.
	cfg := testConfig(1 << 12)
	cfg.MaxInflight = workers
	s, ts := newTestServerConfig(t, cfg)
	src := fig5(t)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/slice?var=positives&line=14", "text/plain", strings.NewReader(src))
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.reqID.Load(); got != workers*perWorker {
		t.Errorf("served %d requests, want %d", got, workers*perWorker)
	}
	if s.fr.Written() == 0 {
		t.Error("flight recorder saw no events")
	}
}

// TestGracefulShutdown drives the real signal path: serveOn must stop
// accepting, drain, and return nil when the process receives SIGTERM.
func TestGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(testConfig(1<<10), io.Discard)
	done := make(chan error, 1)
	go func() { done <- serveOn(ln, s) }()

	base := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post(base+"/slice?var=positives&line=14", "text/plain", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveOn returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s of SIGTERM")
	}
}

const sdgTestProgram = `proc add(s, x) {
    s = s + x;
}
read(a);
read(b);
sum = 0;
cnt = 0;
call add(sum, a);
call add(cnt, b);
write(sum);
write(cnt);
`

func TestSliceSDG(t *testing.T) {
	s, ts := newTestServer(t)
	_, sr := postSlice(t, ts, "var=sum&line=10&algo=sdg&explain=1", sdgTestProgram)
	if sr.Algorithm != "sdg" {
		t.Errorf("algorithm = %q, want sdg", sr.Algorithm)
	}
	// The slice must cross the call boundary: the proc body (line 2)
	// and the relevant call chain, but not the cnt chain.
	want := []int{2, 4, 6, 8, 10}
	if fmt.Sprint(sr.Lines) != fmt.Sprint(want) {
		t.Errorf("lines = %v, want %v", sr.Lines, want)
	}
	if !strings.Contains(sr.Text, "proc add(s, x)") {
		t.Errorf("text lost the proc declaration:\n%s", sr.Text)
	}
	var reasons []string
	for _, rs := range sr.Reasons {
		reasons = append(reasons, rs...)
	}
	joined := strings.Join(reasons, "\n")
	for _, kind := range []string{"param-in", "param-out", "summary", "call"} {
		if !strings.Contains(joined, kind) {
			t.Errorf("explain reasons missing %q edge kind:\n%s", kind, joined)
		}
	}
	// The interprocedural path reports under its own metric namespace.
	var buf strings.Builder
	obs.WritePrometheus(&buf, s.reg.Snapshot())
	if !strings.Contains(buf.String(), "jumpslice_sdg_slices_total") {
		t.Error("metrics missing jumpslice_sdg_slices_total after an sdg request")
	}
}

func TestSliceSDGRejectsProcsOnIntraproceduralAlgos(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/slice?var=sum&line=10&algo=agrawal", "text/plain", strings.NewReader(sdgTestProgram))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("intraprocedural algo accepted a multi-procedure program")
	}
	data, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(data), "AnalyzeProgramSet") {
		t.Errorf("error should direct to interprocedural analysis: %s", data)
	}
}
