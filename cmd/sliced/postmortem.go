package main

// Post-mortem bundles: when something goes wrong — a recovered panic,
// an operator's SIGUSR1, or a fatal exit — the daemon snapshots every
// in-memory telemetry surface into one self-contained directory under
// -postmortem-dir. The in-memory planes (flight recorder, wide-event
// ring, SLO windows) are deliberately lossy and die with the process;
// the bundle is the moment they get written down, so the evidence for
// an incident can be attached to it instead of evaporating on
// restart.
//
// A bundle directory contains:
//
//	meta.json       why and when the bundle was written, plus the
//	                process's serving totals; written LAST, so its
//	                presence marks the bundle complete.
//	build.json      the binary's provenance (/debug/build).
//	flight.jsonl    the flight recorder's drained events, oldest
//	                first (the /debug/flight wire format).
//	requests.jsonl  the wide-event ring: the last N requests, one
//	                JSON wide event per line (readable by slicequery
//	                -bundle).
//	slo.json        the sliding-window SLO snapshot (/debug/slo).
//	goroutines.txt  a full goroutine dump.
//	spool.json      the durable spool's stats, including the active
//	                segment pointer — the bridge from this bundle to
//	                the long-horizon history on disk.
//
// Bundles triggered by recovered panics are rate-limited to one per
// process: the first panic writes the evidence, a panic storm must
// not turn into a disk storm. SIGUSR1 always writes a fresh bundle.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"jumpslice/internal/obs"
	"jumpslice/internal/obs/spool"
)

// postmortemMeta is the bundle's meta.json payload.
type postmortemMeta struct {
	Reason    string `json:"reason"` // "sigusr1", "panic", "fatal_exit"
	WrittenNS int64  `json:"written_at_ns"`
	Written   string `json:"written_at"`
	PID       int    `json:"pid"`
	// Serving totals at bundle time.
	RequestsServed int64  `json:"requests_served"`
	RequestsShed   int64  `json:"requests_shed"`
	FlightWritten  uint64 `json:"flight_written"`
	FlightDropped  uint64 `json:"flight_dropped"`
	WideEvents     int    `json:"wide_events"`
}

// spoolDetails is the bundle's spool.json (and /debug/spool) payload.
type spoolDetails struct {
	Enabled bool        `json:"enabled"`
	Stats   spool.Stats `json:"stats,omitempty"`
}

func (s *server) spoolDetails() spoolDetails {
	if s.spool == nil {
		return spoolDetails{}
	}
	return spoolDetails{Enabled: true, Stats: s.spool.Stats()}
}

// writePostmortem writes one bundle and returns its directory. An
// empty -postmortem-dir disables bundles; callers get an error naming
// that, not a surprise directory.
func (s *server) writePostmortem(reason string) (string, error) {
	if s.cfg.PostmortemDir == "" {
		return "", fmt.Errorf("post-mortem bundles disabled (-postmortem-dir unset)")
	}
	now := time.Now()
	dir := filepath.Join(s.cfg.PostmortemDir, fmt.Sprintf("bundle-%d-%s", now.UnixNano(), reason))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("postmortem: %w", err)
	}

	// Flush the spool first so the active segment pointer in
	// spool.json points at bytes that are actually on disk.
	s.spool.Sync()

	events := s.requests.Events()
	if err := writeBundleFile(dir, "flight.jsonl", func(f *os.File) error {
		return obs.WriteJSONL(f, s.fr.Events())
	}); err != nil {
		return dir, err
	}
	if err := writeBundleFile(dir, "requests.jsonl", func(f *os.File) error {
		enc := json.NewEncoder(f)
		for i := range events {
			if err := enc.Encode(&events[i]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return dir, err
	}
	if err := writeBundleJSON(dir, "slo.json", s.slo.Snapshot()); err != nil {
		return dir, err
	}
	if err := writeBundleJSON(dir, "build.json", s.build); err != nil {
		return dir, err
	}
	if err := writeBundleJSON(dir, "spool.json", s.spoolDetails()); err != nil {
		return dir, err
	}
	if err := writeBundleFile(dir, "goroutines.txt", func(f *os.File) error {
		_, err := f.Write(allGoroutines())
		return err
	}); err != nil {
		return dir, err
	}
	// meta.json last: its presence marks the bundle complete, so a
	// consumer polling the directory never reads a half-written one.
	meta := postmortemMeta{
		Reason:         reason,
		WrittenNS:      now.UnixNano(),
		Written:        now.UTC().Format(time.RFC3339Nano),
		PID:            os.Getpid(),
		RequestsServed: s.reqID.Load(),
		RequestsShed:   s.shed.Load(),
		FlightWritten:  s.fr.Written(),
		FlightDropped:  s.fr.Dropped(),
		WideEvents:     len(events),
	}
	if err := writeBundleJSON(dir, "meta.json", meta); err != nil {
		return dir, err
	}
	return dir, nil
}

// postmortemOnPanic writes the once-per-process panic bundle.
func (s *server) postmortemOnPanic() {
	if s.cfg.PostmortemDir == "" || !s.pmPanic.CompareAndSwap(false, true) {
		return
	}
	dir, err := s.writePostmortem("panic")
	if err != nil {
		s.logger.Printf("postmortem: %v", err)
		return
	}
	s.logger.Printf("postmortem bundle (panic) written to %s", dir)
}

// postmortemOnFatal snapshots state on the way out of a failing
// serveOn and passes the original error through.
func (s *server) postmortemOnFatal(err error) error {
	if err == nil || s.cfg.PostmortemDir == "" {
		return err
	}
	dir, werr := s.writePostmortem("fatal_exit")
	if werr != nil {
		s.logger.Printf("postmortem: %v", werr)
		return err
	}
	s.logger.Printf("postmortem bundle (fatal_exit) written to %s", dir)
	return err
}

// writeBundleFile creates one bundle artifact.
func writeBundleFile(dir, name string, write func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("postmortem: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("postmortem: %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("postmortem: %s: %w", name, err)
	}
	return nil
}

// writeBundleJSON writes one artifact as indented JSON.
func writeBundleJSON(dir, name string, v any) error {
	return writeBundleFile(dir, name, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// allGoroutines captures a full goroutine dump, growing the buffer
// until the dump fits.
func allGoroutines() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}
