package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"jumpslice/internal/slicecache"
)

// do issues one request and decodes the error envelope when the
// status is not the expected one.
func do(t *testing.T, method, url, contentType, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, want int, v any) {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d: %s",
			resp.Request.Method, resp.Request.URL, resp.StatusCode, want, data)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
}

// expectAPIError asserts the structured envelope: status and code.
func expectAPIError(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	var ae apiError
	decodeInto(t, resp, status, &ae)
	if ae.Error.Code != code {
		t.Fatalf("error code = %q, want %q", ae.Error.Code, code)
	}
	if ae.Error.Status != status {
		t.Fatalf("error body status = %d, want %d", ae.Error.Status, status)
	}
}

// TestExplainParamStrict pins the ?explain= contract: booleans in
// either spelling work, anything else is a structured 422 — it must
// not silently mean false.
func TestExplainParamStrict(t *testing.T) {
	_, ts := newTestServer(t)
	src := fig5(t)

	for _, v := range []string{"1", "true", "True"} {
		resp, err := http.Post(ts.URL+"/slice?var=positives&line=14&explain="+v, "text/plain", strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		var sr sliceResponse
		decodeInto(t, resp, http.StatusOK, &sr)
		if sr.Listing == "" || len(sr.Reasons) == 0 {
			t.Fatalf("explain=%s: no provenance in response", v)
		}
	}
	for _, v := range []string{"yes", "2", "", "maybe"} {
		resp, err := http.Post(ts.URL+"/slice?var=positives&line=14&explain="+v, "text/plain", strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		expectAPIError(t, resp, http.StatusUnprocessableEntity, "invalid_parameter")
	}
	// explain=0 is a valid boolean meaning "no provenance".
	resp, err := http.Post(ts.URL+"/slice?var=positives&line=14&explain=0", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var sr sliceResponse
	decodeInto(t, resp, http.StatusOK, &sr)
	if sr.Listing != "" || len(sr.Reasons) != 0 {
		t.Fatal("explain=0 still produced provenance")
	}
}

// openSession POSTs fig5 (or the given source) and returns the id.
func openSession(t *testing.T, ts *httptest.Server, src string) string {
	t.Helper()
	resp := do(t, http.MethodPost, ts.URL+"/session", "text/plain", src)
	var sr sessionResponse
	decodeInto(t, resp, http.StatusCreated, &sr)
	if sr.Session == "" || sr.Statements == 0 {
		t.Fatalf("session response %+v missing id or statement count", sr)
	}
	return sr.Session
}

// patchEdit PATCHes a one-line replacement and returns the response.
func patchEdit(t *testing.T, ts *httptest.Server, id, query string, line int, text string) *http.Response {
	t.Helper()
	body := fmt.Sprintf(`{"edit":{"op":"replace","line":%d,"text":%q}}`, line, text)
	return do(t, http.MethodPatch, ts.URL+"/session/"+id+"?"+query, "application/json", body)
}

func TestSessionLifecycle(t *testing.T) {
	s, ts := newTestServer(t)
	src := fig5(t)
	id := openSession(t, ts, src)

	// A one-line expression edit must ride the patched tier and still
	// produce the Figure 5 slice (line 2 is "positives = 0;" — the
	// edited constant keeps the same definitions).
	resp := patchEdit(t, ts, id, "var=positives&line=14", 2, "positives = 1;")
	if got := resp.Header.Get("X-Incremental"); got != "patched" {
		t.Errorf("X-Incremental = %q, want patched", got)
	}
	var pr sessionPatchResponse
	decodeInto(t, resp, http.StatusOK, &pr)
	if pr.Incremental == nil || pr.Incremental.Outcome != "patched" {
		t.Fatalf("incremental stats = %+v, want patched", pr.Incremental)
	}
	if pr.Incremental.PhasesReused < 5 {
		t.Errorf("phases_reused = %d, want >= 5", pr.Incremental.PhasesReused)
	}
	has := func(lines []int, l int) bool {
		for _, x := range lines {
			if x == l {
				return true
			}
		}
		return false
	}
	if !has(pr.Lines, 7) || has(pr.Lines, 11) {
		t.Errorf("post-edit slice %v should keep line 7 and drop line 11", pr.Lines)
	}
	// An identical program edit changes no slice: the delta is empty.
	if len(pr.LinesAdded) != 0 || len(pr.LinesRemoved) != 0 {
		t.Errorf("constant edit changed the slice: +%v -%v", pr.LinesAdded, pr.LinesRemoved)
	}

	// The incremental counters surfaced in /metrics.
	mresp := do(t, http.MethodGet, ts.URL+"/metrics", "", "")
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	m := regexp.MustCompile(`jumpslice_incr_reused_total (\d+)`).FindSubmatch(metrics)
	if m == nil || string(m[1]) == "0" {
		t.Errorf("metrics missing nonzero jumpslice_incr_reused_total:\n%s", metrics)
	}

	// A structural edit (full source replacement with one extra write)
	// reports the full tier.
	resp = do(t, http.MethodPatch, ts.URL+"/session/"+id+"?var=positives&line=14", "text/plain",
		strings.Replace(src, "positives = 0;", "positives = 1;", 1)+"write(positives);\n")
	if got := resp.Header.Get("X-Incremental"); got != "full" {
		t.Errorf("structural edit X-Incremental = %q, want full", got)
	}
	decodeInto(t, resp, http.StatusOK, &pr)

	// DELETE closes the session and releases its cache entry.
	resp = do(t, http.MethodDelete, ts.URL+"/session/"+id, "", "")
	var dr sessionResponse
	decodeInto(t, resp, http.StatusOK, &dr)
	if !dr.Deleted {
		t.Fatal("delete response not marked deleted")
	}
	if _, ok := s.cache.GetKey(slicecache.SessionKey(id)); ok {
		t.Fatal("session analysis still resident after DELETE")
	}
	resp = patchEdit(t, ts, id, "var=positives&line=14", 2, "positives = 2;")
	expectAPIError(t, resp, http.StatusNotFound, "unknown_session")
}

// TestSessionFailedEditLeavesSessionIntact: a PATCH that cannot parse
// must not advance the session, and the next good edit still applies
// against the pre-failure source.
func TestSessionFailedEditLeavesSessionIntact(t *testing.T) {
	_, ts := newTestServer(t)
	id := openSession(t, ts, fig5(t))

	resp := patchEdit(t, ts, id, "var=positives&line=14", 2, "positives = = 1;")
	expectAPIError(t, resp, http.StatusUnprocessableEntity, "invalid_program")

	// Out-of-range line: 400, session intact.
	resp = patchEdit(t, ts, id, "var=positives&line=14", 9999, "positives = 1;")
	expectAPIError(t, resp, http.StatusBadRequest, "bad_request")

	// The session still answers from its original source.
	resp = patchEdit(t, ts, id, "var=positives&line=14", 2, "positives = 3;")
	var pr sessionPatchResponse
	decodeInto(t, resp, http.StatusOK, &pr)
	if pr.Incremental.Outcome != "patched" {
		t.Fatalf("post-failure edit outcome = %q, want patched", pr.Incremental.Outcome)
	}
}

// TestSessionEvictedRebuildsFull: when the cache drops a session's
// analysis (budget pressure, simulated by a direct delete), the next
// PATCH transparently rebuilds cold and keeps the session usable.
func TestSessionEvictedRebuildsFull(t *testing.T) {
	s, ts := newTestServer(t)
	id := openSession(t, ts, fig5(t))
	if !s.cache.DeleteKey(slicecache.SessionKey(id)) {
		t.Fatal("session analysis was not resident")
	}
	resp := patchEdit(t, ts, id, "var=positives&line=14", 2, "positives = 1;")
	if got := resp.Header.Get("X-Incremental"); got != "full" {
		t.Errorf("evicted session X-Incremental = %q, want full", got)
	}
	var pr sessionPatchResponse
	decodeInto(t, resp, http.StatusOK, &pr)
	// The rebuild re-pinned the analysis: the next edit is incremental
	// again.
	resp = patchEdit(t, ts, id, "var=positives&line=14", 2, "positives = 2;")
	if got := resp.Header.Get("X-Incremental"); got != "patched" {
		t.Errorf("post-rebuild X-Incremental = %q, want patched", got)
	}
	decodeInto(t, resp, http.StatusOK, &pr)
}

// TestSessionDeltaReporting: an edit that changes a definition the
// slice depends on must surface the slice delta line-by-line.
func TestSessionDeltaReporting(t *testing.T) {
	_, ts := newTestServer(t)
	const src = "read(a);\nread(b);\nc = a + 1;\nd = b + 1;\nx = c;\ny = x;\nwrite(y);\n"
	id := openSession(t, ts, src)

	// x = c → x = d: the slice on y@7 swaps c = a + 1 (line 3) for
	// d = b + 1 (line 4) and pulls in read(b) (line 2; read(a) stays —
	// the observed-context semantics preserve the input-stream order).
	resp := patchEdit(t, ts, id, "var=y&line=7", 5, "x = d;")
	var pr sessionPatchResponse
	decodeInto(t, resp, http.StatusOK, &pr)
	if pr.Incremental.Outcome == "full" {
		t.Fatalf("same-shape definition-preserving edit ran the full tier: %+v", pr.Incremental)
	}
	if len(pr.LinesAdded) != 2 || pr.LinesAdded[0] != 2 || pr.LinesAdded[1] != 4 {
		t.Errorf("lines_added = %v, want [2 4]", pr.LinesAdded)
	}
	if len(pr.LinesRemoved) != 1 || pr.LinesRemoved[0] != 3 {
		t.Errorf("lines_removed = %v, want [3]", pr.LinesRemoved)
	}
}

// TestSessionRequiresCache: with the cache disabled there is nowhere
// to account session residency, so POST /session refuses.
func TestSessionRequiresCache(t *testing.T) {
	cfg := testConfig(1 << 12)
	cfg.CacheOff = true
	_, ts := newTestServerConfig(t, cfg)
	resp := do(t, http.MethodPost, ts.URL+"/session", "text/plain", fig5(t))
	expectAPIError(t, resp, http.StatusServiceUnavailable, "sessions_disabled")
}

// TestSessionBadRequests covers the request-shape faults around the
// session surface.
func TestSessionBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	id := openSession(t, ts, fig5(t))

	for name, tc := range map[string]struct {
		method, path, body string
		status             int
		code               string
	}{
		"empty open":        {http.MethodPost, "/session", "", http.StatusBadRequest, "bad_request"},
		"get on session":    {http.MethodGet, "/session", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		"missing criterion": {http.MethodPatch, "/session/" + id, `{"edit":{"op":"replace","line":4,"text":"x = 1;"}}`, http.StatusBadRequest, "bad_request"},
		"unknown session":   {http.MethodPatch, "/session/nope?var=positives&line=14", `{"edit":{"op":"replace","line":4,"text":"x = 1;"}}`, http.StatusNotFound, "unknown_session"},
		"nested path":       {http.MethodPatch, "/session/a/b?var=x&line=1", "{}", http.StatusNotFound, "not_found"},
		"bad op":            {http.MethodPatch, "/session/" + id + "?var=positives&line=14", `{"edit":{"op":"insert","line":4,"text":"x = 1;"}}`, http.StatusBadRequest, "bad_request"},
		"both forms":        {http.MethodPatch, "/session/" + id + "?var=positives&line=14", `{"source":"x = 1;","edit":{"op":"replace","line":4,"text":"x = 1;"}}`, http.StatusBadRequest, "bad_request"},
		"empty patch":       {http.MethodPatch, "/session/" + id + "?var=positives&line=14", `{}`, http.StatusBadRequest, "bad_request"},
		"bad explain":       {http.MethodPatch, "/session/" + id + "?var=positives&line=14&explain=nope", `{"edit":{"op":"replace","line":4,"text":"x = 1;"}}`, http.StatusUnprocessableEntity, "invalid_parameter"},
		"delete unknown":    {http.MethodDelete, "/session/nope", "", http.StatusNotFound, "unknown_session"},
	} {
		t.Run(name, func(t *testing.T) {
			resp := do(t, tc.method, ts.URL+tc.path, "application/json", tc.body)
			expectAPIError(t, resp, tc.status, tc.code)
		})
	}
}

// TestPatchJSONWithoutContentType pins the curl -d reality: JSON
// bodies routinely arrive under application/x-www-form-urlencoded (or
// no content type at all) and must still be decoded as JSON, not
// mistaken for a full-source replacement — a brace-opened valid-JSON
// object is never valid program text, so the sniff is unambiguous.
func TestPatchJSONWithoutContentType(t *testing.T) {
	_, ts := newTestServer(t)
	id := openSession(t, ts, fig5(t))

	for _, ct := range []string{"", "application/x-www-form-urlencoded"} {
		resp := do(t, http.MethodPatch, ts.URL+"/session/"+id+"?var=positives&line=14",
			ct, `{"edit":{"op":"replace","line":2,"text":"positives = 1;"}}`)
		var pr sessionPatchResponse
		decodeInto(t, resp, http.StatusOK, &pr)
		if got := resp.Header.Get("X-Incremental"); got != "patched" {
			t.Errorf("content type %q: X-Incremental = %q, want patched", ct, got)
		}
	}

	// A raw program under a non-JSON content type is still a full
	// source replacement.
	resp := do(t, http.MethodPatch, ts.URL+"/session/"+id+"?var=x&line=2",
		"text/plain", "read(x);\nwrite(x);\n")
	var pr sessionPatchResponse
	decodeInto(t, resp, http.StatusOK, &pr)
	if got := resp.Header.Get("X-Incremental"); got != "full" {
		t.Errorf("raw replacement: X-Incremental = %q, want full", got)
	}

	// Same sniff on POST /session: a JSON open without the header.
	resp = do(t, http.MethodPost, ts.URL+"/session", "",
		`{"source":"read(a);\nwrite(a);\n"}`)
	var sr sessionResponse
	decodeInto(t, resp, http.StatusCreated, &sr)
	if sr.Statements != 2 {
		t.Errorf("JSON open parsed %d statements, want 2", sr.Statements)
	}
}
