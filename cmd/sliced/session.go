package main

// Editor sessions: the incremental serving surface.
//
// A session pins one program's analysis warm so that the repeated
// edit → re-slice loop an editor integration produces is served by
// the incremental engine (core.ReanalyzeProgram) instead of the full
// pipeline. The session's analysis lives in the shared slicecache
// under a domain-separated key — byte-accounted against the same
// budget as anonymous /slice traffic and LRU-evicted under pressure —
// so an idle session costs at most its cache residency, and a PATCH
// that finds its analysis evicted transparently rebuilds cold.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"jumpslice/internal/core"
	"jumpslice/internal/incremental"
	"jumpslice/internal/lang"
	"jumpslice/internal/slicecache"
)

// session is the daemon-side record of one open document: its current
// source text and the identity its analysis is cached under. mu
// serializes edits to this session; concurrent PATCHes of different
// sessions do not contend.
type session struct {
	mu     sync.Mutex
	id     string
	source string
}

// sessionFor resolves the {id} path suffix of /session/{id} to the
// live session, or answers 404.
func (s *server) sessionFor(w http.ResponseWriter, r *http.Request) *session {
	id := strings.TrimPrefix(r.URL.Path, "/session/")
	if id == "" || strings.Contains(id, "/") {
		s.fail(w, r, http.StatusNotFound, "not_found", "no such endpoint %s", r.URL.Path)
		return nil
	}
	s.smu.Lock()
	sess := s.sessions[id]
	s.smu.Unlock()
	if sess == nil {
		s.fail(w, r, http.StatusNotFound, "unknown_session", "no open session %q", id)
		return nil
	}
	return sess
}

// sessionResponse answers POST /session and DELETE /session/{id}.
type sessionResponse struct {
	Session    string `json:"session"`
	Request    uint64 `json:"request"`
	Statements int    `json:"statements,omitempty"`
	Deleted    bool   `json:"deleted,omitempty"`
}

// sessionPatchResponse answers PATCH /session/{id}: the slice after
// the edit, what the incremental engine did to produce it, and the
// line-level delta against the pre-edit slice of the same criterion.
type sessionPatchResponse struct {
	sliceResponse
	Session      string          `json:"session"`
	Incremental  *core.IncrStats `json:"incremental"`
	LinesAdded   []int           `json:"lines_added"`
	LinesRemoved []int           `json:"lines_removed"`
}

// editRequest is the one-line edit form of a PATCH body:
// {"edit":{"op":"replace","line":N,"text":"..."}}.
type editRequest struct {
	Op   string `json:"op"`
	Line int    `json:"line"`
	Text string `json:"text"`
}

// patchRequest is the JSON form of a PATCH /session/{id} body. Raw
// (non-JSON) bodies are a full source replacement.
type patchRequest struct {
	Source string       `json:"source"`
	Edit   *editRequest `json:"edit"`
}

// handleSessionOpen (POST /session) analyzes the submitted program,
// parks the analysis in the cache under the new session's key, and
// returns the session ID for subsequent PATCH traffic.
func (s *server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		s.fail(w, r, http.StatusServiceUnavailable, "sessions_disabled",
			"sessions require the analysis cache; restart without -cache-off")
		return
	}
	source, err := s.readSource(w, r)
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	tr := s.tracerFor(r)
	a, err := s.buildAnalysis(ctx, source, tr)
	if err != nil {
		s.failErr(w, r, "analyze", err)
		return
	}
	reqInfoFrom(r).setStmts(len(lang.Statements(a.Prog)))
	id := strconv.FormatInt(s.sessID.Add(1), 10)
	s.cache.PutKey(slicecache.SessionKey(id), source, a.Rebind(nil, s.reg, nil))
	s.smu.Lock()
	s.sessions[id] = &session{id: id, source: source}
	s.smu.Unlock()
	writeJSON(w, http.StatusCreated, sessionResponse{
		Session:    id,
		Request:    requestID(r),
		Statements: len(lang.Statements(a.Prog)),
	})
}

// handleSessionPatch (PATCH /session/{id}) applies one edit — a
// one-line replacement or a full source swap — re-analyzes through
// the incremental engine, and re-slices the given criterion. The
// X-Incremental header reports the reuse tier ("patched", "partial",
// "full"); the body carries the slice plus its delta against the
// pre-edit slice. A failed edit (bad line, parse error, size limit)
// leaves the session exactly as it was.
func (s *server) handleSessionPatch(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFor(w, r)
	if sess == nil {
		return
	}
	crit, algo, err := parseCriterion(r.URL.Query())
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	explain, err := boolParam(r, "explain")
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	req, err := s.readPatch(w, r)
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	id := requestID(r)
	tr := s.tracerFor(r)
	ri := reqInfoFrom(r)
	ri.setAlgo(algo)
	start := time.Now()

	sess.mu.Lock()
	defer sess.mu.Unlock()

	newSrc, err := req.apply(sess.source)
	if err != nil {
		s.failErr(w, r, "edit", err)
		return
	}
	key := slicecache.SessionKey(sess.id)
	prev, _ := s.cache.GetKey(key) // nil after eviction: plain cold run

	// Fast path: a one-line edit against a warm analysis is spliced
	// into the previous AST without reparsing the program. Anything
	// else — full source swap, splice refusal, evicted session — goes
	// through a parse; ReanalyzeProgram decides what survives either
	// way, and falls back to the full pipeline when prev is nil.
	var prog *lang.Program
	if prev != nil && req.Edit != nil {
		prog, _ = incremental.SpliceLine(prev.Prog, req.Edit.Line, req.Edit.Text)
	}
	if prog == nil {
		prog, err = lang.Parse(newSrc)
		if err != nil {
			s.failErr(w, r, "analyze", httpErrorf(http.StatusUnprocessableEntity, "invalid_program", "parse: %v", err))
			return
		}
		if n := len(lang.Statements(prog)); n > s.cfg.MaxStmts {
			s.failErr(w, r, "analyze", httpErrorf(http.StatusRequestEntityTooLarge, "program_too_large",
				"program has %d statements, over the %d limit", n, s.cfg.MaxStmts))
			return
		}
	}
	a, stats, err := core.ReanalyzeProgram(ctx, prev, prog, s.reg, tr)
	if err != nil {
		s.failErr(w, r, "analyze", err)
		return
	}
	w.Header().Set("X-Incremental", stats.Outcome)
	ri.setStmts(len(lang.Statements(a.Prog)))

	// The edit is committed before slicing: the session now holds the
	// new program whether or not the criterion below resolves.
	sess.source = newSrc
	s.cache.PutKey(key, newSrc, a.Rebind(nil, s.reg, nil))

	sl, err := coreSlice(a, algo, crit)
	if err != nil {
		s.failErr(w, r, "slice", err)
		return
	}
	resp := &sessionPatchResponse{
		Session:     sess.id,
		Incremental: stats,
		sliceResponse: sliceResponse{
			Request:    id,
			Algorithm:  sl.Algorithm,
			Var:        crit.Var,
			Line:       crit.Line,
			Lines:      sl.Lines(),
			Traversals: sl.Traversals,
			Text:       sl.Format(),
		},
	}
	for _, nid := range sl.JumpsAdded {
		resp.JumpLines = append(resp.JumpLines, a.CFG.Nodes[nid].Line)
	}
	if prev != nil {
		resp.LinesAdded, resp.LinesRemoved = sliceDelta(prev, a, algo, crit, sl)
	}
	if explain {
		p, err := sl.Explain()
		if err != nil {
			s.failErr(w, r, "explain", err)
			return
		}
		resp.Reasons = p.LineReasons()
		resp.Listing = p.Listing()
	}
	resp.DurationNS = time.Since(start).Nanoseconds()
	ri.setSliceLines(len(resp.Lines))
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionDelete (DELETE /session/{id}) closes the session and
// refunds its cache residency.
func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionFor(w, r)
	if sess == nil {
		return
	}
	s.smu.Lock()
	delete(s.sessions, sess.id)
	s.smu.Unlock()
	s.cache.DeleteKey(slicecache.SessionKey(sess.id))
	writeJSON(w, http.StatusOK, sessionResponse{
		Session: sess.id,
		Request: requestID(r),
		Deleted: true,
	})
}

// apply computes the session's post-edit source text.
func (req *patchRequest) apply(source string) (string, error) {
	if req.Edit == nil {
		return req.Source, nil
	}
	e := req.Edit
	if e.Op != "replace" {
		return "", httpErrorf(http.StatusBadRequest, "bad_request",
			`unsupported edit op %q (want "replace")`, e.Op)
	}
	lines := strings.Split(source, "\n")
	if e.Line < 1 || e.Line > len(lines) || (e.Line == len(lines) && lines[e.Line-1] == "") {
		return "", httpErrorf(http.StatusBadRequest, "bad_request",
			"edit line %d outside the program (1..%d)", e.Line, strings.Count(source, "\n"))
	}
	lines[e.Line-1] = e.Text
	return strings.Join(lines, "\n"), nil
}

// sliceDelta reports the line-level delta between the pre- and
// post-edit slices of one criterion, walked through the
// allocation-free set-difference view. The pre-edit slice is computed
// against the previous (still warm) analysis; a criterion the old
// program cannot resolve yields no delta.
func sliceDelta(prev, cur *core.Analysis, algo string, crit core.Criterion, sl *core.Slice) (added, removed []int) {
	psl, err := coreSlice(prev, algo, crit)
	if err != nil || psl.Nodes.Cap() != sl.Nodes.Cap() {
		return nil, nil
	}
	added = deltaLines(sl.Nodes.Diff(psl.Nodes), cur)
	removed = deltaLines(psl.Nodes.Diff(sl.Nodes), prev)
	return added, removed
}

// deltaLines maps a node-set difference to its sorted distinct lines.
func deltaLines(d interface{ Next(int) int }, a *core.Analysis) []int {
	var lines []int
	for i := d.Next(0); i >= 0; i = d.Next(i + 1) {
		if l := a.CFG.Nodes[i].Line; l > 0 {
			lines = append(lines, l)
		}
	}
	sort.Ints(lines)
	out := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			out = append(out, l)
		}
	}
	return out
}

// requestContext derives the handler context, applying the analysis
// deadline when one is configured.
func (s *server) requestContext(r *http.Request) (ctx context.Context, cancel context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.Timeout)
	}
	return context.WithCancel(r.Context())
}

// jsonBody reports whether a request body should be decoded as JSON:
// either the client said so (Content-Type) or the body is
// unambiguously a JSON object. The sniff matters in practice — curl
// -d sends JSON under a form content type — and cannot misread a
// program: the language has no string literals, so a brace-opened
// body that json.Valid accepts is never valid program text.
func jsonBody(r *http.Request, body []byte) bool {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		return true
	}
	trimmed := bytes.TrimSpace(body)
	return len(trimmed) > 0 && trimmed[0] == '{' && json.Valid(trimmed)
}

// readSource reads a POST /session body: raw program text, or JSON
// {"source": ...}.
func (s *server) readSource(w http.ResponseWriter, r *http.Request) (string, error) {
	body, err := s.readBody(w, r)
	if err != nil {
		return "", err
	}
	source := string(body)
	if jsonBody(r, body) {
		var req struct {
			Source string `json:"source"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return "", httpErrorf(http.StatusBadRequest, "bad_request", "decoding JSON body: %v", err)
		}
		source = req.Source
	}
	if strings.TrimSpace(source) == "" {
		return "", httpErrorf(http.StatusBadRequest, "bad_request", "empty program source")
	}
	return source, nil
}

// readPatch reads a PATCH /session/{id} body: JSON with exactly one
// of "source" (full replacement) or "edit" (one-line replacement), or
// a raw non-JSON body as a full replacement.
func (s *server) readPatch(w http.ResponseWriter, r *http.Request) (*patchRequest, error) {
	body, err := s.readBody(w, r)
	if err != nil {
		return nil, err
	}
	req := &patchRequest{}
	if jsonBody(r, body) {
		if err := json.Unmarshal(body, req); err != nil {
			return nil, httpErrorf(http.StatusBadRequest, "bad_request", "decoding JSON body: %v", err)
		}
	} else {
		req.Source = string(body)
	}
	switch {
	case req.Edit != nil && req.Source != "":
		return nil, httpErrorf(http.StatusBadRequest, "bad_request",
			`body sets both "source" and "edit"; send one`)
	case req.Edit == nil && strings.TrimSpace(req.Source) == "":
		return nil, httpErrorf(http.StatusBadRequest, "bad_request",
			`body must carry replacement "source" or an "edit"`)
	}
	return req, nil
}

// readBody drains the request body under the configured byte limit.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, httpErrorf(http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds the %d byte limit", mbe.Limit)
		}
		return nil, httpErrorf(http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}
	return body, nil
}

// parseCriterion validates the var/line/algo query parameters shared
// by /slice and PATCH /session/{id}.
func parseCriterion(q url.Values) (core.Criterion, string, error) {
	c := core.Criterion{Var: q.Get("var")}
	if v := q.Get("line"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return c, "", httpErrorf(http.StatusBadRequest, "bad_request", "bad line %q: %v", v, err)
		}
		c.Line = n
	}
	algo := q.Get("algo")
	if algo == "" {
		algo = "agrawal"
	}
	switch {
	case c.Var == "":
		return c, "", httpErrorf(http.StatusBadRequest, "bad_request", "missing criterion variable (var)")
	case c.Line <= 0:
		return c, "", httpErrorf(http.StatusBadRequest, "bad_request", "missing or non-positive criterion line (line)")
	}
	for _, a := range knownAlgos {
		if a == algo {
			return c, algo, nil
		}
	}
	return c, "", httpErrorf(http.StatusBadRequest, "unknown_algorithm",
		"unknown algorithm %q (want %s)", algo, strings.Join(knownAlgos, ", "))
}

// boolParam parses an optional boolean query parameter strictly: an
// absent parameter is false, anything strconv.ParseBool rejects is a
// structured 422 — "?explain=yes" must not silently mean false.
func boolParam(r *http.Request, name string) (bool, error) {
	vs, present := r.URL.Query()[name]
	if !present {
		return false, nil
	}
	v := ""
	if len(vs) > 0 {
		v = vs[0]
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, httpErrorf(http.StatusUnprocessableEntity, "invalid_parameter",
			"parameter %s must be a boolean (1/0/true/false), got %q", name, v)
	}
	return b, nil
}
