package main

// Tests for the durable spool wiring and post-mortem bundles: the
// golden bundle schema (every artifact present and parseable after a
// real SIGUSR1), the once-per-process panic bundle, and the spool's
// place in the request path (instrument middleware → spool → scan).

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"jumpslice/internal/obs"
	"jumpslice/internal/obs/spool"
)

// bundleArtifacts is the golden schema: every file a complete bundle
// must contain. meta.json is written last, so once it exists the rest
// must too.
var bundleArtifacts = []string{
	"meta.json",
	"build.json",
	"flight.jsonl",
	"requests.jsonl",
	"slo.json",
	"spool.json",
	"goroutines.txt",
}

// findBundle returns the single bundle directory under dir, polling
// for meta.json (the completeness marker) up to the deadline.
func findBundle(t *testing.T, dir string, deadline time.Duration) string {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if !e.IsDir() || !strings.HasPrefix(e.Name(), "bundle-") {
				continue
			}
			bundle := filepath.Join(dir, e.Name())
			if _, err := os.Stat(filepath.Join(bundle, "meta.json")); err == nil {
				return bundle
			}
		}
		if time.Now().After(stop) {
			t.Fatalf("no complete bundle appeared under %s within %v", dir, deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPostmortemBundleGoldenSchema drives the real operator path: a
// daemon running with a spool and a post-mortem dir receives SIGUSR1
// and must write a bundle containing every artifact in the golden
// schema, each one parseable, with meta/spool contents consistent
// with the requests actually served.
func TestPostmortemBundleGoldenSchema(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1 << 10)
	cfg.SpoolDir = t.TempDir()
	cfg.PostmortemDir = t.TempDir()
	s := newServer(cfg, io.Discard)
	done := make(chan error, 1)
	go func() { done <- serveOn(ln, s) }()

	base := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post(base+"/slice?var=positives&line=14", "text/plain", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	bundle := findBundle(t, cfg.PostmortemDir, 5*time.Second)
	if !strings.HasSuffix(bundle, "-sigusr1") {
		t.Errorf("bundle dir %q should carry the -sigusr1 reason suffix", bundle)
	}

	for _, name := range bundleArtifacts {
		info, err := os.Stat(filepath.Join(bundle, name))
		if err != nil {
			t.Errorf("bundle missing artifact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 && name != "flight.jsonl" && name != "requests.jsonl" {
			t.Errorf("bundle artifact %s is empty", name)
		}
	}

	var meta postmortemMeta
	readJSON(t, filepath.Join(bundle, "meta.json"), &meta)
	if meta.Reason != "sigusr1" {
		t.Errorf("meta.reason = %q, want sigusr1", meta.Reason)
	}
	if meta.PID != os.Getpid() {
		t.Errorf("meta.pid = %d, want %d", meta.PID, os.Getpid())
	}
	if meta.RequestsServed == 0 || meta.WideEvents == 0 {
		t.Errorf("meta should count served requests, got served=%d wide=%d",
			meta.RequestsServed, meta.WideEvents)
	}
	if meta.WrittenNS == 0 || meta.Written == "" {
		t.Error("meta timestamps unset")
	}

	var build buildDetails
	readJSON(t, filepath.Join(bundle, "build.json"), &build)
	if build.Revision == "" {
		t.Error("build.json missing revision")
	}

	var details spoolDetails
	readJSON(t, filepath.Join(bundle, "spool.json"), &details)
	if !details.Enabled {
		t.Error("spool.json should report the spool enabled")
	}
	if details.Stats.Dir != cfg.SpoolDir {
		t.Errorf("spool.json dir = %q, want %q", details.Stats.Dir, cfg.SpoolDir)
	}
	if details.Stats.ActiveSegment == "" {
		t.Error("spool.json missing the active segment pointer")
	}
	if details.Stats.Written == 0 {
		t.Error("spool.json reports zero written records after a served request")
	}

	sliceSeen := false
	for _, ev := range readJSONL(t, filepath.Join(bundle, "requests.jsonl")) {
		if ev.Endpoint == "/slice" && ev.Status == http.StatusOK {
			sliceSeen = true
			if len(ev.Phases) == 0 {
				t.Error("bundled /slice wide event lost its phase timings")
			}
		}
	}
	if !sliceSeen {
		t.Error("requests.jsonl does not contain the served /slice request")
	}

	var slo obs.SLOSnapshot
	readJSON(t, filepath.Join(bundle, "slo.json"), &slo)
	dump, err := os.ReadFile(filepath.Join(bundle, "goroutines.txt"))
	if err != nil || !strings.Contains(string(dump), "goroutine") {
		t.Errorf("goroutines.txt should be a goroutine dump (err=%v)", err)
	}

	// The bundle promised the spool was synced: the active segment it
	// points at must hold the served request on disk right now.
	found := false
	err = spool.Scan(cfg.SpoolDir, spool.Filter{Endpoint: "/slice"}, func(ev *obs.WideEvent, _ []byte) error {
		found = true
		return spool.ErrStop
	})
	if err != nil {
		t.Fatalf("scanning spool: %v", err)
	}
	if !found {
		t.Error("spool scan did not find the served /slice request")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveOn returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down within 10s of SIGTERM")
	}
}

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("%s: %v", filepath.Base(path), err)
	}
}

func readJSONL(t *testing.T, path string) []obs.WideEvent {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []obs.WideEvent
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var ev obs.WideEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("%s: bad line %q: %v", filepath.Base(path), line, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestPostmortemOnPanicOncePerProcess pins the bundle rate limit: the
// first recovered panic writes a bundle, the second does not.
func TestPostmortemOnPanicOncePerProcess(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.PostmortemDir = t.TempDir()
	s, ts := newTestServerConfig(t, cfg)

	for i := 0; i < 2; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig5(t)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Sliced-Fail", "panic")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic failpoint answered %d, want 500", resp.StatusCode)
		}
	}
	if !s.pmPanic.Load() {
		t.Fatal("panic bundle latch never tripped")
	}

	bundles := 0
	entries, err := os.ReadDir(cfg.PostmortemDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "bundle-") {
			bundles++
			if !strings.HasSuffix(e.Name(), "-panic") {
				t.Errorf("bundle %q should carry the -panic reason suffix", e.Name())
			}
		}
	}
	if bundles != 1 {
		t.Errorf("got %d panic bundles, want exactly 1", bundles)
	}
}

// TestWritePostmortemDisabled pins the no-configuration contract: with
// -postmortem-dir unset, writing a bundle is an error, not a surprise
// directory in the working tree.
func TestWritePostmortemDisabled(t *testing.T) {
	s := newServer(testConfig(1<<10), io.Discard)
	if _, err := s.writePostmortem("sigusr1"); err == nil {
		t.Fatal("writePostmortem succeeded with no -postmortem-dir")
	}
	// The panic path must also be a no-op, not a latch trip.
	s.postmortemOnPanic()
	if s.pmPanic.Load() {
		t.Error("panic latch tripped with bundles disabled")
	}
}

// TestSpoolWiring pins the request path: events served through the
// instrument middleware land in the on-disk spool, and /debug/spool
// reports the spool's health.
func TestSpoolWiring(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.SpoolDir = t.TempDir()
	s, ts := newTestServerConfig(t, cfg)
	if err := s.openSpool(); err != nil {
		t.Fatal(err)
	}
	defer s.spool.Close()

	postSlice(t, ts, "var=positives&line=14", fig5(t))
	resp, err := http.Get(ts.URL + "/debug/spool")
	if err != nil {
		t.Fatal(err)
	}
	var details spoolDetails
	if err := json.NewDecoder(resp.Body).Decode(&details); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !details.Enabled || details.Stats.Enqueued == 0 {
		t.Errorf("/debug/spool = %+v, want enabled with enqueued > 0", details)
	}

	s.spool.Sync()
	var got []obs.WideEvent
	err = spool.Scan(cfg.SpoolDir, spool.Filter{}, func(ev *obs.WideEvent, _ []byte) error {
		got = append(got, *ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both the /slice POST and the /debug/spool GET pass through the
	// instrument middleware; at least the first must be on disk (the
	// GET's event may still be in flight behind the sync barrier).
	sliceSeen := false
	for _, ev := range got {
		if ev.Endpoint == "/slice" {
			sliceSeen = true
			if len(ev.Phases) == 0 {
				t.Error("spooled /slice event lost its phase timings")
			}
			if ev.Outcome != "ok" || ev.Status != http.StatusOK {
				t.Errorf("spooled /slice event = %+v, want ok/200", ev)
			}
		}
	}
	if !sliceSeen {
		t.Errorf("spool holds %d events but not the /slice request", len(got))
	}
}

// TestSpoolDisabledByDefault pins the zero-config behavior: no
// -spool-dir means a nil spool, which the middleware and /debug/spool
// must both tolerate.
func TestSpoolDisabledByDefault(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.openSpool(); err != nil {
		t.Fatal(err)
	}
	if s.spool != nil {
		t.Fatal("spool opened without -spool-dir")
	}
	postSlice(t, ts, "var=positives&line=14", fig5(t))
	resp, err := http.Get(ts.URL + "/debug/spool")
	if err != nil {
		t.Fatal(err)
	}
	var details spoolDetails
	if err := json.NewDecoder(resp.Body).Decode(&details); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if details.Enabled {
		t.Error("/debug/spool reports enabled with no spool configured")
	}
}
