package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jumpslice/internal/slicecache"
)

// clusterNode is one in-process daemon of a test fleet, listening on
// a real TCP port so its peers can reach it.
type clusterNode struct {
	s    *server
	addr string
}

// startCluster boots n daemons that all share the same static peer
// list, waits until every node sees every other node up, and tears
// the fleet down with the test.
func startCluster(t *testing.T, n int, mutate func(i int, cfg *config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range lns {
		cfg := testConfig(1 << 12)
		cfg.PeerList = append([]string{}, addrs...)
		cfg.Self = addrs[i]
		cfg.ProbeInterval = 20 * time.Millisecond
		cfg.ProbeTimeout = 500 * time.Millisecond
		cfg.FillTimeout = 2 * time.Second
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := newServer(cfg, io.Discard)
		if err := s.openCluster(); err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(lns[i])
		t.Cleanup(func() {
			srv.Close()
			s.closeCluster()
		})
		nodes[i] = &clusterNode{s: s, addr: addrs[i]}
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, nd := range nodes {
		for nd.s.cluster.peers.UpCount() < n-1 {
			if time.Now().After(deadline) {
				t.Fatalf("fleet never converged: node %s sees %d/%d peers up",
					nd.addr, nd.s.cluster.peers.UpCount(), n-1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nodes
}

// nodeByAddr indexes a fleet by address.
func nodeByAddr(nodes []*clusterNode, addr string) *clusterNode {
	for _, nd := range nodes {
		if nd.addr == addr {
			return nd
		}
	}
	return nil
}

// postNode posts a slice request to one node, optionally with extra
// headers, and returns the response with its decoded body.
func postNode(t *testing.T, addr, query, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/slice?"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// normalizeResponse zeroes the two per-request delivery fields
// (request ID and wall-clock duration) so response bodies can be
// compared byte for byte: everything else in a slice response is a
// pure function of the request tuple.
func normalizeResponse(t *testing.T, body []byte) []byte {
	t.Helper()
	var sr sliceResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("undecodable slice response: %v\n%s", err, body)
	}
	sr.Request = 0
	sr.DurationNS = 0
	out, err := json.Marshal(&sr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterRoutingFillAndProxy is the acceptance choreography: a
// record computed on one node is answered everywhere — by peer fill
// on the key's owner, from memory afterwards, and through a
// transparent proxy from a non-owner — always byte-identical to a
// single-node daemon's answer.
func TestClusterRoutingFillAndProxy(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	src := fig5(t)
	const query = "var=positives&line=14"

	key := slicecache.KeyOf(src)
	owner := nodeByAddr(nodes, nodes[0].s.cluster.ring.Owner(key[:]))
	if owner == nil {
		t.Fatal("ring named an owner outside the fleet")
	}
	// Seed a non-owner: the routed-from marker forces local serving, so
	// this node computes and stores the record without consulting the
	// ring.
	var seed *clusterNode
	for _, nd := range nodes {
		if nd != owner {
			seed = nd
			break
		}
	}
	resp, body := postNode(t, seed.addr, query, src, map[string]string{routedFromHeader: "test"})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("seed request: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if got := resp.Header.Get("X-Sliced-Route"); got != "local" {
		t.Fatalf("hopped request route = %q, want local (loop guard)", got)
	}

	// Reference: a plain single-node daemon with no cluster plane.
	_, solo := newTestServer(t)
	soloResp, err := http.Post(solo.URL+"/slice?"+query, "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	soloBody, _ := io.ReadAll(soloResp.Body)
	soloResp.Body.Close()
	want := normalizeResponse(t, soloBody)
	if got := normalizeResponse(t, body); string(got) != string(want) {
		t.Fatalf("seed node body diverges from single-node:\n%s\nvs\n%s", got, want)
	}

	// The owner misses locally and fills from the seed peer.
	resp, body = postNode(t, owner.addr, query, src, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner request: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "peer-fill" {
		t.Fatalf("owner X-Cache = %q, want peer-fill", got)
	}
	if got := resp.Header.Get("X-Sliced-Route"); got != "peer-fill" {
		t.Fatalf("owner route = %q, want peer-fill", got)
	}
	if got := resp.Header.Get("X-Sliced-Peer"); got != seed.addr {
		t.Fatalf("fill peer = %q, want the seed %q", got, seed.addr)
	}
	if got := normalizeResponse(t, body); string(got) != string(want) {
		t.Fatalf("peer-filled body diverges from single-node:\n%s\nvs\n%s", got, want)
	}

	// The fill promoted the record: the owner now answers from memory.
	resp, body = postNode(t, owner.addr, query, src, nil)
	if got := resp.Header.Get("X-Cache"); got != "result" {
		t.Fatalf("owner second X-Cache = %q, want result", got)
	}
	if got := normalizeResponse(t, body); string(got) != string(want) {
		t.Fatal("memory-served body diverges")
	}

	// The third node proxies to the owner transparently.
	var third *clusterNode
	for _, nd := range nodes {
		if nd != owner && nd != seed {
			third = nd
		}
	}
	resp, body = postNode(t, third.addr, query, src, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied request: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Sliced-Route"); got != "proxied" {
		t.Fatalf("third-node route = %q, want proxied", got)
	}
	if got := resp.Header.Get("X-Sliced-Node"); got != owner.addr {
		t.Fatalf("proxied X-Sliced-Node = %q, want the owner %q", got, owner.addr)
	}
	if got := resp.Header.Get("X-Sliced-Peer"); got != owner.addr {
		t.Fatalf("proxied X-Sliced-Peer = %q, want %q", got, owner.addr)
	}
	if got := resp.Header.Get("X-Cache"); got != "result" {
		t.Fatalf("proxied X-Cache = %q, want result (the owner's verdict rides through)", got)
	}
	if got := normalizeResponse(t, body); string(got) != string(want) {
		t.Fatal("proxied body diverges")
	}

	// The wide events carry the route taxonomy, and the ?route= filter
	// is strict.
	r, err := http.Get("http://" + third.addr + "/debug/requests?route=proxied")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Requests []struct {
			Route string `json:"route"`
			Peer  string `json:"peer"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(r.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(page.Requests) != 1 || page.Requests[0].Peer != owner.addr {
		t.Fatalf("?route=proxied returned %+v", page.Requests)
	}
	r, err = http.Get("http://" + third.addr + "/debug/requests?route=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("?route=bogus answered %d, want 422", r.StatusCode)
	}
}

// A corrupt peer fill — every candidate serving torn records — must
// fall back to local compute: 200, correct body, cluster.fill_corrupt
// counted, never a 5xx.
func TestClusterFillCorruptFallsBackToCompute(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	src := fig5(t)
	const query = "var=positives&line=14"

	key := slicecache.KeyOf(src)
	owner := nodeByAddr(nodes, nodes[0].s.cluster.ring.Owner(key[:]))
	var seed *clusterNode
	for _, nd := range nodes {
		if nd != owner {
			seed = nd
			break
		}
	}
	if resp, _ := postNode(t, seed.addr, query, src, map[string]string{routedFromHeader: "test"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status %d", resp.StatusCode)
	}

	// The failpoint header rides the fill fetch, so every candidate
	// that holds the record serves it torn.
	resp, body := postNode(t, owner.addr, query, src, map[string]string{"X-Sliced-Fail": "fill-corrupt"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt-fill request answered %d, want 200 via local compute: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss (fell back to compute)", got)
	}
	var sr sliceResponse
	if err := json.Unmarshal(body, &sr); err != nil || len(sr.Lines) == 0 {
		t.Fatalf("fallback body broken: %v %s", err, body)
	}
	if got := owner.s.reg.Counter("cluster.fill_corrupt").Value(); got < 1 {
		t.Fatalf("cluster.fill_corrupt = %d, want >= 1", got)
	}
}

// A node whose key owner is down serves locally instead of erroring.
func TestClusterOwnerDownDegradesToLocal(t *testing.T) {
	// One live node in a configured fleet of three: the two dead
	// addresses never come up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := ln.Addr().String()
	cfg := testConfig(1 << 12)
	cfg.PeerList = []string{self, "127.0.0.1:1", "127.0.0.1:2"}
	cfg.Self = self
	cfg.ProbeInterval = 10 * time.Millisecond
	s := newServer(cfg, io.Discard)
	if err := s.openCluster(); err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); s.closeCluster() })

	// Whoever owns fig5, a request here must be served here: either we
	// own it, or the owner is down and routing degrades to local.
	resp, body := postNode(t, self, "var=positives&line=14", fig5(t), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request answered %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Sliced-Route"); got != "local" {
		t.Fatalf("route = %q, want local", got)
	}
}

// The fill endpoint validates its key strictly and serves cache state
// only.
func TestFillEndpointValidation(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1 << 12)
	cfg.DiskDir = dir
	s := newServer(cfg, io.Discard)
	if err := s.openCluster(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.closeCluster)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for _, bad := range []string{"", "zz", "abc123", strings.Repeat("q", 64)} {
		r, err := http.Get(ts.URL + "/internal/fill?key=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		var env apiError
		if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != "invalid_parameter" {
			t.Fatalf("key=%q answered %d code %q, want 422 invalid_parameter", bad, r.StatusCode, env.Error.Code)
		}
	}
	// A well-formed but absent key is a 404 miss.
	r, err := http.Get(ts.URL + "/internal/fill?key=" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key answered %d, want 404", r.StatusCode)
	}
}

// TestClusterWarmRestartFromDisk is the warm-restart acceptance: a
// record computed before a restart is served after it straight from
// the disk tier, with zero pipeline work on the restarted node.
func TestClusterWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	boot := func() (*server, *httptest.Server, func()) {
		cfg := testConfig(1 << 12)
		cfg.DiskDir = dir
		s := newServer(cfg, io.Discard)
		if err := s.openCluster(); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts, func() { ts.Close(); s.closeCluster() }
	}
	src := fig5(t)
	const query = "var=positives&line=14"

	s1, ts1, stop1 := boot()
	resp1, sr1 := postSlice(t, ts1, query, src)
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	if got := resp1.Header.Get("X-Sliced-Route"); got != "local" {
		t.Fatalf("route = %q, want local", got)
	}
	resp2, _ := postSlice(t, ts1, query, src)
	if got := resp2.Header.Get("X-Cache"); got != "result" {
		t.Fatalf("second request X-Cache = %q, want result", got)
	}
	if s1.reg.Counter("core.slices").Value() != 1 {
		t.Fatalf("core.slices = %d after a miss and a result hit, want 1", s1.reg.Counter("core.slices").Value())
	}
	stop1()

	s2, ts2, stop2 := boot()
	defer stop2()
	resp3, sr3 := postSlice(t, ts2, query, src)
	if got := resp3.Header.Get("X-Cache"); got != "disk" {
		t.Fatalf("post-restart X-Cache = %q, want disk (warm hit)", got)
	}
	if got := s2.reg.Counter("core.slices").Value(); got != 0 {
		t.Fatalf("restarted node ran %d slices for a warm hit, want 0", got)
	}
	// Same content as before the restart.
	sr1.Request, sr3.Request = 0, 0
	sr1.DurationNS, sr3.DurationNS = 0, 0
	b1, _ := json.Marshal(sr1)
	b3, _ := json.Marshal(sr3)
	if string(b1) != string(b3) {
		t.Fatalf("warm-restart body diverges:\n%s\nvs\n%s", b1, b3)
	}
	// And it promoted: the next hit is from memory.
	resp4, _ := postSlice(t, ts2, query, src)
	if got := resp4.Header.Get("X-Cache"); got != "result" {
		t.Fatalf("post-promotion X-Cache = %q, want result", got)
	}

	// /debug/cluster reports the tiers.
	r, err := http.Get(ts2.URL + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var dbg struct {
		Enabled bool `json:"enabled"`
		Tiers   struct {
			Result *slicecache.ResultStats `json:"result"`
			Disk   *struct {
				Entries int `json:"entries"`
			} `json:"disk"`
		} `json:"tiers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if !dbg.Enabled || dbg.Tiers.Result == nil || dbg.Tiers.Disk == nil || dbg.Tiers.Disk.Entries == 0 {
		t.Fatalf("/debug/cluster = %+v", dbg)
	}
}
