package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/progen"
)

// decodeEnvelope decodes and sanity-checks the structured error
// envelope every non-2xx response must carry.
func decodeEnvelope(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("%s: error Content-Type = %q, want application/json", resp.Request.URL, ct)
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatalf("%s: error body is not the JSON envelope: %v", resp.Request.URL, err)
	}
	if ae.Error.Status != resp.StatusCode {
		t.Errorf("%s: envelope status %d != HTTP status %d", resp.Request.URL, ae.Error.Status, resp.StatusCode)
	}
	if ae.Error.Message == "" {
		t.Errorf("%s: envelope has no message", resp.Request.URL)
	}
	if ae.Error.RequestID == 0 {
		t.Errorf("%s: envelope has no request_id", resp.Request.URL)
	}
	return ae.Error
}

// bigProgram renders a generated unstructured program large enough
// that its analysis takes hundreds of milliseconds, with a valid
// write criterion to slice on.
func bigProgram(t *testing.T, stmts int) (src, critVar string, critLine int) {
	t.Helper()
	p := progen.Unstructured(progen.Config{Seed: 5, Stmts: stmts})
	wcs := progen.WriteCriteria(p)
	if len(wcs) == 0 {
		t.Fatal("generated program has no write criteria")
	}
	return lang.Format(p, lang.PrintOptions{}), wcs[len(wcs)-1].Var, wcs[len(wcs)-1].Line
}

// TestErrorEnvelopeTable pins every client-fault path of the serving
// surface to its status code and machine-readable error code. None of
// them may surface as a 500 or as a plain-text body.
func TestErrorEnvelopeTable(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.MaxStmts = 10 // make fig5 (≈15 statements) oversized for one case
	small, tsSmall := newTestServerConfig(t, cfg)
	_ = small
	_, ts := newTestServer(t)

	cfgBody := testConfig(1 << 10)
	cfgBody.MaxBody = 64
	_, tsBody := newTestServerConfig(t, cfgBody)

	fig := fig5(t)
	cases := []struct {
		name       string
		url        string // relative, with query
		method     string
		body       string
		contentTyp string
		server     *httptest.Server
		wantStatus int
		wantCode   string
	}{
		{"missing var", "/slice?line=14", "POST", fig, "text/plain", ts, 400, "bad_request"},
		{"missing line", "/slice?var=positives", "POST", fig, "text/plain", ts, 400, "bad_request"},
		{"empty body", "/slice?var=positives&line=14", "POST", "", "text/plain", ts, 400, "bad_request"},
		{"bad line value", "/slice?var=positives&line=abc", "POST", fig, "text/plain", ts, 400, "bad_request"},
		{"undecodable json", "/slice?var=positives&line=14", "POST", "{not json", "application/json", ts, 400, "bad_request"},
		{"unknown algorithm", "/slice?var=positives&line=14&algo=magic", "POST", fig, "text/plain", ts, 400, "unknown_algorithm"},
		{"malformed source", "/slice?var=positives&line=14", "POST", "while (", "text/plain", ts, 422, "invalid_program"},
		{"unknown criterion var", "/slice?var=nope&line=14", "POST", fig, "text/plain", ts, 422, "slice_failed"},
		{"unknown criterion line", "/slice?var=positives&line=999", "POST", fig, "text/plain", ts, 422, "slice_failed"},
		{"oversized body", "/slice?var=positives&line=14", "POST", fig, "text/plain", tsBody, 413, "body_too_large"},
		{"oversized program", "/slice?var=positives&line=14", "POST", fig, "text/plain", tsSmall, 413, "program_too_large"},
		{"unknown failpoint", "/slice?var=positives&line=14", "POST", fig, "text/plain", ts, 400, "bad_request"},
		{"unknown path", "/nope", "GET", "", "", ts, 404, "not_found"},
		{"method not allowed on /slice", "/slice", "GET", "", "", ts, 405, "method_not_allowed"},
		{"method not allowed on /metrics", "/metrics", "POST", "", "text/plain", ts, 405, "method_not_allowed"},
		{"debug flight bad n", "/debug/flight?n=x", "GET", "", "", ts, 422, "invalid_parameter"},
		{"debug flight negative n", "/debug/flight?n=-3", "GET", "", "", ts, 422, "invalid_parameter"},
		{"debug flight empty n", "/debug/flight?n=", "GET", "", "", ts, 422, "invalid_parameter"},
		{"debug trace missing id", "/debug/trace", "GET", "", "", ts, 400, "bad_request"},
		{"debug trace bad id", "/debug/trace?id=-1", "GET", "", "", ts, 400, "bad_request"},
		{"debug trace unknown id", "/debug/trace?id=424242", "GET", "", "", ts, 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.server.URL+tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentTyp != "" {
				req.Header.Set("Content-Type", tc.contentTyp)
			}
			if tc.name == "unknown failpoint" {
				req.Header.Set("X-Sliced-Fail", "explode")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				data, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (body: %s)", resp.StatusCode, tc.wantStatus, data)
			}
			eb := decodeEnvelope(t, resp)
			if eb.Code != tc.wantCode {
				t.Errorf("code %q, want %q (message: %s)", eb.Code, tc.wantCode, eb.Message)
			}
			if resp.StatusCode == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
				t.Error("405 without an Allow header")
			}
		})
	}
}

// TestOverloadSheds is the end-to-end load-shedding check: on a
// daemon with one admission slot, a second concurrent request is
// answered 503 with Retry-After while the in-flight one keeps its
// slot and completes successfully once unblocked.
func TestOverloadSheds(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.MaxInflight = 1
	s, ts := newTestServerConfig(t, cfg)

	type result struct {
		status int
		err    error
	}
	first := make(chan result, 1)
	go func() {
		req, err := http.NewRequest("POST", ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig5(t)))
		if err != nil {
			first <- result{0, err}
			return
		}
		req.Header.Set("X-Sliced-Fail", "block")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			first <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- result{resp.StatusCode, nil}
	}()

	// Wait until the blocked request holds the only admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked request never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/slice?var=positives&line=14", "text/plain", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without a Retry-After header")
	}
	if eb := decodeEnvelope(t, resp); eb.Code != "overloaded" {
		t.Errorf("code %q, want overloaded", eb.Code)
	}
	if got := s.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	// Release the in-flight request; it must complete normally — load
	// shedding never cancels admitted work.
	close(s.unblock)
	select {
	case r := <-first:
		if r.err != nil {
			t.Fatalf("blocked request failed: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("blocked request: status %d, want 200", r.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked request did not complete after release")
	}
}

// TestClientDisconnectCancelsAnalysis is the end-to-end cancellation
// check: a client that goes away mid-analysis aborts the pipeline
// cooperatively, observable as a "cancel" trace event in the flight
// recorder and a core.cancellations tick in /metrics.
func TestClientDisconnectCancelsAnalysis(t *testing.T) {
	cfg := testConfig(1 << 12)
	cfg.Timeout = time.Minute // only the disconnect should cancel
	s, ts := newTestServerConfig(t, cfg)

	src, v, line := bigProgram(t, 8000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	url := fmt.Sprintf("%s/slice?var=%s&line=%d", ts.URL, v, line)
	req, err := http.NewRequestWithContext(ctx, "POST", url, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")

	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			err = fmt.Errorf("request completed with status %d despite disconnect", resp.StatusCode)
		}
		done <- err
	}()

	// Hang up as soon as the request's pipeline publishes its first
	// trace event — analysis of an 8000-statement program has hundreds
	// of milliseconds still ahead of it at that point.
	deadline := time.Now().Add(10 * time.Second)
	for s.fr.Written() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no trace events; analysis never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context canceled", err)
	}

	// The pipeline notices asynchronously; poll for the journaled
	// cancellation.
	deadline = time.Now().Add(10 * time.Second)
	for {
		sawCancel := false
		for _, ev := range s.fr.Events() {
			if ev.Kind == obs.KindCancel {
				sawCancel = true
				break
			}
		}
		if sawCancel {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cancel trace event after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(data), "jumpslice_core_cancellations_total") {
		t.Errorf("metrics exposition missing jumpslice_core_cancellations_total:\n%s", data)
	}
}

// TestRequestTimeoutAnswers503 pins the deadline path: a server whose
// per-request budget is already unmeetable answers 503 "timeout", not
// a hang and not a 4xx blaming the client.
func TestRequestTimeoutAnswers503(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.Timeout = time.Nanosecond
	_, ts := newTestServerConfig(t, cfg)

	resp, err := http.Post(ts.URL+"/slice?var=positives&line=14", "text/plain", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if eb := decodeEnvelope(t, resp); eb.Code != "timeout" {
		t.Errorf("code %q, want timeout", eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("timeout 503 without a Retry-After header")
	}
}

// TestInjectedPanicIsolated pins panic isolation: a panic inside the
// handler answers 500 with the request ID, and the daemon serves the
// next request normally.
func TestInjectedPanicIsolated(t *testing.T) {
	_, ts := newTestServer(t)

	req, err := http.NewRequest("POST", ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Sliced-Fail", "panic")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	eb := decodeEnvelope(t, resp)
	resp.Body.Close()
	if eb.Code != "internal" {
		t.Errorf("code %q, want internal", eb.Code)
	}
	if !strings.Contains(eb.Message, fmt.Sprint(eb.RequestID)) {
		t.Errorf("500 message %q does not name request %d", eb.Message, eb.RequestID)
	}

	// The daemon must keep serving.
	resp2, sr := postSlice(t, ts, "var=positives&line=14", fig5(t))
	defer resp2.Body.Close()
	if len(sr.Lines) == 0 {
		t.Error("request after the panic returned an empty slice")
	}
}

// TestFailpointsDisabledInProduction asserts the failure-injection
// header is inert unless the test-only flag armed it.
func TestFailpointsDisabledInProduction(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.Failpoints = false
	_, ts := newTestServerConfig(t, cfg)

	req, err := http.NewRequest("POST", ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Sliced-Fail", "panic")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d with failpoints disabled, want 200", resp.StatusCode)
	}
}
