package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jumpslice/internal/obs"
)

// syncBuffer is a race-free log sink for the access-log tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newLoggingTestServer(t *testing.T, s *server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func lastLine(out string) string {
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	return lines[len(lines)-1]
}

// requestsPage decodes a /debug/requests response.
type requestsPage struct {
	Written  uint64          `json:"written"`
	Capacity int             `json:"capacity"`
	Count    int             `json:"count"`
	Requests []obs.WideEvent `json:"requests"`
}

func getRequests(t *testing.T, base, query string) *requestsPage {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /debug/requests%s: status %d: %s", query, resp.StatusCode, data)
	}
	var page requestsPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return &page
}

func TestWideEventRecordsSliceRequest(t *testing.T) {
	_, ts := newTestServer(t)
	postSlice(t, ts, "var=positives&line=14", fig5(t))

	page := getRequests(t, ts.URL, "?endpoint=/slice")
	if page.Count != 1 || len(page.Requests) != 1 {
		t.Fatalf("count = %d, want one /slice event: %+v", page.Count, page)
	}
	ev := page.Requests[0]
	if ev.Method != "POST" || ev.Path != "/slice" || ev.Endpoint != "/slice" || ev.Status != 200 {
		t.Errorf("event identity: %+v", ev)
	}
	if ev.Outcome != "ok" || ev.ErrorCode != "" {
		t.Errorf("outcome = %q code = %q, want ok with no code", ev.Outcome, ev.ErrorCode)
	}
	if ev.Algo != "agrawal" || ev.Stmts == 0 || ev.SliceLines == 0 {
		t.Errorf("slicing annotations missing: algo=%q stmts=%d slice=%d", ev.Algo, ev.Stmts, ev.SliceLines)
	}
	if ev.Cache != "miss" {
		t.Errorf("cache tier = %q, want miss on first request", ev.Cache)
	}
	if ev.DurationNS <= 0 || ev.BytesOut <= 0 || ev.Req == 0 || ev.TimeNS == 0 {
		t.Errorf("exchange accounting: dur=%d bytes=%d req=%d ts=%d", ev.DurationNS, ev.BytesOut, ev.Req, ev.TimeNS)
	}
	// A cold analysis runs the full pipeline; its phase spans must be
	// teed into the wide event.
	if len(ev.Phases) == 0 {
		t.Fatal("cold /slice event carries no phase durations")
	}
	names := map[string]bool{}
	for _, p := range ev.Phases {
		names[p.Name] = true
		if p.NS < 0 {
			t.Errorf("phase %s has negative duration", p.Name)
		}
	}
	if !names["phase.analyze.cfg"] || !names["phase.analyze"] {
		t.Errorf("phases %v missing phase.analyze.cfg", ev.Phases)
	}

	// A second identical request is a cache hit: no pipeline phases,
	// tier "hit".
	postSlice(t, ts, "var=positives&line=14", fig5(t))
	page = getRequests(t, ts.URL, "?endpoint=/slice")
	if page.Count != 2 {
		t.Fatalf("count = %d, want 2", page.Count)
	}
	hit := page.Requests[1]
	if hit.Cache != "hit" {
		t.Errorf("second request cache tier = %q, want hit", hit.Cache)
	}
}

func TestWideEventErrorAndClientOutcomes(t *testing.T) {
	_, ts := newTestServer(t)
	// A 404 and a 400, then verify classification.
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/slice", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	page := getRequests(t, ts.URL, "")
	if len(page.Requests) != 2 {
		t.Fatalf("requests = %+v, want 2", page.Requests)
	}
	notFound, badReq := page.Requests[0], page.Requests[1]
	if notFound.Status != 404 || notFound.Outcome != "client_error" || notFound.ErrorCode != "not_found" {
		t.Errorf("404 event: %+v", notFound)
	}
	if notFound.Endpoint != "(other)" {
		t.Errorf("unknown path endpoint = %q, want (other)", notFound.Endpoint)
	}
	if badReq.Status != 400 || badReq.Outcome != "client_error" || badReq.ErrorCode != "bad_request" {
		t.Errorf("400 event: %+v", badReq)
	}
}

func TestRequestsFilters(t *testing.T) {
	_, ts := newTestServer(t)
	postSlice(t, ts, "var=positives&line=14", fig5(t))
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	postSlice(t, ts, "var=positives&line=14", fig5(t))

	if page := getRequests(t, ts.URL, "?status=404"); page.Count != 1 || page.Requests[0].Status != 404 {
		t.Errorf("status filter: %+v", page)
	}
	if page := getRequests(t, ts.URL, "?endpoint=/slice"); page.Count != 2 {
		t.Errorf("endpoint filter: %+v", page)
	}
	if page := getRequests(t, ts.URL, "?endpoint=/slice&n=1"); page.Count != 1 || page.Requests[0].Cache != "hit" {
		t.Errorf("n filter must keep the newest: %+v", page)
	}
	// min_ms=0 admits everything; an absurd threshold admits nothing.
	// (Scoped to /slice: the /debug/requests reads above are themselves
	// in the ring by now.)
	if page := getRequests(t, ts.URL, "?endpoint=/slice&min_ms=0"); page.Count != 2 {
		t.Errorf("min_ms=0: count = %d, want 2", page.Count)
	}
	if page := getRequests(t, ts.URL, "?endpoint=/slice&min_ms=3600000"); page.Count != 0 {
		t.Errorf("min_ms=1h: count = %d, want 0", page.Count)
	}
	if page := getRequests(t, ts.URL, ""); page.Written < 3 || page.Capacity != 1024 {
		t.Errorf("ring accounting: written=%d cap=%d", page.Written, page.Capacity)
	}
}

// TestRequestsOutcomeFilter pins the ?outcome= filter: it matches the
// event taxonomy exactly and composes with the other filters.
func TestRequestsOutcomeFilter(t *testing.T) {
	_, ts := newTestServer(t)
	postSlice(t, ts, "var=positives&line=14", fig5(t))
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Sliced-Fail", "panic")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if page := getRequests(t, ts.URL, "?outcome=ok"); page.Count < 1 {
		t.Errorf("outcome=ok: %+v", page)
	} else {
		for _, ev := range page.Requests {
			if ev.Outcome != "ok" {
				t.Errorf("outcome=ok returned %+v", ev)
			}
		}
	}
	if page := getRequests(t, ts.URL, "?outcome=client_error"); page.Count != 1 || page.Requests[0].Status != 404 {
		t.Errorf("outcome=client_error: %+v", page)
	}
	if page := getRequests(t, ts.URL, "?outcome=panic"); page.Count != 1 || page.Requests[0].Status != 500 {
		t.Errorf("outcome=panic: %+v", page)
	}
	if page := getRequests(t, ts.URL, "?outcome=shed"); page.Count != 0 {
		t.Errorf("outcome=shed should match nothing here: %+v", page)
	}
	// Composition: outcome + endpoint.
	if page := getRequests(t, ts.URL, "?outcome=ok&endpoint=/slice"); page.Count != 1 {
		t.Errorf("outcome=ok&endpoint=/slice: %+v", page)
	}
}

func TestRequestsFilterValidation(t *testing.T) {
	_, ts := newTestServer(t)
	for _, query := range []string{
		"?status=bogus", "?status=99", "?status=600", "?status=",
		"?min_ms=-1", "?min_ms=fast", "?n=-2", "?n=abc", "?endpoint=",
		"?outcome=", "?outcome=OK", "?outcome=success", "?outcome=ok%20",
	} {
		resp, err := http.Get(ts.URL + "/debug/requests" + query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("GET /debug/requests%s: status %d, want 422", query, resp.StatusCode)
		}
		if eb := decodeEnvelope(t, resp); eb.Code != "invalid_parameter" {
			t.Errorf("GET /debug/requests%s: code %q, want invalid_parameter", query, eb.Code)
		}
		resp.Body.Close()
	}
}

func TestSLOViewAndExemplarTrace(t *testing.T) {
	cfg := testConfig(1 << 12)
	cfg.Objectives = obs.SLOObjectives{Quantile: 0.99, Latency: 50 * time.Millisecond, ErrRate: 0.01}
	_, ts := newTestServerConfig(t, cfg)
	for i := 0; i < 3; i++ {
		postSlice(t, ts, "var=positives&line=14", fig5(t))
	}

	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.SLOSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	var slice *obs.EndpointSLO
	for i := range snap.Endpoints {
		if snap.Endpoints[i].Endpoint == "/slice" {
			slice = &snap.Endpoints[i]
		}
	}
	if slice == nil {
		t.Fatalf("no /slice endpoint in SLO snapshot: %+v", snap)
	}
	if slice.Requests != 3 || slice.Errors != 0 || slice.P50NS <= 0 {
		t.Errorf("/slice window: %+v", slice)
	}
	if len(slice.Exemplars) == 0 {
		t.Fatal("no exemplar for /slice")
	}

	// The exemplar — the window's slowest request — must resolve at
	// /debug/trace?id=: the aggregate-to-drill-down edge.
	ex := slice.Exemplars[0]
	if ex.Request == 0 || ex.DurNS <= 0 {
		t.Fatalf("exemplar: %+v", ex)
	}
	tresp, err := http.Get(fmt.Sprintf("%s/debug/trace?id=%d", ts.URL, ex.Request))
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("exemplar trace: status %d, want 200", tresp.StatusCode)
	}
	data, _ := io.ReadAll(tresp.Body)
	if !bytes.Contains(data, []byte("traceEvents")) {
		t.Errorf("exemplar trace is not Chrome trace JSON: %.120s", data)
	}
}

func TestMetricsCarrySLOSeries(t *testing.T) {
	cfg := testConfig(1 << 12)
	cfg.Objectives = obs.SLOObjectives{Quantile: 0.99, Latency: 50 * time.Millisecond, ErrRate: 0.01}
	_, ts := newTestServerConfig(t, cfg)
	postSlice(t, ts, "var=positives&line=14", fig5(t))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	out := string(data)
	for _, want := range []string{
		`jumpslice_http_requests_total{endpoint="/slice"} 1`,
		"# TYPE jumpslice_http_p99_ns gauge",
		"# TYPE jumpslice_http_latency_burn gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestShedOutcomeInWideEvent(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.MaxInflight = 1
	s, ts := newTestServerConfig(t, cfg)

	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequest("POST", ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig5(t)))
		if err != nil {
			return
		}
		req.Header.Set("X-Sliced-Fail", "block")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked request never took the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/slice?var=positives&line=14", "text/plain", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", resp.StatusCode)
	}
	close(s.unblock)
	<-done

	page := getRequests(t, ts.URL, "?status=503")
	if page.Count != 1 || page.Requests[0].Outcome != "shed" || page.Requests[0].ErrorCode != "overloaded" {
		t.Fatalf("shed event: %+v", page.Requests)
	}
	// The SLO window books the shed separately from errors.
	sresp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap obs.SLOSnapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, e := range snap.Endpoints {
		if e.Endpoint == "/slice" {
			if e.Sheds != 1 || e.Errors != 0 {
				t.Errorf("/slice window sheds=%d errors=%d, want 1 shed 0 errors", e.Sheds, e.Errors)
			}
		}
	}
}

func TestPanicOutcomeInWideEvent(t *testing.T) {
	_, ts := newTestServer(t)
	req, err := http.NewRequest("POST", ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Sliced-Fail", "panic")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	page := getRequests(t, ts.URL, "?status=500")
	if page.Count != 1 || page.Requests[0].Outcome != "panic" {
		t.Fatalf("panic event: %+v", page.Requests)
	}
}

func TestSessionPatchWideEvent(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/session", "text/plain", strings.NewReader(fig5(t)))
	if err != nil {
		t.Fatal(err)
	}
	var opened sessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&opened); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body := `{"edit":{"op":"replace","line":1,"text":"sum = 1;"}}`
	req, err := http.NewRequest("PATCH",
		ts.URL+"/session/"+opened.Session+"?var=positives&line=14", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH: status %d", resp.StatusCode)
	}

	page := getRequests(t, ts.URL, "?endpoint=/session/{id}")
	if page.Count != 1 {
		t.Fatalf("session patch events: %+v", page)
	}
	ev := page.Requests[0]
	if ev.Incremental == "" {
		t.Error("patch event missing incremental tier")
	}
	if ev.Algo != "agrawal" || ev.Stmts == 0 || ev.SliceLines == 0 {
		t.Errorf("patch annotations: algo=%q stmts=%d slice=%d", ev.Algo, ev.Stmts, ev.SliceLines)
	}
	// The open event carries stmts too.
	open := getRequests(t, ts.URL, "?endpoint=/session")
	if open.Count != 1 || open.Requests[0].Stmts == 0 {
		t.Errorf("session open event: %+v", open.Requests)
	}
}

func TestAccessLogFormats(t *testing.T) {
	// Text format: one key=value line per request.
	var buf syncBuffer
	cfg := testConfig(1 << 10)
	s := newServer(cfg, &buf)
	ts := newLoggingTestServer(t, s)
	postSlice(t, ts, "var=positives&line=14", fig5(t))
	line := lastLine(buf.String())
	for _, want := range []string{"req=1 POST /slice 200", "outcome=ok", "cache=miss", "algo=agrawal", "bytes="} {
		if !strings.Contains(line, want) {
			t.Errorf("text access log %q missing %q", line, want)
		}
	}

	// JSON format: the same wide event as one JSON object per line.
	var jbuf syncBuffer
	jcfg := testConfig(1 << 10)
	jcfg.LogFormat = "json"
	js := newServer(jcfg, &jbuf)
	jts := newLoggingTestServer(t, js)
	postSlice(t, jts, "var=positives&line=14", fig5(t))
	jline := lastLine(jbuf.String())
	idx := strings.Index(jline, "{")
	if idx < 0 {
		t.Fatalf("JSON access log line carries no object: %q", jline)
	}
	var ev obs.WideEvent
	if err := json.Unmarshal([]byte(jline[idx:]), &ev); err != nil {
		t.Fatalf("JSON access log line does not parse: %v: %q", err, jline)
	}
	// Identical fields in both formats: what text prints, JSON carries.
	if ev.Method != "POST" || ev.Path != "/slice" || ev.Status != 200 ||
		ev.Outcome != "ok" || ev.Cache != "miss" || ev.Algo != "agrawal" || ev.BytesOut <= 0 {
		t.Errorf("JSON access log event: %+v", ev)
	}
	if len(ev.Phases) == 0 {
		t.Error("JSON access log event missing phase durations")
	}
}

func TestBuildAndHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/build")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bd buildDetails
	if err := json.NewDecoder(resp.Body).Decode(&bd); err != nil {
		t.Fatal(err)
	}
	if bd.GoVersion == "" || bd.Revision == "" {
		t.Errorf("build details: %+v", bd)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h struct {
		Status   string `json:"status"`
		Revision string `json:"revision"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Revision != bd.Revision {
		t.Errorf("healthz = %+v, want ok with revision %q", h, bd.Revision)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	_, ts := newTestServer(t) // pprof off by default
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	cfg := testConfig(1 << 10)
	cfg.Pprof = true
	_, pts := newTestServerConfig(t, cfg)
	resp, err = http.Get(pts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof: status %d, want 200", resp.StatusCode)
	}
}

func TestEndpointOf(t *testing.T) {
	for path, want := range map[string]string{
		"/slice":            "/slice",
		"/session":          "/session",
		"/session/17":       "/session/{id}",
		"/session/17/extra": "/session/{id}",
		"/debug/slo":        "/debug/slo",
		"/debug/pprof/heap": "/debug/pprof",
		"/metrics":          "/metrics",
		"/wat":              "(other)",
		"/":                 "(other)",
	} {
		if got := endpointOf(path); got != want {
			t.Errorf("endpointOf(%q) = %q, want %q", path, got, want)
		}
	}
}
