package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"jumpslice/internal/slicecache"
)

// TestCacheMissThenHit asserts the X-Cache header narrates the cache's
// verdict — first request for a program is a miss, repeats are hits —
// and that the cached path answers byte-identically to the first.
func TestCacheMissThenHit(t *testing.T) {
	_, ts := newTestServer(t)
	fig := fig5(t)

	resp1, sr1 := postSlice(t, ts, "var=positives&line=14", fig)
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	resp2, sr2 := postSlice(t, ts, "var=positives&line=14", fig)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
	if fmt.Sprint(sr1.Lines) != fmt.Sprint(sr2.Lines) || sr1.Text != sr2.Text {
		t.Errorf("cached response differs from uncached: %v vs %v", sr1.Lines, sr2.Lines)
	}
	// A different algorithm on the same program still hits: one
	// analysis serves every algorithm.
	resp3, _ := postSlice(t, ts, "var=positives&line=14&algo=conventional", fig)
	if got := resp3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("different-algo request X-Cache = %q, want hit", got)
	}
}

// TestCacheOff asserts -cache-off removes the header and the /debug
// surface reports disabled.
func TestCacheOff(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.CacheOff = true
	_, ts := newTestServerConfig(t, cfg)
	resp, _ := postSlice(t, ts, "var=positives&line=14", fig5(t))
	if got := resp.Header.Get("X-Cache"); got != "" {
		t.Errorf("X-Cache = %q with the cache off, want absent", got)
	}
	dbg, err := http.Get(ts.URL + "/debug/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Body.Close()
	var state struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.NewDecoder(dbg.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state.Enabled {
		t.Error("/debug/cache reports enabled with -cache-off")
	}
}

// TestETagRoundTrip asserts the conditional-request protocol: a 200
// carries a strong ETag, replaying it in If-None-Match answers 304
// with no body, and a different request tuple gets a different tag.
func TestETagRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	fig := fig5(t)

	resp, _ := postSlice(t, ts, "var=positives&line=14", fig)
	etag := resp.Header.Get("ETag")
	if etag == "" || strings.HasPrefix(etag, "W/") || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}

	req, err := http.NewRequest("POST", ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	nm, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Body.Close()
	if nm.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match replay: status %d, want 304", nm.StatusCode)
	}
	if body, _ := io.ReadAll(nm.Body); len(body) != 0 {
		t.Errorf("304 carried a %d-byte body", len(body))
	}
	if nm.Header.Get("ETag") != etag {
		t.Errorf("304 ETag = %q, want %q", nm.Header.Get("ETag"), etag)
	}

	// The validator covers the whole request tuple, not just the
	// source: a different criterion must produce a different tag.
	other, _ := postSlice(t, ts, "var=positives&line=12", fig)
	if other.Header.Get("ETag") == etag {
		t.Error("different criterion produced the same ETag")
	}
	// Stale and unrelated validators still get the full response.
	req2, _ := http.NewRequest("POST", ts.URL+"/slice?var=positives&line=14", strings.NewReader(fig))
	req2.Header.Set("If-None-Match", `"deadbeef"`)
	full, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Body.Close()
	if full.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", full.StatusCode)
	}
}

// TestDebugCacheEndpoint asserts /debug/cache exposes the live ledger.
func TestDebugCacheEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	fig := fig5(t)
	postSlice(t, ts, "var=positives&line=14", fig)
	postSlice(t, ts, "var=positives&line=14", fig)

	resp, err := http.Get(ts.URL + "/debug/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state struct {
		Enabled bool             `json:"enabled"`
		Stats   slicecache.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if !state.Enabled {
		t.Fatal("/debug/cache reports disabled on a default server")
	}
	st := state.Stats
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry, positive bytes", st)
	}
	if st.MaxBytes != slicecache.DefaultMaxBytes {
		t.Errorf("max_bytes = %d, want the %d default", st.MaxBytes, slicecache.DefaultMaxBytes)
	}
}

// TestNegativeCacheReplay asserts client faults ride the negative
// cache with their status intact: the same malformed program answers
// 422 invalid_program both cold and from memory, and an oversized one
// keeps its 413.
func TestNegativeCacheReplay(t *testing.T) {
	cfg := testConfig(1 << 10)
	cfg.MaxStmts = 10
	s, ts := newTestServerConfig(t, cfg)

	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/slice?var=x&line=1", "text/plain", strings.NewReader("while ("))
		if err != nil {
			t.Fatal(err)
		}
		eb := decodeEnvelope(t, resp)
		resp.Body.Close()
		if resp.StatusCode != 422 || eb.Code != "invalid_program" {
			t.Fatalf("attempt %d: status %d code %q, want 422 invalid_program", i, resp.StatusCode, eb.Code)
		}
	}
	big := fig5(t) // 15 statements > MaxStmts 10
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/slice?var=positives&line=14", "text/plain", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		eb := decodeEnvelope(t, resp)
		resp.Body.Close()
		if resp.StatusCode != 413 || eb.Code != "program_too_large" {
			t.Fatalf("attempt %d: status %d code %q, want 413 program_too_large", i, resp.StatusCode, eb.Code)
		}
	}
	// Both faults were served from memory the second time.
	if st := s.cache.Stats(); st.NegHits != 2 {
		t.Errorf("NegHits = %d, want 2 (stats: %+v)", st.NegHits, st)
	}
}

// TestCacheCoalescing floods the daemon with identical concurrent
// requests and asserts exactly one analysis ran (one miss) while all
// succeed with identical slices. Scheduling decides how the rest
// split between coalesced (joined the in-flight analysis) and hit
// (arrived after it finished) — both verdicts mean "reused".
func TestCacheCoalescing(t *testing.T) {
	cfg := testConfig(1 << 12)
	cfg.MaxInflight = 64
	_, ts := newTestServerConfig(t, cfg)
	src, v, line := bigProgram(t, 3000)
	query := fmt.Sprintf("var=%s&line=%d", v, line)

	const n = 8
	var wg sync.WaitGroup
	verdicts := make([]string, n)
	lines := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/slice?"+query, "text/plain", strings.NewReader(src))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var sr sliceResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				errs[i] = err
				return
			}
			verdicts[i] = resp.Header.Get("X-Cache")
			lines[i] = fmt.Sprint(sr.Lines)
		}(i)
	}
	wg.Wait()
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		counts[verdicts[i]]++
		if lines[i] != lines[0] {
			t.Errorf("request %d sliced differently: %s vs %s", i, lines[i], lines[0])
		}
	}
	if counts["miss"] != 1 {
		t.Errorf("X-Cache verdicts %v: want exactly 1 miss", counts)
	}
	if counts["miss"]+counts["hit"]+counts["coalesced"] != n {
		t.Errorf("X-Cache verdicts %v: unknown verdicts present", counts)
	}
}
