// Command sliced is an observable slicing daemon: it serves the
// repository's slicing algorithms over HTTP, with every request
// journaled into an in-process flight recorder and aggregated into
// the pipeline metrics registry.
//
// Endpoints:
//
//	POST /slice         slice a program; the body is either raw
//	                    program source with ?var= &line= (&algo=)
//	                    query parameters, or a JSON object
//	                    {"source":..,"var":..,"line":..,"algo":..}.
//	                    ?explain=1 adds per-line provenance and the
//	                    annotated listing to the response.
//	GET  /metrics       Prometheus text exposition (v0.0.4) of the
//	                    metrics registry: slice/traversal/jump
//	                    counters and phase histograms.
//	GET  /debug/flight  the flight recorder's buffered events as
//	                    JSONL, oldest first (?n= limits to the last
//	                    n events).
//	GET  /debug/trace   ?id=N renders one request's events as Chrome
//	                    trace_event JSON (chrome://tracing, Perfetto).
//	GET  /healthz       liveness probe.
//
// Every request gets a monotonically increasing ID, echoed in the
// X-Request-ID response header and stamped on its trace events, so a
// /slice response can be correlated with /debug/trace?id=. The
// daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
//
// Usage:
//
//	sliced [-addr 127.0.0.1:8080] [-flight 65536]
//
//	curl -sS --data-binary @testdata/fig5-a.mc \
//	    'http://127.0.0.1:8080/slice?var=positives&line=14'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"jumpslice/internal/core"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flight := flag.Int("flight", 1<<16, "flight recorder capacity in events")
	flag.Parse()
	if err := serve(*addr, *flight); err != nil {
		fmt.Fprintln(os.Stderr, "sliced:", err)
		os.Exit(1)
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains in-flight
// requests and returns nil on a clean shutdown.
func serve(addr string, flight int) error {
	s := newServer(flight, os.Stderr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveOn(ln, s)
}

// serveOn is serve minus listener setup, split out so tests can bind
// port 0 themselves and drive the signal path.
func serveOn(ln net.Listener, s *server) error {
	srv := &http.Server{Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.logger.Printf("sliced listening on http://%s (flight recorder: %d events)", ln.Addr(), s.fr.Cap())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.logger.Printf("sliced shutting down (%d requests served, %d events written, %d dropped)",
		s.reqID.Load(), s.fr.Written(), s.fr.Dropped())
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server holds the daemon's shared observability state. All fields
// are safe for concurrent use: the registry's counters/histograms are
// atomic, the flight recorder is lock-free, and per-request tracers
// are derived (not mutated) from the root tracer.
type server struct {
	reg    *obs.Registry
	fr     *obs.FlightRecorder
	tr     *obs.Tracer
	reqID  atomic.Int64
	logger *log.Logger
	mux    *http.ServeMux
}

func newServer(flight int, logw io.Writer) *server {
	s := &server{
		reg:    obs.NewRegistry(),
		fr:     obs.NewFlightRecorder(flight),
		logger: log.New(logw, "", log.LstdFlags|log.Lmicroseconds),
	}
	s.tr = obs.NewTracer(s.fr)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /slice", s.handleSlice)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux = mux
	return s
}

// Handler returns the daemon's full handler chain: request-ID
// assignment and access logging around the route mux.
func (s *server) Handler() http.Handler { return s.accessLog(s.mux) }

type ctxKey int

const reqIDKey ctxKey = 0

// requestID returns the request's assigned ID (0 if the middleware
// did not run, which only happens in tests hitting handlers direct).
func requestID(r *http.Request) uint64 {
	id, _ := r.Context().Value(reqIDKey).(uint64)
	return id
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// accessLog assigns the request ID, echoes it as X-Request-ID, and
// logs one line per request with status and duration.
func (s *server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := uint64(s.reqID.Add(1))
		w.Header().Set("X-Request-ID", strconv.FormatUint(id, 10))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey, id)))
		s.logger.Printf("req=%d %s %s %d %s", id, r.Method, r.URL.Path, sw.status, time.Since(start))
	})
}

// sliceRequest is the JSON form of a /slice request body. The raw
// form (program source as the body, criterion in the query string)
// accepts the same algo names.
type sliceRequest struct {
	Source string `json:"source"`
	Var    string `json:"var"`
	Line   int    `json:"line"`
	Algo   string `json:"algo"` // "" = agrawal (Figure 7)
}

// sliceResponse is the /slice response. Reasons and Listing are only
// present with ?explain=1.
type sliceResponse struct {
	Request    uint64           `json:"request"`
	Algorithm  string           `json:"algorithm"`
	Var        string           `json:"var"`
	Line       int              `json:"line"`
	Lines      []int            `json:"lines"`
	JumpLines  []int            `json:"jump_lines,omitempty"`
	Traversals int              `json:"traversals,omitempty"`
	Text       string           `json:"text"`
	Reasons    map[int][]string `json:"reasons,omitempty"`
	Listing    string           `json:"listing,omitempty"`
	DurationNS int64            `json:"duration_ns"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// parseSliceRequest decodes either request form.
func parseSliceRequest(r *http.Request) (*sliceRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	req := &sliceRequest{}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, req); err != nil {
			return nil, fmt.Errorf("decoding JSON body: %w", err)
		}
	} else {
		req.Source = string(body)
	}
	q := r.URL.Query()
	if v := q.Get("var"); v != "" {
		req.Var = v
	}
	if v := q.Get("line"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad line %q: %w", v, err)
		}
		req.Line = n
	}
	if v := q.Get("algo"); v != "" {
		req.Algo = v
	}
	if req.Algo == "" {
		req.Algo = "agrawal"
	}
	switch {
	case strings.TrimSpace(req.Source) == "":
		return nil, fmt.Errorf("empty program source")
	case req.Var == "":
		return nil, fmt.Errorf("missing criterion variable (var)")
	case req.Line <= 0:
		return nil, fmt.Errorf("missing or non-positive criterion line (line)")
	}
	return req, nil
}

// coreSlice dispatches the algorithms the daemon serves: the paper's
// three (Figures 7, 12, 13), the LST-driven Figure 7 variant, and the
// conventional baseline.
func coreSlice(a *core.Analysis, algo string, c core.Criterion) (*core.Slice, error) {
	switch algo {
	case "agrawal":
		return a.Agrawal(c)
	case "agrawal-lst":
		return a.AgrawalLST(c)
	case "structured":
		return a.AgrawalStructured(c)
	case "conservative":
		return a.AgrawalConservative(c)
	case "conventional":
		return a.Conventional(c)
	}
	return nil, fmt.Errorf("unknown algorithm %q (want agrawal, agrawal-lst, structured, conservative or conventional)", algo)
}

func (s *server) handleSlice(w http.ResponseWriter, r *http.Request) {
	req, err := parseSliceRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := requestID(r)
	tr := s.tr.ForRequest(id)
	start := time.Now()

	prog, err := lang.Parse(req.Source)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "parse: %v", err)
		return
	}
	a, err := core.AnalyzeObserved(prog, s.reg, tr)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "analyze: %v", err)
		return
	}
	sl, err := coreSlice(a, req.Algo, core.Criterion{Var: req.Var, Line: req.Line})
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "slice: %v", err)
		return
	}
	resp := &sliceResponse{
		Request:    id,
		Algorithm:  sl.Algorithm,
		Var:        req.Var,
		Line:       req.Line,
		Lines:      sl.Lines(),
		Traversals: sl.Traversals,
		Text:       sl.Format(),
	}
	for _, nid := range sl.JumpsAdded {
		resp.JumpLines = append(resp.JumpLines, a.CFG.Nodes[nid].Line)
	}
	if r.URL.Query().Get("explain") == "1" {
		p, err := sl.Explain()
		if err != nil {
			s.fail(w, http.StatusInternalServerError, "explain: %v", err)
			return
		}
		resp.Reasons = p.LineReasons()
		resp.Listing = p.Listing()
	}
	resp.DurationNS = time.Since(start).Nanoseconds()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.reg.Snapshot())
}

func (s *server) handleFlight(w http.ResponseWriter, r *http.Request) {
	events := s.fr.Events()
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Flight-Written", strconv.FormatUint(s.fr.Written(), 10))
	w.Header().Set("X-Flight-Dropped", strconv.FormatUint(s.fr.Dropped(), 10))
	obs.WriteJSONL(w, events)
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("id")
	if v == "" {
		s.fail(w, http.StatusBadRequest, "missing id parameter")
		return
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad id %q: %v", v, err)
		return
	}
	events := s.fr.RequestEvents(id)
	if len(events) == 0 {
		s.fail(w, http.StatusNotFound, "no buffered events for request %d (evicted or never traced)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, events)
}
