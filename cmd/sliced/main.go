// Command sliced is an observable slicing daemon: it serves the
// repository's slicing algorithms over HTTP, with every request
// journaled into an in-process flight recorder and aggregated into
// the pipeline metrics registry.
//
// Endpoints:
//
//	POST /slice         slice a program; the body is either raw
//	                    program source with ?var= &line= (&algo=)
//	                    query parameters, or a JSON object
//	                    {"source":..,"var":..,"line":..,"algo":..}.
//	                    ?explain=1 adds per-line provenance and the
//	                    annotated listing to the response.
//	                    Responses carry a strong ETag derived from the
//	                    request (the slicer is deterministic), honour
//	                    If-None-Match with 304, and report the analysis
//	                    cache's verdict in X-Cache: hit, miss, or
//	                    coalesced (joined another request's in-flight
//	                    analysis).
//	POST /session       open an incremental editor session: the body
//	                    is the program source (raw, or JSON
//	                    {"source":..}); the response carries the
//	                    session ID and the analysis stays warm in the
//	                    cache (budget-accounted, evictable).
//	PATCH /session/{id} apply one edit and re-slice: ?var= &line=
//	                    (&algo= &explain=) pick the criterion; the
//	                    body is JSON {"edit":{"op":"replace",
//	                    "line":N,"text":".."}} for a one-line edit,
//	                    or a full source replacement. X-Incremental
//	                    reports the reuse tier (patched, partial,
//	                    full) and the response body includes the
//	                    lines added/removed against the pre-edit
//	                    slice. A failed edit leaves the session
//	                    unchanged.
//	DELETE /session/{id} close the session, releasing its cache
//	                    residency.
//	GET  /metrics       Prometheus text exposition (v0.0.4) of the
//	                    metrics registry: slice/traversal/jump
//	                    counters and phase histograms.
//	GET  /debug/flight  the flight recorder's buffered events as
//	                    JSONL, oldest first (?n= limits to the last
//	                    n events).
//	GET  /debug/trace   ?id=N renders one request's events as Chrome
//	                    trace_event JSON (chrome://tracing, Perfetto).
//	GET  /debug/cache   the analysis cache's live counters and byte
//	                    ledger as JSON ({"enabled":false} when the
//	                    cache is off).
//	GET  /debug/requests the wide-event ring: one JSON record per
//	                    recent request with status, duration, phase
//	                    timings, cache/incremental tiers, and outcome
//	                    (?status= ?min_ms= ?endpoint= ?n= filter it).
//	GET  /debug/slo     per-endpoint sliding-window SLO view:
//	                    percentiles, error/shed rates, burn rates
//	                    against the -slo objectives, and per-bucket
//	                    slowest-request exemplars.
//	GET  /debug/build   the binary's build provenance (go version,
//	                    module path, VCS revision).
//	GET  /debug/spool   the durable telemetry spool's live stats:
//	                    resident segments and bytes, enqueue/write/
//	                    drop counters, and the active segment pointer
//	                    ({"enabled":false} when -spool-dir is unset).
//	GET  /debug/cluster the cluster's membership and tier view: ring
//	                    nodes, per-peer health, and result/disk tier
//	                    occupancy ({"enabled":false} when neither
//	                    -peers nor -disk-dir is set).
//	GET  /internal/fill peer cache-fill protocol (?key= names a
//	                    serialized result record by hex address); for
//	                    node-to-node use, answering 404 on a local
//	                    miss — peers fall back to computing.
//	GET  /healthz       liveness probe; reports the build revision.
//
// The access log emits one line per request (-log-format text or
// json; the JSON form is the same wide event /debug/requests serves).
// -slo sets objectives (e.g. p99=50ms,err=1%), -slo-window the
// sliding window span, -requests the ring capacity, -runtime-sample
// the runtime health sampling interval, and -pprof exposes
// net/http/pprof under /debug/pprof/.
//
// # Durability
//
// -spool-dir enables the durable telemetry spool: every wide event
// (span log included) is journaled asynchronously into rotating
// gzip-compressed JSONL segments under a hard -spool-bytes disk
// budget, so the request history survives restarts and crashes and
// can be queried offline with cmd/slicequery. The enqueue is a
// non-blocking bounded queue — the request path never waits on the
// disk; a backed-up spool drops records and counts them in the
// jumpslice_spool_* series and /debug/spool.
//
// -postmortem-dir enables post-mortem bundles: on SIGUSR1, on the
// first recovered panic, and on a fatal exit the daemon writes one
// self-contained directory (flight-recorder drain, recent wide
// events, SLO snapshot, goroutine dump, build info, spool pointer) an
// operator can attach to an incident. See postmortem.go for the
// bundle schema.
//
// # Clustering
//
// -peers turns the daemon into one node of a static fleet (the flag
// is the full membership, identical on every node; -self names this
// node's entry, defaulting to -addr). Requests are routed by the
// program's SHA-256 content address over a consistent-hash ring
// (-vnodes virtual nodes per node): a request landing on a non-owner
// is proxied to the owner, and an owner's local miss first tries a
// one-hop peer fill (-fill-timeout per hop) before computing.
// X-Sliced-Node, X-Sliced-Route (local, proxied, peer-fill) and
// X-Sliced-Peer on every response say who served it and how; health
// probes (-probe-interval) gate hops, never ownership, so a dead
// peer degrades to local computation. -disk-dir adds a disk-backed
// result tier (-disk-bytes budget; -result-bytes bounds the
// in-memory record cache) so a restarted node serves its prior
// results as X-Cache: disk without recomputing. See internal/cluster
// and internal/slicecache/disk.
//
// Every request gets a monotonically increasing ID, echoed in the
// X-Request-ID response header and stamped on its trace events, so a
// /slice response can be correlated with /debug/trace?id=. The
// daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
//
// # Operational limits
//
// The serving path is hardened against slow, huge, and hostile
// requests; every limit is a flag:
//
//	-timeout D       per-request analysis deadline (default 10s).
//	                 The deadline — and a client disconnect — cancels
//	                 the slicing pipeline cooperatively mid-fixpoint
//	                 (see internal/core); timeouts answer 503,
//	                 disconnects are logged as 499.
//	-max-body N      request body byte limit (default 1 MiB); larger
//	                 bodies answer 413.
//	-max-stmts N     parsed statement-count limit (default 20000);
//	                 larger programs answer 413.
//	-max-inflight N  concurrent /slice admission slots (default
//	                 2×GOMAXPROCS); excess load is shed with 503 and
//	                 a Retry-After header instead of queueing.
//	-cache-bytes N   analysis cache budget (default 64 MiB). Completed
//	                 analyses are cached by content hash of the program
//	                 source, so repeated and concurrent requests for
//	                 the same program skip the whole pipeline; N
//	                 concurrent identical requests run one analysis.
//	-cache-off       disable the analysis cache entirely.
//
// A panic while serving one request is recovered, logged with its
// stack, and answered as a 500 naming the request ID; the daemon
// keeps serving.
//
// All errors — including 404/405 from routing and everything under
// /debug/ — use one JSON envelope distinguishing client from server
// faults:
//
//	{"error":{"code":"...","message":"...","status":NNN,"request_id":N}}
//
// Usage:
//
//	sliced [-addr 127.0.0.1:8080] [-flight 65536] [-timeout 10s]
//	       [-max-body 1048576] [-max-stmts 20000] [-max-inflight 16]
//
//	curl -sS --data-binary @testdata/fig5-a.mc \
//	    'http://127.0.0.1:8080/slice?var=positives&line=14'
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"jumpslice/internal/cluster"
	"jumpslice/internal/core"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/obs/spool"
	"jumpslice/internal/slicecache"
	"jumpslice/internal/slicecache/disk"
)

func main() {
	cfg := defaultConfig()
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.IntVar(&cfg.Flight, "flight", cfg.Flight, "flight recorder capacity in events")
	flag.DurationVar(&cfg.Timeout, "timeout", cfg.Timeout, "per-request analysis deadline (0 disables)")
	flag.Int64Var(&cfg.MaxBody, "max-body", cfg.MaxBody, "request body limit in bytes")
	flag.IntVar(&cfg.MaxStmts, "max-stmts", cfg.MaxStmts, "parsed statement count limit per program")
	flag.IntVar(&cfg.MaxInflight, "max-inflight", cfg.MaxInflight, "concurrent /slice requests before shedding load")
	flag.Int64Var(&cfg.CacheBytes, "cache-bytes", cfg.CacheBytes, "analysis cache budget in bytes")
	flag.BoolVar(&cfg.CacheOff, "cache-off", cfg.CacheOff, "disable the analysis cache")
	flag.StringVar(&cfg.LogFormat, "log-format", cfg.LogFormat, "access log format: text or json (one wide event per line)")
	flag.IntVar(&cfg.Requests, "requests", cfg.Requests, "wide-event ring capacity served at /debug/requests")
	flag.DurationVar(&cfg.SLOWindow, "slo-window", cfg.SLOWindow, "sliding SLO window span (10 rotating buckets)")
	slo := flag.String("slo", "", "SLO objectives, e.g. p99=50ms,err=1% (enables burn rates)")
	flag.BoolVar(&cfg.Pprof, "pprof", cfg.Pprof, "serve net/http/pprof under /debug/pprof/")
	flag.DurationVar(&cfg.RuntimeSample, "runtime-sample", cfg.RuntimeSample, "runtime health sampling interval (0 disables)")
	flag.StringVar(&cfg.SpoolDir, "spool-dir", cfg.SpoolDir, "durable telemetry spool directory (empty disables)")
	flag.Int64Var(&cfg.SpoolBytes, "spool-bytes", cfg.SpoolBytes, "spool disk budget in bytes (oldest segments reclaimed)")
	flag.StringVar(&cfg.PostmortemDir, "postmortem-dir", cfg.PostmortemDir, "post-mortem bundle directory for SIGUSR1/panic/fatal-exit snapshots (empty disables)")
	peers := flag.String("peers", "", "comma-separated host:port list of every node in the fleet, self included (empty disables clustering)")
	flag.StringVar(&cfg.Self, "self", cfg.Self, "this node's address as it appears in -peers (defaults to -addr)")
	flag.IntVar(&cfg.Vnodes, "vnodes", cfg.Vnodes, "consistent-hash virtual nodes per node")
	flag.DurationVar(&cfg.ProbeInterval, "probe-interval", cfg.ProbeInterval, "peer health probe cadence")
	flag.DurationVar(&cfg.ProbeTimeout, "probe-timeout", cfg.ProbeTimeout, "peer health probe timeout")
	flag.DurationVar(&cfg.FillTimeout, "fill-timeout", cfg.FillTimeout, "per-hop peer cache fill deadline")
	flag.IntVar(&cfg.FillCandidates, "fill-candidates", cfg.FillCandidates, "ring-adjacent peers a cache fill tries")
	flag.StringVar(&cfg.DiskDir, "disk-dir", cfg.DiskDir, "disk-backed result tier directory for warm restarts (empty disables)")
	flag.Int64Var(&cfg.DiskBytes, "disk-bytes", cfg.DiskBytes, "disk result tier budget in bytes (oldest segments reclaimed)")
	flag.Int64Var(&cfg.DiskSegment, "disk-segment", cfg.DiskSegment, "disk result tier segment roll size in bytes")
	flag.Int64Var(&cfg.ResultBytes, "result-bytes", cfg.ResultBytes, "in-memory result record cache budget in bytes")
	flag.Parse()
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.PeerList = append(cfg.PeerList, p)
			}
		}
		if cfg.Self == "" {
			cfg.Self = *addr
		}
	}
	obj, err := obs.ParseObjectives(*slo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sliced: -slo:", err)
		os.Exit(2)
	}
	cfg.Objectives = obj
	if cfg.LogFormat != "text" && cfg.LogFormat != "json" {
		fmt.Fprintf(os.Stderr, "sliced: -log-format: unknown format %q (want text or json)\n", cfg.LogFormat)
		os.Exit(2)
	}
	if err := serve(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sliced:", err)
		os.Exit(1)
	}
}

// config carries the daemon's operational limits.
type config struct {
	Flight      int           // flight recorder capacity in events
	Timeout     time.Duration // per-request analysis deadline; <=0 disables
	MaxBody     int64         // request body byte limit
	MaxStmts    int           // parsed statement-count limit
	MaxInflight int           // /slice admission slots before shedding
	CacheBytes  int64         // analysis cache budget; <=0 means the default
	CacheOff    bool          // disable the analysis cache
	// LogFormat selects the access log encoding: "text" (one
	// key=value line per request) or "json" (the request's wide event
	// as one JSON object per line). Both carry the same fields.
	LogFormat string
	// Requests is the wide-event ring capacity behind /debug/requests.
	Requests int
	// SLOWindow is the sliding SLO window span (split into 10
	// rotating buckets); Objectives are the parsed -slo targets.
	SLOWindow  time.Duration
	Objectives obs.SLOObjectives
	// Pprof serves net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// RuntimeSample is the runtime health sampling interval; <=0
	// disables the sampler.
	RuntimeSample time.Duration
	// SpoolDir enables the durable telemetry spool when non-empty;
	// SpoolBytes is its hard disk budget (<=0 means the spool
	// package's default).
	SpoolDir   string
	SpoolBytes int64
	// PostmortemDir enables post-mortem bundles (SIGUSR1, first
	// recovered panic, fatal exit) when non-empty.
	PostmortemDir string
	// Failpoints enables the X-Sliced-Fail request header, which
	// injects failures into the serving path (value "panic" panics
	// inside the handler, "block" parks the request until released,
	// "fill-corrupt" makes /internal/fill serve torn records). It
	// exists for the resilience tests and is never enabled by a flag;
	// production requests carrying the header are unaffected.
	Failpoints bool
	// PeerList is the fleet's full static membership (host:port, self
	// included) from -peers; empty disables clustering. Self is this
	// node's own address as it appears in the list (defaults to
	// -addr).
	PeerList []string
	Self     string
	// Vnodes is the consistent-hash virtual-node count per node;
	// ProbeInterval/ProbeTimeout drive the peer health prober;
	// FillTimeout is the per-hop peer-fill deadline and FillCandidates
	// how many ring-adjacent peers a fill tries.
	Vnodes         int
	ProbeInterval  time.Duration
	ProbeTimeout   time.Duration
	FillTimeout    time.Duration
	FillCandidates int
	// DiskDir enables the disk-backed result tier (warm restarts) when
	// non-empty; DiskBytes is its budget, DiskSegment the segment roll
	// size, ResultBytes the in-memory result tier's budget.
	DiskDir     string
	DiskBytes   int64
	DiskSegment int64
	ResultBytes int64
}

func defaultConfig() config {
	return config{
		Flight:      1 << 16,
		Timeout:     10 * time.Second,
		MaxBody:     1 << 20,
		MaxStmts:    20000,
		MaxInflight: 2 * runtime.GOMAXPROCS(0),
		CacheBytes:  slicecache.DefaultMaxBytes,
		LogFormat:   "text",
		Requests:    1024,
		SLOWindow:   time.Minute,
		// Runtime health is cheap (one ReadMemStats per sample) and on
		// by default; -runtime-sample 0 turns it off.
		RuntimeSample:  5 * time.Second,
		Vnodes:         cluster.DefaultVnodes,
		ProbeInterval:  time.Second,
		ProbeTimeout:   500 * time.Millisecond,
		FillTimeout:    500 * time.Millisecond,
		FillCandidates: 2,
		DiskBytes:      disk.DefaultMaxBytes,
		DiskSegment:    disk.DefaultSegmentBytes,
		ResultBytes:    32 << 20,
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains in-flight
// requests and returns nil on a clean shutdown.
func serve(addr string, cfg config) error {
	s := newServer(cfg, os.Stderr)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveOn(ln, s)
}

// serveOn is serve minus listener setup, split out so tests can bind
// port 0 themselves and drive the signal path.
func serveOn(ln net.Listener, s *server) error {
	srv := &http.Server{Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if s.cfg.RuntimeSample > 0 {
		s.sampler = obs.StartRuntimeSampler(s.reg, s.cfg.RuntimeSample)
		defer s.sampler.Stop()
	}
	if err := s.openSpool(); err != nil {
		return err
	}
	// Close on the way out so the active segment is sealed and
	// indexed even when the listener failed — a clean shutdown must
	// leave a fully readable spool directory.
	defer s.spool.Close()
	if err := s.openCluster(); err != nil {
		return err
	}
	// Stop the prober and seal the disk tier's active segment so the
	// next boot warm-restarts from a clean record boundary.
	defer s.closeCluster()

	// SIGUSR1 asks for a post-mortem bundle without stopping the
	// daemon: the operator's "write down what you know" signal.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	go func() {
		for range usr1 {
			dir, err := s.writePostmortem("sigusr1")
			if err != nil {
				s.logger.Printf("postmortem: %v", err)
				continue
			}
			s.logger.Printf("postmortem bundle (sigusr1) written to %s", dir)
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.logger.Printf("sliced listening on http://%s (flight recorder: %d events, timeout %s, max body %d, max stmts %d, max inflight %d)",
		ln.Addr(), s.fr.Cap(), s.cfg.Timeout, s.cfg.MaxBody, s.cfg.MaxStmts, s.cfg.MaxInflight)

	select {
	case err := <-errc:
		return s.postmortemOnFatal(err)
	case <-ctx.Done():
	}
	s.logger.Printf("sliced shutting down (%d requests served, %d shed, %d events written, %d dropped)",
		s.reqID.Load(), s.shed.Load(), s.fr.Written(), s.fr.Dropped())
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return s.postmortemOnFatal(err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return s.postmortemOnFatal(err)
	}
	return nil
}

// server holds the daemon's shared observability state. All fields
// are safe for concurrent use: the registry's counters/histograms are
// atomic, the flight recorder is lock-free, per-request tracers are
// derived (not mutated) from the root tracer, and the admission gate
// is a buffered channel.
type server struct {
	cfg    config
	reg    *obs.Registry
	fr     *obs.FlightRecorder
	tr     *obs.Tracer
	reqID  atomic.Int64
	shed   atomic.Int64 // requests answered 503 by the admission gate
	logger *log.Logger
	mux    *http.ServeMux
	sem    chan struct{} // admission slots; acquired for the whole /slice handler
	// cache memoizes completed analyses by content hash of the program
	// source; nil when disabled. Cached analyses are detached — each
	// request binds its own view with Rebind.
	cache *slicecache.Cache
	// sessions maps open editor-session IDs to their source text; each
	// session's analysis lives in cache under slicecache.SessionKey, so
	// sessions and anonymous traffic share one byte budget.
	sessID   atomic.Int64
	smu      sync.Mutex
	sessions map[string]*session
	// requests is the bounded wide-event ring behind /debug/requests;
	// slo the per-endpoint sliding-window tracker behind /debug/slo
	// and the jumpslice_http_* metrics; incrTier pre-resolves the
	// http.incr.{patched,partial,full} counters the middleware bumps;
	// build is the binary's provenance, resolved once; sampler is the
	// runtime health goroutine (serveOn lifecycle only).
	requests *obs.RequestLog
	slo      *obs.SLOTracker
	incrTier map[string]*obs.Counter
	build    buildDetails
	sampler  *obs.RuntimeSampler
	// spool is the durable wide-event journal (nil when -spool-dir is
	// unset); it is assigned by openSpool before any request is
	// served, and the nil *spool.Spool is a valid no-op. pmPanic
	// rate-limits panic-triggered post-mortem bundles to one per
	// process.
	spool   *spool.Spool
	pmPanic atomic.Bool
	// unblock releases requests parked by the "block" failpoint; the
	// resilience tests close it to let in-flight work finish.
	unblock chan struct{}
	// cluster is the routing fabric (nil without -peers); results the
	// two-tier serialized result cache (nil unless -peers or -disk-dir
	// enables it); disk the persistent tier under it (nil without
	// -disk-dir). All are assigned by openCluster before any request
	// is served.
	cluster *clusterState
	results *slicecache.ResultCache
	disk    *disk.Store
}

func newServer(cfg config, logw io.Writer) *server {
	if cfg.Flight <= 0 {
		cfg.Flight = 1 << 16
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.MaxStmts <= 0 {
		cfg.MaxStmts = 20000
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1024
	}
	if cfg.SLOWindow <= 0 {
		cfg.SLOWindow = time.Minute
	}
	if cfg.LogFormat == "" {
		cfg.LogFormat = "text"
	}
	s := &server{
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		fr:       obs.NewFlightRecorder(cfg.Flight),
		logger:   log.New(logw, "", log.LstdFlags|log.Lmicroseconds),
		sem:      make(chan struct{}, cfg.MaxInflight),
		unblock:  make(chan struct{}),
		sessions: map[string]*session{},
	}
	s.tr = obs.NewTracer(s.fr)
	s.requests = obs.NewRequestLog(cfg.Requests)
	s.slo = obs.NewSLOTracker(cfg.SLOWindow, 10, cfg.Objectives)
	s.incrTier = map[string]*obs.Counter{
		"patched": s.reg.Counter("http.incr.patched"),
		"partial": s.reg.Counter("http.incr.partial"),
		"full":    s.reg.Counter("http.incr.full"),
	}
	s.build = readBuildDetails()
	if !cfg.CacheOff {
		s.cache = slicecache.New(slicecache.Options{
			MaxBytes: cfg.CacheBytes,
			Recorder: s.reg,
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/slice", s.methods(map[string]http.HandlerFunc{
		http.MethodPost: s.gated(s.handleSlice),
	}))
	mux.HandleFunc("/session", s.methods(map[string]http.HandlerFunc{
		http.MethodPost: s.gated(s.handleSessionOpen),
	}))
	mux.HandleFunc("/session/", s.methods(map[string]http.HandlerFunc{
		http.MethodPatch:  s.gated(s.handleSessionPatch),
		http.MethodDelete: s.handleSessionDelete,
	}))
	mux.HandleFunc("/metrics", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleMetrics,
	}))
	mux.HandleFunc("/debug/flight", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleFlight,
	}))
	mux.HandleFunc("/debug/trace", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleTrace,
	}))
	mux.HandleFunc("/debug/cache", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleCache,
	}))
	mux.HandleFunc("/debug/requests", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleRequests,
	}))
	mux.HandleFunc("/debug/slo", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleSLO,
	}))
	mux.HandleFunc("/debug/build", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleBuild,
	}))
	mux.HandleFunc("/debug/spool", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleSpool,
	}))
	mux.HandleFunc("/debug/cluster", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleClusterDebug,
	}))
	mux.HandleFunc(cluster.FillPath, s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleFill,
	}))
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	mux.HandleFunc("/healthz", s.methods(map[string]http.HandlerFunc{
		http.MethodGet: s.handleHealthz,
	}))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.fail(w, r, http.StatusNotFound, "not_found", "no such endpoint %s", r.URL.Path)
	})
	s.mux = mux
	return s
}

// Handler returns the daemon's full handler chain: the instrument
// middleware (request-ID assignment, wide-event assembly, SLO
// accounting, access logging), then panic recovery, then the route
// mux. Recovery sits inside the instrumentation so a recovered panic
// still produces a wide event with its request ID and a 500 response.
func (s *server) Handler() http.Handler { return s.instrument(s.recoverPanics(s.mux)) }

// openSpool starts the durable telemetry spool when -spool-dir is
// configured. It must run before the first request is served (serveOn
// does; tests exercising the spool directly call it too) — the
// instrument middleware reads s.spool unguarded, relying on that
// ordering.
func (s *server) openSpool() error {
	if s.cfg.SpoolDir == "" {
		return nil
	}
	sp, err := spool.Open(spool.Options{
		Dir:      s.cfg.SpoolDir,
		MaxBytes: s.cfg.SpoolBytes,
		Recorder: s.reg,
	})
	if err != nil {
		return err
	}
	s.spool = sp
	s.logger.Printf("telemetry spool on %s (budget %d bytes)", s.cfg.SpoolDir, sp.Stats().MaxBytes)
	return nil
}

type ctxKey int

const reqIDKey ctxKey = 0

// requestID returns the request's assigned ID (0 if the middleware
// did not run, which only happens in tests hitting handlers direct).
func requestID(r *http.Request) uint64 {
	id, _ := r.Context().Value(reqIDKey).(uint64)
	return id
}

// statusWriter captures the response status and body byte count for
// the wide event, and whether a header was already written, so the
// panic recovery knows if a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// recoverPanics isolates a panic to the request that caused it: the
// panic is logged with its stack, the client gets a 500 naming the
// request ID (when no response bytes have been sent yet), and the
// daemon keeps serving. http.ErrAbortHandler is re-raised — it is
// net/http's own "abort this response" protocol, not a failure.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			id := requestID(r)
			s.logger.Printf("req=%d panic: %v\n%s", id, p, debug.Stack())
			reqInfoFrom(r).setOutcome("panic")
			s.postmortemOnPanic()
			s.fail(w, r, http.StatusInternalServerError, "internal",
				"internal error serving request %d; see server log", id)
		}()
		next.ServeHTTP(w, r)
	})
}

// methods dispatches on the request method, answering anything else
// with a structured 405 and an Allow header. The mux's own method
// patterns are not used because their 405s are plain text.
func (s *server) methods(handlers map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(handlers))
	for m := range handlers {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		if h, ok := handlers[r.Method]; ok {
			h(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		s.fail(w, r, http.StatusMethodNotAllowed, "method_not_allowed",
			"method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow)
	}
}

// gated admits a request if an admission slot is free and sheds it
// with 503 + Retry-After otherwise. Shedding immediately instead of
// queueing keeps overload from stacking timed-out work: the client
// knows within microseconds, and in-flight requests keep their CPU.
func (s *server) gated(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next(w, r)
		default:
			s.shed.Add(1)
			reqInfoFrom(r).setOutcome("shed")
			s.fail(w, r, http.StatusServiceUnavailable, "overloaded",
				"all %d slicing slots busy; retry shortly", cap(s.sem))
		}
	}
}

// sliceRequest is the JSON form of a /slice request body. The raw
// form (program source as the body, criterion in the query string)
// accepts the same algo names.
type sliceRequest struct {
	Source string `json:"source"`
	Var    string `json:"var"`
	Line   int    `json:"line"`
	Algo   string `json:"algo"` // "" = agrawal (Figure 7)
}

// sliceResponse is the /slice response. Reasons and Listing are only
// present with ?explain=1.
type sliceResponse struct {
	Request    uint64           `json:"request"`
	Algorithm  string           `json:"algorithm"`
	Var        string           `json:"var"`
	Line       int              `json:"line"`
	Lines      []int            `json:"lines"`
	JumpLines  []int            `json:"jump_lines,omitempty"`
	Traversals int              `json:"traversals,omitempty"`
	Text       string           `json:"text"`
	Reasons    map[int][]string `json:"reasons,omitempty"`
	Listing    string           `json:"listing,omitempty"`
	DurationNS int64            `json:"duration_ns"`
}

// apiError is the structured error envelope every non-2xx response
// carries: a stable machine-readable code, a human message, the HTTP
// status (so the body is self-describing in logs), and the request ID
// for correlation with the access log and /debug/trace.
type apiError struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Status    int    `json:"status"`
	RequestID uint64 `json:"request_id"`
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for
// "the client disconnected before we could answer". The client never
// sees it; it keeps the access log and metrics honest about whose
// fault the abort was.
const statusClientClosedRequest = 499

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// fail writes the structured error envelope. 503s carry Retry-After
// so well-behaved clients back off instead of hammering the gate. If
// response bytes are already on the wire (a panic after a partial
// write), the envelope is skipped — the status line cannot change.
func (s *server) fail(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	if sw, ok := w.(*statusWriter); ok && sw.wrote {
		return
	}
	reqInfoFrom(r).setErrCode(code)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, apiError{Error: errorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Status:    status,
		RequestID: requestID(r),
	}})
}

// httpError carries a status and code from request parsing to fail.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, code, format string, args ...any) *httpError {
	return &httpError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// failErr maps an error from the serving path onto the envelope:
// parse-stage httpErrors keep their own status, a request deadline
// answers 503 (the server ran out of time, not the client), a client
// disconnect answers 499 (logged only — the client is gone), and
// anything else at the given stage is a 422 program fault. Client
// mistakes never map to 5xx here; the only 500s the daemon produces
// are recovered panics and Explain failures.
func (s *server) failErr(w http.ResponseWriter, r *http.Request, stage string, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		s.fail(w, r, he.status, he.code, "%s", he.msg)
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, r, http.StatusServiceUnavailable, "timeout",
			"%s: analysis deadline of %s exceeded", stage, s.cfg.Timeout)
	case errors.Is(err, context.Canceled):
		s.fail(w, r, statusClientClosedRequest, "client_closed",
			"%s: canceled: client disconnected", stage)
	default:
		s.fail(w, r, http.StatusUnprocessableEntity, stage+"_failed", "%s: %v", stage, err)
	}
}

// knownAlgos are the /slice algo values coreSlice dispatches.
var knownAlgos = []string{"agrawal", "agrawal-lst", "structured", "conservative", "conventional", "sdg"}

// parseSliceRequest decodes either request form, enforcing the body
// byte limit. Every error is a client fault with its own status:
// oversized body 413, undecodable body or missing criterion 400,
// unknown algorithm 400.
func (s *server) parseSliceRequest(w http.ResponseWriter, r *http.Request) (*sliceRequest, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, httpErrorf(http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds the %d byte limit", mbe.Limit)
		}
		return nil, httpErrorf(http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}
	req := &sliceRequest{}
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, req); err != nil {
			return nil, httpErrorf(http.StatusBadRequest, "bad_request", "decoding JSON body: %v", err)
		}
	} else {
		req.Source = string(body)
	}
	q := r.URL.Query()
	if v := q.Get("var"); v != "" {
		req.Var = v
	}
	if v := q.Get("line"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, httpErrorf(http.StatusBadRequest, "bad_request", "bad line %q: %v", v, err)
		}
		req.Line = n
	}
	if v := q.Get("algo"); v != "" {
		req.Algo = v
	}
	if req.Algo == "" {
		req.Algo = "agrawal"
	}
	switch {
	case strings.TrimSpace(req.Source) == "":
		return nil, httpErrorf(http.StatusBadRequest, "bad_request", "empty program source")
	case req.Var == "":
		return nil, httpErrorf(http.StatusBadRequest, "bad_request", "missing criterion variable (var)")
	case req.Line <= 0:
		return nil, httpErrorf(http.StatusBadRequest, "bad_request", "missing or non-positive criterion line (line)")
	}
	known := false
	for _, a := range knownAlgos {
		known = known || a == req.Algo
	}
	if !known {
		return nil, httpErrorf(http.StatusBadRequest, "unknown_algorithm",
			"unknown algorithm %q (want %s)", req.Algo, strings.Join(knownAlgos, ", "))
	}
	return req, nil
}

// coreSlice dispatches the algorithms the daemon serves: the paper's
// three (Figures 7, 12, 13), the LST-driven Figure 7 variant, and the
// conventional baseline. parseSliceRequest validated the name.
func coreSlice(a *core.Analysis, algo string, c core.Criterion) (*core.Slice, error) {
	switch algo {
	case "agrawal":
		return a.Agrawal(c)
	case "agrawal-lst":
		return a.AgrawalLST(c)
	case "structured":
		return a.AgrawalStructured(c)
	case "conservative":
		return a.AgrawalConservative(c)
	case "conventional":
		return a.Conventional(c)
	}
	return nil, fmt.Errorf("unknown algorithm %q", algo)
}

// failpoint implements the X-Sliced-Fail test header (only when
// cfg.Failpoints): "panic" panics inside the handler to exercise the
// recovery middleware, "block" parks the request — holding its
// admission slot — until the test closes s.unblock or the client
// goes away. It reports whether the request was already answered.
func (s *server) failpoint(w http.ResponseWriter, r *http.Request) (handled bool) {
	if !s.cfg.Failpoints {
		return false
	}
	switch v := r.Header.Get("X-Sliced-Fail"); v {
	case "":
		return false
	case "panic":
		panic("injected failure (X-Sliced-Fail: panic)")
	case "fill-corrupt":
		// Handled at /internal/fill serve time (and propagated to fill
		// fetches); the slicing path itself is unaffected.
		return false
	case "block":
		select {
		case <-s.unblock:
		case <-r.Context().Done():
		}
		return false
	default:
		s.fail(w, r, http.StatusBadRequest, "bad_request", "unknown failpoint %q", v)
		return true
	}
}

func (s *server) handleSlice(w http.ResponseWriter, r *http.Request) {
	if s.failpoint(w, r) {
		return
	}
	req, err := s.parseSliceRequest(w, r)
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	explain, err := boolParam(r, "explain")
	if err != nil {
		s.failErr(w, r, "request", err)
		return
	}
	// The slicer is deterministic, so the request tuple identifies the
	// slice content and makes a valid strong validator. (The request
	// and duration_ns response fields vary per request; they are
	// delivery metadata, not content — the semantic payload a client
	// revalidates is the slice itself.)
	etag := sliceETag(req, explain)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	id := requestID(r)
	tr := s.tracerFor(r)
	ri := reqInfoFrom(r)
	ri.setAlgo(req.Algo)
	start := time.Now()

	// Cluster placement: a request for a program owned by another node
	// is proxied there (one hop max), then the local result tiers —
	// memory, disk, peer fill — get a chance to answer before the
	// pipeline runs. Every tier is best-effort: any failure falls
	// through to local compute.
	if s.routeSlice(ctx, w, r, req) {
		return
	}
	if s.cluster != nil || s.results != nil {
		w.Header().Set("X-Sliced-Route", "local")
	}
	rkey := resultKeyFor(req, explain)
	if s.serveResult(ctx, w, r, req, rkey, id, start) {
		return
	}

	if req.Algo == "sdg" {
		s.handleSliceSDG(ctx, w, r, req, explain, rkey, id, ri, start, tr)
		return
	}

	a := s.analysisFor(ctx, w, r, req.Source, tr)
	if a == nil {
		return // analysisFor already answered
	}
	ri.setStmts(len(lang.Statements(a.Prog)))
	sl, err := coreSlice(a, req.Algo, core.Criterion{Var: req.Var, Line: req.Line})
	if err != nil {
		s.failErr(w, r, "slice", err)
		return
	}
	resp := &sliceResponse{
		Request:    id,
		Algorithm:  sl.Algorithm,
		Var:        req.Var,
		Line:       req.Line,
		Lines:      sl.Lines(),
		Traversals: sl.Traversals,
		Text:       sl.Format(),
	}
	for _, nid := range sl.JumpsAdded {
		resp.JumpLines = append(resp.JumpLines, a.CFG.Nodes[nid].Line)
	}
	if explain {
		p, err := sl.Explain()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.failErr(w, r, "explain", err)
				return
			}
			s.fail(w, r, http.StatusInternalServerError, "explain_failed", "explain: %v", err)
			return
		}
		resp.Reasons = p.LineReasons()
		resp.Listing = p.Listing()
	}
	resp.DurationNS = time.Since(start).Nanoseconds()
	ri.setSliceLines(len(resp.Lines))
	s.storeResult(rkey, resp)
	writeJSON(w, http.StatusOK, resp)
}

// handleSliceSDG serves algo=sdg: the interprocedural (system
// dependence graph) slice. Programs here may declare procedures, so
// the request goes through core.AnalyzeProgramSet rather than the
// single-procedure analysis cache — the ETag (full source + criterion
// + algorithm) already content-addresses every procedure text, so 304
// revalidation works unchanged. Explain reports the interprocedural
// edge evidence (call, param-in, param-out, summary) per slice line.
func (s *server) handleSliceSDG(ctx context.Context, w http.ResponseWriter, r *http.Request, req *sliceRequest, explain bool, rkey slicecache.ResultKey, id uint64, ri *reqInfo, start time.Time, tr *obs.Tracer) {
	prog, err := lang.Parse(req.Source)
	if err != nil {
		s.failErr(w, r, "analyze", httpErrorf(http.StatusUnprocessableEntity, "invalid_program", "parse: %v", err))
		return
	}
	stmts := len(lang.Statements(prog))
	if stmts > s.cfg.MaxStmts {
		s.failErr(w, r, "analyze", httpErrorf(http.StatusRequestEntityTooLarge, "program_too_large",
			"program has %d statements, over the %d limit", stmts, s.cfg.MaxStmts))
		return
	}
	ps, err := core.AnalyzeProgramSetObservedContext(ctx, prog, s.reg, tr)
	if err != nil {
		s.failErr(w, r, "analyze", err)
		return
	}
	ri.setStmts(stmts)
	sl, err := ps.SliceInterproc(core.Criterion{Var: req.Var, Line: req.Line})
	if err != nil {
		s.failErr(w, r, "slice", err)
		return
	}
	resp := &sliceResponse{
		Request:    id,
		Algorithm:  sl.Algorithm,
		Var:        req.Var,
		Line:       req.Line,
		Lines:      sl.Lines(),
		Traversals: sl.Traversals,
		Text:       sl.Format(),
	}
	for _, u := range ps.Units {
		for _, nid := range sl.PerProc[u.Index].JumpsAdded {
			resp.JumpLines = append(resp.JumpLines, u.Sub.CFG.Nodes[nid].Line)
		}
	}
	sort.Ints(resp.JumpLines)
	if explain {
		resp.Reasons = sl.EdgeReasons()
	}
	resp.DurationNS = time.Since(start).Nanoseconds()
	ri.setSliceLines(len(resp.Lines))
	s.storeResult(rkey, resp)
	writeJSON(w, http.StatusOK, resp)
}

// buildAnalysis is the uncached analysis path — parse, size gate,
// full pipeline — shared by the direct and cache-mediated routes. Its
// errors are httpErrors (client faults keep their status through the
// cache's negative entries) or pipeline errors for failErr to map.
func (s *server) buildAnalysis(ctx context.Context, source string, tr *obs.Tracer) (*core.Analysis, error) {
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, httpErrorf(http.StatusUnprocessableEntity, "invalid_program", "parse: %v", err)
	}
	if n := len(lang.Statements(prog)); n > s.cfg.MaxStmts {
		return nil, httpErrorf(http.StatusRequestEntityTooLarge, "program_too_large",
			"program has %d statements, over the %d limit", n, s.cfg.MaxStmts)
	}
	return core.AnalyzeObservedContext(ctx, prog, s.reg, tr)
}

// analysisFor produces the request's analysis, through the cache when
// one is configured. On the cached path the build runs detached (the
// cache owns its context and the result outlives this request) and
// the hit is rebound to this request's deadline and trace; parse and
// size-limit faults ride the cache's negative entries, so repeated
// malformed programs are refused from memory. A nil return means the
// response — error or 304 — was already written.
func (s *server) analysisFor(ctx context.Context, w http.ResponseWriter, r *http.Request, source string, tr *obs.Tracer) *core.Analysis {
	if s.cache == nil {
		a, err := s.buildAnalysis(ctx, source, tr)
		if err != nil {
			s.failErr(w, r, "analyze", err)
			return nil
		}
		return a
	}
	cached, outcome, err := s.cache.Get(ctx, source, func(bctx context.Context) (*core.Analysis, error) {
		a, err := s.buildAnalysis(bctx, source, tr)
		if err != nil {
			return nil, err
		}
		return a.Rebind(nil, s.reg, nil), nil
	})
	w.Header().Set("X-Cache", outcome.String())
	tr.Instant("cache."+outcome.String(), 1)
	if err != nil {
		s.failErr(w, r, "analyze", err)
		return nil
	}
	return cached.Rebind(ctx, s.reg, tr)
}

// sliceETag derives the strong validator for a slice request: the
// content hash of everything the response's semantic payload depends
// on — program source, criterion, algorithm, and whether provenance
// was requested.
func sliceETag(req *sliceRequest, explain bool) string {
	h := sha256.New()
	for _, part := range []string{"sliced-etag-v1", req.Source, req.Var, strconv.Itoa(req.Line), req.Algo, strconv.FormatBool(explain)} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// etagMatches implements If-None-Match for a single strong validator:
// "*" matches anything, otherwise any listed entity tag must equal
// ours (weak prefixes never match — weak comparison is not valid for
// the byte-range-capable semantics a strong validator advertises).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		if strings.TrimSpace(cand) == etag {
			return true
		}
	}
	return false
}

// handleCache reports the analysis cache's live state: the counters,
// the exact byte ledger, and the configured budget.
func (s *server) handleCache(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled bool             `json:"enabled"`
		Stats   slicecache.Stats `json:"stats"`
	}{true, s.cache.Stats()})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.reg.Snapshot())
	obs.WriteSLOPrometheus(w, s.slo.Snapshot())
}

func (s *server) handleFlight(w http.ResponseWriter, r *http.Request) {
	events := s.fr.Events()
	// The n parameter is validated strictly: a request that says
	// "limit to n" but sends garbage gets a 422 naming the fault, not
	// a silently unlimited dump.
	if vs, present := r.URL.Query()["n"]; present {
		v := ""
		if len(vs) > 0 {
			v = vs[0]
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, r, http.StatusUnprocessableEntity, "invalid_parameter",
				"parameter n must be a non-negative integer, got %q", v)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Flight-Written", strconv.FormatUint(s.fr.Written(), 10))
	w.Header().Set("X-Flight-Dropped", strconv.FormatUint(s.fr.Dropped(), 10))
	obs.WriteJSONL(w, events)
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("id")
	if v == "" {
		s.fail(w, r, http.StatusBadRequest, "bad_request", "missing id parameter")
		return
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "bad_request", "bad id %q: %v", v, err)
		return
	}
	events := s.fr.RequestEvents(id)
	if len(events) == 0 {
		s.fail(w, r, http.StatusNotFound, "not_found", "no buffered events for request %d (evicted or never traced)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, events)
}
