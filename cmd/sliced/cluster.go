package main

// The daemon's cluster plane: consistent-hash routing over the
// program's content address, transparent proxying to the ring owner,
// peer cache fill on local miss, and the disk-backed result tier that
// makes restarts warm.
//
// The flow for one clustered /slice request:
//
//  1. The ring (built over the full static -peers list) names the
//     owner of the program's content address. A request landing on
//     the wrong node is proxied to the owner — unless it already
//     carries X-Sliced-Routed-From (one hop max) or the owner is
//     down, in which case the local node serves it degraded.
//  2. The serving node consults its result cache (memory over disk).
//     A hit answers without touching the pipeline (X-Cache: result or
//     disk).
//  3. On a miss, cluster mode asks ring-adjacent peers for the
//     serialized record (X-Cache: peer-fill). A fill that fails —
//     peers down, record absent, record corrupt — falls back to local
//     compute; it can degrade latency, never a response.
//  4. A locally computed response is serialized canonically (the
//     per-request fields zeroed) and written through to the result
//     tiers, making it available to peers and to the next restart.
//
// Routing is over the analysis key (the whole program source), not
// the result key (source + criterion + algorithm): all criteria of
// one program land on one node, so its *core.Analysis is built once
// fleet-wide and stays hot there.

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"jumpslice/internal/cluster"
	"jumpslice/internal/obs"
	"jumpslice/internal/slicecache"
	"jumpslice/internal/slicecache/disk"
)

// routedFromHeader marks a proxied request with the node that
// forwarded it. Its presence is the loop guard: a request that
// already hopped is served where it lands, no matter what the ring
// says.
const routedFromHeader = "X-Sliced-Routed-From"

// clusterState is the daemon's routing fabric; nil when -peers is
// unset.
type clusterState struct {
	self       string
	ring       *cluster.Ring
	peers      *cluster.Peers
	filler     *cluster.Filler
	candidates int
	client     *http.Client // proxy transport

	localServes *obs.Counter
	proxied     *obs.Counter
	proxyErrors *obs.Counter
	fillServes  *obs.Counter
}

// openCluster brings up the persistence and routing tiers from the
// config: the disk store (when -disk-dir is set), the result cache
// (when clustering or the disk tier is on), and the ring, peer
// prober, and fill client (when -peers is set). It must run before
// the first request, like openSpool; serveOn does, and cluster tests
// call it directly.
func (s *server) openCluster() error {
	if s.cfg.DiskDir != "" {
		st, err := disk.Open(disk.Options{
			Dir:          s.cfg.DiskDir,
			MaxBytes:     s.cfg.DiskBytes,
			SegmentBytes: s.cfg.DiskSegment,
			Recorder:     s.reg,
		})
		if err != nil {
			return err
		}
		s.disk = st
		s.logger.Printf("disk result tier on %s (budget %d bytes)", s.cfg.DiskDir, st.Stats().MaxBytes)
	}
	if s.cfg.DiskDir != "" || len(s.cfg.PeerList) > 0 {
		s.results = slicecache.NewResultCache(slicecache.ResultOptions{
			MaxBytes: s.cfg.ResultBytes,
			Disk:     s.disk,
			Recorder: s.reg,
		})
	}
	if len(s.cfg.PeerList) == 0 {
		return nil
	}
	// The ring spans the full configured list plus self: ownership is a
	// function of configuration, never of health — a probe flap must
	// not reshuffle keys.
	nodes := append(append([]string{}, s.cfg.PeerList...), s.cfg.Self)
	peers := cluster.NewPeers(s.cfg.Self, s.cfg.PeerList, cluster.ProbeOptions{
		Interval: s.cfg.ProbeInterval,
		Timeout:  s.cfg.ProbeTimeout,
		Recorder: s.reg,
	})
	c := &clusterState{
		self:       s.cfg.Self,
		ring:       cluster.NewRing(nodes, s.cfg.Vnodes),
		peers:      peers,
		candidates: s.cfg.FillCandidates,
		client:     &http.Client{Timeout: s.cfg.Timeout + 5*time.Second},

		localServes: s.reg.Counter("cluster.local_serves"),
		proxied:     s.reg.Counter("cluster.proxied"),
		proxyErrors: s.reg.Counter("cluster.proxy_errors"),
		fillServes:  s.reg.Counter("cluster.fill_serves"),
	}
	c.filler = cluster.NewFiller(cluster.FillOptions{
		Timeout:  s.cfg.FillTimeout,
		MaxBytes: s.cfg.MaxBody * 16,
		Validate: validateRecord,
		Peers:    peers,
		Recorder: s.reg,
	})
	peers.Start()
	s.cluster = c
	s.logger.Printf("cluster mode: self=%s peers=%d vnodes=%d", c.self, len(s.cfg.PeerList), s.cfg.Vnodes)
	return nil
}

// closeCluster stops the prober and seals the disk tier.
func (s *server) closeCluster() {
	if s.cluster != nil {
		s.cluster.peers.Close()
	}
	if s.disk != nil {
		s.disk.Close()
	}
}

// validateRecord vets a peer-filled record before it is trusted: it
// must decode as a slice response that actually carries a slice. A
// record failing here counts cluster.fill_corrupt and the fill moves
// on — a corrupt peer costs a recompute, never a bad answer.
func validateRecord(data []byte) error {
	var resp sliceResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return err
	}
	if resp.Algorithm == "" || len(resp.Lines) == 0 {
		return fmt.Errorf("record missing algorithm or lines")
	}
	return nil
}

// resultKeyFor derives the result-record address for one request: the
// full tuple the response content depends on (mirrors sliceETag).
func resultKeyFor(req *sliceRequest, explain bool) slicecache.ResultKey {
	return slicecache.ResultKeyOf(req.Source, req.Var, strconv.Itoa(req.Line), req.Algo, strconv.FormatBool(explain))
}

// routeSlice decides placement for a parsed /slice request and, when
// the owner is another live node, proxies to it. It reports whether
// the response was written; false means "serve locally" (we own the
// key, the owner is down, or the request already hopped).
func (s *server) routeSlice(ctx context.Context, w http.ResponseWriter, r *http.Request, req *sliceRequest) bool {
	c := s.cluster
	if c == nil {
		return false
	}
	key := slicecache.KeyOf(req.Source)
	owner := c.ring.Owner(key[:])
	if owner == c.self || r.Header.Get(routedFromHeader) != "" || !c.peers.Up(owner) {
		c.localServes.Add(1)
		return false
	}
	if s.proxySlice(ctx, w, r, req, owner) {
		return true
	}
	// The hop failed mid-flight: the owner was just marked down; serve
	// degraded rather than erroring.
	c.localServes.Add(1)
	return false
}

// proxySlice forwards the request to owner, streaming the response
// back. The forwarded request carries the parsed body re-encoded as
// JSON (the original body is already consumed), the routed-from hop
// marker, and the conditional/failpoint headers. It reports whether a
// response was relayed; a transport failure marks the owner down and
// returns false so the caller serves locally.
func (s *server) proxySlice(ctx context.Context, w http.ResponseWriter, r *http.Request, req *sliceRequest, owner string) bool {
	c := s.cluster
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	u := "http://" + owner + "/slice"
	if q := r.URL.RawQuery; q != "" {
		u += "?" + q
	}
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(routedFromHeader, c.self)
	for _, h := range []string{"If-None-Match", "X-Sliced-Fail"} {
		if v := r.Header.Get(h); v != "" {
			preq.Header.Set(h, v)
		}
	}
	resp, err := c.client.Do(preq)
	if err != nil {
		c.proxyErrors.Add(1)
		c.peers.MarkDown(owner)
		return false
	}
	defer resp.Body.Close()
	c.proxied.Add(1)
	return s.relayProxy(w, resp, owner)
}

// relayProxy copies the owner's response onto our writer with the
// proxied-route headers. The owner's verdicts ride through: X-Cache
// says which tier it hit, X-Sliced-Node names the node that actually
// served (never two hops away — the routed-from marker forbids a
// second proxy).
func (s *server) relayProxy(w http.ResponseWriter, resp *http.Response, owner string) bool {
	h := w.Header()
	for _, name := range []string{"Content-Type", "X-Cache", "X-Sliced-Node", "Retry-After", "ETag"} {
		if v := resp.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	h.Set("X-Sliced-Route", "proxied")
	h.Set("X-Sliced-Peer", owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// serveResult answers a /slice request from the result tiers —
// memory, disk, then peer fill — reporting whether a response was
// written. A false return means every tier missed and the caller must
// compute; rkey is where the computed record should then be stored.
func (s *server) serveResult(ctx context.Context, w http.ResponseWriter, r *http.Request, req *sliceRequest, rkey slicecache.ResultKey, id uint64, start time.Time) bool {
	if s.results == nil {
		return false
	}
	if data, src := s.results.Get(rkey); src != slicecache.ResultMiss {
		tier := "result"
		if src == slicecache.ResultDisk {
			tier = "disk"
		}
		if s.writeRecord(w, r, data, tier, "", id, start) {
			return true
		}
		// The record failed to decode (should be impossible past the
		// disk CRC); recompute and overwrite it.
	}
	c := s.cluster
	if c == nil {
		return false
	}
	// Peer fill: ask the ring-adjacent nodes (the previous/next owners
	// of this program's key) that are currently up.
	key := slicecache.KeyOf(req.Source)
	var candidates []string
	for _, cand := range c.ring.Candidates(key[:], c.candidates+1, c.self) {
		if len(candidates) < c.candidates && c.peers.Up(cand) {
			candidates = append(candidates, cand)
		}
	}
	if len(candidates) == 0 {
		return false
	}
	var hdr http.Header
	if s.cfg.Failpoints {
		if v := r.Header.Get("X-Sliced-Fail"); v != "" {
			hdr = http.Header{"X-Sliced-Fail": []string{v}}
		}
	}
	res, err := c.filler.Fill(ctx, rkey.Hex(), candidates, hdr)
	if err != nil {
		return false // fills are best-effort; compute locally
	}
	if !s.writeRecord(w, r, res.Data, "peer-fill", res.Peer, id, start) {
		return false
	}
	c.fillServes.Add(1)
	s.results.Put(rkey, res.Data)
	return true
}

// writeRecord decodes a canonical result record, stamps this
// request's delivery metadata (ID and wall-clock duration — the two
// fields deliberately zeroed in storage), and writes it. It reports
// false, writing nothing, if the record does not decode.
func (s *server) writeRecord(w http.ResponseWriter, r *http.Request, data []byte, tier, peer string, id uint64, start time.Time) bool {
	var resp sliceResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return false
	}
	resp.Request = id
	resp.DurationNS = time.Since(start).Nanoseconds()
	w.Header().Set("X-Cache", tier)
	if tier == "peer-fill" {
		w.Header().Set("X-Sliced-Route", "peer-fill")
		w.Header().Set("X-Sliced-Peer", peer)
	}
	ri := reqInfoFrom(r)
	ri.setSliceLines(len(resp.Lines))
	writeJSON(w, http.StatusOK, &resp)
	return true
}

// storeResult serializes a computed response into its canonical
// record — Request and DurationNS zeroed, so the record is a pure
// function of the request tuple — and writes it through the result
// tiers for peers and restarts to find.
func (s *server) storeResult(rkey slicecache.ResultKey, resp *sliceResponse) {
	if s.results == nil {
		return
	}
	rec := *resp
	rec.Request = 0
	rec.DurationNS = 0
	data, err := json.Marshal(&rec)
	if err != nil {
		return
	}
	s.results.Put(rkey, data)
}

// handleFill (GET /internal/fill?key=) serves one serialized result
// record to a peer, from cache state only: it never computes, never
// proxies, and never fills in turn, which is what makes a fill
// structurally one hop. The key parameter is validated strictly.
func (s *server) handleFill(w http.ResponseWriter, r *http.Request) {
	if s.results == nil {
		s.fail(w, r, http.StatusNotFound, "not_found", "result cache not enabled (-peers or -disk-dir)")
		return
	}
	v := r.URL.Query().Get("key")
	raw, err := hex.DecodeString(v)
	if err != nil || len(raw) != len(slicecache.ResultKey{}) {
		s.fail(w, r, http.StatusUnprocessableEntity, "invalid_parameter",
			"parameter key must be %d hex characters, got %q", 2*len(slicecache.ResultKey{}), v)
		return
	}
	var key slicecache.ResultKey
	copy(key[:], raw)
	data, src := s.results.Get(key)
	if src == slicecache.ResultMiss {
		s.fail(w, r, http.StatusNotFound, "not_found", "no record for key %s", v)
		return
	}
	// The fill-corrupt failpoint serves a torn record so the e2e tests
	// can prove the requesting side survives corruption.
	if s.cfg.Failpoints && r.Header.Get("X-Sliced-Fail") == "fill-corrupt" {
		data = data[:len(data)/2]
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", map[slicecache.ResultSource]string{
		slicecache.ResultMemory: "result",
		slicecache.ResultDisk:   "disk",
	}[src])
	w.Write(data)
}

// handleClusterDebug (GET /debug/cluster) reports the routing
// fabric's live state: self, ring membership, per-peer health, and
// the result/disk tier ledgers. Without -peers it reports what is
// enabled ({"enabled":false} when neither clustering nor the disk
// tier is on).
func (s *server) handleClusterDebug(w http.ResponseWriter, r *http.Request) {
	type tierStats struct {
		Result *slicecache.ResultStats `json:"result,omitempty"`
		Disk   *disk.Stats             `json:"disk,omitempty"`
	}
	out := struct {
		Enabled bool                `json:"enabled"`
		Self    string              `json:"self,omitempty"`
		Vnodes  int                 `json:"vnodes,omitempty"`
		Nodes   []string            `json:"nodes,omitempty"`
		Peers   []cluster.PeerState `json:"peers,omitempty"`
		Tiers   tierStats           `json:"tiers"`
	}{}
	if s.results != nil {
		st := s.results.ResultStats()
		out.Tiers.Result = &st
		out.Enabled = true
	}
	if s.disk != nil {
		st := s.disk.Stats()
		out.Tiers.Disk = &st
	}
	if c := s.cluster; c != nil {
		out.Enabled = true
		out.Self = c.self
		out.Vnodes = c.ring.Vnodes()
		out.Nodes = c.ring.Nodes()
		out.Peers = c.peers.States()
	}
	writeJSON(w, http.StatusOK, out)
}
