package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jumpslice/internal/obs"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: jumpslice
BenchmarkFigure01-8        	  500000	      2215 ns/op
BenchmarkSliceAll/independent-agrawal-8 	      20	  52373919 ns/op
BenchmarkSliceAll/batch-sliceall-8      	      50	  21342614 ns/op
--- BENCH: BenchmarkSliceAll
    bench_test.go:221: criteria: 100 over 34 programs
PASS
ok  	jumpslice	4.2s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []Benchmark{
		{Name: "BenchmarkFigure01", Iters: 500000, NsPerOp: 2215},
		{Name: "BenchmarkSliceAll/independent-agrawal", Iters: 20, NsPerOp: 52373919},
		{Name: "BenchmarkSliceAll/batch-sliceall", Iters: 50, NsPerOp: 21342614},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("benchmark %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGate(t *testing.T) {
	baseline := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkRetired", NsPerOp: 5},
	}
	pr := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1999}, // within 2x
		{Name: "BenchmarkB", NsPerOp: 2001}, // beyond 2x
		{Name: "BenchmarkNew", NsPerOp: 9e9},
	}
	regs, compared := Gate(baseline, pr, 2.0)
	if compared != 2 {
		t.Errorf("compared = %d, want 2 (retired and new benchmarks skipped)", compared)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Errorf("regressions = %+v, want exactly BenchmarkB", regs)
	}
}

func TestPhasesOf(t *testing.T) {
	reg := obs.NewRegistry()
	sp := reg.StartSpan("phase.analyze")
	sp.End()
	reg.Histogram("core.slice_nodes", obs.UnitCount).Observe(12)
	phases := PhasesOf(reg.Snapshot())
	if len(phases) != 1 || phases[0].Name != "phase.analyze" || phases[0].Count != 1 {
		t.Errorf("phases = %+v, want one phase.analyze with count 1", phases)
	}
}

// TestEndToEndGate drives the CLI through the three CI steps: build a
// report, regenerate a baseline from it, gate a slowed-down run.
func TestEndToEndGate(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	// Metrics snapshot with one phase histogram.
	reg := obs.NewRegistry()
	reg.StartSpan("phase.analyze").End()
	metricsPath := filepath.Join(dir, "metrics.json")
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metricsPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Step 1: write the baseline (no gate).
	basePath := filepath.Join(dir, "baseline.json")
	var sb strings.Builder
	if err := run([]string{"-bench", benchPath, "-metrics", metricsPath, "-out", basePath}, &sb); err != nil {
		t.Fatal(err)
	}

	// Step 2: same numbers gate cleanly against themselves.
	prPath := filepath.Join(dir, "pr.json")
	sb.Reset()
	if err := run([]string{"-bench", benchPath, "-metrics", metricsPath,
		"-baseline", basePath, "-out", prPath}, &sb); err != nil {
		t.Fatalf("self-gate failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "gate: ok") {
		t.Errorf("missing gate confirmation:\n%s", sb.String())
	}
	var rep Report
	prData, err := os.ReadFile(prPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(prData, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 || len(rep.Phases) != 1 {
		t.Errorf("report has %d benchmarks, %d phases; want 3 and 1", len(rep.Benchmarks), len(rep.Phases))
	}

	// Step 3: a 3x-slower run fails the gate.
	slow := strings.ReplaceAll(sampleBench, "      2215 ns/op", "      6645 ns/op")
	slowPath := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err = run([]string{"-bench", slowPath, "-baseline", basePath}, &sb)
	if err == nil {
		t.Fatalf("3x regression passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION BenchmarkFigure01") {
		t.Errorf("missing regression line:\n%s", sb.String())
	}
}

// TestUpdateBaseline covers the -update lifecycle: bootstrap when no
// baseline exists, rewrite after a passing gate, and refusal to ratify
// a failing run.
func TestUpdateBaseline(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "baseline.json")

	readBaseline := func() Report {
		t.Helper()
		data, err := os.ReadFile(basePath)
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// Bootstrap: the baseline file does not exist yet.
	var sb strings.Builder
	if err := run([]string{"-bench", benchPath, "-baseline", basePath, "-update"}, &sb); err != nil {
		t.Fatalf("bootstrap failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "bootstrapping") || !strings.Contains(sb.String(), "updated "+basePath) {
		t.Errorf("missing bootstrap confirmation:\n%s", sb.String())
	}
	if got := readBaseline(); len(got.Benchmarks) != 3 {
		t.Errorf("bootstrapped baseline has %d benchmarks, want 3", len(got.Benchmarks))
	}

	// A faster passing run rewrites the baseline in place.
	fast := strings.ReplaceAll(sampleBench, "      2215 ns/op", "      1111 ns/op")
	fastPath := filepath.Join(dir, "fast.txt")
	if err := os.WriteFile(fastPath, []byte(fast), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-bench", fastPath, "-baseline", basePath, "-update"}, &sb); err != nil {
		t.Fatalf("update after pass failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "gate: ok") || !strings.Contains(sb.String(), "updated "+basePath) {
		t.Errorf("missing gate/update confirmation:\n%s", sb.String())
	}
	if got := readBaseline(); got.Benchmarks[0].NsPerOp != 1111 {
		t.Errorf("baseline not rewritten: BenchmarkFigure01 = %v ns/op, want 1111", got.Benchmarks[0].NsPerOp)
	}

	// A regressing run fails the gate and must leave the baseline alone.
	slow := strings.ReplaceAll(sampleBench, "      2215 ns/op", "      9999 ns/op")
	slowPath := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-bench", slowPath, "-baseline", basePath, "-update"}, &sb); err == nil {
		t.Fatalf("regression ratified itself:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "updated ") {
		t.Errorf("failing gate still claimed an update:\n%s", sb.String())
	}
	if got := readBaseline(); got.Benchmarks[0].NsPerOp != 1111 {
		t.Errorf("failing gate rewrote the baseline: got %v ns/op", got.Benchmarks[0].NsPerOp)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("expected error without -bench")
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", empty}, &sb); err == nil {
		t.Error("expected error for benchless input")
	}
	if err := run([]string{"-bench", empty, "-update"}, &sb); err == nil || !strings.Contains(err.Error(), "-update requires -baseline") {
		t.Errorf("-update without -baseline: err = %v, want flag-combination error", err)
	}
}

func TestRatioFlagsSet(t *testing.T) {
	var f ratioFlags
	good := []struct {
		in       string
		num, den string
		max      float64
	}{
		{"BenchmarkA:BenchmarkB:0.05", "BenchmarkA", "BenchmarkB", 0.05},
		{"BenchmarkIncrementalEdit/incremental:BenchmarkIncrementalEdit/cold:0.05",
			"BenchmarkIncrementalEdit/incremental", "BenchmarkIncrementalEdit/cold", 0.05},
		{"BenchmarkA:BenchmarkB:2", "BenchmarkA", "BenchmarkB", 2},
	}
	for _, g := range good {
		if err := f.Set(g.in); err != nil {
			t.Fatalf("Set(%q) = %v", g.in, err)
		}
		got := f[len(f)-1]
		if got.Num != g.num || got.Den != g.den || got.Max != g.max {
			t.Errorf("Set(%q) parsed %+v, want {%s %s %g}", g.in, got, g.num, g.den, g.max)
		}
	}
	if s := f.String(); !strings.Contains(s, "BenchmarkA:BenchmarkB:0.05") {
		t.Errorf("String() = %q, missing first gate", s)
	}
	for _, bad := range []string{"", "NoColons", "OnlyOne:0.5", "A:B:", "A:B:zero", "A:B:-1", "A:B:0", ":B:0.5", "A::0.5"} {
		before := len(f)
		if err := f.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted malformed gate: %+v", bad, f[len(f)-1])
		}
		if len(f) != before {
			t.Errorf("Set(%q) appended despite error", bad)
		}
	}
}

func TestGateRatios(t *testing.T) {
	benchmarks := []Benchmark{
		{Name: "BenchmarkCold", NsPerOp: 1000},
		{Name: "BenchmarkIncr", NsPerOp: 30},
	}
	res, err := GateRatios(benchmarks, []ratioGate{{Num: "BenchmarkIncr", Den: "BenchmarkCold", Max: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Ratio != 0.03 || res[0].Max != 0.05 {
		t.Errorf("results = %+v, want one 0.03 (max 0.05)", res)
	}

	// A gate naming an absent benchmark must be a hard error, not a skip.
	if _, err := GateRatios(benchmarks, []ratioGate{{Num: "BenchmarkMissing", Den: "BenchmarkCold", Max: 1}}); err == nil || !strings.Contains(err.Error(), "BenchmarkMissing") {
		t.Errorf("missing numerator: err = %v, want named error", err)
	}
	if _, err := GateRatios(benchmarks, []ratioGate{{Num: "BenchmarkIncr", Den: "BenchmarkMissing", Max: 1}}); err == nil || !strings.Contains(err.Error(), "BenchmarkMissing") {
		t.Errorf("missing denominator: err = %v, want named error", err)
	}
	zero := append(benchmarks, Benchmark{Name: "BenchmarkZero", NsPerOp: 0})
	if _, err := GateRatios(zero, []ratioGate{{Num: "BenchmarkIncr", Den: "BenchmarkZero", Max: 1}}); err == nil {
		t.Error("zero denominator accepted")
	}
}

// TestRatioGateEndToEnd drives run() with -ratio: a holding ratio
// passes and lands in the report; a broken ratio fails the run and
// must not ratify a baseline via -update.
func TestRatioGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchPath, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}

	// batch-sliceall (~21ms) is well under 0.5x independent-agrawal (~52ms).
	gate := "BenchmarkSliceAll/batch-sliceall:BenchmarkSliceAll/independent-agrawal:0.5"
	outPath := filepath.Join(dir, "report.json")
	var sb strings.Builder
	if err := run([]string{"-bench", benchPath, "-ratio", gate, "-out", outPath}, &sb); err != nil {
		t.Fatalf("passing ratio failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "ratio: ") || !strings.Contains(sb.String(), "ok") {
		t.Errorf("missing ratio confirmation:\n%s", sb.String())
	}
	var rep Report
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Ratios) != 1 || rep.Ratios[0].Max != 0.5 || rep.Ratios[0].Ratio <= 0 {
		t.Errorf("report ratios = %+v, want one evaluated gate", rep.Ratios)
	}

	// Tighten the gate until it breaks: the same pair cannot hold 0.1.
	tight := "BenchmarkSliceAll/batch-sliceall:BenchmarkSliceAll/independent-agrawal:0.1"
	basePath := filepath.Join(dir, "baseline.json")
	sb.Reset()
	err = run([]string{"-bench", benchPath, "-ratio", tight, "-baseline", basePath, "-update"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "ratio gate") {
		t.Fatalf("broken ratio passed: err = %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "RATIO EXCEEDED") {
		t.Errorf("missing RATIO EXCEEDED line:\n%s", sb.String())
	}
	if _, statErr := os.Stat(basePath); statErr == nil {
		t.Error("failing ratio gate still bootstrapped a baseline via -update")
	}

	// A gate naming a benchmark outside the run is a configuration error.
	sb.Reset()
	if err := run([]string{"-bench", benchPath, "-ratio", "BenchmarkNope:BenchmarkFigure01:1"}, &sb); err == nil {
		t.Error("gate on absent benchmark accepted")
	}
}

// sliceloadJSON fabricates a `sliceload -json` report with the given
// tail latency and shed rate.
func sliceloadJSON(t *testing.T, dir string, p99 time.Duration, shedRate float64) string {
	t.Helper()
	report := map[string]any{
		"requests":  int64(10000),
		"shed":      int64(float64(10000) * shedRate),
		"shed_rate": shedRate,
		"latency": map[string]int64{
			"samples": 9000,
			"p50_ns":  (p99 / 10).Nanoseconds(),
			"p95_ns":  (p99 / 2).Nanoseconds(),
			"p99_ns":  p99.Nanoseconds(),
			"p999_ns": (2 * p99).Nanoseconds(),
			"max_ns":  (3 * p99).Nanoseconds(),
		},
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sliceload.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSliceloadGate(t *testing.T) {
	dir := t.TempDir()
	path := sliceloadJSON(t, dir, 40*time.Millisecond, 0.01)

	// Within both ceilings: passes, merges into -out, no -bench needed.
	outPath := filepath.Join(dir, "report.json")
	var sb strings.Builder
	if err := run([]string{"-sliceload", path, "-gate-p99", "100ms", "-gate-shed", "0.05",
		"-out", outPath}, &sb); err != nil {
		t.Fatalf("in-budget load report failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "sliceload gate: ok") {
		t.Errorf("missing gate confirmation:\n%s", sb.String())
	}
	var rep Report
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Sliceload == nil || rep.Sliceload.Latency.P99NS != (40*time.Millisecond).Nanoseconds() {
		t.Fatalf("sliceload summary not merged: %+v", rep.Sliceload)
	}

	// p99 over the ceiling fails.
	sb.Reset()
	if err := run([]string{"-sliceload", path, "-gate-p99", "10ms"}, &sb); err == nil {
		t.Fatalf("p99 4x over the ceiling passed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "SLICELOAD GATE p99") {
		t.Errorf("missing p99 violation line:\n%s", sb.String())
	}

	// Shed rate over the ceiling fails.
	sb.Reset()
	if err := run([]string{"-sliceload", path, "-gate-shed", "0.005"}, &sb); err == nil {
		t.Fatalf("shed rate 2x over the ceiling passed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "SLICELOAD GATE shed rate") {
		t.Errorf("missing shed violation line:\n%s", sb.String())
	}

	// Ceilings without a report to apply them to are an error.
	if err := run([]string{"-gate-p99", "10ms"}, &sb); err == nil {
		t.Fatal("-gate-p99 without -sliceload accepted")
	}
	// An empty report can't pass a gate silently.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"requests":0,"latency":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-sliceload", empty, "-gate-p99", "10ms"}, &sb); err == nil {
		t.Fatalf("sample-free report passed the gate:\n%s", sb.String())
	}
}
