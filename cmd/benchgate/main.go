// Command benchgate is the CI performance gate. It merges the two
// performance artifacts a CI run produces —
//
//   - the output of `go test -bench` (ns/op per benchmark), and
//   - a pipeline metrics snapshot from `slicebench -metrics`
//     (per-phase span histograms)
//
// — into one machine-readable report (BENCH_PR.json), and compares
// the benchmark numbers against a checked-in baseline, failing with a
// nonzero exit when any shared benchmark regressed beyond the allowed
// ratio (default 2×: CI runners are noisy; a doubling is a real
// regression, not jitter).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSliceAll -benchtime 20x . > bench.txt
//	slicebench -exp precision -seeds 20 -metrics metrics.json
//	benchgate -bench bench.txt -metrics metrics.json \
//	    -baseline BENCH_baseline.json -out BENCH_PR.json
//
// Benchmark names are normalized by stripping the trailing GOMAXPROCS
// suffix (BenchmarkX-8 → BenchmarkX) so reports compare across
// machines.
//
// Besides the cross-run baseline gate, -ratio pins relationships
// within one run: `-ratio Num:Den:max` (repeatable) fails when
// benchmark Num's ns/op exceeds max times benchmark Den's. This is
// how machine-independent contracts are enforced — e.g.
//
//	-ratio 'BenchmarkIncrementalEdit/incremental:BenchmarkIncrementalEdit/cold:0.05'
//
// asserts an incremental one-line re-analysis stays under 5% of the
// cold pipeline, on whatever hardware CI happens to run.
//
// A third artifact joins when a CI run drives a cluster: -sliceload
// reads a `sliceload -json` report and merges its tail-latency
// numbers into the output. -gate-p99 and -gate-shed turn them into
// absolute gates — the run fails when the exact p99 exceeds the given
// duration or the shed rate exceeds the given fraction. These are
// fixed ceilings rather than baseline ratios: a load test's contract
// ("p99 under a second at this request rate, shedding under 5%") is
// machine-sized by the CI job itself. With -sliceload present, -bench
// becomes optional — a cluster-smoke job gates on the load report
// alone.
//
// Baselines are maintained with -update: after the gate passes, the
// baseline file is rewritten with the merged report of the current
// run, so accepting a new performance floor is one flag on a green
// run instead of a hand-edited JSON file. A failing gate refuses to
// update — a regression cannot ratify itself. When the baseline file
// does not exist yet, -update bootstraps it from the current run.
// (Running with -out pointed at the baseline and no -baseline still
// works, but skips the gate entirely.)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"jumpslice/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Report is the merged performance report (BENCH_PR.json).
type Report struct {
	// Benchmarks are the parsed `go test -bench` results, in input
	// order, names normalized (no -GOMAXPROCS suffix).
	Benchmarks []Benchmark `json:"benchmarks"`
	// Phases summarizes the pipeline span histograms ("phase.*") of
	// the metrics snapshot, sorted by name.
	Phases []Phase `json:"phases,omitempty"`
	// Ratios are the evaluated -ratio assertions of this run.
	Ratios []RatioResult `json:"ratios,omitempty"`
	// Sliceload is the merged load-test summary (-sliceload).
	Sliceload *SliceloadSummary `json:"sliceload,omitempty"`
}

// SliceloadSummary is the slice of a `sliceload -json` report the
// gate consumes: exact tail percentiles and the shed rate.
type SliceloadSummary struct {
	Requests int64   `json:"requests"`
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	Latency  struct {
		Samples int64 `json:"samples"`
		P50NS   int64 `json:"p50_ns"`
		P95NS   int64 `json:"p95_ns"`
		P99NS   int64 `json:"p99_ns"`
		P999NS  int64 `json:"p999_ns"`
		MaxNS   int64 `json:"max_ns"`
	} `json:"latency"`
}

// GateSliceload applies the absolute tail-latency ceilings to a load
// report. Zero ceilings skip their gate.
func GateSliceload(s *SliceloadSummary, maxP99 time.Duration, maxShed float64) []string {
	var violations []string
	if s.Latency.Samples == 0 {
		return []string{"sliceload report has no latency samples"}
	}
	if maxP99 > 0 && s.Latency.P99NS > maxP99.Nanoseconds() {
		violations = append(violations, fmt.Sprintf("p99 %s exceeds -gate-p99 %s",
			time.Duration(s.Latency.P99NS), maxP99))
	}
	if maxShed > 0 && s.ShedRate > maxShed {
		violations = append(violations, fmt.Sprintf("shed rate %.4f exceeds -gate-shed %.4f",
			s.ShedRate, maxShed))
	}
	return violations
}

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Phase is one pipeline phase's aggregate timing.
type Phase struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
}

// Regression is one gate violation.
type Regression struct {
	Name     string
	Base, PR float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx)", r.Name, r.PR, r.Base, r.PR/r.Base)
}

// ratioGate is one -ratio assertion: benchmark Num's ns/op must not
// exceed Max times benchmark Den's ns/op within the same run. Unlike
// the baseline gate, which catches regressions against history, a
// ratio gate pins a relationship two benchmarks of one run must keep
// regardless of machine speed — e.g. an incremental re-analysis
// staying under 5% of the cold pipeline.
type ratioGate struct {
	Num, Den string
	Max      float64
}

// ratioFlags collects repeatable -ratio Num:Den:max flags.
type ratioFlags []ratioGate

func (f *ratioFlags) String() string {
	parts := make([]string, len(*f))
	for i, g := range *f {
		parts[i] = fmt.Sprintf("%s:%s:%g", g.Num, g.Den, g.Max)
	}
	return strings.Join(parts, ",")
}

func (f *ratioFlags) Set(v string) error {
	i := strings.LastIndex(v, ":")
	if i < 0 {
		return fmt.Errorf("want Num:Den:max, got %q", v)
	}
	max, err := strconv.ParseFloat(v[i+1:], 64)
	if err != nil || max <= 0 {
		return fmt.Errorf("bad max ratio in %q (want a positive float)", v)
	}
	pair := v[:i]
	j := strings.Index(pair, ":")
	if j <= 0 || j == len(pair)-1 {
		return fmt.Errorf("want Num:Den:max, got %q", v)
	}
	*f = append(*f, ratioGate{Num: pair[:j], Den: pair[j+1:], Max: max})
	return nil
}

// RatioResult is one evaluated -ratio assertion.
type RatioResult struct {
	Num   string  `json:"num"`
	Den   string  `json:"den"`
	Ratio float64 `json:"ratio"`
	Max   float64 `json:"max"`
}

// GateRatios evaluates ratio assertions against one run's benchmarks.
// A gate naming a benchmark the run did not produce is an error — a
// silently skipped assertion would pass forever.
func GateRatios(benchmarks []Benchmark, gates []ratioGate) ([]RatioResult, error) {
	byName := make(map[string]float64, len(benchmarks))
	for _, b := range benchmarks {
		byName[b.Name] = b.NsPerOp
	}
	out := make([]RatioResult, 0, len(gates))
	for _, g := range gates {
		num, ok := byName[g.Num]
		if !ok {
			return nil, fmt.Errorf("-ratio: benchmark %q not in this run", g.Num)
		}
		den, ok := byName[g.Den]
		if !ok {
			return nil, fmt.Errorf("-ratio: benchmark %q not in this run", g.Den)
		}
		if den <= 0 {
			return nil, fmt.Errorf("-ratio: benchmark %q has no time to divide by", g.Den)
		}
		out = append(out, RatioResult{Num: g.Num, Den: g.Den, Ratio: num / den, Max: g.Max})
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	benchPath := fs.String("bench", "", "`go test -bench` output to parse (required)")
	metricsPath := fs.String("metrics", "", "slicebench -metrics snapshot to merge (optional)")
	baselinePath := fs.String("baseline", "", "baseline report to gate against (optional)")
	outPath := fs.String("out", "", "write the merged report here (optional)")
	maxRatio := fs.Float64("max-ratio", 2.0, "fail when PR ns/op exceeds baseline by this factor")
	update := fs.Bool("update", false, "rewrite -baseline from this run after the gate passes")
	sliceloadPath := fs.String("sliceload", "", "`sliceload -json` report to merge and gate (optional)")
	gateP99 := fs.Duration("gate-p99", 0, "fail when the sliceload p99 exceeds this duration (with -sliceload)")
	gateShed := fs.Float64("gate-shed", 0, "fail when the sliceload shed rate exceeds this fraction (with -sliceload)")
	var ratios ratioFlags
	fs.Var(&ratios, "ratio", "`Num:Den:max` — fail when benchmark Num exceeds max × benchmark Den in this run (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchPath == "" && *sliceloadPath == "" {
		return fmt.Errorf("one of -bench or -sliceload is required")
	}
	if *update && *baselinePath == "" {
		return fmt.Errorf("-update requires -baseline")
	}
	if (*gateP99 > 0 || *gateShed > 0) && *sliceloadPath == "" {
		return fmt.Errorf("-gate-p99/-gate-shed require -sliceload")
	}

	report := &Report{}
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		benchmarks, err := ParseBench(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(benchmarks) == 0 {
			return fmt.Errorf("%s: no benchmark result lines found", *benchPath)
		}
		report.Benchmarks = benchmarks
	}
	var err error
	report.Ratios, err = GateRatios(report.Benchmarks, ratios)
	if err != nil {
		return err
	}
	if *sliceloadPath != "" {
		data, err := os.ReadFile(*sliceloadPath)
		if err != nil {
			return err
		}
		var s SliceloadSummary
		if err := json.Unmarshal(data, &s); err != nil {
			return fmt.Errorf("%s: %w", *sliceloadPath, err)
		}
		report.Sliceload = &s
	}

	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			return err
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("%s: %w", *metricsPath, err)
		}
		report.Phases = PhasesOf(&snap)
	}

	if *outPath != "" {
		if err := writeReport(*outPath, report); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d benchmarks, %d phases)\n", *outPath, len(report.Benchmarks), len(report.Phases))
	}

	// Ratio gates fail before the baseline gate can -update: a run
	// that broke a pinned ratio must not ratify anything.
	violated := 0
	for _, rr := range report.Ratios {
		status := "ok"
		if rr.Ratio > rr.Max {
			status = "RATIO EXCEEDED"
			violated++
		}
		fmt.Fprintf(out, "ratio: %s / %s = %.4f (max %.4f) %s\n", rr.Num, rr.Den, rr.Ratio, rr.Max, status)
	}
	if violated > 0 {
		return fmt.Errorf("%d ratio gate(s) exceeded", violated)
	}

	// The sliceload ceilings also fail before -update for the same
	// reason.
	if report.Sliceload != nil {
		s := report.Sliceload
		fmt.Fprintf(out, "sliceload: %d requests, p99 %s, shed rate %.4f\n",
			s.Requests, time.Duration(s.Latency.P99NS), s.ShedRate)
		if *gateP99 > 0 || *gateShed > 0 {
			violations := GateSliceload(s, *gateP99, *gateShed)
			for _, v := range violations {
				fmt.Fprintln(out, "SLICELOAD GATE", v)
			}
			if len(violations) > 0 {
				return fmt.Errorf("%d sliceload gate(s) exceeded", len(violations))
			}
			fmt.Fprintln(out, "sliceload gate: ok")
		}
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		switch {
		case err == nil:
			var baseline Report
			if err := json.Unmarshal(data, &baseline); err != nil {
				return fmt.Errorf("%s: %w", *baselinePath, err)
			}
			regressions, compared := Gate(baseline.Benchmarks, report.Benchmarks, *maxRatio)
			fmt.Fprintf(out, "gate: %d benchmarks compared against %s (max ratio %.2fx)\n",
				compared, *baselinePath, *maxRatio)
			if len(regressions) > 0 {
				for _, r := range regressions {
					fmt.Fprintln(out, "REGRESSION", r)
				}
				// A failing run must not ratify its own regression, so
				// -update is ignored on this path.
				return fmt.Errorf("%d benchmark(s) regressed beyond %.2fx", len(regressions), *maxRatio)
			}
			fmt.Fprintln(out, "gate: ok")
		case *update && os.IsNotExist(err):
			// Bootstrap: no baseline yet, the current run becomes it.
			fmt.Fprintf(out, "gate: no baseline at %s, bootstrapping\n", *baselinePath)
		default:
			return err
		}
		if *update {
			if err := writeReport(*baselinePath, report); err != nil {
				return err
			}
			fmt.Fprintf(out, "updated %s (%d benchmarks, %d phases)\n",
				*baselinePath, len(report.Benchmarks), len(report.Phases))
		}
	}
	return nil
}

// writeReport renders a report as indented JSON, the format baselines
// and -out artifacts share.
func writeReport(path string, report *Report) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchLine matches a `go test -bench` result line:
//
//	BenchmarkSliceAll/batch-sliceall-8   100   123456 ns/op   ...
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+([0-9.]+) ns/op`)

// gomaxprocsSuffix is the trailing -N the bench runner appends.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench extracts benchmark results from `go test -bench` output,
// normalizing names by dropping the GOMAXPROCS suffix.
func ParseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		out = append(out, Benchmark{
			Name:    gomaxprocsSuffix.ReplaceAllString(m[1], ""),
			Iters:   iters,
			NsPerOp: ns,
		})
	}
	return out, sc.Err()
}

// PhasesOf summarizes the "phase.*" nanosecond histograms of a
// metrics snapshot. Snapshot order is already name-sorted.
func PhasesOf(snap *obs.Snapshot) []Phase {
	var out []Phase
	for _, h := range snap.Histograms {
		if h.Unit != obs.UnitNanoseconds || !strings.HasPrefix(h.Name, "phase.") {
			continue
		}
		p := Phase{Name: h.Name, Count: h.Count, TotalNs: h.Sum}
		if h.Count > 0 {
			p.MeanNs = float64(h.Sum) / float64(h.Count)
		}
		out = append(out, p)
	}
	return out
}

// Gate compares PR benchmarks against the baseline and returns every
// shared benchmark whose ns/op exceeds baseline*maxRatio, plus how
// many were compared. Benchmarks present on only one side are
// ignored — adding or retiring a benchmark must not break the gate.
func Gate(baseline, pr []Benchmark, maxRatio float64) (regressions []Regression, compared int) {
	base := make(map[string]float64, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b.NsPerOp
	}
	for _, p := range pr {
		b, ok := base[p.Name]
		if !ok || b <= 0 {
			continue
		}
		compared++
		if p.NsPerOp > b*maxRatio {
			regressions = append(regressions, Regression{Name: p.Name, Base: b, PR: p.NsPerOp})
		}
	}
	return regressions, compared
}
