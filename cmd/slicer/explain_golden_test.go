package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden snapshots")

// TestGoldenExplain snapshots the full -explain listings for the
// paper's two worked jump examples and pins the jump-rule evidence to
// the exact nearest-postdominator/nearest-lexical-successor pairs the
// paper derives. Regenerate deliberately with
//
//	go test -run TestGoldenExplain -update-golden ./cmd/slicer
func TestGoldenExplain(t *testing.T) {
	cases := []struct {
		name     string
		file     string
		varName  string
		line     string
		mustHave []string
		mustMiss []string
	}{
		{
			name:    "fig5-a",
			file:    "fig5-a.mc",
			varName: "positives",
			line:    "14",
			// The continue on line 7 is admitted because its nearest
			// postdominator in the slice (the while head, line 3)
			// differs from its nearest lexical successor in the slice
			// (line 8); the continue on line 11 has no such pair and
			// stays out.
			mustHave: []string{
				"  7: continue;  // jump-rule(nearest-PD=3, nearest-LS=8)",
				" 14: write(positives);  // criterion",
			},
			mustMiss: []string{" 11: continue;"},
		},
		{
			name:    "fig8-a",
			file:    "fig8-a.mc",
			varName: "positives",
			line:    "15",
			// Figure 8's goto-form of the same program: the goto on
			// line 7 jumps back to the loop head (nearest-PD=3 vs
			// nearest-LS=8), and the two gotos on lines 11 and 13 —
			// needed to keep control flow past the excluded sum
			// updates — both see nearest-PD=3 against nearest-LS=15.
			mustHave: []string{
				"  7: goto L3;  // jump-rule(nearest-PD=3, nearest-LS=8)",
				" 11: goto L3;  // jump-rule(nearest-PD=3, nearest-LS=15)",
				" 13: goto L3;  // jump-rule(nearest-PD=3, nearest-LS=15)",
				" 15: write(positives);  // criterion",
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := filepath.Join("..", "..", "testdata", c.file)
			out, err := runCLI(t, "-var", c.varName, "-line", c.line, "-explain", src)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range c.mustHave {
				if !strings.Contains(out, want) {
					t.Errorf("explain output missing %q:\n%s", want, out)
				}
			}
			for _, miss := range c.mustMiss {
				if strings.Contains(out, miss) {
					t.Errorf("explain output wrongly contains %q:\n%s", miss, out)
				}
			}

			golden := filepath.Join("testdata", c.name+"-explain.golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%s: %v (run with -update-golden to create)", golden, err)
			}
			if string(want) != out {
				t.Errorf("%s: -explain output drifted from golden snapshot\n--- got ---\n%s\n--- want ---\n%s",
					golden, out, want)
			}
		})
	}
}
