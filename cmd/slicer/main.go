// Command slicer computes program slices from the command line.
//
// Usage:
//
//	slicer -var positives -line 15 [-algo agrawal] [flags] prog.mc
//
// The program is read from the named file, or from standard input when
// no file is given. The slicing criterion is (-var, -line), exactly as
// in the paper: "the slice with respect to positives on line 15".
//
// Algorithms (-algo):
//
//	conventional   PDG reachability (jump-unaware; paper Section 2)
//	weiser         Weiser's iterative dataflow algorithm (jump-unaware)
//	agrawal        the paper's general algorithm (Figure 7), default
//	agrawal-lst    Figure 7 driven by the lexical successor tree
//	structured     the Figure 12 algorithm (structured programs only)
//	conservative   the Figure 13 algorithm (structured programs only)
//	ball-horwitz   the augmented-PDG baseline of Ball & Horwitz
//	lyle           Lyle's conservative rule
//	gallagher      Gallagher's rule
//	jzr            the Jiang–Zhou–Robson rules (reconstruction)
//	dynamic        dynamic slice of the run on -input (extension)
//
// A separate mode, -flatten, prints the Choi–Ferrante-style executable
// slice: a flat program with synthesized gotos instead of the original
// jump statements (Section 5's second algorithm).
//
// Output modes:
//
//	default        the materialized slice, with original line numbers
//	-lines         just the slice's statement line numbers
//	-graph KIND    a Graphviz DOT rendering (cfg, pdt, lst, cdg, ddg,
//	               pdg) with the slice's nodes highlighted
//	-stats         traversal counts, jumps added, retargeted labels
//	-explain       each slice line annotated with its provenance
//	               records: criterion, data-dep from N, control-dep
//	               from N, jump-rule(nearest-PD=P, nearest-LS=L), ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sort"
	"strconv"

	"jumpslice/internal/baselines"
	"jumpslice/internal/core"
	"jumpslice/internal/dynslice"
	"jumpslice/internal/lang"
	"jumpslice/internal/restructure"
	"jumpslice/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slicer:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slicer", flag.ContinueOnError)
	varName := fs.String("var", "", "criterion variable (required)")
	line := fs.Int("line", 0, "criterion line (required)")
	algo := fs.String("algo", "agrawal", "slicing algorithm")
	lines := fs.Bool("lines", false, "print only the slice's line numbers")
	graph := fs.String("graph", "", "emit a DOT graph instead: cfg|pdt|lst|cdg|ddg|pdg")
	stats := fs.Bool("stats", false, "print traversal and jump statistics")
	explain := fs.Bool("explain", false, "annotate each slice line with its provenance records")
	input := fs.String("input", "", "comma-separated input stream for -algo dynamic, e.g. \"3,-1,4\"")
	flatten := fs.Bool("flatten", false, "print the Choi–Ferrante executable slice (flat, synthesized gotos)")
	restructureFlag := fs.Bool("restructure", false, "print the program restructured into goto-free pc-loop form (no slicing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *varName == "" || *line <= 0 {
		return fmt.Errorf("both -var and -line are required")
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		return fmt.Errorf("at most one input file")
	}
	if err != nil {
		return err
	}

	prog, err := lang.Parse(string(src))
	if err != nil {
		return err
	}
	c := core.Criterion{Var: *varName, Line: *line}

	// The SDG algorithm has its own analysis entry point (and is the
	// only algorithm accepting programs with procedure declarations).
	if *algo == "sdg" {
		if *graph != "" || *flatten || *restructureFlag {
			return fmt.Errorf("-graph, -flatten and -restructure are not supported with -algo sdg")
		}
		return runSDG(out, prog, c, *lines, *stats, *explain)
	}

	a, err := core.Analyze(prog)
	if err != nil {
		return err
	}

	if *restructureFlag {
		flat, err := restructure.Program(prog)
		if err != nil {
			return err
		}
		fmt.Fprint(out, lang.Format(flat, lang.PrintOptions{}))
		return nil
	}

	if *flatten {
		ex, err := baselines.ChoiFerranteExecutable(a, c)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "// executable slice (Choi–Ferrante style) w.r.t. %s; %d synthesized jumps\n",
			c, ex.SynthesizedJumps)
		fmt.Fprint(out, lang.Format(ex.Prog, lang.PrintOptions{}))
		return nil
	}

	s, err := runAlgo(a, c, *algo, *input)
	if err != nil {
		return err
	}

	if *graph != "" {
		opts := viz.Options{
			Title:     fmt.Sprintf("%s slice for %s", s.Algorithm, c),
			Highlight: viz.SliceHighlight(s),
		}
		var dot string
		switch *graph {
		case "cfg":
			dot = viz.CFG(a.CFG, opts)
		case "pdt":
			dot = viz.Tree(a.CFG, a.PDT, opts)
		case "lst":
			dot = viz.LST(a.CFG, a.LST, opts)
		case "cdg":
			dot = viz.CDGGraph(a, opts)
		case "ddg":
			dot = viz.DDGGraph(a, opts)
		case "pdg":
			dot = viz.PDGGraph(a, opts)
		default:
			return fmt.Errorf("unknown graph kind %q", *graph)
		}
		fmt.Fprint(out, dot)
		return nil
	}

	if *lines {
		var parts []string
		for _, l := range s.Lines() {
			parts = append(parts, fmt.Sprintf("%d", l))
		}
		fmt.Fprintln(out, strings.Join(parts, " "))
		return nil
	}

	if *explain {
		p, err := s.Explain()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "// %s slice with respect to %s, annotated with provenance\n", s.Algorithm, c)
		fmt.Fprint(out, p.Listing())
		if *stats {
			printStats(out, s)
		}
		return nil
	}

	fmt.Fprintf(out, "// %s slice with respect to %s\n", s.Algorithm, c)
	fmt.Fprint(out, s.Format())
	if *stats {
		printStats(out, s)
	}
	return nil
}

// runSDG computes and prints the interprocedural (HRB two-pass) slice.
func runSDG(out io.Writer, prog *lang.Program, c core.Criterion, lines, stats, explain bool) error {
	ps, err := core.AnalyzeProgramSet(prog)
	if err != nil {
		return err
	}
	s, err := ps.SliceInterproc(c)
	if err != nil {
		return err
	}
	if lines {
		var parts []string
		for _, l := range s.Lines() {
			parts = append(parts, fmt.Sprintf("%d", l))
		}
		fmt.Fprintln(out, strings.Join(parts, " "))
		return nil
	}
	fmt.Fprintf(out, "// sdg slice with respect to %s\n", c)
	fmt.Fprint(out, s.Format())
	if explain {
		reasons := s.EdgeReasons()
		var rlines []int
		for l := range reasons {
			rlines = append(rlines, l)
		}
		sort.Ints(rlines)
		fmt.Fprintf(out, "\n// interprocedural edges into each line:\n")
		for _, l := range rlines {
			for _, r := range reasons[l] {
				fmt.Fprintf(out, "// line %d: %s\n", l, r)
			}
		}
	}
	if stats {
		st := ps.SDG.Stats()
		fmt.Fprintf(out, "\n// traversals: %d\n", s.Traversals)
		fmt.Fprintf(out, "// jumps added beyond conventional: %d\n", s.JumpsAdded)
		fmt.Fprintf(out, "// sdg: %d procs, %d vertices, %d summary edges (%d worklist rounds)\n",
			st.Procs, st.Verts, st.SummaryEdges, st.SummaryRounds)
	}
	return nil
}

// printStats prints the -stats trailer.
func printStats(out io.Writer, s *core.Slice) {
	fmt.Fprintf(out, "\n// traversals: %d\n", s.Traversals)
	fmt.Fprintf(out, "// jumps added beyond conventional: %d\n", len(s.JumpsAdded))
	for label, l := range s.RelabeledLines() {
		if l == 0 {
			fmt.Fprintf(out, "// label %s re-attached past the last statement\n", label)
		} else {
			fmt.Fprintf(out, "// label %s re-attached to line %d\n", label, l)
		}
	}
}

// runAlgo dispatches the algorithm by name.
func runAlgo(a *core.Analysis, c core.Criterion, algo, input string) (*core.Slice, error) {
	switch algo {
	case "dynamic":
		in, err := parseInput(input)
		if err != nil {
			return nil, err
		}
		return dynslice.Slice(a, c, dynslice.Options{Input: in})
	case "conventional":
		return a.Conventional(c)
	case "agrawal":
		return a.Agrawal(c)
	case "agrawal-lst":
		return a.AgrawalLST(c)
	case "structured":
		return a.AgrawalStructured(c)
	case "conservative":
		return a.AgrawalConservative(c)
	case "weiser":
		return baselines.Weiser(a, c)
	case "ball-horwitz":
		return baselines.BallHorwitz(a, c)
	case "lyle":
		return baselines.Lyle(a, c)
	case "gallagher":
		return baselines.Gallagher(a, c)
	case "jzr":
		return baselines.JiangZhouRobson(a, c)
	}
	return nil, fmt.Errorf("unknown algorithm %q", algo)
}

// parseInput parses "3,-1,4" into an input stream; empty means no
// input.
func parseInput(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -input element %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
