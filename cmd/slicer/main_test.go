package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumpslice/internal/paper"
)

// writeFig writes a corpus figure to a temp file and returns its path.
func writeFig(t *testing.T, f *paper.Figure) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(f.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestSliceLinesFigure3(t *testing.T) {
	path := writeFig(t, paper.Fig3())
	out, err := runCLI(t, "-var", "positives", "-line", "15", "-lines", path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out); got != "2 3 4 5 7 8 13 15" {
		t.Errorf("lines = %q, want \"2 3 4 5 7 8 13 15\"", got)
	}
}

func TestDefaultOutputIsRunnableSlice(t *testing.T) {
	path := writeFig(t, paper.Fig5())
	out, err := runCLI(t, "-var", "positives", "-line", "14", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"continue;", "positives = positives + 1;", "write(positives);"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "sum") {
		t.Errorf("slice should not mention sum:\n%s", out)
	}
}

func TestAlgorithmSelection(t *testing.T) {
	path := writeFig(t, paper.Fig14())
	conservative, err := runCLI(t, "-var", "y", "-line", "9", "-algo", "conservative", "-lines", path)
	if err != nil {
		t.Fatal(err)
	}
	precise, err := runCLI(t, "-var", "y", "-line", "9", "-algo", "structured", "-lines", path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(precise) != "1 3 4 9" {
		t.Errorf("structured lines = %q", precise)
	}
	if strings.TrimSpace(conservative) != "1 3 4 5 7 9" {
		t.Errorf("conservative lines = %q", conservative)
	}
}

func TestAllAlgorithmsRun(t *testing.T) {
	path := writeFig(t, paper.Fig16())
	for _, algo := range []string{"conventional", "weiser", "agrawal", "agrawal-lst",
		"structured", "conservative", "ball-horwitz", "lyle", "gallagher", "jzr"} {
		if _, err := runCLI(t, "-var", "y", "-line", "10", "-algo", algo, "-lines", path); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestGraphOutput(t *testing.T) {
	path := writeFig(t, paper.Fig3())
	for _, kind := range []string{"cfg", "pdt", "lst", "cdg", "ddg", "pdg"} {
		out, err := runCLI(t, "-var", "positives", "-line", "15", "-graph", kind, path)
		if err != nil {
			t.Fatalf("graph %s: %v", kind, err)
		}
		if !strings.HasPrefix(out, "digraph") {
			t.Errorf("graph %s: not DOT output", kind)
		}
	}
}

func TestStatsOutput(t *testing.T) {
	path := writeFig(t, paper.Fig10())
	out, err := runCLI(t, "-var", "y", "-line", "9", "-stats", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traversals: 3", "jumps added beyond conventional: 3",
		"label L6 re-attached to line 7", "label L8 re-attached to line 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	path := writeFig(t, paper.Fig1())
	cases := [][]string{
		{path},                             // missing criterion
		{"-var", "x", "-line", "99", path}, // bad line
		{"-var", "x", "-line", "4", "-algo", "nope", path},  // bad algo
		{"-var", "x", "-line", "4", "-graph", "nope", path}, // bad graph
		{"-var", "x", "-line", "4", path, "extra"},          // too many files
		{"-var", "x", "-line", "4", "/does/not/exist"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestStructuredAlgoRejectsUnstructured(t *testing.T) {
	path := writeFig(t, paper.Fig3())
	if _, err := runCLI(t, "-var", "positives", "-line", "15", "-algo", "structured", path); err == nil {
		t.Error("structured algorithm should reject Figure 3-a")
	}
}

func TestDynamicAlgo(t *testing.T) {
	path := writeFig(t, paper.Fig5())
	out, err := runCLI(t, "-var", "positives", "-line", "14",
		"-algo", "dynamic", "-input", "-1,-2", "-lines", path)
	if err != nil {
		t.Fatal(err)
	}
	static, err := runCLI(t, "-var", "positives", "-line", "14", "-lines", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(out)) >= len(strings.Fields(static)) {
		t.Errorf("dynamic slice %q should be smaller than static %q on one-sided input", out, static)
	}
	if _, err := runCLI(t, "-var", "positives", "-line", "14",
		"-algo", "dynamic", "-input", "1,bogus", path); err == nil {
		t.Error("expected error for malformed -input")
	}
}

func TestFlattenMode(t *testing.T) {
	path := writeFig(t, paper.Fig3())
	out, err := runCLI(t, "-var", "positives", "-line", "15", "-flatten", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "executable slice") || !strings.Contains(out, "CF") {
		t.Errorf("flatten output malformed:\n%s", out)
	}
	if strings.Contains(out, "goto L13") {
		t.Errorf("flatten output kept an original jump:\n%s", out)
	}
}
