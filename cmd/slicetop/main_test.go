package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter is a race-free frame sink for the live-mode test.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Len()
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

const stubMetrics = `# TYPE jumpslice_core_slices_total counter
jumpslice_core_slices_total 42
# TYPE jumpslice_cache_hits_total counter
jumpslice_cache_hits_total 30
# TYPE jumpslice_cache_misses_total counter
jumpslice_cache_misses_total 10
# TYPE jumpslice_cache_coalesced_total counter
jumpslice_cache_coalesced_total 10
# TYPE jumpslice_cache_resident_bytes gauge
jumpslice_cache_resident_bytes 1048576
# TYPE jumpslice_cache_entries gauge
jumpslice_cache_entries 3
# TYPE jumpslice_http_incr_patched_total counter
jumpslice_http_incr_patched_total 8
# TYPE jumpslice_http_incr_full_total counter
jumpslice_http_incr_full_total 2
# TYPE jumpslice_runtime_goroutines gauge
jumpslice_runtime_goroutines 12
# TYPE jumpslice_runtime_gomaxprocs gauge
jumpslice_runtime_gomaxprocs 8
# TYPE jumpslice_runtime_heap_alloc_bytes gauge
jumpslice_runtime_heap_alloc_bytes 2097152
# TYPE jumpslice_runtime_gc_pause_ns histogram
jumpslice_runtime_gc_pause_ns_bucket{le="+Inf"} 4
jumpslice_runtime_gc_pause_ns_sum 400000
jumpslice_runtime_gc_pause_ns_count 4
# TYPE jumpslice_spool_enqueued_total counter
jumpslice_spool_enqueued_total 55
# TYPE jumpslice_spool_written_total counter
jumpslice_spool_written_total 54
# TYPE jumpslice_spool_dropped_total counter
jumpslice_spool_dropped_total 1
# TYPE jumpslice_spool_segments gauge
jumpslice_spool_segments 3
# TYPE jumpslice_spool_resident_bytes gauge
jumpslice_spool_resident_bytes 5242880
# TYPE jumpslice_http_requests_total counter
jumpslice_http_requests_total{endpoint="/slice"} 40
jumpslice_http_requests_total{endpoint="/metrics"} 2
# TYPE jumpslice_cluster_peers gauge
jumpslice_cluster_peers 2
# TYPE jumpslice_cluster_peers_up gauge
jumpslice_cluster_peers_up 1
# TYPE jumpslice_cluster_local_serves_total counter
jumpslice_cluster_local_serves_total 25
# TYPE jumpslice_cluster_proxied_total counter
jumpslice_cluster_proxied_total 10
# TYPE jumpslice_cluster_fill_serves_total counter
jumpslice_cluster_fill_serves_total 5
# TYPE jumpslice_cluster_fills_total counter
jumpslice_cluster_fills_total 8
# TYPE jumpslice_cluster_fill_hits_total counter
jumpslice_cluster_fill_hits_total 5
# TYPE jumpslice_cluster_fill_corrupt_total counter
jumpslice_cluster_fill_corrupt_total 1
# TYPE jumpslice_result_puts_total counter
jumpslice_result_puts_total 12
# TYPE jumpslice_result_resident_bytes gauge
jumpslice_result_resident_bytes 2048
# TYPE jumpslice_result_entries gauge
jumpslice_result_entries 4
# TYPE jumpslice_disk_segments gauge
jumpslice_disk_segments 2
# TYPE jumpslice_disk_entries gauge
jumpslice_disk_entries 9
# TYPE jumpslice_disk_resident_bytes gauge
jumpslice_disk_resident_bytes 4096
# TYPE jumpslice_disk_hits_total counter
jumpslice_disk_hits_total 3
`

const stubSLO = `{
  "window_ns": 60000000000, "bucket_ns": 6000000000, "buckets": 10,
  "objectives": {"quantile": 0.99, "latency_ns": 50000000, "err_rate": 0.01},
  "endpoints": [{
    "endpoint": "/slice", "requests": 40, "errors": 1, "sheds": 2,
    "error_rate": 0.025, "shed_rate": 0.05,
    "p50_ns": 2000000, "p90_ns": 9000000, "p99_ns": 80000000,
    "slow_over_objective": 1, "error_burn": 2.5, "latency_burn": 2.5,
    "total_requests": 40, "total_errors": 1, "total_sheds": 2,
    "exemplars": [{"bucket_start_ns": 1, "request": 17, "dur_ns": 80000000}]
  }]
}`

func stubServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(stubMetrics))
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(stubSLO))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestOnceSnapshot(t *testing.T) {
	ts := stubServer(t)
	u, _ := url.Parse(ts.URL)

	var out strings.Builder
	if err := run(context.Background(), []string{"-once", "-addr", u.Host}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"SLO window 1m0s",
		"objectives p99<50ms, err<1%",
		"/slice",                         // the endpoint row
		"80.0ms",                         // its p99
		"2.5x",                           // burn rates
		"req=17",                         // the exemplar deep link
		"cache: 80.0% reuse",             // (30+10)/(30+10+10)
		"1.0MiB resident",                // byte formatting
		"8 patched / 0 partial / 2 full", // incremental mix
		"12 goroutines on 8 procs",
		"avg pause 100µs", // 400000/4 ns
		"spool: 3 segments, 5.0MiB resident, 54 written, 1 dropped",
		"cluster: 1/2 peers up, 25 local / 10 proxied / 5 peer-filled, fills 62.5% hit, 1 CORRUPT",
		"results: 2.0KiB in 4 entries memory, disk 4.0KiB in 9 entries over 2 segments (3 warm hits)",
		"slices: 42 total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot missing %q:\n%s", want, got)
		}
	}
	// -once must not emit terminal control sequences.
	if strings.Contains(got, "\x1b[") {
		t.Error("-once output contains ANSI escapes")
	}
}

func TestOnceFailsOnDeadDaemon(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-once", "-addr", "127.0.0.1:1"}, &out)
	if err == nil {
		t.Fatal("want an error against a dead daemon")
	}
}

func TestLiveModeStopsOnContextCancel(t *testing.T) {
	ts := stubServer(t)
	u, _ := url.Parse(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var out syncWriter
	go func() {
		done <- run(ctx, []string{"-addr", u.Host, "-interval", "10ms"}, &out)
	}()
	// Let it draw a few frames, then stop it.
	deadline := time.Now().Add(5 * time.Second)
	for out.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no frames drawn")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live mode did not stop on cancel")
	}
	if !strings.Contains(out.String(), "\x1b[H\x1b[2J") {
		t.Error("live mode should clear the screen between frames")
	}
}

func TestParseProm(t *testing.T) {
	m, err := parseProm(strings.NewReader(stubMetrics))
	if err != nil {
		t.Fatal(err)
	}
	if m["jumpslice_core_slices_total"] != 42 {
		t.Errorf("bare series: %v", m["jumpslice_core_slices_total"])
	}
	if m[`jumpslice_http_requests_total{endpoint="/slice"}`] != 40 {
		t.Error("labeled series must key by full name")
	}
	s := &sample{metrics: m}
	if got := s.get("jumpslice_http_requests_total"); got != 42 {
		t.Errorf("labeled sum = %v, want 42", got)
	}
	if got := s.get("jumpslice_nope"); got != 0 {
		t.Errorf("missing series = %v, want 0", got)
	}
}

func TestShortDur(t *testing.T) {
	for ns, want := range map[int64]string{
		0:          "0",
		500:        "500ns",
		2600:       "3µs",
		1500000:    "1.5ms",
		2000000000: "2.00s",
	} {
		if got := shortDur(ns); got != want {
			t.Errorf("shortDur(%d) = %q, want %q", ns, got, want)
		}
	}
}
