// Command slicetop is a live terminal dashboard for a running sliced
// daemon: top(1) for the slicing plane. It polls GET /metrics and
// GET /debug/slo and renders throughput, latency percentiles, error
// and shed rates, burn rates against the daemon's SLO objectives,
// cache effectiveness, the incremental reuse tier mix, runtime
// health, and the durable telemetry spool's disk residency and drop
// count — everything an operator watches during a rollout, in one
// screen, with no dependencies beyond a terminal.
//
// Usage:
//
//	slicetop [-addr 127.0.0.1:8080] [-interval 2s] [-once]
//
// -once prints a single snapshot and exits (for scripts and CI smoke
// tests); otherwise the screen redraws every -interval until
// interrupted. Each poll is independent, so slicetop can outlive
// daemon restarts: a failed poll renders the error and keeps going.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"jumpslice/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slicetop:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slicetop", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "sliced address (host:port)")
	interval := fs.Duration("interval", 2*time.Second, "poll and redraw interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	cur, err := collect(client, base)
	if *once {
		if err != nil {
			return err
		}
		return render(out, cur, nil, base)
	}

	var prev *sample
	for {
		if err != nil {
			fmt.Fprintf(out, "\x1b[H\x1b[2Jslicetop: %s: %v (retrying every %s)\n", base, err, *interval)
		} else {
			fmt.Fprint(out, "\x1b[H\x1b[2J")
			render(out, cur, prev, base)
			prev = cur
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
		cur, err = collect(client, base)
	}
}

// sample is one poll of the daemon: the flat metric series and the
// structured SLO view, stamped with the local receive time so
// successive samples yield live rates.
type sample struct {
	at      time.Time
	metrics map[string]float64
	slo     *obs.SLOSnapshot
}

func collect(client *http.Client, base string) (*sample, error) {
	s := &sample{at: time.Now()}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	s.metrics, err = parseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("parsing /metrics: %w", err)
	}
	resp, err = client.Get(base + "/debug/slo")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/slo: status %d", resp.StatusCode)
	}
	s.slo = &obs.SLOSnapshot{}
	if err := json.NewDecoder(resp.Body).Decode(s.slo); err != nil {
		return nil, fmt.Errorf("decoding /debug/slo: %w", err)
	}
	return s, nil
}

// parseProm reads the Prometheus text exposition format into a flat
// map keyed by the full series name, labels included — exactly the
// bytes before the last space on each sample line. slicetop needs
// lookups, not a data model, so labels stay opaque.
func parseProm(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue // a timestamped or exotic line; not ours
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// get sums every series whose name (before any label block) matches.
func (s *sample) get(name string) float64 {
	if v, ok := s.metrics[name]; ok {
		return v
	}
	var sum float64
	for k, v := range s.metrics {
		if strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

func render(w io.Writer, cur, prev *sample, base string) error {
	fmt.Fprintf(w, "slicetop — %s — %s\n", base, cur.at.Format("15:04:05"))

	// Endpoint table: the SLO window view.
	window := time.Duration(cur.slo.WindowNS)
	obj := describeObjectives(cur.slo.Objectives)
	fmt.Fprintf(w, "\nSLO window %s%s\n", window, obj)
	fmt.Fprintf(w, "%-16s %9s %7s %7s %9s %9s %9s %6s %6s\n",
		"ENDPOINT", "REQS", "REQ/S", "ERR%", "P50", "P90", "P99", "EBURN", "LBURN")
	for _, e := range cur.slo.Endpoints {
		rate := 0.0
		if window > 0 {
			rate = float64(e.Requests) / window.Seconds()
		}
		fmt.Fprintf(w, "%-16s %9d %7.2f %6.2f%% %9s %9s %9s %6s %6s\n",
			e.Endpoint, e.Requests, rate, 100*e.ErrorRate,
			shortDur(e.P50NS), shortDur(e.P90NS), shortDur(e.P99NS),
			burn(e.ErrorBurn, cur.slo.Objectives.ErrRate > 0),
			burn(e.LatencyBurn, cur.slo.Objectives.Latency > 0))
	}
	if len(cur.slo.Endpoints) == 0 {
		fmt.Fprintln(w, "(no traffic in window)")
	}

	// Live rate between polls, from the cumulative counters.
	if prev != nil {
		dt := cur.at.Sub(prev.at).Seconds()
		if dt > 0 {
			d := cur.get("jumpslice_http_requests_total") - prev.get("jumpslice_http_requests_total")
			fmt.Fprintf(w, "\nlive: %.1f req/s over the last %.1fs\n", d/dt, dt)
		}
	}

	// Slowest in-window requests: the exemplars, deep-linked.
	type slowest struct {
		endpoint string
		ex       obs.Exemplar
	}
	var slow []slowest
	for _, e := range cur.slo.Endpoints {
		for _, ex := range e.Exemplars {
			slow = append(slow, slowest{e.Endpoint, ex})
		}
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].ex.DurNS > slow[j].ex.DurNS })
	if len(slow) > 3 {
		slow = slow[:3]
	}
	if len(slow) > 0 {
		fmt.Fprintln(w, "\nslowest (→ /debug/trace?id=)")
		for _, s := range slow {
			fmt.Fprintf(w, "  %-16s req=%d %s\n", s.endpoint, s.ex.Request, shortDur(s.ex.DurNS))
		}
	}

	// Cache effectiveness.
	hits := cur.get("jumpslice_cache_hits_total")
	misses := cur.get("jumpslice_cache_misses_total")
	coalesced := cur.get("jumpslice_cache_coalesced_total")
	if total := hits + misses + coalesced; total > 0 {
		fmt.Fprintf(w, "\ncache: %.1f%% reuse (%d hit, %d coalesced, %d miss), %s resident in %d entries\n",
			100*(hits+coalesced)/total, int64(hits), int64(coalesced), int64(misses),
			humanBytes(cur.get("jumpslice_cache_resident_bytes")), int64(cur.get("jumpslice_cache_entries")))
	}

	// Incremental reuse tier mix.
	patched := cur.get("jumpslice_http_incr_patched_total")
	partial := cur.get("jumpslice_http_incr_partial_total")
	full := cur.get("jumpslice_http_incr_full_total")
	if total := patched + partial + full; total > 0 {
		fmt.Fprintf(w, "incremental: %d patched / %d partial / %d full (%.1f%% reused)\n",
			int64(patched), int64(partial), int64(full), 100*(patched+partial)/total)
	}

	// Runtime health (present when the daemon's sampler is on).
	if g := cur.get("jumpslice_runtime_goroutines"); g > 0 {
		fmt.Fprintf(w, "\nruntime: %d goroutines on %d procs, heap %s (next GC %s), %d GC cycles",
			int64(g), int64(cur.get("jumpslice_runtime_gomaxprocs")),
			humanBytes(cur.get("jumpslice_runtime_heap_alloc_bytes")),
			humanBytes(cur.get("jumpslice_runtime_next_gc_bytes")),
			int64(cur.get("jumpslice_runtime_gc_cycles")))
		if n := cur.get("jumpslice_runtime_gc_pause_ns_count"); n > 0 {
			fmt.Fprintf(w, ", avg pause %s",
				shortDur(int64(cur.get("jumpslice_runtime_gc_pause_ns_sum")/n)))
		}
		fmt.Fprintln(w)
	}

	// Spool health (present when the daemon runs with -spool-dir).
	if enq := cur.get("jumpslice_spool_enqueued_total"); enq > 0 {
		fmt.Fprintf(w, "spool: %d segments, %s resident, %d written, %d dropped\n",
			int64(cur.get("jumpslice_spool_segments")),
			humanBytes(cur.get("jumpslice_spool_resident_bytes")),
			int64(cur.get("jumpslice_spool_written_total")),
			int64(cur.get("jumpslice_spool_dropped_total")))
	}

	// Cluster health (present when the daemon runs with -peers).
	if peers := cur.get("jumpslice_cluster_peers"); peers > 0 {
		fills := cur.get("jumpslice_cluster_fills_total")
		fillHits := cur.get("jumpslice_cluster_fill_hits_total")
		fmt.Fprintf(w, "cluster: %d/%d peers up, %d local / %d proxied / %d peer-filled",
			int64(cur.get("jumpslice_cluster_peers_up")), int64(peers),
			int64(cur.get("jumpslice_cluster_local_serves_total")),
			int64(cur.get("jumpslice_cluster_proxied_total")),
			int64(cur.get("jumpslice_cluster_fill_serves_total")))
		if fills > 0 {
			fmt.Fprintf(w, ", fills %.1f%% hit", 100*fillHits/fills)
		}
		if corrupt := cur.get("jumpslice_cluster_fill_corrupt_total"); corrupt > 0 {
			fmt.Fprintf(w, ", %d CORRUPT", int64(corrupt))
		}
		fmt.Fprintln(w)
	}

	// Result/disk tiers (present with -peers or -disk-dir).
	if puts := cur.get("jumpslice_result_puts_total"); puts > 0 || cur.get("jumpslice_disk_entries") > 0 {
		fmt.Fprintf(w, "results: %s in %d entries memory",
			humanBytes(cur.get("jumpslice_result_resident_bytes")),
			int64(cur.get("jumpslice_result_entries")))
		if segs := cur.get("jumpslice_disk_segments"); segs > 0 {
			fmt.Fprintf(w, ", disk %s in %d entries over %d segments (%d warm hits)",
				humanBytes(cur.get("jumpslice_disk_resident_bytes")),
				int64(cur.get("jumpslice_disk_entries")), int64(segs),
				int64(cur.get("jumpslice_disk_hits_total")))
		}
		fmt.Fprintln(w)
	}

	// Pipeline totals.
	fmt.Fprintf(w, "\nslices: %d total, %d requests shed\n",
		int64(cur.get("jumpslice_core_slices_total")),
		int64(cur.get("jumpslice_http_shed_total")))
	return nil
}

func describeObjectives(o obs.SLOObjectives) string {
	var parts []string
	if o.Latency > 0 {
		parts = append(parts, fmt.Sprintf("p%d<%s", int(math.Round(o.Quantile*100)), o.Latency))
	}
	if o.ErrRate > 0 {
		parts = append(parts, fmt.Sprintf("err<%.2g%%", 100*o.ErrRate))
	}
	if len(parts) == 0 {
		return " (no objectives; start sliced with -slo)"
	}
	return " — objectives " + strings.Join(parts, ", ")
}

// burn renders a budget-consumption multiplier, or "-" when the
// matching objective is unset.
func burn(v float64, set bool) string {
	if !set {
		return "-"
	}
	return fmt.Sprintf("%.1fx", v)
}

// shortDur renders nanoseconds at millisecond-scale precision.
func shortDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

func humanBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	}
	return fmt.Sprintf("%dB", int64(v))
}
