package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon fakes enough of sliced's surface for the generator:
// /slice answers instantly with the cluster headers, /session does
// the open/patch/delete dance, and every Nth request sheds with 503.
func stubDaemon(t *testing.T, node string, shedEvery int64) *httptest.Server {
	t.Helper()
	var reqs, sess atomic.Int64
	mux := http.NewServeMux()
	headers := func(w http.ResponseWriter) {
		w.Header().Set("X-Sliced-Node", node)
		w.Header().Set("X-Sliced-Route", "local")
		w.Header().Set("X-Cache", "miss")
	}
	shed := func(w http.ResponseWriter) bool {
		if shedEvery > 0 && reqs.Add(1)%shedEvery == 0 {
			http.Error(w, `{"error":{"code":"overloaded"}}`, http.StatusServiceUnavailable)
			return true
		}
		return false
	}
	mux.HandleFunc("/slice", func(w http.ResponseWriter, r *http.Request) {
		if shed(w) {
			return
		}
		headers(w)
		w.Write([]byte(`{"algorithm":"agrawal","lines":[1]}`))
	})
	mux.HandleFunc("/session", func(w http.ResponseWriter, r *http.Request) {
		if shed(w) {
			return
		}
		headers(w)
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(map[string]any{"session": sess.Add(1)})
	})
	mux.HandleFunc("/session/", func(w http.ResponseWriter, r *http.Request) {
		if shed(w) {
			return
		}
		headers(w)
		w.Write([]byte(`{"lines":[1]}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func addrOf(ts *httptest.Server) string { return strings.TrimPrefix(ts.URL, "http://") }

func TestRunMixedWorkloadReport(t *testing.T) {
	a := stubDaemon(t, "node-a", 0)
	b := stubDaemon(t, "node-b", 0)
	jsonPath := filepath.Join(t.TempDir(), "load.json")
	var out strings.Builder
	err := run(context.Background(), []string{
		"-targets", addrOf(a) + "," + addrOf(b),
		"-duration", "0", "-n", "200", "-clients", "8",
		"-corpus", "10", "-stmts", "12",
		"-mix", "slice=50,explain=20,session=20,sdg=10",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Ops != 200 {
		t.Fatalf("ops = %d, want exactly the -n budget 200", r.Ops)
	}
	if r.Requests < r.Ops {
		t.Fatalf("requests %d < ops %d (sessions are three exchanges)", r.Requests, r.Ops)
	}
	if r.Errors != 0 || r.Shed != 0 {
		t.Fatalf("errors %d shed %d against an always-200 stub", r.Errors, r.Shed)
	}
	if r.Latency.Samples != r.Requests {
		t.Fatalf("latency covers %d of %d successful requests", r.Latency.Samples, r.Requests)
	}
	if r.Latency.P50NS <= 0 || r.Latency.P99NS < r.Latency.P50NS || r.Latency.MaxNS < r.Latency.P999NS {
		t.Fatalf("implausible percentiles: %+v", r.Latency)
	}
	for _, op := range []string{"slice", "explain", "session", "sdg"} {
		if r.OpCounts[op] == 0 {
			t.Fatalf("mix op %q never ran: %v", op, r.OpCounts)
		}
	}
	if r.Nodes["node-a"] == 0 || r.Nodes["node-b"] == 0 {
		t.Fatalf("per-node distribution missed a target: %v", r.Nodes)
	}
	if r.Routes["local"] != r.Requests || r.Cache["miss"] != r.Requests {
		t.Fatalf("route/cache attribution: %v %v over %d requests", r.Routes, r.Cache, r.Requests)
	}
	text := out.String()
	for _, want := range []string{"p50", "p999", "shed 0", "node-a", "routes"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text report missing %q:\n%s", want, text)
		}
	}
}

func TestRunCountsShedResponses(t *testing.T) {
	ts := stubDaemon(t, "node-a", 4) // every 4th request sheds
	var out strings.Builder
	err := run(context.Background(), []string{
		"-targets", addrOf(ts),
		"-duration", "0", "-n", "100", "-clients", "4",
		"-corpus", "5", "-stmts", "10", "-mix", "slice=1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	// The report is printed; re-run with -json to inspect. Simpler: a
	// second run writing JSON.
	jsonPath := filepath.Join(t.TempDir(), "load.json")
	if err := run(context.Background(), []string{
		"-targets", addrOf(ts),
		"-duration", "0", "-n", "100", "-clients", "4",
		"-corpus", "5", "-stmts", "10", "-mix", "slice=1",
		"-json", jsonPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(jsonPath)
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Shed == 0 {
		t.Fatal("shed responses not counted")
	}
	wantRate := float64(r.Shed) / float64(r.Requests)
	if r.ShedRate != wantRate {
		t.Fatalf("shed rate %v, want %v", r.ShedRate, wantRate)
	}
	if r.Latency.Samples != r.Requests-r.Shed {
		t.Fatalf("sheds leaked into the latency set: %d samples, %d requests, %d shed",
			r.Latency.Samples, r.Requests, r.Shed)
	}
}

func TestRunStopsAtDuration(t *testing.T) {
	ts := stubDaemon(t, "node-a", 0)
	var out strings.Builder
	start := time.Now()
	err := run(context.Background(), []string{
		"-targets", addrOf(ts),
		"-duration", "150ms", "-clients", "2",
		"-corpus", "3", "-stmts", "10", "-mix", "slice=1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("a 150ms run took %s", elapsed)
	}
	if !strings.Contains(out.String(), "requests") {
		t.Fatalf("no report printed:\n%s", out.String())
	}
}

func TestPercentilesExact(t *testing.T) {
	// 1..1000 ns: nearest-rank percentiles are exact by construction.
	ns := make([]int64, 1000)
	for i := range ns {
		ns[i] = int64(1000 - i) // reverse order: percentiles must sort
	}
	p := percentiles(ns)
	if p.P50NS != 500 || p.P95NS != 950 || p.P99NS != 990 || p.P999NS != 999 || p.MaxNS != 1000 {
		t.Fatalf("percentiles over 1..1000 = %+v", p)
	}
	if got := percentiles(nil); got != (Percentiles{}) {
		t.Fatalf("empty input: %+v", got)
	}
	if got := percentiles([]int64{7}); got.P50NS != 7 || got.P999NS != 7 || got.MaxNS != 7 {
		t.Fatalf("single sample: %+v", got)
	}
}

func TestParseMixRejectsBadEntries(t *testing.T) {
	for _, bad := range []string{"", "slice", "slice=0", "slice=-1", "bogus=10", "slice=1,slice=2", "slice=x"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
	mix, err := parseMix("slice=3, sdg=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].op != "slice" || mix[0].weight != 3 {
		t.Fatalf("parseMix: %+v", mix)
	}
}

func TestZipfSkewsTowardCorpusHead(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.2, 1, 49)
	counts := make([]int, 50)
	for i := 0; i < 10000; i++ {
		counts[int(z.Uint64())]++
	}
	if counts[0] < counts[49]*4 {
		t.Fatalf("head %d vs tail %d: not skewed", counts[0], counts[49])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{"-duration", "0", "-n", "0"},
		{"-clients", "0"},
		{"-targets", " , "},
		{"-mix", "bogus=1"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Fatalf("run(%v) accepted", args)
		}
	}
}
