// Command sliceload is the cluster load generator: it drives a fleet
// of sliced daemons with a mixed, zipf-skewed workload and reports
// tail latency the way an SLO review wants it — exact percentiles
// over every recorded sample, not histogram-bucket interpolation.
//
//	sliceload -targets host1:7070,host2:7070,host3:7070 \
//	    -duration 30s -clients 64 -mix slice=60,explain=15,session=15,sdg=10
//
// The corpus is -corpus generated programs (plus an interprocedural
// corpus for algo=sdg traffic), identical across runs for a given
// -seed; workers pick programs through a zipf distribution (-zipf)
// so a hot head of the corpus dominates, the way real content-
// addressed traffic does — that skew is what exercises the fleet's
// peer-fill and result tiers. Each program keeps a fixed slicing
// criterion, so repeats are byte-identical requests.
//
// Operations (weighted by -mix):
//
//	slice    POST /slice?var=&line=
//	explain  POST /slice?var=&line=&explain=1
//	sdg      POST /slice?var=&line=&algo=sdg (interprocedural corpus)
//	session  POST /session, PATCH /session/{id} (full-source
//	         replacement re-slice), DELETE /session/{id} — one
//	         operation, three recorded requests
//
// The run stops at -duration or after -n operations, whichever comes
// first. Every HTTP exchange is one sample: latency, status, and the
// responding node's X-Sliced-Node, X-Sliced-Route and X-Cache
// headers. 503 responses count as shed (the daemon's admission gate
// answers 503 "overloaded"), transport failures as errors; both are
// excluded from the latency distribution. The text report prints
// p50/p95/p99/p999/max, the shed rate, and the per-node and per-route
// distributions; -json FILE writes the same report machine-readable,
// the artifact benchgate's -sliceload gate consumes in CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sliceload:", err)
		os.Exit(1)
	}
}

// Percentiles are exact order statistics of the recorded latency
// samples (nearest-rank over the full sorted set).
type Percentiles struct {
	Samples int64 `json:"samples"`
	P50NS   int64 `json:"p50_ns"`
	P95NS   int64 `json:"p95_ns"`
	P99NS   int64 `json:"p99_ns"`
	P999NS  int64 `json:"p999_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// Report is the run's result, shared between the text rendering and
// the -json artifact benchgate gates on.
type Report struct {
	Targets    []string         `json:"targets"`
	Clients    int              `json:"clients"`
	DurationNS int64            `json:"duration_ns"`
	Ops        int64            `json:"ops"`
	Requests   int64            `json:"requests"`
	Errors     int64            `json:"errors"`
	Shed       int64            `json:"shed"`
	ShedRate   float64          `json:"shed_rate"`
	RPS        float64          `json:"rps"`
	Latency    Percentiles      `json:"latency"`
	OpCounts   map[string]int64 `json:"op_counts"`
	Nodes      map[string]int64 `json:"nodes"`
	Routes     map[string]int64 `json:"routes"`
	Cache      map[string]int64 `json:"cache"`
}

// sample is one HTTP exchange as a worker recorded it.
type sample struct {
	ns     int64
	op     string
	node   string
	route  string
	cache  string
	status int
	err    bool
}

// opWeight is one parsed -mix entry.
type opWeight struct {
	op     string
	weight int
}

var knownOps = map[string]bool{"slice": true, "explain": true, "session": true, "sdg": true}

// parseMix parses "slice=60,explain=15,session=15,sdg=10" into
// weights. Unknown operations and non-positive weights are errors —
// a silently dropped mix entry would skew every report after it.
func parseMix(s string) ([]opWeight, error) {
	var out []opWeight
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-mix entry %q: want op=weight", part)
		}
		if !knownOps[op] {
			return nil, fmt.Errorf("-mix entry %q: unknown operation (want slice|explain|session|sdg)", part)
		}
		if seen[op] {
			return nil, fmt.Errorf("-mix entry %q: duplicate operation", part)
		}
		seen[op] = true
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-mix entry %q: want a positive integer weight", part)
		}
		out = append(out, opWeight{op: op, weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix %q selects no operations", s)
	}
	return out, nil
}

// pickOp draws one operation from the weighted mix.
func pickOp(rng *rand.Rand, mix []opWeight, total int) string {
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.op
		}
		n -= m.weight
	}
	return mix[len(mix)-1].op
}

// workItem is one corpus program with its fixed slicing criterion.
type workItem struct {
	source string
	query  string // var=&line= preformatted
}

// buildCorpus generates n structured programs. The criterion is the
// program's final variable write, so every request for program i is
// identical across workers and runs — the repeat traffic the fleet's
// caches are supposed to absorb.
func buildCorpus(n, stmts int, seed int64) ([]workItem, error) {
	out := make([]workItem, n)
	for i := range out {
		p := progen.Structured(progen.Config{Seed: seed + int64(i), Stmts: stmts})
		crits := progen.WriteCriteria(p)
		if len(crits) == 0 {
			return nil, fmt.Errorf("corpus program %d has no write criteria", i)
		}
		c := crits[len(crits)-1]
		out[i] = workItem{
			source: lang.Format(p, lang.PrintOptions{}),
			query:  fmt.Sprintf("var=%s&line=%d", c.Var, c.Line),
		}
	}
	return out, nil
}

// buildSDGCorpus generates n multi-procedure program sets for
// algo=sdg traffic, sliced on a write in main.
func buildSDGCorpus(n, stmts int, seed int64) ([]workItem, error) {
	out := make([]workItem, n)
	for i := range out {
		p := progen.MultiProc(progen.Config{Seed: seed + 1_000_000 + int64(i), Stmts: stmts, Procs: 3})
		crits := progen.MainWriteCriteria(p)
		if len(crits) == 0 {
			return nil, fmt.Errorf("sdg corpus program %d has no main write criteria", i)
		}
		c := crits[len(crits)-1]
		out[i] = workItem{
			source: lang.Format(p, lang.PrintOptions{}),
			query:  fmt.Sprintf("var=%s&line=%d&algo=sdg", c.Var, c.Line),
		}
	}
	return out, nil
}

// worker drives one client loop: draw an operation and a zipf-ranked
// program, issue the exchange(s), and record every sample locally
// (merged after the run — no shared state on the hot path).
type worker struct {
	client  *http.Client
	targets []string
	corpus  []workItem
	sdg     []workItem
	mix     []opWeight
	mixTot  int
	rng     *rand.Rand
	zipf    *rand.Zipf // nil = uniform
	ops     int64
	samples []sample
}

// pickItem maps a zipf draw to a corpus index: rank 0 is the hottest
// program.
func (w *worker) pickItem(corpus []workItem) workItem {
	if w.zipf != nil {
		return corpus[int(w.zipf.Uint64())%len(corpus)]
	}
	return corpus[w.rng.Intn(len(corpus))]
}

func (w *worker) target() string {
	return w.targets[w.rng.Intn(len(w.targets))]
}

// exchange issues one HTTP request and records it as a sample.
// Transport errors record err=true with no status.
func (w *worker) exchange(ctx context.Context, op, method, url, contentType, body string) (int, []byte) {
	req, err := http.NewRequestWithContext(ctx, method, url, strings.NewReader(body))
	if err != nil {
		w.samples = append(w.samples, sample{op: op, err: true})
		return 0, nil
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	start := time.Now()
	resp, err := w.client.Do(req)
	ns := time.Since(start).Nanoseconds()
	if err != nil {
		// Run-cancellation aborts mid-flight exchanges; they are not
		// server failures, so they don't score.
		if ctx.Err() == nil {
			w.samples = append(w.samples, sample{op: op, ns: ns, err: true})
		}
		return 0, nil
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	w.samples = append(w.samples, sample{
		op:     op,
		ns:     ns,
		node:   resp.Header.Get("X-Sliced-Node"),
		route:  resp.Header.Get("X-Sliced-Route"),
		cache:  resp.Header.Get("X-Cache"),
		status: resp.StatusCode,
	})
	return resp.StatusCode, data
}

// runOp performs one operation of the mix.
func (w *worker) runOp(ctx context.Context, op string) {
	w.ops++
	switch op {
	case "slice", "explain", "sdg":
		item := w.pickItem(w.corpus)
		query := item.query
		if op == "sdg" {
			item = w.pickItem(w.sdg)
			query = item.query
		} else if op == "explain" {
			query += "&explain=1"
		}
		w.exchange(ctx, op, http.MethodPost, "http://"+w.target()+"/slice?"+query, "text/plain", item.source)
	case "session":
		// One editor round-trip: open, re-slice after a (same-source)
		// replacement edit, close. All three requests land on one node —
		// sessions are node-local state, not content-addressed.
		item := w.pickItem(w.corpus)
		node := w.target()
		status, body := w.exchange(ctx, op, http.MethodPost, "http://"+node+"/session", "text/plain", item.source)
		if status != http.StatusCreated {
			return
		}
		var opened struct {
			Session string `json:"session"`
		}
		if json.Unmarshal(body, &opened) != nil || opened.Session == "" {
			return
		}
		patch, _ := json.Marshal(map[string]string{"source": item.source})
		w.exchange(ctx, op, http.MethodPatch,
			"http://"+node+"/session/"+opened.Session+"?"+item.query, "application/json", string(patch))
		w.exchange(ctx, op, http.MethodDelete, "http://"+node+"/session/"+opened.Session, "", "")
	}
}

// percentiles computes exact nearest-rank order statistics. The input
// is sorted in place.
func percentiles(ns []int64) Percentiles {
	if len(ns) == 0 {
		return Percentiles{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	rank := func(q float64) int64 {
		i := int(q*float64(len(ns))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return ns[i]
	}
	return Percentiles{
		Samples: int64(len(ns)),
		P50NS:   rank(0.50),
		P95NS:   rank(0.95),
		P99NS:   rank(0.99),
		P999NS:  rank(0.999),
		MaxNS:   ns[len(ns)-1],
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sliceload", flag.ContinueOnError)
	targetsFlag := fs.String("targets", "127.0.0.1:7070", "comma-separated host:port list of sliced daemons")
	duration := fs.Duration("duration", 10*time.Second, "run length (0 = until -n operations)")
	n := fs.Int64("n", 0, "stop after this many operations (0 = until -duration)")
	clients := fs.Int("clients", 32, "concurrent client loops")
	mixFlag := fs.String("mix", "slice=60,explain=15,session=15,sdg=10", "operation mix as op=weight pairs")
	corpusN := fs.Int("corpus", 50, "distinct programs in the corpus")
	stmts := fs.Int("stmts", 30, "approximate statements per corpus program")
	zipfS := fs.Float64("zipf", 1.2, "zipf skew over the corpus (s parameter; <= 1 = uniform)")
	seed := fs.Int64("seed", 1, "corpus and traffic seed")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	jsonPath := fs.String("json", "", "also write the report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *duration <= 0 && *n <= 0 {
		return fmt.Errorf("one of -duration or -n must be positive")
	}
	if *clients <= 0 {
		return fmt.Errorf("-clients must be positive")
	}
	var targets []string
	for _, t := range strings.Split(*targetsFlag, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("-targets selects no daemons")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	mixTot := 0
	needSDG := false
	for _, m := range mix {
		mixTot += m.weight
		needSDG = needSDG || m.op == "sdg"
	}

	corpus, err := buildCorpus(*corpusN, *stmts, *seed)
	if err != nil {
		return err
	}
	var sdgCorpus []workItem
	if needSDG {
		if sdgCorpus, err = buildSDGCorpus(*corpusN, *stmts, *seed); err != nil {
			return err
		}
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *clients * 2,
			MaxIdleConnsPerHost: *clients,
		},
	}
	runCtx := ctx
	var cancel context.CancelFunc
	if *duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	workers := make([]*worker, *clients)
	var opsDone atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		rng := rand.New(rand.NewSource(*seed + 7919*int64(i+1)))
		w := &worker{
			client:  client,
			targets: targets,
			corpus:  corpus,
			sdg:     sdgCorpus,
			mix:     mix,
			mixTot:  mixTot,
			rng:     rng,
		}
		if *zipfS > 1 && *corpusN > 1 {
			w.zipf = rand.NewZipf(rng, *zipfS, 1, uint64(*corpusN-1))
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				if *n > 0 && opsDone.Add(1) > *n {
					return
				}
				w.runOp(runCtx, pickOp(w.rng, w.mix, w.mixTot))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := reduce(workers, targets, *clients, elapsed)
	printReport(out, report)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote JSON report to %s\n", *jsonPath)
	}
	return nil
}

// reduce merges every worker's samples into the run report. Latency
// percentiles cover successful exchanges only: a shed is a fast 503
// by design and a transport error has no meaningful server latency —
// folding either in would flatter or smear the tail.
func reduce(workers []*worker, targets []string, clients int, elapsed time.Duration) *Report {
	r := &Report{
		Targets:    targets,
		Clients:    clients,
		DurationNS: elapsed.Nanoseconds(),
		OpCounts:   map[string]int64{},
		Nodes:      map[string]int64{},
		Routes:     map[string]int64{},
		Cache:      map[string]int64{},
	}
	var lat []int64
	for _, w := range workers {
		r.Ops += w.ops
		for _, s := range w.samples {
			r.Requests++
			r.OpCounts[s.op]++
			switch {
			case s.err:
				r.Errors++
			case s.status == http.StatusServiceUnavailable:
				r.Shed++
			case s.status >= 400:
				r.Errors++
			default:
				lat = append(lat, s.ns)
				if s.node != "" {
					r.Nodes[s.node]++
				}
				if s.route != "" {
					r.Routes[s.route]++
				}
				if s.cache != "" {
					r.Cache[s.cache]++
				}
			}
		}
	}
	if r.Requests > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
	}
	if elapsed > 0 {
		r.RPS = float64(r.Requests) / elapsed.Seconds()
	}
	r.Latency = percentiles(lat)
	return r
}

func printReport(out io.Writer, r *Report) {
	fmt.Fprintf(out, "sliceload: %d clients against %s for %s\n",
		r.Clients, strings.Join(r.Targets, ","), time.Duration(r.DurationNS).Round(time.Millisecond))
	fmt.Fprintf(out, "requests  %d (%.1f/s), ops %d, errors %d, shed %d (%.2f%%)\n",
		r.Requests, r.RPS, r.Ops, r.Errors, r.Shed, 100*r.ShedRate)
	fmt.Fprintf(out, "latency   p50 %s  p95 %s  p99 %s  p999 %s  max %s (%d samples)\n",
		time.Duration(r.Latency.P50NS).Round(time.Microsecond),
		time.Duration(r.Latency.P95NS).Round(time.Microsecond),
		time.Duration(r.Latency.P99NS).Round(time.Microsecond),
		time.Duration(r.Latency.P999NS).Round(time.Microsecond),
		time.Duration(r.Latency.MaxNS).Round(time.Microsecond),
		r.Latency.Samples)
	fmt.Fprintf(out, "ops      ")
	for _, op := range sortedKeys(r.OpCounts) {
		fmt.Fprintf(out, "  %s=%d", op, r.OpCounts[op])
	}
	fmt.Fprintln(out)
	if len(r.Nodes) > 0 {
		fmt.Fprintf(out, "nodes    ")
		for _, node := range sortedKeys(r.Nodes) {
			fmt.Fprintf(out, "  %s=%d", node, r.Nodes[node])
		}
		fmt.Fprintln(out)
	}
	if len(r.Routes) > 0 {
		fmt.Fprintf(out, "routes   ")
		for _, rt := range sortedKeys(r.Routes) {
			fmt.Fprintf(out, "  %s=%d", rt, r.Routes[rt])
		}
		fmt.Fprintln(out)
	}
	if len(r.Cache) > 0 {
		fmt.Fprintf(out, "cache    ")
		for _, c := range sortedKeys(r.Cache) {
			fmt.Fprintf(out, "  %s=%d", c, r.Cache[c])
		}
		fmt.Fprintln(out)
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
