// Command slicequery is the offline analytics half of the sliced
// telemetry plane: it answers questions about requests the daemon
// served in the past, from the durable artifacts the daemon left
// behind — a telemetry spool directory (-spool) or a post-mortem
// bundle (-bundle). It needs no running daemon and no dependencies
// beyond the standard library.
//
// Usage:
//
//	slicequery -spool DIR [flags] [command]
//	slicequery -bundle DIR [flags] [command]
//
// Commands:
//
//	summary    outcome taxonomy, latency percentiles, and a
//	           per-endpoint table over the matching events (default)
//	top        the N slowest matching requests, each with its
//	           per-phase pipeline breakdown
//	list       one line per matching event, oldest first
//	request    full reconstruction of one request by -id; with -raw,
//	           the stored JSON record verbatim (byte-for-byte what
//	           the daemon wrote)
//
// Filters (combine freely; all must match):
//
//	-since T / -until T   bound the arrival time; T is RFC3339, a
//	                      unix-nanosecond integer, or a Go duration
//	                      meaning "that long ago" (-since 15m)
//	-endpoint E           the normalized route ("/slice")
//	-status N             the exact response status
//	-outcome O            ok|client_error|error|shed|timeout|canceled|panic
//	-route R              local|proxied|peer-fill — how a clustered
//	                      daemon answered (events from an unclustered
//	                      daemon carry no route and never match)
//	-min-ms N             at least N milliseconds slow
//
// Examples:
//
//	slicequery -spool /var/lib/sliced/spool summary
//	slicequery -spool spool -outcome error -since 1h top
//	slicequery -spool spool -id 1742 -raw request
//	slicequery -bundle /var/lib/sliced/pm/bundle-...-panic summary
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"jumpslice/internal/obs"
	"jumpslice/internal/obs/spool"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// validOutcomes mirrors the daemon's closed outcome taxonomy.
var validOutcomes = map[string]bool{
	"ok": true, "client_error": true, "error": true, "shed": true,
	"timeout": true, "canceled": true, "panic": true,
}

// validRoutes mirrors the clustered daemon's route taxonomy.
var validRoutes = map[string]bool{"local": true, "proxied": true, "peer-fill": true}

// record is one matching event plus the raw stored bytes it was
// parsed from (the daemon's exact json.Marshal output).
type record struct {
	ev  obs.WideEvent
	raw []byte
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slicequery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		spoolDir  = fs.String("spool", "", "telemetry spool directory to query")
		bundleDir = fs.String("bundle", "", "post-mortem bundle directory to query")
		since     = fs.String("since", "", "only events at or after this time (RFC3339, unix ns, or duration ago)")
		until     = fs.String("until", "", "only events at or before this time (RFC3339, unix ns, or duration ago)")
		endpoint  = fs.String("endpoint", "", "only events on this normalized endpoint")
		status    = fs.Int("status", 0, "only events with this exact response status")
		outcome   = fs.String("outcome", "", "only events with this outcome (ok|client_error|error|shed|timeout|canceled|panic)")
		route     = fs.String("route", "", "only events answered via this cluster route (local|proxied|peer-fill)")
		minMS     = fs.Int64("min-ms", 0, "only events at least this many milliseconds slow")
		topN      = fs.Int("n", 10, "row limit for top and list (0 = unlimited for list)")
		reqID     = fs.Uint64("id", 0, "request ID for the request command")
		raw       = fs.Bool("raw", false, "request command: print the stored JSON record verbatim")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: slicequery (-spool DIR | -bundle DIR) [flags] [summary|top|list|request]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	cmd := fs.Arg(0)
	if cmd == "" {
		cmd = "summary"
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "slicequery: "+format+"\n", args...)
		return 1
	}
	if (*spoolDir == "") == (*bundleDir == "") {
		fs.Usage()
		return fail("exactly one of -spool or -bundle is required")
	}
	if *outcome != "" && !validOutcomes[*outcome] {
		return fail("-outcome must be one of ok|client_error|error|shed|timeout|canceled|panic, got %q", *outcome)
	}
	if *route != "" && !validRoutes[*route] {
		return fail("-route must be one of local|proxied|peer-fill, got %q", *route)
	}
	f := spool.Filter{
		Endpoint: *endpoint,
		Status:   *status,
		Outcome:  *outcome,
		Route:    *route,
		MinDurNS: *minMS * int64(time.Millisecond),
		Req:      *reqID,
	}
	var err error
	if f.SinceNS, err = parseTime(*since); err != nil {
		return fail("-since: %v", err)
	}
	if f.UntilNS, err = parseTime(*until); err != nil {
		return fail("-until: %v", err)
	}
	if cmd == "request" && *reqID == 0 {
		return fail("request command needs -id")
	}

	var recs []record
	source := ""
	switch {
	case *spoolDir != "":
		source = fmt.Sprintf("spool %s", *spoolDir)
		err = spool.Scan(*spoolDir, f, func(ev *obs.WideEvent, line []byte) error {
			recs = append(recs, record{ev: *ev, raw: append([]byte(nil), line...)})
			return nil
		})
	default:
		source = fmt.Sprintf("bundle %s", *bundleDir)
		recs, err = readBundle(*bundleDir, &f)
	}
	if err != nil {
		return fail("%v", err)
	}

	switch cmd {
	case "summary":
		printSummary(stdout, source, recs)
	case "top":
		printTop(stdout, recs, *topN)
	case "list":
		printList(stdout, recs, *topN)
	case "request":
		rec := findRequest(recs, *reqID)
		if rec == nil {
			return fail("request %d not found in %s", *reqID, source)
		}
		if *raw {
			fmt.Fprintf(stdout, "%s\n", rec.raw)
			return 0
		}
		printRequest(stdout, rec)
	default:
		fs.Usage()
		return fail("unknown command %q", cmd)
	}
	return 0
}

// parseTime resolves a -since/-until value to unix nanoseconds: empty
// means unbounded, RFC3339 is absolute, a bare integer is unix
// nanoseconds, and a Go duration means that long before now.
func parseTime(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t.UnixNano(), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return time.Now().Add(-d).UnixNano(), nil
	}
	return 0, fmt.Errorf("want RFC3339 time, unix nanoseconds, or a duration like 15m, got %q", s)
}

// readBundle loads a post-mortem bundle's requests.jsonl, applying
// the same filter semantics a spool scan would.
func readBundle(dir string, f *spool.Filter) ([]record, error) {
	path := filepath.Join(dir, "requests.jsonl")
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var recs []record
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.WideEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if !f.Match(&ev) {
			continue
		}
		recs = append(recs, record{ev: ev, raw: append([]byte(nil), line...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func findRequest(recs []record, id uint64) *record {
	for i := range recs {
		if recs[i].ev.Req == id {
			return &recs[i]
		}
	}
	return nil
}

// pct returns the exact p-th percentile of sorted durations
// (nearest-rank method).
func pct(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtTime(ns int64) string {
	return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
}

func printSummary(w io.Writer, source string, recs []record) {
	fmt.Fprintf(w, "source: %s\n", source)
	fmt.Fprintf(w, "events: %d\n", len(recs))
	if len(recs) == 0 {
		return
	}
	minTS, maxTS := recs[0].ev.TimeNS, recs[0].ev.TimeNS
	outcomes := map[string]int{}
	routes := map[string]int{}
	durs := make([]int64, 0, len(recs))
	type epStat struct {
		count, errs int
		durs        []int64
	}
	byEP := map[string]*epStat{}
	for i := range recs {
		ev := &recs[i].ev
		if ev.TimeNS < minTS {
			minTS = ev.TimeNS
		}
		if ev.TimeNS > maxTS {
			maxTS = ev.TimeNS
		}
		outcomes[ev.Outcome]++
		if ev.Route != "" {
			routes[ev.Route]++
		}
		durs = append(durs, ev.DurationNS)
		st := byEP[ev.Endpoint]
		if st == nil {
			st = &epStat{}
			byEP[ev.Endpoint] = st
		}
		st.count++
		if ev.Status >= 500 {
			st.errs++
		}
		st.durs = append(st.durs, ev.DurationNS)
	}
	fmt.Fprintf(w, "range:  %s .. %s\n", fmtTime(minTS), fmtTime(maxTS))

	fmt.Fprintf(w, "outcomes:\n")
	names := make([]string, 0, len(outcomes))
	for name := range outcomes {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if outcomes[names[i]] != outcomes[names[j]] {
			return outcomes[names[i]] > outcomes[names[j]]
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		n := outcomes[name]
		fmt.Fprintf(w, "  %-12s %7d  %5.1f%%\n", name, n, 100*float64(n)/float64(len(recs)))
	}

	// Routes appear only for clustered traffic; an unclustered spool
	// prints no routes section at all.
	if len(routes) > 0 {
		fmt.Fprintf(w, "routes:\n")
		rnames := make([]string, 0, len(routes))
		for name := range routes {
			rnames = append(rnames, name)
		}
		sort.Slice(rnames, func(i, j int) bool {
			if routes[rnames[i]] != routes[rnames[j]] {
				return routes[rnames[i]] > routes[rnames[j]]
			}
			return rnames[i] < rnames[j]
		})
		for _, name := range rnames {
			n := routes[name]
			fmt.Fprintf(w, "  %-12s %7d  %5.1f%%\n", name, n, 100*float64(n)/float64(len(recs)))
		}
	}

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	fmt.Fprintf(w, "latency: p50=%s p90=%s p99=%s max=%s\n",
		fmtDur(pct(durs, 50)), fmtDur(pct(durs, 90)), fmtDur(pct(durs, 99)), fmtDur(durs[len(durs)-1]))

	eps := make([]string, 0, len(byEP))
	for ep := range byEP {
		eps = append(eps, ep)
	}
	sort.Slice(eps, func(i, j int) bool {
		if byEP[eps[i]].count != byEP[eps[j]].count {
			return byEP[eps[i]].count > byEP[eps[j]].count
		}
		return eps[i] < eps[j]
	})
	fmt.Fprintf(w, "endpoints:\n")
	fmt.Fprintf(w, "  %-18s %7s %7s %10s %10s\n", "ENDPOINT", "COUNT", "5XX", "P50", "P99")
	for _, ep := range eps {
		st := byEP[ep]
		sort.Slice(st.durs, func(i, j int) bool { return st.durs[i] < st.durs[j] })
		fmt.Fprintf(w, "  %-18s %7d %7d %10s %10s\n",
			ep, st.count, st.errs, fmtDur(pct(st.durs, 50)), fmtDur(pct(st.durs, 99)))
	}
}

func printTop(w io.Writer, recs []record, n int) {
	if n <= 0 {
		n = 10
	}
	sorted := make([]*record, len(recs))
	for i := range recs {
		sorted[i] = &recs[i]
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ev.DurationNS != sorted[j].ev.DurationNS {
			return sorted[i].ev.DurationNS > sorted[j].ev.DurationNS
		}
		return sorted[i].ev.Req < sorted[j].ev.Req
	})
	if n < len(sorted) {
		sorted = sorted[:n]
	}
	fmt.Fprintf(w, "top %d slowest of %d events:\n", len(sorted), len(recs))
	for _, rec := range sorted {
		ev := &rec.ev
		fmt.Fprintf(w, "req=%-8d %s %s %s status=%d dur=%s outcome=%s%s\n",
			ev.Req, fmtTime(ev.TimeNS), ev.Method, ev.Path, ev.Status, fmtDur(ev.DurationNS), ev.Outcome, routeSuffix(ev))
		if len(ev.Phases) > 0 {
			parts := make([]string, len(ev.Phases))
			for i, p := range ev.Phases {
				parts[i] = fmt.Sprintf("%s=%s", p.Name, fmtDur(p.NS))
			}
			fmt.Fprintf(w, "    phases: %s\n", strings.Join(parts, " "))
		}
	}
}

func printList(w io.Writer, recs []record, n int) {
	if n > 0 && n < len(recs) {
		recs = recs[len(recs)-n:]
	}
	for i := range recs {
		ev := &recs[i].ev
		fmt.Fprintf(w, "req=%-8d %s %s %s status=%d dur=%s outcome=%s%s\n",
			ev.Req, fmtTime(ev.TimeNS), ev.Method, ev.Path, ev.Status, fmtDur(ev.DurationNS), ev.Outcome, routeSuffix(ev))
	}
}

// routeSuffix renders the cluster attribution of one event, or
// nothing for unclustered traffic — the common case stays one line
// of unchanged width.
func routeSuffix(ev *obs.WideEvent) string {
	if ev.Route == "" {
		return ""
	}
	s := " route=" + ev.Route
	if ev.Peer != "" {
		s += " peer=" + ev.Peer
	}
	return s
}

func printRequest(w io.Writer, rec *record) {
	ev := &rec.ev
	fmt.Fprintf(w, "request %d\n", ev.Req)
	fmt.Fprintf(w, "  time:     %s\n", fmtTime(ev.TimeNS))
	fmt.Fprintf(w, "  request:  %s %s  (endpoint %s)\n", ev.Method, ev.Path, ev.Endpoint)
	fmt.Fprintf(w, "  status:   %d  outcome=%s", ev.Status, ev.Outcome)
	if ev.ErrorCode != "" {
		fmt.Fprintf(w, "  code=%s", ev.ErrorCode)
	}
	fmt.Fprintf(w, "\n")
	fmt.Fprintf(w, "  duration: %s  bytes_out=%d\n", fmtDur(ev.DurationNS), ev.BytesOut)
	if ev.Algo != "" || ev.Stmts > 0 || ev.SliceLines > 0 {
		fmt.Fprintf(w, "  slicing:  algo=%s stmts=%d slice_lines=%d\n", ev.Algo, ev.Stmts, ev.SliceLines)
	}
	if ev.Cache != "" || ev.Incremental != "" {
		fmt.Fprintf(w, "  tiers:    cache=%s incremental=%s\n", ev.Cache, ev.Incremental)
	}
	if ev.Route != "" {
		fmt.Fprintf(w, "  cluster:  route=%s", ev.Route)
		if ev.Peer != "" {
			fmt.Fprintf(w, " peer=%s", ev.Peer)
		}
		fmt.Fprintf(w, "\n")
	}
	if len(ev.Phases) > 0 {
		fmt.Fprintf(w, "  phases:\n")
		var total int64
		for _, p := range ev.Phases {
			total += p.NS
		}
		for _, p := range ev.Phases {
			share := 0.0
			if total > 0 {
				share = 100 * float64(p.NS) / float64(total)
			}
			fmt.Fprintf(w, "    %-14s %12s  %5.1f%%\n", p.Name, fmtDur(p.NS), share)
		}
		fmt.Fprintf(w, "    %-14s %12s\n", "(phase total)", fmtDur(total))
	}
}
