package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumpslice/internal/obs"
	"jumpslice/internal/obs/spool"
)

// seedEvents is the fixture fleet: a mix of endpoints, statuses,
// outcomes and durations with known request IDs.
func seedEvents() []obs.WideEvent {
	evs := make([]obs.WideEvent, 0, 20)
	for i := 1; i <= 20; i++ {
		ev := obs.WideEvent{
			Req:        uint64(i),
			TimeNS:     int64(i) * 1_000_000, // 1ms apart
			Method:     "POST",
			Path:       "/slice",
			Endpoint:   "/slice",
			Status:     200,
			DurationNS: int64(i) * int64(1_000_000), // i ms
			BytesOut:   int64(100 + i),
			Outcome:    "ok",
			Algo:       "agrawal",
			Stmts:      20,
			SliceLines: 9,
			Phases: []obs.PhaseDur{
				{Name: "parse", NS: 100_000},
				{Name: "cfg", NS: 200_000},
				{Name: "slice", NS: int64(i) * 500_000},
			},
		}
		switch {
		case i%7 == 0:
			ev.Status, ev.Outcome, ev.ErrorCode = 500, "error", "internal"
		case i%5 == 0:
			ev.Method, ev.Path, ev.Endpoint = "GET", "/healthz", "/healthz"
			ev.Algo, ev.Stmts, ev.SliceLines, ev.Phases = "", 0, 0, nil
		}
		evs = append(evs, ev)
	}
	return evs
}

// makeSpool writes the fixture events into a fresh spool directory.
func makeSpool(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := spool.Open(spool.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range seedEvents() {
		if !s.Enqueue(ev) {
			t.Fatal("enqueue rejected")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// makeBundle writes the fixture events as a bundle's requests.jsonl.
func makeBundle(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "requests.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, ev := range seedEvents() {
		if err := enc.Encode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// query runs the CLI and returns its stdout, failing on nonzero exit.
func query(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb strings.Builder
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("slicequery %v exited %d: %s", args, code, errb.String())
	}
	return out.String()
}

func TestSummaryFromSpool(t *testing.T) {
	dir := makeSpool(t)
	out := query(t, "-spool", dir, "summary")
	for _, want := range []string{
		"events: 20",
		"ok", "error",
		"latency:", "p50=", "p99=",
		"/slice", "/healthz",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
	// 2 of 20 events are 500s (i=7,14).
	if !strings.Contains(out, "error") || !strings.Contains(out, "10.0%") {
		t.Errorf("summary should show the 10%% error share:\n%s", out)
	}
}

func TestSummaryIsDefaultCommand(t *testing.T) {
	dir := makeSpool(t)
	if got, want := query(t, "-spool", dir), query(t, "-spool", dir, "summary"); got != want {
		t.Error("bare invocation and explicit summary disagree")
	}
}

func TestTopShowsPhaseBreakdown(t *testing.T) {
	dir := makeSpool(t)
	out := query(t, "-spool", dir, "-n", "3", "top")
	if !strings.Contains(out, "top 3 slowest of 20 events") {
		t.Errorf("top header wrong:\n%s", out)
	}
	// Slowest is req=20 (20ms), which kept its phases.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 || !strings.Contains(lines[1], "req=20") {
		t.Errorf("slowest request should lead:\n%s", out)
	}
	// req=20 is a phase-less /healthz probe; req=19 is the slowest
	// slicing request and must carry its breakdown.
	if !strings.Contains(out, "phases: parse=") || !strings.Contains(out, "slice=9.5ms") {
		t.Errorf("top should show phase breakdowns:\n%s", out)
	}
}

func TestFilters(t *testing.T) {
	dir := makeSpool(t)
	out := query(t, "-spool", dir, "-outcome", "error", "list")
	if n := strings.Count(out, "req="); n != 2 {
		t.Errorf("outcome=error matched %d events, want 2:\n%s", n, out)
	}
	out = query(t, "-spool", dir, "-endpoint", "/healthz", "-n", "0", "list")
	if n := strings.Count(out, "req="); n != 4 {
		t.Errorf("endpoint=/healthz matched %d events, want 4 (i=5,10,15,20):\n%s", n, out)
	}
	out = query(t, "-spool", dir, "-min-ms", "18", "-n", "0", "list")
	if n := strings.Count(out, "req="); n != 3 {
		t.Errorf("min-ms=18 matched %d events, want 3 (18,19,20ms):\n%s", n, out)
	}
	out = query(t, "-spool", dir, "-status", "500", "-n", "0", "list")
	if n := strings.Count(out, "req="); n != 2 {
		t.Errorf("status=500 matched %d events, want 2:\n%s", n, out)
	}
	// Unix-nanosecond time bounds: events 1..20 at i*1ms.
	out = query(t, "-spool", dir, "-since", "15000000", "-n", "0", "list")
	if n := strings.Count(out, "req="); n != 6 {
		t.Errorf("since=15ms matched %d events, want 6 (15..20):\n%s", n, out)
	}
}

func TestRequestReconstruction(t *testing.T) {
	dir := makeSpool(t)
	out := query(t, "-spool", dir, "-id", "3", "request")
	for _, want := range []string{
		"request 3",
		"POST /slice",
		"algo=agrawal stmts=20 slice_lines=9",
		"parse", "cfg", "slice",
		"(phase total)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("request output missing %q:\n%s", want, out)
		}
	}
}

// TestRequestRawIsByteForByte pins the acceptance criterion: -raw
// must reproduce exactly the bytes the daemon stored — which are
// exactly json.Marshal of the wide event.
func TestRequestRawIsByteForByte(t *testing.T) {
	dir := makeSpool(t)
	for _, ev := range seedEvents() {
		want, err := json.Marshal(&ev)
		if err != nil {
			t.Fatal(err)
		}
		out := query(t, "-spool", dir, "-id", fmt.Sprint(ev.Req), "-raw", "request")
		if got := strings.TrimSuffix(out, "\n"); got != string(want) {
			t.Fatalf("req=%d raw mismatch:\n got %s\nwant %s", ev.Req, got, want)
		}
	}
}

func TestBundleSource(t *testing.T) {
	dir := makeBundle(t)
	out := query(t, "-bundle", dir, "summary")
	if !strings.Contains(out, "events: 20") {
		t.Errorf("bundle summary wrong:\n%s", out)
	}
	// Raw bytes survive the bundle path too.
	ev := seedEvents()[0]
	want, _ := json.Marshal(&ev)
	out = query(t, "-bundle", dir, "-id", "1", "-raw", "request")
	if got := strings.TrimSuffix(out, "\n"); got != string(want) {
		t.Errorf("bundle raw mismatch:\n got %s\nwant %s", got, want)
	}
	// Filters apply on the bundle path.
	out = query(t, "-bundle", dir, "-outcome", "error", "list")
	if n := strings.Count(out, "req="); n != 2 {
		t.Errorf("bundle outcome=error matched %d, want 2:\n%s", n, out)
	}
}

func TestErrors(t *testing.T) {
	dir := makeSpool(t)
	cases := [][]string{
		{},                                        // no source
		{"-spool", dir, "-bundle", dir},           // both sources
		{"-spool", dir, "-outcome", "nope"},       // invalid outcome
		{"-spool", dir, "request"},                // request without -id
		{"-spool", dir, "-id", "999", "request"},  // unknown request
		{"-spool", dir, "-since", "yesterday"},    // unparseable time
		{"-spool", dir, "frobnicate"},             // unknown command
		{"-bundle", t.TempDir(), "summary"},       // bundle without requests.jsonl
		{"-spool", filepath.Join(dir, "missing")}, // missing spool dir
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("slicequery %v should fail, got exit 0 with output:\n%s", args, out.String())
		} else if errb.Len() == 0 {
			t.Errorf("slicequery %v failed silently", args)
		}
	}
}

func TestDurationSince(t *testing.T) {
	dir := makeSpool(t)
	// All fixture events are in 1970; "1h ago" excludes everything.
	out := query(t, "-spool", dir, "-since", "1h", "summary")
	if !strings.Contains(out, "events: 0") {
		t.Errorf("duration -since should exclude epoch-era events:\n%s", out)
	}
}

// TestRouteFilterAndDisplay covers the cluster attribution fields: a
// spool of routed traffic filters by -route, breaks routes out in the
// summary, and carries route/peer onto list lines and the request
// reconstruction.
func TestRouteFilterAndDisplay(t *testing.T) {
	dir := t.TempDir()
	s, err := spool.Open(spool.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		ev := obs.WideEvent{
			Req: uint64(i), TimeNS: int64(i) * 1_000_000,
			Method: "POST", Path: "/slice", Endpoint: "/slice",
			Status: 200, DurationNS: 1_000_000, Outcome: "ok",
			Route: "local",
		}
		switch {
		case i%3 == 0:
			ev.Route, ev.Peer = "proxied", "127.0.0.1:9001"
		case i%3 == 1:
			ev.Route, ev.Peer = "peer-fill", "127.0.0.1:9002"
		}
		if !s.Enqueue(ev) {
			t.Fatal("enqueue rejected")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	out := query(t, "-spool", dir, "-route", "proxied", "-n", "0", "list")
	if n := strings.Count(out, "req="); n != 3 {
		t.Errorf("-route proxied matched %d events, want 3:\n%s", n, out)
	}
	if !strings.Contains(out, "route=proxied peer=127.0.0.1:9001") {
		t.Errorf("list line missing route attribution:\n%s", out)
	}

	out = query(t, "-spool", dir, "summary")
	if !strings.Contains(out, "routes:") ||
		!strings.Contains(out, "proxied") || !strings.Contains(out, "peer-fill") {
		t.Errorf("summary missing routes breakdown:\n%s", out)
	}

	out = query(t, "-spool", dir, "-id", "1", "request")
	if !strings.Contains(out, "cluster:  route=peer-fill peer=127.0.0.1:9002") {
		t.Errorf("request reconstruction missing cluster line:\n%s", out)
	}

	// An invalid route is rejected, same contract as -outcome.
	var o, e strings.Builder
	if code := run([]string{"-spool", dir, "-route", "bogus"}, &o, &e); code == 0 {
		t.Error("-route bogus accepted")
	}

	// An unclustered spool prints no routes section.
	out = query(t, "-spool", makeSpool(t), "summary")
	if strings.Contains(out, "routes:") {
		t.Errorf("unclustered summary grew a routes section:\n%s", out)
	}
}
