package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEmitsEveryFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 1-a", "Figure 3-a", "Figure 5-a", "Figure 8-a",
		"Figure 10-a", "Figure 14-a", "Figure 16-a",
		"conventional slice", "Figure 7 slice", "Ball–Horwitz slice",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFigureFilter(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "Figure 14-a"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 14-a") {
		t.Error("missing requested figure")
	}
	if strings.Contains(out, "Figure 3-a") {
		t.Error("filter leaked other figures")
	}
	// Figure 14's two slices must differ exactly as in the paper.
	if !strings.Contains(out, "lines: [1 3 4 9]") {
		t.Error("missing Figure 14-b line set")
	}
	if !strings.Contains(out, "lines: [1 3 4 5 7 9]") {
		t.Error("missing Figure 14-c line set")
	}
}

func TestDOTDirectory(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-figure", "Figure 10-a", "-dot", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"cfg", "pdt", "lst", "cdg", "ddg", "pdg"} {
		path := filepath.Join(dir, "figure_10-a_"+kind+".dot")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing %s: %v", path, err)
			continue
		}
		if !strings.HasPrefix(string(data), "digraph") {
			t.Errorf("%s: not a DOT file", path)
		}
	}
}

func TestUnstructuredFiguresSkipStructuredAlgorithms(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "Figure 8-a"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "not applicable") {
		t.Error("Figure 8 should mark the structured algorithms not applicable")
	}
}

func TestCheckMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-check"}, &sb); err != nil {
		t.Fatalf("check failed: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "all figures reproduce the paper") {
		t.Errorf("missing success line:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("check reported failures:\n%s", out)
	}
	// Every figure appears.
	for _, want := range []string{"Figure 1-a", "Figure 3-a", "Figure 16-a"} {
		if !strings.Contains(out, want) {
			t.Errorf("check output missing %s", want)
		}
	}
}
