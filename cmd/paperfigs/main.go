// Command paperfigs regenerates every figure of the paper from the
// built-in corpus: the example program listings, the slices each
// algorithm computes (Figures 1-b, 3-b/c, 5-b/c, 8-b/c, 10-b, 14-b/c,
// 16-b/c), and — with -dot — the flowgraphs, postdominator trees,
// control/data/program dependence graphs and lexical successor trees
// of Figures 2, 4, 6, 9, 11 and 15 as Graphviz files.
//
// Usage:
//
//	paperfigs [-dot DIR] [-figure NAME] [-check]
//
// With -check, instead of printing listings, every figure's slices are
// compared against the paper's published line sets and the command
// exits nonzero on any mismatch — a one-shot reproduction check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"jumpslice/internal/baselines"
	"jumpslice/internal/core"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
	"jumpslice/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperfigs", flag.ContinueOnError)
	dotDir := fs.String("dot", "", "write DOT graph files into this directory")
	only := fs.String("figure", "", "restrict to one figure, e.g. \"Figure 3-a\"")
	check := fs.Bool("check", false, "verify every figure against the paper's line sets")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check {
		return verify(out, *only)
	}
	for _, f := range paper.All() {
		if *only != "" && f.Name != *only {
			continue
		}
		if err := emit(out, f, *dotDir); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return nil
}

// verify compares every figure's computed slices to the paper's
// published line sets.
func verify(out io.Writer, only string) error {
	failures := 0
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	report := func(figure, what string, got, want []int) {
		if eq(got, want) {
			fmt.Fprintf(out, "ok   %-12s %-28s %v\n", figure, what, got)
			return
		}
		failures++
		fmt.Fprintf(out, "FAIL %-12s %-28s got %v, paper %v\n", figure, what, got, want)
	}
	for _, f := range paper.All() {
		if only != "" && f.Name != only {
			continue
		}
		a, err := core.Analyze(f.Parse())
		if err != nil {
			return err
		}
		c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
		conv, err := a.Conventional(c)
		if err != nil {
			return err
		}
		report(f.Name, "conventional slice", conv.Lines(), f.ConventionalLines)
		ag, err := a.Agrawal(c)
		if err != nil {
			return err
		}
		report(f.Name, "Figure 7 slice", ag.Lines(), f.AgrawalLines)
		if f.Structured {
			st, err := a.AgrawalStructured(c)
			if err != nil {
				return err
			}
			report(f.Name, "Figure 12 slice", st.Lines(), f.StructuredLines)
			cons, err := a.AgrawalConservative(c)
			if err != nil {
				return err
			}
			report(f.Name, "Figure 13 slice", cons.Lines(), f.ConservativeLines)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d figure checks failed", failures)
	}
	fmt.Fprintln(out, "all figures reproduce the paper")
	return nil
}

func rule(out io.Writer, title string) {
	fmt.Fprintf(out, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func emit(out io.Writer, f *paper.Figure, dotDir string) error {
	prog := f.Parse()
	a, err := core.Analyze(prog)
	if err != nil {
		return err
	}
	c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}

	rule(out, fmt.Sprintf("%s — %s", f.Name, f.Description))
	fmt.Fprintf(out, "criterion: %s    structured program: %v\n\n", c, f.Structured)
	fmt.Fprint(out, lang.Format(prog, lang.PrintOptions{LineNumbers: true}))

	emitSlice := func(label string, s *core.Slice, err error) {
		fmt.Fprintf(out, "\n--- %s ---\n", label)
		if err != nil {
			fmt.Fprintf(out, "(not applicable: %v)\n", err)
			return
		}
		fmt.Fprint(out, s.Format())
		fmt.Fprintf(out, "lines: %v\n", s.Lines())
		if s.Traversals > 0 {
			fmt.Fprintf(out, "postdominator tree traversals: %d\n", s.Traversals)
		}
		for label, l := range s.RelabeledLines() {
			fmt.Fprintf(out, "label %s re-attached to line %d\n", label, l)
		}
	}

	conv, err := a.Conventional(c)
	emitSlice("conventional slice (jump-unaware)", conv, err)
	ag, err := a.Agrawal(c)
	emitSlice("Figure 7 slice (the paper's algorithm)", ag, err)
	st, err := a.AgrawalStructured(c)
	emitSlice("Figure 12 slice (structured algorithm)", st, err)
	cons, err := a.AgrawalConservative(c)
	emitSlice("Figure 13 slice (conservative algorithm)", cons, err)
	bh, err := baselines.BallHorwitz(a, c)
	emitSlice("Ball–Horwitz slice (baseline)", bh, err)

	if dotDir != "" && ag != nil {
		if err := os.MkdirAll(dotDir, 0o755); err != nil {
			return err
		}
		slug := strings.ReplaceAll(strings.ToLower(f.Name), " ", "_")
		opts := viz.Options{Title: f.Name, LineLabels: true, Highlight: viz.SliceHighlight(ag)}
		files := map[string]string{
			"cfg": viz.CFG(a.CFG, opts),
			"pdt": viz.Tree(a.CFG, a.PDT, opts),
			"lst": viz.LST(a.CFG, a.LST, opts),
			"cdg": viz.CDGGraph(a, opts),
			"ddg": viz.DDGGraph(a, opts),
			"pdg": viz.PDGGraph(a, opts),
		}
		for kind, dot := range files {
			path := filepath.Join(dotDir, fmt.Sprintf("%s_%s.dot", slug, kind))
			if err := os.WriteFile(path, []byte(dot), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", path)
		}
	}
	return nil
}
