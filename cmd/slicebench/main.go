// Command slicebench runs the repository's quantitative experiments
// (EXPERIMENTS.md, tables E1–E4) over generated program corpora:
//
//	slicebench -exp precision   # E1: slice sizes per algorithm
//	slicebench -exp soundness   # E2: semantic correctness rates
//	slicebench -exp timing      # E3: wall-clock scaling
//	slicebench -exp traversals  # E4: PDT traversal distribution
//	slicebench -exp dynamic     # E6: dynamic vs static slice sizes
//	slicebench -exp all
//
// Corpus shape is controlled by -seeds and -stmts. All generation is
// deterministic, so two runs print identical tables (timing rows vary
// with the machine, of course).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"time"

	"jumpslice/internal/baselines"
	"jumpslice/internal/core"
	"jumpslice/internal/dynslice"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slicebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slicebench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: precision|soundness|timing|traversals|all")
	seeds := fs.Int("seeds", 100, "number of generated programs per corpus")
	stmts := fs.Int("stmts", 30, "approximate statements per program")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *exp {
	case "precision":
		return precision(out, *seeds, *stmts)
	case "soundness":
		return soundness(out, *seeds, *stmts)
	case "timing":
		return timing(out, *stmts)
	case "traversals":
		return traversals(out, *seeds, *stmts)
	case "dynamic":
		return dynamic(out, *seeds, *stmts)
	case "all":
		for _, f := range []func() error{
			func() error { return precision(out, *seeds, *stmts) },
			func() error { return soundness(out, *seeds, *stmts) },
			func() error { return traversals(out, *seeds, *stmts) },
			func() error { return dynamic(out, *seeds, *stmts) },
			func() error { return timing(out, *stmts) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", *exp)
}

// algoSet names the algorithms each experiment sweeps.
type algoEntry struct {
	name       string
	structured bool // requires a structured program
	run        func(a *core.Analysis, c core.Criterion) (*core.Slice, error)
}

func algorithms() []algoEntry {
	return []algoEntry{
		{"conventional", false, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.Conventional(c) }},
		{"agrawal (Fig 7)", false, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.Agrawal(c) }},
		{"structured (Fig 12)", true, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.AgrawalStructured(c) }},
		{"conservative (Fig 13)", true, func(a *core.Analysis, c core.Criterion) (*core.Slice, error) { return a.AgrawalConservative(c) }},
		{"weiser", false, baselines.Weiser},
		{"ball-horwitz", false, baselines.BallHorwitz},
		{"lyle", false, baselines.Lyle},
		{"gallagher", false, baselines.Gallagher},
		{"jiang-zhou-robson", false, baselines.JiangZhouRobson},
	}
}

// corpora yields the two generated corpora.
func corpora(seeds, stmts int) map[string]func(int64) *lang.Program {
	return map[string]func(int64) *lang.Program{
		"structured":   func(s int64) *lang.Program { return progen.Structured(progen.Config{Seed: s, Stmts: stmts}) },
		"unstructured": func(s int64) *lang.Program { return progen.Unstructured(progen.Config{Seed: s, Stmts: stmts}) },
	}
}

func corpusNames() []string { return []string{"structured", "unstructured"} }

// forEach iterates (analysis, criterion) cases of a corpus.
func forEach(gen func(int64) *lang.Program, seeds int, fn func(a *core.Analysis, c core.Criterion) error) error {
	for s := int64(0); s < int64(seeds); s++ {
		p := gen(s)
		a, err := core.Analyze(p)
		if err != nil {
			return err
		}
		crits := progen.WriteCriteria(p)
		if len(crits) > 2 {
			crits = crits[len(crits)-2:]
		}
		for _, wc := range crits {
			if err := fn(a, core.Criterion{Var: wc.Var, Line: wc.Line}); err != nil {
				return err
			}
		}
	}
	return nil
}

// precision prints E1: mean statements and mean jump statements per
// slice, per algorithm and corpus.
func precision(out io.Writer, seeds, stmts int) error {
	fmt.Fprintf(out, "\nE1: slice precision (mean over %d programs/corpus, ~%d statements each)\n", seeds, stmts)
	fmt.Fprintf(out, "%-22s %-13s %12s %12s %10s\n", "algorithm", "corpus", "mean stmts", "mean jumps", "cases")
	gens := corpora(seeds, stmts)
	for _, corpus := range corpusNames() {
		gen := gens[corpus]
		for _, ae := range algorithms() {
			var totalStmts, totalJumps, cases int
			err := forEach(gen, seeds, func(a *core.Analysis, c core.Criterion) error {
				if ae.structured && !a.Structured() {
					return nil
				}
				s, err := ae.run(a, c)
				if err != nil {
					if errors.Is(err, core.ErrUnstructured) {
						return nil
					}
					return err
				}
				cases++
				for _, id := range s.StatementNodes() {
					totalStmts++
					if a.CFG.Nodes[id].Kind.IsJump() {
						totalJumps++
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			if cases == 0 {
				continue
			}
			fmt.Fprintf(out, "%-22s %-13s %12.2f %12.2f %10d\n",
				ae.name, corpus,
				float64(totalStmts)/float64(cases),
				float64(totalJumps)/float64(cases), cases)
		}
	}
	return nil
}

var soundnessInputs = [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}, {8, 8, -8, 8}, {0, 0, 0, 1, 1, 1}}

// sound checks one slice against the original on the shared inputs.
func sound(orig *lang.Program, s *core.Slice) (bool, error) {
	sliced := s.Materialize()
	for _, in := range soundnessInputs {
		want, err := interp.Observe(orig, in, s.Criterion.Var, s.Criterion.Line)
		if err != nil {
			return false, err
		}
		got, err := interp.Observe(sliced, in, s.Criterion.Var, s.Criterion.Line)
		if errors.Is(err, interp.ErrStepBudget) {
			return false, nil // diverging slice: definitely wrong
		}
		if err != nil {
			return false, err
		}
		if !reflect.DeepEqual(got, want) {
			return false, nil
		}
	}
	return true, nil
}

// soundness prints E2: fraction of criteria whose slice reproduces the
// original observations.
func soundness(out io.Writer, seeds, stmts int) error {
	fmt.Fprintf(out, "\nE2: semantic soundness under interpretation (%d inputs/case)\n", len(soundnessInputs))
	fmt.Fprintf(out, "%-22s %-13s %10s %10s %9s\n", "algorithm", "corpus", "sound", "cases", "rate")
	gens := corpora(seeds, stmts)
	for _, corpus := range corpusNames() {
		gen := gens[corpus]
		for _, ae := range algorithms() {
			var ok, cases int
			err := forEach(gen, seeds, func(a *core.Analysis, c core.Criterion) error {
				if ae.structured && !a.Structured() {
					return nil
				}
				s, err := ae.run(a, c)
				if err != nil {
					if errors.Is(err, core.ErrUnstructured) {
						return nil
					}
					return err
				}
				good, err := sound(a.Prog, s)
				if err != nil {
					return err
				}
				cases++
				if good {
					ok++
				}
				return nil
			})
			if err != nil {
				return err
			}
			if cases == 0 {
				continue
			}
			fmt.Fprintf(out, "%-22s %-13s %10d %10d %8.1f%%\n",
				ae.name, corpus, ok, cases, 100*float64(ok)/float64(cases))
		}
	}
	return nil
}

// traversals prints E4: distribution of Figure 7 traversal counts.
func traversals(out io.Writer, seeds, stmts int) error {
	fmt.Fprintf(out, "\nE4: Figure 7 postdominator-tree traversal counts (total, incl. final empty pass)\n")
	gens := corpora(seeds, stmts)
	for _, corpus := range corpusNames() {
		gen := gens[corpus]
		hist := map[int]int{}
		err := forEach(gen, seeds, func(a *core.Analysis, c core.Criterion) error {
			s, err := a.Agrawal(c)
			if err != nil {
				return err
			}
			hist[s.Traversals]++
			return nil
		})
		if err != nil {
			return err
		}
		var keys []int
		for k := range hist {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(out, "%-13s:", corpus)
		for _, k := range keys {
			fmt.Fprintf(out, "  %d traversals ×%d", k, hist[k])
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, "(the paper's Section 4 claims one productive traversal suffices for structured")
	fmt.Fprintln(out, " programs; measured, rare closure-driven cases need a second — see EXPERIMENTS.md)")
	return nil
}

// dynamic prints E6: how much smaller dynamic slices are than static
// ones, per input profile.
func dynamic(out io.Writer, seeds, stmts int) error {
	fmt.Fprintf(out, "\nE6: dynamic slice size as a fraction of the static (Figure 7) slice\n")
	profiles := map[string][]int64{
		"empty input": nil,
		"short input": {1, -2},
		"mixed input": {3, -1, 4, 0, 5, -9, 2},
	}
	gens := corpora(seeds, stmts)
	for _, corpus := range corpusNames() {
		gen := gens[corpus]
		for _, name := range []string{"empty input", "short input", "mixed input"} {
			in := profiles[name]
			var dynTotal, statTotal, cases int
			err := forEach(gen, seeds, func(a *core.Analysis, c core.Criterion) error {
				static, err := a.Agrawal(c)
				if err != nil {
					return err
				}
				dyn, err := dynslice.Slice(a, c, dynslice.Options{Input: in})
				if err != nil {
					return err
				}
				dynTotal += len(dyn.StatementNodes())
				statTotal += len(static.StatementNodes())
				cases++
				return nil
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-13s %-12s dynamic %6.2f vs static %6.2f stmts (%.0f%%), %d cases\n",
				corpus, name,
				float64(dynTotal)/float64(cases), float64(statTotal)/float64(cases),
				100*float64(dynTotal)/float64(statTotal), cases)
		}
	}
	return nil
}

// timing prints E3: mean analysis+slice time per algorithm at a few
// program sizes.
func timing(out io.Writer, _ int) error {
	fmt.Fprintf(out, "\nE3: wall-clock per slice (analysis excluded), mean of repeated runs\n")
	sizes := []int{20, 60, 180, 540}
	fmt.Fprintf(out, "%-22s", "algorithm")
	for _, n := range sizes {
		fmt.Fprintf(out, " %12s", fmt.Sprintf("~%d stmts", n))
	}
	fmt.Fprintln(out)
	for _, ae := range algorithms() {
		fmt.Fprintf(out, "%-22s", ae.name)
		for _, n := range sizes {
			p := progen.Structured(progen.Config{Seed: 1, Stmts: n})
			a, err := core.Analyze(p)
			if err != nil {
				return err
			}
			crits := progen.WriteCriteria(p)
			c := core.Criterion{Var: crits[len(crits)-1].Var, Line: crits[len(crits)-1].Line}
			if ae.structured && !a.Structured() {
				fmt.Fprintf(out, " %12s", "n/a")
				continue
			}
			const reps = 50
			start := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := ae.run(a, c); err != nil {
					return err
				}
			}
			fmt.Fprintf(out, " %12s", time.Since(start)/reps)
		}
		fmt.Fprintln(out)
	}
	return nil
}
