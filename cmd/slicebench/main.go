// Command slicebench runs the repository's quantitative experiments
// (EXPERIMENTS.md, tables E1–E4 and E6–E8) over generated program
// corpora:
//
//	slicebench -exp precision   # E1: slice sizes per algorithm
//	slicebench -exp soundness   # E2: semantic correctness rates
//	slicebench -exp timing      # E3: wall-clock scaling
//	slicebench -exp traversals  # E4: PDT traversal distribution
//	slicebench -exp dynamic     # E6: dynamic vs static slice sizes
//	slicebench -exp incr        # E7: incremental re-analysis tiers
//	slicebench -exp sdg         # E8: interprocedural (SDG) slicing
//	slicebench -exp cluster     # E9: consistent-hash fleet routing
//	slicebench -exp all
//
// Corpus shape is controlled by -seeds and -stmts. Corpus programs
// are fanned out over a worker pool sized by -parallel (default: the
// machine's GOMAXPROCS); results are reduced in seed order, so two
// runs print identical tables at any parallelism (timing rows vary
// with the machine, of course). -json FILE additionally writes every
// computed table as machine-readable JSON, letting the performance
// trajectory be tracked across commits.
//
// Observability flags:
//
//	-metrics FILE     write the pipeline metrics snapshot (phase span
//	                  histograms, traversal/jump counters, closure
//	                  cache statistics) as JSON; counter values are
//	                  identical at any -parallel
//	-trace FILE       journal trace events (phase spans, traversal
//	                  passes, jump admissions with rule evidence,
//	                  closure-cache activity) into a flight recorder
//	                  sized by -flight and write them as Chrome
//	                  trace_event JSON, loadable in chrome://tracing
//	                  and Perfetto; -json reports then carry the
//	                  flight recorder's written/dropped accounting
//	-flight N         flight recorder capacity in events (with -trace)
//	-cpuprofile FILE  write a runtime/pprof CPU profile of the run
//	-memprofile FILE  write a heap profile at exit
//
// With -cache the run shares one analysis cache across its
// experiments: every table regenerates the same (seed, stmts)
// programs, so an -exp all run analyzes each program once and later
// experiments rebind the cached analysis instead of re-running the
// pipeline. -cache-bytes bounds the cache; the run's closing summary
// and -json reports carry the reuse and byte accounting.
//
// The experiment engines live in internal/exps; this command only
// parses flags and renders tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"jumpslice/internal/exps"
	"jumpslice/internal/obs"
	"jumpslice/internal/slicecache"
)

func main() {
	// Interrupts cancel the run cooperatively: the worker pool stops
	// dispatching seeds and in-flight analyses abort at their next
	// cancellation check, so profiles and deferred cleanup still run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slicebench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slicebench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: precision|soundness|timing|traversals|dynamic|incr|sdg|cluster|all")
	seeds := fs.Int("seeds", 100, "number of generated programs per corpus")
	stmts := fs.Int("stmts", 30, "approximate statements per program")
	parallel := fs.Int("parallel", exps.DefaultParallel(), "worker pool size for corpus evaluation")
	jsonPath := fs.String("json", "", "also write results as JSON to this file")
	cache := fs.Bool("cache", false, "share one analysis cache across the run's experiments")
	cacheBytes := fs.Int64("cache-bytes", slicecache.DefaultMaxBytes, "analysis cache budget in bytes (with -cache)")
	metricsPath := fs.String("metrics", "", "write the pipeline metrics snapshot as JSON to this file")
	tracePath := fs.String("trace", "", "write the run's trace as Chrome trace_event JSON to this file")
	flight := fs.Int("flight", 1<<16, "flight recorder capacity in events (used with -trace)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// The registry is attached whenever any output wants metrics; the
	// experiments themselves run with the no-op recorder otherwise.
	var reg *obs.Registry
	o := exps.Options{Seeds: *seeds, Stmts: *stmts, Parallel: *parallel, Context: ctx}
	if *metricsPath != "" || *jsonPath != "" {
		reg = obs.NewRegistry()
		o.Recorder = reg
		// Runtime vitals ride along in the same registry; Scrub drops
		// every runtime.* instrument before snapshots are compared, so
		// the sampler never perturbs cross-parallelism determinism.
		sampler := obs.StartRuntimeSampler(reg, 500*time.Millisecond)
		defer sampler.Stop()
	}
	var fr *obs.FlightRecorder
	if *tracePath != "" {
		fr = obs.NewFlightRecorder(*flight)
		o.Tracer = obs.NewTracer(fr)
	}
	if *cache {
		o.Cache = slicecache.New(slicecache.Options{MaxBytes: *cacheBytes, Recorder: o.Recorder})
	}
	report := &exps.Report{Seeds: o.Seeds, Stmts: o.Stmts, Parallel: o.Parallel}

	steps := map[string]func() error{
		"precision": func() error {
			rows, err := exps.Precision(o)
			if err != nil {
				return err
			}
			report.E1 = rows
			printPrecision(out, o, rows)
			return nil
		},
		"soundness": func() error {
			rows, err := exps.Soundness(o)
			if err != nil {
				return err
			}
			report.E2 = rows
			printSoundness(out, rows)
			return nil
		},
		"timing": func() error {
			rows, err := exps.Timing(o)
			if err != nil {
				return err
			}
			report.E3 = rows
			printTiming(out, rows)
			return nil
		},
		"traversals": func() error {
			rows, err := exps.Traversals(o)
			if err != nil {
				return err
			}
			report.E4 = rows
			printTraversals(out, rows)
			return nil
		},
		"dynamic": func() error {
			rows, err := exps.Dynamic(o)
			if err != nil {
				return err
			}
			report.E6 = rows
			printDynamic(out, rows)
			return nil
		},
		"incr": func() error {
			rows, err := exps.Incr(o)
			if err != nil {
				return err
			}
			report.E7 = rows
			printIncr(out, rows)
			return nil
		},
		"sdg": func() error {
			rows, err := exps.SDG(o)
			if err != nil {
				return err
			}
			report.E8 = rows
			printSDG(out, o, rows)
			return nil
		},
		"cluster": func() error {
			rows, err := exps.Cluster(o)
			if err != nil {
				return err
			}
			report.E9 = rows
			printCluster(out, o, rows)
			return nil
		},
	}

	var order []string
	switch *exp {
	case "all":
		// Wall-clock tables (E3, E7) print after the deterministic ones
		// so byte-comparing runs only has to strip a suffix.
		order = []string{"precision", "soundness", "traversals", "dynamic", "cluster", "timing", "incr", "sdg"}
	default:
		if steps[*exp] == nil {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		order = []string{*exp}
	}
	for _, name := range order {
		if err := steps[name](); err != nil {
			return err
		}
	}
	if reg != nil {
		report.Metrics = reg.Snapshot()
	}
	report.Trace = exps.TraceStatsOf(fr)
	if o.Cache != nil {
		st := o.Cache.Stats()
		report.Cache = &st
		// Printed totals are scheduling-independent: misses count the
		// distinct programs analyzed (singleflight guarantees one build
		// per key) and hits+coalesced count every analysis avoided,
		// however the worker pool interleaved.
		fmt.Fprintf(out, "\ncache: %d analyses reused (%d built, %d bytes resident)\n",
			st.Hits+st.Coalesced, st.Misses, st.Bytes)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, fr.Events()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote chrome trace to %s (%d events buffered, %d written, %d dropped)\n",
			*tracePath, report.Trace.Buffered, report.Trace.Written, report.Trace.Dropped)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote JSON results to %s\n", *jsonPath)
	}
	if *metricsPath != "" {
		data, err := json.MarshalIndent(report.Metrics, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metricsPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote metrics snapshot to %s\n", *metricsPath)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, report *exps.Report) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printPrecision(out io.Writer, o exps.Options, rows []exps.PrecisionRow) {
	fmt.Fprintf(out, "\nE1: slice precision (mean over %d programs/corpus, ~%d statements each)\n", o.Seeds, o.Stmts)
	fmt.Fprintf(out, "%-22s %-13s %12s %12s %10s\n", "algorithm", "corpus", "mean stmts", "mean jumps", "cases")
	for _, r := range rows {
		fmt.Fprintf(out, "%-22s %-13s %12.2f %12.2f %10d\n",
			r.Algorithm, r.Corpus, r.MeanStmts, r.MeanJumps, r.Cases)
	}
}

func printSoundness(out io.Writer, rows []exps.SoundnessRow) {
	fmt.Fprintf(out, "\nE2: semantic soundness under interpretation (%d inputs/case)\n", len(exps.SoundnessInputs))
	fmt.Fprintf(out, "%-22s %-13s %10s %10s %9s\n", "algorithm", "corpus", "sound", "cases", "rate")
	for _, r := range rows {
		fmt.Fprintf(out, "%-22s %-13s %10d %10d %8.1f%%\n", r.Algorithm, r.Corpus, r.Sound, r.Cases, r.Rate())
	}
}

func printTraversals(out io.Writer, rows []exps.TraversalRow) {
	fmt.Fprintf(out, "\nE4: Figure 7 postdominator-tree traversal counts (total, incl. final empty pass)\n")
	for _, r := range rows {
		fmt.Fprintf(out, "%-13s:", r.Corpus)
		for _, bin := range r.Counts {
			fmt.Fprintf(out, "  %d traversals ×%d", bin.Traversals, bin.Cases)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, "(the paper's Section 4 claims one productive traversal suffices for structured")
	fmt.Fprintln(out, " programs; measured, rare closure-driven cases need a second — see EXPERIMENTS.md)")
}

func printDynamic(out io.Writer, rows []exps.DynamicRow) {
	fmt.Fprintf(out, "\nE6: dynamic slice size as a fraction of the static (Figure 7) slice\n")
	for _, r := range rows {
		fmt.Fprintf(out, "%-13s %-12s dynamic %6.2f vs static %6.2f stmts (%.0f%%), %d cases\n",
			r.Corpus, r.Profile, r.DynamicStmts, r.StaticStmts,
			100*r.DynamicStmts/r.StaticStmts, r.Cases)
	}
}

func printIncr(out io.Writer, rows []exps.IncrRow) {
	fmt.Fprintf(out, "\nE7: incremental re-analysis over replayed edit scripts\n")
	fmt.Fprintf(out, "%-13s %7s %8s %8s %6s %12s %12s %8s\n",
		"corpus", "edits", "patched", "partial", "full", "mean incr", "mean cold", "ratio")
	for _, r := range rows {
		fmt.Fprintf(out, "%-13s %7d %8d %8d %6d %12s %12s %7.1f%%\n",
			r.Corpus, r.Edits, r.Patched, r.Partial, r.Full,
			time.Duration(r.MeanIncrNs).Round(time.Microsecond),
			time.Duration(r.MeanColdNs).Round(time.Microsecond),
			100*r.MeanRatio)
	}
}

func printSDG(out io.Writer, o exps.Options, rows []exps.SDGRow) {
	fmt.Fprintf(out, "\nE8: interprocedural (SDG) slicing, %d program sets per procedure count\n", o.Seeds)
	fmt.Fprintf(out, "%6s %6s %7s %10s %10s %9s %8s %12s %12s\n",
		"procs", "sets", "cases", "mean stmt", "mean jump", "summary", "rounds", "cold/slice", "warm/slice")
	for _, r := range rows {
		fmt.Fprintf(out, "%6d %6d %7d %10.2f %10.2f %9.1f %8.1f %12s %12s\n",
			r.Procs, r.Sets, r.Cases, r.MeanLines, r.MeanJumps, r.MeanSummary, r.MeanRounds,
			time.Duration(r.MeanColdNs).Round(time.Microsecond),
			time.Duration(r.MeanWarmNs).Round(time.Microsecond))
	}
}

func printCluster(out io.Writer, o exps.Options, rows []exps.ClusterRow) {
	fmt.Fprintf(out, "\nE9: consistent-hash fleet routing over %d content-addressed programs\n", o.Seeds)
	fmt.Fprintf(out, "%6s %8s %9s %10s %10s %12s\n",
		"nodes", "keys", "balance", "remote", "hot node", "moved/leave")
	for _, r := range rows {
		fmt.Fprintf(out, "%6d %8d %9.3f %9.1f%% %9.1f%% %11.1f%%\n",
			r.Nodes, r.Keys, r.Balance, 100*r.RemoteRate, 100*r.HotShare, 100*r.MovedOnLeave)
	}
	fmt.Fprintln(out, "(remote = requests a random-ingress node must proxy or peer-fill; consistent")
	fmt.Fprintln(out, " hashing keeps moved/leave near 1/n where rehashing would move (n-1)/n)")
}

func printTiming(out io.Writer, rows []exps.TimingRow) {
	fmt.Fprintf(out, "\nE3: wall-clock per slice (analysis excluded), mean of repeated runs\n")
	fmt.Fprintf(out, "%-22s", "algorithm")
	for _, n := range exps.TimingSizes {
		fmt.Fprintf(out, " %12s", fmt.Sprintf("~%d stmts", n))
	}
	fmt.Fprintln(out)
	for _, r := range rows {
		fmt.Fprintf(out, "%-22s", r.Algorithm)
		for _, d := range r.Cells {
			if d < 0 {
				fmt.Fprintf(out, " %12s", "n/a")
				continue
			}
			fmt.Fprintf(out, " %12s", d)
		}
		fmt.Fprintln(out)
	}
}
