package main

import (
	"strings"
	"testing"
)

func TestPrecisionTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "precision", "-seeds", "8", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1:", "conventional", "agrawal (Fig 7)", "lyle", "unstructured"} {
		if !strings.Contains(out, want) {
			t.Errorf("precision table missing %q", want)
		}
	}
}

func TestSoundnessTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "soundness", "-seeds", "6", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E2:") || !strings.Contains(out, "100.0%") {
		t.Errorf("soundness table malformed:\n%s", out)
	}
}

func TestTraversalsTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "traversals", "-seeds", "10", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E4:") || !strings.Contains(out, "traversals ×") {
		t.Errorf("traversal table malformed:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "nope"}, &sb); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestDeterministicTables(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-exp", "precision", "-seeds", "5", "-stmts", "15"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "precision", "-seeds", "5", "-stmts", "15"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("precision table not deterministic")
	}
}

func TestDynamicTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "dynamic", "-seeds", "5", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E6:") || !strings.Contains(sb.String(), "dynamic") {
		t.Errorf("dynamic table malformed:\n%s", sb.String())
	}
}
