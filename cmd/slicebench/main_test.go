package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jumpslice/internal/exps"
	"jumpslice/internal/obs"
)

func TestPrecisionTable(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "precision", "-seeds", "8", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1:", "conventional", "agrawal (Fig 7)", "lyle", "unstructured"} {
		if !strings.Contains(out, want) {
			t.Errorf("precision table missing %q", want)
		}
	}
}

func TestSoundnessTable(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "soundness", "-seeds", "6", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E2:") || !strings.Contains(out, "100.0%") {
		t.Errorf("soundness table malformed:\n%s", out)
	}
}

func TestTraversalsTable(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "traversals", "-seeds", "10", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E4:") || !strings.Contains(out, "traversals ×") {
		t.Errorf("traversal table malformed:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "nope"}, &sb); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestDeterministicTables(t *testing.T) {
	var a, b strings.Builder
	if err := run(context.Background(), []string{"-exp", "precision", "-seeds", "5", "-stmts", "15"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-exp", "precision", "-seeds", "5", "-stmts", "15"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("precision table not deterministic")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	var serial, parallel strings.Builder
	args := []string{"-exp", "precision", "-seeds", "8", "-stmts", "20"}
	if err := run(context.Background(), append(args, "-parallel", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-parallel", "4"), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel run differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestCacheParallelMatchesSerial extends the byte-identical-tables
// guarantee to cached runs: with -cache, a parallel run prints the
// same tables and the same cache summary as a serial one. The summary
// only exposes scheduling-independent totals — misses count distinct
// programs (singleflight runs one build per key) and hits+coalesced
// count every reuse, however the pool interleaved them.
func TestCacheParallelMatchesSerial(t *testing.T) {
	var serial, parallel strings.Builder
	args := []string{"-exp", "all", "-seeds", "4", "-stmts", "15", "-cache"}
	if err := run(context.Background(), append(args, "-parallel", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-parallel", "8"), &parallel); err != nil {
		t.Fatal(err)
	}
	// The E3 cells are wall-clock measurements — nondeterministic by
	// nature, cache or not — so compare everything around them: the
	// deterministic tables before and the cache summary after.
	split := func(s string) (tables, summary string) {
		t.Helper()
		i := strings.Index(s, "\nE3:")
		j := strings.LastIndex(s, "\ncache: ")
		if i < 0 || j < 0 {
			t.Fatalf("output missing E3 table or cache summary:\n%s", s)
		}
		return s[:i], s[j:]
	}
	st, ss := split(serial.String())
	pt, ps := split(parallel.String())
	if st != pt {
		t.Errorf("cached parallel tables differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", st, pt)
	}
	if ss != ps {
		t.Errorf("cache summary differs across parallelism: %q vs %q", ss, ps)
	}
}

// TestCacheReuseAcrossExperiments asserts the point of -cache: an -all
// run analyzes each generated program once and reuses it for every
// later experiment, and the -json report embeds the accounting.
func TestCacheReuseAcrossExperiments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "all", "-seeds", "4", "-stmts", "15",
		"-cache", "-json", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report exps.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Cache == nil {
		t.Fatal("-cache -json report has no cache snapshot")
	}
	st := report.Cache
	// E1, E2, E4 and E6 each analyze 4 seeds × 2 corpora over the same
	// programs, and E3 analyzes 4 sizes × 11 rows of one program each:
	// misses = 8 corpus programs + 4 timing programs, everything else
	// reused.
	if st.Misses != 12 {
		t.Errorf("misses = %d, want 12 distinct programs (stats: %+v)", st.Misses, st)
	}
	if st.Hits+st.Coalesced == 0 {
		t.Errorf("no analyses reused across experiments (stats: %+v)", st)
	}
	if st.Bytes <= 0 || st.Entries != 12 {
		t.Errorf("ledger = %d bytes %d entries, want positive bytes and 12 entries", st.Bytes, st.Entries)
	}
	if !strings.Contains(sb.String(), "cache: ") {
		t.Errorf("run printed no cache summary:\n%s", sb.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "precision", "-seeds", "5", "-stmts", "15", "-json", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote JSON results to") {
		t.Errorf("missing JSON confirmation line:\n%s", sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report exps.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if report.Seeds != 5 || report.Stmts != 15 {
		t.Errorf("report options = (%d seeds, %d stmts), want (5, 15)", report.Seeds, report.Stmts)
	}
	if len(report.E1) == 0 {
		t.Error("report.E1 empty after round-trip")
	}
	back, err := json.Marshal(&report)
	if err != nil {
		t.Fatal(err)
	}
	var again exps.Report
	if err := json.Unmarshal(back, &again); err != nil {
		t.Fatalf("re-marshaled JSON does not parse: %v", err)
	}
	if len(again.E1) != len(report.E1) {
		t.Errorf("round-trip changed E1 length: %d vs %d", len(again.E1), len(report.E1))
	}
}

func TestDynamicTable(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "dynamic", "-seeds", "5", "-stmts", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E6:") || !strings.Contains(sb.String(), "dynamic") {
		t.Errorf("dynamic table malformed:\n%s", sb.String())
	}
}

// TestMetricsParallelDeterminism is the observability determinism
// guarantee: with a recorder attached, the tables and the metrics
// snapshot are byte-identical at any parallelism — counters and
// histogram observation counts are commutative atomic sums reduced in
// a fixed order. Only the wall-clock *content* of the nanosecond span
// histograms (sum, bucket placement) legitimately varies run to run;
// Scrub removes exactly that before comparing.
func TestMetricsParallelDeterminism(t *testing.T) {
	runOnce := func(parallel string) (table string, metrics []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "metrics.json")
		var sb strings.Builder
		err := run(context.Background(), []string{"-exp", "precision", "-seeds", "8", "-stmts", "20",
			"-parallel", parallel, "-metrics", path}, &sb)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("metrics JSON does not parse: %v", err)
		}
		scrubbed, err := json.Marshal(snap.Scrub())
		if err != nil {
			t.Fatal(err)
		}
		// The table includes the metrics path, which differs per run;
		// strip the confirmation trailer before comparing.
		table = strings.Split(sb.String(), "\nwrote metrics snapshot")[0]
		return table, scrubbed
	}

	tableSerial, metricsSerial := runOnce("1")
	tableParallel, metricsParallel := runOnce("8")
	if tableSerial != tableParallel {
		t.Errorf("tables differ across parallelism:\n--- -parallel 1 ---\n%s\n--- -parallel 8 ---\n%s",
			tableSerial, tableParallel)
	}
	if !bytes.Equal(metricsSerial, metricsParallel) {
		t.Errorf("scrubbed metrics differ across parallelism:\n--- -parallel 1 ---\n%s\n--- -parallel 8 ---\n%s",
			metricsSerial, metricsParallel)
	}
}

// TestProfileFlags smoke-tests -cpuprofile and -memprofile: both
// files must exist and be non-empty after a run.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var sb strings.Builder
	err := run(context.Background(), []string{"-exp", "traversals", "-seeds", "3", "-stmts", "15",
		"-cpuprofile", cpu, "-memprofile", mem}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestTraceFlag smoke-tests -trace: the file must be valid Chrome
// trace_event JSON with at least one event, and a -json report from
// the same run must carry the flight recorder's drop accounting.
func TestTraceFlag(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	jsonPath := filepath.Join(dir, "out.json")
	var sb strings.Builder
	err := run(context.Background(), []string{"-exp", "traversals", "-seeds", "4", "-stmts", "15",
		"-trace", tracePath, "-flight", "1024", "-json", jsonPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote chrome trace to") {
		t.Errorf("missing trace confirmation line:\n%s", sb.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for i, ev := range trace.TraceEvents {
		if ev.Name == "" || (ev.Ph != "X" && ev.Ph != "i") {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}

	reportData, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report exps.Report
	if err := json.Unmarshal(reportData, &report); err != nil {
		t.Fatal(err)
	}
	if report.Trace == nil {
		t.Fatal("report.Trace missing with -trace set")
	}
	if report.Trace.Capacity != 1024 {
		t.Errorf("trace capacity = %d, want 1024", report.Trace.Capacity)
	}
	if report.Trace.Written == 0 {
		t.Error("flight recorder wrote no events")
	}
	if report.Trace.Written < uint64(report.Trace.Buffered) {
		t.Errorf("written %d < buffered %d", report.Trace.Written, report.Trace.Buffered)
	}
	if report.Trace.Dropped != report.Trace.Written-uint64(report.Trace.Buffered) {
		t.Errorf("drop accounting inconsistent: written %d, buffered %d, dropped %d",
			report.Trace.Written, report.Trace.Buffered, report.Trace.Dropped)
	}
}

// TestIncrTable covers E7 end to end: the printed table, the tier
// counts (the replayed script has one edit per tier per line, so the
// partition must be exact thirds), and the -json report rows.
func TestIncrTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "incr", "-seeds", "4", "-stmts", "20",
		"-json", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E7:", "patched", "partial", "full", "structured", "unstructured"} {
		if !strings.Contains(out, want) {
			t.Errorf("incr table missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report exps.Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.E7) != 2 {
		t.Fatalf("report.E7 has %d rows, want 2 corpora: %+v", len(report.E7), report.E7)
	}
	for _, r := range report.E7 {
		if r.Edits == 0 || r.Patched+r.Partial+r.Full != r.Edits {
			t.Errorf("%s: tier counts %d+%d+%d do not partition %d edits",
				r.Corpus, r.Patched, r.Partial, r.Full, r.Edits)
		}
		if r.Patched != r.Partial || r.Partial != r.Full {
			t.Errorf("%s: script replays one edit per tier per line, want equal thirds, got %d/%d/%d",
				r.Corpus, r.Patched, r.Partial, r.Full)
		}
		if r.MeanRatio <= 0 || r.MeanIncrNs <= 0 || r.MeanColdNs <= 0 {
			t.Errorf("%s: non-positive timing means: %+v", r.Corpus, r)
		}
	}
}
