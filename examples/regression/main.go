// Regression-test selection with slices: the "incremental regression
// testing" application the paper's introduction cites [2].
//
// A program produces three outputs, each checked by its own regression
// test. Version 2 changes one statement. A test needs to be rerun only
// if the changed line is in the backward slice of the output it
// checks: slices tell us which tests the edit can possibly affect.
// Because the edit sits behind a break statement, only a jump-aware
// slicer gets this right.
//
// Run with: go run ./examples/regression
package main

import (
	"fmt"
	"log"

	"jumpslice/internal/core"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
)

const v1 = `budget = 100;
spent = 0;
items = 0;
rejected = 0;
while (!eof()) {
read(cost);
if (cost > budget - spent) {
rejected = rejected + 1;
break; }
spent = spent + cost;
items = items + 1; }
write(items);
write(spent);
write(rejected);
`

// v2 changes line 8: rejected counts by 2 (say, an audit rule change).
const v2 = `budget = 100;
spent = 0;
items = 0;
rejected = 0;
while (!eof()) {
read(cost);
if (cost > budget - spent) {
rejected = rejected + 2;
break; }
spent = spent + cost;
items = items + 1; }
write(items);
write(spent);
write(rejected);
`

const changedLine = 8

func main() {
	oldProg, err := lang.Parse(v1)
	if err != nil {
		log.Fatal(err)
	}
	newProg, err := lang.Parse(v2)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := core.Analyze(oldProg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("version 2 changes line 8 (rejected counting)")
	fmt.Println()

	tests := []core.Criterion{
		{Var: "items", Line: 12},
		{Var: "spent", Line: 13},
		{Var: "rejected", Line: 14},
	}
	var rerun []core.Criterion
	for _, c := range tests {
		slice, err := analysis.Agrawal(c)
		if err != nil {
			log.Fatal(err)
		}
		affected := false
		for _, l := range slice.Lines() {
			if l == changedLine {
				affected = true
			}
		}
		verdict := "unaffected — skip its regression test"
		if affected {
			verdict = "AFFECTED — rerun its regression test"
			rerun = append(rerun, c)
		}
		fmt.Printf("test for %-12s slice lines %v\n    %s\n", c.String()+":", slice.Lines(), verdict)
	}

	// Validate the selection empirically: run both versions and check
	// that exactly the selected outputs changed.
	input := []int64{30, 40, 50, 10}
	oldRes, err := interp.Run(oldProg, interp.Options{Input: input})
	if err != nil {
		log.Fatal(err)
	}
	newRes, err := interp.Run(newProg, interp.Options{Input: input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nempirical check on input %v:\n", input)
	names := []string{"items", "spent", "rejected"}
	for i, name := range names {
		marker := " "
		if oldRes.Output[i] != newRes.Output[i] {
			marker = "*"
		}
		fmt.Printf("  %s %-9s v1=%-4d v2=%-4d\n", marker, name, oldRes.Output[i], newRes.Output[i])
	}
	fmt.Printf("\n%d of %d regression tests selected for rerun\n", len(rerun), len(tests))
}
