// Quickstart: parse a program, compute a slice, print it.
//
// The program is the paper's running example (Figure 5-a, the
// continue version). We slice with respect to the value of "positives"
// at line 14 and print three results: the wrong conventional slice,
// the correct slice computed by the paper's algorithm, and the jump
// statements the algorithm decided to keep.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jumpslice/internal/core"
	"jumpslice/internal/lang"
)

const program = `sum = 0;
positives = 0;
while (!eof()) {
read(x);
if (x <= 0) {
sum = sum + f1(x);
continue; }
positives = positives + 1;
if (x % 2 == 0) {
sum = sum + f2(x);
continue; }
sum = sum + f3(x); }
write(sum);
write(positives);
`

func main() {
	prog, err := lang.Parse(program)
	if err != nil {
		log.Fatal(err)
	}

	// One Analysis serves any number of slicing criteria.
	analysis, err := core.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}
	criterion := core.Criterion{Var: "positives", Line: 14}

	fmt.Println("== program ==")
	fmt.Print(lang.Format(prog, lang.PrintOptions{LineNumbers: true}))

	conventional, err := analysis.Conventional(criterion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== conventional slice w.r.t. %s (WRONG: counts every input) ==\n", criterion)
	fmt.Print(conventional.Format())

	slice, err := analysis.Agrawal(criterion)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Agrawal slice w.r.t. %s (correct) ==\n", criterion)
	fmt.Print(slice.Format())

	fmt.Println("\n== jump statements the algorithm added ==")
	for _, id := range slice.JumpsAdded {
		fmt.Printf("  line %d: %s\n",
			analysis.CFG.Nodes[id].Line, lang.StmtString(analysis.CFG.Nodes[id].Stmt))
	}
	fmt.Printf("\nslice lines: %v (the paper's Figure 5-c)\n", slice.Lines())
}
