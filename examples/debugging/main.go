// Debugging with slices: the fault-localization scenario the paper's
// introduction motivates ("program slices have applications in ...
// debugging").
//
// The program below is a small report generator with a planted bug:
// the early-exit guard uses a continue where the specification needs
// the accumulation to happen first, so "total" comes out wrong while
// "count" is fine. A developer staring at the whole program sees 24
// lines; the slice with respect to the wrong output narrows attention
// to the handful of statements that can possibly influence it — and
// the buggy continue is one of them, precisely because the slicing
// algorithm understands jump statements.
//
// Run with: go run ./examples/debugging
package main

import (
	"fmt"
	"log"

	"jumpslice/internal/core"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
)

const buggy = `count = 0;
total = 0;
maxv = 0;
while (!eof()) {
read(x);
if (x == 0) {
continue; }
count = count + 1;
if (x < 0) {
x = -x;
continue; }
total = total + x;
if (x > maxv) {
maxv = x; } }
write(count);
write(total);
write(maxv);
`

func main() {
	prog, err := lang.Parse(buggy)
	if err != nil {
		log.Fatal(err)
	}

	// Run the program: negative inputs should contribute their
	// absolute value to total (that is the spec), but the buggy
	// continue on line 11 skips the accumulation.
	input := []int64{3, -4, 0, 5}
	res, err := interp.Run(prog, interp.Options{Input: input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n", input)
	fmt.Printf("count=%d  total=%d (expected 12)  maxv=%d\n\n",
		res.Output[0], res.Output[1], res.Output[2])

	analysis, err := core.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}

	// total is wrong: slice on it.
	criterion := core.Criterion{Var: "total", Line: 16}
	slice, err := analysis.Agrawal(criterion)
	if err != nil {
		log.Fatal(err)
	}
	all := len(lang.Statements(prog))
	fmt.Printf("slice w.r.t. %s — %d of %d statements remain:\n\n",
		criterion, len(slice.Lines()), all)
	fmt.Print(slice.Format())

	fmt.Println("\nthe slice keeps both continues — each one changes whether")
	fmt.Println("'total = total + x' runs; the bug (line 11) is in the slice.")

	// Contrast: count is correct; its slice never mentions the bug.
	countSlice, err := analysis.Agrawal(core.Criterion{Var: "count", Line: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslice w.r.t. count@15 has lines %v —\n", countSlice.Lines())
	has11 := false
	for _, l := range countSlice.Lines() {
		if l == 11 {
			has11 = true
		}
	}
	if !has11 {
		fmt.Println("line 11 is NOT in it: the bug cannot affect count, so a")
		fmt.Println("developer debugging total need not re-examine count's logic.")
	}
}
