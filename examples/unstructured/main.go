// Unstructured control flow: slicing a program with arbitrary gotos.
//
// The program is the paper's Figure 10-a — the example that makes the
// general algorithm earn its do-until loop: it contains a pair of
// nodes (the two gotos on lines 4 and 7) where one postdominates the
// other while the other lexically succeeds the first, so a single
// preorder traversal of the postdominator tree is not enough.
//
// The example shows the traversal count, the order in which jumps are
// added, the label re-association step, and — for contrast — how the
// simplified structured algorithm rightly refuses the program.
//
// Run with: go run ./examples/unstructured
package main

import (
	"errors"
	"fmt"
	"log"

	"jumpslice/internal/core"
	"jumpslice/internal/lang"
)

const tangled = `if (c1()) {
goto L6;
L3: y = f1();
goto L8; }
z = g1();
L6: x = h1();
goto L3;
L8: write(x);
write(y);
write(z);
`

func main() {
	prog, err := lang.Parse(tangled)
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := core.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== program (paper Figure 10-a) ==")
	fmt.Print(lang.Format(prog, lang.PrintOptions{LineNumbers: true}))
	fmt.Printf("\nstructured program? %v\n", analysis.Structured())

	criterion := core.Criterion{Var: "y", Line: 9}
	slice, err := analysis.Agrawal(criterion)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n== slice w.r.t. %s (paper Figure 10-b) ==\n", criterion)
	fmt.Print(slice.Format())

	fmt.Printf("\npostdominator-tree traversals: %d\n", slice.Traversals)
	fmt.Println("jumps added, in discovery order:")
	for i, id := range slice.JumpsAdded {
		fmt.Printf("  %d. line %d: %s\n", i+1,
			analysis.CFG.Nodes[id].Line, lang.StmtString(analysis.CFG.Nodes[id].Stmt))
	}
	fmt.Println("(the goto on line 4 is only accepted on the second traversal,")
	fmt.Println(" after the goto on line 7 has become its nearest lexical successor)")

	fmt.Println("\nre-associated labels:")
	for label, line := range slice.RelabeledLines() {
		fmt.Printf("  %s -> line %d\n", label, line)
	}

	// The structured shortcut must refuse this program.
	if _, err := analysis.AgrawalStructured(criterion); errors.Is(err, core.ErrUnstructured) {
		fmt.Println("\nFigure 12 algorithm correctly refuses: the program is unstructured")
	}
}
