// Dynamic slicing: narrowing a slice to one concrete run — the
// debugging workflow of the paper's reference [1] (Agrawal, DeMillo &
// Spafford), built on top of the paper's jump-aware machinery.
//
// A static slice answers "what could influence this value"; a dynamic
// slice answers "what did influence it on this run". For a failure
// observed on a specific input, the dynamic slice is what a debugger
// wants: it drops every branch the run never took — and, thanks to
// the Figure 7 jump repair applied to the dynamic statement set, the
// result is still a runnable program that reproduces the failing
// observation.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"jumpslice/internal/core"
	"jumpslice/internal/dynslice"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
)

// The paper's Figure 5-a (the continue version of the running
// example).
const program = `sum = 0;
positives = 0;
while (!eof()) {
read(x);
if (x <= 0) {
sum = sum + f1(x);
continue; }
positives = positives + 1;
if (x % 2 == 0) {
sum = sum + f2(x);
continue; }
sum = sum + f3(x); }
write(sum);
write(positives);
`

func main() {
	prog, err := lang.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}
	c := core.Criterion{Var: "positives", Line: 14}

	static, err := a.Agrawal(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static slice w.r.t. %s: lines %v\n", c, static.Lines())

	// Run 1: only non-positive inputs — positives is never
	// incremented, and the dynamic slice drops the increment, its
	// guard's else-path, everything.
	in1 := []int64{-1, -2, -3}
	dyn1, err := dynslice.Slice(a, c, dynslice.Options{Input: in1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic slice for input %v: lines %v\n", in1, dyn1.Lines())
	fmt.Print(dyn1.Format())

	// Run 2: mixed inputs — both paths executed; the dynamic slice
	// approaches the static one.
	in2 := []int64{3, -1, 4}
	dyn2, err := dynslice.Slice(a, c, dynslice.Options{Input: in2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic slice for input %v: lines %v\n", in2, dyn2.Lines())

	// The defining property: on its own input, the dynamic slice
	// reproduces the original observations.
	for _, run := range []struct {
		in  []int64
		sl  *core.Slice
		tag string
	}{{in1, dyn1, "run 1"}, {in2, dyn2, "run 2"}} {
		orig, err := interp.Observe(prog, run.in, c.Var, c.Line)
		if err != nil {
			log.Fatal(err)
		}
		sliced, err := interp.Observe(run.sl.Materialize(), run.in, c.Var, c.Line)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: original observes %v, dynamic slice observes %v\n",
			run.tag, orig, sliced)
	}
}
