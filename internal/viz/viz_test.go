package viz

import (
	"fmt"
	"strings"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/paper"
)

func analyze(t *testing.T, f *paper.Figure) *core.Analysis {
	t.Helper()
	a, err := core.Analyze(f.Parse())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// checkDOT performs basic well-formedness checks: balanced braces, a
// digraph header, and no unescaped quotes inside labels.
func checkDOT(t *testing.T, name, dot string) {
	t.Helper()
	if !strings.HasPrefix(dot, "digraph ") {
		t.Errorf("%s: missing digraph header", name)
	}
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Errorf("%s: unbalanced braces", name)
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("%s: missing closing brace", name)
	}
}

func TestAllRenderersOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		a := analyze(t, f)
		opts := Options{Title: f.Name, LineLabels: true}
		renders := map[string]string{
			"cfg": CFG(a.CFG, opts),
			"pdt": Tree(a.CFG, a.PDT, opts),
			"lst": LST(a.CFG, a.LST, opts),
			"cdg": CDGGraph(a, opts),
			"ddg": DDGGraph(a, opts),
			"pdg": PDGGraph(a, opts),
		}
		for name, dot := range renders {
			checkDOT(t, f.Name+"/"+name, dot)
		}
	}
}

func TestCFGEdgeLabels(t *testing.T) {
	a := analyze(t, paper.Fig1())
	dot := CFG(a.CFG, Options{})
	if !strings.Contains(dot, `label="T"`) || !strings.Contains(dot, `label="F"`) {
		t.Errorf("flowgraph missing branch labels:\n%s", dot)
	}
}

func TestSwitchDispatchLabels(t *testing.T) {
	a := analyze(t, paper.Fig14())
	dot := CFG(a.CFG, Options{})
	for _, want := range []string{`label="1"`, `label="2"`, `label="3"`, `label="default"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("switch flowgraph missing %s", want)
		}
	}
}

func TestHighlightShadesSliceNodes(t *testing.T) {
	f := paper.Fig3()
	a := analyze(t, f)
	s, err := a.Agrawal(core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line})
	if err != nil {
		t.Fatal(err)
	}
	dot := CFG(a.CFG, Options{Highlight: SliceHighlight(s)})
	if got := strings.Count(dot, "fillcolor=gray80"); got < len(s.StatementNodes()) {
		t.Errorf("highlighted %d nodes, want at least %d", got, len(s.StatementNodes()))
	}
}

func TestJumpNodesThickOutline(t *testing.T) {
	a := analyze(t, paper.Fig3())
	dot := CFG(a.CFG, Options{})
	jumps := 0
	for _, n := range a.CFG.Nodes {
		if n.Kind.IsJump() {
			jumps++
		}
	}
	if got := strings.Count(dot, "penwidth=2.5"); got != jumps {
		t.Errorf("thick outlines = %d, want %d (one per jump)", got, jumps)
	}
}

func TestTreeRendersEachReachableNodeOnce(t *testing.T) {
	a := analyze(t, paper.Fig5())
	dot := Tree(a.CFG, a.PDT, Options{LineLabels: true})
	for _, n := range a.CFG.Nodes {
		if !a.PDT.Reachable(n.ID) {
			continue
		}
		decl := fmt.Sprintf("n%d [", n.ID)
		if strings.Count(dot, decl) != 1 {
			t.Errorf("node %d declared %d times", n.ID, strings.Count(dot, decl))
		}
	}
	// A tree on N nodes has N-1 edges.
	edges := strings.Count(dot, " -> ")
	nodes := strings.Count(dot, " [")
	if edges != nodes-1-1 { // minus the "node [fontname..." default line
		t.Errorf("tree has %d edges for %d node declarations", edges, nodes-1)
	}
}

func TestCDGIncludesEntryAsNodeZero(t *testing.T) {
	a := analyze(t, paper.Fig1())
	dot := CDGGraph(a, Options{})
	if !strings.Contains(dot, `label="entry"`) {
		t.Error("control dependence graph must show the dummy entry predicate")
	}
}

func TestPDGUsesDashedDataEdges(t *testing.T) {
	a := analyze(t, paper.Fig1())
	dot := PDGGraph(a, Options{})
	if !strings.Contains(dot, "style=dashed") {
		t.Error("program dependence graph should draw data edges dashed")
	}
}

func TestTitleEscaping(t *testing.T) {
	a := analyze(t, paper.Fig1())
	dot := CFG(a.CFG, Options{Title: `weird "quoted" title`})
	if !strings.Contains(dot, `\"quoted\"`) {
		t.Errorf("title not escaped:\n%s", dot[:200])
	}
}
