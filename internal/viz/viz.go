// Package viz renders the slicer's data structures in Graphviz DOT
// format: the control flowgraph, the postdominator tree, the control
// and data dependence graphs, the program dependence graph, and the
// lexical successor tree. Together these regenerate the paper's graph
// figures (2, 4, 6, 9, 11 and 15); cmd/paperfigs drives the rendering
// for every corpus program.
//
// Slice members can be highlighted (the figures' shaded nodes) and
// jump statements get the figures' thick outline.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
	"jumpslice/internal/dom"
	"jumpslice/internal/lst"
)

// Options controls rendering.
type Options struct {
	// Title is the graph label, e.g. "Figure 4-b: postdominator tree".
	Title string
	// Highlight marks nodes to shade (the slice members in the
	// paper's figures), keyed by node ID.
	Highlight map[int]bool
	// LineLabels, when set, labels nodes with their source line number
	// only — matching the paper's compact figures — instead of line
	// plus statement text.
	LineLabels bool
}

// nodeAttrs renders the attribute list for a flowgraph node.
func nodeAttrs(n *cfg.Node, opts Options) string {
	var label string
	switch {
	case n.Kind == cfg.KindEntry:
		label = "entry"
	case n.Kind == cfg.KindExit:
		label = "exit"
	case opts.LineLabels:
		label = fmt.Sprintf("%d", n.Line)
	default:
		label = fmt.Sprintf("%d: %s", n.Line, n.String()[len(fmt.Sprintf("%d:%s ", n.Line, n.Kind)):])
	}
	attrs := []string{fmt.Sprintf("label=%q", label)}
	if n.Kind.IsPredicate() || n.Kind == cfg.KindEntry {
		attrs = append(attrs, "shape=diamond")
	} else {
		attrs = append(attrs, "shape=ellipse")
	}
	if n.Kind.IsJump() {
		// The paper draws jump statements with thick outlines.
		attrs = append(attrs, "penwidth=2.5")
	}
	if opts.Highlight[n.ID] {
		attrs = append(attrs, `style=filled`, `fillcolor=gray80`)
	}
	return strings.Join(attrs, ", ")
}

func header(sb *strings.Builder, name string, opts Options) {
	fmt.Fprintf(sb, "digraph %q {\n", name)
	if opts.Title != "" {
		fmt.Fprintf(sb, "  label=%q;\n  labelloc=t;\n", opts.Title)
	}
	sb.WriteString("  node [fontname=\"Helvetica\"];\n")
}

func declareNodes(sb *strings.Builder, g *cfg.Graph, opts Options, include func(*cfg.Node) bool) {
	for _, n := range g.Nodes {
		if include != nil && !include(n) {
			continue
		}
		fmt.Fprintf(sb, "  n%d [%s];\n", n.ID, nodeAttrs(n, opts))
	}
}

// CFG renders the control flowgraph. Edge labels carry branch
// conditions (T/F, case values).
func CFG(g *cfg.Graph, opts Options) string {
	var sb strings.Builder
	header(&sb, "flowgraph", opts)
	declareNodes(&sb, g, opts, nil)
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Label != "" {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", e.From, e.To, e.Label)
			} else {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.From, e.To)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Tree renders a dominator-style tree (postdominator tree when built
// on the reverse flowgraph) with edges parent → child.
func Tree(g *cfg.Graph, t *dom.Tree, opts Options) string {
	var sb strings.Builder
	header(&sb, "postdominators", opts)
	declareNodes(&sb, g, opts, func(n *cfg.Node) bool { return t.Reachable(n.ID) })
	order := t.Preorder()
	for _, v := range order {
		for _, c := range t.Children(v) {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", v, c)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// LST renders the lexical successor tree, edges parent → child (a
// node's parent is its immediate lexical successor).
func LST(g *cfg.Graph, t *lst.Tree, opts Options) string {
	var sb strings.Builder
	header(&sb, "lexical_successors", opts)
	declareNodes(&sb, g, opts, func(n *cfg.Node) bool { return n.Kind != cfg.KindEntry })
	root := g.Exit.ID
	var visit func(v int)
	visit = func(v int) {
		for _, c := range t.Children(v) {
			if g.Nodes[c].Kind == cfg.KindEntry {
				continue
			}
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", v, c)
			visit(c)
		}
	}
	visit(root)
	sb.WriteString("}\n")
	return sb.String()
}

// CDGGraph renders the control dependence graph. Edge labels carry
// the branch label ("T", "F", case values). The dummy entry predicate
// is included, matching the paper's node 0.
func CDGGraph(a *core.Analysis, opts Options) string {
	var sb strings.Builder
	header(&sb, "control_dependence", opts)
	used := map[int]bool{}
	type edge struct {
		from, to int
		label    string
	}
	var edges []edge
	for _, n := range a.CFG.Nodes {
		for _, d := range a.CDG.Parents(n.ID) {
			edges = append(edges, edge{from: d.From, to: n.ID, label: d.Label})
			used[d.From] = true
			used[n.ID] = true
		}
	}
	declareNodes(&sb, a.CFG, opts, func(n *cfg.Node) bool { return used[n.ID] })
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", e.from, e.to, e.label)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DDGGraph renders the data dependence graph: an edge def → use for
// every flow dependence.
func DDGGraph(a *core.Analysis, opts Options) string {
	var sb strings.Builder
	header(&sb, "data_dependence", opts)
	used := map[int]bool{}
	for _, n := range a.CFG.Nodes {
		for _, d := range a.PDG.DataDeps(n.ID) {
			used[d] = true
			used[n.ID] = true
		}
	}
	declareNodes(&sb, a.CFG, opts, func(n *cfg.Node) bool { return used[n.ID] })
	for _, n := range a.CFG.Nodes {
		for _, d := range a.PDG.DataDeps(n.ID) {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", d, n.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// PDGGraph renders the merged program dependence graph: solid edges
// for control dependence, dashed for data dependence, as is
// conventional.
func PDGGraph(a *core.Analysis, opts Options) string {
	var sb strings.Builder
	header(&sb, "program_dependence", opts)
	used := map[int]bool{}
	for _, n := range a.CFG.Nodes {
		for _, d := range a.PDG.Deps(n.ID) {
			used[d] = true
			used[n.ID] = true
		}
	}
	declareNodes(&sb, a.CFG, opts, func(n *cfg.Node) bool { return used[n.ID] })
	for _, n := range a.CFG.Nodes {
		for _, d := range a.PDG.ControlDeps(n.ID) {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", d, n.ID)
		}
		for _, d := range a.PDG.DataDeps(n.ID) {
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed];\n", d, n.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// SliceHighlight builds an Options.Highlight map from a slice.
func SliceHighlight(s *core.Slice) map[int]bool {
	out := map[int]bool{}
	s.Nodes.ForEach(func(id int) { out[id] = true })
	return out
}
