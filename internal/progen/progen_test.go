package progen

import (
	"errors"
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
)

func TestStructuredDeterministic(t *testing.T) {
	a := lang.Format(Structured(Config{Seed: 7, Stmts: 30}), lang.PrintOptions{})
	b := lang.Format(Structured(Config{Seed: 7, Stmts: 30}), lang.PrintOptions{})
	if a != b {
		t.Error("same seed must generate the same program")
	}
	c := lang.Format(Structured(Config{Seed: 8, Stmts: 30}), lang.PrintOptions{})
	if a == c {
		t.Error("different seeds should generate different programs")
	}
}

func TestUnstructuredDeterministic(t *testing.T) {
	a := lang.Format(Unstructured(Config{Seed: 3, Stmts: 25}), lang.PrintOptions{})
	b := lang.Format(Unstructured(Config{Seed: 3, Stmts: 25}), lang.PrintOptions{})
	if a != b {
		t.Error("same seed must generate the same program")
	}
}

func TestStructuredProgramsTerminate(t *testing.T) {
	inputs := [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}}
	for seed := int64(0); seed < 60; seed++ {
		p := Structured(Config{Seed: seed, Stmts: 40})
		for _, in := range inputs {
			if _, err := interp.Run(p, interp.Options{Input: in, MaxSteps: 100000}); err != nil {
				t.Fatalf("seed %d input %v: %v\n%s", seed, in, err,
					lang.Format(p, lang.PrintOptions{LineNumbers: true}))
			}
		}
	}
}

func TestUnstructuredProgramsTerminate(t *testing.T) {
	inputs := [][]int64{nil, {4, 4, 4}, {9, -2, 0, 1}}
	for seed := int64(0); seed < 60; seed++ {
		p := Unstructured(Config{Seed: seed, Stmts: 30})
		for _, in := range inputs {
			_, err := interp.Run(p, interp.Options{Input: in, MaxSteps: 200000})
			if err != nil && !errors.Is(err, interp.ErrStepBudget) {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err != nil {
				t.Fatalf("seed %d: fuel guard failed — program did not terminate", seed)
			}
		}
	}
}

func TestWriteCriteriaNonEmpty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, gen := range []func(Config) *lang.Program{Structured, Unstructured} {
			p := gen(Config{Seed: seed, Stmts: 25})
			if len(WriteCriteria(p)) == 0 {
				t.Errorf("seed %d: generated program has no write criteria", seed)
			}
		}
	}
}

func TestGeneratedProgramsReparse(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for name, gen := range map[string]func(Config) *lang.Program{
			"structured":   Structured,
			"unstructured": Unstructured,
		} {
			p := gen(Config{Seed: seed, Stmts: 35})
			src := lang.Format(p, lang.PrintOptions{})
			if _, err := lang.Parse(src); err != nil {
				t.Errorf("%s seed %d: formatted output does not reparse: %v", name, seed, err)
			}
		}
	}
}

func TestUnstructuredHasJumps(t *testing.T) {
	jumps := 0
	for seed := int64(0); seed < 20; seed++ {
		p := Unstructured(Config{Seed: seed, Stmts: 30})
		lang.WalkProgram(p, func(s lang.Stmt) {
			if lang.IsJump(s) {
				jumps++
			}
		})
	}
	if jumps == 0 {
		t.Error("unstructured generator produced no jumps at all across 20 seeds")
	}
}

func TestStructuredHasStructuredJumps(t *testing.T) {
	found := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		p := Structured(Config{Seed: seed, Stmts: 50})
		lang.WalkProgram(p, func(s lang.Stmt) {
			switch s.(type) {
			case *lang.BreakStmt:
				found["break"] = true
			case *lang.ContinueStmt:
				found["continue"] = true
			case *lang.ReturnStmt:
				found["return"] = true
			case *lang.GotoStmt:
				found["goto"] = true
			}
		})
	}
	for _, kind := range []string{"break", "continue", "goto"} {
		if !found[kind] {
			t.Errorf("structured generator never produced a %s across 40 seeds", kind)
		}
	}
}

func TestGeneratedProgramsHaveNoDeadCode(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		for name, gen := range map[string]func(Config) *lang.Program{
			"structured":   Structured,
			"unstructured": Unstructured,
		} {
			p := gen(Config{Seed: seed, Stmts: 30})
			g, err := cfg.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			reach := g.Reachable()
			for _, n := range g.Nodes {
				if !reach[n.ID] {
					t.Errorf("%s seed %d: dead node %v", name, seed, n)
				}
			}
		}
	}
}
