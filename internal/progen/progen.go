// Package progen generates random lang programs for property-based
// testing and for the scaling benchmarks. Two generators are provided:
//
//   - Structured: nested if/while/switch programs whose only jumps are
//     break, continue, return and forward gotos within a block — every
//     jump's target is one of its lexical successors, so the programs
//     satisfy the paper's Section 4 definition of structured. Loops
//     decrement a dedicated fuel counter as their first body
//     statement, so every generated program terminates.
//   - Unstructured: flat goto programs in the style of the paper's
//     Figures 3 and 8, with arbitrary forward and backward branches.
//     Backward branches are guarded by a shared fuel counter, so these
//     programs terminate too.
//
// Generation is deterministic per seed. Programs are produced as
// source text and re-parsed, so every statement carries a real source
// position.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Config controls generation.
type Config struct {
	// Seed selects the pseudo-random stream; equal configs generate
	// equal programs.
	Seed int64
	// Stmts is the approximate number of statements to generate (per
	// procedure body for the MultiProc generator).
	Stmts int
	// MaxDepth bounds nesting of compound statements (structured
	// generator only).
	MaxDepth int
	// Vars is the number of distinct data variables (v0..v{n-1});
	// minimum 2.
	Vars int
	// Procs is the number of procedure declarations of a MultiProc
	// program set; the other generators ignore it.
	Procs int
}

func (c Config) normalized() Config {
	if c.Stmts <= 0 {
		c.Stmts = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.Vars < 2 {
		c.Vars = 4
	}
	if c.Procs <= 0 {
		c.Procs = 3
	}
	return c
}

// Structured generates a terminating structured program. The program
// ends with one write per variable, giving every variable a natural
// slicing criterion.
func Structured(cfg Config) *lang.Program {
	cfg = cfg.normalized()
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	var body []lang.Stmt
	// Initialize every variable so slices never depend on unread
	// memory.
	for i := 0; i < cfg.Vars; i++ {
		body = append(body, g.assignConst(i))
	}
	budget := cfg.Stmts
	// seq emits a bounded chunk; keep appending chunks until the
	// whole statement budget is spent, so Config.Stmts actually
	// controls program size.
	for budget > 0 {
		body = append(body, g.seq(&budget, cfg.MaxDepth, loopCtx{})...)
	}
	for i := 0; i < cfg.Vars; i++ {
		body = append(body, &lang.WriteStmt{Value: g.varRef(i)})
	}
	return removeDeadCode(reparse(body))
}

// loopCtx tracks what jump statements are legal at the generation
// point.
type loopCtx struct {
	inLoop   bool
	inSwitch bool
}

type generator struct {
	cfg    Config
	rng    *rand.Rand
	loopID int
	labels int
	// names, when set, replaces the default v0..v{n-1} variable pool —
	// the MultiProc generator points it at a procedure's parameters and
	// locals while generating that body.
	names []string
	// inProc marks procedure-body generation: read statements are
	// illegal there (the parser bans input in procedures) and return
	// statements are suppressed (a return would complicate the
	// inlining line map).
	inProc bool
}

func (g *generator) varName(i int) string {
	if g.names != nil {
		return g.names[i]
	}
	return fmt.Sprintf("v%d", i)
}

func (g *generator) varRef(i int) lang.Expr { return &lang.Ident{Name: g.varName(i)} }

func (g *generator) randVar() int {
	if g.names != nil {
		return g.rng.Intn(len(g.names))
	}
	return g.rng.Intn(g.cfg.Vars)
}

func (g *generator) assignConst(i int) lang.Stmt {
	return &lang.AssignStmt{Name: g.varName(i), Value: &lang.IntLit{Value: int64(g.rng.Intn(10))}}
}

// expr generates a small arithmetic expression over the data
// variables.
func (g *generator) expr() lang.Expr {
	switch g.rng.Intn(6) {
	case 0:
		return &lang.IntLit{Value: int64(g.rng.Intn(20) - 10)}
	case 1:
		return g.varRef(g.randVar())
	case 2:
		return &lang.BinaryExpr{
			Op: []string{"+", "-", "*"}[g.rng.Intn(3)],
			X:  g.varRef(g.randVar()),
			Y:  g.varRef(g.randVar()),
		}
	case 3:
		return &lang.BinaryExpr{
			Op: "+",
			X:  g.varRef(g.randVar()),
			Y:  &lang.IntLit{Value: int64(g.rng.Intn(7) + 1)},
		}
	case 4:
		return &lang.CallExpr{
			Name: fmt.Sprintf("f%d", g.rng.Intn(4)),
			Args: []lang.Expr{g.varRef(g.randVar())},
		}
	default:
		return &lang.BinaryExpr{
			Op: "%",
			X:  g.varRef(g.randVar()),
			Y:  &lang.IntLit{Value: int64(g.rng.Intn(5) + 2)},
		}
	}
}

// cond generates a boolean-ish expression.
func (g *generator) cond() lang.Expr {
	op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
	return &lang.BinaryExpr{Op: op, X: g.varRef(g.randVar()), Y: g.expr()}
}

// seq generates a statement sequence consuming the budget.
func (g *generator) seq(budget *int, depth int, ctx loopCtx) []lang.Stmt {
	var out []lang.Stmt
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n && *budget > 0; i++ {
		out = append(out, g.stmt(budget, depth, ctx))
	}
	// Occasionally thread a structured forward goto through the
	// sequence: "goto Lk;" guarded by a condition, landing on a later
	// statement of this very sequence.
	if len(out) >= 2 && g.rng.Intn(4) == 0 {
		g.labels++
		label := fmt.Sprintf("S%d", g.labels)
		at := g.rng.Intn(len(out)-1) + 1 // label position, after the goto
		out[at] = &lang.LabeledStmt{Label: label, Stmt: out[at]}
		jump := &lang.IfStmt{Cond: g.cond(), Then: &lang.GotoStmt{Label: label}}
		pos := g.rng.Intn(at) // goto strictly before the label
		out = append(out[:pos], append([]lang.Stmt{jump}, out[pos:]...)...)
	}
	return out
}

// stmt generates one statement.
func (g *generator) stmt(budget *int, depth int, ctx loopCtx) lang.Stmt {
	*budget--
	// Jump statements, when legal. Jumps are always guarded by a
	// predicate ("if (cond) { ...; continue; }" — the paper's Figure
	// 5 shape): an unguarded jump mid-sequence would make the rest of
	// the sequence unreachable, and the generated corpus is
	// deliberately free of dead code (the paper's examples all are,
	// and the Agrawal/Ball–Horwitz equivalence is stated for
	// dead-code-free programs; see DESIGN.md).
	if r := g.rng.Intn(20); r < 3 {
		var jump lang.Stmt
		switch {
		case r == 0 && ctx.inLoop:
			jump = &lang.ContinueStmt{}
		case r == 1 && (ctx.inLoop || ctx.inSwitch):
			jump = &lang.BreakStmt{}
		case r == 2 && !g.inProc && g.rng.Intn(4) == 0:
			jump = &lang.ReturnStmt{Value: g.varRef(g.randVar())}
		}
		if jump != nil {
			body := []lang.Stmt{}
			for i := g.rng.Intn(3); i > 0; i-- {
				body = append(body, g.simple())
			}
			body = append(body, jump)
			return &lang.IfStmt{Cond: g.cond(), Then: &lang.BlockStmt{List: body}}
		}
	}
	if depth > 0 && *budget > 2 {
		switch g.rng.Intn(6) {
		case 0: // if
			s := &lang.IfStmt{Cond: g.cond(), Then: g.block(budget, depth-1, ctx)}
			if g.rng.Intn(2) == 0 {
				s.Else = g.block(budget, depth-1, ctx)
			}
			return s
		case 1: // fuel-bounded while
			g.loopID++
			fuel := fmt.Sprintf("w%d", g.loopID)
			bound := int64(g.rng.Intn(4) + 2)
			inner := loopCtx{inLoop: true}
			body := []lang.Stmt{
				// The decrement leads the body so any continue below
				// it cannot loop forever.
				&lang.AssignStmt{Name: fuel, Value: &lang.BinaryExpr{
					Op: "-", X: &lang.Ident{Name: fuel}, Y: &lang.IntLit{Value: 1}}},
			}
			body = append(body, g.seq(budget, depth-1, inner)...)
			loop := &lang.WhileStmt{
				Cond: &lang.BinaryExpr{Op: ">", X: &lang.Ident{Name: fuel}, Y: &lang.IntLit{}},
				Body: &lang.BlockStmt{List: body},
			}
			return &lang.BlockStmt{List: []lang.Stmt{
				&lang.AssignStmt{Name: fuel, Value: &lang.IntLit{Value: bound}},
				loop,
			}}
		case 2: // switch
			tag := &lang.BinaryExpr{Op: "%", X: g.varRef(g.randVar()),
				Y: &lang.IntLit{Value: 3}}
			sw := &lang.SwitchStmt{Tag: tag}
			inner := loopCtx{inLoop: ctx.inLoop, inSwitch: true}
			ncases := g.rng.Intn(3) + 1
			for ci := 0; ci < ncases; ci++ {
				clause := &lang.CaseClause{Values: []int64{int64(ci)}}
				nb := g.rng.Intn(2) + 1
				for bi := 0; bi < nb && *budget > 0; bi++ {
					clause.Body = append(clause.Body, g.stmt(budget, depth-1, inner))
				}
				if g.rng.Intn(3) != 0 && !endsInJump(clause.Body) {
					// Usually break, sometimes fall through. Never
					// append after a trailing jump — that would be
					// dead code.
					clause.Body = append(clause.Body, &lang.BreakStmt{})
				}
				sw.Cases = append(sw.Cases, clause)
			}
			if g.rng.Intn(2) == 0 {
				sw.Cases = append(sw.Cases, &lang.CaseClause{
					IsDefault: true,
					Body:      []lang.Stmt{g.simple()},
				})
			}
			return sw
		}
	}
	return g.simple()
}

func (g *generator) block(budget *int, depth int, ctx loopCtx) lang.Stmt {
	return &lang.BlockStmt{List: g.seq(budget, depth, ctx)}
}

// simple generates an assignment, read, or write. Procedure bodies
// get an assignment where main would get a read.
func (g *generator) simple() lang.Stmt {
	switch g.rng.Intn(5) {
	case 0:
		if g.inProc {
			return &lang.AssignStmt{Name: g.varName(g.randVar()), Value: g.expr()}
		}
		return &lang.ReadStmt{Name: g.varName(g.randVar())}
	case 1:
		return &lang.WriteStmt{Value: g.expr()}
	default:
		return &lang.AssignStmt{Name: g.varName(g.randVar()), Value: g.expr()}
	}
}

// endsInJump reports whether a statement list ends in a bare jump.
func endsInJump(body []lang.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	return lang.IsJump(lang.Unlabel(body[len(body)-1]))
}

// reparse formats the generated AST and parses it back, assigning real
// source positions.
func reparse(body []lang.Stmt) *lang.Program {
	src := lang.Format(&lang.Program{Body: body}, lang.PrintOptions{})
	return lang.MustParse(src)
}

// removeDeadCode deletes statements unreachable from Entry and
// re-parses the program. The corpus is dead-code free by contract:
// the paper's examples all are, its equivalence claims implicitly
// assume it (dead jumps have different connectivity in the plain and
// augmented flowgraphs), and dead statements cannot affect any
// criterion anyway. One pass suffices — removing a dead region never
// disconnects a live one, because any goto into a region proves the
// region live.
func removeDeadCode(p *lang.Program) *lang.Program {
	g, err := cfg.Build(p)
	if err != nil {
		panic("progen: " + err.Error())
	}
	reach := g.Reachable()
	clean := true
	for _, n := range g.Nodes {
		if !reach[n.ID] {
			clean = false
			break
		}
	}
	if clean {
		return p
	}
	var filter func(list []lang.Stmt) []lang.Stmt
	live := func(s lang.Stmt) bool {
		n := g.EntryOf(s)
		return n != nil && reach[n.ID]
	}
	var filterStmt func(s lang.Stmt) lang.Stmt
	filterStmt = func(s lang.Stmt) lang.Stmt {
		if !live(s) {
			return nil
		}
		switch s := s.(type) {
		case *lang.LabeledStmt:
			inner := filterStmt(s.Stmt)
			if inner == nil {
				return nil
			}
			return &lang.LabeledStmt{P: s.P, Label: s.Label, Stmt: inner}
		case *lang.BlockStmt:
			return &lang.BlockStmt{P: s.P, List: filter(s.List)}
		case *lang.IfStmt:
			out := &lang.IfStmt{P: s.P, Cond: s.Cond, Then: filterStmt(s.Then)}
			if out.Then == nil {
				out.Then = &lang.BlockStmt{}
			}
			if s.Else != nil {
				out.Else = filterStmt(s.Else)
			}
			return out
		case *lang.WhileStmt:
			body := filterStmt(s.Body)
			if body == nil {
				body = &lang.BlockStmt{}
			}
			return &lang.WhileStmt{P: s.P, Cond: s.Cond, Body: body}
		case *lang.SwitchStmt:
			out := &lang.SwitchStmt{P: s.P, Tag: s.Tag}
			for _, c := range s.Cases {
				out.Cases = append(out.Cases, &lang.CaseClause{
					P: c.P, Values: c.Values, IsDefault: c.IsDefault,
					Body: filter(c.Body),
				})
			}
			return out
		default:
			return s
		}
	}
	filter = func(list []lang.Stmt) []lang.Stmt {
		var out []lang.Stmt
		for _, s := range list {
			if r := filterStmt(s); r != nil {
				out = append(out, r)
			}
		}
		return out
	}
	return reparse(filter(p.Body))
}

// Unstructured generates a terminating flat goto program in the style
// of the paper's Figures 3 and 8: straight-line statements, labels,
// and conditional/unconditional gotos in both directions. A shared
// fuel counter guards every backward branch.
func Unstructured(cfg Config) *lang.Program {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng}

	n := cfg.Stmts
	if n < 6 {
		n = 6
	}
	// Choose which of the n body slots carry labels.
	labeled := map[int]string{}
	nLabels := n/4 + 1
	for i := 0; i < nLabels; i++ {
		slot := rng.Intn(n)
		if _, ok := labeled[slot]; !ok {
			labeled[slot] = fmt.Sprintf("L%d", slot)
		}
	}

	var lines []string
	lines = append(lines, "fuel = 25;")
	for i := 0; i < cfg.Vars; i++ {
		lines = append(lines, fmt.Sprintf("%s = %d;", g.varName(i), rng.Intn(10)))
	}
	slotLabel := func(slot int) string {
		if l, ok := labeled[slot]; ok {
			return l + ": "
		}
		return ""
	}
	// Pick a goto target; prefer labels, any direction.
	targets := make([]int, 0, len(labeled))
	for slot := range labeled {
		targets = append(targets, slot)
	}
	for i := 0; i < len(targets); i++ {
		for j := i + 1; j < len(targets); j++ {
			if targets[j] < targets[i] {
				targets[i], targets[j] = targets[j], targets[i]
			}
		}
	}

	for slot := 0; slot < n; slot++ {
		prefix := slotLabel(slot)
		kind := rng.Intn(10)
		switch {
		case kind < 2 && len(targets) > 0: // conditional goto
			tgt := targets[rng.Intn(len(targets))]
			if tgt <= slot {
				// Backward branch: burn fuel first and guard on it.
				lines = append(lines,
					prefix+"fuel = fuel - 1;",
					fmt.Sprintf("if (fuel > 0 && %s) goto %s;",
						lang.ExprString(g.cond()), labeled[tgt]))
			} else {
				lines = append(lines, prefix+fmt.Sprintf("if (%s) goto %s;",
					lang.ExprString(g.cond()), labeled[tgt]))
			}
		case kind == 2 && len(targets) > 0: // unconditional forward goto
			// Emitted only when the very next slot carries a label, so
			// the jumped-over code stays reachable (the paper's Figure
			// 3 shape: "goto L13; L8: ..."). Anything else would be
			// dead code, which the corpus avoids by construction.
			var fwd []int
			for _, tslot := range targets {
				if tslot > slot {
					fwd = append(fwd, tslot)
				}
			}
			if _, nextLabeled := labeled[slot+1]; len(fwd) > 0 && nextLabeled {
				tgt := fwd[rng.Intn(len(fwd))]
				lines = append(lines, prefix+fmt.Sprintf("goto %s;", labeled[tgt]))
			} else {
				lines = append(lines, prefix+stmtText(g.simple()))
			}
		default:
			lines = append(lines, prefix+stmtText(g.simple()))
		}
	}
	for i := 0; i < cfg.Vars; i++ {
		lines = append(lines, fmt.Sprintf("write(%s);", g.varName(i)))
	}
	return removeDeadCode(lang.MustParse(strings.Join(lines, "\n") + "\n"))
}

// stmtText renders a generated simple statement as a single source
// line.
func stmtText(s lang.Stmt) string {
	return strings.TrimSpace(lang.FormatStmt(s, lang.PrintOptions{}))
}

// WriteCriteria returns (variable, line) pairs for every write
// statement whose argument is a plain variable — the natural slicing
// criteria of a generated program.
func WriteCriteria(p *lang.Program) []struct {
	Var  string
	Line int
} {
	var out []struct {
		Var  string
		Line int
	}
	lang.WalkProgram(p, func(s lang.Stmt) {
		w, ok := s.(*lang.WriteStmt)
		if !ok {
			return
		}
		if id, ok := w.Value.(*lang.Ident); ok {
			out = append(out, struct {
				Var  string
				Line int
			}{Var: id.Name, Line: w.P.Line})
		}
	})
	return out
}
