// Multi-procedure program-set generation and the inlining transform
// the SDG property tests compare against.
//
// MultiProc emits program sets of a deliberately restricted shape —
// straight-line main, each procedure called exactly once with
// distinct plain-identifier arguments — because that is exactly the
// shape where value-result parameter passing is equivalent to textual
// inlining: copying sum into s, running the body, and copying s back
// into sum is the same as running the body with s renamed to sum.
// InlineMain performs that renaming and returns the statement line
// map, so a test can check that the two-pass SDG slice of the
// program set coincides, line for line, with the intraprocedural
// Agrawal slice of the inlined program.
package progen

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"jumpslice/internal/lang"
)

// MultiProc generates a terminating multi-procedure program set:
// Config.Procs procedure declarations (each body budgeted at
// Config.Stmts statements, with the structured generator's loops,
// switches and guarded jumps) and a straight-line main that
// initializes Config.Vars variables, calls every procedure exactly
// once with distinct plain-identifier arguments, and ends with one
// write per variable — the natural slicing criteria. Procedure-local
// names (parameters p<i>_<j>, scratch locals t<i>, loop fuels, goto
// labels) are unique program-wide, so InlineMain only has to rename
// parameters.
func MultiProc(c Config) *lang.Program {
	c = c.normalized()
	g := &generator{cfg: c, rng: rand.New(rand.NewSource(c.Seed))}

	procs := make([]*lang.ProcDecl, c.Procs)
	for i := range procs {
		k := 2
		if c.Vars > 2 && g.rng.Intn(2) == 0 {
			k = 3
		}
		params := make([]string, k)
		for j := range params {
			params[j] = fmt.Sprintf("p%d_%d", i, j)
		}
		local := fmt.Sprintf("t%d", i)
		g.names = append(append([]string{}, params...), local)
		g.inProc = true
		body := []lang.Stmt{g.assignConst(len(g.names) - 1)} // locals start defined
		budget := c.Stmts
		for budget > 0 {
			body = append(body, g.seq(&budget, c.MaxDepth, loopCtx{})...)
		}
		g.inProc = false
		procs[i] = &lang.ProcDecl{Name: fmt.Sprintf("p%d", i), Params: params, Body: body}
	}

	mains := make([]string, c.Vars)
	for j := range mains {
		mains[j] = fmt.Sprintf("x%d", j)
	}
	g.names = mains
	var body []lang.Stmt
	for j := range mains {
		if g.rng.Intn(3) == 0 {
			body = append(body, &lang.ReadStmt{Name: mains[j]})
		} else {
			body = append(body, g.assignConst(j))
		}
	}
	for _, pd := range procs {
		for n := g.rng.Intn(3); n > 0; n-- {
			body = append(body, &lang.AssignStmt{Name: mains[g.randVar()], Value: g.expr()})
		}
		perm := g.rng.Perm(c.Vars)
		args := make([]lang.Expr, len(pd.Params))
		for j := range args {
			args[j] = &lang.Ident{Name: mains[perm[j]]}
		}
		body = append(body, &lang.CallStmt{Name: pd.Name, Args: args})
	}
	for j := range mains {
		body = append(body, &lang.WriteStmt{Value: &lang.Ident{Name: mains[j]}})
	}
	g.names = nil

	src := lang.Format(&lang.Program{Procs: procs, Body: body}, lang.PrintOptions{})
	return lang.MustParse(src)
}

// InlineMain inlines every procedure of a MultiProc-shaped program at
// its unique call site — parameters renamed to the argument
// variables, labels prefixed per procedure — and returns the inlined
// program together with the line map from inlined statement lines to
// original statement lines. Call statements vanish (their line has no
// image); every other statement maps one-to-one. The program must
// have the MultiProc shape: calls only at the top level of main, each
// procedure called exactly once, every argument a distinct plain
// identifier.
func InlineMain(p *lang.Program) (*lang.Program, map[int]int, error) {
	byName := map[string]*lang.ProcDecl{}
	for _, pd := range p.Procs {
		byName[pd.Name] = pd
	}
	called := map[string]int{}
	var inlined []lang.Stmt
	for _, s := range p.Body {
		call, ok := s.(*lang.CallStmt)
		if !ok {
			inlined = append(inlined, s)
			continue
		}
		pd := byName[call.Name]
		if pd == nil {
			return nil, nil, fmt.Errorf("progen: call to undeclared procedure %s", call.Name)
		}
		if called[call.Name]++; called[call.Name] > 1 {
			return nil, nil, fmt.Errorf("progen: procedure %s called more than once", call.Name)
		}
		ren := map[string]string{}
		seen := map[string]bool{}
		for j, a := range call.Args {
			id, ok := a.(*lang.Ident)
			if !ok {
				return nil, nil, fmt.Errorf("progen: argument %d of call %s is not a plain identifier", j, call.Name)
			}
			if seen[id.Name] {
				return nil, nil, fmt.Errorf("progen: call %s repeats argument %s", call.Name, id.Name)
			}
			seen[id.Name] = true
			ren[pd.Params[j]] = id.Name
		}
		prefix := "inl_" + pd.Name + "_"
		for _, bs := range pd.Body {
			inlined = append(inlined, renameStmt(bs, ren, prefix))
		}
	}
	src := lang.Format(&lang.Program{Body: inlined}, lang.PrintOptions{})
	q, err := lang.Parse(src)
	if err != nil {
		return nil, nil, fmt.Errorf("progen: inlined program does not parse: %w", err)
	}
	// The inlined body and the reparse have identical statement
	// structure, so a lockstep walk pairs every statement with its
	// original and records the line correspondence.
	lmap := map[int]int{}
	j := 0
	for _, s := range p.Body {
		if call, ok := s.(*lang.CallStmt); ok {
			for _, bs := range byName[call.Name].Body {
				if err := zipStmt(bs, q.Body[j], lmap); err != nil {
					return nil, nil, err
				}
				j++
			}
			continue
		}
		if err := zipStmt(s, q.Body[j], lmap); err != nil {
			return nil, nil, err
		}
		j++
	}
	return q, lmap, nil
}

// renameStmt deep-copies a statement, renaming identifiers through
// ren (parameter -> argument) and prefixing goto labels.
func renameStmt(s lang.Stmt, ren map[string]string, prefix string) lang.Stmt {
	name := func(n string) string {
		if r, ok := ren[n]; ok {
			return r
		}
		return n
	}
	switch s := s.(type) {
	case *lang.AssignStmt:
		return &lang.AssignStmt{Name: name(s.Name), Value: renameExpr(s.Value, ren)}
	case *lang.WriteStmt:
		return &lang.WriteStmt{Value: renameExpr(s.Value, ren)}
	case *lang.ReadStmt:
		return &lang.ReadStmt{Name: name(s.Name)}
	case *lang.IfStmt:
		out := &lang.IfStmt{Cond: renameExpr(s.Cond, ren), Then: renameStmt(s.Then, ren, prefix)}
		if s.Else != nil {
			out.Else = renameStmt(s.Else, ren, prefix)
		}
		return out
	case *lang.WhileStmt:
		return &lang.WhileStmt{Cond: renameExpr(s.Cond, ren), Body: renameStmt(s.Body, ren, prefix)}
	case *lang.SwitchStmt:
		out := &lang.SwitchStmt{Tag: renameExpr(s.Tag, ren)}
		for _, c := range s.Cases {
			nc := &lang.CaseClause{Values: c.Values, IsDefault: c.IsDefault}
			for _, bs := range c.Body {
				nc.Body = append(nc.Body, renameStmt(bs, ren, prefix))
			}
			out.Cases = append(out.Cases, nc)
		}
		return out
	case *lang.BlockStmt:
		out := &lang.BlockStmt{}
		for _, bs := range s.List {
			out.List = append(out.List, renameStmt(bs, ren, prefix))
		}
		return out
	case *lang.LabeledStmt:
		return &lang.LabeledStmt{Label: prefix + s.Label, Stmt: renameStmt(s.Stmt, ren, prefix)}
	case *lang.GotoStmt:
		return &lang.GotoStmt{Label: prefix + s.Label}
	case *lang.BreakStmt:
		return &lang.BreakStmt{}
	case *lang.ContinueStmt:
		return &lang.ContinueStmt{}
	case *lang.ReturnStmt:
		var v lang.Expr
		if s.Value != nil {
			v = renameExpr(s.Value, ren)
		}
		return &lang.ReturnStmt{Value: v}
	case *lang.EmptyStmt:
		return &lang.EmptyStmt{}
	}
	panic(fmt.Sprintf("progen: renameStmt: unexpected %T", s))
}

// renameExpr deep-copies an expression, renaming identifiers.
func renameExpr(e lang.Expr, ren map[string]string) lang.Expr {
	switch e := e.(type) {
	case *lang.IntLit:
		return &lang.IntLit{Value: e.Value}
	case *lang.Ident:
		if r, ok := ren[e.Name]; ok {
			return &lang.Ident{Name: r}
		}
		return &lang.Ident{Name: e.Name}
	case *lang.UnaryExpr:
		return &lang.UnaryExpr{Op: e.Op, X: renameExpr(e.X, ren)}
	case *lang.BinaryExpr:
		return &lang.BinaryExpr{Op: e.Op, X: renameExpr(e.X, ren), Y: renameExpr(e.Y, ren)}
	case *lang.CallExpr:
		out := &lang.CallExpr{Name: e.Name}
		for _, a := range e.Args {
			out.Args = append(out.Args, renameExpr(a, ren))
		}
		return out
	}
	panic(fmt.Sprintf("progen: renameExpr: unexpected %T", e))
}

// zipStmt walks two structurally identical statements in lockstep and
// records lmap[inlined line] = original line for every statement and
// case clause.
func zipStmt(orig, inl lang.Stmt, lmap map[int]int) error {
	if fmt.Sprintf("%T", orig) != fmt.Sprintf("%T", inl) {
		return fmt.Errorf("progen: inlining line map: %T does not match %T", orig, inl)
	}
	lmap[inl.Pos().Line] = orig.Pos().Line
	switch a := orig.(type) {
	case *lang.LabeledStmt:
		return zipStmt(a.Stmt, inl.(*lang.LabeledStmt).Stmt, lmap)
	case *lang.BlockStmt:
		return zipList(a.List, inl.(*lang.BlockStmt).List, lmap)
	case *lang.IfStmt:
		b := inl.(*lang.IfStmt)
		if err := zipStmt(a.Then, b.Then, lmap); err != nil {
			return err
		}
		if a.Else != nil {
			return zipStmt(a.Else, b.Else, lmap)
		}
	case *lang.WhileStmt:
		return zipStmt(a.Body, inl.(*lang.WhileStmt).Body, lmap)
	case *lang.SwitchStmt:
		b := inl.(*lang.SwitchStmt)
		if len(a.Cases) != len(b.Cases) {
			return fmt.Errorf("progen: inlining line map: switch arity mismatch")
		}
		for i, c := range a.Cases {
			lmap[b.Cases[i].P.Line] = c.P.Line
			if err := zipList(c.Body, b.Cases[i].Body, lmap); err != nil {
				return err
			}
		}
	}
	return nil
}

func zipList(orig, inl []lang.Stmt, lmap map[int]int) error {
	if len(orig) != len(inl) {
		return fmt.Errorf("progen: inlining line map: list length mismatch")
	}
	for i := range orig {
		if err := zipStmt(orig[i], inl[i], lmap); err != nil {
			return err
		}
	}
	return nil
}

// MultiProcCorpus returns the n-program multi-procedure corpus for a
// base config (seeds 0..n-1). When dir is non-empty, each program's
// canonical text is persisted there as multiproc-<seed>-<stmts>-<procs>.mc
// and reloaded on later runs instead of regenerated — CI caches the
// directory between jobs, keyed on a hash of the generator source, so
// the property tests share one corpus across matrix legs. Unreadable
// or stale cache entries fall back to regeneration.
func MultiProcCorpus(dir string, n int, c Config) ([]*lang.Program, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	out := make([]*lang.Program, n)
	for s := 0; s < n; s++ {
		cc := c.normalized()
		cc.Seed = int64(s)
		if dir == "" {
			out[s] = MultiProc(cc)
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("multiproc-%d-%d-%d.mc", s, cc.Stmts, cc.Procs))
		if data, err := os.ReadFile(path); err == nil {
			if p, err := lang.Parse(string(data)); err == nil && len(p.Procs) == cc.Procs {
				out[s] = p
				continue
			}
		}
		out[s] = MultiProc(cc)
		if err := os.WriteFile(path, []byte(lang.Format(out[s], lang.PrintOptions{})), 0o644); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MainWriteCriteria returns the write criteria of main only — the
// criteria an interprocedural experiment slices on. (WriteCriteria
// walks procedure bodies too; MultiProc keeps writes out of
// procedures, but filtering here keeps the contract explicit.)
func MainWriteCriteria(p *lang.Program) []struct {
	Var  string
	Line int
} {
	inProc := map[int]bool{}
	for _, pd := range p.Procs {
		for _, s := range pd.Body {
			markLines(s, inProc)
		}
	}
	var out []struct {
		Var  string
		Line int
	}
	for _, wc := range WriteCriteria(p) {
		if !inProc[wc.Line] {
			out = append(out, wc)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// markLines records every statement line of a subtree.
func markLines(s lang.Stmt, m map[int]bool) {
	m[s.Pos().Line] = true
	switch s := s.(type) {
	case *lang.LabeledStmt:
		markLines(s.Stmt, m)
	case *lang.BlockStmt:
		for _, bs := range s.List {
			markLines(bs, m)
		}
	case *lang.IfStmt:
		markLines(s.Then, m)
		if s.Else != nil {
			markLines(s.Else, m)
		}
	case *lang.WhileStmt:
		markLines(s.Body, m)
	case *lang.SwitchStmt:
		for _, c := range s.Cases {
			m[c.P.Line] = true
			for _, bs := range c.Body {
				markLines(bs, m)
			}
		}
	}
}
