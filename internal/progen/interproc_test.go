package progen

import (
	"testing"

	"jumpslice/internal/lang"
)

func TestMultiProcDeterministicAndShaped(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := Config{Seed: seed, Stmts: 15, Procs: 3}
		p := MultiProc(c)
		q := MultiProc(c)
		if lang.Format(p, lang.PrintOptions{}) != lang.Format(q, lang.PrintOptions{}) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if len(p.Procs) != 3 {
			t.Fatalf("seed %d: got %d procs, want 3", seed, len(p.Procs))
		}
		// Each procedure is called exactly once from main, with
		// distinct plain-identifier arguments.
		calls := map[string]int{}
		for _, s := range p.Body {
			call, ok := s.(*lang.CallStmt)
			if !ok {
				continue
			}
			calls[call.Name]++
			seen := map[string]bool{}
			for _, a := range call.Args {
				id, ok := a.(*lang.Ident)
				if !ok {
					t.Fatalf("seed %d: call %s has a non-identifier argument", seed, call.Name)
				}
				if seen[id.Name] {
					t.Fatalf("seed %d: call %s repeats argument %s", seed, call.Name, id.Name)
				}
				seen[id.Name] = true
			}
		}
		for _, pd := range p.Procs {
			if calls[pd.Name] != 1 {
				t.Fatalf("seed %d: proc %s called %d times, want 1", seed, pd.Name, calls[pd.Name])
			}
		}
		if len(MainWriteCriteria(p)) == 0 {
			t.Fatalf("seed %d: no main write criteria", seed)
		}
	}
}

func TestInlineMainShapeAndLineMap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := MultiProc(Config{Seed: seed, Stmts: 15})
		q, lmap, err := InlineMain(p)
		if err != nil {
			t.Fatalf("seed %d: inline: %v", seed, err)
		}
		if len(q.Procs) != 0 {
			t.Fatalf("seed %d: inlined program still declares procedures", seed)
		}
		// Every inlined statement line maps to an original statement
		// line; call lines have no image.
		callLines := map[int]bool{}
		for _, s := range p.Body {
			if call, ok := s.(*lang.CallStmt); ok {
				callLines[call.P.Line] = true
			}
		}
		inlLines := map[int]bool{}
		for _, s := range q.Body {
			markLines(s, inlLines)
		}
		for l := range inlLines {
			ol, ok := lmap[l]
			if !ok {
				t.Fatalf("seed %d: inlined line %d unmapped", seed, l)
			}
			if callLines[ol] {
				t.Fatalf("seed %d: inlined line %d maps to call line %d", seed, l, ol)
			}
		}
	}
}

func TestMultiProcCorpusPersists(t *testing.T) {
	dir := t.TempDir()
	c := Config{Stmts: 10, Procs: 2}
	first, err := MultiProcCorpus(dir, 3, c)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	second, err := MultiProcCorpus(dir, 3, c)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	fresh, err := MultiProcCorpus("", 3, c)
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	for i := range first {
		a := lang.Format(first[i], lang.PrintOptions{})
		b := lang.Format(second[i], lang.PrintOptions{})
		f := lang.Format(fresh[i], lang.PrintOptions{})
		if a != b {
			t.Fatalf("seed %d: cached corpus differs from generated", i)
		}
		if a != f {
			t.Fatalf("seed %d: persisted corpus differs from direct generation", i)
		}
	}
}
