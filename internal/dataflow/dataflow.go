// Package dataflow implements the classic bit-vector dataflow analyses
// the slicer needs: reaching definitions (from which flow/data
// dependence edges are derived) and live variables (used by ablation
// experiments and diagnostics).
//
// Analyses run over the cfg.Graph. A "definition" is a (node,
// variable) pair: assignments and read statements define their target
// variable; nothing else defines anything — in particular jump
// statements define nothing, which is precisely why conventional
// slicing can never include them (paper, Section 3, first paragraph).
//
// Input is modeled explicitly: the input stream cursor is a hidden
// variable (InputVar) that every read statement both uses and
// defines, and that eof() uses. Without it, deleting one read from a
// slice would silently shift the values every later read receives —
// the slice would consume a different prefix of the input than the
// original program, breaking Weiser's criterion in a way dependence
// closure could never see.
package dataflow

import (
	"sort"

	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Def is a single definition site: node ID and the variable it
// defines.
type Def struct {
	Node int
	Var  string
}

// InputVar is the hidden variable standing for the input stream
// cursor. It never collides with program variables, whose names are
// plain identifiers.
const InputVar = "$input"

// ReachingDefs is the result of reaching-definitions analysis.
type ReachingDefs struct {
	g *cfg.Graph
	// Defs indexes all definition sites; bit i in the sets below
	// refers to Defs[i].
	Defs []Def
	// In[n] is the set of definitions reaching the entry of node n.
	In []*bits.Set
	// Out[n] is the set of definitions leaving node n.
	Out []*bits.Set

	defsOf map[string][]int // variable -> def indices
	defAt  map[int][]int    // node ID -> def indices (a read defines two)
}

// Reach computes reaching definitions for the graph with the standard
// forward worklist iteration: out(n) = gen(n) ∪ (in(n) − kill(n)),
// in(n) = ∪ out(p) over predecessors p.
func Reach(g *cfg.Graph) *ReachingDefs {
	r := &ReachingDefs{
		g:      g,
		defsOf: map[string][]int{},
		defAt:  map[int][]int{},
	}
	for _, n := range g.Nodes {
		for _, v := range defsOf(n) {
			idx := len(r.Defs)
			r.Defs = append(r.Defs, Def{Node: n.ID, Var: v})
			r.defsOf[v] = append(r.defsOf[v], idx)
			r.defAt[n.ID] = append(r.defAt[n.ID], idx)
		}
	}

	nd := len(r.Defs)
	nn := len(g.Nodes)
	gen := make([]*bits.Set, nn)
	kill := make([]*bits.Set, nn)
	r.In = make([]*bits.Set, nn)
	r.Out = make([]*bits.Set, nn)
	for i := 0; i < nn; i++ {
		gen[i] = bits.New(nd)
		kill[i] = bits.New(nd)
		r.In[i] = bits.New(nd)
		r.Out[i] = bits.New(nd)
	}
	for i, n := range g.Nodes {
		for _, di := range r.defAt[n.ID] {
			gen[i].Add(di)
			for _, other := range r.defsOf[r.Defs[di].Var] {
				if other != di {
					kill[i].Add(other)
				}
			}
		}
	}

	// Worklist iteration in node order; the graph is small enough that
	// a simple round-robin loop converges quickly. Nodes unreachable
	// from Entry are excluded: their definitions never execute, so
	// they must not reach anything (e.g. an assignment after an
	// unconditional goto).
	reachable := g.Reachable()
	tmp := bits.New(nd)
	for changed := true; changed; {
		changed = false
		for i, n := range g.Nodes {
			if !reachable[n.ID] {
				continue
			}
			r.In[i].Clear()
			for _, p := range n.In {
				r.In[i].UnionWith(r.Out[p])
			}
			tmp.Copy(r.In[i])
			tmp.DifferenceWith(kill[i])
			tmp.UnionWith(gen[i])
			if !tmp.Equal(r.Out[i]) {
				r.Out[i].Copy(tmp)
				changed = true
			}
		}
	}
	return r
}

// DefsOf returns the variables a CFG node defines (including the
// input cursor for reads) — the DEF set of Weiser's formulation.
func DefsOf(n *cfg.Node) []string { return defsOf(n) }

// UsesOf returns the variables a CFG node references directly
// (including the input cursor for reads and eof() calls) — Weiser's
// REF set.
func UsesOf(n *cfg.Node) []string { return usesOf(n) }

// defsOf returns the variables a CFG node defines. A read defines its
// target variable and advances the input cursor.
func defsOf(n *cfg.Node) []string {
	if n.Stmt == nil {
		return nil
	}
	switch n.Kind {
	case cfg.KindAssign:
		return []string{lang.Def(n.Stmt)}
	case cfg.KindRead:
		return []string{lang.Def(n.Stmt), InputVar}
	case cfg.KindCall:
		// Value-result copy-out: a call kills and redefines every plain
		// identifier argument. This is what makes the SDG slice agree
		// with the slice of the inlined program — the copy-outs are real
		// definitions with real kills.
		if c, ok := lang.Unlabel(n.Stmt).(*lang.CallStmt); ok {
			return lang.CallOutVars(c)
		}
	}
	return nil
}

// usesOf returns the variables a CFG node uses directly. A read uses
// the input cursor (the value it stores depends on how much input has
// been consumed), and so does any statement calling eof().
func usesOf(n *cfg.Node) []string {
	if n.Stmt == nil {
		return nil
	}
	uses := lang.Uses(n.Stmt)
	if n.Kind == cfg.KindRead {
		return append(uses, InputVar)
	}
	if callsEOF(n.Stmt) {
		return append(uses[:len(uses):len(uses)], InputVar)
	}
	return uses
}

// callsEOF reports whether the statement's directly evaluated
// expression calls the eof() intrinsic.
func callsEOF(s lang.Stmt) bool {
	var e lang.Expr
	switch s := lang.Unlabel(s).(type) {
	case *lang.AssignStmt:
		e = s.Value
	case *lang.WriteStmt:
		e = s.Value
	case *lang.IfStmt:
		e = s.Cond
	case *lang.WhileStmt:
		e = s.Cond
	case *lang.SwitchStmt:
		e = s.Tag
	case *lang.ReturnStmt:
		e = s.Value
	case *lang.CallStmt:
		for _, a := range s.Args {
			for _, name := range lang.ExprCalls(nil, a) {
				if name == "eof" {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
	for _, name := range lang.ExprCalls(nil, e) {
		if name == "eof" {
			return true
		}
	}
	return false
}

// ReachingDefsOf returns the definition sites of variable v that reach
// the entry of node n, as node IDs in ascending order.
func (r *ReachingDefs) ReachingDefsOf(n int, v string) []int {
	var out []int
	for _, di := range r.defsOf[v] {
		if r.In[n].Has(di) {
			out = append(out, r.Defs[di].Node)
		}
	}
	sort.Ints(out)
	return out
}

// DataDeps returns, for each node ID, the sorted set of node IDs it is
// directly data (flow) dependent on: the reaching definitions of each
// variable the node uses.
func (r *ReachingDefs) DataDeps() [][]int {
	out := make([][]int, len(r.g.Nodes))
	for _, n := range r.g.Nodes {
		out[n.ID] = r.DataDepsOf(n)
	}
	return out
}

// DataDepsOf returns the sorted set of node IDs a single node is
// directly data dependent on. The node may belong to a
// shape-identical copy of the analyzed graph — only its ID, kind, and
// statement are consulted — which is how the incremental engine
// recomputes the dependence row of an edited statement against an
// unchanged reaching-definitions result.
func (r *ReachingDefs) DataDepsOf(n *cfg.Node) []int {
	seen := map[int]bool{}
	for _, v := range usesOf(n) {
		for _, d := range r.ReachingDefsOf(n.ID, v) {
			seen[d] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	deps := make([]int, 0, len(seen))
	for d := range seen {
		deps = append(deps, d)
	}
	sort.Ints(deps)
	return deps
}

// WithGraph returns a view of the same reaching-definitions result
// bound to a different flowgraph, which must be shape-identical to
// the analyzed one (same node IDs, kinds, and definition sites). The
// In/Out sets and definition index are shared — they are immutable
// after Reach — so the view is free; it exists so a reused dataflow
// result answers queries about nodes of a freshly rebuilt graph.
func (r *ReachingDefs) WithGraph(g *cfg.Graph) *ReachingDefs {
	q := *r
	q.g = g
	return &q
}

// LiveVars is the result of live-variable analysis: In[n] holds the
// variables live on entry to node n.
type LiveVars struct {
	Vars []string
	In   []*bits.Set
	Out  []*bits.Set

	varIdx map[string]int
}

// Live computes live variables with the standard backward iteration:
// in(n) = use(n) ∪ (out(n) − def(n)), out(n) = ∪ in(s) over
// successors.
func Live(g *cfg.Graph) *LiveVars {
	names := lang.VarNames(g.Prog)
	lv := &LiveVars{Vars: names, varIdx: map[string]int{}}
	for i, v := range names {
		lv.varIdx[v] = i
	}
	nv := len(names)
	nn := len(g.Nodes)
	use := make([]*bits.Set, nn)
	def := make([]*bits.Set, nn)
	lv.In = make([]*bits.Set, nn)
	lv.Out = make([]*bits.Set, nn)
	for i := 0; i < nn; i++ {
		use[i] = bits.New(nv)
		def[i] = bits.New(nv)
		lv.In[i] = bits.New(nv)
		lv.Out[i] = bits.New(nv)
	}
	for i, n := range g.Nodes {
		for _, v := range usesOf(n) {
			if idx, ok := lv.varIdx[v]; ok {
				use[i].Add(idx)
			}
		}
		for _, v := range defsOf(n) {
			if idx, ok := lv.varIdx[v]; ok {
				def[i].Add(idx)
			}
		}
	}
	tmp := bits.New(nv)
	for changed := true; changed; {
		changed = false
		for i := nn - 1; i >= 0; i-- {
			lv.Out[i].Clear()
			for _, e := range g.Nodes[i].Out {
				lv.Out[i].UnionWith(lv.In[e.To])
			}
			tmp.Copy(lv.Out[i])
			tmp.DifferenceWith(def[i])
			tmp.UnionWith(use[i])
			if !tmp.Equal(lv.In[i]) {
				lv.In[i].Copy(tmp)
				changed = true
			}
		}
	}
	return lv
}

// LiveIn reports whether variable v is live on entry to node n.
func (lv *LiveVars) LiveIn(n int, v string) bool {
	i, ok := lv.varIdx[v]
	return ok && lv.In[n].Has(i)
}

// LiveOut reports whether variable v is live on exit from node n.
func (lv *LiveVars) LiveOut(n int, v string) bool {
	i, ok := lv.varIdx[v]
	return ok && lv.Out[n].Has(i)
}
