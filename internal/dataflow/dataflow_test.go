package dataflow

import (
	"reflect"
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// depLines maps a node's data dependences to source lines.
func depLines(g *cfg.Graph, deps [][]int, id int) []int {
	var out []int
	for _, d := range deps[id] {
		out = append(out, g.Nodes[d].Line)
	}
	return out
}

// TestFigure2DataDependence checks the data dependence graph of the
// paper's Figure 1-a against Figure 2-b: node 12 is data dependent on
// nodes 2 and 7 ("the assignments on lines 2 and 7 assign a value to
// positives that may be used by the write statement on line 12").
func TestFigure2DataDependence(t *testing.T) {
	g := build(t, paper.Fig1().Source)
	deps := Reach(g).DataDeps()
	want := map[int][]int{
		5:  {4},              // if (x <= 0) uses read(x)
		6:  {1, 4, 6, 9, 10}, // sum = sum + f1(x)
		7:  {2, 7},           // positives = positives + 1
		8:  {4},              // if (x % 2 == 0)
		11: {1, 6, 9, 10},
		12: {2, 7},
	}
	for line, wantLines := range want {
		n := g.NodesAtLine(line)[0]
		if got := depLines(g, deps, n.ID); !reflect.DeepEqual(got, wantLines) {
			t.Errorf("line %d data deps = %v, want %v", line, got, wantLines)
		}
	}
}

func TestReachStraightLineKill(t *testing.T) {
	g := build(t, "x = 1;\nx = 2;\nwrite(x);")
	r := Reach(g)
	w := g.NodesAtLine(3)[0]
	got := r.ReachingDefsOf(w.ID, "x")
	if len(got) != 1 || g.Nodes[got[0]].Line != 2 {
		t.Errorf("reaching defs of x at write = %v, want only line 2", got)
	}
}

func TestReachBranchesMerge(t *testing.T) {
	g := build(t, "if (c)\nx = 1;\nelse x = 2;\nwrite(x);")
	r := Reach(g)
	w := g.NodesAtLine(4)[0]
	got := r.ReachingDefsOf(w.ID, "x")
	var lines []int
	for _, id := range got {
		lines = append(lines, g.Nodes[id].Line)
	}
	if !reflect.DeepEqual(lines, []int{2, 3}) {
		t.Errorf("reaching defs = %v, want lines [2 3]", lines)
	}
}

func TestReachLoopCarried(t *testing.T) {
	g := build(t, "s = 0;\nwhile (c()) {\ns = s + 1;\n}\nwrite(s);")
	r := Reach(g)
	body := g.NodesAtLine(3)[0]
	// s = s + 1 uses defs from line 1 (first iteration) and line 3
	// (subsequent iterations).
	got := r.ReachingDefsOf(body.ID, "s")
	var lines []int
	for _, id := range got {
		lines = append(lines, g.Nodes[id].Line)
	}
	if !reflect.DeepEqual(lines, []int{1, 3}) {
		t.Errorf("loop-carried reaching defs = %v, want lines [1 3]", lines)
	}
}

func TestReadDefines(t *testing.T) {
	g := build(t, "x = 1;\nread(x);\nwrite(x);")
	r := Reach(g)
	w := g.NodesAtLine(3)[0]
	got := r.ReachingDefsOf(w.ID, "x")
	if len(got) != 1 || g.Nodes[got[0]].Line != 2 {
		t.Errorf("read should kill the earlier assignment; got %v", got)
	}
}

func TestJumpStatementsDefineNothing(t *testing.T) {
	// The paper's premise: "A jump statement does not assign a value
	// to any variable. Thus no statement may be data dependent on it."
	g := build(t, paper.Fig8().Source)
	r := Reach(g)
	for _, d := range r.Defs {
		if g.Nodes[d.Node].Kind.IsJump() {
			t.Errorf("jump node %v recorded as defining %q", g.Nodes[d.Node], d.Var)
		}
	}
	deps := r.DataDeps()
	for _, n := range g.Nodes {
		for _, d := range deps[n.ID] {
			if g.Nodes[d].Kind.IsJump() {
				t.Errorf("node %v is data dependent on jump %v", n, g.Nodes[d])
			}
		}
	}
}

func TestUninitializedUseHasNoDeps(t *testing.T) {
	g := build(t, "write(x);")
	deps := Reach(g).DataDeps()
	w := g.NodesAtLine(1)[0]
	if len(deps[w.ID]) != 0 {
		t.Errorf("uninitialized use should have no data deps, got %v", deps[w.ID])
	}
}

func TestGotoSkipsDefinition(t *testing.T) {
	g := build(t, `x = 1;
goto L;
x = 2;
L: write(x);`)
	r := Reach(g)
	w := g.NodesAtLine(4)[0]
	got := r.ReachingDefsOf(w.ID, "x")
	if len(got) != 1 || g.Nodes[got[0]].Line != 1 {
		t.Errorf("write should only see x=1 (x=2 is dead code); got %v", got)
	}
}

func TestLiveVariables(t *testing.T) {
	g := build(t, "read(a);\nb = a + 1;\nc = 5;\nwrite(b);")
	lv := Live(g)
	read := g.NodesAtLine(1)[0]
	if !lv.LiveOut(read.ID, "a") {
		t.Error("a should be live after read(a)")
	}
	assignC := g.NodesAtLine(3)[0]
	if lv.LiveOut(assignC.ID, "c") {
		t.Error("c is never used; should be dead")
	}
	if !lv.LiveIn(assignC.ID, "b") {
		t.Error("b should be live across c = 5")
	}
	if lv.LiveIn(read.ID, "a") {
		t.Error("a is defined before use; should not be live at entry of read")
	}
}

func TestLiveThroughLoop(t *testing.T) {
	g := build(t, "s = 0;\nwhile (c()) {\ns = s + 1;\n}\nwrite(s);")
	lv := Live(g)
	init := g.NodesAtLine(1)[0]
	if !lv.LiveOut(init.ID, "s") {
		t.Error("s should be live out of its initialization")
	}
	body := g.NodesAtLine(3)[0]
	if !lv.LiveOut(body.ID, "s") {
		t.Error("s should be live out of the loop body (used next iteration and after)")
	}
}

func TestLiveUnknownVariable(t *testing.T) {
	g := build(t, "x = 1;")
	lv := Live(g)
	if lv.LiveIn(0, "nosuch") || lv.LiveOut(0, "nosuch") {
		t.Error("unknown variables are never live")
	}
}
