package cdg

import (
	"sort"

	"jumpslice/internal/cfg"
	"jumpslice/internal/dom"
)

// ParentsByPDF computes, for every node, the set of nodes it is
// control dependent on — via postdominance frontiers (the Cytron et
// al. dominance-frontier algorithm run on the reverse flowgraph)
// instead of the Ferrante–Ottenstein–Warren edge walk Build uses.
//
// The two constructions are equivalent: Y is control dependent on X
// iff Y postdominates some successor of X without strictly
// postdominating X — which is the definition of X belonging to Y's
// reverse-graph dominance frontier, so DF_reverse(Y) is exactly Y's
// set of controlling nodes. This second
// implementation exists purely as a cross-check (the property tests
// compare it against Build node-for-node), mirroring the twin
// dominator algorithms in package dom.
//
// The result is indexed by node ID; each entry is sorted and
// de-duplicated. Branch labels are not computed — the frontier does
// not carry them — so comparisons use ParentIDs.
func ParentsByPDF(g *cfg.Graph, pdt *dom.Tree) [][]int {
	n := g.NumNodes()
	// Successors in the reverse graph are the original predecessors.
	succsR := func(x int) []int { return g.Preds(x) }

	frontier := make([]map[int]bool, n)
	for i := range frontier {
		frontier[i] = map[int]bool{}
	}

	// Cytron et al., bottom-up over the (post)dominator tree:
	//   DF(X) = DF_local(X) ∪ ⋃_{Z child of X} DF_up(Z)
	//   DF_local(X) = { Y ∈ Succ(X) : idom(Y) ≠ X }
	//   DF_up(Z)    = { Y ∈ DF(Z)   : idom(Y) ≠ X }
	// run on the reverse graph with the postdominator tree.
	order := pdt.Preorder()
	for i := len(order) - 1; i >= 0; i-- {
		x := order[i]
		for _, y := range succsR(x) {
			if !pdt.Reachable(y) {
				continue
			}
			if pdt.Idom[y] != x {
				frontier[x][y] = true
			}
		}
		for _, z := range pdt.Children(x) {
			for y := range frontier[z] {
				if pdt.Idom[y] != x {
					frontier[x][y] = true
				}
			}
		}
	}

	// frontier[y] is DF_reverse(y): exactly the nodes y is control
	// dependent on.
	parents := make([][]int, n)
	for y := 0; y < n; y++ {
		if len(frontier[y]) == 0 {
			continue
		}
		for x := range frontier[y] {
			parents[y] = append(parents[y], x)
		}
		sort.Ints(parents[y])
	}
	return parents
}
