// Package cdg computes control dependence graphs using the
// Ferrante–Ottenstein–Warren construction from the postdominator tree
// (reference [10] in the paper).
//
// A node B is control dependent on node A (with branch label l) iff A
// has an edge labeled l to some node from which B is always reached
// (B postdominates that successor) and B does not postdominate A
// itself. Operationally: for every CFG edge (A, S) where S does not
// postdominate... rather where A is not postdominated by S's subtree
// containing B, walk the postdominator tree from S up to, but not
// including, ipdom(A), marking every visited node control dependent
// on A.
//
// The dummy entry predicate of the paper's figures (node 0) falls out
// of the virtual Entry→Exit edge the cfg package adds: top-level
// statements become control dependent on Entry's "T" branch.
package cdg

import (
	"sort"

	"jumpslice/internal/cfg"
	"jumpslice/internal/dom"
)

// Dep is one direct control dependence: the node depends on From via
// its branch Label ("T"/"F" for predicates, a case value or "default"
// for switches).
type Dep struct {
	From  int
	Label string
}

// Graph is the control dependence graph of a flowgraph.
type Graph struct {
	CFG *cfg.Graph
	PDT *dom.Tree

	parents  [][]Dep // parents[n]: deps of node n, sorted by (From, Label)
	children [][]int // children[a]: nodes control dependent on a, sorted
}

// Build computes the control dependence graph given the flowgraph and
// its postdominator tree (rooted at Exit).
func Build(g *cfg.Graph, pdt *dom.Tree) *Graph {
	cd := &Graph{
		CFG:      g,
		PDT:      pdt,
		parents:  make([][]Dep, len(g.Nodes)),
		children: make([][]int, len(g.Nodes)),
	}

	type key struct {
		node int
		dep  Dep
	}
	seen := map[key]bool{}
	add := func(node int, d Dep) {
		k := key{node, d}
		if seen[k] {
			return
		}
		seen[k] = true
		cd.parents[node] = append(cd.parents[node], d)
	}

	for _, a := range g.Nodes {
		for _, e := range a.Out {
			s := e.To
			if !pdt.Reachable(s) || !pdt.Reachable(a.ID) {
				// Nodes on inescapable cycles have no postdominators;
				// control dependence is undefined for them and they
				// are skipped (documented limitation, DESIGN.md §4).
				continue
			}
			if pdt.Dominates(s, a.ID) {
				// The successor postdominates A: taking this edge is
				// not a choice that controls anything.
				continue
			}
			// Walk from s up the postdominator tree to ipdom(A),
			// exclusive. Every node on the way executes iff A takes
			// this branch.
			stop := pdt.Idom[a.ID]
			for v := s; v != stop; v = pdt.Idom[v] {
				add(v, Dep{From: a.ID, Label: e.Label})
				if v == pdt.Root {
					break
				}
			}
		}
	}

	childSeen := map[[2]int]bool{}
	for n := range cd.parents {
		sort.Slice(cd.parents[n], func(i, j int) bool {
			a, b := cd.parents[n][i], cd.parents[n][j]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.Label < b.Label
		})
		for _, d := range cd.parents[n] {
			k := [2]int{d.From, n}
			if !childSeen[k] {
				childSeen[k] = true
				cd.children[d.From] = append(cd.children[d.From], n)
			}
		}
	}
	for a := range cd.children {
		sort.Ints(cd.children[a])
	}
	return cd
}

// Parents returns the direct control dependences of node n, sorted.
// The slice is shared; callers must not modify it.
func (cd *Graph) Parents(n int) []Dep { return cd.parents[n] }

// ParentIDs returns just the controlling node IDs of n, de-duplicated
// and sorted (a node control dependent on both branches of a predicate
// lists it once).
func (cd *Graph) ParentIDs(n int) []int {
	ps := cd.parents[n]
	out := make([]int, 0, len(ps))
	for _, d := range ps {
		if len(out) == 0 || out[len(out)-1] != d.From {
			out = append(out, d.From)
		}
	}
	return out
}

// Children returns the nodes directly control dependent on a, sorted.
// The slice is shared; callers must not modify it.
func (cd *Graph) Children(a int) []int { return cd.children[a] }

// DependsOn reports whether n is directly control dependent on a.
func (cd *Graph) DependsOn(n, a int) bool {
	for _, d := range cd.parents[n] {
		if d.From == a {
			return true
		}
	}
	return false
}
