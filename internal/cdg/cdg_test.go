package cdg

import (
	"reflect"
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/dom"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
)

// build analyzes source into (cfg, pdt, cdg).
func build(t *testing.T, src string) (*cfg.Graph, *Graph) {
	t.Helper()
	g, err := cfg.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	pdt := dom.PostDominators(g, g.Exit.ID)
	return g, Build(g, pdt)
}

// nodeOfKind returns the node at the line with the given kind.
func nodeOfKind(t *testing.T, g *cfg.Graph, line int, k cfg.Kind) *cfg.Node {
	t.Helper()
	for _, n := range g.NodesAtLine(line) {
		if n.Kind == k {
			return n
		}
	}
	t.Fatalf("no %v node at line %d", k, line)
	return nil
}

// parentLines maps a node's direct control dependences to source
// lines; Entry becomes 0 (the paper's dummy predicate node 0).
func parentLines(g *cfg.Graph, cd *Graph, id int) []int {
	seen := map[int]bool{}
	for _, p := range cd.ParentIDs(id) {
		seen[g.Nodes[p].Line] = true // Entry has Line 0
	}
	out := make([]int, 0, len(seen))
	for l := 0; l <= 1000; l++ {
		if seen[l] {
			out = append(out, l)
		}
	}
	return out
}

// TestFigure2ControlDependence checks the control dependence graph of
// the paper's Figure 1-a program against Figure 2-c: the dummy entry
// predicate (0) controls the top level, the while (3) controls itself
// and lines 4–5, the if (5) controls 6–8, the inner if (8) controls
// 9–10.
func TestFigure2ControlDependence(t *testing.T) {
	g, cd := build(t, paper.Fig1().Source)
	want := map[int][]int{
		1:  {0},
		2:  {0},
		3:  {0, 3},
		4:  {3},
		5:  {3},
		6:  {5},
		7:  {5},
		8:  {5},
		9:  {8},
		10: {8},
		11: {0},
		12: {0},
	}
	for line, wantParents := range want {
		n := g.NodesAtLine(line)[0]
		if got := parentLines(g, cd, n.ID); !reflect.DeepEqual(got, wantParents) {
			t.Errorf("line %d control deps = %v, want %v", line, got, wantParents)
		}
	}
}

// TestFigure4ControlDependence checks key control dependences of the
// paper's Figure 3-a goto program against Figure 4-c: the jumps on
// lines 7 and 11 depend on predicates 5 and 9 respectively, and the
// shared "goto L3" on line 13 depends on the loop predicate 3 — not on
// 9, because both branches of 9 reach it.
func TestFigure4ControlDependence(t *testing.T) {
	g, cd := build(t, paper.Fig3().Source)
	cases := []struct {
		line int
		kind cfg.Kind
		want []int
	}{
		{4, cfg.KindRead, []int{3}},
		{6, cfg.KindAssign, []int{5}},
		{7, cfg.KindGoto, []int{5}},
		{8, cfg.KindAssign, []int{5}},
		{10, cfg.KindAssign, []int{9}},
		{11, cfg.KindGoto, []int{9}},
		{12, cfg.KindAssign, []int{9}},
		{13, cfg.KindGoto, []int{3}},
		{14, cfg.KindWrite, []int{0}},
		{15, cfg.KindWrite, []int{0}},
	}
	for _, c := range cases {
		n := nodeOfKind(t, g, c.line, c.kind)
		if got := parentLines(g, cd, n.ID); !reflect.DeepEqual(got, c.want) {
			t.Errorf("line %d (%v) control deps = %v, want %v", c.line, c.kind, got, c.want)
		}
	}
}

// TestFigure6ControlDependence checks the continue version (Figure
// 5-a) against Figure 6-c: line 8 is control dependent on the if at
// line 5 (the continue on 7 is what makes this true), and the
// continues depend on their guarding predicates.
func TestFigure6ControlDependence(t *testing.T) {
	g, cd := build(t, paper.Fig5().Source)
	cases := []struct {
		line int
		kind cfg.Kind
		want []int
	}{
		{4, cfg.KindRead, []int{3}},
		{5, cfg.KindPredicate, []int{3}},
		{6, cfg.KindAssign, []int{5}},
		{7, cfg.KindContinue, []int{5}},
		{8, cfg.KindAssign, []int{5}},
		{9, cfg.KindPredicate, []int{5}},
		{10, cfg.KindAssign, []int{9}},
		{11, cfg.KindContinue, []int{9}},
		{12, cfg.KindAssign, []int{9}},
		{13, cfg.KindWrite, []int{0}},
	}
	for _, c := range cases {
		n := nodeOfKind(t, g, c.line, c.kind)
		if got := parentLines(g, cd, n.ID); !reflect.DeepEqual(got, c.want) {
			t.Errorf("line %d (%v) control deps = %v, want %v", c.line, c.kind, got, c.want)
		}
	}
}

// TestFigure9ControlDependence checks Figure 8-a against Figure 9-c:
// with direct jumps to L3, the goto on line 13 becomes control
// dependent on predicate 9 (its inclusion is what later pulls 9 into
// the slice).
func TestFigure9ControlDependence(t *testing.T) {
	g, cd := build(t, paper.Fig8().Source)
	cases := []struct {
		line int
		kind cfg.Kind
		want []int
	}{
		{7, cfg.KindGoto, []int{5}},
		{11, cfg.KindGoto, []int{9}},
		{13, cfg.KindGoto, []int{9}},
	}
	for _, c := range cases {
		n := nodeOfKind(t, g, c.line, c.kind)
		if got := parentLines(g, cd, n.ID); !reflect.DeepEqual(got, c.want) {
			t.Errorf("line %d (%v) control deps = %v, want %v", c.line, c.kind, got, c.want)
		}
	}
}

// TestFigure11ControlDependence checks Figure 10-a against Figure
// 11-c: only lines 2 and 5 are control dependent on the if — every
// other statement executes on both branches thanks to the goto
// tangle.
func TestFigure11ControlDependence(t *testing.T) {
	g, cd := build(t, paper.Fig10().Source)
	wantOn1 := map[int]bool{2: true, 5: true}
	for _, n := range g.Nodes {
		if n.Line == 0 || n.Line == 1 {
			continue
		}
		pred := g.NodesAtLine(1)[0]
		got := cd.DependsOn(n.ID, pred.ID)
		if got != wantOn1[n.Line] {
			t.Errorf("line %d depends on if(1): %v, want %v", n.Line, got, wantOn1[n.Line])
		}
	}
}

// TestFigure15ControlDependence checks Figure 14-a against Figure
// 15-c: every case-body statement, including all three breaks, is
// control dependent on the switch tag.
func TestFigure15ControlDependence(t *testing.T) {
	g, cd := build(t, paper.Fig14().Source)
	sw := g.NodesAtLine(1)[0]
	for _, line := range []int{2, 3, 4, 5, 6, 7} {
		n := g.NodesAtLine(line)[0]
		if !cd.DependsOn(n.ID, sw.ID) {
			t.Errorf("line %d should be control dependent on the switch", line)
		}
	}
	for _, line := range []int{8, 9, 10} {
		n := g.NodesAtLine(line)[0]
		if cd.DependsOn(n.ID, sw.ID) {
			t.Errorf("line %d should not be control dependent on the switch", line)
		}
	}
}

func TestBranchLabels(t *testing.T) {
	g, cd := build(t, "if (x > 0)\ny = 1;\nelse y = 2;\nwrite(y);")
	pred := g.NodesAtLine(1)[0]
	thenNode := g.NodesAtLine(2)[0]
	elseNode := g.NodesAtLine(3)[0]
	findLabel := func(n *cfg.Node) string {
		for _, d := range cd.Parents(n.ID) {
			if d.From == pred.ID {
				return d.Label
			}
		}
		return ""
	}
	if got := findLabel(thenNode); got != "T" {
		t.Errorf("then-branch label = %q, want T", got)
	}
	if got := findLabel(elseNode); got != "F" {
		t.Errorf("else-branch label = %q, want F", got)
	}
}

func TestSwitchCaseLabels(t *testing.T) {
	g, cd := build(t, "switch (c()) {\ncase 1: x = 1;\nbreak;\ncase 2: y = 2;\n}\nwrite(x);")
	sw := g.NodesAtLine(1)[0]
	x := g.NodesAtLine(2)[0]
	var label string
	for _, d := range cd.Parents(x.ID) {
		if d.From == sw.ID {
			label = d.Label
		}
	}
	if label != "1" {
		t.Errorf("case-1 body dependence label = %q, want \"1\"", label)
	}
}

// TestLoopSelfDependence: a while header is control dependent on
// itself (the back edge decides whether it runs again).
func TestLoopSelfDependence(t *testing.T) {
	g, cd := build(t, "while (x > 0)\nx = x - 1;\nwrite(x);")
	w := g.NodesAtLine(1)[0]
	if !cd.DependsOn(w.ID, w.ID) {
		t.Error("loop header should be control dependent on itself")
	}
}

// TestChildrenMirrorsParents: the children index inverts the parents
// index.
func TestChildrenMirrorsParents(t *testing.T) {
	g, cd := build(t, paper.Fig8().Source)
	for _, n := range g.Nodes {
		for _, p := range cd.ParentIDs(n.ID) {
			found := false
			for _, c := range cd.Children(p) {
				if c == n.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("node %d has parent %d but is not its child", n.ID, p)
			}
		}
	}
}

// TestJumpFreeCDGMatchesSyntax: in a jump-free program, a statement's
// control dependences are exactly its enclosing predicates.
func TestJumpFreeCDGMatchesSyntax(t *testing.T) {
	g, cd := build(t, `read(a);
if (a > 0) {
b = 1;
while (b < a) {
b = b + 1;
}
}
write(b);`)
	inner := g.NodesAtLine(5)[0]
	wantLines := []int{4} // directly dependent on the while only
	if got := parentLines(g, cd, inner.ID); !reflect.DeepEqual(got, wantLines) {
		t.Errorf("innermost stmt deps = %v, want %v", got, wantLines)
	}
	whileNode := g.NodesAtLine(4)[0]
	if !cd.DependsOn(whileNode.ID, g.NodesAtLine(2)[0].ID) {
		t.Error("while should depend on enclosing if")
	}
}

// TestPDFMatchesFOWOnCorpus cross-validates the two control
// dependence constructions — the Ferrante–Ottenstein–Warren edge walk
// (Build) and the Cytron postdominance-frontier computation
// (ParentsByPDF) — on every corpus figure.
func TestPDFMatchesFOWOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		g, cd := build(t, f.Source)
		pdf := ParentsByPDF(g, cd.PDT)
		for _, n := range g.Nodes {
			if !cd.PDT.Reachable(n.ID) {
				continue
			}
			fow := cd.ParentIDs(n.ID)
			if fow == nil {
				fow = []int{}
			}
			got := pdf[n.ID]
			if got == nil {
				got = []int{}
			}
			if !reflect.DeepEqual(fow, got) {
				t.Errorf("%s node %v: FOW parents %v != PDF parents %v",
					f.Name, n, fow, got)
			}
		}
	}
}

// TestPDFMatchesFOWOnGeneratedPrograms extends the cross-check to
// both random corpora.
func TestPDFMatchesFOWOnGeneratedPrograms(t *testing.T) {
	for name, gen := range map[string]func(progen.Config) *lang.Program{
		"structured":   progen.Structured,
		"unstructured": progen.Unstructured,
	} {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 60; seed++ {
				g, err := cfg.Build(gen(progen.Config{Seed: seed, Stmts: 35}))
				if err != nil {
					t.Fatal(err)
				}
				pdt := dom.PostDominators(g, g.Exit.ID)
				cd := Build(g, pdt)
				pdf := ParentsByPDF(g, pdt)
				for _, n := range g.Nodes {
					if !pdt.Reachable(n.ID) {
						continue
					}
					fow := cd.ParentIDs(n.ID)
					if fow == nil {
						fow = []int{}
					}
					got := pdf[n.ID]
					if got == nil {
						got = []int{}
					}
					if !reflect.DeepEqual(fow, got) {
						t.Fatalf("seed %d node %v: FOW %v != PDF %v", seed, n, fow, got)
					}
				}
			}
		})
	}
}
