// Package paper holds the example programs of Agrawal's "On Slicing
// Programs with Jump Statements" (PLDI 1994) together with the slices
// the paper reports for them. Each program's source layout is arranged
// so that every statement begins on exactly the line the paper numbers
// it with, letting tests assert the paper's figures verbatim.
//
// The corpus is shared by the unit tests (which check each algorithm
// against each figure), the benchmarks in the repository root (one per
// figure), and cmd/paperfigs (which regenerates the figures as text
// and DOT graphs).
package paper

import "jumpslice/internal/lang"

// Criterion is a slicing criterion: the value of Var at source line
// Line, e.g. "positives on line 12".
type Criterion struct {
	Var  string
	Line int
}

// Figure is one of the paper's example programs with its expected
// results.
type Figure struct {
	// Name is the paper's figure designation for the program, e.g.
	// "Figure 3-a".
	Name string
	// Description summarizes what the figure demonstrates.
	Description string
	// Source is the program text, laid out so statement lines equal
	// the paper's statement numbers.
	Source string
	// Criterion is the slicing criterion of the figure.
	Criterion Criterion

	// ConventionalLines is the slice computed by the conventional
	// (jump-unaware) algorithm, as statement line numbers.
	ConventionalLines []int
	// AgrawalLines is the correct slice computed by the paper's
	// Figure 7 algorithm.
	AgrawalLines []int
	// StructuredLines is the slice of the Figure 12 algorithm; nil
	// when the program is unstructured (the algorithm does not apply).
	StructuredLines []int
	// ConservativeLines is the slice of the Figure 13 algorithm; nil
	// when the program is unstructured.
	ConservativeLines []int

	// Structured reports whether every jump in the program is a
	// structured jump (its target is one of its lexical successors).
	Structured bool
	// WantTraversals is the total number of postdominator tree
	// preorder traversals the Figure 7 algorithm performs, counting
	// the final traversal that discovers nothing new. The paper's
	// Figure 10 is the example needing more than one productive
	// traversal.
	WantTraversals int
	// RetargetedLabels maps goto labels whose original target is not
	// in the Agrawal slice to the line the label is re-attached to
	// ("associate the label L with its nearest postdominator in
	// Slice").
	RetargetedLabels map[string]int
}

// Parse returns the parsed program of the figure.
func (f *Figure) Parse() *lang.Program { return lang.MustParse(f.Source) }

// All returns every corpus figure in paper order.
func All() []*Figure {
	return []*Figure{Fig1(), Fig3(), Fig5(), Fig8(), Fig10(), Fig14(), Fig16()}
}

// Fig1 is the paper's Figure 1-a: the jump-free example program. The
// conventional algorithm alone produces the correct slice (Figure
// 1-b); with no jump statements, every algorithm agrees.
func Fig1() *Figure {
	return &Figure{
		Name:        "Figure 1-a",
		Description: "jump-free program; conventional slicing is already correct",
		Source: `sum = 0;
positives = 0;
while (!eof()) {
read(x);
if (x <= 0)
sum = sum + f1(x); else {
positives = positives + 1;
if (x % 2 == 0)
sum = sum + f2(x);
else sum = sum + f3(x); } }
write(sum);
write(positives);
`,
		Criterion:         Criterion{Var: "positives", Line: 12},
		ConventionalLines: []int{2, 3, 4, 5, 7, 12},
		AgrawalLines:      []int{2, 3, 4, 5, 7, 12},
		StructuredLines:   []int{2, 3, 4, 5, 7, 12},
		ConservativeLines: []int{2, 3, 4, 5, 7, 12},
		Structured:        true,
		WantTraversals:    1,
		RetargetedLabels:  map[string]int{},
	}
}

// Fig3 is the paper's Figure 3-a: a goto version of Figure 1-a with a
// shared join point (L13). The conventional slice (Figure 3-b) loses
// the unconditional jumps on lines 7 and 13; the Figure 7 algorithm
// restores them but correctly omits line 11 (Figure 3-c).
func Fig3() *Figure {
	return &Figure{
		Name:        "Figure 3-a",
		Description: "goto version; slice must include jumps 7 and 13 but not 11",
		Source: `sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L13;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L13;
L12: sum = sum + f3(x);
L13: goto L3;
L14: write(sum);
write(positives);
`,
		Criterion:         Criterion{Var: "positives", Line: 15},
		ConventionalLines: []int{2, 3, 4, 5, 8, 15},
		AgrawalLines:      []int{2, 3, 4, 5, 7, 8, 13, 15},
		Structured:        false,
		WantTraversals:    2,
		RetargetedLabels:  map[string]int{"L14": 15},
	}
}

// Fig5 is the paper's Figure 5-a: a continue version of the example.
// The slice must include the continue on line 7 (else line 8 executes
// every iteration) but not the one on line 11 (Figure 5-c).
func Fig5() *Figure {
	return &Figure{
		Name:        "Figure 5-a",
		Description: "continue version; slice must include continue 7 but not 11",
		Source: `sum = 0;
positives = 0;
while (!eof()) {
read(x);
if (x <= 0) {
sum = sum + f1(x);
continue; }
positives = positives + 1;
if (x % 2 == 0) {
sum = sum + f2(x);
continue; }
sum = sum + f3(x); }
write(sum);
write(positives);
`,
		Criterion:         Criterion{Var: "positives", Line: 14},
		ConventionalLines: []int{2, 3, 4, 5, 8, 14},
		AgrawalLines:      []int{2, 3, 4, 5, 7, 8, 14},
		StructuredLines:   []int{2, 3, 4, 5, 7, 8, 14},
		ConservativeLines: []int{2, 3, 4, 5, 7, 8, 14},
		Structured:        true,
		WantTraversals:    2,
		RetargetedLabels:  map[string]int{},
	}
}

// Fig8 is the paper's Figure 8-a: like Figure 3-a but with direct
// jumps to L3 instead of the shared L13. Including jumps 11 and 13
// forces predicate 9 into the slice via the dependence closure
// (Figure 8-c).
func Fig8() *Figure {
	return &Figure{
		Name:        "Figure 8-a",
		Description: "direct-goto version; jump closure pulls predicate 9 into the slice",
		Source: `sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L3;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L3;
L12: sum = sum + f3(x);
goto L3;
L14: write(sum);
write(positives);
`,
		Criterion:         Criterion{Var: "positives", Line: 15},
		ConventionalLines: []int{2, 3, 4, 5, 8, 15},
		AgrawalLines:      []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 15},
		Structured:        false,
		WantTraversals:    2,
		RetargetedLabels:  map[string]int{"L12": 13, "L14": 15},
	}
}

// Fig10 is the paper's Figure 10-a (adapted from Ball–Horwitz): an
// unstructured program containing a pair of nodes (4, 7) where 4
// postdominates 7 while 7 lexically succeeds 4, so the Figure 7
// algorithm needs a second preorder traversal to add node 4.
func Fig10() *Figure {
	return &Figure{
		Name:        "Figure 10-a",
		Description: "unstructured program requiring two productive traversals",
		Source: `if (c1()) {
goto L6;
L3: y = f1();
goto L8; }
z = g1();
L6: x = h1();
goto L3;
L8: write(x);
write(y);
write(z);
`,
		Criterion:         Criterion{Var: "y", Line: 9},
		ConventionalLines: []int{3, 9},
		AgrawalLines:      []int{1, 2, 3, 4, 7, 9},
		Structured:        false,
		WantTraversals:    3,
		RetargetedLabels:  map[string]int{"L6": 7, "L8": 9},
	}
}

// Fig14 is the paper's Figure 14-a: a switch with breaks. The Figure
// 12 algorithm keeps only break 3 (Figure 14-b); the conservative
// Figure 13 algorithm also keeps breaks 5 and 7 (Figure 14-c).
func Fig14() *Figure {
	return &Figure{
		Name:        "Figure 14-a",
		Description: "switch/break program separating Figure 12 from Figure 13 precision",
		Source: `switch (c()) {
case 1: x = f1();
break;
case 2: y = f2();
break;
case 3: z = f3();
break; }
write(x);
write(y);
write(z);
`,
		Criterion:         Criterion{Var: "y", Line: 9},
		ConventionalLines: []int{1, 4, 9},
		AgrawalLines:      []int{1, 3, 4, 9},
		StructuredLines:   []int{1, 3, 4, 9},
		ConservativeLines: []int{1, 3, 4, 5, 7, 9},
		Structured:        true,
		WantTraversals:    2,
		RetargetedLabels:  map[string]int{},
	}
}

// Fig16 is the paper's Figure 16-a: the program on which Gallagher's
// algorithm fails. The correct slice keeps the goto on line 4 even
// though no statement of the block labeled L6 is in the slice, and
// re-attaches L6 to line 10 (Figure 16-c).
func Fig16() *Figure {
	return &Figure{
		Name:        "Figure 16-a",
		Description: "forward-goto program on which Gallagher's rule fails",
		Source: `read(x);
if (x < 0) {
y = f1(x);
goto L6; }
y = f2(x);
L6: if (y < 0) {
z = g1(y);
goto L10; }
z = g2(y);
L10: write(y);
write(z);
`,
		Criterion:         Criterion{Var: "y", Line: 10},
		ConventionalLines: []int{1, 2, 3, 5, 10},
		AgrawalLines:      []int{1, 2, 3, 4, 5, 10},
		StructuredLines:   []int{1, 2, 3, 4, 5, 10},
		ConservativeLines: []int{1, 2, 3, 4, 5, 10},
		Structured:        true,
		WantTraversals:    2,
		RetargetedLabels:  map[string]int{"L6": 10},
	}
}
