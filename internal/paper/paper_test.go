package paper

import (
	"reflect"
	"sort"
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// expectedStatementLines lists, per figure, the lines that must carry
// statements — the paper's statement numbering.
var expectedStatementLines = map[string][]int{
	"Figure 1-a":  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	"Figure 3-a":  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	"Figure 5-a":  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
	"Figure 8-a":  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	"Figure 10-a": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	"Figure 14-a": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	"Figure 16-a": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
}

func TestCorpusLineNumbersMatchPaper(t *testing.T) {
	for _, f := range All() {
		want, ok := expectedStatementLines[f.Name]
		if !ok {
			t.Errorf("%s: no expected line list", f.Name)
			continue
		}
		prog := f.Parse()
		seen := map[int]bool{}
		for _, s := range lang.Statements(prog) {
			seen[s.Pos().Line] = true
		}
		var got []int
		for l := range seen {
			got = append(got, l)
		}
		sort.Ints(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: statement lines = %v, want %v", f.Name, got, want)
		}
	}
}

func TestCorpusParsesAndBuilds(t *testing.T) {
	for _, f := range All() {
		prog, err := lang.Parse(f.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", f.Name, err)
			continue
		}
		if _, err := cfg.Build(prog); err != nil {
			t.Errorf("%s: cfg build: %v", f.Name, err)
		}
	}
}

func TestCorpusCriterionLineHasStatement(t *testing.T) {
	for _, f := range All() {
		prog := f.Parse()
		s := lang.StmtAtLine(prog, f.Criterion.Line)
		if s == nil {
			t.Errorf("%s: no statement at criterion line %d", f.Name, f.Criterion.Line)
			continue
		}
		// Every corpus criterion points at a write of the criterion
		// variable.
		uses := lang.Uses(s)
		found := false
		for _, u := range uses {
			if u == f.Criterion.Var {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: statement at line %d does not use %q",
				f.Name, f.Criterion.Line, f.Criterion.Var)
		}
	}
}

func TestCorpusExpectationsAreSubsets(t *testing.T) {
	// Conventional ⊆ Agrawal, and slices only contain statement lines.
	for _, f := range All() {
		lines := map[int]bool{}
		for _, s := range lang.Statements(f.Parse()) {
			lines[s.Pos().Line] = true
		}
		inAgrawal := map[int]bool{}
		for _, l := range f.AgrawalLines {
			inAgrawal[l] = true
			if !lines[l] {
				t.Errorf("%s: Agrawal slice line %d is not a statement line", f.Name, l)
			}
		}
		for _, l := range f.ConventionalLines {
			if !inAgrawal[l] {
				t.Errorf("%s: conventional line %d missing from Agrawal slice", f.Name, l)
			}
		}
		if f.Structured {
			if f.StructuredLines == nil || f.ConservativeLines == nil {
				t.Errorf("%s: structured figure must define Figure 12/13 expectations", f.Name)
			}
			inConservative := map[int]bool{}
			for _, l := range f.ConservativeLines {
				inConservative[l] = true
			}
			for _, l := range f.StructuredLines {
				if !inConservative[l] {
					t.Errorf("%s: Figure 12 line %d missing from conservative slice", f.Name, l)
				}
			}
		}
	}
}

func TestCorpusCoversAllFigures(t *testing.T) {
	names := map[string]bool{}
	for _, f := range All() {
		names[f.Name] = true
	}
	for _, want := range []string{"Figure 1-a", "Figure 3-a", "Figure 5-a",
		"Figure 8-a", "Figure 10-a", "Figure 14-a", "Figure 16-a"} {
		if !names[want] {
			t.Errorf("corpus missing %s", want)
		}
	}
}
