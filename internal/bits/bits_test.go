package bits

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Errorf("new set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("after Add(%d), Has = false", i)
		}
	}
	if got := s.Len(); got != 8 {
		t.Errorf("Len = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Remove(64) did not remove")
	}
	if got := s.Len(); got != 7 {
		t.Errorf("Len after remove = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", i)
				}
			}()
			s.Add(i)
		}()
	}
}

func TestUnionWithReportsChange(t *testing.T) {
	a, b := New(100), New(100)
	b.Add(5)
	b.Add(70)
	if !a.UnionWith(b) {
		t.Error("first union should report change")
	}
	if a.UnionWith(b) {
		t.Error("second union should not report change")
	}
	if !a.Equal(b) {
		t.Errorf("a = %v, want %v", a, b)
	}
}

func TestIntersectAndDifference(t *testing.T) {
	a, b := New(64), New(64)
	for i := 0; i < 64; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 64; i += 3 {
		b.Add(i)
	}
	inter := a.Clone()
	inter.IntersectWith(b)
	inter.ForEach(func(i int) {
		if i%6 != 0 {
			t.Errorf("intersection contains %d", i)
		}
	})
	diff := a.Clone()
	diff.DifferenceWith(b)
	diff.ForEach(func(i int) {
		if i%2 != 0 || i%3 == 0 {
			t.Errorf("difference contains %d", i)
		}
	})
}

func TestMembersOrderedAndString(t *testing.T) {
	s := New(200)
	for _, i := range []int{190, 3, 64, 5} {
		s.Add(i)
	}
	if got := s.Members(); !reflect.DeepEqual(got, []int{3, 5, 64, 190}) {
		t.Errorf("Members = %v", got)
	}
	if got := s.String(); got != "{3, 5, 64, 190}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := New(32)
	a.Add(1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("mutating clone changed original")
	}
	a.Clear()
	if !b.Has(1) {
		t.Error("clearing original changed clone")
	}
	if !a.Empty() {
		t.Error("Clear did not empty the set")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnionWith with mismatched capacity did not panic")
		}
	}()
	New(10).UnionWith(New(20))
}

// Property: union is commutative and idempotent; difference then union
// restores a superset relationship.
func TestSetAlgebraProperties(t *testing.T) {
	const n = 97 // deliberately not a multiple of 64
	mk := func(xs []uint8) *Set {
		s := New(n)
		for _, x := range xs {
			s.Add(int(x) % n)
		}
		return s
	}
	commutative := func(xs, ys []uint8) bool {
		a1, b1 := mk(xs), mk(ys)
		a1.UnionWith(b1)
		a2, b2 := mk(xs), mk(ys)
		b2.UnionWith(a2)
		return a1.Equal(b2)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	idempotent := func(xs []uint8) bool {
		a, b := mk(xs), mk(xs)
		a.UnionWith(b)
		return a.Equal(b)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
	lenConsistent := func(xs []uint8) bool {
		s := mk(xs)
		return s.Len() == len(s.Members())
	}
	if err := quick.Check(lenConsistent, nil); err != nil {
		t.Errorf("Len inconsistent with Members: %v", err)
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	members := []int{0, 3, 63, 64, 100, 190, 199}
	for _, i := range members {
		s.Add(i)
	}
	var got []int
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if !reflect.DeepEqual(got, members) {
		t.Errorf("NextSet iteration = %v, want %v", got, members)
	}
	if got := s.NextSet(1); got != 3 {
		t.Errorf("NextSet(1) = %d, want 3", got)
	}
	if got := s.NextSet(65); got != 100 {
		t.Errorf("NextSet(65) = %d, want 100", got)
	}
	if got := s.NextSet(-5); got != 0 {
		t.Errorf("NextSet(-5) = %d, want 0", got)
	}
	if got := New(64).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
	if got := s.NextSet(200); got != -1 {
		t.Errorf("NextSet past capacity = %d, want -1", got)
	}
}

func TestNextSetMatchesForEach(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		s := New(1 << 16)
		for _, v := range raw {
			s.Add(int(v))
		}
		var a, b []int
		s.ForEach(func(i int) { a = append(a, i) })
		for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
			b = append(b, i)
		}
		return reflect.DeepEqual(a, b)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestForEachWord(t *testing.T) {
	s := New(300)
	for _, i := range []int{1, 64, 65, 299} {
		s.Add(i)
	}
	rebuilt := New(300)
	words := 0
	s.ForEachWord(func(wi int, w uint64) {
		words++
		for b := 0; b < 64; b++ {
			if w&(1<<uint(b)) != 0 {
				rebuilt.Add(wi*64 + b)
			}
		}
	})
	if words != 3 {
		t.Errorf("ForEachWord visited %d words, want 3 (zero words must be skipped)", words)
	}
	if !rebuilt.Equal(s) {
		t.Errorf("ForEachWord rebuilt %v, want %v", rebuilt, s)
	}
}

func TestAppendMembers(t *testing.T) {
	s := New(100)
	s.Add(5)
	s.Add(70)
	buf := make([]int, 0, 8)
	got := s.AppendMembers(buf)
	if !reflect.DeepEqual(got, []int{5, 70}) {
		t.Errorf("AppendMembers = %v, want [5 70]", got)
	}
	got = s.AppendMembers(got[:0])
	if !reflect.DeepEqual(got, []int{5, 70}) {
		t.Errorf("AppendMembers reuse = %v, want [5 70]", got)
	}
	if !reflect.DeepEqual(s.Members(), []int{5, 70}) {
		t.Errorf("Members = %v, want [5 70]", s.Members())
	}
}
