package bits

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Errorf("new set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("after Add(%d), Has = false", i)
		}
	}
	if got := s.Len(); got != 8 {
		t.Errorf("Len = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Remove(64) did not remove")
	}
	if got := s.Len(); got != 7 {
		t.Errorf("Len after remove = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", i)
				}
			}()
			s.Add(i)
		}()
	}
}

func TestUnionWithReportsChange(t *testing.T) {
	a, b := New(100), New(100)
	b.Add(5)
	b.Add(70)
	if !a.UnionWith(b) {
		t.Error("first union should report change")
	}
	if a.UnionWith(b) {
		t.Error("second union should not report change")
	}
	if !a.Equal(b) {
		t.Errorf("a = %v, want %v", a, b)
	}
}

func TestIntersectAndDifference(t *testing.T) {
	a, b := New(64), New(64)
	for i := 0; i < 64; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 64; i += 3 {
		b.Add(i)
	}
	inter := a.Clone()
	inter.IntersectWith(b)
	inter.ForEach(func(i int) {
		if i%6 != 0 {
			t.Errorf("intersection contains %d", i)
		}
	})
	diff := a.Clone()
	diff.DifferenceWith(b)
	diff.ForEach(func(i int) {
		if i%2 != 0 || i%3 == 0 {
			t.Errorf("difference contains %d", i)
		}
	})
}

func TestMembersOrderedAndString(t *testing.T) {
	s := New(200)
	for _, i := range []int{190, 3, 64, 5} {
		s.Add(i)
	}
	if got := s.Members(); !reflect.DeepEqual(got, []int{3, 5, 64, 190}) {
		t.Errorf("Members = %v", got)
	}
	if got := s.String(); got != "{3, 5, 64, 190}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := New(32)
	a.Add(1)
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("mutating clone changed original")
	}
	a.Clear()
	if !b.Has(1) {
		t.Error("clearing original changed clone")
	}
	if !a.Empty() {
		t.Error("Clear did not empty the set")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnionWith with mismatched capacity did not panic")
		}
	}()
	New(10).UnionWith(New(20))
}

// Property: union is commutative and idempotent; difference then union
// restores a superset relationship.
func TestSetAlgebraProperties(t *testing.T) {
	const n = 97 // deliberately not a multiple of 64
	mk := func(xs []uint8) *Set {
		s := New(n)
		for _, x := range xs {
			s.Add(int(x) % n)
		}
		return s
	}
	commutative := func(xs, ys []uint8) bool {
		a1, b1 := mk(xs), mk(ys)
		a1.UnionWith(b1)
		a2, b2 := mk(xs), mk(ys)
		b2.UnionWith(a2)
		return a1.Equal(b2)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	idempotent := func(xs []uint8) bool {
		a, b := mk(xs), mk(xs)
		a.UnionWith(b)
		return a.Equal(b)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
	lenConsistent := func(xs []uint8) bool {
		s := mk(xs)
		return s.Len() == len(s.Members())
	}
	if err := quick.Check(lenConsistent, nil); err != nil {
		t.Errorf("Len inconsistent with Members: %v", err)
	}
}
