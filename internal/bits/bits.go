// Package bits provides a dense bit set used by the dataflow and
// slicing engines. Sets are fixed-capacity (sized at creation by node
// count) and support the handful of operations iterative dataflow
// needs: set/clear/test, union, intersection, difference, copy, and
// ordered iteration.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New for a usable set.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set able to hold members 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bits.New: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity of the set (the n given to New).
func (s *Set) Cap() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bits: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of members.
func (s *Set) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all members.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of other. The sets must have the
// same capacity.
func (s *Set) Copy(other *Set) {
	s.sameCap(other)
	copy(s.words, other.words)
}

func (s *Set) sameCap(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bits: capacity mismatch %d vs %d", s.n, other.n))
	}
}

// UnionWith adds every member of other to s and reports whether s
// changed. The changed report lets dataflow loops detect fixpoints
// without comparing whole sets.
func (s *Set) UnionWith(other *Set) bool {
	s.sameCap(other)
	changed := false
	for i, w := range other.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes members of s not present in other.
func (s *Set) IntersectWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// DifferenceWith removes every member of other from s.
func (s *Set) DifferenceWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// Equal reports whether s and other contain the same members.
func (s *Set) Equal(other *Set) bool {
	s.sameCap(other)
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each member in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// ForEachWord calls fn for each nonzero word of the set, passing the
// word index (members in the word are wi*64 + bit offsets). It is the
// word-granular counterpart of ForEach for callers that can process
// 64 members at a time.
func (s *Set) ForEachWord(fn func(wi int, w uint64)) {
	for wi, w := range s.words {
		if w != 0 {
			fn(wi, w)
		}
	}
}

// NextSet returns the smallest member >= i, or -1 if there is none.
// It enables allocation- and closure-free iteration:
//
//	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) { ... }
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Members returns the members in increasing order.
func (s *Set) Members() []int {
	return s.AppendMembers(make([]int, 0, s.Len()))
}

// AppendMembers appends the members in increasing order to dst and
// returns the extended slice, letting hot paths reuse a scratch
// buffer across calls.
func (s *Set) AppendMembers(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			dst = append(dst, wi*wordBits+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	})
	sb.WriteByte('}')
	return sb.String()
}
