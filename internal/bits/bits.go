// Package bits provides a dense bit set used by the dataflow and
// slicing engines. Sets are fixed-capacity (sized at creation by node
// count) and support the handful of operations iterative dataflow
// needs: set/clear/test, union, intersection, difference, copy, and
// ordered iteration.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New for a usable set.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set able to hold members 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bits.New: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity of the set (the n given to New).
func (s *Set) Cap() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bits: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of members.
func (s *Set) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all members.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of other. The sets must have the
// same capacity.
func (s *Set) Copy(other *Set) {
	s.sameCap(other)
	copy(s.words, other.words)
}

func (s *Set) sameCap(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bits: capacity mismatch %d vs %d", s.n, other.n))
	}
}

// UnionWith adds every member of other to s and reports whether s
// changed. The changed report lets dataflow loops detect fixpoints
// without comparing whole sets.
func (s *Set) UnionWith(other *Set) bool {
	s.sameCap(other)
	changed := false
	for i, w := range other.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes members of s not present in other.
func (s *Set) IntersectWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// DifferenceWith removes every member of other from s.
func (s *Set) DifferenceWith(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// Equal reports whether s and other contain the same members.
func (s *Set) Equal(other *Set) bool {
	s.sameCap(other)
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each member in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Members returns the members in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
	})
	sb.WriteByte('}')
	return sb.String()
}
