package bits

import "math/bits"

// AndNot is an iterator view of the set difference a \ b. It holds
// references to both sets and computes difference words on the fly,
// so building one allocates nothing and materializes nothing — the
// incremental reuse engine walks slice deltas (lines added by an
// edit, lines removed) through this view without an intermediate set.
// The view reads the underlying sets lazily; mutating them
// invalidates it.
type AndNot struct {
	a, b *Set
}

// Diff returns an iterator view of s \ other. The sets must have the
// same capacity.
func (s *Set) Diff(other *Set) AndNot {
	s.sameCap(other)
	return AndNot{a: s, b: other}
}

// Next returns the smallest member >= i of the difference, or -1 if
// there is none. Iterate like Set.NextSet:
//
//	for i := d.Next(0); i >= 0; i = d.Next(i + 1) { ... }
func (d AndNot) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= d.a.n {
		return -1
	}
	wi := i / wordBits
	w := (d.a.words[wi] &^ d.b.words[wi]) >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(d.a.words); wi++ {
		if w := d.a.words[wi] &^ d.b.words[wi]; w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Count returns the number of members of the difference.
func (d AndNot) Count() int {
	total := 0
	for wi, aw := range d.a.words {
		total += bits.OnesCount64(aw &^ d.b.words[wi])
	}
	return total
}

// Empty reports whether the difference has no members.
func (d AndNot) Empty() bool {
	for wi, aw := range d.a.words {
		if aw&^d.b.words[wi] != 0 {
			return false
		}
	}
	return true
}

// AppendMembers appends the members of the difference in increasing
// order to dst and returns the extended slice.
func (d AndNot) AppendMembers(dst []int) []int {
	for wi, aw := range d.a.words {
		w := aw &^ d.b.words[wi]
		for w != 0 {
			dst = append(dst, wi*wordBits+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}
