package bits

import (
	"math/rand"
	"testing"
)

func TestDiffMatchesDifferenceWith(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		want := a.Clone()
		want.DifferenceWith(b)

		d := a.Diff(b)
		if got := d.Count(); got != want.Len() {
			t.Fatalf("n=%d: Count = %d, want %d", n, got, want.Len())
		}
		if d.Empty() != want.Empty() {
			t.Fatalf("n=%d: Empty = %v, want %v", n, d.Empty(), want.Empty())
		}
		var got []int
		for i := d.Next(0); i >= 0; i = d.Next(i + 1) {
			got = append(got, i)
		}
		wantMembers := want.Members()
		if len(got) != len(wantMembers) {
			t.Fatalf("n=%d: members %v, want %v", n, got, wantMembers)
		}
		for i := range got {
			if got[i] != wantMembers[i] {
				t.Fatalf("n=%d: members %v, want %v", n, got, wantMembers)
			}
		}
		appended := d.AppendMembers(nil)
		if len(appended) != len(wantMembers) {
			t.Fatalf("n=%d: AppendMembers %v, want %v", n, appended, wantMembers)
		}
	}
}

func TestDiffCapacityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Diff on mismatched capacities should panic")
		}
	}()
	New(10).Diff(New(20))
}

// TestDiffZeroAllocs pins the satellite requirement: constructing and
// walking the difference view allocates nothing.
func TestDiffZeroAllocs(t *testing.T) {
	a, b := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		a.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		b.Add(i)
	}
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		d := a.Diff(b)
		for i := d.Next(0); i >= 0; i = d.Next(i + 1) {
			sink += i
		}
		sink += d.Count()
	})
	if allocs != 0 {
		t.Fatalf("Diff iteration allocates %v allocs/op, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("iteration visited nothing")
	}
}

func BenchmarkDiffIterate(b *testing.B) {
	x, y := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		y.Add(i)
	}
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		d := x.Diff(y)
		for j := d.Next(0); j >= 0; j = d.Next(j + 1) {
			sink += j
		}
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}
