package obs

import (
	"bytes"
	"testing"
)

// TestPrometheusGolden pins the exact exposition bytes for a fixed
// snapshot: counter naming (_total), histogram unit suffixing, sparse
// cumulative buckets with explicit le bounds, the unbounded overflow
// bucket rendered as +Inf, and name-sorted deterministic order.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.slices").Add(3)
	r.Counter("pdg.closure_hits").Add(5)
	sizes := r.Histogram("core.slice_nodes", UnitCount)
	for _, v := range []int64{1, 2, 3, 1 << 50} {
		sizes.Observe(v)
	}
	phase := r.Histogram("phase.analyze", UnitNanoseconds)
	phase.Observe(100)
	phase.Observe(200)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE jumpslice_core_slices_total counter
jumpslice_core_slices_total 3
# TYPE jumpslice_pdg_closure_hits_total counter
jumpslice_pdg_closure_hits_total 5
# TYPE jumpslice_core_slice_nodes histogram
jumpslice_core_slice_nodes_bucket{le="1"} 1
jumpslice_core_slice_nodes_bucket{le="3"} 3
jumpslice_core_slice_nodes_bucket{le="+Inf"} 4
jumpslice_core_slice_nodes_sum 1125899906842630
jumpslice_core_slice_nodes_count 4
# TYPE jumpslice_phase_analyze_ns histogram
jumpslice_phase_analyze_ns_bucket{le="127"} 1
jumpslice_phase_analyze_ns_bucket{le="255"} 2
jumpslice_phase_analyze_ns_bucket{le="+Inf"} 2
jumpslice_phase_analyze_ns_sum 300
jumpslice_phase_analyze_ns_count 2
`
	if got := buf.String(); got != want {
		t.Errorf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusCacheNamesGolden pins the wire names of the slice
// cache's instruments (internal/slicecache resolves these from its
// recorder): counters render with _total, the resident-size gauges
// render bare, and gauges sort between counters and histograms. CI's
// sliced-smoke job greps for jumpslice_cache_hits_total, so this
// golden is the contract that name never drifts.
func TestPrometheusCacheNamesGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.hits").Add(7)
	r.Counter("cache.misses").Add(2)
	r.Counter("cache.coalesced").Add(3)
	r.Counter("cache.evictions").Add(1)
	r.Counter("cache.neg_hits").Add(1)
	r.Gauge("cache.resident_bytes").Set(4096)
	r.Gauge("cache.entries").Set(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE jumpslice_cache_coalesced_total counter
jumpslice_cache_coalesced_total 3
# TYPE jumpslice_cache_evictions_total counter
jumpslice_cache_evictions_total 1
# TYPE jumpslice_cache_hits_total counter
jumpslice_cache_hits_total 7
# TYPE jumpslice_cache_misses_total counter
jumpslice_cache_misses_total 2
# TYPE jumpslice_cache_neg_hits_total counter
jumpslice_cache_neg_hits_total 1
# TYPE jumpslice_cache_entries gauge
jumpslice_cache_entries 2
# TYPE jumpslice_cache_resident_bytes gauge
jumpslice_cache_resident_bytes 4096
`
	if got := buf.String(); got != want {
		t.Errorf("cache exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusEmptySnapshot renders nothing for an empty registry.
func TestPrometheusEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", buf.String())
	}
}
