package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeSamplerRecordsVitals(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, 100*time.Millisecond)
	defer s.Stop()
	// The first sample is synchronous: gauges are populated before
	// StartRuntimeSampler returns.
	if got := reg.Gauge("runtime.goroutines").Value(); got < 1 {
		t.Errorf("runtime.goroutines = %d, want >= 1", got)
	}
	if got := reg.Gauge("runtime.gomaxprocs").Value(); got != int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("runtime.gomaxprocs = %d, want %d", got, runtime.GOMAXPROCS(0))
	}
	if got := reg.Gauge("runtime.heap_alloc_bytes").Value(); got <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %d, want > 0", got)
	}
	if got := reg.Gauge("runtime.heap_sys_bytes").Value(); got <= 0 {
		t.Errorf("runtime.heap_sys_bytes = %d, want > 0", got)
	}
}

func TestRuntimeSamplerObservesGCPauses(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, 100*time.Millisecond)
	before := reg.Histogram("runtime.gc_pause_ns", UnitNanoseconds).Count()
	runtime.GC()
	runtime.GC()
	// Wait for the ticker to pick the cycles up.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Histogram("runtime.gc_pause_ns", UnitNanoseconds).Count() < before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("gc_pause_ns count stuck at %d after 2 forced GCs",
				reg.Histogram("runtime.gc_pause_ns", UnitNanoseconds).Count())
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.Stop()
	// Stop is idempotent and nil-safe.
	s.Stop()
	var nilS *RuntimeSampler
	nilS.Stop()
}

// TestScrubDropsRuntimeAndHTTP pins the determinism contract: every
// runtime.* and http.* instrument — including histogram observation
// counts, which depend on GC scheduling — vanishes from a scrubbed
// snapshot, while pipeline instruments survive.
func TestScrubDropsRuntimeAndHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.slices").Add(3)
	reg.Counter("http.incr.patched").Add(2)
	reg.Gauge("runtime.goroutines").Set(14)
	reg.Gauge("cache.resident_bytes").Set(100)
	reg.Histogram("runtime.gc_pause_ns", UnitNanoseconds).Observe(5)
	reg.Histogram("core.phase.cfg", UnitNanoseconds).Observe(7)

	s := reg.Snapshot().Scrub()
	for _, c := range s.Counters {
		if scrubbedName(c.Name) {
			t.Errorf("scrubbed snapshot kept counter %s", c.Name)
		}
	}
	for _, g := range s.Gauges {
		if scrubbedName(g.Name) {
			t.Errorf("scrubbed snapshot kept gauge %s", g.Name)
		}
	}
	for _, h := range s.Histograms {
		if scrubbedName(h.Name) {
			t.Errorf("scrubbed snapshot kept histogram %s", h.Name)
		}
	}
	find := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	var counters, gauges, hists []string
	for _, c := range s.Counters {
		counters = append(counters, c.Name)
	}
	for _, g := range s.Gauges {
		gauges = append(gauges, g.Name)
	}
	for _, h := range s.Histograms {
		hists = append(hists, h.Name)
	}
	if !find(counters, "core.slices") || !find(gauges, "cache.resident_bytes") || !find(hists, "core.phase.cfg") {
		t.Errorf("scrub dropped deterministic instruments: counters=%v gauges=%v hists=%v", counters, gauges, hists)
	}
}
