package obs

// Tracing: request-scoped structured events in a bounded, lossy,
// lock-free flight recorder.
//
// Where the Registry answers "how much, in aggregate" (counters,
// histograms), the Tracer answers "what happened, in order, on this
// request": phase begin/end, fixpoint traversal passes, jump
// admissions with the nearest-postdominator/lexical-successor evidence
// the Figure 7 rule saw, closure-cache activity. Events land in a
// FlightRecorder — a fixed-size ring that keeps the most recent N
// events and evicts the oldest, with exact accounting of how many were
// evicted — so a long-lived process can always answer "what were you
// just doing" without unbounded memory.
//
// The same discipline as the metrics side applies: the nil *Tracer is
// a valid no-op, every method starts with one nil-check, and no clock
// is read and nothing is allocated when tracing is off. Instrumented
// code holds a *Tracer (nil by default) next to its pre-resolved
// instruments.

import (
	"sync/atomic"
	"time"
)

// EventKind classifies one trace event.
type EventKind uint8

// The event kinds.
const (
	// KindSpan is a completed phase: TS is the start, Dur the elapsed
	// nanoseconds.
	KindSpan EventKind = iota
	// KindInstant is a generic point event with an optional count N.
	KindInstant
	// KindTraversal is one fixpoint pass of a jump-detection loop
	// (Figures 7, 12, 13); N is the 1-based pass number.
	KindTraversal
	// KindJumpAdmitted is a jump admission: Node is the jump's
	// flowgraph node, PD/LS the nearest-postdominator and nearest-
	// lexical-successor evidence observed at admission time.
	KindJumpAdmitted
	// KindCacheHit is a closure-cache lookup answered from a memoized
	// component closure; Node is the component index.
	KindCacheHit
	// KindCacheBuild is a component closure being materialized; Node
	// is the component index.
	KindCacheBuild
	// KindSlice is a finished slice; N is its node count.
	KindSlice
	// KindCancel is a cooperative cancellation being honoured: the
	// analysis pipeline observed its context's cancellation and
	// abandoned the request. Name is the site that noticed ("analyze",
	// "fig7", "closure", ...).
	KindCancel
)

// String names the kind as it appears in JSONL exports.
func (k EventKind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindInstant:
		return "instant"
	case KindTraversal:
		return "traversal"
	case KindJumpAdmitted:
		return "jump-admitted"
	case KindCacheHit:
		return "cache-hit"
	case KindCacheBuild:
		return "cache-build"
	case KindSlice:
		return "slice"
	case KindCancel:
		return "cancel"
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one trace event. Events are immutable once published.
type Event struct {
	// Seq is the event's global sequence number: the i-th event ever
	// published to the flight recorder has Seq i.
	Seq uint64 `json:"seq"`
	// Req scopes the event to one request (0 outside any request).
	Req uint64 `json:"req"`
	// Kind classifies the event; Name names the phase or rule.
	Kind EventKind `json:"kind"`
	Name string    `json:"name"`
	// TS is the event time (for spans: the start) in nanoseconds since
	// the Unix epoch; Dur is the span's elapsed nanoseconds (0 for
	// point events).
	TS  int64 `json:"ts_ns"`
	Dur int64 `json:"dur_ns,omitempty"`
	// Node, PD and LS carry node evidence for jump admissions (and the
	// component index for cache events); -1 when absent.
	Node int `json:"node"`
	PD   int `json:"pd"`
	LS   int `json:"ls"`
	// N is a generic count: traversal pass number, slice node count.
	N int64 `json:"n,omitempty"`
}

// FlightRecorder is a fixed-capacity, lossy ring of the most recent
// trace events. Writers are lock-free: publishing is one atomic
// fetch-add to reserve a slot plus one atomic pointer store, so any
// number of request goroutines can share a recorder. When the ring is
// full the oldest events are evicted by overwrite; Dropped reports
// exactly how many, because the reservation counter never loses a
// write. Readers (Events) see a best-effort snapshot: under heavy
// concurrent writing a slot can briefly hold an event older than the
// newest evicted one, which is the accepted cost of never blocking
// the writers.
type FlightRecorder struct {
	mask  uint64
	slots []atomic.Pointer[Event]
	head  atomic.Uint64 // events ever published
}

// NewFlightRecorder returns a recorder keeping the most recent
// capacity events (rounded up to a power of two; minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int { return len(f.slots) }

// publish assigns the event its sequence number and stores it.
func (f *FlightRecorder) publish(e *Event) {
	e.Seq = f.head.Add(1) - 1
	f.slots[e.Seq&f.mask].Store(e)
}

// Written returns the number of events ever published (0 on nil).
func (f *FlightRecorder) Written() uint64 {
	if f == nil {
		return 0
	}
	return f.head.Load()
}

// Dropped returns the number of events evicted from the ring: every
// published event beyond the ring's capacity displaced an oldest one.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	if w := f.head.Load(); w > uint64(len(f.slots)) {
		return w - uint64(len(f.slots))
	}
	return 0
}

// Events returns a snapshot of the buffered events, oldest first
// (ascending Seq). Nil recorder returns nil.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	out := make([]Event, 0, len(f.slots))
	for i := range f.slots {
		if e := f.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	// Slots hold distinct sequence numbers (slot index ≡ Seq mod cap),
	// so sorting by Seq restores publication order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RequestEvents returns the buffered events of one request, oldest
// first.
func (f *FlightRecorder) RequestEvents(req uint64) []Event {
	all := f.Events()
	out := all[:0]
	for _, e := range all {
		if e.Req == req {
			out = append(out, e)
		}
	}
	return out[:len(out):len(out)]
}

// Tracer publishes events into a FlightRecorder, stamped with one
// request ID. The nil Tracer is a valid no-op: every method costs one
// nil-check, reads no clock, allocates nothing — the same disabled-
// case contract as the nil Counter and Histogram.
type Tracer struct {
	fr  *FlightRecorder
	req uint64
	// spans, when non-nil, receives a copy of every span this tracer
	// publishes (see WithSpans) — the per-request phase collector wide
	// events are assembled from.
	spans *SpanLog
}

// NewTracer returns a tracer publishing into fr with request ID 0
// (process scope). Returns nil when fr is nil, keeping the no-op
// contract composable.
func NewTracer(fr *FlightRecorder) *Tracer {
	if fr == nil {
		return nil
	}
	return &Tracer{fr: fr}
}

// ForRequest returns a tracer publishing into the same recorder with
// events stamped req — the per-request child a daemon hands each
// request's pipeline. Nil-safe.
func (t *Tracer) ForRequest(req uint64) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{fr: t.fr, req: req, spans: t.spans}
}

// WithSpans returns a tracer that additionally tees every span it
// publishes into l, so one request's exact phase timings can be
// collected without scanning the shared flight recorder. A nil l
// returns t unchanged; the nil tracer stays nil (no recorder means no
// spans are published to tee).
func (t *Tracer) WithSpans(l *SpanLog) *Tracer {
	if t == nil || l == nil {
		return t
	}
	return &Tracer{fr: t.fr, req: t.req, spans: l}
}

// Recorder returns the underlying flight recorder (nil on nil).
func (t *Tracer) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.fr
}

// emit stamps and publishes one event.
func (t *Tracer) emit(kind EventKind, name string, node, pd, ls int, n int64) {
	t.fr.publish(&Event{
		Req:  t.req,
		Kind: kind,
		Name: name,
		TS:   time.Now().UnixNano(),
		Node: node,
		PD:   pd,
		LS:   ls,
		N:    n,
	})
}

// Instant publishes a generic point event. No-op on nil.
func (t *Tracer) Instant(name string, n int64) {
	if t == nil {
		return
	}
	t.emit(KindInstant, name, -1, -1, -1, n)
}

// Traversal publishes one fixpoint pass of the named jump-detection
// loop (pass is 1-based). No-op on nil.
func (t *Tracer) Traversal(name string, pass int) {
	if t == nil {
		return
	}
	t.emit(KindTraversal, name, -1, -1, -1, int64(pass))
}

// JumpAdmitted publishes a jump admission with its rule evidence: the
// jump's node and the nearest-postdominator/nearest-lexical-successor
// pair observed at admission time. No-op on nil.
func (t *Tracer) JumpAdmitted(name string, node, pd, ls int) {
	if t == nil {
		return
	}
	t.emit(KindJumpAdmitted, name, node, pd, ls, 0)
}

// CacheHit publishes a closure-cache hit on the given component;
// CacheBuild a component closure materialization. No-ops on nil.
func (t *Tracer) CacheHit(comp int) {
	if t == nil {
		return
	}
	t.emit(KindCacheHit, "pdg.closure", comp, -1, -1, 0)
}

// CacheBuild publishes a component closure materialization.
func (t *Tracer) CacheBuild(comp int) {
	if t == nil {
		return
	}
	t.emit(KindCacheBuild, "pdg.closure", comp, -1, -1, 0)
}

// Canceled publishes a cancellation event: the instrumented pipeline
// observed its context's cancellation at the named site and is
// abandoning the work. No-op on nil.
func (t *Tracer) Canceled(where string) {
	if t == nil {
		return
	}
	t.emit(KindCancel, where, -1, -1, -1, 0)
}

// SliceDone publishes a finished slice of nodes nodes. No-op on nil.
func (t *Tracer) SliceDone(name string, nodes int) {
	if t == nil {
		return
	}
	t.emit(KindSlice, name, -1, -1, -1, int64(nodes))
}

// TraceSpan times one phase for the trace, the tracing twin of Span.
// The zero TraceSpan (what a nil Tracer hands out) is a no-op whose
// End neither reads the clock nor publishes.
type TraceSpan struct {
	t     *Tracer
	name  string
	start time.Time
}

// StartSpan starts a phase span. On a nil tracer it returns the zero
// (no-op) TraceSpan without reading the clock.
func (t *Tracer) StartSpan(name string) TraceSpan {
	if t == nil {
		return TraceSpan{}
	}
	return TraceSpan{t: t, name: name, start: time.Now()}
}

// End publishes the completed span.
func (s TraceSpan) End() {
	if s.t == nil {
		return
	}
	dur := int64(time.Since(s.start))
	s.t.fr.publish(&Event{
		Req:  s.t.req,
		Kind: KindSpan,
		Name: s.name,
		TS:   s.start.UnixNano(),
		Dur:  dur,
		Node: -1,
		PD:   -1,
		LS:   -1,
	})
	s.t.spans.Add(s.name, dur)
}
