package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Instant("x", 1)
	tr.Traversal("fig7", 1)
	tr.JumpAdmitted("fig7", 3, 4, 5)
	tr.CacheHit(0)
	tr.CacheBuild(0)
	tr.SliceDone("agrawal", 9)
	sp := tr.StartSpan("phase")
	if sp.t != nil || !sp.start.IsZero() {
		t.Error("nil tracer StartSpan not zero")
	}
	sp.End()
	if tr.ForRequest(7) != nil {
		t.Error("nil tracer ForRequest != nil")
	}
	if tr.Recorder() != nil {
		t.Error("nil tracer Recorder != nil")
	}
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) != nil")
	}
	var fr *FlightRecorder
	if fr.Written() != 0 || fr.Dropped() != 0 || fr.Events() != nil {
		t.Error("nil flight recorder not a no-op")
	}
}

// TestFlightRecorderEvictsOldest pins the single-writer semantics
// exactly: a full ring holds the most recent Cap events, the oldest
// having been evicted in publication order, with Dropped counting
// every eviction.
func TestFlightRecorderEvictsOldest(t *testing.T) {
	fr := NewFlightRecorder(8)
	if fr.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", fr.Cap())
	}
	tr := NewTracer(fr)
	for i := 0; i < 20; i++ {
		tr.Instant("e", int64(i))
	}
	if fr.Written() != 20 {
		t.Errorf("written = %d, want 20", fr.Written())
	}
	if fr.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", fr.Dropped())
	}
	evs := fr.Events()
	if len(evs) != 8 {
		t.Fatalf("buffered = %d, want 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(12 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest evicted first)", i, e.Seq, want)
		}
		if e.N != int64(e.Seq) {
			t.Errorf("event seq %d carries n = %d", e.Seq, e.N)
		}
	}
}

// TestFlightRecorderConcurrentDropAccounting proves the accounting is
// exact under concurrent writers: the reservation counter never loses
// a publish, so written and dropped are precise even while the ring
// wraps many times over; the buffered snapshot stays consistent
// (distinct sequence numbers, each mapping to its own slot).
func TestFlightRecorderConcurrentDropAccounting(t *testing.T) {
	const (
		workers = 8
		each    = 1000
		cap     = 16
	)
	fr := NewFlightRecorder(cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := NewTracer(fr).ForRequest(uint64(w))
			for i := 0; i < each; i++ {
				tr.Instant("e", int64(i))
			}
		}()
	}
	wg.Wait()
	if fr.Written() != workers*each {
		t.Errorf("written = %d, want %d", fr.Written(), workers*each)
	}
	if want := uint64(workers*each - cap); fr.Dropped() != want {
		t.Errorf("dropped = %d, want %d", fr.Dropped(), want)
	}
	evs := fr.Events()
	if len(evs) != cap {
		t.Fatalf("buffered = %d, want %d", len(evs), cap)
	}
	seen := map[uint64]bool{}
	for _, e := range evs {
		if e.Seq >= workers*each {
			t.Errorf("seq %d out of range", e.Seq)
		}
		if seen[e.Seq] {
			t.Errorf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Req >= workers {
			t.Errorf("unexpected request id %d", e.Req)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("events not seq-ascending at %d", i)
		}
	}
}

func TestTracerEventFieldsAndRequestScope(t *testing.T) {
	fr := NewFlightRecorder(64)
	root := NewTracer(fr)
	r1 := root.ForRequest(1)
	r2 := root.ForRequest(2)

	sp := r1.StartSpan("phase.analyze")
	sp.End()
	r1.Traversal("fig7", 2)
	r1.JumpAdmitted("fig7", 7, 13, 8)
	r2.SliceDone("agrawal", 42)

	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	if evs[0].Kind != KindSpan || evs[0].Name != "phase.analyze" || evs[0].Req != 1 || evs[0].Dur < 0 {
		t.Errorf("span event = %+v", evs[0])
	}
	if evs[1].Kind != KindTraversal || evs[1].N != 2 {
		t.Errorf("traversal event = %+v", evs[1])
	}
	j := evs[2]
	if j.Kind != KindJumpAdmitted || j.Node != 7 || j.PD != 13 || j.LS != 8 {
		t.Errorf("jump event = %+v", j)
	}
	if evs[3].Req != 2 || evs[3].Kind != KindSlice || evs[3].N != 42 {
		t.Errorf("slice event = %+v", evs[3])
	}

	req1 := fr.RequestEvents(1)
	if len(req1) != 3 {
		t.Errorf("request 1 events = %d, want 3", len(req1))
	}
	for _, e := range req1 {
		if e.Req != 1 {
			t.Errorf("foreign event in request view: %+v", e)
		}
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	fr := NewFlightRecorder(8)
	tr := NewTracer(fr).ForRequest(3)
	tr.JumpAdmitted("fig7", 7, 13, 8)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fr.Events()); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("JSONL line not valid JSON: %v\n%s", err, line)
	}
	if got["kind"] != "jump-admitted" || got["req"] != float64(3) || got["pd"] != float64(13) {
		t.Errorf("JSONL fields = %v", got)
	}
}

// TestChromeTraceSchema checks the trace_event export is valid JSON in
// the object container format, with the fields the Chrome/Perfetto
// loaders require: a traceEvents array whose entries carry name, a
// known phase, microsecond ts (rebased to 0), and pid/tid.
func TestChromeTraceSchema(t *testing.T) {
	fr := NewFlightRecorder(64)
	tr := NewTracer(fr).ForRequest(5)
	sp := tr.StartSpan("phase.analyze")
	sp.End()
	tr.JumpAdmitted("fig7", 7, 13, 8)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fr.Events()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   *float64          `json:"ts"`
			PID  int               `json:"pid"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(trace.TraceEvents))
	}
	for _, e := range trace.TraceEvents {
		if e.Name == "" || e.TS == nil || *e.TS < 0 || e.PID != 1 || e.TID != 5 {
			t.Errorf("malformed trace event: %+v", e)
		}
		if e.Ph != "X" && e.Ph != "i" {
			t.Errorf("unknown phase %q", e.Ph)
		}
	}
	if trace.TraceEvents[0].Ph != "X" {
		t.Errorf("span should export as complete event, got %q", trace.TraceEvents[0].Ph)
	}
	if got := trace.TraceEvents[1].Args["nearest_pd"]; got != "13" {
		t.Errorf("jump admission args = %v", trace.TraceEvents[1].Args)
	}
}
