package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRequestLogRingEviction(t *testing.T) {
	l := NewRequestLog(4)
	if l.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", l.Cap())
	}
	for i := 1; i <= 6; i++ {
		l.Record(WideEvent{Req: uint64(i)})
	}
	if l.Written() != 6 {
		t.Fatalf("Written = %d, want 6", l.Written())
	}
	ev := l.Events()
	if len(ev) != 4 {
		t.Fatalf("Events len = %d, want 4", len(ev))
	}
	// Oldest first: 3, 4, 5, 6 survive.
	for i, want := range []uint64{3, 4, 5, 6} {
		if ev[i].Req != want {
			t.Errorf("event %d Req = %d, want %d", i, ev[i].Req, want)
		}
	}
}

func TestRequestLogPartialFill(t *testing.T) {
	l := NewRequestLog(8)
	l.Record(WideEvent{Req: 1})
	l.Record(WideEvent{Req: 2})
	ev := l.Events()
	if len(ev) != 2 || ev[0].Req != 1 || ev[1].Req != 2 {
		t.Fatalf("Events = %+v, want [1 2]", ev)
	}
}

func TestRequestLogNilSafe(t *testing.T) {
	var l *RequestLog
	l.Record(WideEvent{Req: 1})
	if l.Events() != nil || l.Written() != 0 || l.Cap() != 0 {
		t.Error("nil RequestLog is not a no-op")
	}
}

// TestRequestLogConcurrentWriters hammers the ring from many writers
// while a reader snapshots concurrently; under -race this proves the
// ring is data-race free, and the final state must account for every
// write.
func TestRequestLogConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 500
	l := NewRequestLog(64)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, e := range l.Events() {
					if e.Req == 0 {
						t.Error("snapshot observed a zero (torn) event")
						return
					}
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Record(WideEvent{Req: uint64(w*perWriter + i + 1), Status: 200})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := l.Written(); got != writers*perWriter {
		t.Fatalf("Written = %d, want %d", got, writers*perWriter)
	}
	if got := len(l.Events()); got != 64 {
		t.Fatalf("Events len = %d, want full ring 64", got)
	}
}

func TestSpanLogCollects(t *testing.T) {
	fr := NewFlightRecorder(16)
	sl := &SpanLog{}
	tr := NewTracer(fr).ForRequest(7).WithSpans(sl)
	tr.StartSpan("cfg").End()
	tr.StartSpan("pdg").End()
	spans := sl.Spans()
	if len(spans) != 2 || spans[0].Name != "cfg" || spans[1].Name != "pdg" {
		t.Fatalf("Spans = %+v, want cfg then pdg", spans)
	}
	for _, s := range spans {
		if s.NS < 0 {
			t.Errorf("span %s has negative duration %d", s.Name, s.NS)
		}
	}
	// The tee must not replace publication: the recorder saw both.
	if got := len(fr.RequestEvents(7)); got != 2 {
		t.Fatalf("flight recorder has %d events for req 7, want 2", got)
	}
}

// TestSpanLogSurvivesForRequest checks the collector propagates when
// the daemon derives per-request tracers in either order.
func TestSpanLogSurvivesForRequest(t *testing.T) {
	fr := NewFlightRecorder(16)
	sl := &SpanLog{}
	tr := NewTracer(fr).WithSpans(sl).ForRequest(9)
	tr.StartSpan("dataflow").End()
	if got := sl.Spans(); len(got) != 1 || got[0].Name != "dataflow" {
		t.Fatalf("Spans = %+v, want [dataflow]", got)
	}
}

func TestSpanLogNilSafe(t *testing.T) {
	var sl *SpanLog
	sl.Add("x", 1)
	if sl.Spans() != nil {
		t.Error("nil SpanLog is not a no-op")
	}
	// WithSpans(nil) leaves the tracer usable and un-teed.
	tr := NewTracer(NewFlightRecorder(4)).WithSpans(nil)
	tr.StartSpan("x").End()
	// Nil tracer stays nil through WithSpans.
	var nilTr *Tracer
	if nilTr.WithSpans(&SpanLog{}) != nil {
		t.Error("nil tracer should stay nil")
	}
}

func TestWideEventJSONShape(t *testing.T) {
	// Sparse events (a /metrics scrape, say) must omit the slicing-
	// specific fields entirely.
	b, err := json.Marshal(WideEvent{Req: 1, Method: "GET", Path: "/healthz", Endpoint: "/healthz", Status: 200, Outcome: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"algo", "cache", "incremental", "phases", "error_code"} {
		if strings.Contains(string(b), `"`+absent+`"`) {
			t.Errorf("sparse event JSON should omit %q: %s", absent, b)
		}
	}
	// A full event carries everything.
	full := WideEvent{
		Req: 2, Method: "POST", Path: "/slice", Endpoint: "/slice", Status: 200,
		Outcome: "ok", Algo: "agrawal", Stmts: 14, SliceLines: 9, Cache: "hit",
		Incremental: "patched", Phases: []PhaseDur{{Name: "cfg", NS: 1000}},
	}
	b, err = json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	var back WideEvent
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cache != "hit" || back.Incremental != "patched" || len(back.Phases) != 1 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}
