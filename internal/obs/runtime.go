package obs

// Runtime health: a sampler goroutine recording Go runtime vitals
// into the standard obs instruments, so goroutine leaks, heap growth,
// and GC pressure show up on the same /metrics surface as the
// pipeline counters. Everything lands under the "runtime." prefix,
// which Snapshot.Scrub removes wholesale — the values depend on the
// machine and the scheduler, never on the workload's semantics.

import (
	"runtime"
	"time"
)

// RuntimeSampler periodically samples runtime vitals into a Recorder.
// Construct with StartRuntimeSampler; call Stop to halt the sampling
// goroutine (idempotent on a nil sampler).
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler samples immediately and then every interval
// (minimum 100ms) until Stop, recording:
//
//	runtime.goroutines        gauge     live goroutine count
//	runtime.gomaxprocs        gauge     GOMAXPROCS
//	runtime.heap_alloc_bytes  gauge     live heap bytes
//	runtime.heap_sys_bytes    gauge     heap bytes held from the OS
//	runtime.next_gc_bytes     gauge     next GC target heap size
//	runtime.gc_cycles         gauge     completed GC cycles
//	runtime.gc_pause_ns       histogram individual GC stop-the-world
//	                                    pauses (each pause observed
//	                                    exactly once)
func StartRuntimeSampler(r Recorder, interval time.Duration) *RuntimeSampler {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	rec := OrNop(r)
	goroutines := rec.Gauge("runtime.goroutines")
	gomaxprocs := rec.Gauge("runtime.gomaxprocs")
	heapAlloc := rec.Gauge("runtime.heap_alloc_bytes")
	heapSys := rec.Gauge("runtime.heap_sys_bytes")
	nextGC := rec.Gauge("runtime.next_gc_bytes")
	gcCycles := rec.Gauge("runtime.gc_cycles")
	gcPause := rec.Histogram("runtime.gc_pause_ns", UnitNanoseconds)

	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	var lastGC uint32
	sample := func() {
		goroutines.Set(int64(runtime.NumGoroutine()))
		gomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		nextGC.Set(int64(ms.NextGC))
		gcCycles.Set(int64(ms.NumGC))
		// PauseNs is a ring of the last 256 pauses indexed by cycle;
		// observe each new pause exactly once, resynchronizing if more
		// than a full ring of cycles passed between samples.
		if ms.NumGC-lastGC > 256 {
			lastGC = ms.NumGC - 256
		}
		for c := lastGC; c < ms.NumGC; c++ {
			gcPause.Observe(int64(ms.PauseNs[c%256]))
		}
		lastGC = ms.NumGC
	}
	sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return s
}

// Stop halts the sampling goroutine and waits for it to exit. Safe to
// call on a nil sampler and more than once.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}
