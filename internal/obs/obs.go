// Package obs is the repository's dependency-free observability core:
// atomic counters, fixed-bucket histograms, and a Span phase timer,
// collected behind a pluggable Recorder.
//
// The design optimizes for the disabled case. Nop is the default
// Recorder: it hands out nil *Counter / nil *Histogram and zero Spans,
// and every instrument method is nil-safe — so a hot path that was
// instrumented with a pre-resolved counter pays exactly one nil-check
// per event when recording is off, no interface call, no allocation,
// no time.Now. Instrumented packages resolve their instruments once
// (at Analysis construction, say) and hold the pointers:
//
//	examined := rec.Counter("core.jumps_examined") // nil under Nop
//	...
//	examined.Add(1) // one predictable branch when disabled
//
// Registry is the collecting implementation. All instruments are safe
// for concurrent use (atomics; the name→instrument maps take a mutex
// only at resolution time), so one Registry can be shared across a
// worker pool and its totals are independent of scheduling order —
// counter sums and histogram merges commute. Snapshot renders the
// state deterministically (instruments sorted by name) for JSON dumps
// and cross-run comparison.
//
// # Histogram bucket scheme
//
// Every Histogram has the same NumBuckets (48) fixed buckets over
// int64 observations, with power-of-two boundaries:
//
//	bucket 0               values v <= 0
//	bucket i (1..46)       2^(i-1) <= v < 2^i
//	bucket 47 (overflow)   values v >= 2^46, unbounded
//
// Fixed buckets make Observe two atomic adds with no allocation, and
// make merging across recorders element-wise addition. For
// UnitNanoseconds histograms bucket 46's upper bound (2^46 ns) is
// about 20 hours; for UnitCount histograms it is far beyond any node
// set this repository produces, so the overflow bucket is empty in
// practice — but it is still unbounded, and exported snapshots say
// so: each Bucket carries its explicit inclusive upper bound Le
// (BucketUpperBound), with the overflow bucket reporting
// math.MaxInt64, which consumers (the Prometheus renderer) present as
// +Inf rather than inventing a bound the bucket does not have.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Unit tags what a histogram's observed values measure, so consumers
// of a Snapshot can tell wall-clock instruments (nondeterministic
// across runs) from structural ones (deterministic).
type Unit string

const (
	// UnitNanoseconds marks duration histograms (Span targets).
	UnitNanoseconds Unit = "ns"
	// UnitCount marks size/count histograms (closure sizes, etc.).
	UnitCount Unit = "count"
)

// Counter is a monotonically increasing atomic counter. The nil
// counter is a valid no-op: Add and Value on nil cost one nil-check.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level — resident cache bytes, entry
// counts — that, unlike a Counter, can go down. The nil gauge is a
// valid no-op: Add, Set and Value on nil cost one nil-check.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d (negative to decrease). No-op on nil.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set replaces the gauge's level. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the fixed bucket count of every histogram: power-of-
// two buckets covering 1..2^46 (for nanoseconds, ~20 hours; for
// counts, far beyond any node set), plus bucket 0 for values <= 0 and
// a final unbounded overflow bucket. See the package comment for the
// full scheme.
const NumBuckets = 48

// numBuckets is the internal alias predating the exported constant.
const numBuckets = NumBuckets

// Histogram is a fixed-bucket histogram over int64 observations with
// power-of-two bucket boundaries: bucket 0 counts values <= 0, bucket
// i >= 1 counts values v with 2^(i-1) <= v < 2^i, and the last bucket
// absorbs everything larger. Fixed buckets mean Observe is two atomic
// adds and no allocation, and merging across recorders is element-wise
// addition. The nil histogram is a valid no-op.
type Histogram struct {
	unit    Unit
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // 2^(b-1) <= v < 2^b
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Span times one phase. Obtain it from Recorder.StartSpan and call
// End when the phase finishes; the elapsed nanoseconds are recorded
// into the named duration histogram. The zero Span (what Nop hands
// out) is a no-op whose End neither reads the clock nor records.
type Span struct {
	h     *Histogram
	start time.Time
}

// End stops the span, records its duration, and returns it. On a
// no-op span it returns 0 without touching the clock.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(int64(d))
	return d
}

// Recorder hands out named instruments. Implementations: *Registry
// (collecting) and Nop (disabled; returns nil instruments and zero
// Spans, which every instrument method accepts).
type Recorder interface {
	// Counter returns the named counter, creating it on first use.
	Counter(name string) *Counter
	// Gauge returns the named gauge, creating it on first use.
	Gauge(name string) *Gauge
	// Histogram returns the named histogram with the given unit,
	// creating it on first use. The unit is fixed at creation.
	Histogram(name string, unit Unit) *Histogram
	// StartSpan starts a phase timer whose End records elapsed
	// nanoseconds into the duration histogram of the same name.
	StartSpan(name string) Span
}

// Nop is the default Recorder: records nothing, allocates nothing.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Counter(string) *Counter           { return nil }
func (nopRecorder) Gauge(string) *Gauge               { return nil }
func (nopRecorder) Histogram(string, Unit) *Histogram { return nil }
func (nopRecorder) StartSpan(string) Span             { return Span{} }

// OrNop returns r, or Nop when r is nil — the normalization every
// instrumented constructor applies to its recorder argument.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// Registry is the collecting Recorder. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty collecting Recorder.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it with the given
// unit on first use (later units are ignored; the first wins).
func (r *Registry) Histogram(name string, unit Unit) *Histogram {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{unit: unit}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// StartSpan starts a phase timer recording into the duration
// histogram named name.
func (r *Registry) StartSpan(name string) Span {
	return Span{h: r.Histogram(name, UnitNanoseconds), start: time.Now()}
}

// CounterSnapshot is one counter's state in a Snapshot.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's state in a Snapshot.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Bucket is one nonzero histogram bucket with its explicit inclusive
// upper bound: 0 for the <= 0 bucket, 2^i - 1 for interior bucket i,
// and math.MaxInt64 (meaning +Inf — the bucket is unbounded) for the
// overflow bucket. Snapshots carry the bound itself rather than
// leaving it implied by bucket index, so consumers need no knowledge
// of the bucket scheme to render ranges.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram's state in a Snapshot. For
// UnitNanoseconds histograms Sum and Buckets carry wall-clock values
// and are nondeterministic across runs; Count is structural.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Unit    Unit     `json:"unit"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time, deterministically ordered copy of a
// Registry's state, ready for JSON encoding.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// BucketUpperBound returns bucket i's inclusive upper bound: 0 for
// the <= 0 bucket, 2^i - 1 for interior buckets, and math.MaxInt64
// (+Inf; the bucket is unbounded) for the final overflow bucket.
func BucketUpperBound(i int) int64 {
	switch {
	case i == 0:
		return 0
	case i >= NumBuckets-1:
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Snapshot copies the registry's current state, instruments sorted by
// name so equal states encode to equal bytes.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make([]CounterSnapshot, 0, len(r.counters)),
		Histograms: make([]HistogramSnapshot, 0, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.hists {
		hs := HistogramSnapshot{Name: name, Unit: h.unit, Count: h.count.Load(), Sum: h.sum.Load()}
		for i := 0; i < numBuckets; i++ {
			if n := h.buckets[i].Load(); n != 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Le: BucketUpperBound(i), Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Scrub zeroes the wall-clock content of every UnitNanoseconds
// histogram in place — Sum and per-bucket placements — while keeping
// the structural observation Count. It also folds the analysis
// cache's cache.hits and cache.coalesced counters into a single
// cache.reused counter: the two outcomes both mean "an analysis was
// not rebuilt", and how reuses split between them depends on whether
// the second request arrived during or after the first's build — pure
// scheduling. The fold keeps the deterministic total. Finally it
// drops every instrument under the "runtime.", "http.", "spool.",
// "cluster.", "disk." and "result." prefixes entirely — runtime-health
// samples (goroutine counts, heap sizes, GC pause counts),
// request-serving telemetry, the durable spool's rotation/drop
// accounting, and the cluster/disk/result-cache tiers depend on the
// machine, the scheduler, disk speed, peer timing, and the sampling
// clock, so even their observation counts are nondeterministic. Two runs of the same
// deterministic workload produce byte-identical scrubbed snapshots at
// any parallelism; cmd/slicebench's determinism test relies on this.
func (s *Snapshot) Scrub() *Snapshot {
	for i := range s.Histograms {
		if s.Histograms[i].Unit == UnitNanoseconds {
			s.Histograms[i].Sum = 0
			s.Histograms[i].Buckets = nil
		}
	}
	var reused int64
	fold := false
	kc := s.Counters[:0]
	for _, c := range s.Counters {
		if scrubbedName(c.Name) {
			continue
		}
		if c.Name == "cache.hits" || c.Name == "cache.coalesced" {
			reused += c.Value
			fold = true
			continue
		}
		kc = append(kc, c)
	}
	if fold {
		kc = append(kc, CounterSnapshot{Name: "cache.reused", Value: reused})
		sort.Slice(kc, func(i, j int) bool { return kc[i].Name < kc[j].Name })
	}
	s.Counters = kc
	kg := s.Gauges[:0]
	for _, g := range s.Gauges {
		if !scrubbedName(g.Name) {
			kg = append(kg, g)
		}
	}
	s.Gauges = kg
	kh := s.Histograms[:0]
	for _, h := range s.Histograms {
		if !scrubbedName(h.Name) {
			kh = append(kh, h)
		}
	}
	s.Histograms = kh
	return s
}

// scrubbedName reports whether an instrument is scheduling- or
// environment-dependent in its entirety and must not survive Scrub.
// spool.* instruments count: segment rotation and queue drops depend
// on disk speed and batching timing, not on the analysis under test.
func scrubbedName(name string) bool {
	return strings.HasPrefix(name, "runtime.") ||
		strings.HasPrefix(name, "http.") ||
		strings.HasPrefix(name, "spool.") ||
		strings.HasPrefix(name, "cluster.") ||
		strings.HasPrefix(name, "disk.") ||
		strings.HasPrefix(name, "result.")
}
