package obs

// Wide events: one canonical structured record per served request.
//
// Where the Tracer journals what happened *inside* one request (phase
// by phase, admission by admission) and the Registry aggregates
// across all of them, a WideEvent is the request's one-line summary —
// endpoint, status, duration, byte count, per-phase timings, cache
// and incremental tiers, slice size, and how the request ended. It is
// the record an operator greps for ("show me every 5xx slower than
// 50ms on /slice") and the record the access log emits, so the log
// line and the queryable ring never disagree.
//
// Events are kept in a RequestLog, a bounded mutex-guarded ring of
// the most recent N events. Unlike the FlightRecorder the write rate
// here is one event per *request* (not per phase or per jump), so a
// plain mutex costs nothing measurable and keeps readers exactly
// consistent. The nil *RequestLog and nil *SpanLog are valid no-ops,
// matching the package's one-nil-check discipline.

import (
	"sync"
)

// PhaseDur is one completed phase of a request: the span name as the
// tracer published it, and its elapsed nanoseconds.
type PhaseDur struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// SpanLog accumulates the completed phase spans of one request, in
// completion order. A Tracer returned by WithSpans tees every span it
// publishes into the log, so the daemon can attach exact per-phase
// timings to the request's wide event without scanning the (lossy,
// shared) flight recorder. The nil SpanLog is a valid no-op.
type SpanLog struct {
	mu    sync.Mutex
	spans []PhaseDur
}

// Add records one completed phase. No-op on a nil log.
func (l *SpanLog) Add(name string, ns int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.spans = append(l.spans, PhaseDur{Name: name, NS: ns})
	l.mu.Unlock()
}

// Spans returns a copy of the recorded phases, in completion order
// (nil for a nil or empty log).
func (l *SpanLog) Spans() []PhaseDur {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.spans) == 0 {
		return nil
	}
	out := make([]PhaseDur, len(l.spans))
	copy(out, l.spans)
	return out
}

// WideEvent is the canonical one-record-per-request summary. Fields
// that do not apply to a request (a /metrics scrape has no algorithm,
// a cache-off daemon has no tier) are empty and omitted from JSON.
type WideEvent struct {
	// Req is the request ID — the same number X-Request-ID carries, so
	// the event joins against /debug/trace?id= and the access log.
	Req uint64 `json:"req"`
	// TimeNS is the request's arrival time, nanoseconds since the
	// Unix epoch.
	TimeNS int64 `json:"ts_ns"`
	// Method and Path are the raw request; Endpoint is the normalized
	// route ("/session/{id}" for any session, "(other)" for unknown
	// paths) — the bounded-cardinality key SLO windows aggregate by.
	Method   string `json:"method"`
	Path     string `json:"path"`
	Endpoint string `json:"endpoint"`
	// Status is the response status; DurationNS the wall-clock time to
	// serve it; BytesOut the response body size actually written.
	Status     int   `json:"status"`
	DurationNS int64 `json:"duration_ns"`
	BytesOut   int64 `json:"bytes_out"`
	// Outcome classifies how the request ended: "ok", "client_error",
	// "error", "shed" (admission gate), "timeout" (analysis deadline),
	// "canceled" (client disconnect), or "panic" (recovered).
	Outcome string `json:"outcome"`
	// ErrorCode is the envelope code of a non-2xx response
	// ("invalid_program", "overloaded", ...).
	ErrorCode string `json:"error_code,omitempty"`
	// Algo, Stmts and SliceLines describe slicing requests: the
	// algorithm served, the program's statement count, and the line
	// count of the resulting slice.
	Algo       string `json:"algo,omitempty"`
	Stmts      int    `json:"stmts,omitempty"`
	SliceLines int    `json:"slice_lines,omitempty"`
	// Cache is the cache tier that answered ("hit", "miss",
	// "coalesced", and in cluster mode "result", "disk", "peer-fill");
	// Incremental the session reuse tier ("patched", "partial",
	// "full").
	Cache       string `json:"cache,omitempty"`
	Incremental string `json:"incremental,omitempty"`
	// Route says how cluster routing placed the request: "local"
	// (served by this node), "proxied" (forwarded to the ring owner),
	// or "peer-fill" (served locally from a record fetched off a
	// peer). Empty outside cluster mode. Peer names the other node
	// involved: the proxy target or the fill source.
	Route string `json:"route,omitempty"`
	Peer  string `json:"peer,omitempty"`
	// Phases are the request's completed pipeline phase durations, in
	// completion order (empty on cache hits — no pipeline ran).
	Phases []PhaseDur `json:"phases,omitempty"`
}

// RequestLog is a bounded ring of the most recent wide events. All
// methods are safe for concurrent use; the nil log is a valid no-op.
type RequestLog struct {
	mu      sync.Mutex
	slots   []WideEvent
	written uint64
}

// NewRequestLog returns a log keeping the most recent capacity events
// (minimum 1).
func NewRequestLog(capacity int) *RequestLog {
	if capacity < 1 {
		capacity = 1
	}
	return &RequestLog{slots: make([]WideEvent, capacity)}
}

// Record appends one event, evicting the oldest when full. No-op on a
// nil log.
func (l *RequestLog) Record(e WideEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.slots[l.written%uint64(len(l.slots))] = e
	l.written++
	l.mu.Unlock()
}

// Written returns the number of events ever recorded (0 on nil).
func (l *RequestLog) Written() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// Cap returns the ring capacity (0 on nil).
func (l *RequestLog) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Events returns a copy of the buffered events, oldest first (nil on
// a nil log).
func (l *RequestLog) Events() []WideEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.written
	capc := uint64(len(l.slots))
	if n > capc {
		out := make([]WideEvent, 0, capc)
		start := n % capc // oldest surviving slot
		out = append(out, l.slots[start:]...)
		out = append(out, l.slots[:start]...)
		return out
	}
	out := make([]WideEvent, n)
	copy(out, l.slots[:n])
	return out
}
