package obs

// Sliding-window SLOs: per-endpoint latency percentiles, error and
// shed rates over a rotating bucket window, with exemplars.
//
// The tracker keeps, per endpoint, a ring of N time buckets each
// covering window/N of wall clock (the default is 10 × 6s = one
// minute). Observing a request lands it in the bucket of the current
// epoch — a bucket whose epoch is stale is reset in place first, so
// rotation is O(1) and needs no background goroutine. Each bucket
// holds integer counters plus the package's standard power-of-two
// histogram ([NumBuckets]int64), so a window percentile is the
// element-wise sum of at most N small arrays — cheap enough to
// compute on every /debug/slo request and /metrics scrape.
//
// Each bucket also remembers its slowest request's ID: the exemplar.
// A p99 spike in a dashboard is only actionable if the operator can
// get from the aggregate back to a concrete request; the exemplar is
// that edge — its ID resolves at /debug/trace?id= while the flight
// recorder still holds the events.
//
// Burn rate follows the standard error-budget formulation: with an
// objective of "err <= 1%", an observed window error rate of 2% burns
// budget at 2× the sustainable rate. Latency objectives ("p99 <=
// 50ms") count requests over the threshold exactly at Observe time
// (no histogram estimation error), and burn against the quantile's
// complement: at p99, up to 1% of requests may be slow, so a 3% slow
// fraction is a 3× burn.
//
// The nil *SLOTracker is a valid no-op, and all methods are safe for
// concurrent use (one mutex; Observe's critical section is a handful
// of integer stores).

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SLOObjectives are the configured service-level objectives. The zero
// value means "no objectives": rates and percentiles are still
// reported, burn rates are not.
type SLOObjectives struct {
	// Quantile is the latency objective's quantile (0.5, 0.9 or 0.99);
	// 0 when no latency objective is set.
	Quantile float64 `json:"quantile,omitempty"`
	// Latency is the latency objective's threshold: Quantile of
	// requests must complete within it.
	Latency time.Duration `json:"latency_ns,omitempty"`
	// ErrRate is the error-rate objective as a fraction (0.01 for
	// "err <= 1%"); 0 when unset.
	ErrRate float64 `json:"err_rate,omitempty"`
}

// ParseObjectives parses the -slo flag syntax: comma-separated
// key=value pairs, where key is p50/p90/p99 (value a Go duration) or
// err (value a percentage like "1%" or a bare fraction like "0.01").
// At most one latency quantile may be given. The empty string parses
// to the zero (no objectives) value.
func ParseObjectives(s string) (SLOObjectives, error) {
	var o SLOObjectives
	if strings.TrimSpace(s) == "" {
		return o, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return o, fmt.Errorf("slo objective %q: want key=value", part)
		}
		switch k {
		case "p50", "p90", "p99":
			if o.Quantile != 0 {
				return o, fmt.Errorf("slo objective %q: latency quantile already set", part)
			}
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return o, fmt.Errorf("slo objective %q: want a positive duration (e.g. %s=50ms)", part, k)
			}
			switch k {
			case "p50":
				o.Quantile = 0.50
			case "p90":
				o.Quantile = 0.90
			case "p99":
				o.Quantile = 0.99
			}
			o.Latency = d
		case "err":
			f, err := parseRate(v)
			if err != nil {
				return o, fmt.Errorf("slo objective %q: %v", part, err)
			}
			o.ErrRate = f
		default:
			return o, fmt.Errorf("slo objective %q: unknown key %q (want p50, p90, p99, or err)", part, k)
		}
	}
	return o, nil
}

// parseRate accepts "1%" or a bare fraction "0.01" in (0, 1].
func parseRate(v string) (float64, error) {
	pct := strings.HasSuffix(v, "%")
	var f float64
	if _, err := fmt.Sscanf(strings.TrimSuffix(v, "%"), "%g", &f); err != nil {
		return 0, fmt.Errorf("want a percentage (1%%) or fraction (0.01)")
	}
	if pct {
		f /= 100
	}
	if f <= 0 || f > 1 {
		return 0, fmt.Errorf("rate %q outside (0%%, 100%%]", v)
	}
	return f, nil
}

// sloBucket is one time bucket of one endpoint's window.
type sloBucket struct {
	epoch  int64 // which width-period this bucket holds; 0 = never used
	count  int64
	errors int64 // 5xx other than sheds
	sheds  int64 // admission-gate 503s
	slow   int64 // requests over the latency objective
	sum    int64 // total nanoseconds
	hist   [NumBuckets]int64
	maxDur int64  // slowest request this bucket saw …
	maxReq uint64 // … and its ID: the exemplar
}

// reset clears a bucket for a new epoch.
func (b *sloBucket) reset(epoch int64) {
	*b = sloBucket{epoch: epoch}
}

// sloWindow is one endpoint's ring of buckets plus its cumulative
// (process-lifetime) totals, which back the Prometheus counters.
type sloWindow struct {
	buckets []sloBucket
	// cumulative totals since process start
	totalCount  int64
	totalErrors int64
	totalSheds  int64
	totalSum    int64
	totalHist   [NumBuckets]int64
}

// SLOTracker aggregates request outcomes into per-endpoint sliding
// windows. Construct with NewSLOTracker.
type SLOTracker struct {
	mu        sync.Mutex
	width     time.Duration // per-bucket wall-clock width
	n         int           // buckets per window
	obj       SLOObjectives
	endpoints map[string]*sloWindow
	now       func() time.Time // injectable for tests
}

// NewSLOTracker returns a tracker whose window spans the given total
// duration split into buckets rotating buckets (defaults: 60s, 10).
func NewSLOTracker(window time.Duration, buckets int, obj SLOObjectives) *SLOTracker {
	if window <= 0 {
		window = time.Minute
	}
	if buckets < 1 {
		buckets = 10
	}
	return &SLOTracker{
		width:     window / time.Duration(buckets),
		n:         buckets,
		obj:       obj,
		endpoints: map[string]*sloWindow{},
		now:       time.Now,
	}
}

// Objectives returns the configured objectives (zero value on nil).
func (t *SLOTracker) Objectives() SLOObjectives {
	if t == nil {
		return SLOObjectives{}
	}
	return t.obj
}

// Observe records one finished request: its endpoint, response
// status, whether the admission gate shed it, its duration, and its
// request ID (the exemplar candidate). No-op on a nil tracker.
func (t *SLOTracker) Observe(endpoint string, status int, shed bool, dur time.Duration, req uint64) {
	if t == nil {
		return
	}
	ns := int64(dur)
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.endpoints[endpoint]
	if w == nil {
		w = &sloWindow{buckets: make([]sloBucket, t.n)}
		t.endpoints[endpoint] = w
	}
	epoch := t.now().UnixNano() / int64(t.width)
	b := &w.buckets[epoch%int64(t.n)]
	if b.epoch != epoch {
		b.reset(epoch)
	}
	b.count++
	w.totalCount++
	switch {
	case shed:
		b.sheds++
		w.totalSheds++
	case status >= 500:
		b.errors++
		w.totalErrors++
	}
	if t.obj.Latency > 0 && dur > t.obj.Latency {
		b.slow++
	}
	hb := bucketOf(ns)
	b.hist[hb]++
	w.totalHist[hb]++
	b.sum += ns
	w.totalSum += ns
	if ns >= b.maxDur {
		b.maxDur, b.maxReq = ns, req
	}
}

// Exemplar points from a window bucket back at a concrete request:
// the slowest one the bucket saw. Its ID resolves at /debug/trace?id=
// while the flight recorder still buffers the request's events.
type Exemplar struct {
	// BucketStartNS is the bucket's wall-clock start, nanoseconds
	// since the Unix epoch.
	BucketStartNS int64 `json:"bucket_start_ns"`
	// Request is the slowest request's ID; DurNS its duration.
	Request uint64 `json:"request"`
	DurNS   int64  `json:"dur_ns"`
}

// EndpointSLO is one endpoint's view in an SLOSnapshot. Window fields
// cover the sliding window; Total fields are process-lifetime.
type EndpointSLO struct {
	Endpoint string `json:"endpoint"`
	// Window contents.
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Sheds     int64   `json:"sheds"`
	ErrorRate float64 `json:"error_rate"`
	ShedRate  float64 `json:"shed_rate"`
	P50NS     int64   `json:"p50_ns"`
	P90NS     int64   `json:"p90_ns"`
	P99NS     int64   `json:"p99_ns"`
	// Slow is the window count of requests over the latency
	// objective; burn rates are budget-consumption multipliers
	// (1.0 = exactly sustainable). Present only with objectives set.
	Slow        int64   `json:"slow_over_objective,omitempty"`
	ErrorBurn   float64 `json:"error_burn,omitempty"`
	LatencyBurn float64 `json:"latency_burn,omitempty"`
	// Cumulative totals since process start (the Prometheus counters).
	TotalRequests int64 `json:"total_requests"`
	TotalErrors   int64 `json:"total_errors"`
	TotalSheds    int64 `json:"total_sheds"`
	// Exemplars carry the slowest request per live window bucket,
	// oldest bucket first.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// SLOSnapshot is a point-in-time view of every endpoint's window,
// endpoints sorted by name.
type SLOSnapshot struct {
	WindowNS   int64         `json:"window_ns"`
	BucketNS   int64         `json:"bucket_ns"`
	Buckets    int           `json:"buckets"`
	Objectives SLOObjectives `json:"objectives"`
	Endpoints  []EndpointSLO `json:"endpoints"`
}

// quantileUpperBound returns the histogram-estimated inclusive upper
// bound of the q-quantile: the bound of the bucket where the
// cumulative count first reaches ceil(q·total). The overflow bucket
// reports maxDur (the window's slowest observed value) instead of an
// invented bound.
func quantileUpperBound(hist *[NumBuckets]int64, total int64, q float64, maxDur int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := 0; i < NumBuckets; i++ {
		cum += hist[i]
		if cum >= rank {
			if i == NumBuckets-1 {
				return maxDur
			}
			return BucketUpperBound(i)
		}
	}
	return maxDur
}

// Snapshot renders the current window state. Nil tracker returns nil.
func (t *SLOTracker) Snapshot() *SLOSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	epoch := t.now().UnixNano() / int64(t.width)
	oldest := epoch - int64(t.n) + 1
	s := &SLOSnapshot{
		WindowNS:   int64(t.width) * int64(t.n),
		BucketNS:   int64(t.width),
		Buckets:    t.n,
		Objectives: t.obj,
	}
	for name, w := range t.endpoints {
		e := EndpointSLO{
			Endpoint:      name,
			TotalRequests: w.totalCount,
			TotalErrors:   w.totalErrors,
			TotalSheds:    w.totalSheds,
		}
		var hist [NumBuckets]int64
		var maxDur int64
		var slow int64
		for i := range w.buckets {
			b := &w.buckets[i]
			if b.epoch < oldest || b.epoch > epoch || b.count == 0 {
				continue // stale (not yet recycled) or empty bucket
			}
			e.Requests += b.count
			e.Errors += b.errors
			e.Sheds += b.sheds
			slow += b.slow
			for j := range hist {
				hist[j] += b.hist[j]
			}
			if b.maxDur > maxDur {
				maxDur = b.maxDur
			}
			e.Exemplars = append(e.Exemplars, Exemplar{
				BucketStartNS: b.epoch * int64(t.width),
				Request:       b.maxReq,
				DurNS:         b.maxDur,
			})
		}
		sort.Slice(e.Exemplars, func(i, j int) bool {
			return e.Exemplars[i].BucketStartNS < e.Exemplars[j].BucketStartNS
		})
		if e.Requests > 0 {
			e.ErrorRate = float64(e.Errors) / float64(e.Requests)
			e.ShedRate = float64(e.Sheds) / float64(e.Requests)
			e.P50NS = quantileUpperBound(&hist, e.Requests, 0.50, maxDur)
			e.P90NS = quantileUpperBound(&hist, e.Requests, 0.90, maxDur)
			e.P99NS = quantileUpperBound(&hist, e.Requests, 0.99, maxDur)
			if t.obj.ErrRate > 0 {
				e.ErrorBurn = e.ErrorRate / t.obj.ErrRate
			}
			if t.obj.Latency > 0 {
				e.Slow = slow
				budget := 1 - t.obj.Quantile
				if budget > 0 {
					e.LatencyBurn = float64(slow) / float64(e.Requests) / budget
				}
			}
		}
		s.Endpoints = append(s.Endpoints, e)
	}
	sort.Slice(s.Endpoints, func(i, j int) bool { return s.Endpoints[i].Endpoint < s.Endpoints[j].Endpoint })
	return s
}
