package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Add(5)
	g.Set(9)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
	if d := (Span{}).End(); d != 0 {
		t.Errorf("zero span End = %v", d)
	}
}

func TestNopRecorder(t *testing.T) {
	if Nop.Counter("x") != nil {
		t.Error("Nop.Counter != nil")
	}
	if Nop.Gauge("x") != nil {
		t.Error("Nop.Gauge != nil")
	}
	if Nop.Histogram("x", UnitCount) != nil {
		t.Error("Nop.Histogram != nil")
	}
	if sp := Nop.StartSpan("x"); sp.h != nil || !sp.start.IsZero() {
		t.Error("Nop.StartSpan not zero")
	}
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	r := NewRegistry()
	if OrNop(r) != Recorder(r) {
		t.Error("OrNop(r) != r")
	}
}

func TestCounterAndHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	r.Counter("a").Add(4)
	if got := r.Counter("a").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	h := r.Histogram("sizes", UnitCount)
	for _, v := range []int64{0, 1, 2, 3, 4, 1 << 50} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	// 0 → bucket le=0; 1 → le=1; 2,3 → le=3; 4 → le=7; 1<<50 → the
	// unbounded overflow bucket, whose explicit bound is +Inf.
	wantBuckets := map[int64]int64{0: 1, 1: 1, 3: 2, 7: 1, math.MaxInt64: 1}
	for _, b := range snap.Histograms[0].Buckets {
		if wantBuckets[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, wantBuckets[b.Le])
		}
		delete(wantBuckets, b.Le)
	}
	if len(wantBuckets) != 0 {
		t.Errorf("missing buckets: %v", wantBuckets)
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("phase.x")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	h := r.Histogram("phase.x", UnitNanoseconds)
	if h.Count() != 1 || h.Sum() < int64(time.Millisecond) {
		t.Errorf("span histogram count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestSnapshotDeterministicOrderAndScrub(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(1)
		}
		r.Histogram("z.sizes", UnitCount).Observe(9)
		sp := r.StartSpan("a.phase")
		sp.End()
		data, err := json.Marshal(r.Snapshot().Scrub())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]string{"b", "a", "c"})
	b := build([]string{"c", "b", "a"})
	if string(a) != string(b) {
		t.Errorf("snapshots differ:\n%s\n%s", a, b)
	}
}

// TestScrubFoldsCacheSplit asserts Scrub merges the analysis cache's
// scheduling-dependent hit/coalesced split into one reused counter, so
// two runs whose reuses landed differently scrub identically.
func TestScrubFoldsCacheSplit(t *testing.T) {
	build := func(hits, coalesced int64) []byte {
		r := NewRegistry()
		r.Counter("cache.hits").Add(hits)
		r.Counter("cache.coalesced").Add(coalesced)
		r.Counter("cache.misses").Add(3)
		data, err := json.Marshal(r.Snapshot().Scrub())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := build(7, 1), build(2, 6)
	if string(a) != string(b) {
		t.Errorf("scrubbed snapshots differ on the hit/coalesced split:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), `"cache.reused"`) || strings.Contains(string(a), `"cache.hits"`) {
		t.Errorf("scrub did not fold into cache.reused:\n%s", a)
	}
	// Snapshots without cache counters are untouched.
	r := NewRegistry()
	r.Counter("other").Add(1)
	data, err := json.Marshal(r.Snapshot().Scrub())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "cache.reused") {
		t.Errorf("scrub invented a cache.reused counter:\n%s", data)
	}
}

// TestScrubDropsEnvironmentPrefixes asserts Scrub removes every
// instrument whose whole existence is machine/scheduling-dependent:
// runtime health samples, request-serving telemetry, and the durable
// spool's disk accounting.
func TestScrubDropsEnvironmentPrefixes(t *testing.T) {
	r := NewRegistry()
	r.Counter("jumps.analyzed").Add(4)
	r.Counter("runtime.gc_cycles").Add(2)
	r.Counter("http.incr.patched").Add(9)
	r.Counter("spool.enqueued").Add(7)
	r.Counter("spool.dropped").Add(1)
	r.Gauge("spool.resident_bytes").Set(4096)
	r.Gauge("spool.segments").Set(3)
	r.Histogram("spool.batch", UnitCount).Observe(5)
	data, err := json.Marshal(r.Snapshot().Scrub())
	if err != nil {
		t.Fatal(err)
	}
	for _, gone := range []string{"runtime.", "http.", "spool."} {
		if strings.Contains(string(data), gone) {
			t.Errorf("scrubbed snapshot still carries %s instruments:\n%s", gone, data)
		}
	}
	if !strings.Contains(string(data), "jumps.analyzed") {
		t.Errorf("scrub dropped a deterministic counter:\n%s", data)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Add(1)
				r.Histogram("h", UnitCount).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
	if got := r.Histogram("h", UnitCount).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestGauge exercises the gauge's level semantics: Add moves in both
// directions, Set replaces, snapshots carry the current level, and the
// registry hands back the same gauge per name.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cache.resident_bytes")
	g.Add(100)
	g.Add(-30)
	if g.Value() != 70 {
		t.Errorf("gauge value = %d, want 70", g.Value())
	}
	g.Set(5)
	if g.Value() != 5 {
		t.Errorf("gauge value after Set = %d, want 5", g.Value())
	}
	if r.Gauge("cache.resident_bytes") != g {
		t.Error("registry did not reuse the named gauge")
	}
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "cache.resident_bytes" || snap.Gauges[0].Value != 5 {
		t.Errorf("snapshot gauges = %+v", snap.Gauges)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Gauges) != 1 || back.Gauges[0].Value != 5 {
		t.Errorf("gauges do not round-trip: %+v", back.Gauges)
	}
}
