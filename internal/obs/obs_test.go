package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
	if d := (Span{}).End(); d != 0 {
		t.Errorf("zero span End = %v", d)
	}
}

func TestNopRecorder(t *testing.T) {
	if Nop.Counter("x") != nil {
		t.Error("Nop.Counter != nil")
	}
	if Nop.Histogram("x", UnitCount) != nil {
		t.Error("Nop.Histogram != nil")
	}
	if sp := Nop.StartSpan("x"); sp.h != nil || !sp.start.IsZero() {
		t.Error("Nop.StartSpan not zero")
	}
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	r := NewRegistry()
	if OrNop(r) != Recorder(r) {
		t.Error("OrNop(r) != r")
	}
}

func TestCounterAndHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	r.Counter("a").Add(4)
	if got := r.Counter("a").Value(); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	h := r.Histogram("sizes", UnitCount)
	for _, v := range []int64{0, 1, 2, 3, 4, 1 << 50} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	// 0 → bucket le=0; 1 → le=1; 2,3 → le=3; 4 → le=7; 1<<50 → the
	// unbounded overflow bucket, whose explicit bound is +Inf.
	wantBuckets := map[int64]int64{0: 1, 1: 1, 3: 2, 7: 1, math.MaxInt64: 1}
	for _, b := range snap.Histograms[0].Buckets {
		if wantBuckets[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, wantBuckets[b.Le])
		}
		delete(wantBuckets, b.Le)
	}
	if len(wantBuckets) != 0 {
		t.Errorf("missing buckets: %v", wantBuckets)
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("phase.x")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration = %v", d)
	}
	h := r.Histogram("phase.x", UnitNanoseconds)
	if h.Count() != 1 || h.Sum() < int64(time.Millisecond) {
		t.Errorf("span histogram count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestSnapshotDeterministicOrderAndScrub(t *testing.T) {
	build := func(order []string) []byte {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(1)
		}
		r.Histogram("z.sizes", UnitCount).Observe(9)
		sp := r.StartSpan("a.phase")
		sp.End()
		data, err := json.Marshal(r.Snapshot().Scrub())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]string{"b", "a", "c"})
	b := build([]string{"c", "b", "a"})
	if string(a) != string(b) {
		t.Errorf("snapshots differ:\n%s\n%s", a, b)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Add(1)
				r.Histogram("h", UnitCount).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
	if got := r.Histogram("h", UnitCount).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
