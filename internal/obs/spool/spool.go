// Package spool is the durable half of the telemetry plane: a
// disk-backed, asynchronously written journal of every wide request
// event the daemon serves, so the evidence for an incident survives
// the process that produced it.
//
// The in-memory telemetry (flight recorder, request ring, SLO
// windows) is deliberately lossy and dies with the process; the spool
// is its durable shadow. Records — obs.WideEvent values, span log
// included — are enqueued on the request hot path into a bounded
// queue with a non-blocking send: the enqueue never stalls a request,
// never allocates, and when the queue is full the record is dropped
// and counted rather than making the caller wait on a disk. A single
// writer goroutine drains the queue in batches into gzip-compressed
// JSONL segment files, one JSON object per line, rotating to a new
// segment when the compressed size crosses the segment threshold.
//
// Each sealed segment gets a sidecar index (seg-NNNNNNNN.idx.json)
// recording its record count, compressed size, and the time and
// request-ID ranges it covers, so an offline reader (cmd/slicequery)
// can skip whole segments without decompressing them. The directory
// as a whole lives under a hard byte budget: after every seal the
// oldest sealed segments are reclaimed until the spool fits. The
// active segment is flushed (gzip sync point) after every drained
// batch, so even a crash mid-segment loses at most the last unflushed
// batch; Open recovers an unsealed segment left by a crash by
// re-reading it and writing the index it never got.
//
// All spool activity is observable: spool.* counters and gauges
// (enqueued, written, dropped, rotations, reclaimed segments/bytes,
// resident bytes, segment count) are mirrored into the Recorder given
// at Open, and Stats returns the same numbers plus the active segment
// pointer for /debug/spool and post-mortem bundles. The spool.*
// instruments are scheduling-dependent (drops, rotation timing) and
// are removed by obs.Scrub like the runtime.* and http.* families.
//
// The nil *Spool is a valid no-op on every method, matching the obs
// package's one-nil-check discipline.
package spool

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"jumpslice/internal/obs"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBytes is the default hard disk budget (64 MiB).
	DefaultMaxBytes = 64 << 20
	// DefaultSegmentBytes is the default compressed-size rotation
	// threshold per segment (4 MiB).
	DefaultSegmentBytes = 4 << 20
	// DefaultQueueDepth is the default bounded-queue capacity.
	DefaultQueueDepth = 4096
)

// Options configures Open.
type Options struct {
	// Dir is the spool directory; it is created if missing.
	Dir string
	// MaxBytes is the hard disk budget for the whole directory,
	// active segment included. After every seal, oldest sealed
	// segments are removed until the spool fits. <=0 means
	// DefaultMaxBytes.
	MaxBytes int64
	// SegmentBytes is the compressed byte threshold at which the
	// active segment is sealed and a new one started. <=0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// QueueDepth bounds the enqueue queue; a full queue drops (and
	// counts) instead of blocking. <=0 means DefaultQueueDepth.
	QueueDepth int
	// Recorder receives the spool.* instruments (obs.Nop when nil).
	Recorder obs.Recorder
}

// op is one unit of writer work: a record to persist, or (when sync
// is non-nil) a barrier — the writer flushes everything drained so
// far to the OS and closes sync.
type op struct {
	ev   obs.WideEvent
	sync chan struct{}
}

// Spool is the durable telemetry journal. Construct with Open; all
// methods are safe for concurrent use and valid on the nil Spool.
type Spool struct {
	dir      string
	maxBytes int64
	segBytes int64

	// Instruments: always non-nil (private fallbacks when the
	// Recorder declines), so Stats works without a registry.
	enqueued      *obs.Counter
	written       *obs.Counter
	dropped       *obs.Counter
	rotations     *obs.Counter
	reclaimedSegs *obs.Counter
	reclaimedB    *obs.Counter
	residentGauge *obs.Gauge
	segmentsGauge *obs.Gauge

	// closing guards the queue against sends after Close; Enqueue
	// holds it shared (a few ns) so Close can't close the channel
	// under an in-flight send.
	mu     sync.RWMutex
	closed bool
	queue  chan op
	done   chan struct{} // writer goroutine exited

	// shared is the writer-owned summary Stats reads.
	shared struct {
		sync.Mutex
		sealed      []sealedSegment // oldest first
		activePath  string
		activeBytes int64
		activeRecs  int64
	}

	w writerState // owned by the writer goroutine exclusively
}

// sealedSegment is one finished segment in the reclamation ledger.
type sealedSegment struct {
	path    string
	idxPath string
	bytes   int64
}

// writerState is the writer goroutine's private encoding state.
type writerState struct {
	seq   uint64
	f     *os.File
	cw    *countingWriter
	gz    *gzip.Writer
	idx   Index
	dirty bool // records written since the last gzip flush
}

// countingWriter counts compressed bytes on their way to the file.
type countingWriter struct {
	f *os.File
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.f.Write(p)
	c.n += int64(n)
	return n, err
}

// counterOr resolves a named counter from r, falling back to a
// private one when the recorder declines (obs.Nop returns nil), so
// the spool's own accounting never depends on a registry.
func counterOr(r obs.Recorder, name string) *obs.Counter {
	if c := r.Counter(name); c != nil {
		return c
	}
	return &obs.Counter{}
}

func gaugeOr(r obs.Recorder, name string) *obs.Gauge {
	if g := r.Gauge(name); g != nil {
		return g
	}
	return &obs.Gauge{}
}

// Open creates or reopens a spool directory and starts the writer.
// An unsealed segment left behind by a crash is recovered: its
// surviving records are counted and it gets the index it never got,
// marked recovered. Numbering continues after the highest existing
// segment.
func Open(opts Options) (*Spool, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("spool: no directory given")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	rec := obs.OrNop(opts.Recorder)
	s := &Spool{
		dir:           opts.Dir,
		maxBytes:      opts.MaxBytes,
		segBytes:      opts.SegmentBytes,
		enqueued:      counterOr(rec, "spool.enqueued"),
		written:       counterOr(rec, "spool.written"),
		dropped:       counterOr(rec, "spool.dropped"),
		rotations:     counterOr(rec, "spool.rotations"),
		reclaimedSegs: counterOr(rec, "spool.reclaimed_segments"),
		reclaimedB:    counterOr(rec, "spool.reclaimed_bytes"),
		residentGauge: gaugeOr(rec, "spool.resident_bytes"),
		segmentsGauge: gaugeOr(rec, "spool.segments"),
		queue:         make(chan op, opts.QueueDepth),
		done:          make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	s.reclaim()
	s.publishGauges()
	go s.writeLoop()
	return s, nil
}

// recover scans the directory, rebuilds the sealed-segment ledger,
// writes a recovery index for any unsealed segment a previous process
// left behind, and positions the sequence counter past everything.
func (s *Spool) recover() error {
	segs, err := Segments(s.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.Seq >= s.w.seq {
			s.w.seq = seg.Seq + 1
		}
		if seg.Index == nil {
			// A crash left this segment unsealed: count what survived
			// and give it the index it never got.
			idx := Index{Segment: filepath.Base(seg.Path), Recovered: true}
			first := true
			_ = ReadSegment(seg.Path, func(ev *obs.WideEvent) error {
				idx.note(ev, first)
				first = false
				return nil
			})
			fi, err := os.Stat(seg.Path)
			if err != nil {
				return fmt.Errorf("spool: recovering %s: %w", seg.Path, err)
			}
			idx.Bytes = fi.Size()
			idx.SealedNS = time.Now().UnixNano()
			idxPath := indexPath(seg.Path)
			if err := writeIndex(idxPath, &idx); err != nil {
				return err
			}
			seg.Index = &idx
			seg.IndexPath = idxPath
		}
		s.shared.sealed = append(s.shared.sealed, sealedSegment{
			path:    seg.Path,
			idxPath: seg.IndexPath,
			bytes:   seg.Index.Bytes,
		})
	}
	return nil
}

// Enqueue offers one record to the spool without ever blocking: a
// full queue (the disk fell behind) drops the record and counts the
// drop. Reports whether the record was accepted. No-op (false) on a
// nil or closed spool.
func (s *Spool) Enqueue(ev obs.WideEvent) bool {
	if s == nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	s.enqueued.Add(1)
	select {
	case s.queue <- op{ev: ev}:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Sync blocks until every record enqueued before the call is written
// and flushed to the OS — the test and shutdown barrier. No-op on nil.
func (s *Spool) Sync() {
	if s == nil {
		return
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return
	}
	ch := make(chan struct{})
	s.queue <- op{sync: ch}
	s.mu.RUnlock()
	<-ch
}

// Close drains the queue, seals the active segment, and stops the
// writer. The spool rejects records afterwards. No-op on nil.
func (s *Spool) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	<-s.done
	return nil
}

// writeLoop is the writer goroutine: drain a batch, flush, rotate
// when the active segment crosses the threshold.
func (s *Spool) writeLoop() {
	defer close(s.done)
	for o := range s.queue {
		s.handle(o)
		// Drain whatever queued up behind it without blocking, then
		// flush once: one gzip sync point per batch, not per record.
	drain:
		for {
			select {
			case o2, ok := <-s.queue:
				if !ok {
					s.finish()
					return
				}
				s.handle(o2)
			default:
				break drain
			}
		}
		s.flush()
		if s.w.cw.n >= s.segBytes {
			s.seal()
			if err := s.openSegment(); err != nil {
				// The disk is gone; further records will be written
				// nowhere, but the daemon must keep serving. Count
				// them as drops.
				s.w.f = nil
			}
			s.reclaim()
			s.publishGauges()
		}
	}
	s.finish()
}

// handle applies one op in the writer goroutine.
func (s *Spool) handle(o op) {
	if o.sync != nil {
		s.flush()
		close(o.sync)
		return
	}
	if s.w.f == nil {
		s.dropped.Add(1)
		return
	}
	data, err := json.Marshal(&o.ev)
	if err != nil {
		s.dropped.Add(1)
		return
	}
	if _, err := s.w.gz.Write(data); err != nil {
		s.dropped.Add(1)
		return
	}
	s.w.gz.Write([]byte{'\n'})
	s.w.idx.note(&o.ev, s.w.idx.Records == 0)
	s.w.dirty = true
	s.written.Add(1)
}

// flush pushes buffered compressed bytes to the OS (a gzip sync
// point), making everything written so far readable by a concurrent
// or post-mortem reader.
func (s *Spool) flush() {
	if s.w.f == nil || !s.w.dirty {
		return
	}
	s.w.gz.Flush()
	s.w.dirty = false
	s.shared.Lock()
	s.shared.activeBytes = s.w.cw.n
	s.shared.activeRecs = s.w.idx.Records
	s.shared.Unlock()
	s.publishGauges()
}

// openSegment starts a fresh active segment.
func (s *Spool) openSegment() error {
	name := fmt.Sprintf("seg-%08d%s", s.w.seq, SegmentSuffix)
	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	s.w.seq++
	s.w.f = f
	s.w.cw = &countingWriter{f: f}
	s.w.gz = gzip.NewWriter(s.w.cw)
	s.w.idx = Index{Segment: name}
	s.w.dirty = false
	s.shared.Lock()
	s.shared.activePath = path
	s.shared.activeBytes = 0
	s.shared.activeRecs = 0
	s.shared.Unlock()
	return nil
}

// seal finishes the active segment: close the gzip stream, sync the
// file, write the sidecar index (atomically, via rename), and move
// the segment into the sealed ledger. An active segment that never
// received a record is deleted instead — an empty segment earns no
// index and no disk residency.
func (s *Spool) seal() {
	if s.w.f == nil {
		return
	}
	if s.w.idx.Records == 0 {
		path := filepath.Join(s.dir, s.w.idx.Segment)
		s.w.gz.Close()
		s.w.f.Close()
		os.Remove(path)
		s.shared.Lock()
		s.shared.activePath = ""
		s.shared.activeBytes = 0
		s.shared.activeRecs = 0
		s.shared.Unlock()
		s.w.f = nil
		return
	}
	s.w.gz.Close()
	s.w.f.Sync()
	s.w.f.Close()
	path := filepath.Join(s.dir, s.w.idx.Segment)
	s.w.idx.Bytes = s.w.cw.n
	s.w.idx.SealedNS = time.Now().UnixNano()
	idxPath := indexPath(path)
	if err := writeIndex(idxPath, &s.w.idx); err != nil {
		// The segment itself is intact; a missing index only costs a
		// recovery pass on the next Open.
		idxPath = ""
	}
	s.shared.Lock()
	s.shared.sealed = append(s.shared.sealed, sealedSegment{path: path, idxPath: idxPath, bytes: s.w.cw.n})
	s.shared.activePath = ""
	s.shared.activeBytes = 0
	s.shared.activeRecs = 0
	s.shared.Unlock()
	s.w.f = nil
	s.rotations.Add(1)
}

// finish seals on shutdown, even a short segment, so Close always
// leaves a fully indexed directory.
func (s *Spool) finish() {
	s.flush()
	s.seal()
	s.reclaim()
	s.publishGauges()
}

// reclaim removes oldest sealed segments until the directory fits the
// byte budget. The active segment is never reclaimed.
func (s *Spool) reclaim() {
	s.shared.Lock()
	defer s.shared.Unlock()
	total := s.shared.activeBytes
	for _, seg := range s.shared.sealed {
		total += seg.bytes
	}
	for total > s.maxBytes && len(s.shared.sealed) > 0 {
		oldest := s.shared.sealed[0]
		s.shared.sealed = s.shared.sealed[1:]
		os.Remove(oldest.path)
		if oldest.idxPath != "" {
			os.Remove(oldest.idxPath)
		}
		total -= oldest.bytes
		s.reclaimedSegs.Add(1)
		s.reclaimedB.Add(oldest.bytes)
	}
}

// publishGauges refreshes the level instruments from the ledger.
func (s *Spool) publishGauges() {
	s.shared.Lock()
	total := s.shared.activeBytes
	n := len(s.shared.sealed)
	if s.shared.activePath != "" {
		n++
	}
	for _, seg := range s.shared.sealed {
		total += seg.bytes
	}
	s.shared.Unlock()
	s.residentGauge.Set(total)
	s.segmentsGauge.Set(int64(n))
}

// Stats is a point-in-time view of the spool for /debug/spool,
// post-mortem bundles, and tests.
type Stats struct {
	Dir           string `json:"dir"`
	Segments      int    `json:"segments"`
	ResidentBytes int64  `json:"resident_bytes"`
	MaxBytes      int64  `json:"max_bytes"`
	// ActiveSegment is the path of the segment currently being
	// written ("" between rotation and reopen, or after Close).
	ActiveSegment string `json:"active_segment,omitempty"`
	ActiveRecords int64  `json:"active_records"`
	Enqueued      int64  `json:"enqueued"`
	Written       int64  `json:"written"`
	Dropped       int64  `json:"dropped"`
	Rotations     int64  `json:"rotations"`
	ReclaimedSegs int64  `json:"reclaimed_segments"`
	ReclaimedB    int64  `json:"reclaimed_bytes"`
	QueueLen      int    `json:"queue_len"`
	QueueCap      int    `json:"queue_cap"`
}

// Stats snapshots the spool (zero value on nil).
func (s *Spool) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	st := Stats{
		Dir:           s.dir,
		MaxBytes:      s.maxBytes,
		Enqueued:      s.enqueued.Value(),
		Written:       s.written.Value(),
		Dropped:       s.dropped.Value(),
		Rotations:     s.rotations.Value(),
		ReclaimedSegs: s.reclaimedSegs.Value(),
		ReclaimedB:    s.reclaimedB.Value(),
		QueueLen:      len(s.queue),
		QueueCap:      cap(s.queue),
	}
	s.shared.Lock()
	st.ActiveSegment = s.shared.activePath
	st.ActiveRecords = s.shared.activeRecs
	st.ResidentBytes = s.shared.activeBytes
	st.Segments = len(s.shared.sealed)
	if s.shared.activePath != "" {
		st.Segments++
	}
	for _, seg := range s.shared.sealed {
		st.ResidentBytes += seg.bytes
	}
	s.shared.Unlock()
	return st
}
