package spool

// Reading spool directories: segment discovery, sidecar indexes, and
// crash-tolerant record iteration. This is the offline half the
// writer never touches — cmd/slicequery and the recovery pass in Open
// are its consumers.

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jumpslice/internal/obs"
)

// File name conventions of a spool directory.
const (
	// SegmentSuffix is the suffix of segment data files
	// (seg-NNNNNNNN.jsonl.gz).
	SegmentSuffix = ".jsonl.gz"
	// IndexSuffix is the suffix of sidecar index files
	// (seg-NNNNNNNN.idx.json).
	IndexSuffix = ".idx.json"
)

// Index is a sealed segment's sidecar: enough metadata to decide
// whether the segment can possibly match a time-range or request-ID
// query without decompressing it.
type Index struct {
	// Segment is the data file's base name.
	Segment string `json:"segment"`
	// Records is the number of records in the segment; Bytes its
	// compressed on-disk size at seal time.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// MinTSNS/MaxTSNS bound the records' arrival times (ts_ns);
	// MinReq/MaxReq bound their request IDs.
	MinTSNS int64  `json:"min_ts_ns"`
	MaxTSNS int64  `json:"max_ts_ns"`
	MinReq  uint64 `json:"min_req"`
	MaxReq  uint64 `json:"max_req"`
	// SealedNS is when the segment was sealed.
	SealedNS int64 `json:"sealed_at_ns"`
	// Recovered marks an index rebuilt by Open after a crash left the
	// segment unsealed; its Records count only what survived.
	Recovered bool `json:"recovered,omitempty"`
}

// note folds one record into the index bounds.
func (x *Index) note(ev *obs.WideEvent, first bool) {
	if first {
		x.MinTSNS, x.MaxTSNS = ev.TimeNS, ev.TimeNS
		x.MinReq, x.MaxReq = ev.Req, ev.Req
	} else {
		if ev.TimeNS < x.MinTSNS {
			x.MinTSNS = ev.TimeNS
		}
		if ev.TimeNS > x.MaxTSNS {
			x.MaxTSNS = ev.TimeNS
		}
		if ev.Req < x.MinReq {
			x.MinReq = ev.Req
		}
		if ev.Req > x.MaxReq {
			x.MaxReq = ev.Req
		}
	}
	x.Records++
}

// indexPath maps a segment data path to its sidecar path.
func indexPath(segPath string) string {
	return strings.TrimSuffix(segPath, SegmentSuffix) + IndexSuffix
}

// writeIndex writes the sidecar atomically (temp file + rename), so a
// reader never sees a half-written index.
func writeIndex(path string, x *Index) error {
	data, err := json.MarshalIndent(x, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("spool: %w", err)
	}
	return nil
}

// SegmentInfo describes one segment found in a spool directory.
type SegmentInfo struct {
	// Path is the data file; Seq its parsed sequence number.
	Path string
	Seq  uint64
	// Index is the parsed sidecar, nil when the segment is unsealed
	// (the active segment, or one left behind by a crash).
	Index     *Index
	IndexPath string
}

// Segments lists a spool directory's segments, oldest (lowest
// sequence) first, pairing each with its sidecar index when present.
func Segments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	var out []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, SegmentSuffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "seg-%d", &seq); err != nil {
			continue
		}
		info := SegmentInfo{Path: filepath.Join(dir, name), Seq: seq}
		idxPath := indexPath(info.Path)
		if data, err := os.ReadFile(idxPath); err == nil {
			idx := &Index{}
			if json.Unmarshal(data, idx) == nil {
				info.Index = idx
				info.IndexPath = idxPath
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// ReadSegment streams a segment's records through fn. Truncation — a
// crash mid-batch, or reading the active segment while the writer is
// alive — is not an error: iteration stops cleanly at the last intact
// record. A non-nil error from fn aborts and is returned; ErrStop
// ends iteration early without error.
func ReadSegment(path string, fn func(ev *obs.WideEvent) error) error {
	err := readSegmentRaw(path, func(line []byte, ev *obs.WideEvent) error { return fn(ev) })
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ErrStop is fn's way to end a ReadSegment or Scan iteration early
// without reporting an error.
var ErrStop = errors.New("spool: stop")

func readSegmentRaw(path string, fn func(line []byte, ev *obs.WideEvent) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil // empty active segment: nothing flushed yet
		}
		return fmt.Errorf("spool: %s: %w", path, err)
	}
	// Multistream handling is gzip's default; a truncated final
	// stream surfaces as ErrUnexpectedEOF from Read, which the
	// scanner loop below treats as end-of-data.
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev := &obs.WideEvent{}
		if err := json.Unmarshal(line, ev); err != nil {
			// A partial final line from an unflushed batch; everything
			// before it was intact.
			return nil
		}
		if err := fn(line, ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !isTruncatedGzip(err) {
		return fmt.Errorf("spool: %s: %w", path, err)
	}
	return nil
}

// isTruncatedGzip reports whether err is the flate/gzip noise a
// truncated (crash- or mid-write-read) stream produces.
func isTruncatedGzip(err error) bool {
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, gzip.ErrChecksum) {
		return true
	}
	return strings.Contains(err.Error(), "unexpected EOF") ||
		strings.Contains(err.Error(), "corrupt input")
}

// Filter selects records for Scan. The zero Filter matches every
// record.
type Filter struct {
	// SinceNS/UntilNS bound TimeNS (inclusive); zero means unbounded.
	SinceNS int64
	UntilNS int64
	// Endpoint, Status, Outcome, Route match exactly when set;
	// MinDurNS is the minimum duration; Req, when nonzero, selects one
	// request ID.
	Endpoint string
	Status   int
	Outcome  string
	Route    string
	MinDurNS int64
	Req      uint64
}

// matchIndex reports whether a sealed segment can possibly hold a
// matching record; unsealed segments always can.
func (f *Filter) matchIndex(x *Index) bool {
	if x == nil {
		return true
	}
	if f.SinceNS != 0 && x.MaxTSNS < f.SinceNS {
		return false
	}
	if f.UntilNS != 0 && x.MinTSNS > f.UntilNS {
		return false
	}
	if f.Req != 0 && (f.Req < x.MinReq || f.Req > x.MaxReq) {
		return false
	}
	return true
}

// Match reports whether one record passes the filter.
func (f *Filter) Match(ev *obs.WideEvent) bool {
	if f.SinceNS != 0 && ev.TimeNS < f.SinceNS {
		return false
	}
	if f.UntilNS != 0 && ev.TimeNS > f.UntilNS {
		return false
	}
	if f.Endpoint != "" && ev.Endpoint != f.Endpoint {
		return false
	}
	if f.Status != 0 && ev.Status != f.Status {
		return false
	}
	if f.Outcome != "" && ev.Outcome != f.Outcome {
		return false
	}
	if f.Route != "" && ev.Route != f.Route {
		return false
	}
	if f.MinDurNS != 0 && ev.DurationNS < f.MinDurNS {
		return false
	}
	if f.Req != 0 && ev.Req != f.Req {
		return false
	}
	return true
}

// Scan streams every matching record of a spool directory through fn
// in segment order (oldest segment first, record order within), using
// sidecar indexes to skip segments that cannot match. fn receives the
// record and its raw stored JSON line (valid only during the call);
// returning ErrStop ends the whole scan early without error.
func Scan(dir string, f Filter, fn func(ev *obs.WideEvent, raw []byte) error) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if !f.matchIndex(seg.Index) {
			continue
		}
		err := readSegmentRaw(seg.Path, func(line []byte, ev *obs.WideEvent) error {
			if !f.Match(ev) {
				return nil
			}
			return fn(ev, line)
		})
		if errors.Is(err, ErrStop) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}
