package spool

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"jumpslice/internal/obs"
)

// ev builds a distinguishable test record; the Phases slice makes it
// a faithful stand-in for a real wide event with a teed span log.
func ev(req uint64, endpoint string, status int, durNS int64) obs.WideEvent {
	return obs.WideEvent{
		Req:        req,
		TimeNS:     int64(req) * 1000,
		Method:     "POST",
		Path:       endpoint,
		Endpoint:   endpoint,
		Status:     status,
		DurationNS: durNS,
		BytesOut:   42,
		Outcome:    "ok",
		Algo:       "agrawal",
		Phases:     []obs.PhaseDur{{Name: "parse", NS: 100}, {Name: "cfg", NS: 200}},
	}
}

func openTest(t *testing.T, dir string, opts Options) *Spool {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func collect(t *testing.T, dir string, f Filter) []obs.WideEvent {
	t.Helper()
	var out []obs.WideEvent
	if err := Scan(dir, f, func(e *obs.WideEvent, raw []byte) error {
		out = append(out, *e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	want := []obs.WideEvent{ev(1, "/slice", 200, 5e6), ev(2, "/metrics", 200, 1e5), ev(3, "/slice", 422, 2e6)}
	for _, e := range want {
		if !s.Enqueue(e) {
			t.Fatal("enqueue rejected")
		}
	}
	s.Sync()

	// The flushed active segment is readable while the spool is open.
	got := collect(t, dir, Filter{})
	if len(got) != len(want) {
		t.Fatalf("live read: got %d records, want %d", len(got), len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got = collect(t, dir, Filter{})
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		gj, _ := json.Marshal(g)
		wj, _ := json.Marshal(w)
		if string(gj) != string(wj) {
			t.Errorf("record %d: got %s, want %s", i, gj, wj)
		}
	}
	st := s.Stats()
	if st.Written != 3 || st.Enqueued != 3 || st.Dropped != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestRotationAndIndex(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 512}) // tiny: force rotations
	const n = 200
	for i := uint64(1); i <= n; i++ {
		s.Enqueue(ev(i, "/slice", 200, int64(i)*1e5))
		if i%10 == 0 {
			s.Sync() // flush per batch so the compressed size is seen
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("want multiple segments after rotation, got %d", len(segs))
	}
	var total int64
	var lastMax uint64
	for _, seg := range segs {
		if seg.Index == nil {
			t.Fatalf("segment %s has no index after Close", seg.Path)
		}
		if seg.Index.Records == 0 {
			t.Errorf("segment %s: empty index", seg.Path)
		}
		if seg.Index.MinReq <= lastMax && lastMax != 0 {
			t.Errorf("segment %s: request ranges overlap (%d <= %d)", seg.Path, seg.Index.MinReq, lastMax)
		}
		if seg.Index.MinTSNS > seg.Index.MaxTSNS || seg.Index.MinReq > seg.Index.MaxReq {
			t.Errorf("segment %s: inverted bounds %+v", seg.Path, seg.Index)
		}
		fi, err := os.Stat(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != seg.Index.Bytes {
			t.Errorf("segment %s: index bytes %d, file %d", seg.Path, seg.Index.Bytes, fi.Size())
		}
		lastMax = seg.Index.MaxReq
		total += seg.Index.Records
	}
	if total != n {
		t.Errorf("indexes count %d records, want %d", total, n)
	}
	if got := collect(t, dir, Filter{}); len(got) != n {
		t.Errorf("scan found %d records, want %d", len(got), n)
	}
}

func TestScanUsesIndexPruning(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 512})
	for i := uint64(1); i <= 100; i++ {
		s.Enqueue(ev(i, "/slice", 200, 1e6))
		s.Sync()
	}
	s.Close()

	// Request-ID pruning: exactly one record matches.
	got := collect(t, dir, Filter{Req: 57})
	if len(got) != 1 || got[0].Req != 57 {
		t.Fatalf("Filter{Req:57}: %+v", got)
	}
	// Time-range pruning (TimeNS = req*1000).
	got = collect(t, dir, Filter{SinceNS: 90_000})
	if len(got) != 11 {
		t.Errorf("SinceNS: got %d, want 11", len(got))
	}
	got = collect(t, dir, Filter{UntilNS: 10_000})
	if len(got) != 10 {
		t.Errorf("UntilNS: got %d, want 10", len(got))
	}
}

func TestFilterMatch(t *testing.T) {
	e := ev(7, "/slice", 503, 9e6)
	e.Outcome = "shed"
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{}, true},
		{Filter{Endpoint: "/slice"}, true},
		{Filter{Endpoint: "/metrics"}, false},
		{Filter{Status: 503}, true},
		{Filter{Status: 200}, false},
		{Filter{Outcome: "shed"}, true},
		{Filter{Outcome: "ok"}, false},
		{Filter{MinDurNS: 1e6}, true},
		{Filter{MinDurNS: 1e9}, false},
		{Filter{Req: 7}, true},
		{Filter{Req: 8}, false},
		{Filter{SinceNS: 8000}, false},
		{Filter{UntilNS: 6000}, false},
	}
	for i, c := range cases {
		if got := c.f.Match(&e); got != c.want {
			t.Errorf("case %d (%+v): got %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestDiskBudgetReclaimsOldest(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 512, MaxBytes: 2048})
	for i := uint64(1); i <= 500; i++ {
		s.Enqueue(ev(i, "/slice", 200, 1e6))
		if i%10 == 0 {
			s.Sync()
		}
	}
	s.Close()
	st := s.Stats()
	if st.ReclaimedSegs == 0 {
		t.Fatal("no segments reclaimed under a 2KiB budget")
	}
	if st.ResidentBytes > 2048 {
		t.Errorf("resident %d bytes over the %d budget", st.ResidentBytes, 2048)
	}
	// The survivors are the newest records.
	got := collect(t, dir, Filter{})
	if len(got) == 0 || len(got) == 500 {
		t.Fatalf("survivors: %d", len(got))
	}
	if got[len(got)-1].Req != 500 {
		t.Errorf("newest record lost: last req = %d", got[len(got)-1].Req)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Req <= got[i-1].Req {
			t.Fatalf("records out of order at %d: %d then %d", i, got[i-1].Req, got[i].Req)
		}
	}
}

func TestFullQueueDropsWithoutBlocking(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{QueueDepth: 2})
	// Park the writer with a slow sync? No: simply flood far past the
	// queue depth before the writer can drain — some records must be
	// dropped or written, none may block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= 10000; i++ {
			s.Enqueue(ev(i, "/slice", 200, 1e6))
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Enqueue blocked")
	}
	s.Close()
	st := s.Stats()
	if st.Enqueued != 10000 {
		t.Errorf("enqueued = %d, want 10000", st.Enqueued)
	}
	if st.Written+st.Dropped != st.Enqueued {
		t.Errorf("written %d + dropped %d != enqueued %d", st.Written, st.Dropped, st.Enqueued)
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for i := uint64(1); i <= 20; i++ {
		s.Enqueue(ev(i, "/slice", 200, 1e6))
	}
	s.Sync()
	// Simulate a crash: the active segment was flushed but never
	// sealed — no gzip trailer, no index. Copy the live bytes aside,
	// "restart" on a fresh view of the directory.
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Index != nil {
		t.Fatalf("precondition: want one unsealed segment, got %+v", segs)
	}
	crashed := t.TempDir()
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crashed, filepath.Base(segs[0].Path)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Reopen over the crashed copy: recovery must index the orphan
	// and continue numbering past it.
	s2 := openTest(t, crashed, Options{})
	segs, err = Segments(crashed)
	if err != nil {
		t.Fatal(err)
	}
	var recovered *Index
	for _, seg := range segs {
		if seg.Index != nil && seg.Index.Recovered {
			recovered = seg.Index
		}
	}
	if recovered == nil {
		t.Fatal("no recovered index written")
	}
	if recovered.Records != 20 || recovered.MinReq != 1 || recovered.MaxReq != 20 {
		t.Errorf("recovered index: %+v", recovered)
	}
	// New records land in a new, higher-numbered segment.
	s2.Enqueue(ev(21, "/slice", 200, 1e6))
	s2.Close()
	got := collect(t, crashed, Filter{})
	if len(got) != 21 {
		t.Errorf("after recovery + append: %d records, want 21", len(got))
	}
}

func TestTruncatedTailIsTolerated(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for i := uint64(1); i <= 10; i++ {
		s.Enqueue(ev(i, "/slice", 200, 1e6))
	}
	s.Sync()
	segs, _ := Segments(dir)
	data, err := os.ReadFile(segs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Chop bytes off the flushed stream: the reader must surface the
	// intact prefix and no error.
	trunc := filepath.Join(t.TempDir(), "seg-00000000.jsonl.gz")
	if err := os.WriteFile(trunc, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadSegment(trunc, func(e *obs.WideEvent) error { n++; return nil }); err != nil {
		t.Fatalf("truncated read errored: %v", err)
	}
	if n == 0 || n > 10 {
		t.Errorf("truncated read yielded %d records", n)
	}
}

func TestNilSpoolIsNoop(t *testing.T) {
	var s *Spool
	if s.Enqueue(ev(1, "/x", 200, 1)) {
		t.Error("nil Enqueue accepted")
	}
	s.Sync()
	if err := s.Close(); err != nil {
		t.Error(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil Stats: %+v", st)
	}
}

func TestEnqueueAfterCloseRejected(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	s.Close()
	if s.Enqueue(ev(1, "/x", 200, 1)) {
		t.Error("Enqueue accepted after Close")
	}
	s.Sync() // must not panic
}

func TestRecorderInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s := openTest(t, dir, Options{Recorder: reg})
	s.Enqueue(ev(1, "/slice", 200, 1e6))
	s.Sync()
	s.Close()
	snap := reg.Snapshot()
	byName := map[string]int64{}
	for _, c := range snap.Counters {
		byName[c.Name] = c.Value
	}
	for _, g := range snap.Gauges {
		byName[g.Name] = g.Value
	}
	if byName["spool.enqueued"] != 1 || byName["spool.written"] != 1 {
		t.Errorf("counters: %+v", byName)
	}
	if _, ok := byName["spool.segments"]; !ok {
		t.Error("spool.segments gauge missing")
	}
}

// TestConcurrentStress is the -race stress test: many writers enqueue
// through rotations and reclamation while Stats and a live Scan read
// concurrently; afterwards the accounting must balance exactly and
// every surviving record must parse.
func TestConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 2048, MaxBytes: 16384, QueueDepth: 64})
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := ev(uint64(w*perWriter+i+1), fmt.Sprintf("/slice/%d", w), 200, int64(i)*1e3)
				s.Enqueue(e)
			}
		}(w)
	}
	// Concurrent readers of the shared state.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(2)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Stats()
			}
		}
	}()
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// A live scan races segment reclamation by design; it
				// must never error on a vanished segment's records —
				// but an os-level open of a removed file is fine to
				// surface, so only assert it doesn't panic.
				Scan(dir, Filter{}, func(e *obs.WideEvent, raw []byte) error { return nil })
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Enqueued != writers*perWriter {
		t.Errorf("enqueued = %d, want %d", st.Enqueued, writers*perWriter)
	}
	if st.Written+st.Dropped != st.Enqueued {
		t.Errorf("written %d + dropped %d != enqueued %d", st.Written, st.Dropped, st.Enqueued)
	}
	if st.ResidentBytes > 16384+2048 {
		t.Errorf("resident %d far over budget", st.ResidentBytes)
	}
	// Every surviving record parses and carries its phases.
	n := 0
	if err := Scan(dir, Filter{}, func(e *obs.WideEvent, raw []byte) error {
		if e.Req == 0 || len(e.Phases) != 2 {
			t.Errorf("mangled record: %+v", e)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no records survived the stress run")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with no dir must error")
	}
}

func TestScanStopsEarly(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for i := uint64(1); i <= 10; i++ {
		s.Enqueue(ev(i, "/slice", 200, 1e6))
	}
	s.Close()
	n := 0
	if err := Scan(dir, Filter{}, func(e *obs.WideEvent, raw []byte) error {
		n++
		if n == 3 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scan visited %d records after ErrStop at 3", n)
	}
}

func TestRawLinesAreStoredJSON(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	e := ev(9, "/slice", 200, 7e6)
	s.Enqueue(e)
	s.Close()
	want, _ := json.Marshal(&e)
	found := false
	Scan(dir, Filter{Req: 9}, func(got *obs.WideEvent, raw []byte) error {
		found = true
		if string(raw) != string(want) {
			t.Errorf("raw line:\n got %s\nwant %s", raw, want)
		}
		if strings.Contains(string(raw), "\n") {
			t.Error("raw line contains a newline")
		}
		return nil
	})
	if !found {
		t.Fatal("record not found")
	}
}
