package spool

import (
	"testing"

	"jumpslice/internal/obs"
)

// BenchmarkEnqueue measures the request hot path's cost of offering a
// wide event to the spool: two counter bumps and one non-blocking
// channel send of a by-value struct. The target is <= 500ns/op with 0
// allocs/op in steady state — whether the record is accepted or (once
// the queue backs up under benchmark pressure) dropped, the caller
// never waits on the disk either way.
func BenchmarkEnqueue(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	e := obs.WideEvent{
		Req:        1,
		TimeNS:     123456789,
		Method:     "POST",
		Path:       "/slice",
		Endpoint:   "/slice",
		Status:     200,
		DurationNS: 5_000_000,
		BytesOut:   512,
		Outcome:    "ok",
		Algo:       "agrawal",
		Stmts:      20,
		SliceLines: 9,
		Cache:      "hit",
		Phases:     []obs.PhaseDur{{Name: "parse", NS: 1000}, {Name: "cfg", NS: 2000}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Req = uint64(i)
		s.Enqueue(e)
	}
}

// BenchmarkEnqueueParallel is the contended variant: every GOMAXPROCS
// worker offering events through the same bounded queue.
func BenchmarkEnqueueParallel(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	e := obs.WideEvent{
		Req: 1, Method: "POST", Path: "/slice", Endpoint: "/slice",
		Status: 200, DurationNS: 5_000_000, Outcome: "ok",
		Phases: []obs.PhaseDur{{Name: "parse", NS: 1000}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Enqueue(e)
		}
	})
}
