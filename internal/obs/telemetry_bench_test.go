package obs

import (
	"testing"
	"time"
)

// The telemetry plane sits on every request; these benchmarks bound
// its per-request cost (the numbers quoted in DESIGN.md).

func BenchmarkSLOObserve(b *testing.B) {
	tr := NewSLOTracker(time.Minute, 10, SLOObjectives{
		Quantile: 0.99, Latency: 50 * time.Millisecond, ErrRate: 0.01,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe("/slice", 200, false, 2*time.Millisecond, uint64(i))
	}
}

func BenchmarkSLOObserveParallel(b *testing.B) {
	tr := NewSLOTracker(time.Minute, 10, SLOObjectives{
		Quantile: 0.99, Latency: 50 * time.Millisecond, ErrRate: 0.01,
	})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			tr.Observe("/slice", 200, false, 2*time.Millisecond, i)
		}
	})
}

func BenchmarkRequestLogRecord(b *testing.B) {
	l := NewRequestLog(1024)
	ev := WideEvent{
		Req: 1, Method: "POST", Path: "/slice", Endpoint: "/slice",
		Status: 200, DurationNS: 1e6, Outcome: "ok", Algo: "agrawal",
		Phases: []PhaseDur{{Name: "phase.analyze", NS: 1e6}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Req = uint64(i)
		l.Record(ev)
	}
}

func BenchmarkSpanLogTee(b *testing.B) {
	fr := NewFlightRecorder(1 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sl := &SpanLog{}
		tr := NewTracer(fr).ForRequest(uint64(i)).WithSpans(sl)
		tr.StartSpan("phase.analyze").End()
	}
}
