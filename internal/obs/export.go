package obs

// Exporters: trace events as JSONL and Chrome trace_event JSON, and
// Registry snapshots in the Prometheus text exposition format.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteJSONL writes one JSON object per event, one event per line —
// the /debug/flight wire format, greppable and `jq`-able.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record. The subset emitted here —
// complete events ("X") and thread-scoped instants ("i") with
// microsecond timestamps — loads in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders events in the Chrome trace_event JSON
// format (object form, loadable in chrome://tracing and Perfetto).
// Spans become complete ("X") events, everything else thread-scoped
// instants ("i"); each request's events land on their own track (tid =
// request ID). Timestamps are rebased to the earliest event so the
// viewer opens at t=0 with full microsecond precision.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var base int64
	for i, e := range events {
		if i == 0 || e.TS < base {
			base = e.TS
		}
	}
	tr := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Kind.String(),
			TS:   float64(e.TS-base) / 1e3,
			PID:  1,
			TID:  e.Req,
		}
		switch e.Kind {
		case KindSpan:
			ce.Ph, ce.Dur = "X", float64(e.Dur)/1e3
		default:
			ce.Ph, ce.S = "i", "t"
		}
		args := map[string]string{"seq": fmt.Sprintf("%d", e.Seq)}
		if e.Node >= 0 {
			args["node"] = fmt.Sprintf("%d", e.Node)
		}
		if e.PD >= 0 {
			args["nearest_pd"] = fmt.Sprintf("%d", e.PD)
		}
		if e.LS >= 0 {
			args["nearest_ls"] = fmt.Sprintf("%d", e.LS)
		}
		if e.N != 0 {
			args["n"] = fmt.Sprintf("%d", e.N)
		}
		ce.Args = args
		tr.TraceEvents = append(tr.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// promLabel escapes a Prometheus label value (backslash, quote,
// newline).
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteSLOPrometheus renders an SLO snapshot as jumpslice_http_*
// series, labelled by endpoint: cumulative request/error/shed
// counters and the window-scoped health the SLO tracker maintains —
// latency percentile gauges, error/shed ratios, and burn-rate gauges
// (only when objectives are configured). Endpoints are sorted in the
// snapshot, so equal snapshots render to equal bytes. A nil or empty
// snapshot writes nothing.
func WriteSLOPrometheus(w io.Writer, s *SLOSnapshot) error {
	if s == nil || len(s.Endpoints) == 0 {
		return nil
	}
	series := []struct {
		name, typ string
		value     func(e *EndpointSLO) (float64, bool)
	}{
		{"jumpslice_http_requests_total", "counter", func(e *EndpointSLO) (float64, bool) { return float64(e.TotalRequests), true }},
		{"jumpslice_http_errors_total", "counter", func(e *EndpointSLO) (float64, bool) { return float64(e.TotalErrors), true }},
		{"jumpslice_http_shed_total", "counter", func(e *EndpointSLO) (float64, bool) { return float64(e.TotalSheds), true }},
		{"jumpslice_http_window_requests", "gauge", func(e *EndpointSLO) (float64, bool) { return float64(e.Requests), true }},
		{"jumpslice_http_window_error_ratio", "gauge", func(e *EndpointSLO) (float64, bool) { return e.ErrorRate, true }},
		{"jumpslice_http_window_shed_ratio", "gauge", func(e *EndpointSLO) (float64, bool) { return e.ShedRate, true }},
		{"jumpslice_http_p50_ns", "gauge", func(e *EndpointSLO) (float64, bool) { return float64(e.P50NS), true }},
		{"jumpslice_http_p90_ns", "gauge", func(e *EndpointSLO) (float64, bool) { return float64(e.P90NS), true }},
		{"jumpslice_http_p99_ns", "gauge", func(e *EndpointSLO) (float64, bool) { return float64(e.P99NS), true }},
		{"jumpslice_http_error_burn", "gauge", func(e *EndpointSLO) (float64, bool) { return e.ErrorBurn, s.Objectives.ErrRate > 0 }},
		{"jumpslice_http_latency_burn", "gauge", func(e *EndpointSLO) (float64, bool) { return e.LatencyBurn, s.Objectives.Latency > 0 }},
	}
	for _, sr := range series {
		wrote := false
		for i := range s.Endpoints {
			e := &s.Endpoints[i]
			v, ok := sr.value(e)
			if !ok {
				continue
			}
			if !wrote {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", sr.name, sr.typ); err != nil {
					return err
				}
				wrote = true
			}
			if _, err := fmt.Fprintf(w, "%s{endpoint=\"%s\"} %g\n", sr.name, promLabel(e.Endpoint), v); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName sanitizes an instrument name into a Prometheus metric name:
// "jumpslice_" prefix, every non-alphanumeric rune folded to '_'.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("jumpslice_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format, version 0.0.4 (serve it with Content-Type
// "text/plain; version=0.0.4"). Counters gain the conventional
// "_total" suffix; gauges keep their bare name; histograms keep their
// unit as a name suffix ("_ns" for durations) and emit cumulative
// "_bucket" series with explicit le bounds — the snapshot's inclusive
// upper bounds, the unbounded overflow bucket rendering as le="+Inf"
// — plus "_sum" and "_count". Output order follows the snapshot
// (instruments sorted by name within each class), so equal snapshots
// render to equal bytes.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	for _, c := range s.Counters {
		name := promName(c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if h.Unit != "" && h.Unit != UnitCount {
			name += "_" + string(h.Unit)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Le == math.MaxInt64 {
				continue // the overflow bucket is the +Inf line below
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
