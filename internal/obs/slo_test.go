package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is an injectable clock for deterministic window rotation.
type testClock struct {
	mu sync.Mutex
	at time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.at = c.at.Add(d)
	c.mu.Unlock()
}

func newTestTracker(obj SLOObjectives) (*SLOTracker, *testClock) {
	t := NewSLOTracker(60*time.Second, 10, obj)
	c := &testClock{at: time.Unix(1000, 0)}
	t.now = c.now
	return t, c
}

func TestParseObjectives(t *testing.T) {
	o, err := ParseObjectives("p99=50ms,err=1%")
	if err != nil {
		t.Fatal(err)
	}
	if o.Quantile != 0.99 || o.Latency != 50*time.Millisecond || o.ErrRate != 0.01 {
		t.Fatalf("parsed %+v", o)
	}
	o, err = ParseObjectives("err=0.005")
	if err != nil || o.ErrRate != 0.005 {
		t.Fatalf("fraction form: %+v, %v", o, err)
	}
	if o, err := ParseObjectives(""); err != nil || o != (SLOObjectives{}) {
		t.Fatalf("empty spec: %+v, %v", o, err)
	}
	for _, bad := range []string{"p99", "p99=-1ms", "p99=50ms,p50=1ms", "err=200%", "err=0", "p42=1ms", "wat=1"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
}

func TestSLOWindowCountsAndRates(t *testing.T) {
	tr, _ := newTestTracker(SLOObjectives{Quantile: 0.99, Latency: 50 * time.Millisecond, ErrRate: 0.01})
	for i := 0; i < 96; i++ {
		tr.Observe("/slice", 200, false, 2*time.Millisecond, uint64(i+1))
	}
	tr.Observe("/slice", 500, false, time.Millisecond, 97)
	tr.Observe("/slice", 503, true, time.Microsecond, 98) // shed, not an error
	tr.Observe("/slice", 200, false, 80*time.Millisecond, 99)
	tr.Observe("/slice", 200, false, 200*time.Millisecond, 100)

	s := tr.Snapshot()
	if len(s.Endpoints) != 1 {
		t.Fatalf("endpoints = %+v", s.Endpoints)
	}
	e := s.Endpoints[0]
	if e.Endpoint != "/slice" || e.Requests != 100 || e.Errors != 1 || e.Sheds != 1 {
		t.Fatalf("window totals: %+v", e)
	}
	if e.ErrorRate != 0.01 || e.ShedRate != 0.01 {
		t.Fatalf("rates: err=%v shed=%v", e.ErrorRate, e.ShedRate)
	}
	// 2 of 100 over the 50ms objective → slow fraction 0.02, budget
	// 0.01 → latency burn 2×; error rate 1% at a 1% objective → 1×.
	if e.Slow != 2 {
		t.Fatalf("slow = %d, want 2", e.Slow)
	}
	if e.LatencyBurn < 1.99 || e.LatencyBurn > 2.01 {
		t.Fatalf("latency burn = %v, want ~2", e.LatencyBurn)
	}
	if e.ErrorBurn < 0.99 || e.ErrorBurn > 1.01 {
		t.Fatalf("error burn = %v, want ~1", e.ErrorBurn)
	}
	// Percentiles: p50 is in the 2ms bucket's range, p99 must be in
	// the slow tail (>= 80ms observed).
	if e.P50NS < int64(time.Millisecond) || e.P50NS >= int64(8*time.Millisecond) {
		t.Errorf("p50 = %s", time.Duration(e.P50NS))
	}
	if e.P99NS < int64(80*time.Millisecond) {
		t.Errorf("p99 = %s, want >= 80ms", time.Duration(e.P99NS))
	}
	if e.TotalRequests != 100 || e.TotalErrors != 1 || e.TotalSheds != 1 {
		t.Fatalf("cumulative totals: %+v", e)
	}
}

// TestSLOExemplarTracksSlowest checks each bucket remembers its
// slowest request ID, the aggregate→drill-down edge.
func TestSLOExemplarTracksSlowest(t *testing.T) {
	tr, clock := newTestTracker(SLOObjectives{})
	tr.Observe("/slice", 200, false, time.Millisecond, 1)
	tr.Observe("/slice", 200, false, 90*time.Millisecond, 2) // the spike
	tr.Observe("/slice", 200, false, 3*time.Millisecond, 3)
	clock.advance(6 * time.Second) // next bucket
	tr.Observe("/slice", 200, false, 4*time.Millisecond, 4)

	e := tr.Snapshot().Endpoints[0]
	if len(e.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2 buckets", e.Exemplars)
	}
	if e.Exemplars[0].Request != 2 || e.Exemplars[0].DurNS != int64(90*time.Millisecond) {
		t.Fatalf("bucket 0 exemplar = %+v, want request 2 at 90ms", e.Exemplars[0])
	}
	if e.Exemplars[1].Request != 4 {
		t.Fatalf("bucket 1 exemplar = %+v, want request 4", e.Exemplars[1])
	}
	if e.Exemplars[0].BucketStartNS >= e.Exemplars[1].BucketStartNS {
		t.Error("exemplars not ordered by bucket start")
	}
}

// TestSLOWindowExpiry checks old buckets rotate out of the window
// while cumulative totals survive.
func TestSLOWindowExpiry(t *testing.T) {
	tr, clock := newTestTracker(SLOObjectives{})
	tr.Observe("/slice", 500, false, time.Millisecond, 1)
	clock.advance(61 * time.Second) // a full window later
	tr.Observe("/slice", 200, false, time.Millisecond, 2)

	e := tr.Snapshot().Endpoints[0]
	if e.Requests != 1 || e.Errors != 0 {
		t.Fatalf("window after expiry: %+v, want 1 request 0 errors", e)
	}
	if e.TotalRequests != 2 || e.TotalErrors != 1 {
		t.Fatalf("cumulative after expiry: %+v, want 2 requests 1 error", e)
	}
}

// TestSLOBucketRecycling checks a bucket slot is reset in place when
// its epoch comes around again, not merged with stale contents.
func TestSLOBucketRecycling(t *testing.T) {
	tr, clock := newTestTracker(SLOObjectives{})
	tr.Observe("/slice", 200, false, time.Millisecond, 1)
	// Exactly one window later the same slot is reused.
	clock.advance(60 * time.Second)
	tr.Observe("/slice", 200, false, time.Millisecond, 2)
	e := tr.Snapshot().Endpoints[0]
	if e.Requests != 1 {
		t.Fatalf("recycled bucket merged stale data: window requests = %d, want 1", e.Requests)
	}
}

func TestSLONilSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("/slice", 200, false, time.Millisecond, 1)
	if tr.Snapshot() != nil {
		t.Error("nil tracker Snapshot should be nil")
	}
	if tr.Objectives() != (SLOObjectives{}) {
		t.Error("nil tracker Objectives should be zero")
	}
}

func TestSLOConcurrentObserve(t *testing.T) {
	tr, _ := newTestTracker(SLOObjectives{Quantile: 0.99, Latency: time.Millisecond})
	var wg sync.WaitGroup
	const workers, per = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep := "/slice"
				if i%3 == 0 {
					ep = "/session"
				}
				tr.Observe(ep, 200, false, time.Duration(i)*time.Microsecond, uint64(w*per+i))
				if i%64 == 0 {
					tr.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := tr.Snapshot()
	var total int64
	for _, e := range s.Endpoints {
		total += e.Requests
	}
	if total != workers*per {
		t.Fatalf("window total = %d, want %d", total, workers*per)
	}
}

func TestWriteSLOPrometheus(t *testing.T) {
	tr, _ := newTestTracker(SLOObjectives{Quantile: 0.99, Latency: 50 * time.Millisecond, ErrRate: 0.01})
	tr.Observe("/slice", 200, false, 2*time.Millisecond, 1)
	tr.Observe("/slice", 500, false, time.Millisecond, 2)
	tr.Observe("/session/{id}", 200, false, time.Millisecond, 3)

	var sb strings.Builder
	if err := WriteSLOPrometheus(&sb, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE jumpslice_http_requests_total counter",
		`jumpslice_http_requests_total{endpoint="/slice"} 2`,
		`jumpslice_http_errors_total{endpoint="/slice"} 1`,
		`jumpslice_http_requests_total{endpoint="/session/{id}"} 1`,
		"# TYPE jumpslice_http_p99_ns gauge",
		`jumpslice_http_window_error_ratio{endpoint="/slice"} 0.5`,
		"# TYPE jumpslice_http_error_burn gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Without objectives no burn series appear.
	tr2, _ := newTestTracker(SLOObjectives{})
	tr2.Observe("/slice", 200, false, time.Millisecond, 1)
	sb.Reset()
	if err := WriteSLOPrometheus(&sb, tr2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "burn") {
		t.Errorf("burn series without objectives:\n%s", sb.String())
	}
	// Nil and empty snapshots write nothing.
	sb.Reset()
	if err := WriteSLOPrometheus(&sb, nil); err != nil || sb.Len() != 0 {
		t.Errorf("nil snapshot wrote %q (%v)", sb.String(), err)
	}
}
