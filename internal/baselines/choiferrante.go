package baselines

import (
	"fmt"
	"sort"

	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
	"jumpslice/internal/lang"
)

// Executable is the output of ChoiFerranteExecutable: a flat program
// that is not a projection of the original — its control flow is
// carried entirely by synthesized gotos — but computes the criterion
// exactly like the original.
type Executable struct {
	// Prog is the synthesized program. Kept statements retain their
	// original source positions, so criterion observation by
	// (variable, line) works unchanged; synthesized gotos and labels
	// have position 0.
	Prog *lang.Program
	// Kept is the set of original flowgraph node IDs whose statements
	// appear in the program.
	Kept *bits.Set
	// SynthesizedJumps counts the gotos the generator inserted.
	SynthesizedJumps int
	// Criterion echoes the slicing criterion.
	Criterion core.Criterion
}

// ChoiFerranteExecutable constructs an executable slice in the spirit
// of Choi & Ferrante's second algorithm (paper, Section 5): instead of
// keeping the original jump statements (and closing the slice over
// their dependences), it keeps only the data statements and predicates
// of the slice and synthesizes *new* goto statements so that the kept
// statements execute in the original order. The result "need not be a
// subprogram of the original program" — here it is a completely flat
// goto program.
//
// Construction:
//
//  1. Compute the set S of needed non-jump statements: the backward
//     closure of the criterion over the augmented program dependence
//     graph (the Ball–Horwitz dependence structure, which makes
//     statements guarded by jumps depend on the jumps' guards),
//     keeping predicates and data statements but dropping the jump
//     statements themselves — their control effect is resynthesized.
//  2. For every S-node and branch outcome, compute the next S-node the
//     original flowgraph reaches, walking through dropped nodes. With
//     S closed under augmented control dependence this is unique: a
//     dropped predicate both of whose branches can reach different
//     S-nodes would have an S-node control dependent on it, forcing it
//     into S. Pure delay cycles through dropped nodes (a loop
//     containing no S-statements) are skipped — executing them cannot
//     affect S.
//  3. Emit the S-nodes in source order, each labeled, with a
//     synthesized "goto" wherever the successor is not the next
//     emitted statement; predicates become "if (cond) goto LT;" plus a
//     fall-through or goto for the false side, and a switch becomes a
//     tag-save plus a chain of equality dispatches.
//
// The returned program is validated by the package tests to reproduce
// the original criterion observations on shared inputs.
func ChoiFerranteExecutable(a *core.Analysis, c core.Criterion) (*Executable, error) {
	bh, err := BallHorwitz(a, c)
	if err != nil {
		return nil, err
	}
	g := a.CFG

	// Step 1: keep non-jump statement nodes of the BH slice.
	kept := bits.New(g.NumNodes())
	bh.Nodes.ForEach(func(id int) {
		n := g.Nodes[id]
		if n.Kind == cfg.KindEntry || n.Kind == cfg.KindExit || n.Kind.IsJump() || n.Kind == cfg.KindSkip {
			return
		}
		kept.Add(id)
	})

	gen := &flattener{a: a, kept: kept, nextMemo: map[int]int{}}
	prog, err := gen.emit()
	if err != nil {
		return nil, err
	}
	return &Executable{
		Prog:             prog,
		Kept:             kept,
		SynthesizedJumps: gen.synthesized,
		Criterion:        c,
	}, nil
}

// endSentinel marks "execution finishes" as a next-target.
const endSentinel = -1

// cycleSentinel marks "walking from here loops through dropped nodes
// without reaching S" during next-target resolution.
const cycleSentinel = -2

type flattener struct {
	a           *core.Analysis
	kept        *bits.Set
	nextMemo    map[int]int // nodeID -> next kept node (or endSentinel)
	resolving   map[int]bool
	synthesized int
}

// nextKept resolves the first kept node reached when control stands AT
// node id (if id is kept, it is its own answer), or endSentinel.
func (f *flattener) nextKept(id int) (int, error) {
	if f.kept.Has(id) {
		return id, nil
	}
	if id == f.a.CFG.Exit.ID {
		return endSentinel, nil
	}
	if v, ok := f.nextMemo[id]; ok {
		return v, nil
	}
	if f.resolving == nil {
		f.resolving = map[int]bool{}
	}
	if f.resolving[id] {
		return cycleSentinel, nil
	}
	f.resolving[id] = true
	defer delete(f.resolving, id)

	n := f.a.CFG.Nodes[id]
	result := cycleSentinel
	for _, e := range n.Out {
		// Skip the virtual Entry→Exit edge; it is analysis-only.
		if n.Kind == cfg.KindEntry && e.To == f.a.CFG.Exit.ID {
			continue
		}
		t, err := f.nextKept(e.To)
		if err != nil {
			return 0, err
		}
		if t == cycleSentinel {
			continue // pure-delay branch; the other branch decides
		}
		if result == cycleSentinel {
			result = t
		} else if result != t {
			// Should be impossible when kept is closed under
			// augmented control dependence; see the doc comment.
			return 0, fmt.Errorf("baselines: dropped node %v reaches two kept nodes (%d, %d)",
				n, result, t)
		}
	}
	f.nextMemo[id] = result
	return result, nil
}

// branchTarget resolves the kept node a specific outgoing edge leads
// to.
func (f *flattener) branchTarget(e cfg.Edge) (int, error) {
	t, err := f.nextKept(e.To)
	if err != nil {
		return 0, err
	}
	if t == cycleSentinel {
		// The branch disappears into a pure-delay loop whose only
		// exits rejoin through this region; treat as end.
		return endSentinel, nil
	}
	return t, nil
}

func labelFor(id int) string {
	if id == endSentinel {
		return "CFEND"
	}
	return fmt.Sprintf("CF%d", id)
}

// emit produces the flat program.
func (f *flattener) emit() (*lang.Program, error) {
	g := f.a.CFG

	// Emission order: source order of kept nodes.
	var order []int
	f.kept.ForEach(func(id int) { order = append(order, id) })
	sort.Slice(order, func(i, j int) bool {
		a, b := g.Nodes[order[i]], g.Nodes[order[j]]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.ID < b.ID
	})
	followerOf := map[int]int{} // id -> id emitted right after, or endSentinel
	for i, id := range order {
		if i+1 < len(order) {
			followerOf[id] = order[i+1]
		} else {
			followerOf[id] = endSentinel
		}
	}

	var body []lang.Stmt
	label := func(target int, st lang.Stmt) lang.Stmt {
		return &lang.LabeledStmt{P: st.Pos(), Label: labelFor(target), Stmt: st}
	}
	jump := func(target int) lang.Stmt {
		f.synthesized++
		return &lang.GotoStmt{Label: labelFor(target)}
	}
	// gotoUnless emits a goto to target unless it is the natural
	// fall-through.
	gotoUnless := func(natural, target int) []lang.Stmt {
		if natural == target {
			return nil
		}
		return []lang.Stmt{jump(target)}
	}

	// Entry: jump to the first executed kept node if it is not the
	// first emitted one.
	entryNext, err := f.nextKept(g.Entry.ID)
	if err != nil {
		return nil, err
	}
	if entryNext == cycleSentinel {
		entryNext = endSentinel
	}
	first := endSentinel
	if len(order) > 0 {
		first = order[0]
	}
	if entryNext != first {
		body = append(body, jump(entryNext))
	}

	tagCounter := 0
	for _, id := range order {
		n := g.Nodes[id]
		natural := followerOf[id]
		switch n.Kind {
		case cfg.KindAssign, cfg.KindRead, cfg.KindWrite:
			// The statement, stripped of its original labels (control
			// transfers are fully resynthesized).
			st := lang.Unlabel(n.Stmt)
			body = append(body, label(id, st))
			target, err := f.branchTarget(n.Out[0])
			if err != nil {
				return nil, err
			}
			body = append(body, gotoUnless(natural, target)...)
		case cfg.KindPredicate:
			cond := predicateCond(n.Stmt)
			var tTarget, fTarget int
			for _, e := range n.Out {
				t, err := f.branchTarget(e)
				if err != nil {
					return nil, err
				}
				switch e.Label {
				case "T":
					tTarget = t
				case "F":
					fTarget = t
				}
			}
			f.synthesized++
			ifStmt := &lang.IfStmt{
				P:    n.Stmt.Pos(),
				Cond: cond,
				Then: &lang.GotoStmt{Label: labelFor(tTarget)},
			}
			body = append(body, label(id, ifStmt))
			body = append(body, gotoUnless(natural, fTarget)...)
		case cfg.KindSwitch:
			sw := lang.Unlabel(n.Stmt).(*lang.SwitchStmt)
			tagCounter++
			tmp := fmt.Sprintf("cftag%d", tagCounter)
			body = append(body, label(id, &lang.AssignStmt{
				P: n.Stmt.Pos(), Name: tmp, Value: sw.Tag,
			}))
			defaultTarget := endSentinel
			haveDefault := false
			type dispatch struct {
				value  int64
				target int
			}
			var dispatches []dispatch
			for _, e := range n.Out {
				t, err := f.branchTarget(e)
				if err != nil {
					return nil, err
				}
				if e.Label == "default" {
					defaultTarget = t
					haveDefault = true
					continue
				}
				var v int64
				fmt.Sscanf(e.Label, "%d", &v)
				dispatches = append(dispatches, dispatch{value: v, target: t})
			}
			sort.Slice(dispatches, func(i, j int) bool { return dispatches[i].value < dispatches[j].value })
			for _, d := range dispatches {
				f.synthesized++
				body = append(body, &lang.IfStmt{
					Cond: &lang.BinaryExpr{Op: "==",
						X: &lang.Ident{Name: tmp},
						Y: &lang.IntLit{Value: d.value}},
					Then: &lang.GotoStmt{Label: labelFor(d.target)},
				})
			}
			if !haveDefault {
				defaultTarget = endSentinel
			}
			body = append(body, gotoUnless(natural, defaultTarget)...)
		default:
			return nil, fmt.Errorf("baselines: cannot flatten node %v", n)
		}
	}

	// Terminal label.
	body = append(body, &lang.LabeledStmt{Label: labelFor(endSentinel), Stmt: &lang.EmptyStmt{}})

	prog := &lang.Program{Body: body, Labels: map[string]*lang.LabeledStmt{}}
	for _, st := range body {
		if l, ok := st.(*lang.LabeledStmt); ok {
			prog.Labels[l.Label] = l
		}
	}
	// Round-trip through the printer/parser to validate
	// well-formedness; keep the in-memory AST (original positions
	// preserved) as the result.
	if _, err := lang.Parse(lang.Format(prog, lang.PrintOptions{})); err != nil {
		return nil, fmt.Errorf("baselines: synthesized program does not parse: %w", err)
	}
	return prog, nil
}

// predicateCond extracts the condition of an if or while statement.
func predicateCond(s lang.Stmt) lang.Expr {
	switch s := lang.Unlabel(s).(type) {
	case *lang.IfStmt:
		return s.Cond
	case *lang.WhileStmt:
		return s.Cond
	}
	panic(fmt.Sprintf("baselines: predicate node with %T", s))
}
