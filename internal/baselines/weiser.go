package baselines

import (
	"jumpslice/internal/bits"
	"jumpslice/internal/core"
	"jumpslice/internal/dataflow"
)

// Weiser computes the slice with Weiser's original iterative dataflow
// algorithm [29] — the formulation that predates program dependence
// graphs. The paper's Section 5 opens with it: "His algorithm was able
// to determine which predicates to include in the slice even when the
// program contained jump statements. It did not, however, make any
// attempt to determine the relevant jump statements themselves."
//
// The algorithm iterates two sets to a joint fixpoint:
//
//   - R(n): the variables relevant at (the entry of) node n. Seeded
//     with the criterion variables at the criterion node and
//     propagated backwards: across a node i with successor j,
//     R(i) ⊇ (R(j) − DEF(i)) ∪ (REF(i) if DEF(i) ∩ R(j) ≠ ∅).
//   - S: the slice — nodes whose definitions are relevant at some
//     successor, plus branch statements whose range of influence
//     (INFL, here: the statements directly control dependent on them)
//     intersects S. Each such branch statement contributes its REF set
//     as a new relevance seed (Weiser's level-k+1 criteria).
//
// DEF/REF include the input-cursor variable (finding F1 in
// EXPERIMENTS.md), so Weiser and the PDG-based conventional algorithm
// see the same dataflow. With INFL read as direct control dependence,
// the two compute identical slices — which the tests use as an
// independent cross-validation of the conventional engine. Like the
// in-package Conventional, the result gets the conditional-jump
// adaptation and the shared slice invariants, so the comparison is
// node-for-node.
func Weiser(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
	seeds, err := a.CriterionNodes(c)
	if err != nil {
		return nil, err
	}
	g := a.CFG

	// Variable universe (program variables plus the input cursor).
	varIdx := map[string]int{}
	addVar := func(v string) {
		if _, ok := varIdx[v]; !ok {
			varIdx[v] = len(varIdx)
		}
	}
	for _, n := range g.Nodes {
		for _, v := range dataflow.DefsOf(n) {
			addVar(v)
		}
		for _, v := range dataflow.UsesOf(n) {
			addVar(v)
		}
	}
	addVar(c.Var)
	nv := len(varIdx)

	toSet := func(names []string) *bits.Set {
		s := bits.New(nv)
		for _, v := range names {
			s.Add(varIdx[v])
		}
		return s
	}
	def := make([]*bits.Set, g.NumNodes())
	ref := make([]*bits.Set, g.NumNodes())
	rel := make([]*bits.Set, g.NumNodes()) // R(n): relevant at entry of n
	for i, n := range g.Nodes {
		def[i] = toSet(dataflow.DefsOf(n))
		ref[i] = toSet(dataflow.UsesOf(n))
		rel[i] = bits.New(nv)
	}

	slice := bits.New(g.NumNodes())
	seeded := bits.New(g.NumNodes()) // branch statements already used as criteria

	// Seed: the criterion variable is relevant at the criterion
	// node(s); a criterion node that uses the variable is itself in
	// the slice (it is the statement being asked about).
	for _, s := range seeds {
		rel[s].Add(varIdx[c.Var])
		rel[s].UnionWith(ref[s])
		slice.Add(s)
	}

	propagate := func() {
		// Backward dataflow to a fixpoint; the graphs are small, so a
		// round-robin sweep is plenty.
		tmp := bits.New(nv)
		for changed := true; changed; {
			changed = false
			for i := g.NumNodes() - 1; i >= 0; i-- {
				n := g.Nodes[i]
				for _, e := range n.Out {
					j := e.To
					// R(i) ∪= R(j) − DEF(i)
					tmp.Copy(rel[j])
					tmp.DifferenceWith(def[i])
					if rel[i].UnionWith(tmp) {
						changed = true
					}
					// If i defines something relevant at j, i's
					// references become relevant and i joins the
					// slice.
					tmp.Copy(def[i])
					tmp.IntersectWith(rel[j])
					if !tmp.Empty() {
						if rel[i].UnionWith(ref[i]) {
							changed = true
						}
						if !slice.Has(i) {
							slice.Add(i)
							changed = true
						}
					}
				}
			}
		}
	}

	// Outer loop: propagate relevance, add influencing branch
	// statements, seed their REF sets as new criteria, repeat.
	for {
		propagate()
		grew := false
		for _, b := range g.Nodes {
			if !b.Kind.IsPredicate() || seeded.Has(b.ID) {
				continue
			}
			influences := false
			for _, child := range a.CDG.Children(b.ID) {
				if slice.Has(child) {
					influences = true
					break
				}
			}
			if !influences {
				continue
			}
			seeded.Add(b.ID)
			slice.Add(b.ID)
			rel[b.ID].UnionWith(ref[b.ID])
			grew = true
		}
		if !grew {
			break
		}
	}

	// Shared invariants, exactly as the in-package Conventional
	// applies them (dummy entry predicate, conditional-jump
	// adaptation, switch enclosure).
	slice.Add(g.Entry.ID)
	if err := a.NormalizeSlice(slice); err != nil {
		return nil, err
	}

	return &core.Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "weiser",
		Nodes:     slice,
		Relabeled: a.RetargetLabels(slice),
	}, nil
}
