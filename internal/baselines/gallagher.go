package baselines

import (
	"sort"

	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
)

// Gallagher computes the slice with Gallagher's rule [11]: a jump
// statement "Goto L" is included only if (a) it lies between the
// slice and the criterion (the Lyle candidate condition it refines),
// (b) some statement in the block labeled L is in the slice, and (c)
// the predicates the jump is directly control dependent on are in the
// slice. break and continue are handled as gotos with implicit labels
// — break targets the statement after its construct, continue the
// loop predicate — and a return's target block is taken to be
// trivially in the slice (it "targets" the program exit).
//
// A "block" is the maximal run of consecutive statements starting at
// the label target and ending before the next labeled statement, which
// is Gallagher's decomposition-slice block structure. The paper's
// Section 5 shows the rule working on Figure 5 (it correctly omits the
// continue on line 11) and failing on Figure 16 (it wrongly omits the
// goto on line 4, because no statement of block L6 is in the slice).
func Gallagher(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
	conv, err := a.Conventional(c)
	if err != nil {
		return nil, err
	}
	seeds, err := a.CriterionNodes(c)
	if err != nil {
		return nil, err
	}
	set := conv.Nodes
	s := &core.Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "gallagher",
		Nodes:     set,
	}

	reachesCriterion := reachesAny(a.CFG, seeds)
	for changed := true; changed; {
		changed = false
		fromSlice := reachableFrom(a.CFG, set)
		for _, j := range a.CFG.Jumps() {
			if set.Has(j.ID) || !fromSlice[j.ID] || !reachesCriterion[j.ID] {
				continue
			}
			if !predicatesInSlice(a, j.ID, set) {
				continue
			}
			if !targetBlockInSlice(a, j, set) {
				continue
			}
			set.Add(j.ID)
			s.JumpsAdded = append(s.JumpsAdded, j.ID)
			changed = true
		}
	}
	s.Relabeled = a.RetargetLabels(set)
	return s, nil
}

// predicatesInSlice reports whether every predicate the node is
// directly control dependent on (ignoring the dummy entry node) is in
// the slice.
func predicatesInSlice(a *core.Analysis, id int, set *bits.Set) bool {
	for _, p := range a.CDG.ParentIDs(id) {
		n := a.CFG.Nodes[p]
		if n.Kind == cfg.KindEntry {
			continue
		}
		if !set.Has(p) {
			return false
		}
	}
	return true
}

// targetBlockInSlice reports whether some statement of the jump
// target's block is in the slice.
func targetBlockInSlice(a *core.Analysis, j *cfg.Node, set *bits.Set) bool {
	if j.Kind == cfg.KindReturn {
		return true // targets Exit; no block to demand
	}
	target := j.Target
	if target == nil || target.Kind == cfg.KindExit {
		return true
	}
	for _, id := range blockFrom(a, target) {
		if set.Has(id) {
			return true
		}
	}
	return false
}

// blockFrom returns the node IDs of the lexical block starting at
// start: consecutive statements in source order up to (not including)
// the next statement carrying a label.
func blockFrom(a *core.Analysis, start *cfg.Node) []int {
	// Lexical statement order = ascending (line, node ID); the builder
	// allocates IDs in lexical order, so ID order suffices.
	var order []*cfg.Node
	for _, n := range a.CFG.Nodes {
		if n.Kind == cfg.KindEntry || n.Kind == cfg.KindExit {
			continue
		}
		order = append(order, n)
	}
	sort.Slice(order, func(i, k int) bool { return order[i].ID < order[k].ID })

	var out []int
	in := false
	for _, n := range order {
		if n == start {
			in = true
			out = append(out, n.ID)
			continue
		}
		if !in {
			continue
		}
		if len(n.Labels) > 0 {
			break
		}
		out = append(out, n.ID)
	}
	return out
}

// JiangZhouRobson computes the slice with a reconstruction of the
// Jiang–Zhou–Robson rules [18]: starting from the conventional slice,
// include a jump statement when a predicate it is directly control
// dependent on and its jump target are both in the slice. The
// reconstruction reproduces the failure the paper reports: on Figure
// 8, the jumps on lines 11 and 13 are control dependent on predicate
// 9, which is not in the conventional slice, so both are missed.
func JiangZhouRobson(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
	conv, err := a.Conventional(c)
	if err != nil {
		return nil, err
	}
	set := conv.Nodes
	s := &core.Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "jiang-zhou-robson",
		Nodes:     set,
	}
	for _, j := range a.CFG.Jumps() {
		if set.Has(j.ID) {
			continue
		}
		ctrlOK := false
		for _, p := range a.CDG.ParentIDs(j.ID) {
			n := a.CFG.Nodes[p]
			if n.Kind != cfg.KindEntry && set.Has(p) {
				ctrlOK = true
			}
		}
		if !ctrlOK {
			continue
		}
		// break/continue/return carry implicit dummy labels, per the
		// paper's reading of the rule set; all four jump kinds check
		// their target node uniformly.
		target := j.Target
		if target != nil && (target.Kind == cfg.KindExit || set.Has(target.ID)) {
			set.Add(j.ID)
			s.JumpsAdded = append(s.JumpsAdded, j.ID)
		}
	}
	s.Relabeled = a.RetargetLabels(set)
	return s, nil
}
