// Package baselines implements the related-work slicing algorithms
// the paper compares against in Section 5:
//
//   - BallHorwitz — the augmented-flowgraph algorithm of Ball &
//     Horwitz [5], equivalently Choi & Ferrante's first algorithm [8].
//     The paper proves its own Figure 7 algorithm computes exactly the
//     same slices; the property tests in this repository verify that
//     claim empirically.
//   - Lyle — Lyle's extremely conservative rule [22]: include every
//     jump lying between a slice statement and the criterion location
//     in the flowgraph.
//   - Gallagher — Gallagher's refinement [11]: include a jump only if
//     its target block contributes to the slice and its controlling
//     predicates are in the slice. Correct on the paper's Figure 5 but
//     provably wrong on Figure 16.
//   - JiangZhouRobson — a reconstruction of the Jiang–Zhou–Robson
//     rules [18]: include a jump when its controlling predicate and
//     its target are both in the slice. Fails on Figure 8 exactly as
//     the paper reports (jumps 11 and 13 are missed).
package baselines

import (
	"fmt"

	"jumpslice/internal/cdg"
	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
	"jumpslice/internal/dom"
	"jumpslice/internal/lst"
	"jumpslice/internal/pdg"
)

// BallHorwitz computes the slice with the augmented-PDG algorithm of
// Ball & Horwitz / Choi & Ferrante: the control dependence graph is
// built from an augmented flowgraph that adds, for every jump
// statement, an edge to the jump's immediate lexical successor
// (Ball–Horwitz call it the continuation, Choi–Ferrante the
// fall-through statement). Jumps thereby act as pseudo-predicates, so
// the plain backward dependence closure includes exactly the needed
// jumps. Data dependence still comes from the unaugmented flowgraph.
//
// The returned slice's node IDs refer to the plain analysis's
// flowgraph; the two graphs are built from the same program by the
// same deterministic builder, so their node IDs coincide.
func BallHorwitz(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
	aug, err := cfg.Build(a.Prog)
	if err != nil {
		return nil, err
	}
	if aug.NumNodes() != a.CFG.NumNodes() {
		return nil, fmt.Errorf("baselines: augmented graph has %d nodes, plain graph %d",
			aug.NumNodes(), a.CFG.NumNodes())
	}

	// Augment: jump → immediate lexical successor. The lexical
	// successor tree of the augmented graph equals the plain one
	// (same syntax), so we build it over aug directly.
	tree := lst.Build(aug)
	for _, j := range aug.Jumps() {
		fall := aug.Nodes[tree.Parent[j.ID]]
		aug.AddEdge(j, fall, "F")
	}

	pdt := dom.PostDominators(aug, aug.Exit.ID)
	acdg := cdg.Build(aug, pdt)
	// Data dependence from the *unaugmented* graph (a.RD), control
	// dependence from the augmented one — the defining trait of the
	// algorithm.
	apdg := pdg.Build(aug, acdg, a.RD)

	seeds, err := a.CriterionNodes(c)
	if err != nil {
		return nil, err
	}
	// Plain backward closure over the augmented PDG. Dead code makes
	// the two algorithms differ cosmetically: the augmentation gives
	// statements lexically after a jump a fall-through edge, so this
	// closure can route through (and retain) jumps in unreachable
	// code, while the Figure 7 loop skips them. The live fragments of
	// the two slices coincide — see Slice.LiveStatementNodes and the
	// equivalence property tests.
	set := apdg.BackwardClosure(seeds)
	set.Add(a.CFG.Entry.ID)
	// The shared slice invariants (conditional-jump adaptation,
	// switch enclosure) apply to every algorithm; see
	// core.NormalizeSlice. Note the normalization closes over the
	// *plain* PDG, matching the Figure 7 side of the equivalence.
	if err := a.NormalizeSlice(set); err != nil {
		return nil, err
	}
	return &core.Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "ball-horwitz",
		Nodes:     set,
		Relabeled: a.RetargetLabels(set),
	}, nil
}
