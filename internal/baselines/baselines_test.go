package baselines

import (
	"reflect"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/paper"
)

func analyzeFig(t *testing.T, f *paper.Figure) (*core.Analysis, core.Criterion) {
	t.Helper()
	a, err := core.Analyze(f.Parse())
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	return a, core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
}

// TestBallHorwitzMatchesAgrawalOnCorpus verifies the paper's central
// equivalence claim (Section 3): "a statement is included in a slice
// by this algorithm iff it is included in the corresponding slice
// obtained using Ball and Horwitz's algorithm" — on every corpus
// figure, at node granularity.
func TestBallHorwitzMatchesAgrawalOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		a, c := analyzeFig(t, f)
		ag, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		bh, err := BallHorwitz(a, c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !reflect.DeepEqual(ag.StatementNodes(), bh.StatementNodes()) {
			t.Errorf("%s: Agrawal nodes %v != Ball-Horwitz nodes %v\nAgrawal lines %v, BH lines %v",
				f.Name, ag.StatementNodes(), bh.StatementNodes(), ag.Lines(), bh.Lines())
		}
	}
}

// TestLyleFig5 reproduces Section 5: "Lyle's algorithm will also
// include the continue statement on line 11, and therefore the
// predicate on line 9, in the slice" of Figure 5.
func TestLyleFig5(t *testing.T) {
	a, c := analyzeFig(t, paper.Fig5())
	s, err := Lyle(a, c)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4, 5, 7, 8, 9, 11, 14}
	if got := s.Lines(); !reflect.DeepEqual(got, want) {
		t.Errorf("Lyle slice = %v, want %v", got, want)
	}
}

// TestLyleFig3 reproduces Section 5: on Figure 3, Lyle includes "all
// goto statements and all predicates", i.e. lines 7, 11, 13 and
// predicate 9 beyond the precise slice.
func TestLyleFig3(t *testing.T) {
	a, c := analyzeFig(t, paper.Fig3())
	s, err := Lyle(a, c)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, l := range s.Lines() {
		got[l] = true
	}
	for _, l := range []int{3, 5, 7, 9, 11, 13} {
		if !got[l] {
			t.Errorf("Lyle slice missing jump/predicate line %d: %v", l, s.Lines())
		}
	}
	// It must still be a superset of the precise slice.
	ag, err := a.Agrawal(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ag.Lines() {
		if !got[l] {
			t.Errorf("Lyle slice missing precise-slice line %d", l)
		}
	}
}

// TestLyleIsSupersetOfAgrawal: Lyle's rule is conservative — on every
// corpus figure it contains the precise slice.
func TestLyleIsSupersetOfAgrawal(t *testing.T) {
	for _, f := range paper.All() {
		a, c := analyzeFig(t, f)
		ag, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		ly, err := Lyle(a, c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, id := range ag.StatementNodes() {
			if !ly.Has(id) {
				t.Errorf("%s: Lyle slice missing node %v", f.Name, a.CFG.Nodes[id])
			}
		}
	}
}

// TestGallagherFig5 reproduces Section 5: Gallagher's rule "will
// correctly omit the continue statement on line 11, and thus the
// predicate on line 9" — on Figure 5 it matches the precise slice.
func TestGallagherFig5(t *testing.T) {
	f := paper.Fig5()
	a, c := analyzeFig(t, f)
	s, err := Gallagher(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lines(); !reflect.DeepEqual(got, f.AgrawalLines) {
		t.Errorf("Gallagher slice = %v, want the precise slice %v", got, f.AgrawalLines)
	}
}

// TestGallagherFailsFig16 reproduces the paper's Figure 16-b: the rule
// "fails to include the jump statement on line 4 because no statement
// in the block labeled L6 is included in the slice", yielding the
// incorrect slice {1,2,3,5,10}.
func TestGallagherFailsFig16(t *testing.T) {
	f := paper.Fig16()
	a, c := analyzeFig(t, f)
	s, err := Gallagher(a, c)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 5, 10} // Figure 16-b — wrong, misses line 4
	if got := s.Lines(); !reflect.DeepEqual(got, want) {
		t.Errorf("Gallagher slice = %v, want the paper's incorrect %v", got, want)
	}
	// The correct slice (Figure 16-c) does include line 4.
	ag, err := a.Agrawal(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := ag.Lines(); !reflect.DeepEqual(got, f.AgrawalLines) {
		t.Fatalf("Agrawal slice = %v, want %v", got, f.AgrawalLines)
	}
}

// TestJZRFailsFig8 reproduces Section 5: the Jiang–Zhou–Robson rules
// "will fail to include both jump statements on lines 11 and 13 in
// the slice in Figure 8", while the goto on line 7 is handled.
func TestJZRFailsFig8(t *testing.T) {
	f := paper.Fig8()
	a, c := analyzeFig(t, f)
	s, err := JiangZhouRobson(a, c)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, l := range s.Lines() {
		got[l] = true
	}
	if !got[7] {
		t.Errorf("JZR should include the goto on line 7: %v", s.Lines())
	}
	if got[11] || got[13] {
		t.Errorf("JZR should miss the jumps on lines 11 and 13: %v", s.Lines())
	}
}

// TestJZRCorrectOnFig5: the reconstruction handles the continue
// version correctly (the failure is specific to Figure 8's shape).
func TestJZRCorrectOnFig5(t *testing.T) {
	f := paper.Fig5()
	a, c := analyzeFig(t, f)
	s, err := JiangZhouRobson(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lines(); !reflect.DeepEqual(got, f.AgrawalLines) {
		t.Errorf("JZR slice = %v, want %v", got, f.AgrawalLines)
	}
}

// TestBallHorwitzJumpFree: on the jump-free Figure 1-a the augmented
// graph has no extra edges and the slice equals the conventional one.
func TestBallHorwitzJumpFree(t *testing.T) {
	f := paper.Fig1()
	a, c := analyzeFig(t, f)
	bh, err := BallHorwitz(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := bh.Lines(); !reflect.DeepEqual(got, f.ConventionalLines) {
		t.Errorf("BH slice = %v, want %v", got, f.ConventionalLines)
	}
}

// TestBaselinesRetargetLabels: baseline slices re-associate dangling
// labels the same way the core algorithms do.
func TestBaselinesRetargetLabels(t *testing.T) {
	f := paper.Fig3()
	a, c := analyzeFig(t, f)
	bh, err := BallHorwitz(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := bh.RelabeledLines(); !reflect.DeepEqual(got, f.RetargetedLabels) {
		t.Errorf("BH retargeted labels = %v, want %v", got, f.RetargetedLabels)
	}
}

// TestWeiserMatchesConventionalOnCorpus cross-validates the
// PDG-based conventional engine against Weiser's original iterative
// dataflow algorithm: two very different formulations must compute
// the same slices.
func TestWeiserMatchesConventionalOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		a, c := analyzeFig(t, f)
		conv, err := a.Conventional(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		w, err := Weiser(a, c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !reflect.DeepEqual(conv.StatementNodes(), w.StatementNodes()) {
			t.Errorf("%s: conventional %v != weiser %v",
				f.Name, conv.Lines(), w.Lines())
		}
	}
}

// TestWeiserNeverAddsUnconditionalJumps: the paper's observation
// about Weiser's algorithm — predicates yes, jumps no (beyond the
// conditional-jump adaptation shared with the conventional engine).
func TestWeiserNeverAddsUnconditionalJumps(t *testing.T) {
	f := paper.Fig3()
	a, c := analyzeFig(t, f)
	w, err := Weiser(a, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range w.Lines() {
		if l == 7 || l == 11 || l == 13 {
			t.Errorf("Weiser slice %v contains unconditional jump line %d", w.Lines(), l)
		}
	}
}
