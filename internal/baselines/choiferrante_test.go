package baselines

import (
	"reflect"
	"strings"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
)

// cfRuns returns interpreter inputs/intrinsics per figure, matching
// the core test harness.
func cfInputs(f *paper.Figure) []interp.Options {
	switch f.Name {
	case "Figure 10-a":
		var opts []interp.Options
		for _, v := range []int64{0, 1} {
			v := v
			opts = append(opts, interp.Options{Intrinsics: map[string]interp.Intrinsic{
				"c1": func([]int64) int64 { return v },
			}})
		}
		return opts
	case "Figure 14-a":
		var opts []interp.Options
		for _, v := range []int64{1, 2, 3, 9} {
			v := v
			opts = append(opts, interp.Options{Intrinsics: map[string]interp.Intrinsic{
				"c": func([]int64) int64 { return v },
			}})
		}
		return opts
	default:
		var opts []interp.Options
		for _, in := range [][]int64{nil, {1}, {-1}, {3, -1, 4, 0, 5}, {-2, -2, 7, 7, -1, 6}} {
			opts = append(opts, interp.Options{Input: in})
		}
		return opts
	}
}

// TestChoiFerranteExecutableOnCorpus: the synthesized flat program
// reproduces the criterion observations of every corpus figure on
// every configured run — the executable-slice property.
func TestChoiFerranteExecutableOnCorpus(t *testing.T) {
	for _, f := range paper.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			a, c := analyzeFig(t, f)
			ex, err := ChoiFerranteExecutable(a, c)
			if err != nil {
				t.Fatal(err)
			}
			orig := f.Parse()
			for _, opts := range cfInputs(f) {
				wantOpts := opts
				wantOpts.ObserveVar, wantOpts.ObserveLine = c.Var, c.Line
				wantRes, err := interp.Run(orig, wantOpts)
				if err != nil {
					t.Fatal(err)
				}
				gotOpts := opts
				gotOpts.ObserveVar, gotOpts.ObserveLine = c.Var, c.Line
				gotRes, err := interp.Run(ex.Prog, gotOpts)
				if err != nil {
					t.Fatalf("synthesized program: %v\n%s", err,
						lang.Format(ex.Prog, lang.PrintOptions{}))
				}
				if !reflect.DeepEqual(gotRes.Observations, wantRes.Observations) {
					t.Errorf("observations differ: synthesized %v, original %v\n%s",
						gotRes.Observations, wantRes.Observations,
						lang.Format(ex.Prog, lang.PrintOptions{}))
				}
			}
		})
	}
}

// TestChoiFerranteDropsOriginalJumps: no original unconditional jump
// survives; control flow is fully resynthesized (every goto in the
// output targets a CF label).
func TestChoiFerranteDropsOriginalJumps(t *testing.T) {
	f := paper.Fig3()
	a, c := analyzeFig(t, f)
	ex, err := ChoiFerranteExecutable(a, c)
	if err != nil {
		t.Fatal(err)
	}
	src := lang.Format(ex.Prog, lang.PrintOptions{})
	if strings.Contains(src, "goto L13") || strings.Contains(src, "goto L3;") {
		t.Errorf("original labels survived:\n%s", src)
	}
	lang.WalkProgram(ex.Prog, func(s lang.Stmt) {
		if g, ok := s.(*lang.GotoStmt); ok && !strings.HasPrefix(g.Label, "CF") {
			t.Errorf("goto to non-synthesized label %q", g.Label)
		}
	})
	if ex.SynthesizedJumps == 0 {
		t.Error("expected synthesized jumps on the goto program")
	}
}

// TestChoiFerranteKeptSubset: the kept statements are exactly the
// non-jump statements of the Ball–Horwitz slice.
func TestChoiFerranteKeptSubset(t *testing.T) {
	f := paper.Fig8()
	a, c := analyzeFig(t, f)
	ex, err := ChoiFerranteExecutable(a, c)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := BallHorwitz(a, c)
	if err != nil {
		t.Fatal(err)
	}
	ex.Kept.ForEach(func(id int) {
		if !bh.Has(id) {
			t.Errorf("kept node %v outside the BH slice", a.CFG.Nodes[id])
		}
		if a.CFG.Nodes[id].Kind.IsJump() {
			t.Errorf("kept node %v is a jump", a.CFG.Nodes[id])
		}
	})
}

// TestChoiFerrantePropertyOverGeneratedPrograms: the executable-slice
// property over both random corpora.
func TestChoiFerrantePropertyOverGeneratedPrograms(t *testing.T) {
	inputs := [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}}
	for name, gen := range map[string]func(progen.Config) *lang.Program{
		"structured":   progen.Structured,
		"unstructured": progen.Unstructured,
	} {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				p := gen(progen.Config{Seed: seed, Stmts: 30})
				a, err := core.Analyze(p)
				if err != nil {
					t.Fatal(err)
				}
				crits := progen.WriteCriteria(p)
				if len(crits) > 2 {
					crits = crits[len(crits)-2:]
				}
				for _, wc := range crits {
					c := core.Criterion{Var: wc.Var, Line: wc.Line}
					ex, err := ChoiFerranteExecutable(a, c)
					if err != nil {
						t.Fatalf("seed %d %v: %v", seed, c, err)
					}
					for _, in := range inputs {
						want, err := interp.Observe(p, in, c.Var, c.Line)
						if err != nil {
							t.Fatal(err)
						}
						got, err := interp.Observe(ex.Prog, in, c.Var, c.Line)
						if err != nil {
							t.Fatalf("seed %d %v input %v: %v\n%s", seed, c, in, err,
								lang.Format(ex.Prog, lang.PrintOptions{}))
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("seed %d %v input %v: synthesized %v, original %v\n%s",
								seed, c, in, got, want,
								lang.Format(ex.Prog, lang.PrintOptions{}))
						}
					}
				}
			}
		})
	}
}

// TestChoiFerranteFlatOutput: the synthesized program is flat — no
// compound statement other than the dispatch ifs, whose branches are
// single gotos.
func TestChoiFerranteFlatOutput(t *testing.T) {
	f := paper.Fig5()
	a, c := analyzeFig(t, f)
	ex, err := ChoiFerranteExecutable(a, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range ex.Prog.Body {
		switch inner := lang.Unlabel(st).(type) {
		case *lang.WhileStmt, *lang.SwitchStmt, *lang.BlockStmt:
			t.Errorf("synthesized program contains compound %T", inner)
		case *lang.IfStmt:
			if _, ok := inner.Then.(*lang.GotoStmt); !ok {
				t.Errorf("synthesized if branch is %T, want goto", inner.Then)
			}
			if inner.Else != nil {
				t.Error("synthesized if has an else branch")
			}
		}
	}
}
