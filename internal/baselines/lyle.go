package baselines

import (
	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
)

// Lyle computes the slice with Lyle's conservative rule [22]: starting
// from the conventional slice, include every jump statement that lies
// between a slice statement and the criterion location in the control
// flowgraph — i.e. every jump reachable from some slice node from
// which the criterion is still reachable — together with the closure
// of its dependences, iterating to a fixpoint as the slice grows.
//
// The paper's Section 5 notes this includes the continue on line 11 of
// Figure 5 (and hence predicate 9), and every goto and predicate of
// Figure 3 — all avoidable, as the Figure 7 algorithm shows.
func Lyle(a *core.Analysis, c core.Criterion) (*core.Slice, error) {
	conv, err := a.Conventional(c)
	if err != nil {
		return nil, err
	}
	seeds, err := a.CriterionNodes(c)
	if err != nil {
		return nil, err
	}
	set := conv.Nodes
	s := &core.Slice{
		Analysis:  a,
		Criterion: c,
		Algorithm: "lyle",
		Nodes:     set,
	}

	reachesCriterion := reachesAny(a.CFG, seeds)
	for changed := true; changed; {
		changed = false
		fromSlice := reachableFrom(a.CFG, set)
		for _, j := range a.CFG.Jumps() {
			if set.Has(j.ID) || !fromSlice[j.ID] || !reachesCriterion[j.ID] {
				continue
			}
			a.PDG.GrowClosure(set, j.ID)
			if err := a.NormalizeSlice(set); err != nil {
				return nil, err
			}
			s.JumpsAdded = append(s.JumpsAdded, j.ID)
			changed = true
		}
	}
	s.Relabeled = a.RetargetLabels(set)
	return s, nil
}

// reachableFrom marks every node reachable (forward) from a member of
// set, including the members themselves.
func reachableFrom(g *cfg.Graph, set *bits.Set) []bool {
	seen := make([]bool, g.NumNodes())
	var stack []int
	set.ForEach(func(id int) {
		seen[id] = true
		stack = append(stack, id)
	})
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Nodes[v].Out {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// reachesAny marks every node from which some seed is reachable
// (backward reachability from the seeds).
func reachesAny(g *cfg.Graph, seeds []int) []bool {
	seen := make([]bool, g.NumNodes())
	var stack []int
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Nodes[v].In {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}
