// Package dynslice implements dynamic program slicing for programs
// with jump statements — the extension the paper's introduction
// motivates through its debugging application (reference [1] is
// Agrawal, DeMillo & Spafford, "Debugging with dynamic slicing and
// backtracking").
//
// A dynamic slice answers: which statements influenced the value of
// var at line on *this particular run*? The computation:
//
//  1. Execute the program on the given input, collecting the trace of
//     node instances.
//  2. Build instance-level dependences: each instance data-depends on
//     the most recent instance defining each variable it uses
//     (including the input-cursor variable), and control-depends on
//     the most recent instance of any node its statement is
//     statically control dependent on.
//  3. Take the backward closure from the criterion statement at
//     *statement granularity*: including a statement includes the
//     dependences of every traced instance of it (Korel–Laski style).
//     Instance-granular ("exact") dynamic slices are smaller but not
//     executable — a loop predicate needed only for its first test
//     would come without its own decrement, and the projected program
//     would diverge; statement granularity restores executability
//     while still excluding everything the run never touched.
//  4. Repair jumps exactly as the paper's Figure 7 does, reusing
//     core.RepairJumps on the dynamic statement set: the projected
//     slice must be a runnable subprogram, so the same
//     nearest-postdominator versus nearest-lexical-successor test
//     decides which jump statements to keep.
//
// The resulting slice's non-jump statements are a subset of the
// static Agrawal slice's (tested; jumps are set-relative — the repair
// against a smaller base set can need a jump the larger static slice
// makes unnecessary), and it reproduces the criterion observations on
// the traced input (tested). On other inputs it may legitimately
// diverge — that is what makes it dynamic.
package dynslice

import (
	"fmt"

	"jumpslice/internal/bits"
	"jumpslice/internal/cfg"
	"jumpslice/internal/core"
	"jumpslice/internal/dataflow"
	"jumpslice/internal/interp"
)

// Options configures a dynamic slice computation.
type Options struct {
	// Input is the stream the traced run consumes.
	Input []int64
	// Intrinsics forwards to the interpreter.
	Intrinsics map[string]interp.Intrinsic
	// MaxSteps bounds the traced run; 0 means the interpreter default.
	MaxSteps int
	// LastOccurrenceOnly slices on only the final execution of the
	// criterion statement instead of all of them.
	LastOccurrenceOnly bool
}

// Slice computes the dynamic slice of (criterion, input). The returned
// core.Slice carries algorithm name "dynamic"; its Nodes, Lines and
// Materialize behave exactly like the static slices'.
func Slice(a *core.Analysis, c core.Criterion, opts Options) (*core.Slice, error) {
	seeds, err := a.CriterionNodes(c)
	if err != nil {
		return nil, err
	}
	seedSet := map[int]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}

	res, err := interp.RunCFG(a.CFG, interp.Options{
		Input:        opts.Input,
		Intrinsics:   opts.Intrinsics,
		MaxSteps:     opts.MaxSteps,
		CollectTrace: true,
	})
	if err != nil {
		return nil, fmt.Errorf("dynslice: traced run: %w", err)
	}
	trace := res.Trace

	// Instance-level dependences.
	type instance struct {
		dataDeps []int // trace positions
		ctrlDep  int   // trace position or -1
	}
	insts := make([]instance, len(trace))
	lastDef := map[string]int{} // variable -> defining trace position
	lastExec := map[int]int{}   // node ID -> latest trace position
	var criterionPos []int

	for pos, id := range trace {
		n := a.CFG.Nodes[id]
		inst := instance{ctrlDep: -1}
		for _, v := range dataflow.UsesOf(n) {
			if d, ok := lastDef[v]; ok {
				inst.dataDeps = append(inst.dataDeps, d)
			}
		}
		// Dynamic control dependence: the latest execution of any
		// static control-dependence parent. (At most one parent has
		// executed most recently on the actual path.)
		best := -1
		for _, p := range a.CDG.ParentIDs(id) {
			if a.CFG.Nodes[p].Kind == cfg.KindEntry {
				continue
			}
			if e, ok := lastExec[p]; ok && e > best {
				best = e
			}
		}
		inst.ctrlDep = best
		insts[pos] = inst

		for _, v := range dataflow.DefsOf(n) {
			lastDef[v] = pos
		}
		lastExec[id] = pos
		if seedSet[id] {
			criterionPos = append(criterionPos, pos)
		}
	}
	if len(criterionPos) == 0 {
		// The criterion statement never executed on this input; the
		// dynamic slice is empty apart from the criterion statement
		// itself — but to stay a runnable projection that keeps the
		// criterion unreached, fall back to the static algorithm's
		// treatment: seed with the criterion statements only.
		set := bits.New(a.CFG.NumNodes())
		for _, s := range seeds {
			set.Add(s)
		}
		return finish(a, c, set)
	}
	if opts.LastOccurrenceOnly {
		criterionPos = criterionPos[len(criterionPos)-1:]
	}

	// Statement-granular backward closure (Korel–Laski): group the
	// trace positions by node, then close over nodes — adding a node
	// adds the dependences of all its instances.
	positionsOf := map[int][]int{}
	for pos, id := range trace {
		positionsOf[id] = append(positionsOf[id], pos)
	}
	set := bits.New(a.CFG.NumNodes())
	var stack []int
	addNode := func(id int) {
		if !set.Has(id) {
			set.Add(id)
			stack = append(stack, id)
		}
	}
	if opts.LastOccurrenceOnly {
		// Seed only the node(s) of the final criterion execution; the
		// closure is statement-granular either way, so this matters
		// when several criterion statements share the line.
		addNode(trace[criterionPos[len(criterionPos)-1]])
	} else {
		for _, p := range criterionPos {
			addNode(trace[p])
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pos := range positionsOf[id] {
			for _, q := range insts[pos].dataDeps {
				addNode(trace[q])
			}
			if q := insts[pos].ctrlDep; q >= 0 {
				addNode(trace[q])
			}
		}
	}
	return finish(a, c, set)
}

// finish applies the shared pipeline to the dynamic statement set:
// the slice invariants, the Figure 7 jump repair, and label
// re-association.
func finish(a *core.Analysis, c core.Criterion, set *bits.Set) (*core.Slice, error) {
	set.Add(a.CFG.Entry.ID)
	if err := a.NormalizeSlice(set); err != nil {
		return nil, err
	}
	jumps, rules, traversals, err := a.RepairJumps(set)
	if err != nil {
		return nil, err
	}
	return &core.Slice{
		Analysis:   a,
		Criterion:  c,
		Algorithm:  "dynamic",
		Nodes:      set,
		JumpsAdded: jumps,
		JumpRules:  rules,
		Traversals: traversals,
		Relabeled:  a.RetargetLabels(set),
	}, nil
}

// Occurrences returns how many times the criterion statement executed
// on the given input — useful for choosing LastOccurrenceOnly.
func Occurrences(a *core.Analysis, c core.Criterion, input []int64) (int, error) {
	seeds, err := a.CriterionNodes(c)
	if err != nil {
		return 0, err
	}
	res, err := interp.RunCFG(a.CFG, interp.Options{Input: input, CollectTrace: true})
	if err != nil {
		return 0, err
	}
	seedSet := map[int]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}
	count := 0
	for _, id := range res.Trace {
		if seedSet[id] {
			count++
		}
	}
	return count, nil
}
