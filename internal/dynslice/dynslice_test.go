package dynslice

import (
	"reflect"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/interp"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
)

func analyze(t *testing.T, src string) *core.Analysis {
	t.Helper()
	a, err := core.Analyze(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDynamicSmallerThanStaticOnOneSidedInput: when every input is
// non-positive, Figure 5-a never increments positives, and the
// dynamic slice drops the increment and its guard — statements the
// static slice must keep.
func TestDynamicSmallerThanStaticOnOneSidedInput(t *testing.T) {
	f := paper.Fig5()
	a := analyze(t, f.Source)
	c := core.Criterion{Var: "positives", Line: 14}
	in := []int64{-1, -2, -3}

	dyn, err := Slice(a, c, Options{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	static, err := a.Agrawal(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.Lines()) >= len(static.Lines()) {
		t.Errorf("dynamic slice %v not smaller than static %v", dyn.Lines(), static.Lines())
	}
	has8 := false
	for _, l := range dyn.Lines() {
		if l == 8 {
			has8 = true
		}
	}
	if has8 {
		t.Errorf("dynamic slice %v keeps the never-executed increment (line 8)", dyn.Lines())
	}
}

// TestDynamicSubsetOfStatic: on the corpus, the dynamic slice's
// non-jump statements are a subset of the static Agrawal slice's.
// Jump statements are excluded from the property: the Figure 7 repair
// tests "nearest postdominator in the slice vs nearest lexical
// successor in the slice", and against a smaller (dynamic) base set a
// jump can be needed that the larger static slice renders
// unnecessary.
func TestDynamicSubsetOfStatic(t *testing.T) {
	inputs := [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}}
	for _, f := range paper.All() {
		a := analyze(t, f.Source)
		c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
		static, err := a.Agrawal(c)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, in := range inputs {
			dyn, err := Slice(a, c, Options{Input: in})
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			for _, id := range dyn.StatementNodes() {
				if !static.Has(id) && !a.CFG.Nodes[id].Kind.IsJump() {
					t.Errorf("%s input %v: dynamic node %v outside static slice",
						f.Name, in, a.CFG.Nodes[id])
				}
			}
		}
	}
}

// TestDynamicReproducesTracedRun: the materialized dynamic slice,
// run on the traced input, produces the original observation
// sequence — the defining property of a dynamic slice.
func TestDynamicReproducesTracedRun(t *testing.T) {
	inputs := [][]int64{nil, {1, 2, 3}, {-5, 7, 0, 2, 9, -1}, {8, 8, -8, 8}}
	for _, f := range paper.All() {
		a := analyze(t, f.Source)
		c := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
		for _, in := range inputs {
			dyn, err := Slice(a, c, Options{Input: in})
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			want, err := interp.Observe(a.Prog, in, c.Var, c.Line)
			if err != nil {
				t.Fatal(err)
			}
			got, err := interp.Observe(dyn.Materialize(), in, c.Var, c.Line)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s input %v: dynamic slice observes %v, original %v\n%s",
					f.Name, in, got, want, dyn.Format())
			}
		}
	}
}

// TestDynamicPropertyOverGeneratedPrograms repeats both properties
// (subset-of-static, reproduces-traced-run) over the random corpora.
func TestDynamicPropertyOverGeneratedPrograms(t *testing.T) {
	inputs := [][]int64{nil, {3, -4, 0, 5}}
	for name, gen := range map[string]func(progen.Config) *lang.Program{
		"structured":   progen.Structured,
		"unstructured": progen.Unstructured,
	} {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				p := gen(progen.Config{Seed: seed, Stmts: 30})
				a, err := core.Analyze(p)
				if err != nil {
					t.Fatal(err)
				}
				crits := progen.WriteCriteria(p)
				if len(crits) > 2 {
					crits = crits[len(crits)-2:]
				}
				for _, wc := range crits {
					c := core.Criterion{Var: wc.Var, Line: wc.Line}
					static, err := a.Agrawal(c)
					if err != nil {
						t.Fatal(err)
					}
					for _, in := range inputs {
						dyn, err := Slice(a, c, Options{Input: in})
						if err != nil {
							t.Fatalf("seed %d %v: %v", seed, c, err)
						}
						for _, id := range dyn.StatementNodes() {
							if !static.Has(id) && !a.CFG.Nodes[id].Kind.IsJump() {
								t.Errorf("seed %d %v input %v: dynamic node %v outside static slice",
									seed, c, in, a.CFG.Nodes[id])
							}
						}
						want, err := interp.Observe(p, in, c.Var, c.Line)
						if err != nil {
							t.Fatal(err)
						}
						got, err := interp.Observe(dyn.Materialize(), in, c.Var, c.Line)
						if err != nil {
							t.Fatalf("seed %d %v input %v: %v\n%s", seed, c, in, err, dyn.Format())
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("seed %d %v input %v: dynamic observes %v, original %v",
								seed, c, in, got, want)
						}
					}
				}
			}
		})
	}
}

// TestDynamicJumpRepairFig3: on the goto program, the dynamic slice
// needs the same jump statements the static algorithm finds when the
// run exercises the relevant paths.
func TestDynamicJumpRepairFig3(t *testing.T) {
	f := paper.Fig3()
	a := analyze(t, f.Source)
	c := core.Criterion{Var: "positives", Line: 15}
	dyn, err := Slice(a, c, Options{Input: []int64{2, -3}})
	if err != nil {
		t.Fatal(err)
	}
	lines := map[int]bool{}
	for _, l := range dyn.Lines() {
		lines[l] = true
	}
	// Both branch outcomes occurred, so the slice needs the loop's
	// jump structure: goto L13 (line 7) and goto L3 (line 13).
	for _, want := range []int{7, 13} {
		if !lines[want] {
			t.Errorf("dynamic slice %v missing jump line %d", dyn.Lines(), want)
		}
	}
}

// TestOccurrencesAndLastOnly: LastOccurrenceOnly slices a single
// execution of the criterion statement.
func TestOccurrencesAndLastOnly(t *testing.T) {
	a := analyze(t, `s = 0;
i = 0;
while (i < 3) {
read(x);
s = s + x;
write(s);
i = i + 1;
}`)
	c := core.Criterion{Var: "s", Line: 6}
	in := []int64{10, 20, 30}
	n, err := Occurrences(a, c, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("occurrences = %d, want 3", n)
	}
	all, err := Slice(a, c, Options{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	last, err := Slice(a, c, Options{Input: in, LastOccurrenceOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Slicing only the last occurrence can never need more statements.
	if len(last.Lines()) > len(all.Lines()) {
		t.Errorf("last-occurrence slice %v larger than all-occurrence %v",
			last.Lines(), all.Lines())
	}
}

// TestDynamicCriterionNeverExecuted: an input that skips the
// criterion line still yields a runnable (and behaviour-preserving)
// slice.
func TestDynamicCriterionNeverExecuted(t *testing.T) {
	a := analyze(t, `read(x);
if (x > 0) return x;
y = 1;
write(y);`)
	c := core.Criterion{Var: "y", Line: 4}
	in := []int64{5} // returns early; write never runs
	dyn, err := Slice(a, c, Options{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	want, err := interp.Observe(a.Prog, in, "y", 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.Observe(dyn.Materialize(), in, "y", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("slice observes %v, original %v (both should be empty)", got, want)
	}
}

// TestDynamicDiffersAcrossInputs: the same criterion can yield
// different dynamic slices for different inputs — the whole point.
func TestDynamicDiffersAcrossInputs(t *testing.T) {
	f := paper.Fig1()
	a := analyze(t, f.Source)
	c := core.Criterion{Var: "sum", Line: 11}
	neg, err := Slice(a, c, Options{Input: []int64{-1, -2}})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := Slice(a, c, Options{Input: []int64{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(neg.Lines(), pos.Lines()) {
		t.Errorf("expected different slices: negative-input %v, positive-input %v",
			neg.Lines(), pos.Lines())
	}
}
