package incremental

import (
	"strings"
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

const base = `sum = 0;
positives = 0;
L3: if (eof()) goto L14;
read(x);
if (x > 0) goto L8;
sum = sum + f1(x);
goto L3;
L8: positives = positives + 1;
if (x % 2 != 0) goto L12;
sum = sum + f2(x);
goto L3;
L12: sum = sum + f3(x);
goto L3;
L14: write(sum);
write(positives);
`

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func editLine(t *testing.T, src string, line int, text string) string {
	t.Helper()
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) {
		t.Fatalf("editLine: line %d out of range", line)
	}
	lines[line-1] = text
	return strings.Join(lines, "\n")
}

func TestDiffIdentical(t *testing.T) {
	a, b := parse(t, base), parse(t, base)
	sc := Diff(a, b)
	if !sc.Identical || !sc.SameShape || len(sc.Replaced) != 0 || len(sc.Edits) != 0 {
		t.Fatalf("identical programs: %+v", sc)
	}
}

func TestDiffExpressionChange(t *testing.T) {
	a := parse(t, base)
	b := parse(t, editLine(t, base, 6, "sum = sum + f1(x) + 1;"))
	sc := Diff(a, b)
	if sc.Identical || !sc.SameShape {
		t.Fatalf("expression change: Identical=%v SameShape=%v (%s)", sc.Identical, sc.SameShape, sc.Mismatch)
	}
	if len(sc.Replaced) != 1 || sc.Replaced[0].DefChanged {
		t.Fatalf("Replaced = %+v", sc.Replaced)
	}
	if got := sc.Replaced[0].New.Pos().Line; got != 6 {
		t.Fatalf("replaced line = %d, want 6", got)
	}
	if len(sc.Edits) != 1 || sc.Edits[0].Op != OpReplace || sc.Edits[0].Line != 6 {
		t.Fatalf("Edits = %+v", sc.Edits)
	}
}

func TestDiffDefChange(t *testing.T) {
	a := parse(t, base)
	b := parse(t, editLine(t, base, 1, "total = 0;"))
	sc := Diff(a, b)
	if !sc.SameShape || len(sc.Replaced) != 1 || !sc.Replaced[0].DefChanged {
		t.Fatalf("def change: %+v", sc)
	}
}

func TestDiffStructuralChange(t *testing.T) {
	a := parse(t, base)
	lines := strings.Split(base, "\n")
	ins := strings.Join(append(lines[:4:4], append([]string{"extra = 0;"}, lines[4:]...)...), "\n")
	b := parse(t, ins)
	sc := Diff(a, b)
	if sc.SameShape || sc.Mismatch == "" {
		t.Fatalf("insert should break shape: %+v", sc)
	}
	var inserts int
	for _, e := range sc.Edits {
		if e.Op == OpInsert {
			inserts++
		}
	}
	if inserts != 1 {
		t.Fatalf("want 1 insert edit, got %+v", sc.Edits)
	}
}

func TestDiffRelabel(t *testing.T) {
	a := parse(t, base)
	src := strings.ReplaceAll(base, "L12", "L99")
	b := parse(t, src)
	sc := Diff(a, b)
	if sc.SameShape {
		t.Fatal("label rename must not be same-shape (gotos retarget)")
	}
	var relabels int
	for _, e := range sc.Edits {
		if e.Op == OpRelabel {
			relabels++
		}
	}
	if relabels != 1 {
		t.Fatalf("want 1 relabel edit, got %+v", sc.Edits)
	}
}

func TestDiffJumpTargetChange(t *testing.T) {
	a := parse(t, base)
	b := parse(t, editLine(t, base, 7, "goto L14;"))
	if sc := Diff(a, b); sc.SameShape {
		t.Fatal("goto retarget must not be same-shape")
	}
}

func TestSpliceLineEquivalence(t *testing.T) {
	p := parse(t, base)
	for _, tc := range []struct {
		line int
		text string
	}{
		{6, "sum = sum + f1(x) * 2;"},
		{4, "read(y);"},
		{8, "L8: positives = positives - 1;"}, // labeled target line, label kept
		{14, "L14: write(sum + 1);"},
		{15, "return;"},
	} {
		text := tc.text
		if i := strings.Index(text, ": "); i >= 0 {
			text = text[i+2:] // splice takes the statement without its label
		}
		q, ok := SpliceLine(p, tc.line, text)
		if !ok {
			t.Fatalf("SpliceLine(%d, %q) refused", tc.line, text)
		}
		want := parse(t, editLine(t, base, tc.line, tc.text))
		if sc := Diff(want, q); !sc.Identical {
			t.Fatalf("splice(%d) differs from reparse: %+v", tc.line, sc)
		}
		if got, wantSrc := lang.Format(q, lang.PrintOptions{}), lang.Format(want, lang.PrintOptions{}); got != wantSrc {
			t.Fatalf("splice(%d) formats differently:\n%s\nvs\n%s", tc.line, got, wantSrc)
		}
		if s := lang.StmtAtLine(q, tc.line); s == nil || s.Pos().Line != tc.line {
			t.Fatalf("splice(%d): statement not repositioned", tc.line)
		}
		// The original tree is untouched.
		if sc := Diff(p, parse(t, base)); !sc.Identical {
			t.Fatalf("splice(%d) mutated the original program", tc.line)
		}
	}
}

func TestSpliceLineRefusals(t *testing.T) {
	p := parse(t, base)
	for _, tc := range []struct {
		name string
		line int
		text string
	}{
		{"multiline", 6, "x = 1;\ny = 2;"},
		{"two statements", 6, "x = 1; y = 2;"},
		{"compound", 6, "if (x) y = 1;"},
		{"goto out of scope", 6, "goto L3;"},
		{"labeled", 6, "L77: x = 1;"},
		{"parse error", 6, "x = ;"},
		{"no such line", 99, "x = 1;"},
		{"compound target", 5, "x = 1;"},
	} {
		if _, ok := SpliceLine(p, tc.line, tc.text); ok {
			t.Errorf("%s: SpliceLine accepted", tc.name)
		}
	}
}

func buildCFG(t *testing.T, p *lang.Program) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatalf("cfg.Build: %v", err)
	}
	return g
}

func TestSameShapeCFG(t *testing.T) {
	a := buildCFG(t, parse(t, base))
	b := buildCFG(t, parse(t, editLine(t, base, 6, "sum = sum - f1(x);")))
	if !SameShapeCFG(a, b) {
		t.Fatal("expression edit should keep CFG shape")
	}
	c := buildCFG(t, parse(t, editLine(t, base, 7, "goto L14;")))
	if SameShapeCFG(a, c) {
		t.Fatal("goto retarget must change CFG shape")
	}
}

func TestFingerprintStability(t *testing.T) {
	a := parse(t, base)
	b := parse(t, "x = 0;\n"+base) // everything shifts down one line
	as, bs := lang.Statements(a), lang.Statements(b)[1:]
	if len(as) != len(bs) {
		t.Fatalf("statement counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		// Fingerprints ignore positions but label wrappers are not
		// visible through lang.Statements; compare bare statements.
		if Fingerprint(as[i]) != Fingerprint(bs[i]) {
			t.Fatalf("fingerprint of statement %d not position-stable", i)
		}
	}
	if Fingerprint(as[0]) == Fingerprint(as[1]) {
		t.Fatal("distinct statements should fingerprint differently")
	}
}
