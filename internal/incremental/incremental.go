// Package incremental compares two versions of a program at the
// statement level and answers the questions the incremental
// re-analysis engine in internal/core asks: did the flowgraph shape
// survive the edit, which statements changed, and did any of them
// change the variable it defines? It also provides SpliceLine, a
// single-statement reparse-and-splice that turns a one-line text edit
// into a new AST without paying a full reparse — the cost that would
// otherwise dominate an editor-speed re-slice.
//
// The differ is deliberately conservative: its positive answers
// ("same shape", "only these statements changed") are derived from a
// lockstep structural walk of both syntax trees, never from
// heuristics, so a reuse engine acting on them cannot produce results
// that differ from a cold analysis. Anything the walk cannot prove
// identical in shape is reported as a mismatch, which callers treat
// as "run the full pipeline".
package incremental

import (
	"fmt"
	"strings"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Op is the kind of a statement-level edit.
type Op int

const (
	// OpReplace substitutes one statement for another at the same
	// structural position.
	OpReplace Op = iota
	// OpRelabel changes only the label set attached to a statement.
	OpRelabel
	// OpInsert adds a statement not present in the old program.
	OpInsert
	// OpDelete removes a statement of the old program.
	OpDelete
)

// String returns the lower-case name of the op.
func (o Op) String() string {
	switch o {
	case OpReplace:
		return "replace"
	case OpRelabel:
		return "relabel"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "unknown"
}

// Edit is one entry of the statement-level edit script. Line is the
// statement's source line in the new program (for deletes, in the old
// program); Text is a one-line rendering of the statement.
type Edit struct {
	Op   Op     `json:"op"`
	Line int    `json:"line"`
	Text string `json:"text"`
}

// Replacement pairs an old statement with the same-shape new
// statement that replaced it. Old and New are the node-bearing
// statements (label wrappers stripped), so cfg.Graph.NodeFor accepts
// them directly. DefChanged reports that the variable the statement
// defines changed — the distinction that decides whether reaching
// definitions must be recomputed.
type Replacement struct {
	Old, New   lang.Stmt
	DefChanged bool
}

// Script is the result of diffing two programs.
type Script struct {
	// Identical reports that the walk found no difference at all:
	// same shape, no expression or definition changed anywhere.
	// (Statement positions are not compared; an identical script may
	// still carry different line numbers.)
	Identical bool
	// SameShape reports that both programs have the same statement
	// structure: same statement kinds in the same nesting, same
	// labels, same goto targets, same case values. When true, the
	// flowgraphs built from the two programs are structurally
	// identical node for node, and Replaced lists every pair that
	// differs.
	SameShape bool
	// Replaced lists, when SameShape, the statement pairs whose
	// expressions or defined variable differ.
	Replaced []Replacement
	// Mismatch is a human-readable reason SameShape is false, or "".
	Mismatch string
	// Edits is a statement-level edit script for reporting: replace /
	// relabel for paired statements, insert / delete for the rest.
	// It is derived from fingerprint anchoring and is informational —
	// reuse decisions are made from SameShape and Replaced only.
	Edits []Edit
}

// Diff structurally compares two programs statement by statement.
func Diff(old, new *lang.Program) *Script {
	d := &differ{}
	sc := &Script{SameShape: d.stmts(old.Body, new.Body)}
	if sc.SameShape {
		sc.Replaced = d.replaced
		sc.Identical = len(d.replaced) == 0
		// Same shape means no statement was inserted, deleted or
		// relabeled, so the edit script is exactly the replacements —
		// no need for the fingerprint-anchored pass (which would
		// re-hash every statement and dominate an editor-speed edit).
		for _, r := range d.replaced {
			sc.Edits = append(sc.Edits, Edit{
				Op:   OpReplace,
				Line: r.New.Pos().Line,
				Text: lang.StmtString(r.New),
			})
		}
	} else {
		sc.Mismatch = d.mismatch
		sc.Edits = editScript(old, new)
	}
	return sc
}

// differ carries the state of the lockstep shape walk.
type differ struct {
	replaced []Replacement
	mismatch string
}

func (d *differ) fail(format string, args ...any) bool {
	if d.mismatch == "" {
		d.mismatch = fmt.Sprintf(format, args...)
	}
	return false
}

func (d *differ) stmts(old, new []lang.Stmt) bool {
	if len(old) != len(new) {
		return d.fail("statement sequence length %d vs %d", len(old), len(new))
	}
	for i := range old {
		if !d.stmt(old[i], new[i]) {
			return false
		}
	}
	return true
}

// stmt compares one statement position of both programs. Labels are
// part of the shape: a label rename retargets gotos, so it cannot be
// treated as a same-shape replacement.
func (d *differ) stmt(o, n lang.Stmt) bool {
	if o == n {
		// Pointer-identical subtrees (SpliceLine shares everything but
		// the edited spine with the donor program) are trivially equal.
		return true
	}
	oi, olabels := unwrap(o)
	ni, nlabels := unwrap(n)
	if !equalStrings(olabels, nlabels) {
		return d.fail("line %d: labels %v vs %v", ni.Pos().Line, olabels, nlabels)
	}
	switch os := oi.(type) {
	case *lang.AssignStmt:
		ns, ok := ni.(*lang.AssignStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if os.Name != ns.Name {
			d.replace(oi, ni, true)
		} else if !ExprEqual(os.Value, ns.Value) {
			d.replace(oi, ni, false)
		}
	case *lang.ReadStmt:
		ns, ok := ni.(*lang.ReadStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if os.Name != ns.Name {
			d.replace(oi, ni, true)
		}
	case *lang.WriteStmt:
		ns, ok := ni.(*lang.WriteStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if !ExprEqual(os.Value, ns.Value) {
			d.replace(oi, ni, false)
		}
	case *lang.ReturnStmt:
		ns, ok := ni.(*lang.ReturnStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if !ExprEqual(os.Value, ns.Value) {
			d.replace(oi, ni, false)
		}
	case *lang.GotoStmt:
		ns, ok := ni.(*lang.GotoStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if os.Label != ns.Label {
			return d.fail("line %d: goto target %s vs %s", ni.Pos().Line, os.Label, ns.Label)
		}
	case *lang.BreakStmt:
		if _, ok := ni.(*lang.BreakStmt); !ok {
			return d.failKind(oi, ni)
		}
	case *lang.ContinueStmt:
		if _, ok := ni.(*lang.ContinueStmt); !ok {
			return d.failKind(oi, ni)
		}
	case *lang.EmptyStmt:
		if _, ok := ni.(*lang.EmptyStmt); !ok {
			return d.failKind(oi, ni)
		}
	case *lang.BlockStmt:
		ns, ok := ni.(*lang.BlockStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		return d.stmts(os.List, ns.List)
	case *lang.IfStmt:
		ns, ok := ni.(*lang.IfStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if (os.Else == nil) != (ns.Else == nil) {
			return d.fail("line %d: else branch added or removed", ni.Pos().Line)
		}
		if !ExprEqual(os.Cond, ns.Cond) {
			d.replace(oi, ni, false)
		}
		if !d.stmt(os.Then, ns.Then) {
			return false
		}
		if os.Else != nil && !d.stmt(os.Else, ns.Else) {
			return false
		}
	case *lang.WhileStmt:
		ns, ok := ni.(*lang.WhileStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if !ExprEqual(os.Cond, ns.Cond) {
			d.replace(oi, ni, false)
		}
		return d.stmt(os.Body, ns.Body)
	case *lang.SwitchStmt:
		ns, ok := ni.(*lang.SwitchStmt)
		if !ok {
			return d.failKind(oi, ni)
		}
		if len(os.Cases) != len(ns.Cases) {
			return d.fail("line %d: case count %d vs %d", ni.Pos().Line, len(os.Cases), len(ns.Cases))
		}
		for i := range os.Cases {
			oc, nc := os.Cases[i], ns.Cases[i]
			if oc.IsDefault != nc.IsDefault || !equalInt64s(oc.Values, nc.Values) {
				return d.fail("line %d: case arm %d labels differ", ni.Pos().Line, i)
			}
		}
		if !ExprEqual(os.Tag, ns.Tag) {
			d.replace(oi, ni, false)
		}
		for i := range os.Cases {
			if !d.stmts(os.Cases[i].Body, ns.Cases[i].Body) {
				return false
			}
		}
	default:
		return d.fail("line %d: unhandled statement %T", oi.Pos().Line, oi)
	}
	return true
}

func (d *differ) failKind(o, n lang.Stmt) bool {
	return d.fail("line %d: statement kind %T vs %T", n.Pos().Line, o, n)
}

func (d *differ) replace(o, n lang.Stmt, defChanged bool) {
	d.replaced = append(d.replaced, Replacement{Old: o, New: n, DefChanged: defChanged})
}

// unwrap strips LabeledStmt wrappers, returning the inner statement
// and the label chain in wrapper order.
func unwrap(s lang.Stmt) (lang.Stmt, []string) {
	var labels []string
	for {
		l, ok := s.(*lang.LabeledStmt)
		if !ok {
			return s, labels
		}
		labels = append(labels, l.Label)
		s = l.Stmt
	}
}

// ExprEqual reports whether two expressions are structurally equal,
// ignoring source positions. A nil expression equals only nil.
func ExprEqual(a, b lang.Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	switch a := a.(type) {
	case *lang.IntLit:
		b, ok := b.(*lang.IntLit)
		return ok && a.Value == b.Value
	case *lang.Ident:
		b, ok := b.(*lang.Ident)
		return ok && a.Name == b.Name
	case *lang.CallExpr:
		b, ok := b.(*lang.CallExpr)
		if !ok || a.Name != b.Name || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !ExprEqual(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	case *lang.UnaryExpr:
		b, ok := b.(*lang.UnaryExpr)
		return ok && a.Op == b.Op && ExprEqual(a.X, b.X)
	case *lang.BinaryExpr:
		b, ok := b.(*lang.BinaryExpr)
		return ok && a.Op == b.Op && ExprEqual(a.X, b.X) && ExprEqual(a.Y, b.Y)
	}
	return false
}

// ---------------------------------------------------------------------
// Statement fingerprints and the reporting edit script.

// fnv64 is an FNV-1a accumulator over the structural content of a
// statement, excluding source positions.
type fnv64 uint64

const (
	fnvOffset fnv64 = 14695981039346656037
	fnvPrime  fnv64 = 1099511628211
)

func (h *fnv64) byte(b byte) { *h = (*h ^ fnv64(b)) * fnvPrime }

func (h *fnv64) str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(0)
}

func (h *fnv64) i64(v int64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv64) expr(e lang.Expr) {
	switch e := e.(type) {
	case nil:
		h.byte('n')
	case *lang.IntLit:
		h.byte('i')
		h.i64(e.Value)
	case *lang.Ident:
		h.byte('v')
		h.str(e.Name)
	case *lang.CallExpr:
		h.byte('c')
		h.str(e.Name)
		h.i64(int64(len(e.Args)))
		for _, a := range e.Args {
			h.expr(a)
		}
	case *lang.UnaryExpr:
		h.byte('u')
		h.str(e.Op)
		h.expr(e.X)
	case *lang.BinaryExpr:
		h.byte('b')
		h.str(e.Op)
		h.expr(e.X)
		h.expr(e.Y)
	}
}

// header hashes the shallow content of a node-bearing statement: its
// kind, its defined variable or jump target, its header expression,
// and for switches the case arms — but not nested bodies, which
// appear as their own flattened entries.
func (h *fnv64) header(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.AssignStmt:
		h.byte('=')
		h.str(s.Name)
		h.expr(s.Value)
	case *lang.ReadStmt:
		h.byte('r')
		h.str(s.Name)
	case *lang.WriteStmt:
		h.byte('w')
		h.expr(s.Value)
	case *lang.IfStmt:
		h.byte('I')
		h.expr(s.Cond)
		if s.Else != nil {
			h.byte('e')
		}
	case *lang.WhileStmt:
		h.byte('W')
		h.expr(s.Cond)
	case *lang.SwitchStmt:
		h.byte('S')
		h.expr(s.Tag)
		for _, c := range s.Cases {
			if c.IsDefault {
				h.byte('d')
			}
			for _, v := range c.Values {
				h.i64(v)
			}
			h.byte(';')
		}
	case *lang.GotoStmt:
		h.byte('g')
		h.str(s.Label)
	case *lang.BreakStmt:
		h.byte('B')
	case *lang.ContinueStmt:
		h.byte('C')
	case *lang.ReturnStmt:
		h.byte('R')
		h.expr(s.Value)
	}
}

// Fingerprint returns a stable structural hash of a statement's
// shallow content — kind, labels, defined variable, header expression,
// case arms — independent of source positions and of nested statement
// bodies. Statements keep their fingerprint across edits elsewhere in
// the program, which is what lets the edit script anchor unchanged
// prefixes and suffixes.
func Fingerprint(s lang.Stmt) uint64 {
	inner, labels := unwrap(s)
	h := fnvOffset
	for _, l := range labels {
		h.byte('L')
		h.str(l)
	}
	h.header(inner)
	return uint64(h)
}

// flat is one node-bearing statement of the flattened program.
type flat struct {
	stmt lang.Stmt
	line int
	full uint64 // fingerprint including labels
	bare uint64 // fingerprint excluding labels
}

func flatten(p *lang.Program) []flat {
	var out []flat
	var visit func(s lang.Stmt, labels []string)
	visit = func(s lang.Stmt, labels []string) {
		switch s := s.(type) {
		case nil, *lang.EmptyStmt:
		case *lang.LabeledStmt:
			visit(s.Stmt, append(labels, s.Label))
		case *lang.BlockStmt:
			for _, t := range s.List {
				visit(t, nil)
			}
		case *lang.IfStmt:
			out = append(out, newFlat(s, labels))
			visit(s.Then, nil)
			visit(s.Else, nil)
		case *lang.WhileStmt:
			out = append(out, newFlat(s, labels))
			visit(s.Body, nil)
		case *lang.SwitchStmt:
			out = append(out, newFlat(s, labels))
			for _, c := range s.Cases {
				for _, t := range c.Body {
					visit(t, nil)
				}
			}
		default:
			out = append(out, newFlat(s, labels))
		}
	}
	for _, s := range p.Body {
		visit(s, nil)
	}
	return out
}

func newFlat(s lang.Stmt, labels []string) flat {
	full := fnvOffset
	for _, l := range labels {
		full.byte('L')
		full.str(l)
	}
	bare := fnvOffset
	full.header(s)
	bare.header(s)
	return flat{stmt: s, line: s.Pos().Line, full: uint64(full), bare: uint64(bare)}
}

// editScript derives the reporting edit script by fingerprint
// anchoring: trim the common prefix and suffix of the flattened
// statement lists, then pair the middles positionally.
func editScript(old, new *lang.Program) []Edit {
	of, nf := flatten(old), flatten(new)
	i := 0
	for i < len(of) && i < len(nf) && of[i].full == nf[i].full {
		i++
	}
	j := 0
	for j < len(of)-i && j < len(nf)-i && of[len(of)-1-j].full == nf[len(nf)-1-j].full {
		j++
	}
	om, nm := of[i:len(of)-j], nf[i:len(nf)-j]
	var edits []Edit
	k := 0
	for ; k < len(om) && k < len(nm); k++ {
		if om[k].full == nm[k].full {
			// Unchanged statement trapped between two edits.
			continue
		}
		op := OpReplace
		if om[k].bare == nm[k].bare {
			op = OpRelabel
		}
		edits = append(edits, Edit{Op: op, Line: nm[k].line, Text: lang.StmtString(nm[k].stmt)})
	}
	for _, f := range om[min(k, len(om)):] {
		edits = append(edits, Edit{Op: OpDelete, Line: f.line, Text: lang.StmtString(f.stmt)})
	}
	for _, f := range nm[min(k, len(nm)):] {
		edits = append(edits, Edit{Op: OpInsert, Line: f.line, Text: lang.StmtString(f.stmt)})
	}
	return edits
}

// ---------------------------------------------------------------------
// Single-line splice.

// SpliceLine parses text as a single simple statement and splices it
// into p at the statement occupying the given source line, returning
// the new program. It is the fast path for one-line edits: only the
// replacement statement is parsed, and the rest of the tree is shared
// with p (containers along the path to the target are copied, so p is
// never mutated).
//
// The result is structurally identical to reparsing the whole edited
// source. SpliceLine returns ok=false — and callers fall back to a
// full reparse — whenever that equivalence cannot be guaranteed
// cheaply: the text spans lines, is not exactly one unlabeled simple
// statement (gotos fail their standalone parse because the label is
// out of scope, which conveniently routes label-sensitive edits to
// the fallback), the line does not hold exactly one simple statement
// of p, or anything else shares that line.
//
// Column positions inside the spliced statement are those of the
// standalone parse; nothing downstream of parsing reads columns, so
// this is unobservable.
func SpliceLine(p *lang.Program, line int, text string) (*lang.Program, bool) {
	if strings.ContainsAny(text, "\n\r") {
		return nil, false
	}
	np, err := lang.Parse(text)
	if err != nil || len(np.Body) != 1 {
		return nil, false
	}
	repl := np.Body[0]
	switch repl.(type) {
	case *lang.AssignStmt, *lang.ReadStmt, *lang.WriteStmt,
		*lang.BreakStmt, *lang.ContinueStmt, *lang.ReturnStmt, *lang.EmptyStmt:
	default:
		return nil, false
	}
	target, ok := simpleStmtAtLine(p, line)
	if !ok {
		return nil, false
	}
	setStmtLine(repl, line)
	body, ok := replaceInList(p.Body, target, repl)
	if !ok {
		return nil, false
	}
	q := &lang.Program{Body: body, Labels: make(map[string]*lang.LabeledStmt, len(p.Labels))}
	for k, v := range p.Labels {
		q.Labels[k] = v
	}
	// Only the copied spine can hold label wrappers the map must be
	// re-pointed at; everything pointer-shared with p keeps its entry.
	fixLabels(p.Body, body, q.Labels)
	return q, true
}

// fixLabels re-points label-map entries at wrapper copies made by the
// splice. It walks old and new in lockstep and descends only where
// the pointers differ — the copied spine — so its cost is the spine,
// not the program.
func fixLabels(old, new []lang.Stmt, labels map[string]*lang.LabeledStmt) {
	for i := range new {
		fixLabelsStmt(old[i], new[i], labels)
	}
}

func fixLabelsStmt(o, n lang.Stmt, labels map[string]*lang.LabeledStmt) {
	if o == n || n == nil {
		return
	}
	switch n := n.(type) {
	case *lang.LabeledStmt:
		labels[n.Label] = n
		if ol, ok := o.(*lang.LabeledStmt); ok {
			fixLabelsStmt(ol.Stmt, n.Stmt, labels)
		}
	case *lang.BlockStmt:
		if ob, ok := o.(*lang.BlockStmt); ok && len(ob.List) == len(n.List) {
			fixLabels(ob.List, n.List, labels)
		}
	case *lang.IfStmt:
		if oi, ok := o.(*lang.IfStmt); ok {
			fixLabelsStmt(oi.Then, n.Then, labels)
			fixLabelsStmt(oi.Else, n.Else, labels)
		}
	case *lang.WhileStmt:
		if ow, ok := o.(*lang.WhileStmt); ok {
			fixLabelsStmt(ow.Body, n.Body, labels)
		}
	case *lang.SwitchStmt:
		if os, ok := o.(*lang.SwitchStmt); ok && len(os.Cases) == len(n.Cases) {
			for i, cc := range n.Cases {
				if len(os.Cases[i].Body) == len(cc.Body) {
					fixLabels(os.Cases[i].Body, cc.Body, labels)
				}
			}
		}
	}
}

// simpleStmtAtLine finds the unique simple statement on the given
// line. It demands that every statement node positioned on that line
// is either the target or one of its label wrappers, and that the
// target's expressions sit on the same line — together these
// guarantee a textual replacement of the line touches exactly this
// statement.
func simpleStmtAtLine(p *lang.Program, line int) (lang.Stmt, bool) {
	var hits []lang.Stmt
	collectLine(p.Body, line, &hits)
	if len(hits) == 0 {
		return nil, false
	}
	// Walk order visits wrappers before their inner statement, so a
	// legal hit list is one label chain ending at the target.
	for i := 0; i+1 < len(hits); i++ {
		l, ok := hits[i].(*lang.LabeledStmt)
		if !ok || l.Stmt != hits[i+1] {
			return nil, false
		}
	}
	s := hits[len(hits)-1]
	switch s := s.(type) {
	case *lang.AssignStmt:
		if !exprOnLine(s.Value, line) {
			return nil, false
		}
	case *lang.WriteStmt:
		if !exprOnLine(s.Value, line) {
			return nil, false
		}
	case *lang.ReturnStmt:
		if !exprOnLine(s.Value, line) {
			return nil, false
		}
	case *lang.ReadStmt, *lang.GotoStmt, *lang.BreakStmt, *lang.ContinueStmt, *lang.EmptyStmt:
	default:
		return nil, false
	}
	return s, true
}

func exprOnLine(e lang.Expr, line int) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *lang.CallExpr:
		if e.P.Line != line {
			return false
		}
		for _, a := range e.Args {
			if !exprOnLine(a, line) {
				return false
			}
		}
		return true
	case *lang.UnaryExpr:
		return e.P.Line == line && exprOnLine(e.X, line)
	case *lang.BinaryExpr:
		return e.P.Line == line && exprOnLine(e.X, line) && exprOnLine(e.Y, line)
	default:
		return e.Pos().Line == line
	}
}

// setStmtLine repositions a freshly parsed simple statement (and its
// expressions) onto the target line.
func setStmtLine(s lang.Stmt, line int) {
	switch s := s.(type) {
	case *lang.AssignStmt:
		s.P.Line = line
		setExprLine(s.Value, line)
	case *lang.ReadStmt:
		s.P.Line = line
	case *lang.WriteStmt:
		s.P.Line = line
		setExprLine(s.Value, line)
	case *lang.ReturnStmt:
		s.P.Line = line
		setExprLine(s.Value, line)
	case *lang.BreakStmt:
		s.P.Line = line
	case *lang.ContinueStmt:
		s.P.Line = line
	case *lang.EmptyStmt:
		s.P.Line = line
	case *lang.GotoStmt:
		s.P.Line = line
	}
}

func setExprLine(e lang.Expr, line int) {
	switch e := e.(type) {
	case nil:
	case *lang.IntLit:
		e.P.Line = line
	case *lang.Ident:
		e.P.Line = line
	case *lang.CallExpr:
		e.P.Line = line
		for _, a := range e.Args {
			setExprLine(a, line)
		}
	case *lang.UnaryExpr:
		e.P.Line = line
		setExprLine(e.X, line)
	case *lang.BinaryExpr:
		e.P.Line = line
		setExprLine(e.X, line)
		setExprLine(e.Y, line)
	}
}

// collectLine appends, in lexical walk order, every statement node
// positioned on line. Statement positions are nondecreasing in token
// order, which is exploited twice: a sibling's whole subtree is
// skipped when the next sibling still starts before the line (STRICT
// — a next sibling on the line itself means the subtree can also
// reach it), and the search stops outright at the first statement
// past the line. The cost is the paths that straddle the line, not
// the program. Returns false once the line has been passed.
func collectLine(list []lang.Stmt, line int, hits *[]lang.Stmt) bool {
	for i, s := range list {
		if s == nil {
			continue
		}
		if i+1 < len(list) {
			if next := list[i+1]; next != nil && next.Pos().Line < line {
				continue // everything inside s ends before the line
			}
		}
		if !collectLineStmt(s, line, hits) {
			return false
		}
	}
	return true
}

func collectLineStmt(s lang.Stmt, line int, hits *[]lang.Stmt) bool {
	if s == nil {
		return true
	}
	if s.Pos().Line > line {
		return false
	}
	if s.Pos().Line == line {
		*hits = append(*hits, s)
	}
	switch s := s.(type) {
	case *lang.IfStmt:
		// The then-branch ends before the else-branch begins.
		if s.Else == nil || s.Else.Pos().Line >= line {
			if !collectLineStmt(s.Then, line, hits) {
				return false
			}
		}
		return collectLineStmt(s.Else, line, hits)
	case *lang.WhileStmt:
		return collectLineStmt(s.Body, line, hits)
	case *lang.SwitchStmt:
		for ci, c := range s.Cases {
			// A case's body ends before the next case keyword.
			if ci+1 < len(s.Cases) && s.Cases[ci+1].Pos().Line < line {
				continue
			}
			if !collectLine(c.Body, line, hits) {
				return false
			}
		}
	case *lang.BlockStmt:
		return collectLine(s.List, line, hits)
	case *lang.LabeledStmt:
		return collectLineStmt(s.Stmt, line, hits)
	}
	return true
}

// replaceStmt returns s with target replaced by repl, copying only
// the containers along the path (the rest of the tree is shared).
// ok reports whether target was found in s's subtree. The search is
// pruned like collectLine's: target sits on repl's line, so subtrees
// provably ending before that line — and everything after the first
// statement past it — are never entered.
func replaceStmt(s, target, repl lang.Stmt) (lang.Stmt, bool) {
	if s == target {
		return repl, true
	}
	if s == nil || s.Pos().Line > repl.Pos().Line {
		return s, false
	}
	switch s := s.(type) {
	case *lang.LabeledStmt:
		if inner, ok := replaceStmt(s.Stmt, target, repl); ok {
			c := *s
			c.Stmt = inner
			return &c, true
		}
	case *lang.BlockStmt:
		if list, ok := replaceInList(s.List, target, repl); ok {
			c := *s
			c.List = list
			return &c, true
		}
	case *lang.IfStmt:
		if s.Else == nil || s.Else.Pos().Line >= repl.Pos().Line {
			if then, ok := replaceStmt(s.Then, target, repl); ok {
				c := *s
				c.Then = then
				return &c, true
			}
		}
		if s.Else != nil {
			if els, ok := replaceStmt(s.Else, target, repl); ok {
				c := *s
				c.Else = els
				return &c, true
			}
		}
	case *lang.WhileStmt:
		if body, ok := replaceStmt(s.Body, target, repl); ok {
			c := *s
			c.Body = body
			return &c, true
		}
	case *lang.SwitchStmt:
		for i, cc := range s.Cases {
			if i+1 < len(s.Cases) && s.Cases[i+1].Pos().Line < repl.Pos().Line {
				continue
			}
			if body, ok := replaceInList(cc.Body, target, repl); ok {
				c := *s
				c.Cases = make([]*lang.CaseClause, len(s.Cases))
				copy(c.Cases, s.Cases)
				nc := *cc
				nc.Body = body
				c.Cases[i] = &nc
				return &c, true
			}
		}
	}
	return s, false
}

func replaceInList(list []lang.Stmt, target, repl lang.Stmt) ([]lang.Stmt, bool) {
	for i, s := range list {
		if i+1 < len(list) {
			if next := list[i+1]; next != nil && next.Pos().Line < repl.Pos().Line {
				continue // target can't be inside s
			}
		}
		if ns, ok := replaceStmt(s, target, repl); ok {
			out := make([]lang.Stmt, len(list))
			copy(out, list)
			out[i] = ns
			return out, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------
// Flowgraph shape verification.

// SameShapeCFG reports whether two built flowgraphs are structurally
// identical: same node count, and per node the same kind, labels, and
// out-edges (successor ID and edge label). The reuse engine runs this
// over the old and freshly rebuilt graphs as a belt-and-braces gate
// after the AST diff — reuse must never depend on the differ being
// right, only on this check being sound.
func SameShapeCFG(a, b *cfg.Graph) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i, an := range a.Nodes {
		bn := b.Nodes[i]
		if an.Kind != bn.Kind || !equalStrings(an.Labels, bn.Labels) || len(an.Out) != len(bn.Out) {
			return false
		}
		for k, ae := range an.Out {
			be := bn.Out[k]
			if ae.To != be.To || ae.Label != be.Label {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Small helpers.

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
