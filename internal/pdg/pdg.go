// Package pdg merges the data dependence graph (from reaching
// definitions) and the control dependence graph into the program
// dependence graph of Ottenstein & Ottenstein (reference [24] in the
// paper), and provides the backward reachability that powers the
// conventional slicing algorithm.
package pdg

import (
	"sort"
	"sync"

	"jumpslice/internal/bits"
	"jumpslice/internal/cdg"
	"jumpslice/internal/cfg"
	"jumpslice/internal/dataflow"
)

// Graph is a program dependence graph over the nodes of a flowgraph.
type Graph struct {
	CFG *cfg.Graph
	CDG *cdg.Graph

	dataDeps [][]int // dataDeps[n]: nodes n is data dependent on
	deps     [][]int // union of data and control deps, sorted

	// cond is the lazily-built SCC condensation with its memoized
	// component closures; see Condensation.
	condOnce sync.Once
	cond     *Condensation
}

// Build merges control and data dependence. The control dependence
// graph may come from either the plain flowgraph (Agrawal's setting)
// or an augmented flowgraph (the Ball–Horwitz baseline); the data
// dependence always comes from the plain flowgraph, which is why the
// reaching-definitions result is a separate argument.
func Build(g *cfg.Graph, cd *cdg.Graph, rd *dataflow.ReachingDefs) *Graph {
	p := &Graph{CFG: g, CDG: cd}
	p.dataDeps = rd.DataDeps()
	p.deps = make([][]int, len(g.Nodes))
	for n := range p.deps {
		p.deps[n] = mergeDeps(p.dataDeps[n], cd.ParentIDs(n))
	}
	return p
}

// mergeDeps unions a data-dependence row with a control-dependence
// row, de-duplicated and sorted.
func mergeDeps(data, control []int) []int {
	seen := map[int]bool{}
	for _, d := range data {
		seen[d] = true
	}
	for _, d := range control {
		seen[d] = true
	}
	if len(seen) == 0 {
		return nil
	}
	merged := make([]int, 0, len(seen))
	for d := range seen {
		merged = append(merged, d)
	}
	sort.Ints(merged)
	return merged
}

// Rederive returns a graph over a shape-identical flowgraph that
// shares every dependence row of p except those of the nodes in
// newDataDeps, whose rows are replaced and re-merged with control
// dependence. It is the incremental engine's PDG step: after a
// same-shape edit, only the edited statements' data-dependence rows
// can differ, so rebuilding the whole graph is wasted work. p is not
// modified; the returned graph's condensation is rebuilt lazily
// unless the caller patches one in.
func (p *Graph) Rederive(g *cfg.Graph, cd *cdg.Graph, newDataDeps map[int][]int) *Graph {
	q := &Graph{CFG: g, CDG: cd}
	q.dataDeps = make([][]int, len(p.dataDeps))
	copy(q.dataDeps, p.dataDeps)
	q.deps = make([][]int, len(p.deps))
	copy(q.deps, p.deps)
	for n, dd := range newDataDeps {
		q.dataDeps[n] = dd
		q.deps[n] = mergeDeps(dd, cd.ParentIDs(n))
	}
	return q
}

// DataDeps returns the nodes n is directly data dependent on, sorted.
// The slice is shared; callers must not modify it.
func (p *Graph) DataDeps(n int) []int { return p.dataDeps[n] }

// ControlDeps returns the nodes n is directly control dependent on,
// de-duplicated and sorted.
func (p *Graph) ControlDeps(n int) []int { return p.CDG.ParentIDs(n) }

// Deps returns the union of data and control dependences of n, sorted.
// The slice is shared; callers must not modify it.
func (p *Graph) Deps(n int) []int { return p.deps[n] }

// cancelCheckNodes is the BFS cadence of cooperative cancellation:
// the closure walks consult their cancel callback once per this many
// node pops, keeping the per-pop cost of an attached context to one
// counter decrement.
const cancelCheckNodes = 1024

// BackwardClosure returns the set of nodes reachable from the seeds by
// following dependence edges backwards (the transitive closure of
// data and control dependence — the conventional slicing engine). The
// seeds themselves are included.
func (p *Graph) BackwardClosure(seeds []int) *bits.Set {
	out, _ := p.BackwardClosureCancel(seeds, nil)
	return out
}

// BackwardClosureCancel is BackwardClosure with cooperative
// cancellation: every cancelCheckNodes node visits the walk calls
// cancel (nil disables the checks) and abandons the closure on a
// non-nil error, returning it.
func (p *Graph) BackwardClosureCancel(seeds []int, cancel func() error) (*bits.Set, error) {
	out := bits.New(len(p.CFG.Nodes))
	var stack []int
	for _, s := range seeds {
		if !out.Has(s) {
			out.Add(s)
			stack = append(stack, s)
		}
	}
	if err := p.drain(out, stack, cancel); err != nil {
		return nil, err
	}
	return out, nil
}

// GrowClosure extends an existing slice set in place with the backward
// closure of the given seed, returning true if anything was added.
// Agrawal's Figure 7 uses this when a jump statement is added to the
// slice: "Add the transitive closure of the dependence of J to Slice".
func (p *Graph) GrowClosure(set *bits.Set, seed int) bool {
	changed, _ := p.GrowClosureCancel(set, seed, nil)
	return changed
}

// GrowClosureCancel is GrowClosure with cooperative cancellation (see
// BackwardClosureCancel). On cancellation the set holds a partial
// closure and must be discarded by the caller.
func (p *Graph) GrowClosureCancel(set *bits.Set, seed int, cancel func() error) (bool, error) {
	if set.Has(seed) {
		return false, nil
	}
	set.Add(seed)
	if err := p.drain(set, []int{seed}, cancel); err != nil {
		return false, err
	}
	return true, nil
}

// drain runs the backward BFS from the stacked nodes into set,
// consulting cancel every cancelCheckNodes pops.
func (p *Graph) drain(set *bits.Set, stack []int, cancel func() error) error {
	budget := cancelCheckNodes
	for len(stack) > 0 {
		if cancel != nil {
			if budget--; budget <= 0 {
				budget = cancelCheckNodes
				if err := cancel(); err != nil {
					return err
				}
			}
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range p.deps[n] {
			if !set.Has(d) {
				set.Add(d)
				stack = append(stack, d)
			}
		}
	}
	return nil
}
