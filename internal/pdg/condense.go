package pdg

import (
	"sync"

	"jumpslice/internal/bits"
	"jumpslice/internal/obs"
)

// Condensation is the strongly-connected-component condensation of a
// dependence relation, with memoized per-component backward closures.
// Nodes in the same dependence cycle always enter a slice together, so
// the backward closure of any node is fully determined by its
// component; the condensation is a DAG, which lets closures be
// computed bottom-up as word-parallel bitset unions and shared across
// every criterion sliced on the same relation.
//
// Components are numbered in dependence-topological order: every
// component a node depends on has a smaller index than the node's own
// component (the order Tarjan's algorithm emits them in). That
// invariant is what makes the lazy closure fill in ensure simple and
// single-pass.
type Condensation struct {
	adj [][]int // the condensed relation: adj[n] = nodes n depends on

	comp  []int   // comp[n] = component index of node n
	comps [][]int // comps[c] = member nodes of component c, ascending
	succs [][]int // succs[c] = components c's members depend on (deduped, c excluded)

	mu      sync.Mutex
	closure []*bits.Set // closure[c] = backward closure of c's members; nil until demanded

	// Cache instrumentation (nil-safe; see Instrument). A request is
	// one closure lookup (ClosureOf / a BackwardClosure seed); a hit
	// is a request answered from an already-memoized component
	// closure; a build is one component closure being materialized.
	requests, hits, builds *obs.Counter

	// tracer, when non-nil (see Trace), receives one event per cache
	// hit and per component-closure build, giving request traces the
	// cache behaviour the aggregate counters only total up.
	tracer *obs.Tracer
}

// Condensation returns the SCC condensation of the graph's dependence
// edges, building it on first use and caching it (and its memoized
// component closures) on the Graph for every later call.
func (p *Graph) Condensation() *Condensation {
	p.condOnce.Do(func() { p.cond = Condense(p.deps) })
	return p.cond
}

// Condense builds the condensation of an arbitrary dependence
// relation given as adjacency lists (adj[n] = the nodes n depends
// on). Callers that need closure under extra, non-PDG invariants —
// core's conditional-jump adaptation and switch enclosure — encode
// them as additional edges and condense the augmented relation, which
// makes every memoized closure satisfy the invariants by
// construction.
//
// The SCC pass is an iterative Tarjan over the relation. The explicit
// stack keeps deep dependence chains (one per statement in a
// straight-line program) from overflowing the goroutine stack on
// large inputs.
func Condense(adj [][]int) *Condensation {
	n := len(adj)
	c := &Condensation{
		adj:  adj,
		comp: make([]int, n),
	}
	const unvisited = -1
	index := make([]int, n)   // discovery index, -1 = unvisited
	lowlink := make([]int, n) // Tarjan lowlink
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		c.comp[i] = unvisited
	}
	var stack []int // Tarjan's component stack
	next := 0       // next discovery index

	// frame is one suspended DFS visit: node v, with edge cursor ei
	// into adj[v].
	type frame struct{ v, ei int }
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{root, 0})
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			deps := adj[f.v]
			if f.ei < len(deps) {
				w := deps[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], lowlink[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 && lowlink[v] < lowlink[dfs[len(dfs)-1].v] {
				lowlink[dfs[len(dfs)-1].v] = lowlink[v]
			}
			if lowlink[v] != index[v] {
				continue
			}
			// v is a component root: pop its members.
			id := len(c.comps)
			var members []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				c.comp[w] = id
				members = append(members, w)
				if w == v {
					break
				}
			}
			// Popped in reverse discovery order; ascending IDs keep
			// Members and tests deterministic.
			for i, j := 0, len(members)-1; i < j; i, j = i+1, j-1 {
				members[i], members[j] = members[j], members[i]
			}
			c.comps = append(c.comps, members)
		}
	}

	// Condensation edges, deduped with a stamp array. Tarjan's
	// emission order guarantees every successor index is smaller.
	c.succs = make([][]int, len(c.comps))
	stamp := make([]int, len(c.comps))
	for i := range stamp {
		stamp[i] = -1
	}
	for cid, members := range c.comps {
		for _, v := range members {
			for _, d := range adj[v] {
				dc := c.comp[d]
				if dc != cid && stamp[dc] != cid {
					stamp[dc] = cid
					c.succs[cid] = append(c.succs[cid], dc)
				}
			}
		}
	}
	c.closure = make([]*bits.Set, len(c.comps))
	return c
}

// Patched returns a condensation equivalent to condensing the
// relation that differs from c's only at the given rows (rows[n] is
// node n's new full adjacency row), or ok=false when the edit might
// merge or split a component. The safety precondition, checked per
// edited node n: n's component is a singleton, and every dependence
// in the new row lies in a strictly smaller component (or is n
// itself — a self-loop like "x = x + 1" in a loop keeps n a singleton
// SCC). Under that precondition the component partition and the
// topological numbering invariant both survive unchanged: no new
// path can lead back into n's component, because dependence edges
// never increase component indices.
//
// c is not modified — it may be shared by concurrently running
// slices of the previous analysis. The patched condensation shares
// the memoized closures of every component below the smallest edited
// one (they cannot reach an edited row; closures are read-only by
// contract) and drops the rest for lazy rebuild.
func (c *Condensation) Patched(rows map[int][]int) (*Condensation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keep := len(c.comps)
	for n, row := range rows {
		cn := c.comp[n]
		if len(c.comps[cn]) != 1 {
			return nil, false
		}
		for _, d := range row {
			if d != n && c.comp[d] >= cn {
				return nil, false
			}
		}
		if cn < keep {
			keep = cn
		}
	}
	q := &Condensation{
		comp:     c.comp,
		comps:    c.comps,
		requests: c.requests,
		hits:     c.hits,
		builds:   c.builds,
		tracer:   c.tracer,
	}
	q.adj = make([][]int, len(c.adj))
	copy(q.adj, c.adj)
	q.succs = make([][]int, len(c.succs))
	copy(q.succs, c.succs)
	for n, row := range rows {
		q.adj[n] = row
		cn := c.comp[n]
		var sc []int
		for _, d := range row {
			if dc := c.comp[d]; dc != cn && !containsInt(sc, dc) {
				sc = append(sc, dc)
			}
		}
		q.succs[cn] = sc
	}
	q.closure = make([]*bits.Set, len(c.closure))
	copy(q.closure[:keep], c.closure[:keep])
	return q, true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Instrument attaches cache counters (any may be nil, and the
// counters of obs.Nop are): requests counts closure lookups, hits the
// lookups answered from a memoized component closure, and builds the
// component closures materialized. Call it before the condensation is
// shared across goroutines; the counters themselves are atomic.
func (c *Condensation) Instrument(requests, hits, builds *obs.Counter) {
	c.requests, c.hits, c.builds = requests, hits, builds
}

// Trace attaches a tracer emitting per-lookup cache events (nil
// detaches; the nil tracer is a no-op). Like Instrument, call it
// before the condensation is shared across goroutines.
func (c *Condensation) Trace(t *obs.Tracer) { c.tracer = t }

// NumComponents returns the number of strongly connected components.
func (c *Condensation) NumComponents() int { return len(c.comps) }

// Component returns the component index of node n.
func (c *Condensation) Component(n int) int { return c.comp[n] }

// cancelCheckComps is the closure-fill cadence of cooperative
// cancellation: the ascending component sweep consults its cancel
// callback once per this many component builds.
const cancelCheckComps = 64

// ClosureOf returns the backward dependence closure of node n — the
// exact set BackwardClosure([]int{n}) computes — as a memoized bitset.
// The returned set is shared and must not be modified; union it into a
// caller-owned set instead. Safe for concurrent use.
func (c *Condensation) ClosureOf(n int) *bits.Set {
	c.mu.Lock()
	s, _ := c.ensure(c.comp[n], nil)
	c.mu.Unlock()
	return s
}

// ensure fills in closure[target] (and, amortized, every component it
// transitively depends on). Because component indices are topological
// — dependencies strictly smaller — a single ascending sweep that
// skips already-built entries is sufficient; across the lifetime of
// the Condensation each component's closure is built exactly once, so
// total fill cost is O(components × words) plus the one-off member
// inserts. Caller holds c.mu.
//
// cancel, when non-nil, is consulted every cancelCheckComps component
// builds; a non-nil error abandons the sweep. Components already
// built stay memoized — they are complete for themselves — so a later
// request resumes where the canceled one stopped.
func (c *Condensation) ensure(target int, cancel func() error) (*bits.Set, error) {
	c.requests.Add(1)
	if s := c.closure[target]; s != nil {
		c.hits.Add(1)
		c.tracer.CacheHit(target)
		return s, nil
	}
	n := len(c.comp)
	budget := cancelCheckComps
	for i := 0; i <= target; i++ {
		if c.closure[i] != nil {
			continue
		}
		if cancel != nil {
			if budget--; budget <= 0 {
				budget = cancelCheckComps
				if err := cancel(); err != nil {
					return nil, err
				}
			}
		}
		s := bits.New(n)
		for _, v := range c.comps[i] {
			s.Add(v)
		}
		for _, d := range c.succs[i] {
			s.UnionWith(c.closure[d])
		}
		c.closure[i] = s
		c.builds.Add(1)
		c.tracer.CacheBuild(i)
	}
	return c.closure[target], nil
}

// BackwardClosure is the condensation-backed equivalent of
// Graph.BackwardClosure: the union of the memoized component closures
// of the seeds. Word-parallel, and O(words) per seed once warm.
func (c *Condensation) BackwardClosure(seeds []int) *bits.Set {
	out, _ := c.BackwardClosureCancel(seeds, nil)
	return out
}

// BackwardClosureCancel is BackwardClosure with cooperative
// cancellation: the closure fill consults cancel (nil disables the
// checks) and abandons the request on a non-nil error, returning it.
func (c *Condensation) BackwardClosureCancel(seeds []int, cancel func() error) (*bits.Set, error) {
	out := bits.New(len(c.comp))
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range seeds {
		cs, err := c.ensure(c.comp[s], cancel)
		if err != nil {
			return nil, err
		}
		out.UnionWith(cs)
	}
	return out, nil
}

// GrowClosure is the condensation-backed equivalent of
// Graph.GrowClosure: it unions seed's memoized closure into set and
// reports whether set changed.
func (c *Condensation) GrowClosure(set *bits.Set, seed int) bool {
	return set.UnionWith(c.ClosureOf(seed))
}

// GrowClosureCancel is GrowClosure with cooperative cancellation (see
// BackwardClosureCancel).
func (c *Condensation) GrowClosureCancel(set *bits.Set, seed int, cancel func() error) (bool, error) {
	c.mu.Lock()
	cs, err := c.ensure(c.comp[seed], cancel)
	c.mu.Unlock()
	if err != nil {
		return false, err
	}
	return set.UnionWith(cs), nil
}
