package pdg

import (
	"math/rand"
	"testing"

	"jumpslice/internal/cdg"
	"jumpslice/internal/cfg"
	"jumpslice/internal/dataflow"
	"jumpslice/internal/dom"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

// TestRederiveMatchesBuild checks that replacing one node's
// data-dependence row via Rederive produces exactly the rows a fresh
// Build over the altered reaching-definitions result would.
func TestRederiveMatchesBuild(t *testing.T) {
	for _, f := range paper.All() {
		g, p := build(t, f.Source)
		// Rebuild the same program cold to obtain an independent
		// "edited" pipeline (the edit here is a no-op, which still
		// exercises every sharing path).
		prog2, err := lang.Parse(f.Source)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		g2, err := cfg.Build(prog2)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		pdt := dom.PostDominators(g2, g2.Exit.ID)
		cd := cdg.Build(g2, pdt)
		rd := dataflow.Reach(g2)
		want := Build(g2, cd, rd)

		// Rederive every node's row one at a time from the original.
		for id := range g.Nodes {
			got := p.Rederive(g2, cd, map[int][]int{id: rd.DataDepsOf(g2.Nodes[id])})
			for n := range g.Nodes {
				if !equalInts(got.Deps(n), want.Deps(n)) {
					t.Fatalf("%s: Rederive(%d).Deps(%d) = %v, want %v", f.Name, id, n, got.Deps(n), want.Deps(n))
				}
				if !equalInts(got.DataDeps(n), want.DataDeps(n)) {
					t.Fatalf("%s: Rederive(%d).DataDeps(%d) = %v, want %v", f.Name, id, n, got.DataDeps(n), want.DataDeps(n))
				}
			}
		}
	}
}

// TestPatchedMatchesCondense fuzzes Condensation.Patched against a
// cold Condense of the altered relation: whenever Patched accepts an
// edit, every node's closure must be identical to the cold build's.
func TestPatchedMatchesCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	accepted := 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(20)
		adj := randRelation(rng, n)
		c := Condense(adj)
		// Warm a random subset of closures so sharing below the edit
		// point is exercised.
		for i := 0; i < n; i += 1 + rng.Intn(3) {
			c.ClosureOf(i)
		}
		// Propose a new row for one node.
		target := rng.Intn(n)
		row := randRow(rng, n)
		patched, ok := c.Patched(map[int][]int{target: row})
		adj2 := make([][]int, n)
		copy(adj2, adj)
		adj2[target] = row
		cold := Condense(adj2)
		if !ok {
			// Refusals are fine (that is the fallback path), but they
			// must be justified: either the component was not a
			// singleton or the new row reached a non-smaller component.
			cn := c.comp[target]
			justified := len(c.comps[cn]) != 1
			for _, d := range row {
				if d != target && c.comp[d] >= cn {
					justified = true
				}
			}
			if !justified {
				t.Fatalf("trial %d: Patched refused a safe edit", trial)
			}
			continue
		}
		accepted++
		for v := 0; v < n; v++ {
			if !patched.ClosureOf(v).Equal(cold.ClosureOf(v)) {
				t.Fatalf("trial %d: patched ClosureOf(%d) = %v, cold = %v",
					trial, v, patched.ClosureOf(v), cold.ClosureOf(v))
			}
		}
		// The original condensation must be untouched.
		for v := 0; v < n; v++ {
			if !c.ClosureOf(v).Equal(Condense(adj).ClosureOf(v)) {
				t.Fatalf("trial %d: Patched mutated the original", trial)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no trial exercised the accepting path")
	}
}

// randRelation builds a random dependence relation biased toward the
// DAG-with-occasional-cycles shape real PDGs have.
func randRelation(rng *rand.Rand, n int) [][]int {
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		for d := 0; d < n; d++ {
			if d != v && rng.Intn(4) == 0 {
				adj[v] = append(adj[v], d)
			}
		}
	}
	return adj
}

func randRow(rng *rand.Rand, n int) []int {
	var row []int
	for d := 0; d < n; d++ {
		if rng.Intn(5) == 0 {
			row = append(row, d)
		}
	}
	return row
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
