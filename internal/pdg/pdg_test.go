package pdg

import (
	"reflect"
	"testing"

	"jumpslice/internal/cdg"
	"jumpslice/internal/cfg"
	"jumpslice/internal/dataflow"
	"jumpslice/internal/dom"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

func build(t *testing.T, src string) (*cfg.Graph, *Graph) {
	t.Helper()
	g, err := cfg.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	pdt := dom.PostDominators(g, g.Exit.ID)
	cd := cdg.Build(g, pdt)
	rd := dataflow.Reach(g)
	return g, Build(g, cd, rd)
}

func lines(g *cfg.Graph, ids []int) []int {
	var out []int
	for _, id := range ids {
		out = append(out, g.Nodes[id].Line)
	}
	return out
}

// TestFigure2ProgramDependenceGraph verifies the merge on the paper's
// Figure 1-a: node 12's PDG deps are its data deps {2, 7} plus its
// control dep (entry, line 0).
func TestFigure2ProgramDependenceGraph(t *testing.T) {
	g, p := build(t, paper.Fig1().Source)
	n12 := g.NodesAtLine(12)[0]
	if got := lines(g, p.DataDeps(n12.ID)); !reflect.DeepEqual(got, []int{2, 7}) {
		t.Errorf("data deps of 12 = %v, want [2 7]", got)
	}
	if got := lines(g, p.ControlDeps(n12.ID)); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("control deps of 12 = %v, want [0] (entry)", got)
	}
	if got := lines(g, p.Deps(n12.ID)); !reflect.DeepEqual(got, []int{0, 2, 7}) {
		t.Errorf("merged deps of 12 = %v, want [0 2 7]", got)
	}
}

// TestFigure2BackwardClosure reproduces the shaded nodes of Figure
// 2-d: the transitive closure from node 12 selects lines 2,3,4,5,7
// (plus entry).
func TestFigure2BackwardClosure(t *testing.T) {
	g, p := build(t, paper.Fig1().Source)
	n12 := g.NodesAtLine(12)[0]
	set := p.BackwardClosure([]int{n12.ID})
	wantLines := map[int]bool{0: true, 2: true, 3: true, 4: true, 5: true, 7: true, 12: true}
	set.ForEach(func(id int) {
		if !wantLines[g.Nodes[id].Line] {
			t.Errorf("unexpected node %v in closure", g.Nodes[id])
		}
	})
	for l := range wantLines {
		found := false
		set.ForEach(func(id int) {
			if g.Nodes[id].Line == l {
				found = true
			}
		})
		if !found {
			t.Errorf("closure missing line %d", l)
		}
	}
}

func TestBackwardClosureMultipleSeeds(t *testing.T) {
	g, p := build(t, "a = 1;\nb = 2;\nwrite(a);\nwrite(b);")
	s3 := g.NodesAtLine(3)[0]
	s4 := g.NodesAtLine(4)[0]
	set := p.BackwardClosure([]int{s3.ID, s4.ID})
	for _, l := range []int{1, 2, 3, 4} {
		n := g.NodesAtLine(l)[0]
		if !set.Has(n.ID) {
			t.Errorf("closure missing line %d", l)
		}
	}
}

func TestGrowClosureIncremental(t *testing.T) {
	g, p := build(t, "a = 1;\nb = a;\nc = 5;\nwrite(b);\nwrite(c);")
	w4 := g.NodesAtLine(4)[0]
	set := p.BackwardClosure([]int{w4.ID})
	c3 := g.NodesAtLine(3)[0]
	if set.Has(c3.ID) {
		t.Fatal("c = 5 should not be in the initial closure")
	}
	w5 := g.NodesAtLine(5)[0]
	if !p.GrowClosure(set, w5.ID) {
		t.Error("GrowClosure should report change")
	}
	if !set.Has(c3.ID) {
		t.Error("growing from write(c) should add c = 5")
	}
	if p.GrowClosure(set, w5.ID) {
		t.Error("second GrowClosure should be a no-op")
	}
}

func TestClosureFollowsControlThenData(t *testing.T) {
	// write(y) -> y=1 (data) -> if(x>0) (control) -> read(x) (data).
	g, p := build(t, "read(x);\nif (x > 0)\ny = 1;\nwrite(y);")
	w := g.NodesAtLine(4)[0]
	set := p.BackwardClosure([]int{w.ID})
	for _, l := range []int{1, 2, 3, 4} {
		if !set.Has(g.NodesAtLine(l)[0].ID) {
			t.Errorf("closure missing line %d", l)
		}
	}
}

func TestJumpNodesHaveOnlyControlDeps(t *testing.T) {
	g, p := build(t, paper.Fig5().Source)
	for _, j := range g.Jumps() {
		if len(p.DataDeps(j.ID)) != 0 {
			t.Errorf("jump %v has data deps %v", j, p.DataDeps(j.ID))
		}
	}
}

func TestReturnValueHasDataDeps(t *testing.T) {
	// return e is the one jump with data dependences.
	g, p := build(t, "x = 1;\nreturn x + 1;")
	ret := g.NodesAtLine(2)[0]
	if got := lines(g, p.DataDeps(ret.ID)); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("return deps = %v, want [1]", got)
	}
}
