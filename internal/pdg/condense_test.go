package pdg

import (
	"testing"

	"jumpslice/internal/paper"
)

// TestCondensationMatchesBFSOnFigures cross-checks the memoized
// component closures against the per-node BFS on every paper figure:
// for every node, ClosureOf must equal BackwardClosure, and the
// multi-seed and grow variants must agree too.
func TestCondensationMatchesBFSOnFigures(t *testing.T) {
	for _, f := range paper.All() {
		g, p := build(t, f.Source)
		c := p.Condensation()
		for id := range g.Nodes {
			want := p.BackwardClosure([]int{id})
			if got := c.ClosureOf(id); !got.Equal(want) {
				t.Errorf("%s: ClosureOf(%d) = %v, want %v", f.Name, id, got, want)
			}
			if got := c.BackwardClosure([]int{id}); !got.Equal(want) {
				t.Errorf("%s: condensed BackwardClosure(%d) = %v, want %v", f.Name, id, got, want)
			}
		}
		// Multi-seed union over every consecutive node pair.
		for id := 1; id < len(g.Nodes); id++ {
			seeds := []int{id - 1, id}
			want := p.BackwardClosure(seeds)
			if got := c.BackwardClosure(seeds); !got.Equal(want) {
				t.Errorf("%s: condensed closure of %v differs", f.Name, seeds)
			}
		}
	}
}

// TestCondensationGrowMatchesBFS checks GrowClosure equivalence,
// including the changed report, growing each figure's closure node by
// node both ways.
func TestCondensationGrowMatchesBFS(t *testing.T) {
	for _, f := range paper.All() {
		g, p := build(t, f.Source)
		c := p.Condensation()
		bfs := p.BackwardClosure([]int{g.Entry.ID})
		cond := bfs.Clone()
		for id := range g.Nodes {
			wantChanged := p.GrowClosure(bfs, id)
			gotChanged := c.GrowClosure(cond, id)
			if gotChanged != wantChanged {
				t.Errorf("%s: GrowClosure(%d) changed = %v, want %v", f.Name, id, gotChanged, wantChanged)
			}
			if !cond.Equal(bfs) {
				t.Fatalf("%s: sets diverge after growing %d: %v vs %v", f.Name, id, cond, bfs)
			}
		}
	}
}

// TestCondensationTopologicalOrder asserts the invariant ensure relies
// on: every component a node depends on has a smaller index.
func TestCondensationTopologicalOrder(t *testing.T) {
	for _, f := range paper.All() {
		g, p := build(t, f.Source)
		c := p.Condensation()
		total := 0
		for cid, members := range c.comps {
			total += len(members)
			for _, v := range members {
				if c.comp[v] != cid {
					t.Errorf("%s: comp[%d] = %d, member of %d", f.Name, v, c.comp[v], cid)
				}
			}
			for _, d := range c.succs[cid] {
				if d >= cid {
					t.Errorf("%s: component %d depends on %d (not topological)", f.Name, cid, d)
				}
			}
		}
		if total != len(g.Nodes) {
			t.Errorf("%s: components cover %d nodes, want %d", f.Name, total, len(g.Nodes))
		}
	}
}

// TestCondensationCachedOnGraph asserts repeated Condensation calls
// return the same instance (the cross-criteria cache).
func TestCondensationCachedOnGraph(t *testing.T) {
	_, p := build(t, paper.Fig3().Source)
	if p.Condensation() != p.Condensation() {
		t.Error("Condensation not cached on the Graph")
	}
}

// TestCondensationCycle exercises a dependence cycle (loop-carried
// data dependence plus control self-dependence of a while header):
// all cycle members must share a component and a closure.
func TestCondensationCycle(t *testing.T) {
	g, p := build(t, "read(n);\nwhile (n > 0)\nn = n - 1;\nwrite(n);")
	c := p.Condensation()
	hdr := g.NodesAtLine(2)[0]
	dec := g.NodesAtLine(3)[0]
	if c.Component(hdr.ID) != c.Component(dec.ID) {
		t.Errorf("loop header and body in different components (%d vs %d)",
			c.Component(hdr.ID), c.Component(dec.ID))
	}
	if !c.ClosureOf(hdr.ID).Equal(c.ClosureOf(dec.ID)) {
		t.Error("cycle members have different closures")
	}
}
