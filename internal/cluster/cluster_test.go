package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jumpslice/internal/obs"
)

// addrOf strips the scheme from an httptest server URL: peers are
// addressed host:port, like the daemon's -peers flag.
func addrOf(ts *httptest.Server) string {
	return strings.TrimPrefix(ts.URL, "http://")
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A peer starts down, is marked up by its first successful probe,
// down again when it stops answering, and the transitions are
// counted.
func TestPeersProbeLifecycle(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	p := NewPeers("self:1", []string{"self:1", addrOf(ts)}, ProbeOptions{
		Interval: 10 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
		Recorder: reg,
	})
	if p.Up(addrOf(ts)) {
		t.Fatal("peer must start down")
	}
	if !p.Up("self:1") {
		t.Fatal("self is always up")
	}
	p.Start()
	defer p.Close()

	waitFor(t, "peer up", func() bool { return p.Up(addrOf(ts)) })
	if got := p.UpCount(); got != 1 {
		t.Fatalf("UpCount = %d", got)
	}

	healthy.Store(false)
	waitFor(t, "peer down", func() bool { return !p.Up(addrOf(ts)) })

	healthy.Store(true)
	waitFor(t, "peer back up", func() bool { return p.Up(addrOf(ts)) })

	states := p.States()
	if len(states) != 2 || !states[0].Self || states[1].Addr != addrOf(ts) {
		t.Fatalf("states = %+v", states)
	}
	if v := reg.Counter("cluster.probe_transitions").Value(); v < 3 {
		t.Fatalf("probe_transitions = %d, want >= 3", v)
	}
	if v := reg.Gauge("cluster.peers_up").Value(); v != 1 {
		t.Fatalf("peers_up gauge = %d", v)
	}
}

// A down peer's probes back off: over a window many base intervals
// long, a dead address must be probed far fewer times than an alive
// one would be.
func TestPeersDownBackoff(t *testing.T) {
	var probes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	p := NewPeers("self:1", []string{addrOf(ts)}, ProbeOptions{
		Interval:   5 * time.Millisecond,
		Timeout:    100 * time.Millisecond,
		MaxBackoff: 500 * time.Millisecond,
	})
	p.Start()
	time.Sleep(250 * time.Millisecond)
	p.Close()
	// 250ms / 5ms = 50 sweeps; with exponential backoff the dead peer
	// sees only the first few.
	if n := probes.Load(); n > 12 {
		t.Fatalf("dead peer probed %d times in 50 sweeps; backoff not applied", n)
	}
}

// MarkDown reacts to a data-path failure immediately, without waiting
// for the next sweep.
func TestPeersMarkDown(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	p := NewPeers("self:1", []string{addrOf(ts)}, ProbeOptions{Interval: time.Hour})
	p.Start()
	defer p.Close()
	waitFor(t, "peer up", func() bool { return p.Up(addrOf(ts)) })
	p.MarkDown(addrOf(ts))
	if p.Up(addrOf(ts)) {
		t.Fatal("MarkDown did not take effect")
	}
}

// fillServer is a stub peer: it serves records from a map under
// FillPath and can be told to answer corruptly.
func fillServer(t *testing.T, records map[string][]byte, hits *atomic.Int64, corrupt *atomic.Bool) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != FillPath {
			http.NotFound(w, r)
			return
		}
		if r.Header.Get(HopHeader) != "1" {
			t.Errorf("fill request missing %s header", HopHeader)
		}
		if hits != nil {
			hits.Add(1)
		}
		data, ok := records[r.URL.Query().Get("key")]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		if corrupt != nil && corrupt.Load() {
			data = data[:len(data)/2]
		}
		w.Write(data)
	}))
}

func TestFillerHitMissAndCandidateOrder(t *testing.T) {
	recA := map[string][]byte{"k1": []byte(`{"v":"from-a"}`)}
	var hitsA, hitsB atomic.Int64
	a := fillServer(t, recA, &hitsA, nil)
	defer a.Close()
	b := fillServer(t, nil, &hitsB, nil)
	defer b.Close()

	reg := obs.NewRegistry()
	f := NewFiller(FillOptions{Recorder: reg})

	// B (empty) is tried first and misses; A serves.
	res, err := f.Fill(context.Background(), "k1", []string{addrOf(b), addrOf(a)}, nil)
	if err != nil || res == nil {
		t.Fatalf("fill failed: %v", err)
	}
	if res.Peer != addrOf(a) || string(res.Data) != `{"v":"from-a"}` {
		t.Fatalf("got %q from %s", res.Data, res.Peer)
	}
	if hitsB.Load() != 1 || hitsA.Load() != 1 {
		t.Fatalf("candidate order not respected: A=%d B=%d", hitsA.Load(), hitsB.Load())
	}
	if reg.Counter("cluster.fill_hits").Value() != 1 || reg.Counter("cluster.fill_misses").Value() != 1 {
		t.Fatal("fill hit/miss accounting wrong")
	}

	// A key nobody holds exhausts the walk.
	if _, err := f.Fill(context.Background(), "nope", []string{addrOf(a), addrOf(b)}, nil); !errors.Is(err, ErrNotFilled) {
		t.Fatalf("want ErrNotFilled, got %v", err)
	}
	if _, err := f.Fill(context.Background(), "k1", nil, nil); !errors.Is(err, ErrNotFilled) {
		t.Fatalf("no candidates: want ErrNotFilled, got %v", err)
	}
}

// A record failing validation counts as corrupt and the walk moves to
// the next candidate; a healthy replica rescues the fill.
func TestFillerCorruptFallsThrough(t *testing.T) {
	rec := map[string][]byte{"k1": []byte(`{"v":"good"}`)}
	var corruptA atomic.Bool
	corruptA.Store(true)
	a := fillServer(t, rec, nil, &corruptA)
	defer a.Close()
	b := fillServer(t, rec, nil, nil)
	defer b.Close()

	reg := obs.NewRegistry()
	f := NewFiller(FillOptions{
		Recorder: reg,
		Validate: func(data []byte) error {
			if string(data) != `{"v":"good"}` {
				return errors.New("bad record")
			}
			return nil
		},
	})
	res, err := f.Fill(context.Background(), "k1", []string{addrOf(a), addrOf(b)}, nil)
	if err != nil {
		t.Fatalf("fill failed: %v", err)
	}
	if res.Peer != addrOf(b) {
		t.Fatalf("served by %s, want the healthy replica", res.Peer)
	}
	if reg.Counter("cluster.fill_corrupt").Value() != 1 {
		t.Fatal("corrupt record not counted")
	}
}

// A transport failure marks the peer down in the attached peer table
// and continues the walk.
func TestFillerTransportErrorMarksDown(t *testing.T) {
	dead := "127.0.0.1:1" // nothing listens here
	rec := map[string][]byte{"k1": []byte(`ok`)}
	b := fillServer(t, rec, nil, nil)
	defer b.Close()

	reg := obs.NewRegistry()
	peers := NewPeers("self:1", []string{dead, addrOf(b)}, ProbeOptions{Interval: time.Hour})
	f := NewFiller(FillOptions{Recorder: reg, Peers: peers, Timeout: 300 * time.Millisecond})
	res, err := f.Fill(context.Background(), "k1", []string{dead, addrOf(b)}, nil)
	if err != nil || res.Peer != addrOf(b) {
		t.Fatalf("fill = %v, %v", res, err)
	}
	if reg.Counter("cluster.fill_errors").Value() != 1 {
		t.Fatal("transport error not counted")
	}
	if peers.Up(dead) {
		t.Fatal("dead candidate not marked down")
	}
}

// Concurrent fills of one key coalesce onto a single candidate walk.
func TestFillerSingleflight(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-release
		fmt.Fprint(w, "rec")
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	f := NewFiller(FillOptions{Recorder: reg, Timeout: 5 * time.Second})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := f.Fill(context.Background(), "hot", []string{addrOf(ts)}, nil)
			if err == nil && string(res.Data) != "rec" {
				err = fmt.Errorf("bad data %q", res.Data)
			}
			errs[i] = err
		}(i)
	}
	waitFor(t, "leader to reach the peer", func() bool { return hits.Load() == 1 })
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if hits.Load() != 1 {
		t.Fatalf("peer hit %d times for one key", hits.Load())
	}
	if v := reg.Counter("cluster.fill_coalesced").Value(); v != n-1 {
		t.Fatalf("fill_coalesced = %d, want %d", v, n-1)
	}
}

// A waiter whose context dies detaches without killing the shared
// walk; the surviving waiters still get the record.
func TestFillerWaiterCancellation(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "rec")
	}))
	defer ts.Close()

	f := NewFiller(FillOptions{Timeout: 5 * time.Second})
	done := make(chan error, 1)
	go func() {
		res, err := f.Fill(context.Background(), "k", []string{addrOf(ts)}, nil)
		if err == nil && string(res.Data) != "rec" {
			err = fmt.Errorf("bad data %q", res.Data)
		}
		done <- err
	}()
	// Give the leader time to start, then join and cancel.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Fill(ctx, "k", []string{addrOf(ts)}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
}
