package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"jumpslice/internal/obs"
)

// ErrNotFilled reports that no candidate peer could serve the record:
// every candidate missed, errored, or served a corrupt record. The
// caller computes locally — a failed fill is a latency optimization
// that didn't pay off, never a request failure.
var ErrNotFilled = errors.New("cluster: no peer filled the key")

// FillPath is the internal endpoint a fill fetches. The handler
// behind it serves from cache state only — it never computes, never
// proxies, and never fills in turn, so a fill is one hop by
// construction.
const FillPath = "/internal/fill"

// HopHeader marks a fill request on the wire. The serving side uses
// it only for accounting; the loop guard is structural (see FillPath).
const HopHeader = "X-Sliced-Fill"

// FillOptions configures a Filler.
type FillOptions struct {
	// Timeout is the per-hop deadline for one candidate fetch (<= 0
	// means 500ms). A fill that cannot beat a local recompute by a
	// wide margin is not worth waiting for.
	Timeout time.Duration
	// MaxBytes bounds one fill response body (<= 0 means 16 MiB).
	MaxBytes int64
	// Validate, when non-nil, vets a fetched record before it is
	// returned; an error counts as a corrupt record
	// (cluster.fill_corrupt) and the next candidate is tried.
	Validate func([]byte) error
	// Peers, when non-nil, receives MarkDown for candidates whose
	// fetch failed at the transport level.
	Peers *Peers
	// Client overrides the HTTP client (tests); nil builds one.
	Client *http.Client
	// Recorder receives the cluster.fill_* counters.
	Recorder obs.Recorder
}

// FillResult is a successful peer fill: the serialized record and the
// peer that served it.
type FillResult struct {
	Data []byte
	Peer string
}

// fillFlight is one in-progress candidate walk shared by every
// concurrent Fill of its key.
type fillFlight struct {
	done chan struct{}
	res  *FillResult
	err  error
}

// Filler fetches serialized result records from peer caches with
// singleflight suppression: N concurrent local misses of one key cost
// one candidate walk, so a cold-miss storm on a hot key does not
// multiply into a network storm. All methods are safe for concurrent
// use.
type Filler struct {
	opts   FillOptions
	client *http.Client

	mu       sync.Mutex
	inflight map[string]*fillFlight

	fills, hits, misses *obs.Counter
	errsCtr, corrupt    *obs.Counter
	coalesced           *obs.Counter
}

// NewFiller builds a Filler from opts (the zero FillOptions is
// usable).
func NewFiller(opts FillOptions) *Filler {
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 16 << 20
	}
	f := &Filler{
		opts:     opts,
		client:   opts.Client,
		inflight: map[string]*fillFlight{},
	}
	if f.client == nil {
		f.client = &http.Client{Timeout: opts.Timeout}
	}
	rec := obs.OrNop(opts.Recorder)
	f.fills = rec.Counter("cluster.fills")
	f.hits = rec.Counter("cluster.fill_hits")
	f.misses = rec.Counter("cluster.fill_misses")
	f.errsCtr = rec.Counter("cluster.fill_errors")
	f.corrupt = rec.Counter("cluster.fill_corrupt")
	f.coalesced = rec.Counter("cluster.fill_coalesced")
	return f
}

// Fill tries each candidate in order until one serves a valid record,
// returning ErrNotFilled when none does. Concurrent calls for the
// same key coalesce onto one walk; hdr (may be nil) is copied onto
// the outgoing fetches — the daemon uses it to propagate its
// test-only failpoint header. ctx bounds only this caller's wait; the
// shared walk itself is bounded by the per-hop deadline times the
// candidate count.
func (f *Filler) Fill(ctx context.Context, key string, candidates []string, hdr http.Header) (*FillResult, error) {
	if len(candidates) == 0 {
		return nil, ErrNotFilled
	}
	f.mu.Lock()
	if fl := f.inflight[key]; fl != nil {
		f.mu.Unlock()
		f.coalesced.Add(1)
		return f.wait(ctx, fl)
	}
	fl := &fillFlight{done: make(chan struct{})}
	f.inflight[key] = fl
	f.mu.Unlock()

	f.fills.Add(1)
	go func() {
		fl.res, fl.err = f.walk(key, candidates, hdr)
		f.mu.Lock()
		delete(f.inflight, key)
		f.mu.Unlock()
		close(fl.done)
	}()
	return f.wait(ctx, fl)
}

// wait blocks for the flight or the caller's context, whichever is
// first; a ready result always wins the race.
func (f *Filler) wait(ctx context.Context, fl *fillFlight) (*FillResult, error) {
	var cancelc <-chan struct{}
	if ctx != nil {
		cancelc = ctx.Done()
	}
	select {
	case <-fl.done:
		return fl.res, fl.err
	case <-cancelc:
		select {
		case <-fl.done:
			return fl.res, fl.err
		default:
			return nil, ctx.Err()
		}
	}
}

// walk is the flight leader's candidate loop. It runs detached from
// any one caller's context — the walk's result is shared — and each
// hop gets its own deadline.
func (f *Filler) walk(key string, candidates []string, hdr http.Header) (*FillResult, error) {
	for _, peer := range candidates {
		data, err := f.fetch(peer, key, hdr)
		switch {
		case err == nil:
			if f.opts.Validate != nil {
				if verr := f.opts.Validate(data); verr != nil {
					f.corrupt.Add(1)
					continue
				}
			}
			f.hits.Add(1)
			return &FillResult{Data: data, Peer: peer}, nil
		case errors.Is(err, errFillMiss):
			f.misses.Add(1)
		default:
			f.errsCtr.Add(1)
			f.opts.Peers.markDownIfKnown(peer)
		}
	}
	return nil, ErrNotFilled
}

// errFillMiss distinguishes "the peer answered: not cached" from a
// transport failure — a miss says nothing about the peer's health.
var errFillMiss = errors.New("cluster: peer does not hold the key")

// fetch performs one GET /internal/fill?key= hop.
func (f *Filler) fetch(peer, key string, hdr http.Header) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.Timeout)
	defer cancel()
	u := "http://" + peer + FillPath + "?key=" + url.QueryEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HopHeader, "1")
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(io.LimitReader(resp.Body, f.opts.MaxBytes))
	case http.StatusNotFound:
		return nil, errFillMiss
	default:
		return nil, fmt.Errorf("cluster: fill from %s: status %d", peer, resp.StatusCode)
	}
}

// markDownIfKnown is Peers.MarkDown behind a nil guard, so a Filler
// without a peer table (tests) stays valid.
func (p *Peers) markDownIfKnown(addr string) {
	if p != nil {
		p.MarkDown(addr)
	}
}
