package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys returns n deterministic pseudo-random keys (the cluster's
// real keys are SHA-256 digests; random bytes model them).
func testKeys(n int) [][]byte {
	rng := rand.New(rand.NewSource(42))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 32)
		rng.Read(k)
		keys[i] = k
	}
	return keys
}

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return nodes
}

// Ownership must be a pure function of the configured node set:
// shuffled input order, duplicate entries, and a rebuilt ring all
// agree on every key.
func TestRingDeterminism(t *testing.T) {
	nodes := testNodes(5)
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[0], nodes[2], nodes[1], nodes[3]}
	a := NewRing(nodes, 128)
	b := NewRing(shuffled, 128)
	c := NewRing(nodes, 128)
	for _, k := range testKeys(5000) {
		oa, ob, oc := a.Owner(k), b.Owner(k), c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("owner disagreement for %x: %q vs %q vs %q", k[:4], oa, ob, oc)
		}
	}
	if got := len(b.Nodes()); got != 5 {
		t.Fatalf("duplicates not collapsed: %d nodes", got)
	}
}

// A single node joining or leaving must move at most 2/N of the keys:
// consistent hashing's whole point is that membership changes touch
// only the keys adjacent to the changed node's points, roughly 1/N in
// expectation, never a full reshuffle.
func TestRingKeyMovementOnMembershipChange(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{3, 5, 8} {
		nodes := testNodes(n)
		before := NewRing(nodes, 128)

		joined := NewRing(append(append([]string{}, nodes...), "10.0.1.99:8080"), 128)
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != joined.Owner(k) {
				moved++
			}
		}
		if limit := 2 * len(keys) / n; moved > limit {
			t.Errorf("join at n=%d moved %d/%d keys (limit %d)", n, moved, len(keys), limit)
		}

		left := NewRing(nodes[:n-1], 128)
		moved = 0
		for _, k := range keys {
			if before.Owner(k) != left.Owner(k) {
				moved++
			}
		}
		if limit := 2 * len(keys) / n; moved > limit {
			t.Errorf("leave at n=%d moved %d/%d keys (limit %d)", n, moved, len(keys), limit)
		}
		// Every key that moved on a leave must have been owned by the
		// departed node — survivors never trade keys among themselves.
		gone := nodes[n-1]
		for _, k := range keys {
			if b, l := before.Owner(k), left.Owner(k); b != l && b != gone {
				t.Fatalf("leave reshuffled a survivor's key: %q -> %q (departed %q)", b, l, gone)
			}
		}
	}
}

// At 128 vnodes the load split across realistic fleet sizes stays
// within 15% of even. (Beyond ~6 nodes the per-node share variance of
// 128 points calls for a higher -vnodes; the runbook says so.)
func TestRingBalanceWithin15Percent(t *testing.T) {
	keys := testKeys(100000)
	for _, n := range []int{2, 3, 5, 6} {
		r := NewRing(testNodes(n), 128)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		mean := float64(len(keys)) / float64(n)
		for node, c := range counts {
			dev := float64(c)/mean - 1
			if dev < 0 {
				dev = -dev
			}
			if dev > 0.15 {
				t.Errorf("n=%d: node %s holds %.1f%% of mean share (>15%% off)", n, node, 100*float64(c)/mean)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d nodes own keys", n, len(counts))
		}
	}
}

// Candidates walks the ring in owner order: the first candidate is
// the owner, every node appears at most once, and excluding the owner
// yields the fill preference order (the previous/next owners, i.e.
// the nodes that hold the key warm across a membership change).
func TestRingCandidates(t *testing.T) {
	nodes := testNodes(4)
	r := NewRing(nodes, 128)
	for _, k := range testKeys(200) {
		owner := r.Owner(k)
		all := r.Candidates(k, 4, "")
		if len(all) != 4 || all[0] != owner {
			t.Fatalf("candidates %v should start with owner %q", all, owner)
		}
		seen := map[string]bool{}
		for _, c := range all {
			if seen[c] {
				t.Fatalf("duplicate candidate %q in %v", c, all)
			}
			seen[c] = true
		}
		rest := r.Candidates(k, 3, owner)
		if len(rest) != 3 {
			t.Fatalf("excluding owner gave %v", rest)
		}
		for _, c := range rest {
			if c == owner {
				t.Fatalf("owner %q not excluded from %v", owner, rest)
			}
		}
		// The exclusion preserves relative order.
		for i, c := range rest {
			if all[i+1] != c {
				t.Fatalf("candidate order changed under exclusion: %v vs %v", all, rest)
			}
		}
	}
}

// A key that moved to a new owner after a join keeps its old owner as
// a fill candidate: the new owner asking Candidates(key, n, self)
// must reach the node that computed the key before the change. This
// is the property the peer-fill path relies on.
func TestRingFillCandidateCoversOldOwner(t *testing.T) {
	keys := testKeys(20000)
	nodes := testNodes(3)
	before := NewRing(nodes, 128)
	after := NewRing(append(append([]string{}, nodes...), "10.0.1.99:8080"), 128)
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue // did not move
		}
		found := false
		for _, c := range after.Candidates(k, 3, oa) {
			if c == ob {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("moved key: old owner %q not in new owner's candidates %v",
				ob, after.Candidates(k, 3, oa))
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 128)
	if got := empty.Owner([]byte("k")); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := empty.Candidates([]byte("k"), 3, ""); got != nil {
		t.Fatalf("empty ring candidates = %v", got)
	}
	one := NewRing([]string{"a:1"}, 0)
	if one.Vnodes() != DefaultVnodes {
		t.Fatalf("vnodes default = %d", one.Vnodes())
	}
	for _, k := range testKeys(50) {
		if one.Owner(k) != "a:1" {
			t.Fatal("single node must own everything")
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(testNodes(5), 128)
	keys := testKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i&1023])
	}
}
