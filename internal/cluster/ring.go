// Package cluster turns a set of independent sliced daemons into a
// shardable fleet. It is stdlib-only and owns the three mechanisms a
// static-membership cluster needs:
//
//   - a consistent-hash ring (Ring) with virtual nodes, mapping the
//     SHA-256 content address of a program to the node that owns its
//     analyses, so every node agrees on placement without any
//     coordination traffic;
//   - a peer table (Peers) with a lightweight HTTP health probe per
//     peer, marking nodes up and down with exponential backoff so a
//     dead owner degrades routing to local serving instead of
//     erroring;
//   - a peer-fill client (Filler) that fetches a serialized result
//     record from another node's cache on a local miss, with
//     singleflight suppression (concurrent misses of one key cost one
//     network fetch), a per-hop deadline, and a protocol that cannot
//     loop: a fill request is served from cache state only and never
//     triggers another hop.
//
// Membership is static — the fleet is configured with -peers on every
// node — and routing is deterministic over the full configured list,
// not over the live subset: a probe flap must not reshuffle ownership
// (which would stampede the caches), so health only gates whether a
// hop is attempted, never where a key lives.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per physical node. 128
// points per node keeps the expected load imbalance within a few
// percent of even while the ring stays small enough to rebuild
// instantly on configuration change.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over a static node list.
// Every node in the fleet builds the same ring from the same -peers
// list, so ownership is agreed upon without coordination. All methods
// are safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // deduplicated, sorted
	vnodes int
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds a ring with vnodes virtual points per node (<= 0
// means DefaultVnodes). Duplicate node names collapse; the input
// order does not matter — two rings over the same set are identical.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		nodes:  uniq,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for i, node := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: pointHash(node, v),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Ties (astronomically rare with a 64-bit space) break by node
		// index so the ring stays deterministic regardless of input
		// order.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// pointHash places one virtual node on the ring: the first 8 bytes of
// SHA-256 over "node\x00vnode". SHA-256 keeps the point distribution
// uniform enough that 128 vnodes balance real fleets within ~15%.
func pointHash(node string, vnode int) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(vnode)))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash maps an arbitrary key onto the ring's 64-bit space. Keys
// are hashed again (even though the cluster's keys are already
// SHA-256 digests) so the ring makes no assumptions about key
// distribution.
func keyHash(key []byte) uint64 {
	sum := sha256.Sum256(key)
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's node list (sorted, deduplicated). Callers
// must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Vnodes returns the virtual-node count per node.
func (r *Ring) Vnodes() int { return r.vnodes }

// Owner returns the node owning key: the first virtual point at or
// after the key's hash, wrapping at the top of the ring. An empty
// ring owns nothing ("").
func (r *Ring) Owner(key []byte) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.search(keyHash(key))].node]
}

// search finds the index of the first point with hash >= h, wrapping
// to 0 past the end.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Candidates returns up to n distinct nodes in ring order starting at
// key's owner, skipping exclude. This is the peer-fill preference
// order: the nodes that owned (or would own) the key under nearby
// ring configurations, i.e. the nodes most likely to hold it warm
// after a membership change.
func (r *Ring) Candidates(key []byte, n int, exclude string) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n+1)
	start := r.search(keyHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if node := r.nodes[p.node]; node != exclude {
			out = append(out, node)
		}
	}
	return out
}
