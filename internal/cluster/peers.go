package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"jumpslice/internal/obs"
)

// ProbeOptions configures the peer health prober.
type ProbeOptions struct {
	// Interval is the base probe cadence per peer (<= 0 means 1s).
	Interval time.Duration
	// Timeout bounds one probe request (<= 0 means 500ms).
	Timeout time.Duration
	// MaxBackoff caps the probe backoff of a down peer (<= 0 means
	// 16× Interval).
	MaxBackoff time.Duration
	// Path is the health endpoint probed on each peer (defaults to
	// /healthz, the daemon's liveness probe).
	Path string
	// Client overrides the HTTP client (tests); nil builds one with
	// the probe timeout.
	Client *http.Client
	// Recorder receives cluster.peers / cluster.peers_up gauges and
	// the cluster.probe_transitions counter.
	Recorder obs.Recorder
}

// PeerState is one peer's health as /debug/cluster reports it.
type PeerState struct {
	Addr     string `json:"addr"`
	Up       bool   `json:"up"`
	Self     bool   `json:"self,omitempty"`
	Failures int    `json:"failures,omitempty"`
	// LastProbeNS is the wall-clock time of the last completed probe
	// (0 before the first one).
	LastProbeNS int64 `json:"last_probe_ns,omitempty"`
}

// peer is one remote node's health record.
type peer struct {
	addr string

	mu        sync.Mutex
	up        bool
	failures  int
	lastProbe time.Time
	nextProbe time.Time // down peers back off; zero means "probe now"
}

// Peers tracks the health of every other node in the fleet. A peer
// starts down and is marked up by its first successful probe, so a
// node that boots before its fleet serves locally until the fleet
// arrives. All methods are safe for concurrent use.
type Peers struct {
	self   string
	peers  map[string]*peer
	order  []string // sorted addrs, for deterministic snapshots
	opts   ProbeOptions
	client *http.Client

	stop chan struct{}
	wg   sync.WaitGroup

	peersUp     *obs.Gauge
	transitions *obs.Counter
}

// NewPeers builds the health table for the fleet: addrs is the full
// static -peers list (self included; it is skipped — a node is always
// up to itself).
func NewPeers(self string, addrs []string, opts ProbeOptions) *Peers {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 16 * opts.Interval
	}
	if opts.Path == "" {
		opts.Path = "/healthz"
	}
	p := &Peers{
		self:   self,
		peers:  map[string]*peer{},
		opts:   opts,
		client: opts.Client,
		stop:   make(chan struct{}),
	}
	if p.client == nil {
		p.client = &http.Client{Timeout: opts.Timeout}
	}
	for _, a := range addrs {
		if a == "" || a == self || p.peers[a] != nil {
			continue
		}
		p.peers[a] = &peer{addr: a}
		p.order = append(p.order, a)
	}
	sort.Strings(p.order)
	rec := obs.OrNop(opts.Recorder)
	rec.Gauge("cluster.peers").Set(int64(len(p.order)))
	p.peersUp = rec.Gauge("cluster.peers_up")
	p.transitions = rec.Counter("cluster.probe_transitions")
	return p
}

// Start launches the probe loop. Stop it with Close.
func (p *Peers) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		// First sweep immediately: a booting node should discover its
		// live fleet within one probe timeout, not one interval.
		p.sweep()
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.sweep()
			}
		}
	}()
}

// Close stops the probe loop and waits for it.
func (p *Peers) Close() {
	close(p.stop)
	p.wg.Wait()
}

// sweep probes every peer that is due. Up peers are probed each
// sweep; down peers back off exponentially (2^failures × Interval,
// capped) so a long-dead node costs a trickle, not a timeout per
// sweep.
func (p *Peers) sweep() {
	now := time.Now()
	due := make([]*peer, 0, len(p.order))
	for _, a := range p.order {
		pr := p.peers[a]
		pr.mu.Lock()
		if pr.up || !now.Before(pr.nextProbe) {
			due = append(due, pr)
		}
		pr.mu.Unlock()
	}
	// Probes run concurrently: one stuck peer must not delay marking
	// the rest of the fleet up.
	var wg sync.WaitGroup
	for _, pr := range due {
		wg.Add(1)
		go func(pr *peer) {
			defer wg.Done()
			p.probe(pr)
		}(pr)
	}
	wg.Wait()
}

// probe performs one health check and applies the result.
func (p *Peers) probe(pr *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), p.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+pr.addr+p.opts.Path, nil)
	ok := false
	if err == nil {
		resp, rerr := p.client.Do(req)
		if rerr == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	p.report(pr, ok)
}

// report applies one probe outcome (also used by MarkDown when a
// routing hop fails — the data path is a probe too).
func (p *Peers) report(pr *peer, ok bool) {
	now := time.Now()
	pr.mu.Lock()
	was := pr.up
	pr.lastProbe = now
	if ok {
		pr.up = true
		pr.failures = 0
		pr.nextProbe = time.Time{}
	} else {
		pr.up = false
		if pr.failures < 30 {
			pr.failures++
		}
		backoff := p.opts.Interval << uint(pr.failures-1)
		if backoff > p.opts.MaxBackoff || backoff <= 0 {
			backoff = p.opts.MaxBackoff
		}
		pr.nextProbe = now.Add(backoff)
	}
	changed := was != pr.up
	up := pr.up
	pr.mu.Unlock()
	if changed {
		p.transitions.Add(1)
		if up {
			p.peersUp.Add(1)
		} else {
			p.peersUp.Add(-1)
		}
	}
}

// Up reports whether addr is a known peer currently marked up. The
// node's own address is always up.
func (p *Peers) Up(addr string) bool {
	if addr == p.self {
		return true
	}
	pr := p.peers[addr]
	if pr == nil {
		return false
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.up
}

// MarkDown records a data-path failure against addr (a failed proxy
// or fill), so routing reacts faster than the next probe sweep.
func (p *Peers) MarkDown(addr string) {
	if pr := p.peers[addr]; pr != nil {
		p.report(pr, false)
	}
}

// UpCount returns how many peers are currently up (self excluded).
func (p *Peers) UpCount() int {
	n := 0
	for _, a := range p.order {
		if p.Up(a) {
			n++
		}
	}
	return n
}

// States snapshots every peer's health, self first, then peers in
// address order.
func (p *Peers) States() []PeerState {
	out := make([]PeerState, 0, len(p.order)+1)
	out = append(out, PeerState{Addr: p.self, Up: true, Self: true})
	for _, a := range p.order {
		pr := p.peers[a]
		pr.mu.Lock()
		out = append(out, PeerState{
			Addr:        a,
			Up:          pr.up,
			Failures:    pr.failures,
			LastProbeNS: pr.lastProbe.UnixNano(),
		})
		pr.mu.Unlock()
	}
	return out
}
