package cfg_test

import (
	"fmt"
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/incremental"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
	"jumpslice/internal/progen"
)

// requireSameGraph asserts the rebound graph is indistinguishable
// from a fresh Build of the same program: shape, lines, statement
// mapping, label map and jump targets.
func requireSameGraph(t *testing.T, name string, p *lang.Program, got, want *cfg.Graph) {
	t.Helper()
	if !incremental.SameShapeCFG(got, want) {
		t.Fatalf("%s: rebound graph shape differs from fresh build", name)
	}
	for i, wn := range want.Nodes {
		gn := got.Nodes[i]
		if gn.Line != wn.Line {
			t.Fatalf("%s: node %d line %d, want %d", name, i, gn.Line, wn.Line)
		}
		if (gn.Target == nil) != (wn.Target == nil) {
			t.Fatalf("%s: node %d target nil-ness differs", name, i)
		}
		if gn.Target != nil && gn.Target.ID != wn.Target.ID {
			t.Fatalf("%s: node %d target %d, want %d", name, i, gn.Target.ID, wn.Target.ID)
		}
		if wn.Stmt != nil {
			if got.NodeFor(wn.Stmt) == nil {
				// Statements differ between parses; compare via mapping below.
				t.Fatalf("%s: node %d statement not mapped", name, i)
			}
		}
	}
	for label, wn := range want.LabelNode {
		gn, ok := got.LabelNode[label]
		if !ok || gn.ID != wn.ID {
			t.Fatalf("%s: label %q maps to %v, want node %d", name, label, gn, wn.ID)
		}
	}
	for _, s := range lang.Statements(p) {
		gn, wn := got.NodeFor(s), want.NodeFor(s)
		if gn == nil || wn == nil || gn.ID != wn.ID {
			t.Fatalf("%s: statement %q maps to %v, want %v", name, lang.StmtString(s), gn, wn)
		}
	}
}

// TestRebindMatchesBuild rebinds every paper figure and a spread of
// generated programs onto a fresh parse of their own source: the
// result must be byte-for-byte the graph Build produces.
func TestRebindMatchesBuild(t *testing.T) {
	var cases []struct {
		name string
		src  string
	}
	for _, f := range paper.All() {
		cases = append(cases, struct{ name, src string }{f.Name, f.Source})
	}
	for seed := int64(0); seed < 20; seed++ {
		p := progen.Structured(progen.Config{Seed: seed, Stmts: 60})
		cases = append(cases, struct{ name, src string }{
			fmt.Sprintf("structured-%d", seed), lang.Format(p, lang.PrintOptions{})})
		u := progen.Unstructured(progen.Config{Seed: seed, Stmts: 60})
		cases = append(cases, struct{ name, src string }{
			fmt.Sprintf("unstructured-%d", seed), lang.Format(u, lang.PrintOptions{})})
	}
	for _, c := range cases {
		prev, err := cfg.Build(lang.MustParse(c.src))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		p2 := lang.MustParse(c.src)
		got, ok := cfg.Rebind(prev, p2)
		if !ok {
			t.Fatalf("%s: Rebind refused a same-shape program", c.name)
		}
		want, err := cfg.Build(p2)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		requireSameGraph(t, c.name, p2, got, want)
	}
}

// TestRebindRefusesShapeChanges feeds Rebind programs whose shape
// differs from the donor graph; every one must be refused.
func TestRebindRefusesShapeChanges(t *testing.T) {
	const src = `read(x);
L1: if (x > 0) {
    x = x - 1;
    goto L1;
}
write(x);
`
	prev, err := cfg.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]string{
		"extra statement":  "read(x);\nL1: if (x > 0) {\n    x = x - 1;\n    goto L1;\n}\nwrite(x);\nwrite(x);\n",
		"fewer statements": "read(x);\nL1: if (x > 0) {\n    x = x - 1;\n    goto L1;\n}\n",
		"kind change":      "read(x);\nL1: if (x > 0) {\n    read(x);\n    goto L1;\n}\nwrite(x);\n",
		"label rename":     "read(x);\nL2: if (x > 0) {\n    x = x - 1;\n    goto L2;\n}\nwrite(x);\n",
		"label moved":      "read(x);\nif (x > 0) {\n    L1: x = x - 1;\n    goto L1;\n}\nwrite(x);\n",
	} {
		if _, ok := cfg.Rebind(prev, lang.MustParse(bad)); ok {
			t.Errorf("%s: Rebind accepted a shape change", name)
		}
	}
}
