package cfg

import "jumpslice/internal/lang"

// Rebind builds the flowgraph of p by rebinding prev's node table
// onto p's statements instead of re-running the builder. It is the
// incremental engine's fast path for a same-shape edit: edges, jump
// targets and label attachments are structural, so when p has exactly
// the statement shape of prev's program, the graphs are identical
// except for the Stmt pointers and line numbers each node carries.
//
// Rebind re-verifies the shape claim as it walks: every node position
// must get a statement of the matching kind, label wrappers must
// attach the same labels to the same node IDs as before, and every
// goto must resolve to its previous target. Any inconsistency returns
// ok=false and the caller falls back to a full Build — like the AST
// differ, Rebind degrades to a slower run, never to a wrong graph.
// (Case values and branch arity are the differ's responsibility: a
// changed case value relabels switch edges without moving any node,
// which the differ rejects as a shape mismatch before Rebind runs.)
//
// The edge slices (Out, In) and label lists are shared with prev —
// they are immutable once a graph is built — and are capacity-clipped
// so a later AddEdge on either graph cannot alias the other. The
// statement→node index is left for NodeFor to build lazily; most
// rebound graphs are only ever queried by node ID.
func Rebind(prev *Graph, p *lang.Program) (*Graph, bool) {
	n := len(prev.Nodes)
	g := &Graph{
		Prog:      p,
		Nodes:     make([]*Node, n),
		LabelNode: make(map[string]*Node, len(prev.LabelNode)),
		arena:     make([]Node, n),
	}
	for i, pn := range prev.Nodes {
		nn := &g.arena[i]
		*nn = *pn
		nn.Stmt = nil
		nn.Out = pn.Out[:len(pn.Out):len(pn.Out)]
		nn.In = pn.In[:len(pn.In):len(pn.In)]
		nn.Labels = pn.Labels[:len(pn.Labels):len(pn.Labels)]
		g.Nodes[i] = nn
	}
	for i, pn := range prev.Nodes {
		if pn.Target != nil {
			g.Nodes[i].Target = g.Nodes[pn.Target.ID]
		}
	}
	g.Entry = g.Nodes[prev.Entry.ID]
	g.Exit = g.Nodes[prev.Exit.ID]

	r := &rebinder{g: g, next: 2} // Build creates Entry (0) and Exit (1) first
	for _, s := range p.Body {
		if _, ok := r.walk(s); !ok {
			return nil, false
		}
	}
	if r.next != n {
		return nil, false // fewer statements than node positions
	}
	// Every label of the previous graph must have been re-attached
	// (labelsSeen counts wrapper visits; label names were checked
	// against each node's list as they were seen).
	if r.labelsSeen != len(prev.LabelNode) {
		return nil, false
	}
	// Belt and braces for jumps: each goto must resolve through the
	// rebuilt label map to the node its edge already points at.
	for _, gt := range r.gotos {
		target, ok := g.LabelNode[gt.stmt.Label]
		if !ok || gt.node.Target == nil || target.ID != gt.node.Target.ID {
			return nil, false
		}
	}
	return g, true
}

// rebinder pairs p's statements with prev's node positions in the
// exact order builder.createNodes allocates them.
type rebinder struct {
	g          *Graph
	next       int
	labelsSeen int
	gotos      []pendingGoto
	// labelAt counts labels attached per node so wrapper order can be
	// checked against the node's (shared) label list.
	labelAt map[*Node]int
}

// take claims the next node position for s, verifying the kind.
func (r *rebinder) take(kind Kind, s lang.Stmt) (*Node, bool) {
	if r.next >= len(r.g.Nodes) {
		return nil, false
	}
	n := r.g.Nodes[r.next]
	if n.Kind != kind {
		return nil, false
	}
	r.next++
	n.Stmt = s
	n.Line = s.Pos().Line
	return n, true
}

// walk rebinds s's subtree and returns s's entry node — the node
// control reaches when entering s — which is what a label wrapper
// attaches to.
func (r *rebinder) walk(s lang.Stmt) (*Node, bool) {
	switch s := s.(type) {
	case nil:
		return nil, true
	case *lang.AssignStmt:
		return r.take(KindAssign, s)
	case *lang.ReadStmt:
		return r.take(KindRead, s)
	case *lang.WriteStmt:
		return r.take(KindWrite, s)
	case *lang.GotoStmt:
		n, ok := r.take(KindGoto, s)
		if ok {
			r.gotos = append(r.gotos, pendingGoto{node: n, stmt: s})
		}
		return n, ok
	case *lang.BreakStmt:
		return r.take(KindBreak, s)
	case *lang.ContinueStmt:
		return r.take(KindContinue, s)
	case *lang.ReturnStmt:
		return r.take(KindReturn, s)
	case *lang.EmptyStmt:
		return r.take(KindSkip, s)
	case *lang.IfStmt:
		n, ok := r.take(KindPredicate, s)
		if !ok {
			return nil, false
		}
		if _, ok := r.walk(s.Then); !ok {
			return nil, false
		}
		if _, ok := r.walk(s.Else); !ok {
			return nil, false
		}
		return n, true
	case *lang.WhileStmt:
		n, ok := r.take(KindPredicate, s)
		if !ok {
			return nil, false
		}
		if _, ok := r.walk(s.Body); !ok {
			return nil, false
		}
		return n, true
	case *lang.SwitchStmt:
		n, ok := r.take(KindSwitch, s)
		if !ok {
			return nil, false
		}
		for _, c := range s.Cases {
			for _, st := range c.Body {
				if _, ok := r.walk(st); !ok {
					return nil, false
				}
			}
		}
		return n, true
	case *lang.BlockStmt:
		if len(s.List) == 0 {
			return r.take(KindSkip, s)
		}
		var entry *Node
		for i, st := range s.List {
			n, ok := r.walk(st)
			if !ok {
				return nil, false
			}
			if i == 0 {
				entry = n
			}
		}
		return entry, true
	case *lang.LabeledStmt:
		target, ok := r.walk(s.Stmt)
		if !ok || target == nil {
			return nil, false
		}
		// The node's label list is shared with prev; the wrapper chain
		// must re-attach the same labels in the same order.
		if r.labelAt == nil {
			r.labelAt = make(map[*Node]int)
		}
		i := r.labelAt[target]
		if i >= len(target.Labels) || target.Labels[i] != s.Label {
			return nil, false
		}
		r.labelAt[target] = i + 1
		r.labelsSeen++
		r.g.LabelNode[s.Label] = target
		return target, true
	default:
		return nil, false
	}
}
