// Package cfg builds control flowgraphs for lang programs.
//
// The flowgraph follows the paper's conventions: one node per simple
// statement or predicate, a unique Entry and a unique Exit node, and —
// for the Ferrante–Ottenstein–Warren control dependence construction —
// a virtual Entry→Exit edge, which makes "top-level" statements
// control dependent on the dummy entry predicate (node 0 in the
// paper's figures).
//
// Compound statements contribute only their predicate node (the if or
// while condition, the switch tag); their bodies contribute their own
// nodes. Jump statements (goto, break, continue, return) each get a
// node with a single successor: the jump target. The conditional-jump
// idiom "if (e) goto L" therefore becomes a predicate node whose true
// edge leads to a goto node; both carry the same source line, matching
// the paper's single-node rendering of conditional jumps.
package cfg

import (
	"fmt"
	"sort"
	"sync"

	"jumpslice/internal/lang"
)

// Kind classifies flowgraph nodes.
type Kind int

// Node kinds.
const (
	KindEntry Kind = iota
	KindExit
	KindAssign
	KindRead
	KindWrite
	KindPredicate // if or while condition
	KindSwitch    // switch tag (a multi-way predicate)
	KindGoto
	KindBreak
	KindContinue
	KindReturn
	KindSkip // empty statement; no effect
	KindCall // procedure call statement
)

var kindNames = [...]string{
	KindEntry: "entry", KindExit: "exit", KindAssign: "assign",
	KindRead: "read", KindWrite: "write", KindPredicate: "predicate",
	KindSwitch: "switch", KindGoto: "goto", KindBreak: "break",
	KindContinue: "continue", KindReturn: "return", KindSkip: "skip",
	KindCall: "call",
}

// String returns the kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsJump reports whether the kind is one of the paper's jump
// statements.
func (k Kind) IsJump() bool {
	switch k {
	case KindGoto, KindBreak, KindContinue, KindReturn:
		return true
	}
	return false
}

// IsPredicate reports whether the node kind branches (if/while
// condition or switch tag).
func (k Kind) IsPredicate() bool { return k == KindPredicate || k == KindSwitch }

// Edge is a labeled control flow edge. Labels are "T"/"F" for
// predicate nodes, the case values (or "default") for switch nodes,
// "" otherwise.
type Edge struct {
	From, To int
	Label    string
}

// Node is a flowgraph node.
type Node struct {
	ID   int
	Kind Kind
	// Stmt is the originating statement; nil for Entry and Exit. For
	// predicates it is the enclosing IfStmt/WhileStmt/SwitchStmt.
	Stmt lang.Stmt
	// Line is the source line of the statement, or 0 for Entry/Exit.
	Line int
	// Labels are the goto labels attached to this node's statement.
	Labels []string
	// Target is the jump target node for jump kinds, nil otherwise.
	// A goto's target is the labeled node; break targets the statement
	// after the loop/switch; continue targets the loop predicate;
	// return targets Exit.
	Target *Node

	Out []Edge
	In  []int
}

// String renders the node for diagnostics: "5:predicate if (x > 0)".
func (n *Node) String() string {
	switch n.Kind {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	}
	return fmt.Sprintf("%d:%s %s", n.Line, n.Kind, lang.StmtString(n.Stmt))
}

// Succs returns the IDs of the node's successors in edge order.
func (n *Node) Succs() []int {
	out := make([]int, len(n.Out))
	for i, e := range n.Out {
		out[i] = e.To
	}
	return out
}

// Graph is a control flowgraph.
type Graph struct {
	Prog  *lang.Program
	Nodes []*Node
	Entry *Node
	Exit  *Node

	stmtNode map[lang.Stmt]*Node
	stmtOnce sync.Once
	// LabelNode maps each goto label to its target node.
	LabelNode map[string]*Node
	// arena is the contiguous backing Build carves nodes from;
	// outArena/inArena back the initial Out/In slices the same way
	// (two slots per node; wider fan-out spills to the allocator).
	arena    []Node
	outArena []Edge
	inArena  []int
}

// takeOut carves an empty capacity-2 edge slice from the arena, or
// returns nil (letting append allocate) once it is exhausted.
func (g *Graph) takeOut() []Edge {
	if len(g.outArena)+2 > cap(g.outArena) {
		return nil
	}
	off := len(g.outArena)
	g.outArena = g.outArena[:off+2]
	return g.outArena[off : off : off+2]
}

func (g *Graph) takeIn() []int {
	if len(g.inArena)+2 > cap(g.inArena) {
		return nil
	}
	off := len(g.inArena)
	g.inArena = g.inArena[:off+2]
	return g.inArena[off : off : off+2]
}

// NodeFor returns the flowgraph node of a statement, or nil if the
// statement has none (blocks and label wrappers). For labeled
// statements it returns the inner statement's node.
func (g *Graph) NodeFor(s lang.Stmt) *Node {
	if s == nil {
		return nil
	}
	g.ensureStmtNode()
	return g.stmtNode[lang.Unlabel(s)]
}

// ensureStmtNode builds the statement→node index on first use. Build
// fills it eagerly (the builder itself needs it); Rebind leaves it
// nil because most rebound graphs are only ever queried by node ID,
// and reconstructing it here from Nodes is safe whenever someone does
// ask. The sync.Once makes the lazy build race-free for graphs shared
// across slicing goroutines.
func (g *Graph) ensureStmtNode() {
	g.stmtOnce.Do(func() {
		if g.stmtNode != nil {
			return
		}
		m := make(map[lang.Stmt]*Node, len(g.Nodes))
		for _, n := range g.Nodes {
			if n.Stmt != nil {
				m[n.Stmt] = n
			}
		}
		g.stmtNode = m
	})
}

// EntryOf returns the node control reaches when entering statement s:
// the statement's own node, the predicate node of a compound, or the
// first inner node of a block. Empty blocks own a skip node, so the
// result is never nil for a statement of a built program.
func (g *Graph) EntryOf(s lang.Stmt) *Node {
	g.ensureStmtNode()
	return g.entryOf(s)
}

func (g *Graph) entryOf(s lang.Stmt) *Node {
	switch s := s.(type) {
	case *lang.LabeledStmt:
		return g.entryOf(s.Stmt)
	case *lang.BlockStmt:
		if len(s.List) == 0 {
			return g.stmtNode[s]
		}
		return g.entryOf(s.List[0])
	default:
		return g.stmtNode[s]
	}
}

// NumNodes returns the node count (implements the dom.Directed
// interface together with Succs/Preds).
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Succs returns the successor IDs of node i.
func (g *Graph) Succs(i int) []int { return g.Nodes[i].Succs() }

// Preds returns the predecessor IDs of node i.
func (g *Graph) Preds(i int) []int { return g.Nodes[i].In }

// Jumps returns all jump nodes in lexical (source line, then ID)
// order.
func (g *Graph) Jumps() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind.IsJump() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// NodesAtLine returns all nodes whose statement begins on the given
// source line, in ID order.
func (g *Graph) NodesAtLine(line int) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Line == line {
			out = append(out, n)
		}
	}
	return out
}

// Reachable returns the set of node IDs reachable from Entry.
func (g *Graph) Reachable() map[int]bool {
	seen := map[int]bool{}
	var stack []int
	stack = append(stack, g.Entry.ID)
	seen[g.Entry.ID] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Nodes[id].Out {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// CanReachExit returns, for each node, whether Exit is reachable from
// it. Nodes for which this is false sit on inescapable cycles
// (infinite loops); postdominance is undefined for them.
func (g *Graph) CanReachExit() []bool {
	ok := make([]bool, len(g.Nodes))
	var stack []int
	stack = append(stack, g.Exit.ID)
	ok[g.Exit.ID] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Nodes[id].In {
			if !ok[p] {
				ok[p] = true
				stack = append(stack, p)
			}
		}
	}
	return ok
}

func (g *Graph) addNode(kind Kind, s lang.Stmt) *Node {
	var n *Node
	// Nodes are carved out of the arena Build pre-sized, one malloc
	// for the whole graph instead of one per statement. If the count
	// estimate was short (it never is for parsed programs), spill to
	// individual allocations — pointers into the arena stay valid.
	if len(g.arena) < cap(g.arena) {
		g.arena = g.arena[:len(g.arena)+1]
		n = &g.arena[len(g.arena)-1]
	} else {
		n = &Node{}
	}
	n.ID = len(g.Nodes)
	n.Kind = kind
	n.Stmt = s
	if s != nil {
		n.Line = s.Pos().Line
	}
	g.Nodes = append(g.Nodes, n)
	if s != nil {
		g.stmtNode[s] = n
	}
	return n
}

// countNodes predicts how many flowgraph nodes createNodes will make
// for the program: every statement except label wrappers and
// non-empty blocks bears a node, and empty blocks get a skip node.
func countNodes(p *lang.Program) int {
	count := 0
	lang.WalkProgram(p, func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.LabeledStmt:
		case *lang.BlockStmt:
			if len(s.List) == 0 {
				count++
			}
		default:
			count++
		}
	})
	return count
}

// AddEdge appends an extra labeled edge to a built graph. Its intended
// use is constructing the augmented flowgraph of Ball–Horwitz and
// Choi–Ferrante: one additional edge from every jump statement to its
// immediate lexical successor.
func (g *Graph) AddEdge(from, to *Node, label string) { g.addEdge(from, to, label) }

func (g *Graph) addEdge(from, to *Node, label string) {
	if from.Out == nil {
		from.Out = g.takeOut()
	}
	if to.In == nil {
		to.In = g.takeIn()
	}
	from.Out = append(from.Out, Edge{From: from.ID, To: to.ID, Label: label})
	to.In = append(to.In, from.ID)
}

// Build constructs the flowgraph of a program. It returns an error
// only for structural problems the parser cannot detect; a
// successfully parsed program always builds.
func Build(p *lang.Program) (*Graph, error) {
	return BuildSized(p, countNodes(p))
}

// BuildSized is Build with the node count supplied by the caller —
// the incremental engine already knows it from the previous
// flowgraph, saving the counting walk. The hint only sizes
// allocations; a wrong hint costs speed, never correctness.
func BuildSized(p *lang.Program, hint int) (*Graph, error) {
	n := hint + 2 // + Entry, Exit
	g := &Graph{
		Prog:      p,
		Nodes:     make([]*Node, 0, n),
		stmtNode:  make(map[lang.Stmt]*Node, n),
		LabelNode: map[string]*Node{},
		arena:     make([]Node, 0, n),
		outArena:  make([]Edge, 0, 2*n),
		inArena:   make([]int, 0, 2*n),
	}
	b := &builder{g: g}

	g.Entry = g.addNode(KindEntry, nil)
	g.Exit = g.addNode(KindExit, nil)

	// Pass 1: create a node for every node-bearing statement, in
	// lexical order so node IDs follow source order (the paper's
	// preorder tie-breaks then match line order).
	for _, s := range p.Body {
		b.createNodes(s)
	}

	// Pass 2: wire edges. The continuation of the whole program is
	// Exit; there is no enclosing loop or switch.
	next := g.Exit
	for i := len(p.Body) - 1; i >= 0; i-- {
		next = b.wire(p.Body[i], next, nil, nil)
	}
	g.addEdge(g.Entry, next, "T")
	// Virtual edge for the dummy entry predicate (paper's node 0): it
	// makes every always-executed node control dependent on Entry.
	g.addEdge(g.Entry, g.Exit, "F")

	// Resolve goto targets.
	for _, pg := range b.gotos {
		target, ok := g.LabelNode[pg.stmt.Label]
		if !ok {
			return nil, fmt.Errorf("cfg: goto to unknown label %q at line %d", pg.stmt.Label, pg.node.Line)
		}
		pg.node.Target = target
		g.addEdge(pg.node, target, "")
	}
	return g, nil
}

// MustBuild is Build but panics on error, for the known-good corpus.
func MustBuild(p *lang.Program) *Graph {
	g, err := Build(p)
	if err != nil {
		panic("cfg.MustBuild: " + err.Error())
	}
	return g
}

type pendingGoto struct {
	node *Node
	stmt *lang.GotoStmt
}

type builder struct {
	g     *Graph
	gotos []pendingGoto
}

// createNodes allocates nodes for s and its descendants in lexical
// order, and registers label targets.
func (b *builder) createNodes(s lang.Stmt) {
	g := b.g
	switch s := s.(type) {
	case nil:
	case *lang.AssignStmt:
		g.addNode(KindAssign, s)
	case *lang.ReadStmt:
		g.addNode(KindRead, s)
	case *lang.WriteStmt:
		g.addNode(KindWrite, s)
	case *lang.GotoStmt:
		n := g.addNode(KindGoto, s)
		b.gotos = append(b.gotos, pendingGoto{node: n, stmt: s})
	case *lang.BreakStmt:
		g.addNode(KindBreak, s)
	case *lang.ContinueStmt:
		g.addNode(KindContinue, s)
	case *lang.ReturnStmt:
		g.addNode(KindReturn, s)
	case *lang.EmptyStmt:
		g.addNode(KindSkip, s)
	case *lang.CallStmt:
		g.addNode(KindCall, s)
	case *lang.IfStmt:
		g.addNode(KindPredicate, s)
		b.createNodes(s.Then)
		b.createNodes(s.Else)
	case *lang.WhileStmt:
		g.addNode(KindPredicate, s)
		b.createNodes(s.Body)
	case *lang.SwitchStmt:
		g.addNode(KindSwitch, s)
		for _, c := range s.Cases {
			for _, st := range c.Body {
				b.createNodes(st)
			}
		}
	case *lang.BlockStmt:
		if len(s.List) == 0 {
			// An empty block gets a skip node so it can carry a label
			// and participate in fall-through.
			g.addNode(KindSkip, s)
			return
		}
		for _, st := range s.List {
			b.createNodes(st)
		}
	case *lang.LabeledStmt:
		b.createNodes(s.Stmt)
		target := b.entry(s.Stmt)
		target.Labels = append(target.Labels, s.Label)
		g.LabelNode[s.Label] = target
	default:
		panic(fmt.Sprintf("cfg: unknown statement %T", s))
	}
}

// entry returns the node control reaches when entering s. Pass 1
// guarantees every statement (transitively) owns a node, so this never
// falls through to a continuation.
func (b *builder) entry(s lang.Stmt) *Node { return b.g.EntryOf(s) }

// wire adds the control flow edges for s, given the node control
// reaches after s completes normally (next), the break target (brk)
// and the continue target (cont). It returns the entry node of s so
// callers can chain statement sequences.
func (b *builder) wire(s lang.Stmt, next, brk, cont *Node) *Node {
	g := b.g
	switch s := s.(type) {
	case *lang.AssignStmt, *lang.ReadStmt, *lang.WriteStmt, *lang.CallStmt, *lang.EmptyStmt:
		n := g.stmtNode[s]
		g.addEdge(n, next, "")
		return n
	case *lang.GotoStmt:
		// Edge added after label resolution in Build.
		return g.stmtNode[s]
	case *lang.BreakStmt:
		n := g.stmtNode[s]
		n.Target = brk
		g.addEdge(n, brk, "")
		return n
	case *lang.ContinueStmt:
		n := g.stmtNode[s]
		n.Target = cont
		g.addEdge(n, cont, "")
		return n
	case *lang.ReturnStmt:
		n := g.stmtNode[s]
		n.Target = g.Exit
		g.addEdge(n, g.Exit, "")
		return n
	case *lang.IfStmt:
		n := g.stmtNode[s]
		thenEntry := b.wire(s.Then, next, brk, cont)
		g.addEdge(n, thenEntry, "T")
		if s.Else != nil {
			elseEntry := b.wire(s.Else, next, brk, cont)
			g.addEdge(n, elseEntry, "F")
		} else {
			g.addEdge(n, next, "F")
		}
		return n
	case *lang.WhileStmt:
		n := g.stmtNode[s]
		// Inside the body: break exits the loop, continue re-tests the
		// condition (C semantics for while loops).
		bodyEntry := b.wire(s.Body, n, next, n)
		g.addEdge(n, bodyEntry, "T")
		g.addEdge(n, next, "F")
		return n
	case *lang.SwitchStmt:
		return b.wireSwitch(s, next, cont)
	case *lang.BlockStmt:
		if len(s.List) == 0 {
			n := g.stmtNode[s]
			g.addEdge(n, next, "")
			return n
		}
		after := next
		for i := len(s.List) - 1; i >= 0; i-- {
			after = b.wire(s.List[i], after, brk, cont)
		}
		return after
	case *lang.LabeledStmt:
		return b.wire(s.Stmt, next, brk, cont)
	}
	panic(fmt.Sprintf("cfg: unknown statement %T", s))
}

// wireSwitch wires a C-style switch: the tag node dispatches to each
// case's entry; case bodies fall through to the next case; break exits
// past the switch; continue passes through to the enclosing loop.
func (b *builder) wireSwitch(s *lang.SwitchStmt, next, cont *Node) *Node {
	g := b.g
	n := g.stmtNode[s]

	// Wire case bodies back to front so each body knows its
	// fall-through continuation (the entry of the following case's
	// body, or next after the last case).
	entries := make([]*Node, len(s.Cases))
	fall := next
	for i := len(s.Cases) - 1; i >= 0; i-- {
		body := s.Cases[i].Body
		entry := fall
		for j := len(body) - 1; j >= 0; j-- {
			entry = b.wire(body[j], entry, next, cont)
		}
		entries[i] = entry
		fall = entry
	}

	// Dispatch edges from the tag.
	hasDefault := false
	for i, c := range s.Cases {
		if c.IsDefault {
			hasDefault = true
			g.addEdge(n, entries[i], "default")
			continue
		}
		for _, v := range c.Values {
			g.addEdge(n, entries[i], fmt.Sprintf("%d", v))
		}
	}
	if !hasDefault {
		g.addEdge(n, next, "default")
	}
	return n
}
