package cfg

import (
	"sort"
	"testing"

	"jumpslice/internal/lang"
)

// succLines returns the sorted source lines of n's successors; Entry
// is -1 and Exit is 0 in the result for readability.
func succLines(g *Graph, n *Node) []int {
	var out []int
	for _, e := range n.Out {
		to := g.Nodes[e.To]
		switch to.Kind {
		case KindEntry:
			out = append(out, -1)
		case KindExit:
			out = append(out, 0)
		default:
			out = append(out, to.Line)
		}
	}
	sort.Ints(out)
	return out
}

// nodeAt returns the single node at the line, failing the test on
// ambiguity or absence.
func nodeAt(t *testing.T, g *Graph, line int) *Node {
	t.Helper()
	ns := g.NodesAtLine(line)
	if len(ns) != 1 {
		t.Fatalf("line %d has %d nodes, want 1", line, len(ns))
	}
	return ns[0]
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildStraightLine(t *testing.T) {
	g := MustBuild(lang.MustParse("a = 1;\nb = a;\nwrite(b);"))
	// Entry, Exit + 3 statements.
	if len(g.Nodes) != 5 {
		t.Fatalf("node count = %d, want 5", len(g.Nodes))
	}
	if got := succLines(g, g.Entry); !eqInts(got, []int{0, 1}) {
		t.Errorf("entry succs = %v, want [0 1] (virtual exit edge + line 1)", got)
	}
	if got := succLines(g, nodeAt(t, g, 1)); !eqInts(got, []int{2}) {
		t.Errorf("line 1 succs = %v, want [2]", got)
	}
	if got := succLines(g, nodeAt(t, g, 3)); !eqInts(got, []int{0}) {
		t.Errorf("line 3 succs = %v, want [exit]", got)
	}
}

func TestBuildIfElse(t *testing.T) {
	g := MustBuild(lang.MustParse("if (x > 0)\ny = 1;\nelse y = 2;\nwrite(y);"))
	p := nodeAt(t, g, 1)
	if p.Kind != KindPredicate {
		t.Fatalf("line 1 kind = %v, want predicate", p.Kind)
	}
	if got := succLines(g, p); !eqInts(got, []int{2, 3}) {
		t.Errorf("predicate succs = %v, want [2 3]", got)
	}
	// Check the true/false labels.
	labels := map[int]string{}
	for _, e := range p.Out {
		labels[g.Nodes[e.To].Line] = e.Label
	}
	if labels[2] != "T" || labels[3] != "F" {
		t.Errorf("edge labels = %v, want 2:T 3:F", labels)
	}
	for _, line := range []int{2, 3} {
		if got := succLines(g, nodeAt(t, g, line)); !eqInts(got, []int{4}) {
			t.Errorf("line %d succs = %v, want [4]", line, got)
		}
	}
}

func TestBuildIfWithoutElse(t *testing.T) {
	g := MustBuild(lang.MustParse("if (x)\ny = 1;\nwrite(y);"))
	p := nodeAt(t, g, 1)
	if got := succLines(g, p); !eqInts(got, []int{2, 3}) {
		t.Errorf("predicate succs = %v, want [2 3] (then, fallthrough)", got)
	}
}

func TestBuildWhile(t *testing.T) {
	g := MustBuild(lang.MustParse("while (x > 0) {\nx = x - 1;\n}\nwrite(x);"))
	p := nodeAt(t, g, 1)
	if got := succLines(g, p); !eqInts(got, []int{2, 4}) {
		t.Errorf("while succs = %v, want [2 4]", got)
	}
	// Back edge from body to predicate.
	if got := succLines(g, nodeAt(t, g, 2)); !eqInts(got, []int{1}) {
		t.Errorf("body succs = %v, want [1]", got)
	}
}

func TestBuildBreakContinue(t *testing.T) {
	g := MustBuild(lang.MustParse(`while (1) {
if (a) break;
if (b) continue;
c = 1;
}
write(c);`))
	var brkNode, contNode *Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindBreak:
			brkNode = n
		case KindContinue:
			contNode = n
		}
	}
	if brkNode == nil || contNode == nil {
		t.Fatal("missing break or continue node")
	}
	if got := succLines(g, brkNode); !eqInts(got, []int{6}) {
		t.Errorf("break succs = %v, want [6] (after loop)", got)
	}
	if brkNode.Target == nil || brkNode.Target.Line != 6 {
		t.Errorf("break target = %v, want node at line 6", brkNode.Target)
	}
	if got := succLines(g, contNode); !eqInts(got, []int{1}) {
		t.Errorf("continue succs = %v, want [1] (loop predicate)", got)
	}
	if contNode.Target == nil || contNode.Target.Line != 1 {
		t.Errorf("continue target = %v, want loop predicate", contNode.Target)
	}
}

func TestBuildReturn(t *testing.T) {
	g := MustBuild(lang.MustParse("if (x) return;\nwrite(x);"))
	var ret *Node
	for _, n := range g.Nodes {
		if n.Kind == KindReturn {
			ret = n
		}
	}
	if ret == nil {
		t.Fatal("no return node")
	}
	if got := succLines(g, ret); !eqInts(got, []int{0}) {
		t.Errorf("return succs = %v, want [exit]", got)
	}
	if ret.Target != g.Exit {
		t.Error("return target should be Exit")
	}
}

func TestBuildGotoForwardAndBackward(t *testing.T) {
	g := MustBuild(lang.MustParse(`s = 0;
L1: if (eof()) goto L2;
s = s + 1;
goto L1;
L2: write(s);`))
	if got := g.LabelNode["L1"].Line; got != 2 {
		t.Errorf("L1 targets line %d, want 2", got)
	}
	if got := g.LabelNode["L2"].Line; got != 5 {
		t.Errorf("L2 targets line %d, want 5", got)
	}
	var gotos []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindGoto {
			gotos = append(gotos, n)
		}
	}
	if len(gotos) != 2 {
		t.Fatalf("found %d gotos, want 2", len(gotos))
	}
	// goto L2 at line 2 (inside the if), goto L1 at line 4.
	for _, n := range gotos {
		switch n.Line {
		case 2:
			if n.Target.Line != 5 {
				t.Errorf("goto L2 targets line %d, want 5", n.Target.Line)
			}
		case 4:
			if n.Target.Line != 2 {
				t.Errorf("goto L1 targets line %d, want 2", n.Target.Line)
			}
		default:
			t.Errorf("unexpected goto at line %d", n.Line)
		}
	}
}

func TestBuildSwitchFallthroughAndDispatch(t *testing.T) {
	g := MustBuild(lang.MustParse(`switch (c()) {
case 1:
x = 1;
case 2:
y = 2;
break;
default:
z = 3;
}
write(x);`))
	sw := nodeAt(t, g, 1)
	if sw.Kind != KindSwitch {
		t.Fatalf("line 1 kind = %v, want switch", sw.Kind)
	}
	// Dispatch: case 1 -> line 3, case 2 -> line 5, default -> line 8.
	byLabel := map[string]int{}
	for _, e := range sw.Out {
		byLabel[e.Label] = g.Nodes[e.To].Line
	}
	if byLabel["1"] != 3 || byLabel["2"] != 5 || byLabel["default"] != 8 {
		t.Errorf("dispatch = %v, want 1:3 2:5 default:8", byLabel)
	}
	// Fall-through: x=1 (line 3) flows into y=2 (line 5).
	if got := succLines(g, nodeAt(t, g, 3)); !eqInts(got, []int{5}) {
		t.Errorf("case 1 body succs = %v, want [5]", got)
	}
	// break exits to write (line 10).
	if got := succLines(g, nodeAt(t, g, 6)); !eqInts(got, []int{10}) {
		t.Errorf("break succs = %v, want [10]", got)
	}
	// default body flows past the switch.
	if got := succLines(g, nodeAt(t, g, 8)); !eqInts(got, []int{10}) {
		t.Errorf("default body succs = %v, want [10]", got)
	}
}

func TestBuildSwitchNoDefaultSkips(t *testing.T) {
	g := MustBuild(lang.MustParse("switch (c()) {\ncase 1:\nx = 1;\n}\nwrite(x);"))
	sw := nodeAt(t, g, 1)
	byLabel := map[string]int{}
	for _, e := range sw.Out {
		byLabel[e.Label] = g.Nodes[e.To].Line
	}
	if byLabel["default"] != 5 {
		t.Errorf("missing default dispatch past switch: %v", byLabel)
	}
}

func TestBuildEmptyCaseFallsThrough(t *testing.T) {
	g := MustBuild(lang.MustParse("switch (c()) {\ncase 1:\ncase 2:\nx = 1;\n}\nwrite(x);"))
	sw := nodeAt(t, g, 1)
	for _, e := range sw.Out {
		if e.Label == "1" && g.Nodes[e.To].Line != 4 {
			t.Errorf("case 1 dispatches to line %d, want 4 (fall into case 2)", g.Nodes[e.To].Line)
		}
	}
}

func TestBuildLabelOnCompound(t *testing.T) {
	g := MustBuild(lang.MustParse("Top: while (x) x = x - 1;\ngoto Top;"))
	if got := g.LabelNode["Top"]; got.Kind != KindPredicate {
		t.Errorf("Top targets %v, want the while predicate", got)
	}
	if got := g.LabelNode["Top"].Labels; len(got) != 1 || got[0] != "Top" {
		t.Errorf("labels on target = %v, want [Top]", got)
	}
}

func TestBuildEmptyProgram(t *testing.T) {
	g := MustBuild(lang.MustParse(""))
	if len(g.Nodes) != 2 {
		t.Fatalf("empty program has %d nodes, want 2", len(g.Nodes))
	}
	// Entry should flow to Exit both via the program edge and the
	// virtual edge.
	if len(g.Entry.Out) != 2 {
		t.Errorf("entry out-degree = %d, want 2", len(g.Entry.Out))
	}
}

func TestBuildEmptyStatementAndBlock(t *testing.T) {
	g := MustBuild(lang.MustParse("L: ;\ngoto L;\nM: {}\n"))
	if g.LabelNode["L"].Kind != KindSkip {
		t.Errorf("L targets %v, want skip node", g.LabelNode["L"])
	}
	if g.LabelNode["M"].Kind != KindSkip {
		t.Errorf("M targets %v, want skip node for empty block", g.LabelNode["M"])
	}
}

func TestEntryVirtualEdgeToExit(t *testing.T) {
	g := MustBuild(lang.MustParse("x = 1;"))
	found := false
	for _, e := range g.Entry.Out {
		if e.To == g.Exit.ID {
			found = true
		}
	}
	if !found {
		t.Error("missing virtual Entry->Exit edge")
	}
}

func TestReachableAndCanReachExit(t *testing.T) {
	g := MustBuild(lang.MustParse("goto L;\nx = 1;\nL: write(x);"))
	reach := g.Reachable()
	dead := nodeAt(t, g, 2)
	if reach[dead.ID] {
		t.Error("statement after unconditional goto should be unreachable")
	}
	ok := g.CanReachExit()
	if !ok[g.Entry.ID] || !ok[nodeAt(t, g, 3).ID] {
		t.Error("live nodes should reach exit")
	}
}

func TestInfiniteLoopCannotReachExit(t *testing.T) {
	g := MustBuild(lang.MustParse("L: goto L;\nwrite(x);"))
	ok := g.CanReachExit()
	loop := g.LabelNode["L"]
	if ok[loop.ID] {
		t.Error("self-loop goto should not reach exit")
	}
}

func TestJumpsOrderedByLine(t *testing.T) {
	g := MustBuild(lang.MustParse(`while (1) {
if (a) continue;
if (b) break;
}
goto End;
End: return;`))
	jumps := g.Jumps()
	var lines []int
	for _, j := range jumps {
		lines = append(lines, j.Line)
	}
	if !eqInts(lines, []int{2, 3, 5, 6}) {
		t.Errorf("jump lines = %v, want [2 3 5 6]", lines)
	}
}

func TestNodeForResolvesLabels(t *testing.T) {
	p := lang.MustParse("L: x = 1; goto L;")
	g := MustBuild(p)
	n := g.NodeFor(p.Body[0])
	if n == nil || n.Kind != KindAssign {
		t.Errorf("NodeFor(labeled) = %v, want the assignment node", n)
	}
}

func TestPredsMirrorSuccs(t *testing.T) {
	g := MustBuild(lang.MustParse(`while (!eof()) {
read(x);
if (x < 0) continue;
s = s + x;
}
write(s);`))
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			found := false
			for _, p := range g.Nodes[e.To].In {
				if p == n.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d not mirrored in preds", n.ID, e.To)
			}
		}
		for _, p := range n.In {
			found := false
			for _, e := range g.Nodes[p].Out {
				if e.To == n.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("pred %d of %d has no matching edge", p, n.ID)
			}
		}
	}
}

func TestConditionalJumpIsPredicatePlusGoto(t *testing.T) {
	// "if (e) goto L" must yield two nodes on the same line: the
	// predicate and the goto, matching the paper's conditional-jump
	// rendering.
	g := MustBuild(lang.MustParse("L3: if (eof()) goto L14;\ngoto L3;\nL14: write(s);"))
	ns := g.NodesAtLine(1)
	if len(ns) != 2 {
		t.Fatalf("line 1 has %d nodes, want 2 (predicate + goto)", len(ns))
	}
	kinds := map[Kind]bool{}
	for _, n := range ns {
		kinds[n.Kind] = true
	}
	if !kinds[KindPredicate] || !kinds[KindGoto] {
		t.Errorf("line 1 kinds = %v, want predicate and goto", kinds)
	}
}

func TestBuildErrorOnHandBuiltBadGoto(t *testing.T) {
	// The parser validates goto targets, but Build must also defend
	// against hand-built ASTs (progen and the flattener construct ASTs
	// directly).
	prog := &lang.Program{
		Body:   []lang.Stmt{&lang.GotoStmt{Label: "Nowhere"}},
		Labels: map[string]*lang.LabeledStmt{},
	}
	if _, err := Build(prog); err == nil {
		t.Error("expected error for goto to unknown label")
	}
}

func TestMustBuildPanicsOnBadGoto(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustBuild(&lang.Program{
		Body:   []lang.Stmt{&lang.GotoStmt{Label: "Nowhere"}},
		Labels: map[string]*lang.LabeledStmt{},
	})
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindEntry: "entry", KindExit: "exit", KindAssign: "assign",
		KindGoto: "goto", KindSwitch: "switch", KindSkip: "skip",
		Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNodeString(t *testing.T) {
	g := MustBuild(lang.MustParse("x = 1;"))
	if got := g.Entry.String(); got != "entry" {
		t.Errorf("entry String = %q", got)
	}
	if got := g.Exit.String(); got != "exit" {
		t.Errorf("exit String = %q", got)
	}
	n := g.NodesAtLine(1)[0]
	if got := n.String(); got != "1:assign x = 1;" {
		t.Errorf("node String = %q", got)
	}
}

func TestMultipleLabelsOneStatement(t *testing.T) {
	g := MustBuild(lang.MustParse("A: B: x = 1;\ngoto A;\ngoto B;"))
	n := g.NodesAtLine(1)[0]
	if len(n.Labels) != 2 {
		t.Errorf("labels = %v, want [A B] (order irrelevant)", n.Labels)
	}
	if g.LabelNode["A"] != n || g.LabelNode["B"] != n {
		t.Error("both labels should target the same node")
	}
}
