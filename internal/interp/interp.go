// Package interp executes lang programs. It drives execution over the
// control flowgraph rather than the AST, which makes every jump
// statement — goto included — a plain edge traversal.
//
// Its purpose in this repository is semantic validation of slices
// (Weiser's criterion): on a terminating run, a correct slice produces
// the same sequence of values for the criterion variable at the
// criterion line as the original program, given the same input. The
// interpreter records exactly that observation sequence.
//
// The paper's example programs call uninterpreted functions (f1(x),
// eof(), …). The interpreter binds eof() to the input stream and every
// other intrinsic to a deterministic pure mixing function, preserving
// the only property slicing relies on: same inputs, same outputs.
package interp

import (
	"errors"
	"fmt"
	"hash/fnv"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// ErrStepBudget is returned when a run exceeds its step budget —
// usually a non-terminating program.
var ErrStepBudget = errors.New("interp: step budget exceeded")

// Intrinsic is a pure function callable from programs.
type Intrinsic func(args []int64) int64

// Options configures a run.
type Options struct {
	// Input is the stream consumed by read(); eof() reports whether it
	// is exhausted. Reading past the end yields 0.
	Input []int64
	// Intrinsics maps function names to implementations. Names not
	// present fall back to a deterministic hash-based mixer, so any
	// program runs without configuration. eof is always bound to the
	// input stream and cannot be overridden.
	Intrinsics map[string]Intrinsic
	// MaxSteps bounds the number of node executions; 0 means 200000.
	MaxSteps int
	// ObserveVar/ObserveLine, when ObserveLine > 0, record the value
	// of the variable each time a statement at that line that uses or
	// defines it executes — after execution for defining statements,
	// before otherwise.
	ObserveVar  string
	ObserveLine int
	// CollectTrace records the execution trace: the node ID of every
	// executed node, in order (Entry included, Exit excluded). Used by
	// the dynamic slicer.
	CollectTrace bool
}

// Result is the outcome of a run.
type Result struct {
	// Output collects the values passed to write(), in order.
	Output []int64
	// Observations is the criterion-variable value sequence (see
	// Options.ObserveVar).
	Observations []int64
	// Steps is the number of node executions performed.
	Steps int
	// Returned reports whether the program ended via a return
	// statement; HasValue/Value carry its operand when present.
	Returned bool
	HasValue bool
	Value    int64
	// Env is the final variable environment.
	Env map[string]int64
	// Trace holds the executed node IDs in order when
	// Options.CollectTrace is set.
	Trace []int
}

// Run executes the program and returns the result. It builds the
// flowgraph internally; use RunCFG to reuse one.
func Run(p *lang.Program, opts Options) (*Result, error) {
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	return RunCFG(g, opts)
}

// RunCFG executes a program through its prebuilt flowgraph.
func RunCFG(g *cfg.Graph, opts Options) (*Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200000
	}
	st := &state{
		g:    g,
		opts: opts,
		env:  map[string]int64{},
		res:  &Result{},
	}
	node := g.Entry
	for {
		if node.Kind == cfg.KindExit {
			break
		}
		st.res.Steps++
		if opts.CollectTrace {
			st.res.Trace = append(st.res.Trace, node.ID)
		}
		if st.res.Steps > maxSteps {
			return st.res, fmt.Errorf("%w after %d steps", ErrStepBudget, maxSteps)
		}
		next, err := st.exec(node)
		if err != nil {
			return st.res, err
		}
		node = next
	}
	st.res.Env = st.env
	return st.res, nil
}

type state struct {
	g    *cfg.Graph
	opts Options
	env  map[string]int64
	res  *Result
	// inputPos tracks consumption of Options.Input.
	inputPos int
}

// observes reports whether node n is an observation point for the
// configured criterion.
func (st *state) observes(n *cfg.Node) bool {
	if st.opts.ObserveLine == 0 || n.Line != st.opts.ObserveLine || n.Stmt == nil {
		return false
	}
	if lang.Def(n.Stmt) == st.opts.ObserveVar {
		return true
	}
	for _, u := range lang.Uses(n.Stmt) {
		if u == st.opts.ObserveVar {
			return true
		}
	}
	return false
}

func (st *state) record() {
	st.res.Observations = append(st.res.Observations, st.env[st.opts.ObserveVar])
}

// exec executes one node and returns the successor to continue at.
func (st *state) exec(n *cfg.Node) (*cfg.Node, error) {
	observing := st.observes(n)
	defines := observing && n.Stmt != nil && lang.Def(n.Stmt) == st.opts.ObserveVar
	if observing && !defines {
		st.record()
	}

	var next *cfg.Node
	switch n.Kind {
	case cfg.KindEntry:
		// Follow the program edge ("T"), not the virtual exit edge.
		next = st.succ(n, "T")
	case cfg.KindAssign:
		a := lang.Unlabel(n.Stmt).(*lang.AssignStmt)
		v, err := st.eval(a.Value)
		if err != nil {
			return nil, err
		}
		st.env[a.Name] = v
		next = st.succ(n, "")
	case cfg.KindRead:
		r := lang.Unlabel(n.Stmt).(*lang.ReadStmt)
		var v int64
		if st.inputPos < len(st.opts.Input) {
			v = st.opts.Input[st.inputPos]
			st.inputPos++
		}
		st.env[r.Name] = v
		next = st.succ(n, "")
	case cfg.KindWrite:
		w := lang.Unlabel(n.Stmt).(*lang.WriteStmt)
		v, err := st.eval(w.Value)
		if err != nil {
			return nil, err
		}
		st.res.Output = append(st.res.Output, v)
		next = st.succ(n, "")
	case cfg.KindPredicate:
		cond, err := st.eval(predCond(n.Stmt))
		if err != nil {
			return nil, err
		}
		if cond != 0 {
			next = st.succ(n, "T")
		} else {
			next = st.succ(n, "F")
		}
	case cfg.KindSwitch:
		sw := lang.Unlabel(n.Stmt).(*lang.SwitchStmt)
		tag, err := st.eval(sw.Tag)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", tag)
		next = st.succ(n, label)
		if next == nil {
			next = st.succ(n, "default")
		}
	case cfg.KindGoto, cfg.KindBreak, cfg.KindContinue:
		next = st.g.Nodes[n.Out[0].To]
	case cfg.KindReturn:
		r := lang.Unlabel(n.Stmt).(*lang.ReturnStmt)
		st.res.Returned = true
		if r.Value != nil {
			v, err := st.eval(r.Value)
			if err != nil {
				return nil, err
			}
			st.res.HasValue = true
			st.res.Value = v
		}
		next = st.g.Exit
	case cfg.KindSkip:
		next = st.succ(n, "")
	default:
		return nil, fmt.Errorf("interp: cannot execute node %v", n)
	}
	if next == nil {
		return nil, fmt.Errorf("interp: node %v has no successor to follow", n)
	}
	if defines {
		st.record()
	}
	return next, nil
}

// succ returns the successor along the edge with the given label, or
// the sole successor when label is "".
func (st *state) succ(n *cfg.Node, label string) *cfg.Node {
	if label == "" {
		if len(n.Out) == 0 {
			return nil
		}
		return st.g.Nodes[n.Out[0].To]
	}
	for _, e := range n.Out {
		if e.Label == label {
			return st.g.Nodes[e.To]
		}
	}
	return nil
}

func predCond(s lang.Stmt) lang.Expr {
	switch s := lang.Unlabel(s).(type) {
	case *lang.IfStmt:
		return s.Cond
	case *lang.WhileStmt:
		return s.Cond
	}
	panic(fmt.Sprintf("interp: predicate node with statement %T", s))
}

// eval evaluates an expression. Arithmetic is total: division or
// modulo by zero yields 0, so every run is deterministic and defined.
func (st *state) eval(e lang.Expr) (int64, error) {
	switch e := e.(type) {
	case nil:
		return 0, nil
	case *lang.IntLit:
		return e.Value, nil
	case *lang.Ident:
		return st.env[e.Name], nil
	case *lang.CallExpr:
		args := make([]int64, len(e.Args))
		for i, a := range e.Args {
			v, err := st.eval(a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return st.call(e.Name, args)
	case *lang.UnaryExpr:
		x, err := st.eval(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		case "-":
			return -x, nil
		}
		return 0, fmt.Errorf("interp: unknown unary operator %q", e.Op)
	case *lang.BinaryExpr:
		x, err := st.eval(e.X)
		if err != nil {
			return 0, err
		}
		// && and || short-circuit like C.
		switch e.Op {
		case "&&":
			if x == 0 {
				return 0, nil
			}
			y, err := st.eval(e.Y)
			if err != nil {
				return 0, err
			}
			return truth(y != 0), nil
		case "||":
			if x != 0 {
				return 1, nil
			}
			y, err := st.eval(e.Y)
			if err != nil {
				return 0, err
			}
			return truth(y != 0), nil
		}
		y, err := st.eval(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, nil
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, nil
			}
			return x % y, nil
		case "==":
			return truth(x == y), nil
		case "!=":
			return truth(x != y), nil
		case "<":
			return truth(x < y), nil
		case "<=":
			return truth(x <= y), nil
		case ">":
			return truth(x > y), nil
		case ">=":
			return truth(x >= y), nil
		}
		return 0, fmt.Errorf("interp: unknown binary operator %q", e.Op)
	}
	return 0, fmt.Errorf("interp: unknown expression %T", e)
}

func truth(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// call dispatches an intrinsic. eof is built in; unknown names use a
// deterministic FNV-based mixer so any program runs unconfigured.
func (st *state) call(name string, args []int64) (int64, error) {
	if name == "eof" {
		return truth(st.inputPos >= len(st.opts.Input)), nil
	}
	if fn, ok := st.opts.Intrinsics[name]; ok {
		return fn(args), nil
	}
	return DefaultIntrinsic(name, args), nil
}

// DefaultIntrinsic is the fallback for uninterpreted functions: a pure
// deterministic mix of the function name and its arguments, bounded to
// a small range so arithmetic on results stays tame.
func DefaultIntrinsic(name string, args []int64) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	acc := int64(h.Sum64() % 1009)
	for i, a := range args {
		acc += (a%1009 + 1009) % 1009 * int64(i+3)
	}
	return acc % 1000
}

// Observe is a convenience wrapper: run the program and return the
// observation sequence for (varName, line).
func Observe(p *lang.Program, input []int64, varName string, line int) ([]int64, error) {
	res, err := Run(p, Options{Input: input, ObserveVar: varName, ObserveLine: line})
	if err != nil {
		return nil, err
	}
	return res.Observations, nil
}
