package interp

import (
	"reflect"
	"testing"

	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
)

func TestTraceCollection(t *testing.T) {
	res, err := Run(lang.MustParse("x = 1;\ny = 2;\nwrite(x + y);"), Options{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Entry + three statements.
	if len(res.Trace) != 4 {
		t.Errorf("trace length = %d, want 4", len(res.Trace))
	}
	if res.Trace[0] != 0 {
		t.Errorf("trace should start at entry (node 0), got %d", res.Trace[0])
	}
	// Without the flag, no trace is recorded.
	res2, err := Run(lang.MustParse("x = 1;"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Errorf("trace recorded without CollectTrace: %v", res2.Trace)
	}
}

func TestSkipNodesExecute(t *testing.T) {
	// Empty statements and empty blocks flow through.
	res, err := Run(lang.MustParse(";\nL: ;\n{}\nwrite(5);"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{5}) {
		t.Errorf("output = %v, want [5]", res.Output)
	}
}

func TestFinalEnvironment(t *testing.T) {
	res, err := Run(lang.MustParse("a = 3;\nb = a * a;"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Env["a"] != 3 || res.Env["b"] != 9 {
		t.Errorf("env = %v", res.Env)
	}
}

func TestReturnWithoutValue(t *testing.T) {
	res, err := Run(lang.MustParse("return;"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Returned || res.HasValue {
		t.Errorf("returned=%v hasValue=%v, want true/false", res.Returned, res.HasValue)
	}
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	res, err := Run(lang.MustParse("x = 9;\nswitch (x) {\ncase 1:\nwrite(1);\n}\nwrite(2);"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{2}) {
		t.Errorf("output = %v, want [2]", res.Output)
	}
}

func TestNegativeSwitchTag(t *testing.T) {
	res, err := Run(lang.MustParse("x = 0 - 2;\nswitch (x) {\ncase 1:\nwrite(1);\ndefault:\nwrite(9);\n}"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{9}) {
		t.Errorf("output = %v, want [9]", res.Output)
	}
}

// TestInterpreterDeterministic: two runs of the same generated program
// on the same input are identical in output, steps and trace.
func TestInterpreterDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := progen.Unstructured(progen.Config{Seed: seed, Stmts: 25})
		in := []int64{seed, -seed, 3}
		r1, err := Run(p, Options{Input: in, CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(p, Options{Input: in, CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Output, r2.Output) || r1.Steps != r2.Steps ||
			!reflect.DeepEqual(r1.Trace, r2.Trace) {
			t.Fatalf("seed %d: nondeterministic interpretation", seed)
		}
	}
}

func TestObservationAtPredicateLine(t *testing.T) {
	// Observing a variable used by a predicate records at each test.
	obs, err := Observe(lang.MustParse("i = 0;\nwhile (i < 2) {\ni = i + 1;\n}"), nil, "i", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(obs, []int64{0, 1, 2}) {
		t.Errorf("observations = %v, want [0 1 2]", obs)
	}
}

func TestEOFIntrinsicNotOverridable(t *testing.T) {
	res, err := Run(lang.MustParse("write(eof());"), Options{
		Input: []int64{1},
		Intrinsics: map[string]Intrinsic{
			"eof": func([]int64) int64 { return 42 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{0}) {
		t.Errorf("eof() = %v, want [0] (built-in wins)", res.Output)
	}
}
