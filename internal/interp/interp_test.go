package interp

import (
	"errors"
	"reflect"
	"testing"

	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

func run(t *testing.T, src string, input []int64) *Result {
	t.Helper()
	res, err := Run(lang.MustParse(src), Options{Input: input})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestStraightLineArithmetic(t *testing.T) {
	res := run(t, "x = 2 + 3 * 4;\nwrite(x);\nwrite(x % 5);\nwrite(-x);", nil)
	want := []int64{14, 4, -14}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestDivisionByZeroIsZero(t *testing.T) {
	res := run(t, "write(7 / 0);\nwrite(7 % 0);", nil)
	if !reflect.DeepEqual(res.Output, []int64{0, 0}) {
		t.Errorf("output = %v, want [0 0]", res.Output)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	res := run(t, `write(3 < 5);
write(5 <= 4);
write(2 == 2);
write(2 != 2);
write(1 && 0);
write(1 || 0);
write(!0);
write(!7);`, nil)
	want := []int64{1, 0, 1, 0, 0, 1, 1, 0}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not run when the left is false; we
	// detect evaluation through the input-consuming side effect of
	// eof(): eof() is pure, so instead use division tameness — simply
	// check truth-value semantics here.
	res := run(t, "x = 0;\nwrite(x != 0 && 1 / x > 0);\nwrite(x == 0 || 1 / x > 0);", nil)
	if !reflect.DeepEqual(res.Output, []int64{0, 1}) {
		t.Errorf("output = %v, want [0 1]", res.Output)
	}
}

func TestReadAndEOF(t *testing.T) {
	res := run(t, `s = 0;
while (!eof()) {
read(x);
s = s + x;
}
write(s);`, []int64{1, 2, 3, 4})
	if !reflect.DeepEqual(res.Output, []int64{10}) {
		t.Errorf("output = %v, want [10]", res.Output)
	}
}

func TestReadPastEndYieldsZero(t *testing.T) {
	res := run(t, "read(a);\nread(b);\nwrite(a + b);", []int64{5})
	if !reflect.DeepEqual(res.Output, []int64{5}) {
		t.Errorf("output = %v, want [5]", res.Output)
	}
}

func TestIfElse(t *testing.T) {
	src := "read(x);\nif (x > 0)\ny = 1;\nelse y = 2;\nwrite(y);"
	if got := run(t, src, []int64{5}).Output[0]; got != 1 {
		t.Errorf("positive branch: got %d, want 1", got)
	}
	if got := run(t, src, []int64{-5}).Output[0]; got != 2 {
		t.Errorf("negative branch: got %d, want 2", got)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	res := run(t, `i = 0;
s = 0;
while (1) {
i = i + 1;
if (i > 10) break;
if (i % 2 == 0) continue;
s = s + i;
}
write(s);`, nil)
	// 1+3+5+7+9 = 25.
	if !reflect.DeepEqual(res.Output, []int64{25}) {
		t.Errorf("output = %v, want [25]", res.Output)
	}
}

func TestGotoLoop(t *testing.T) {
	res := run(t, `s = 0;
i = 0;
L: if (i >= 5) goto Done;
s = s + i;
i = i + 1;
goto L;
Done: write(s);`, nil)
	if !reflect.DeepEqual(res.Output, []int64{10}) {
		t.Errorf("output = %v, want [10]", res.Output)
	}
}

func TestSwitchDispatchAndFallthrough(t *testing.T) {
	src := `read(c);
t = 0;
switch (c) {
case 1:
t = t + 1;
case 2:
t = t + 10;
break;
case 3:
t = t + 100;
break;
default:
t = t + 1000;
}
write(t);`
	cases := map[int64]int64{1: 11, 2: 10, 3: 100, 9: 1000}
	for in, want := range cases {
		if got := run(t, src, []int64{in}).Output[0]; got != want {
			t.Errorf("switch(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestReturnStopsExecution(t *testing.T) {
	res := run(t, "x = 1;\nif (x) return 42;\nwrite(99);", nil)
	if len(res.Output) != 0 {
		t.Errorf("output = %v, want none", res.Output)
	}
	if !res.Returned || !res.HasValue || res.Value != 42 {
		t.Errorf("return state = %+v, want Returned with 42", res)
	}
}

func TestStepBudget(t *testing.T) {
	_, err := Run(lang.MustParse("L: goto L;"), Options{MaxSteps: 100})
	if !errors.Is(err, ErrStepBudget) {
		t.Errorf("err = %v, want ErrStepBudget", err)
	}
}

func TestCustomIntrinsics(t *testing.T) {
	res, err := Run(lang.MustParse("write(double(21));"), Options{
		Intrinsics: map[string]Intrinsic{
			"double": func(args []int64) int64 { return args[0] * 2 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{42}) {
		t.Errorf("output = %v, want [42]", res.Output)
	}
}

func TestDefaultIntrinsicDeterministic(t *testing.T) {
	a := DefaultIntrinsic("f1", []int64{3})
	b := DefaultIntrinsic("f1", []int64{3})
	if a != b {
		t.Error("default intrinsic not deterministic")
	}
	if DefaultIntrinsic("f1", []int64{3}) == DefaultIntrinsic("f2", []int64{3}) &&
		DefaultIntrinsic("f1", []int64{4}) == DefaultIntrinsic("f2", []int64{4}) {
		t.Error("default intrinsics for different names should usually differ")
	}
}

func TestObservationsOnUse(t *testing.T) {
	obs, err := Observe(lang.MustParse(`p = 0;
i = 0;
while (i < 3) {
p = p + i;
i = i + 1;
write(p);
}`), nil, "p", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(obs, []int64{0, 1, 3}) {
		t.Errorf("observations = %v, want [0 1 3]", obs)
	}
}

func TestObservationsOnDefRecordAfter(t *testing.T) {
	obs, err := Observe(lang.MustParse("x = 5;\nx = x + 1;"), nil, "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(obs, []int64{6}) {
		t.Errorf("observations = %v, want [6] (value after the definition)", obs)
	}
}

// TestFigure1Behaviour runs the paper's Figure 1-a program and checks
// that "positives" counts the positive inputs.
func TestFigure1Behaviour(t *testing.T) {
	f := paper.Fig1()
	res, err := Run(f.Parse(), Options{Input: []int64{3, -1, 4, 0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Output is [sum, positives]; positives must be 3.
	if len(res.Output) != 2 || res.Output[1] != 3 {
		t.Errorf("output = %v, want positives = 3", res.Output)
	}
}

// TestGotoAndContinueVersionsAgree: the paper's Figures 1-a, 3-a and
// 5-a are stated to be equivalent in functionality; their runs on the
// same input must produce identical outputs.
func TestGotoAndContinueVersionsAgree(t *testing.T) {
	inputs := [][]int64{
		nil,
		{1},
		{-1},
		{3, -1, 4, 0, 5},
		{2, 2, 2, -7, 9, 11, -2},
	}
	progs := map[string]*lang.Program{
		"fig1": paper.Fig1().Parse(),
		"fig3": paper.Fig3().Parse(),
		"fig5": paper.Fig5().Parse(),
	}
	for _, in := range inputs {
		ref, err := Run(progs["fig1"], Options{Input: in})
		if err != nil {
			t.Fatal(err)
		}
		for name, p := range progs {
			res, err := Run(p, Options{Input: in})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(res.Output, ref.Output) {
				t.Errorf("%s output = %v, fig1 output = %v (input %v)",
					name, res.Output, ref.Output, in)
			}
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	res := run(t, "", nil)
	if res.Steps != 1 {
		t.Errorf("steps = %d, want 1 (entry only)", res.Steps)
	}
	if len(res.Output) != 0 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestNestedLoops(t *testing.T) {
	res := run(t, `t = 0;
i = 0;
while (i < 3) {
j = 0;
while (j < 4) {
t = t + 1;
j = j + 1;
}
i = i + 1;
}
write(t);`, nil)
	if !reflect.DeepEqual(res.Output, []int64{12}) {
		t.Errorf("output = %v, want [12]", res.Output)
	}
}

func TestBreakInnerLoopOnly(t *testing.T) {
	res := run(t, `t = 0;
i = 0;
while (i < 3) {
while (1) {
break;
}
t = t + 1;
i = i + 1;
}
write(t);`, nil)
	if !reflect.DeepEqual(res.Output, []int64{3}) {
		t.Errorf("output = %v, want [3]", res.Output)
	}
}
