// Package lst builds the lexical successor tree of a program — the
// separate, purely syntactic structure at the heart of the paper's
// algorithm (Section 3).
//
// The immediate lexical successor of a statement S is the statement
// control would reach, were S deleted from the program, whenever it
// arrives at S's former location. It is computed entirely from the
// syntax:
//
//   - a statement followed by another in the same sequence → that next
//     statement;
//   - the last statement of a while body → the while statement itself
//     (control re-tests the condition);
//   - the last statement of an if/else branch → the successor of the
//     whole if;
//   - the last statement of a switch case → the first statement of the
//     next case (C fall-through), or the switch's successor for the
//     last case;
//   - the last top-level statement → the program exit.
//
// The tree has Exit as its root; the parent of every node is its
// immediate lexical successor. A statement S' is a lexical successor
// of S iff S' is a proper ancestor of S in the tree. For programs with
// no jump statements the lexical successor tree coincides with the
// postdominator tree — the divergence between the two is exactly what
// the paper's slicing condition tests.
package lst

import (
	"fmt"
	"sort"

	"jumpslice/internal/cfg"
	"jumpslice/internal/lang"
)

// Tree is a lexical successor tree over the nodes of a flowgraph.
type Tree struct {
	CFG *cfg.Graph
	// Parent[n] is the immediate lexical successor of node n. The
	// root (Exit) is its own parent; Entry, which is not a statement,
	// is parented directly to Exit and never consulted.
	Parent   []int
	children [][]int
}

// Build constructs the lexical successor tree for a built flowgraph.
func Build(g *cfg.Graph) *Tree {
	t := &Tree{CFG: g, Parent: make([]int, len(g.Nodes))}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	t.Parent[g.Exit.ID] = g.Exit.ID
	t.Parent[g.Entry.ID] = g.Exit.ID

	b := &builder{g: g, t: t}
	b.seq(g.Prog.Body, g.Exit)

	// Safety net: every node must have been assigned a parent.
	for i, p := range t.Parent {
		if p < 0 {
			panic(fmt.Sprintf("lst: node %d (%s) has no lexical successor", i, g.Nodes[i]))
		}
	}

	t.children = make([][]int, len(g.Nodes))
	for v, p := range t.Parent {
		if v != p {
			t.children[p] = append(t.children[p], v)
		}
	}
	for _, c := range t.children {
		sort.Ints(c)
	}
	return t
}

type builder struct {
	g *cfg.Graph
	t *Tree
}

// seq assigns lexical successors within a statement sequence whose
// overall successor is follow.
func (b *builder) seq(list []lang.Stmt, follow *cfg.Node) {
	for i, s := range list {
		f := follow
		if i+1 < len(list) {
			f = b.g.EntryOf(list[i+1])
		}
		b.stmt(s, f)
	}
}

// stmt assigns the lexical successor of s (follow) and recurses into
// compound bodies.
func (b *builder) stmt(s lang.Stmt, follow *cfg.Node) {
	g, t := b.g, b.t
	switch s := s.(type) {
	case nil:
	case *lang.LabeledStmt:
		b.stmt(s.Stmt, follow)
	case *lang.BlockStmt:
		if len(s.List) == 0 {
			t.Parent[g.NodeFor(s).ID] = follow.ID
			return
		}
		b.seq(s.List, follow)
	case *lang.IfStmt:
		t.Parent[g.NodeFor(s).ID] = follow.ID
		b.stmt(s.Then, follow)
		if s.Else != nil {
			b.stmt(s.Else, follow)
		}
	case *lang.WhileStmt:
		n := g.NodeFor(s)
		t.Parent[n.ID] = follow.ID
		// Deleting the last statement of the body sends control back
		// to the loop test.
		b.stmt(s.Body, n)
	case *lang.SwitchStmt:
		n := g.NodeFor(s)
		t.Parent[n.ID] = follow.ID
		for i, c := range s.Cases {
			// The fall-through successor of case i's last statement is
			// the first statement of the next non-empty case body.
			f := follow
			for j := i + 1; j < len(s.Cases); j++ {
				if len(s.Cases[j].Body) > 0 {
					f = g.EntryOf(s.Cases[j].Body[0])
					break
				}
			}
			b.seq(c.Body, f)
		}
	default:
		// Simple statements and jumps.
		t.Parent[g.NodeFor(s).ID] = follow.ID
	}
}

// Children returns the tree children of v in ascending ID order.
func (t *Tree) Children(v int) []int { return t.children[v] }

// Walk calls fn for each proper lexical successor of v, nearest first
// (Parent[v], then its parent, …), ending at the root. It stops early
// if fn returns false.
func (t *Tree) Walk(v int, fn func(successor int) bool) {
	root := t.CFG.Exit.ID
	for v != root {
		v = t.Parent[v]
		if !fn(v) {
			return
		}
	}
}

// IsSuccessor reports whether b is a (proper) lexical successor of a:
// b is a proper ancestor of a in the tree.
func (t *Tree) IsSuccessor(b, a int) bool {
	if a == b {
		return false
	}
	found := false
	t.Walk(a, func(s int) bool {
		if s == b {
			found = true
			return false
		}
		return true
	})
	return found
}

// Preorder returns the nodes of the tree in preorder (each node before
// its children, children in ascending ID order), starting at Exit.
// This is the alternative traversal order the paper notes may drive
// the Figure 7 search instead of the postdominator tree's preorder.
func (t *Tree) Preorder() []int {
	out := make([]int, 0, len(t.Parent))
	var visit func(v int)
	visit = func(v int) {
		out = append(out, v)
		for _, c := range t.children[v] {
			visit(c)
		}
	}
	visit(t.CFG.Exit.ID)
	return out
}
