package lst

import (
	"testing"

	"jumpslice/internal/cfg"
	"jumpslice/internal/dom"
	"jumpslice/internal/lang"
	"jumpslice/internal/paper"
)

func build(t *testing.T, src string) (*cfg.Graph, *Tree) {
	t.Helper()
	g, err := cfg.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return g, Build(g)
}

// parentLine returns the line of a node's immediate lexical successor
// (0 for Exit).
func parentLine(g *cfg.Graph, t *Tree, id int) int {
	return g.Nodes[t.Parent[id]].Line
}

func nodeOfKind(t *testing.T, g *cfg.Graph, line int, k cfg.Kind) *cfg.Node {
	t.Helper()
	for _, n := range g.NodesAtLine(line) {
		if n.Kind == k {
			return n
		}
	}
	t.Fatalf("no %v node at line %d", k, line)
	return nil
}

// TestFigure4LexicalSuccessorTree checks the LST of the goto program
// (Figure 3-a) against the paper's Figure 4-d. The program is flat, so
// each statement's immediate lexical successor is simply the next
// statement; the conditional jumps at lines 3 and 5 have both their
// predicate and goto nodes parented at the following line.
func TestFigure4LexicalSuccessorTree(t *testing.T) {
	g, tree := build(t, paper.Fig3().Source)
	want := map[int]int{
		1: 2, 2: 3, 4: 5, 6: 7, 7: 8, 8: 9,
		10: 11, 11: 12, 12: 13, 13: 14, 14: 15, 15: 0,
	}
	for line, wantNext := range want {
		for _, n := range g.NodesAtLine(line) {
			if got := parentLine(g, tree, n.ID); got != wantNext {
				t.Errorf("ILS(line %d, %v) = line %d, want %d", line, n.Kind, got, wantNext)
			}
		}
	}
	// The conditional jump at line 3: predicate's ILS is 4; the goto
	// inside it also falls through to 4 when deleted.
	p3 := nodeOfKind(t, g, 3, cfg.KindPredicate)
	g3 := nodeOfKind(t, g, 3, cfg.KindGoto)
	if got := parentLine(g, tree, p3.ID); got != 4 {
		t.Errorf("ILS(predicate 3) = %d, want 4", got)
	}
	if got := parentLine(g, tree, g3.ID); got != 4 {
		t.Errorf("ILS(goto 3) = %d, want 4", got)
	}
}

// TestFigure6LexicalSuccessorTree checks the continue version (Figure
// 5-a) against Figure 6-d. The distinguishing entries: the last
// statement of the loop body (line 12) has the while (line 3) as its
// immediate lexical successor, and the branch-final statements fall
// through to the statement after their if.
func TestFigure6LexicalSuccessorTree(t *testing.T) {
	g, tree := build(t, paper.Fig5().Source)
	want := map[int]int{
		1: 2, 2: 3, 3: 13, 4: 5, 5: 8, 6: 7, 7: 8,
		8: 9, 9: 12, 10: 11, 11: 12, 12: 3, 13: 14, 14: 0,
	}
	for line, wantNext := range want {
		n := g.NodesAtLine(line)[0]
		if got := parentLine(g, tree, n.ID); got != wantNext {
			t.Errorf("ILS(line %d) = line %d, want %d", line, got, wantNext)
		}
	}
}

// TestFigure11LexicalSuccessorTree checks Figure 10-a against Figure
// 11-d, including ILS(4) = 5: deleting the last statement of the if
// body hands control to the statement after the if.
func TestFigure11LexicalSuccessorTree(t *testing.T) {
	g, tree := build(t, paper.Fig10().Source)
	want := map[int]int{
		1: 5, 2: 3, 3: 4, 4: 5, 5: 6, 6: 7, 7: 8, 8: 9, 9: 10, 10: 0,
	}
	for line, wantNext := range want {
		n := g.NodesAtLine(line)[0]
		if got := parentLine(g, tree, n.ID); got != wantNext {
			t.Errorf("ILS(line %d) = line %d, want %d", line, got, wantNext)
		}
	}
}

// TestFigure15LexicalSuccessorTree checks the switch program (Figure
// 14-a) against Figure 15-d: a case's last statement falls through to
// the first statement of the next case; the last case falls through
// past the switch.
func TestFigure15LexicalSuccessorTree(t *testing.T) {
	g, tree := build(t, paper.Fig14().Source)
	want := map[int]int{
		1: 8, 2: 3, 3: 4, 4: 5, 5: 6, 6: 7, 7: 8, 8: 9, 9: 10, 10: 0,
	}
	for line, wantNext := range want {
		n := g.NodesAtLine(line)[0]
		if got := parentLine(g, tree, n.ID); got != wantNext {
			t.Errorf("ILS(line %d) = line %d, want %d", line, got, wantNext)
		}
	}
}

// TestFigure10PostdomLexPair verifies the paper's multiple-traversal
// condition on Figure 10-a: node 4 postdominates node 7 while node 7
// lexically succeeds node 4.
func TestFigure10PostdomLexPair(t *testing.T) {
	g, tree := build(t, paper.Fig10().Source)
	pdt := dom.PostDominators(g, g.Exit.ID)
	n4 := nodeOfKind(t, g, 4, cfg.KindGoto)
	n7 := nodeOfKind(t, g, 7, cfg.KindGoto)
	if !pdt.Dominates(n4.ID, n7.ID) {
		t.Error("node 4 should postdominate node 7")
	}
	if !tree.IsSuccessor(n7.ID, n4.ID) {
		t.Error("node 7 should be a lexical successor of node 4")
	}
}

// TestJumpFreeLSTEqualsPDT verifies the paper's Section 3 observation:
// for a program without jump statements the lexical successor tree and
// the postdominator tree are identical.
func TestJumpFreeLSTEqualsPDT(t *testing.T) {
	srcs := []string{
		paper.Fig1().Source,
		"read(x);\nwrite(x);",
		"if (a) {\nb = 1;\n} else {\nc = 2;\n}\nwrite(b + c);",
		"while (x < 10) {\nif (x % 2 == 0)\ny = y + x;\nx = x + 1;\n}\nwrite(y);",
		"if (a)\nif (b)\nc = 1;\nwrite(c);",
	}
	for _, src := range srcs {
		g, tree := build(t, src)
		pdt := dom.PostDominators(g, g.Exit.ID)
		for _, n := range g.Nodes {
			if n.Kind == cfg.KindEntry || n.Kind == cfg.KindExit {
				continue
			}
			if tree.Parent[n.ID] != pdt.Idom[n.ID] {
				t.Errorf("src %q: node %s: ILS = %v, ipdom = %v",
					src, n, g.Nodes[tree.Parent[n.ID]], g.Nodes[pdt.Idom[n.ID]])
			}
		}
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	g, tree := build(t, "a = 1;\nb = 2;\nc = 3;")
	n := g.NodesAtLine(1)[0]
	var lines []int
	tree.Walk(n.ID, func(s int) bool {
		lines = append(lines, g.Nodes[s].Line)
		return true
	})
	if len(lines) != 3 || lines[0] != 2 || lines[1] != 3 || lines[2] != 0 {
		t.Errorf("Walk = %v, want [2 3 0]", lines)
	}
}

func TestIsSuccessorIrreflexive(t *testing.T) {
	g, tree := build(t, "a = 1;\nb = 2;")
	n := g.NodesAtLine(1)[0]
	if tree.IsSuccessor(n.ID, n.ID) {
		t.Error("IsSuccessor must be irreflexive")
	}
	m := g.NodesAtLine(2)[0]
	if !tree.IsSuccessor(m.ID, n.ID) {
		t.Error("2 should lexically succeed 1")
	}
	if tree.IsSuccessor(n.ID, m.ID) {
		t.Error("1 should not lexically succeed 2")
	}
}

func TestPreorderVisitsAllOnce(t *testing.T) {
	g, tree := build(t, paper.Fig5().Source)
	order := tree.Preorder()
	if len(order) != len(g.Nodes) {
		t.Fatalf("preorder visited %d nodes, want %d", len(order), len(g.Nodes))
	}
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("node %d visited twice", v)
		}
		seen[v] = true
	}
	if order[0] != g.Exit.ID {
		t.Errorf("preorder must start at Exit")
	}
}

// TestEmptyCaseFallthroughLST: the fall-through successor of a case's
// last statement skips empty case bodies.
func TestEmptyCaseFallthroughLST(t *testing.T) {
	g, tree := build(t, `switch (c()) {
case 1: a = 1;
case 2:
case 3: b = 2;
}
write(a);`)
	a := g.NodesAtLine(2)[0]
	// ILS(a=1) should be b=2 on line 4 (case 2 is empty).
	if got := parentLine(g, tree, a.ID); got != 4 {
		t.Errorf("ILS(case1 body) = line %d, want 4", got)
	}
}

// TestWhileBodyLastStatementILS pins the crucial rule: deleting the
// last body statement sends control back to the loop test.
func TestWhileBodyLastStatementILS(t *testing.T) {
	g, tree := build(t, "while (x) {\na = 1;\nb = 2;\n}\nwrite(b);")
	b := g.NodesAtLine(3)[0]
	if got := parentLine(g, tree, b.ID); got != 1 {
		t.Errorf("ILS(last body stmt) = line %d, want 1 (the while)", got)
	}
	a := g.NodesAtLine(2)[0]
	if got := parentLine(g, tree, a.ID); got != 3 {
		t.Errorf("ILS(first body stmt) = line %d, want 3", got)
	}
}
