package disk

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"jumpslice/internal/obs"
)

func keyN(n int) Key {
	return Key(sha256.Sum256([]byte(fmt.Sprintf("key-%d", n))))
}

func payloadN(n, size int) []byte {
	b := bytes.Repeat([]byte{byte(n)}, size)
	copy(b, fmt.Sprintf("rec-%d:", n))
	return b
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestDiskRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 20; i++ {
		if err := s.Put(keyN(i), payloadN(i, 100+i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Re-putting a present key is a no-op (demotions after
	// write-through).
	writes := s.Stats().Writes
	if err := s.Put(keyN(0), payloadN(0, 100)); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Writes != writes {
		t.Fatal("re-put of a present key wrote a record")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm restart: every record readable, byte-identical.
	s = mustOpen(t, Options{Dir: dir})
	defer s.Close()
	for i := 0; i < 20; i++ {
		data, ok := s.Get(keyN(i))
		if !ok || !bytes.Equal(data, payloadN(i, 100+i)) {
			t.Fatalf("record %d lost across restart (ok=%v)", i, ok)
		}
	}
	if _, ok := s.Get(keyN(999)); ok {
		t.Fatal("phantom record")
	}
	st := s.Stats()
	if st.Entries != 20 || st.Hits != 20 || st.Misses != 1 {
		t.Fatalf("stats after restart: %+v", st)
	}
}

// A crash mid-append leaves a torn record at the tail; reopening must
// truncate it away, keep every earlier record, and resume appending
// on a clean boundary.
func TestDiskTruncatedTailRecovery(t *testing.T) {
	for _, cut := range []int64{1, headerSize - 1, headerSize + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, Options{Dir: dir})
			for i := 0; i < 5; i++ {
				if err := s.Put(keyN(i), payloadN(i, 64)); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			// Simulate the crash: append cut bytes of a record that never
			// finished.
			path := segPath(dir, 1)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(make([]byte, cut))
			f.Close()

			s = mustOpen(t, Options{Dir: dir})
			defer s.Close()
			if got := s.Stats().Truncated; got != 1 {
				t.Fatalf("Truncated = %d", got)
			}
			if fi2, _ := os.Stat(path); fi2.Size() != fi.Size() {
				t.Fatalf("tail not truncated back: %d vs %d", fi2.Size(), fi.Size())
			}
			for i := 0; i < 5; i++ {
				if data, ok := s.Get(keyN(i)); !ok || !bytes.Equal(data, payloadN(i, 64)) {
					t.Fatalf("record %d lost to tail truncation", i)
				}
			}
			// Appending after recovery lands on a record boundary.
			if err := s.Put(keyN(100), payloadN(100, 64)); err != nil {
				t.Fatal(err)
			}
			s.Close()
			s = mustOpen(t, Options{Dir: dir})
			defer s.Close()
			if data, ok := s.Get(keyN(100)); !ok || !bytes.Equal(data, payloadN(100, 64)) {
				t.Fatal("post-recovery append lost")
			}
		})
	}
}

// A flipped payload byte must read as a miss (never as bad data), be
// counted, and heal on the next Put.
func TestDiskCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, Options{Dir: dir, Recorder: reg})
	if err := s.Put(keyN(1), payloadN(1, 128)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one byte inside the payload (past the 40-byte header).
	path := segPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+50] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, Options{Dir: dir, Recorder: reg})
	defer s.Close()
	if _, ok := s.Get(keyN(1)); ok {
		t.Fatal("corrupt record served")
	}
	if got := s.Stats().Corrupt; got != 1 {
		t.Fatalf("Corrupt = %d", got)
	}
	if reg.Counter("disk.corrupt").Value() != 1 {
		t.Fatal("disk.corrupt counter not bumped")
	}
	// The slot heals: a fresh Put appends a new record and serves.
	if err := s.Put(keyN(1), payloadN(1, 128)); err != nil {
		t.Fatal(err)
	}
	if data, ok := s.Get(keyN(1)); !ok || !bytes.Equal(data, payloadN(1, 128)) {
		t.Fatal("healed record not served")
	}
}

// Outgrowing the byte budget deletes the oldest sealed segments
// whole; the newest records survive and the store fits its budget.
func TestDiskBudgetReclamation(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := mustOpen(t, Options{
		Dir:          dir,
		SegmentBytes: 4 << 10,
		MaxBytes:     16 << 10,
		Recorder:     reg,
	})
	defer s.Close()
	const n = 64 // 64 × ~1KiB ≫ 16KiB budget
	for i := 0; i < n; i++ {
		if err := s.Put(keyN(i), payloadN(i, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Reclaimed == 0 {
		t.Fatal("no segments reclaimed despite budget overrun")
	}
	if st.Bytes > 16<<10 {
		t.Fatalf("store holds %d bytes over a %d budget", st.Bytes, 16<<10)
	}
	// The newest record is always resident; the oldest aged out.
	if _, ok := s.Get(keyN(n - 1)); !ok {
		t.Fatal("newest record reclaimed")
	}
	if _, ok := s.Get(keyN(0)); ok {
		t.Fatal("oldest record survived reclamation")
	}
	if reg.Counter("disk.reclaimed_segments").Value() != st.Reclaimed {
		t.Fatal("reclaimed counter out of sync")
	}
	// Only budget-many files remain on disk.
	ents, _ := os.ReadDir(dir)
	var files int
	for _, e := range ents {
		if !e.IsDir() {
			files++
		}
	}
	if int64(files)*(4<<10) > (16<<10)+(4<<10) {
		t.Fatalf("%d segment files exceed the budget's worth", files)
	}
}

// Foreign files in the directory are ignored, not deleted or parsed.
func TestDiskIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, Options{Dir: dir})
	defer s.Close()
	if err := s.Put(keyN(1), payloadN(1, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("foreign file disturbed")
	}
}

func TestDiskRejectsOversizedRecord(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxRecordBytes: 100})
	defer s.Close()
	if err := s.Put(keyN(1), make([]byte, 101)); err == nil {
		t.Fatal("oversized record accepted")
	}
}
