// Package disk is the spill tier under the in-memory result cache: an
// append-only segment store that survives restarts, so a redeployed
// node answers its hot keys from disk instead of recomputing every
// slice from scratch (a warm restart).
//
// The layout is deliberately boring. Records append to a single
// active segment file; when the active segment passes the configured
// roll size it is sealed and a new one starts. Each record carries its
// 32-byte key, payload length, and a CRC32 of the payload, so a crash
// mid-write is detected structurally: opening the store scans record
// headers, and the first record whose bytes run past the end of its
// file marks the torn tail — the file is truncated back to the last
// intact record and appending resumes there. Payload CRCs are checked
// lazily on Get (scanning gigabytes of payloads at boot would defeat
// the point of a fast warm restart); a record that fails its CRC is
// dropped from the index and reads as a miss, never as bad data.
//
// The byte budget is enforced at segment granularity: when the store
// outgrows MaxBytes, the oldest sealed segments are deleted whole.
// There is no compaction — re-Putting a key appends a fresh record
// that shadows the old one, and dead space is reclaimed when its
// segment ages out. Records are not fsynced individually: losing the
// last few writes in a crash costs recomputes, not correctness.
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"jumpslice/internal/obs"
)

// Key addresses one record: the caller's 32-byte content hash.
type Key [32]byte

// headerSize is the fixed per-record header: key (32) + payload
// length (4, LE) + payload CRC32-IEEE (4, LE).
const headerSize = 32 + 4 + 4

const (
	segPrefix = "seg-"
	segSuffix = ".dat"
)

// Defaults for Options zero values.
const (
	DefaultMaxBytes     = 256 << 20
	DefaultSegmentBytes = 8 << 20
)

// Options configures a Store.
type Options struct {
	// Dir is the segment directory; created if absent. Required.
	Dir string
	// MaxBytes is the total on-disk budget (<= 0 means
	// DefaultMaxBytes). Enforced at segment granularity: oldest sealed
	// segments are deleted whole when the store outgrows it.
	MaxBytes int64
	// SegmentBytes is the roll threshold for the active segment (<= 0
	// means DefaultSegmentBytes).
	SegmentBytes int64
	// MaxRecordBytes bounds one payload (<= 0 means 16 MiB); larger
	// Puts are rejected rather than letting one record pin a segment.
	MaxRecordBytes int64
	// Recorder receives the disk.* counters and gauges.
	Recorder obs.Recorder
}

// Stats is a point-in-time account of the store.
type Stats struct {
	Segments  int   `json:"segments"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Writes    int64 `json:"writes"`
	Corrupt   int64 `json:"corrupt"`
	Truncated int64 `json:"truncated"`
	Reclaimed int64 `json:"reclaimed_segments"`
}

// loc points the index at one record's payload.
type loc struct {
	seg int64
	off int64 // payload offset within the segment
	len uint32
	crc uint32
}

// segment is one on-disk file's bookkeeping.
type segment struct {
	id    int64
	path  string
	bytes int64
}

// Store is the segment store. All methods are safe for concurrent
// use; reads and writes serialize on one mutex — the tier sits under
// an in-memory cache, so it sees misses and evictions, not the hot
// path.
type Store struct {
	opts Options

	mu     sync.Mutex
	index  map[Key]loc
	sealed []*segment // oldest first
	active *segment
	file   *os.File // active segment, opened for append
	nextID int64
	closed bool
	stats  Stats

	m metrics
}

type metrics struct {
	hits, misses, writes *obs.Counter
	corrupt, reclaimed   *obs.Counter
	bytes, entries       *obs.Gauge
	segments             *obs.Gauge
}

func (m *metrics) resolve(rec obs.Recorder) {
	m.hits = rec.Counter("disk.hits")
	m.misses = rec.Counter("disk.misses")
	m.writes = rec.Counter("disk.writes")
	m.corrupt = rec.Counter("disk.corrupt")
	m.reclaimed = rec.Counter("disk.reclaimed_segments")
	m.bytes = rec.Gauge("disk.resident_bytes")
	m.entries = rec.Gauge("disk.entries")
	m.segments = rec.Gauge("disk.segments")
}

// Open loads (or creates) the store at opts.Dir, recovering from any
// torn tail left by a crash.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("disk: Dir is required")
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = 16 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	s := &Store{
		opts:   opts,
		index:  map[Key]loc{},
		nextID: 1,
	}
	s.m.resolve(obs.OrNop(opts.Recorder))
	s.stats.MaxBytes = opts.MaxBytes

	ids, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		seg := &segment{id: id, path: segPath(opts.Dir, id)}
		if err := s.scan(seg); err != nil {
			return nil, err
		}
		s.sealed = append(s.sealed, seg)
		s.nextID = id + 1
	}
	// The newest segment stays active: reopen it for append so a
	// restart continues the file instead of leaking a short segment per
	// boot.
	if n := len(s.sealed); n > 0 {
		s.active = s.sealed[n-1]
		s.sealed = s.sealed[:n-1]
		s.file, err = os.OpenFile(s.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("disk: %w", err)
		}
	} else if err := s.roll(); err != nil {
		return nil, err
	}
	s.publish()
	return s, nil
}

// listSegments returns the segment ids present in dir, ascending.
func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	var ids []int64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil || id <= 0 {
			continue // not ours; leave it alone
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids, nil
}

func segPath(dir string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, id, segSuffix))
}

// scan walks one segment's record headers, indexing intact records
// and truncating the file at the first torn one. Payload CRCs are not
// verified here — Get checks them lazily.
func (s *Store) scan(seg *segment) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	size := fi.Size()

	var off int64
	var hdr [headerSize]byte
	for off+headerSize <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			break
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[32:36]))
		// Put never writes empty records, so plen == 0 is zero-filled
		// garbage from a torn write, not data.
		if plen == 0 || plen > s.opts.MaxRecordBytes || off+headerSize+plen > size {
			break // torn or nonsense record: the tail ends here
		}
		var key Key
		copy(key[:], hdr[:32])
		s.index[key] = loc{
			seg: seg.id,
			off: off + headerSize,
			len: uint32(plen),
			crc: binary.LittleEndian.Uint32(hdr[36:40]),
		}
		off += headerSize + plen
	}
	if off < size {
		// Crash-torn tail: drop the partial record so appends resume on
		// a record boundary.
		if err := os.Truncate(seg.path, off); err != nil {
			return fmt.Errorf("disk: truncating torn tail of %s: %w", seg.path, err)
		}
		s.stats.Truncated++
	}
	seg.bytes = off
	return nil
}

// roll seals the active segment (if any) and starts a new one.
// Caller holds s.mu (or is Open, pre-concurrency).
func (s *Store) roll() error {
	if s.file != nil {
		s.file.Sync()
		s.file.Close()
		s.sealed = append(s.sealed, s.active)
	}
	seg := &segment{id: s.nextID, path: segPath(s.opts.Dir, s.nextID)}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	s.nextID++
	s.active = seg
	s.file = f
	return nil
}

// Put appends a record for key. Re-putting a present key is a no-op —
// the demotion path calls Put unconditionally on every memory
// eviction, and most victims were already written through.
func (s *Store) Put(key Key, data []byte) error {
	if len(data) == 0 {
		return errors.New("disk: empty record")
	}
	if int64(len(data)) > s.opts.MaxRecordBytes {
		return fmt.Errorf("disk: record of %d bytes exceeds limit", len(data))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("disk: store is closed")
	}
	if _, ok := s.index[key]; ok {
		return nil
	}
	var hdr [headerSize]byte
	copy(hdr[:32], key[:])
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(len(data)))
	crc := crc32.ChecksumIEEE(data)
	binary.LittleEndian.PutUint32(hdr[36:40], crc)
	if _, err := s.file.Write(hdr[:]); err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	if _, err := s.file.Write(data); err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	s.index[key] = loc{seg: s.active.id, off: s.active.bytes + headerSize, len: uint32(len(data)), crc: crc}
	s.active.bytes += headerSize + int64(len(data))
	s.stats.Writes++
	s.m.writes.Add(1)
	if s.active.bytes >= s.opts.SegmentBytes {
		if err := s.roll(); err != nil {
			return err
		}
	}
	s.reclaimLocked()
	s.publish()
	return nil
}

// Get reads the record for key, verifying its CRC. A missing key or a
// corrupt record returns (nil, false) — corruption is counted and the
// record dropped, so the caller recomputes and overwrites it.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	l, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		s.m.misses.Add(1)
		return nil, false
	}
	data, err := s.readLocked(l)
	if err == nil && crc32.ChecksumIEEE(data) != l.crc {
		err = errors.New("crc mismatch")
	}
	if err != nil {
		delete(s.index, key)
		s.stats.Corrupt++
		s.stats.Misses++
		s.m.corrupt.Add(1)
		s.m.misses.Add(1)
		s.m.entries.Add(-1)
		return nil, false
	}
	s.stats.Hits++
	s.m.hits.Add(1)
	return data, true
}

// readLocked fetches one payload. The active segment reads through a
// freshly opened handle (s.file is append-only).
func (s *Store) readLocked(l loc) ([]byte, error) {
	f, err := os.Open(segPath(s.opts.Dir, l.seg))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, l.len)
	if _, err := io.ReadFull(io.NewSectionReader(f, l.off, int64(l.len)), data); err != nil {
		return nil, err
	}
	return data, nil
}

// reclaimLocked deletes the oldest sealed segments until the store
// fits its budget. The active segment is never deleted. Caller holds
// s.mu.
func (s *Store) reclaimLocked() {
	for s.totalLocked() > s.opts.MaxBytes && len(s.sealed) > 0 {
		victim := s.sealed[0]
		s.sealed = s.sealed[1:]
		os.Remove(victim.path)
		for k, l := range s.index {
			if l.seg == victim.id {
				delete(s.index, k)
			}
		}
		s.stats.Reclaimed++
		s.m.reclaimed.Add(1)
	}
}

func (s *Store) totalLocked() int64 {
	t := s.active.bytes
	for _, seg := range s.sealed {
		t += seg.bytes
	}
	return t
}

// publish refreshes the gauges from the exact ledgers. Caller holds
// s.mu.
func (s *Store) publish() {
	s.m.bytes.Set(s.totalLocked())
	s.m.entries.Set(int64(len(s.index)))
	s.m.segments.Set(int64(len(s.sealed) + 1))
}

// Contains reports whether key is indexed, without reading or
// verifying it. Debug/test use.
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Stats returns a point-in-time account of the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Segments = len(s.sealed) + 1
	st.Bytes = s.totalLocked()
	return st
}

// Close syncs and closes the active segment. The store rejects
// further use.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.file != nil {
		s.file.Sync()
		return s.file.Close()
	}
	return nil
}
