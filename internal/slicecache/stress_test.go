package slicecache_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/progen"
	"jumpslice/internal/slicecache"
)

// TestStressConcurrent is the cache's -race workout: many goroutines
// hammer a small key space with a mix of identical and distinct
// requests against a budget tight enough to force evictions. It
// asserts the three invariants the design promises:
//
//   - singleflight: each key's build runs at most once while any
//     request for it is in flight (checked with a per-key in-flight
//     flag that trips on overlap);
//   - determinism: every caller of a key receives an analysis that
//     slices that key's program identically;
//   - exact accounting: after the storm, the byte ledger equals the
//     summed cost of resident entries (Cache.VerifyAccounting), with
//     stats consistent: hits + misses + coalesced == total requests.
func TestStressConcurrent(t *testing.T) {
	const (
		keys    = 24
		workers = 16
		rounds  = 60
	)
	type prog struct {
		src   string
		prog  *lang.Program
		lines []int // expected Agrawal slice lines, computed uncached
		crit  core.Criterion
	}
	progs := make([]prog, keys)
	var budget int64
	for i := range progs {
		p := progen.Unstructured(progen.Config{Seed: int64(100 + i), Stmts: 12 + i%9})
		src := lang.Format(p, lang.PrintOptions{})
		parsed, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("key %d: reparse: %v", i, err)
		}
		wcs := progen.WriteCriteria(parsed)
		crit := core.Criterion{Var: wcs[len(wcs)-1].Var, Line: wcs[len(wcs)-1].Line}
		a := core.MustAnalyze(parsed)
		s, err := a.Agrawal(crit)
		if err != nil {
			t.Fatalf("key %d: uncached slice: %v", i, err)
		}
		progs[i] = prog{src: src, prog: parsed, lines: s.Lines(), crit: crit}
		budget += a.Footprint() + int64(len(src)) + 256
	}

	reg := obs.NewRegistry()
	// Budget for roughly a third of the working set in one shard:
	// evictions are constant, and every insert races with lookups.
	c := slicecache.New(slicecache.Options{
		MaxBytes: budget / 3,
		Shards:   1,
		Recorder: reg,
	})

	inflight := make([]atomic.Bool, keys)   // singleflight tripwire
	buildCount := make([]atomic.Int64, keys)
	build := func(i int) func(context.Context) (*core.Analysis, error) {
		return func(ctx context.Context) (*core.Analysis, error) {
			if !inflight[i].CompareAndSwap(false, true) {
				return nil, fmt.Errorf("key %d: two builds in flight", i)
			}
			defer inflight[i].Store(false)
			buildCount[i].Add(1)
			p, err := lang.Parse(progs[i].src)
			if err != nil {
				return nil, err
			}
			a, err := core.AnalyzeObservedContext(ctx, p, nil, nil)
			if err != nil {
				return nil, err
			}
			return a.Rebind(nil, nil, nil), nil
		}
	}

	var wg sync.WaitGroup
	var total atomic.Int64
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				// Zipf-ish skew: half the traffic on a quarter of the
				// keys, so identical concurrent requests are common.
				i := rng.Intn(keys)
				if rng.Intn(2) == 0 {
					i = rng.Intn(keys / 4)
				}
				a, _, err := c.Get(context.Background(), progs[i].src, build(i))
				total.Add(1)
				if err != nil {
					errc <- fmt.Errorf("worker %d round %d key %d: %w", w, r, i, err)
					return
				}
				s, err := a.Rebind(context.Background(), nil, nil).Agrawal(progs[i].crit)
				if err != nil {
					errc <- fmt.Errorf("worker %d key %d: slice: %w", w, i, err)
					return
				}
				got := s.Lines()
				if len(got) != len(progs[i].lines) {
					errc <- fmt.Errorf("worker %d key %d: slice %v, want %v", w, i, got, progs[i].lines)
					return
				}
				for j := range got {
					if got[j] != progs[i].lines[j] {
						errc <- fmt.Errorf("worker %d key %d: slice %v, want %v", w, i, got, progs[i].lines)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if got := st.Hits + st.Misses + st.Coalesced; got != total.Load() {
		t.Errorf("hits(%d)+misses(%d)+coalesced(%d) = %d, want %d requests",
			st.Hits, st.Misses, st.Coalesced, got, total.Load())
	}
	if st.Evictions == 0 {
		t.Error("stress budget produced no evictions; tighten MaxBytes")
	}
	// Every build either ran under the singleflight guard or the
	// tripwire above would have failed the Get; also require that the
	// mirrored gauges agree with the exact ledger once quiescent.
	if got := reg.Gauge("cache.resident_bytes").Value(); got != st.Bytes {
		t.Errorf("resident_bytes gauge %d != stats bytes %d", got, st.Bytes)
	}
	if got := reg.Gauge("cache.entries").Value(); got != int64(st.Entries) {
		t.Errorf("entries gauge %d != stats entries %d", got, st.Entries)
	}
	var rebuilds int64
	for i := range buildCount {
		rebuilds += buildCount[i].Load()
	}
	if rebuilds != st.Misses {
		t.Errorf("%d builds ran vs %d misses recorded", rebuilds, st.Misses)
	}
}

// TestStressCancellation mixes canceled and patient waiters on the
// same keys under -race: canceled waiters must detach cleanly, patient
// ones must always receive a correct analysis.
func TestStressCancellation(t *testing.T) {
	p := progen.Structured(progen.Config{Seed: 7, Stmts: 30})
	src := lang.Format(p, lang.PrintOptions{})
	build := func(ctx context.Context) (*core.Analysis, error) {
		pp, err := lang.Parse(src)
		if err != nil {
			return nil, err
		}
		a, err := core.AnalyzeObservedContext(ctx, pp, nil, nil)
		if err != nil {
			return nil, err
		}
		return a.Rebind(nil, nil, nil), nil
	}
	c := slicecache.New(slicecache.Options{})
	const workers = 12
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				if w%3 == 0 {
					// Impatient: cancel immediately and tolerate
					// either outcome — a context error or a result
					// that won the race.
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					if a, _, err := c.Get(ctx, src, build); err == nil && a == nil {
						errc <- fmt.Errorf("worker %d: nil analysis with nil error", w)
						return
					}
					continue
				}
				a, _, err := c.Get(context.Background(), src, build)
				if err != nil {
					errc <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if a == nil {
					errc <- fmt.Errorf("worker %d: nil analysis", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}
