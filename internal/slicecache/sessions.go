package slicecache

import (
	"crypto/sha256"

	"jumpslice/internal/core"
)

// Session entries.
//
// The daemon's editor sessions keep a warm core.Analysis per open
// document so a one-line PATCH can re-slice incrementally instead of
// from scratch. Those analyses live in this cache, under explicit
// per-session keys, rather than in a side table: sessions and plain
// content entries share one byte budget and one LRU, so a burst of
// anonymous /slice traffic can push an idle session out (the daemon
// rebuilds it on the next PATCH) and a heavy session load sheds cold
// content entries — neither population can starve the other beyond
// the budget they jointly own.

// sessionKeyVersion domain-separates session keys from content keys:
// no session id can collide with any source hash, because the two key
// spaces hash different leading tags.
const sessionKeyVersion = "jumpslice/session/v1\x00"

// SessionKey derives the cache key a session's analysis is stored
// under.
func SessionKey(id string) Key {
	h := sha256.New()
	h.Write([]byte(sessionKeyVersion))
	h.Write([]byte(id))
	var k Key
	h.Sum(k[:0])
	return k
}

// PutKey stores a ready analysis under an explicit key, replacing any
// previous entry. The entry is byte-accounted like a content entry
// (source length plus the analysis footprint) and competes in the
// same LRU, so it may be evicted under pressure — callers must treat
// GetKey misses as "rebuild", not as errors.
func (c *Cache) PutKey(k Key, source string, a *core.Analysis) {
	sh := c.shardOf(k)
	sh.mu.Lock()
	c.insertLocked(sh, &entry{key: k, a: a, cost: int64(len(source)) + a.Footprint() + entryOverhead})
	sh.mu.Unlock()
}

// GetKey returns the analysis stored under k, if still resident, and
// refreshes its LRU position. Lookups count as cache hits/misses like
// content traffic.
func (c *Cache) GetKey(k Key) (*core.Analysis, bool) {
	sh := c.shardOf(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil || e.err != nil {
		sh.mu.Unlock()
		c.count(&c.stats.Misses, c.m.misses)
		return nil, false
	}
	sh.touchLocked(e)
	a := e.a
	sh.mu.Unlock()
	c.count(&c.stats.Hits, c.m.hits)
	return a, true
}

// DeleteKey drops the entry under k, refunding its bytes; it reports
// whether an entry was resident. A deliberate delete is not an
// eviction, so only the resident gauges move.
func (c *Cache) DeleteKey(k Key) bool {
	sh := c.shardOf(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e != nil {
		sh.removeLocked(e)
		c.m.bytes.Add(-e.cost)
		c.m.entries.Add(-1)
	}
	sh.mu.Unlock()
	return e != nil
}
