// Package slicecache is a content-addressed cache of completed slice
// analyses. The repeated-query workload the daemon and the batch
// engines serve — many clients submitting the same source text —
// re-runs the full Agrawal pipeline (CFG → postdominators → CDG →
// dataflow → PDG → LST → worklists) per request even though the
// resulting core.Analysis is immutable after Analyze and one analysis
// serves unlimited criteria and algorithms. This package memoizes that
// work:
//
//   - Keys are content hashes: SHA-256 over the program source plus a
//     version tag naming the algorithm set, so a pipeline change
//     invalidates every stale entry by construction (KeyOf).
//   - Storage is a sharded, byte-accounted LRU. Each shard owns a
//     fraction of the byte budget behind its own mutex, so concurrent
//     requests for different programs do not serialize; entry cost is
//     the analysis's deterministic Footprint plus the source length,
//     and the ledger — Stats().Bytes — always equals the sum of
//     resident entry costs.
//   - A singleflight layer coalesces concurrent identical requests: N
//     goroutines asking for the same key trigger exactly one analysis
//     and share the result. Each waiter keeps its own context — a
//     canceled waiter detaches without killing the shared computation,
//     and the computation itself is canceled only when every waiter
//     has detached.
//   - Negative entries cache build errors (parse failures, size-limit
//     rejections) under a short TTL, so a flood of the same malformed
//     input is answered from memory instead of re-parsed. Context
//     cancellation errors are never cached: they describe the caller,
//     not the content.
//
// Cached analyses are stored detached (no context, no tracer); callers
// bind a cached Analysis to their own request with core.Rebind before
// slicing. The cache reports hits, misses, coalesced waiters, negative
// hits, evictions and resident bytes both through Stats and, when an
// obs.Recorder is attached, through the metric names pinned by the
// Prometheus goldens (jumpslice_cache_hits_total and friends).
package slicecache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"jumpslice/internal/core"
	"jumpslice/internal/obs"
)

// keyVersion names the analysis pipeline whose results are cached. It
// is hashed into every key, so bumping it (when the algorithm set or
// the Analysis representation changes shape) orphans all old entries
// rather than serving stale analyses.
const keyVersion = "jumpslice/agrawal-pipeline/v1\x00"

// Key is the content address of one cached analysis: SHA-256 over the
// version tag and the program source.
type Key [sha256.Size]byte

// KeyOf hashes a program source into its cache key.
func KeyOf(source string) Key {
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte(source))
	var k Key
	h.Sum(k[:0])
	return k
}

// Hex renders the key as lowercase hex, the form ETags and debug
// endpoints expose.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Outcome classifies how one Get was answered.
type Outcome int

const (
	// Miss: this call ran the analysis (it was the flight leader).
	Miss Outcome = iota
	// Hit: answered from a resident entry, positive or negative.
	Hit
	// Coalesced: joined another caller's in-flight analysis.
	Coalesced
)

// String names the outcome as the daemon's X-Cache header reports it.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "miss"
}

// Options configures a Cache.
type Options struct {
	// MaxBytes is the total byte budget across all shards; <= 0 means
	// DefaultMaxBytes. Each shard owns MaxBytes/Shards.
	MaxBytes int64
	// Shards is the shard count, rounded up to a power of two; <= 0
	// means DefaultShards.
	Shards int
	// NegTTL bounds how long a negative (error) entry is served;
	// <= 0 means DefaultNegTTL.
	NegTTL time.Duration
	// Recorder, when non-nil, receives the cache's counters and
	// gauges (cache.hits, cache.misses, cache.coalesced,
	// cache.evictions, cache.neg_hits, cache.resident_bytes,
	// cache.entries).
	Recorder obs.Recorder
	// Now overrides the clock (negative-TTL tests); nil means
	// time.Now.
	Now func() time.Time
}

// Defaults for Options zero values.
const (
	DefaultMaxBytes = 64 << 20
	DefaultShards   = 16
	DefaultNegTTL   = 2 * time.Second
)

// entryOverhead charges the map slot, LRU links and key storage per
// resident entry; negative entries additionally keep their error
// string.
const entryOverhead = 256

// Stats is a point-in-time account of the cache. Bytes and Entries
// are exact: Bytes always equals the summed cost of resident entries.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	NegHits   int64 `json:"neg_hits"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// Cache is the sharded content-addressed analysis cache. All methods
// are safe for concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64
	negTTL time.Duration
	now    func() time.Time

	mu    sync.Mutex // guards the aggregate stats below
	stats Stats

	m cacheMetrics
}

// cacheMetrics is the pre-resolved instrument set; all fields are nil
// under obs.Nop, and every obs method is nil-safe.
type cacheMetrics struct {
	hits, misses, coalesced *obs.Counter
	negHits, evictions      *obs.Counter
	bytes, entries          *obs.Gauge
}

func (m *cacheMetrics) resolve(rec obs.Recorder) {
	m.hits = rec.Counter("cache.hits")
	m.misses = rec.Counter("cache.misses")
	m.coalesced = rec.Counter("cache.coalesced")
	m.negHits = rec.Counter("cache.neg_hits")
	m.evictions = rec.Counter("cache.evictions")
	m.bytes = rec.Gauge("cache.resident_bytes")
	m.entries = rec.Gauge("cache.entries")
}

// entry is one resident cache line: a detached analysis (positive) or
// a build error with an expiry (negative). Entries form a per-shard
// intrusive LRU list, most recent at head.
type entry struct {
	key  Key
	a    *core.Analysis
	err  error
	cost int64
	exp  time.Time // zero for positive entries
	prev *entry
	next *entry
}

// flight is one in-progress analysis shared by every concurrent Get
// of its key. waiters is guarded by the owning shard's mutex; a and
// err are published by closing done.
type flight struct {
	done    chan struct{}
	a       *core.Analysis
	err     error
	waiters int
	cancel  context.CancelFunc
}

// shard is one lock domain: a fraction of the key space and the byte
// budget.
type shard struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[Key]*entry
	flights map[Key]*flight
	head    *entry // most recently used
	tail    *entry // least recently used; next eviction victim
}

// New builds a Cache from opts (the zero Options is usable).
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	if opts.NegTTL <= 0 {
		opts.NegTTL = DefaultNegTTL
	}
	c := &Cache{
		shards: make([]*shard, shards),
		mask:   uint64(shards - 1),
		negTTL: opts.NegTTL,
		now:    opts.Now,
	}
	if c.now == nil {
		c.now = time.Now
	}
	perShard := opts.MaxBytes / int64(shards)
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			max:     perShard,
			entries: map[Key]*entry{},
			flights: map[Key]*flight{},
		}
	}
	c.stats.MaxBytes = perShard * int64(shards)
	c.m.resolve(obs.OrNop(opts.Recorder))
	return c
}

// shardOf routes a key to its shard by the key's leading bytes —
// SHA-256 output is uniform, so any byte window balances the shards.
func (c *Cache) shardOf(k Key) *shard {
	idx := uint64(k[0]) | uint64(k[1])<<8 | uint64(k[2])<<16 | uint64(k[3])<<24
	return c.shards[idx&c.mask]
}

// Get returns the analysis of source, running build at most once per
// key across all concurrent callers. The returned Outcome reports how
// the call was answered. ctx cancels only this caller's wait: an
// in-flight shared analysis keeps running while any other waiter
// remains, and is canceled when the last one detaches. The returned
// analysis is detached — Rebind it before slicing on behalf of a
// request. A non-context build error is returned to every waiter and
// cached negatively for the configured TTL.
func (c *Cache) Get(ctx context.Context, source string, build func(context.Context) (*core.Analysis, error)) (*core.Analysis, Outcome, error) {
	key := KeyOf(source)
	sh := c.shardOf(key)

	sh.mu.Lock()
	if e := sh.entries[key]; e != nil {
		if e.err != nil && c.now().After(e.exp) {
			c.evictLocked(sh, e) // expired negative entry: rebuild below
		} else {
			sh.touchLocked(e)
			a, err := e.a, e.err
			sh.mu.Unlock()
			if err != nil {
				c.count(&c.stats.NegHits, c.m.negHits)
				return nil, Hit, err
			}
			c.count(&c.stats.Hits, c.m.hits)
			return a, Hit, nil
		}
	}
	if f := sh.flights[key]; f != nil {
		f.waiters++
		sh.mu.Unlock()
		c.count(&c.stats.Coalesced, c.m.coalesced)
		return c.wait(ctx, sh, f, Coalesced)
	}
	// Miss: this caller leads. The build runs under its own cancelable
	// context rooted in Background, so the leader's own cancellation
	// does not take the shared computation down with it.
	bctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	sh.flights[key] = f
	sh.mu.Unlock()
	c.count(&c.stats.Misses, c.m.misses)
	go c.run(bctx, sh, key, f, int64(len(source)), build)
	return c.wait(ctx, sh, f, Miss)
}

// run executes one flight's build and publishes the result: into the
// LRU (positively or negatively) and to every waiter via done.
func (c *Cache) run(bctx context.Context, sh *shard, key Key, f *flight, srcLen int64, build func(context.Context) (*core.Analysis, error)) {
	a, err := build(bctx)
	if err == nil && a == nil {
		err = errors.New("slicecache: build returned neither analysis nor error")
	}
	f.a, f.err = a, err

	sh.mu.Lock()
	delete(sh.flights, key)
	switch {
	case err == nil:
		c.insertLocked(sh, &entry{key: key, a: a, cost: srcLen + a.Footprint() + entryOverhead})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// An abandoned build says nothing about the content.
	default:
		c.insertLocked(sh, &entry{
			key:  key,
			err:  err,
			cost: srcLen + int64(len(err.Error())) + entryOverhead,
			exp:  c.now().Add(c.negTTL),
		})
	}
	sh.mu.Unlock()
	close(f.done)
	f.cancel() // release the build context; a no-op if already canceled
}

// wait blocks until the flight completes or ctx is canceled. A
// completed flight always wins the race against cancellation, so a
// result that is ready is never thrown away.
func (c *Cache) wait(ctx context.Context, sh *shard, f *flight, out Outcome) (*core.Analysis, Outcome, error) {
	var cancelc <-chan struct{}
	if ctx != nil {
		cancelc = ctx.Done()
	}
	select {
	case <-f.done:
		return f.a, out, f.err
	case <-cancelc:
		select {
		case <-f.done:
			return f.a, out, f.err
		default:
		}
		sh.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		sh.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, out, ctx.Err()
	}
}

// count bumps one aggregate stat and its mirror counter.
func (c *Cache) count(field *int64, ctr *obs.Counter) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
	ctr.Add(1)
}

// evictLocked removes e from its shard and settles every ledger: the
// eviction counter and the resident-bytes/entries gauges move in the
// same critical section as the shard's own byte count, so the gauges
// always equal the exact cross-shard sums. Caller holds sh.mu.
func (c *Cache) evictLocked(sh *shard, e *entry) {
	sh.removeLocked(e)
	c.count(&c.stats.Evictions, c.m.evictions)
	c.m.bytes.Add(-e.cost)
	c.m.entries.Add(-1)
}

// insertLocked adds e to the shard (replacing any stale entry with
// the same key), charges its cost, and evicts from the LRU tail until
// the shard fits its budget. An entry costlier than the whole shard
// budget is inserted and immediately evicted — returned to its
// waiters but never resident. Caller holds sh.mu.
func (c *Cache) insertLocked(sh *shard, e *entry) {
	if old := sh.entries[e.key]; old != nil {
		c.evictLocked(sh, old)
	}
	sh.entries[e.key] = e
	sh.pushFrontLocked(e)
	sh.bytes += e.cost
	c.m.bytes.Add(e.cost)
	c.m.entries.Add(1)
	for sh.bytes > sh.max && sh.tail != nil {
		c.evictLocked(sh, sh.tail)
	}
}

// touchLocked moves e to the LRU head. Caller holds sh.mu.
func (sh *shard) touchLocked(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlinkLocked(e)
	sh.pushFrontLocked(e)
}

// pushFrontLocked links e as the most recently used entry.
func (sh *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlinkLocked removes e from the LRU list only.
func (sh *shard) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// removeLocked evicts e: unlinks it, drops it from the map, refunds
// its cost. Caller holds sh.mu and accounts the eviction.
func (sh *shard) removeLocked(e *entry) {
	sh.unlinkLocked(e)
	delete(sh.entries, e.key)
	sh.bytes -= e.cost
}

// Stats returns a consistent point-in-time account: the counters and
// an exact sum of resident entries and bytes across shards.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Bytes += sh.bytes
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// Contains reports whether a positive entry for source is resident,
// without touching LRU order or stats. Debug/test use.
func (c *Cache) Contains(source string) bool {
	key := KeyOf(source)
	sh := c.shardOf(key)
	sh.mu.Lock()
	e := sh.entries[key]
	ok := e != nil && e.err == nil
	sh.mu.Unlock()
	return ok
}
