package slicecache

import (
	"bytes"
	"fmt"
	"testing"

	"jumpslice/internal/obs"
	"jumpslice/internal/slicecache/disk"
)

func resultKeyN(n int) ResultKey {
	return ResultKeyOf("src", fmt.Sprintf("v%d", n), "10", "hrb", "false")
}

func TestResultKeyOfSeparatesFields(t *testing.T) {
	if ResultKeyOf("ab", "c") == ResultKeyOf("a", "bc") {
		t.Fatal("field boundaries not hashed")
	}
	if ResultKeyOf("a", "b") != ResultKeyOf("a", "b") {
		t.Fatal("key not deterministic")
	}
}

func TestResultCacheMemoryOnly(t *testing.T) {
	rc := NewResultCache(ResultOptions{MaxBytes: 1 << 20})
	if _, src := rc.Get(resultKeyN(1)); src != ResultMiss {
		t.Fatalf("empty cache returned %v", src)
	}
	rc.Put(resultKeyN(1), []byte("record-1"))
	data, src := rc.Get(resultKeyN(1))
	if src != ResultMemory || string(data) != "record-1" {
		t.Fatalf("got %q via %v", data, src)
	}
}

// Memory evictions demote to disk; a subsequent Get promotes back and
// reports the disk tier.
func TestResultCacheEvictionDemotesAndPromotes(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := disk.Open(disk.Options{Dir: t.TempDir(), Recorder: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Budget fits ~3 records of 1000 bytes (+128 overhead each).
	rc := NewResultCache(ResultOptions{MaxBytes: 3400, Disk: store, Recorder: reg})
	payload := func(n int) []byte { return bytes.Repeat([]byte{byte(n)}, 1000) }
	for i := 0; i < 6; i++ {
		rc.Put(resultKeyN(i), payload(i))
	}
	if rc.Contains(resultKeyN(0)) {
		t.Fatal("oldest record still in memory after budget overrun")
	}
	data, src := rc.Get(resultKeyN(0))
	if src != ResultDisk || !bytes.Equal(data, payload(0)) {
		t.Fatalf("evicted record came back via %v", src)
	}
	if !rc.Contains(resultKeyN(0)) {
		t.Fatal("disk hit not promoted into memory")
	}
	if _, src := rc.Get(resultKeyN(0)); src != ResultMemory {
		t.Fatalf("promoted record served via %v", src)
	}
	if reg.Counter("result.disk_hits").Value() != 1 {
		t.Fatal("disk hit not counted")
	}
	st := rc.ResultStats()
	if st.Bytes > st.Max {
		t.Fatalf("memory tier over budget: %+v", st)
	}
}

// Write-through means the hot set — not just the evicted part —
// survives a restart: a fresh ResultCache over a reopened store warm-
// hits a record that was never evicted from memory.
func TestResultCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := disk.Open(disk.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rc := NewResultCache(ResultOptions{MaxBytes: 1 << 20, Disk: store})
	rc.Put(resultKeyN(7), []byte("hot-record"))
	if _, src := rc.Get(resultKeyN(7)); src != ResultMemory {
		t.Fatal("record should be memory-resident pre-restart")
	}
	store.Close()

	store2, err := disk.Open(disk.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	rc2 := NewResultCache(ResultOptions{MaxBytes: 1 << 20, Disk: store2})
	data, src := rc2.Get(resultKeyN(7))
	if src != ResultDisk || string(data) != "hot-record" {
		t.Fatalf("warm restart missed: %q via %v", data, src)
	}
}
