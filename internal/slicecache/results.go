package slicecache

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"jumpslice/internal/obs"
	"jumpslice/internal/slicecache/disk"
)

// This file is the result-record tier: where the analysis Cache above
// memoizes the expensive middle of the pipeline (a *core.Analysis,
// which is pointer-rich and deliberately not serializable), the
// ResultCache memoizes finished answers — the canonical JSON of one
// slice response — keyed by the full request tuple. Serialized bytes
// are what can cross process boundaries, so this tier is what peer
// fill ships between nodes and what the disk tier persists across
// restarts.

// resultKeyVersion names the response encoding whose records are
// cached; bumping it orphans every stale record on disk and in peers.
const resultKeyVersion = "jumpslice/result-record/v1\x00"

// ResultKey is the content address of one finished result: SHA-256
// over the version tag and the request tuple.
type ResultKey [sha256.Size]byte

// ResultKeyOf hashes the request tuple (source, var, line, algo,
// explain, ... — the same fields the daemon's ETag covers) into a
// result key. Fields are NUL-separated so no two tuples collide by
// concatenation.
func ResultKeyOf(fields ...string) ResultKey {
	h := sha256.New()
	h.Write([]byte(resultKeyVersion))
	for _, f := range fields {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	var k ResultKey
	h.Sum(k[:0])
	return k
}

// Hex renders the key as lowercase hex, the form the cluster's
// /internal/fill?key= parameter carries.
func (k ResultKey) Hex() string { return hex.EncodeToString(k[:]) }

// ResultSource reports which tier answered a ResultCache.Get.
type ResultSource int

const (
	// ResultMiss: neither tier holds the key.
	ResultMiss ResultSource = iota
	// ResultMemory: answered from the in-memory LRU.
	ResultMemory
	// ResultDisk: answered from the disk tier (and promoted).
	ResultDisk
)

// ResultOptions configures a ResultCache.
type ResultOptions struct {
	// MaxBytes is the in-memory budget (<= 0 means 32 MiB).
	MaxBytes int64
	// Disk, when non-nil, is the spill tier: every Put writes through
	// (so hot records survive a restart, not just evicted ones),
	// memory evictions demote, and disk hits promote back into memory.
	Disk *disk.Store
	// Recorder receives the result.* counters and gauges.
	Recorder obs.Recorder
}

// resultEntry is one resident record in the memory LRU.
type resultEntry struct {
	key  ResultKey
	data []byte
	prev *resultEntry
	next *resultEntry
}

// ResultCache is a two-tier store of serialized result records:
// byte-budgeted memory LRU over an optional disk segment store. All
// methods are safe for concurrent use.
type ResultCache struct {
	max  int64
	disk *disk.Store

	mu      sync.Mutex
	entries map[ResultKey]*resultEntry
	bytes   int64
	head    *resultEntry
	tail    *resultEntry

	hits, misses, diskHits *obs.Counter
	puts, evictions        *obs.Counter
	bytesG, entriesG       *obs.Gauge
}

// resultOverhead charges map slot, links and key per resident record.
const resultOverhead = 128

// NewResultCache builds a ResultCache from opts (the zero
// ResultOptions is usable, yielding a memory-only cache).
func NewResultCache(opts ResultOptions) *ResultCache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 32 << 20
	}
	rc := &ResultCache{
		max:     opts.MaxBytes,
		disk:    opts.Disk,
		entries: map[ResultKey]*resultEntry{},
	}
	rec := obs.OrNop(opts.Recorder)
	rc.hits = rec.Counter("result.hits")
	rc.misses = rec.Counter("result.misses")
	rc.diskHits = rec.Counter("result.disk_hits")
	rc.puts = rec.Counter("result.puts")
	rc.evictions = rec.Counter("result.evictions")
	rc.bytesG = rec.Gauge("result.resident_bytes")
	rc.entriesG = rec.Gauge("result.entries")
	return rc
}

// Get returns the record for key and the tier that held it. A disk
// hit is promoted back into memory.
func (rc *ResultCache) Get(key ResultKey) ([]byte, ResultSource) {
	rc.mu.Lock()
	if e := rc.entries[key]; e != nil {
		rc.touchLocked(e)
		data := e.data
		rc.mu.Unlock()
		rc.hits.Add(1)
		return data, ResultMemory
	}
	rc.mu.Unlock()
	if rc.disk != nil {
		if data, ok := rc.disk.Get(disk.Key(key)); ok {
			rc.diskHits.Add(1)
			rc.insert(key, data) // promote
			return data, ResultDisk
		}
	}
	rc.misses.Add(1)
	return nil, ResultMiss
}

// Contains reports whether key is resident in memory, without
// touching LRU order. Debug/test use.
func (rc *ResultCache) Contains(key ResultKey) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.entries[key] != nil
}

// Put stores a record in memory and writes it through to the disk
// tier, so a restart finds the hot set on disk — not only the part
// that happened to be evicted first.
func (rc *ResultCache) Put(key ResultKey, data []byte) {
	rc.puts.Add(1)
	rc.insert(key, data)
	if rc.disk != nil {
		rc.disk.Put(disk.Key(key), data) // best-effort; errors cost warmth only
	}
}

// insert adds (or refreshes) a memory entry and evicts from the LRU
// tail to fit the budget. Evictions demote to disk — a no-op for
// records already written through.
func (rc *ResultCache) insert(key ResultKey, data []byte) {
	cost := int64(len(data)) + resultOverhead
	if cost > rc.max {
		return // larger than the whole tier: skip memory, keep disk copy
	}
	type demotion struct {
		key  ResultKey
		data []byte
	}
	var demote []demotion
	rc.mu.Lock()
	if old := rc.entries[key]; old != nil {
		rc.removeLocked(old)
	}
	e := &resultEntry{key: key, data: data}
	rc.entries[key] = e
	rc.pushFrontLocked(e)
	rc.bytes += cost
	rc.bytesG.Add(cost)
	rc.entriesG.Add(1)
	for rc.bytes > rc.max && rc.tail != nil {
		victim := rc.tail
		rc.removeLocked(victim)
		rc.evictions.Add(1)
		if rc.disk != nil {
			demote = append(demote, demotion{victim.key, victim.data})
		}
	}
	rc.mu.Unlock()
	for _, d := range demote {
		rc.disk.Put(disk.Key(d.key), d.data)
	}
}

// removeLocked unlinks and uncharges e. Caller holds rc.mu.
func (rc *ResultCache) removeLocked(e *resultEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		rc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		rc.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(rc.entries, e.key)
	cost := int64(len(e.data)) + resultOverhead
	rc.bytes -= cost
	rc.bytesG.Add(-cost)
	rc.entriesG.Add(-1)
}

// touchLocked moves e to the LRU head. Caller holds rc.mu.
func (rc *ResultCache) touchLocked(e *resultEntry) {
	if rc.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		rc.tail = e.prev
	}
	e.prev = nil
	e.next = rc.head
	if rc.head != nil {
		rc.head.prev = e
	}
	rc.head = e
	if rc.tail == nil {
		rc.tail = e
	}
}

// pushFrontLocked links e as most recently used. Caller holds rc.mu.
func (rc *ResultCache) pushFrontLocked(e *resultEntry) {
	e.prev = nil
	e.next = rc.head
	if rc.head != nil {
		rc.head.prev = e
	}
	rc.head = e
	if rc.tail == nil {
		rc.tail = e
	}
}

// ResultStats is a point-in-time account of the memory tier.
type ResultStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Max     int64 `json:"max_bytes"`
}

// ResultStats returns the memory tier's ledgers (the disk tier
// reports its own Stats).
func (rc *ResultCache) ResultStats() ResultStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResultStats{Entries: len(rc.entries), Bytes: rc.bytes, Max: rc.max}
}
