package slicecache_test

import (
	"context"
	"fmt"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/exps"
	"jumpslice/internal/lang"
	"jumpslice/internal/progen"
	"jumpslice/internal/slicecache"
)

// TestCachedMatchesUncached is the end-to-end soundness property: for
// 240 generated programs (120 seeds from each corpus) and every
// algorithm the experiments sweep, slicing through the cache yields
// byte-identical results to slicing a freshly analyzed program — the
// same slice lines and the same materialized program text. The cache
// is shared across the corpus, so later seeds also exercise the hit
// path (every program is queried twice: miss then hit).
func TestCachedMatchesUncached(t *testing.T) {
	cache := slicecache.New(slicecache.Options{})
	corpora := []struct {
		name string
		gen  func(progen.Config) *lang.Program
	}{
		{"structured", progen.Structured},
		{"unstructured", progen.Unstructured},
	}
	for _, corpus := range corpora {
		t.Run(corpus.name, func(t *testing.T) {
			for seed := int64(0); seed < 120; seed++ {
				// Both sides analyze the same source text: the cache
				// key is the formatted program, so the uncached
				// reference parses it back too (progen's AST and its
				// print/parse round trip may order statement labels
				// differently, which is irrelevant to caching).
				src := lang.Format(corpus.gen(progen.Config{Seed: seed, Stmts: 30}), lang.PrintOptions{})
				p, err := lang.Parse(src)
				if err != nil {
					t.Fatalf("seed %d: reparse: %v", seed, err)
				}
				wcs := progen.WriteCriteria(p)
				if len(wcs) == 0 {
					continue
				}
				wc := wcs[len(wcs)-1]
				crit := core.Criterion{Var: wc.Var, Line: wc.Line}

				fresh, err := core.Analyze(p)
				if err != nil {
					t.Fatalf("seed %d: analyze: %v", seed, err)
				}
				build := func(ctx context.Context) (*core.Analysis, error) {
					pp, err := lang.Parse(src)
					if err != nil {
						return nil, err
					}
					a, err := core.AnalyzeObservedContext(ctx, pp, nil, nil)
					if err != nil {
						return nil, err
					}
					return a.Rebind(nil, nil, nil), nil
				}
				for pass, want := range []slicecache.Outcome{slicecache.Miss, slicecache.Hit} {
					cached, out, err := cache.Get(context.Background(), src, build)
					if err != nil {
						t.Fatalf("seed %d pass %d: cache.Get: %v", seed, pass, err)
					}
					if out != want {
						t.Fatalf("seed %d pass %d: outcome %v, want %v", seed, pass, out, want)
					}
					view := cached.Rebind(context.Background(), nil, nil)
					for _, algo := range exps.Algorithms() {
						if algo.Structured && corpus.name != "structured" {
							continue
						}
						ws, werr := algo.Run(fresh, crit)
						gs, gerr := algo.Run(view, crit)
						if (werr == nil) != (gerr == nil) {
							t.Fatalf("seed %d %s: error mismatch: uncached %v, cached %v",
								seed, algo.Name, werr, gerr)
						}
						if werr != nil {
							continue
						}
						if w, g := fmt.Sprint(ws.Lines()), fmt.Sprint(gs.Lines()); w != g {
							t.Fatalf("seed %d %s: cached slice lines %s, uncached %s",
								seed, algo.Name, g, w)
						}
						if w, g := ws.Format(), gs.Format(); w != g {
							t.Fatalf("seed %d %s: materialized slice differs\nuncached:\n%s\ncached:\n%s",
								seed, algo.Name, w, g)
						}
					}
				}
			}
		})
	}
	st := cache.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("property run exercised no %s path: %+v",
			map[bool]string{true: "miss", false: "hit"}[st.Misses == 0], st)
	}
	if err := cache.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}
