package slicecache_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"jumpslice/internal/core"
	"jumpslice/internal/lang"
	"jumpslice/internal/slicecache"
)

// analyzeSrc builds a detached analysis of src, as the daemon stores
// into a session slot.
func analyzeSrc(t *testing.T, src string) *core.Analysis {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.AnalyzeObservedContext(context.Background(), p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a.Rebind(nil, nil, nil)
}

func TestSessionKeyDomainSeparation(t *testing.T) {
	if slicecache.SessionKey("abc") == slicecache.KeyOf("abc") {
		t.Fatal("session key collides with the content key of the same string")
	}
	if slicecache.SessionKey("a") == slicecache.SessionKey("b") {
		t.Fatal("distinct session ids share a key")
	}
	if slicecache.SessionKey("a") != slicecache.SessionKey("a") {
		t.Fatal("same session id, different keys")
	}
}

func TestSessionPutGetDelete(t *testing.T) {
	const src = "read(x);\nwrite(x);\n"
	a := analyzeSrc(t, src)
	c := slicecache.New(slicecache.Options{})
	k := slicecache.SessionKey("s1")

	if got, ok := c.GetKey(k); ok || got != nil {
		t.Fatal("GetKey on an empty cache returned an entry")
	}
	c.PutKey(k, src, a)
	got, ok := c.GetKey(k)
	if !ok || got != a {
		t.Fatalf("GetKey = %v, %v; want the stored analysis", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after put+2 gets: %+v", st)
	}
	if st.Bytes <= a.Footprint() {
		t.Fatalf("resident bytes %d do not cover the analysis footprint %d", st.Bytes, a.Footprint())
	}

	// Re-put under the same key replaces, not duplicates.
	b := analyzeSrc(t, src)
	c.PutKey(k, src, b)
	if got, _ := c.GetKey(k); got != b {
		t.Fatal("re-put did not replace the session analysis")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("re-put duplicated the entry: %+v", st)
	}

	if !c.DeleteKey(k) {
		t.Fatal("DeleteKey reported no resident entry")
	}
	if c.DeleteKey(k) {
		t.Fatal("second DeleteKey reported a resident entry")
	}
	if _, ok := c.GetKey(k); ok {
		t.Fatal("GetKey found a deleted session")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("ledger not empty after delete: %+v", st)
	}
	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionSharedBudgetUnderPressure runs session traffic (PutKey /
// GetKey / DeleteKey) and anonymous content traffic (Get) against one
// deliberately tiny shared budget, concurrently, and checks that the
// byte ledger stays exact and neither population starves the other:
// after the storm, both a session put and a content get must still be
// able to become resident. Run under -race this also exercises the
// locking of the session paths against the singleflight machinery.
func TestSessionSharedBudgetUnderPressure(t *testing.T) {
	srcs := make([]string, 6)
	builds := make([]func(context.Context) (*core.Analysis, error), len(srcs))
	for i := range srcs {
		src := fmt.Sprintf("read(x);\nx = x + %d;\nwrite(x);\n", i)
		srcs[i] = src
		builds[i] = func(ctx context.Context) (*core.Analysis, error) {
			p, err := lang.Parse(src)
			if err != nil {
				return nil, err
			}
			a, err := core.AnalyzeObservedContext(ctx, p, nil, nil)
			if err != nil {
				return nil, err
			}
			return a.Rebind(nil, nil, nil), nil
		}
	}
	probe := analyzeSrc(t, srcs[0])
	cost := int64(len(srcs[0])) + probe.Footprint() + 512
	// Room for roughly three entries: every insert fights for space.
	c := slicecache.New(slicecache.Options{MaxBytes: 3 * cost, Shards: 1})

	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id string, src string) { // session worker
			defer wg.Done()
			k := slicecache.SessionKey(id)
			a := analyzeSrc(t, src)
			for i := 0; i < iters; i++ {
				if _, ok := c.GetKey(k); !ok {
					c.PutKey(k, src, a) // evicted (or first round): rebuild
				}
				if i%10 == 9 {
					c.DeleteKey(k)
				}
			}
		}(fmt.Sprintf("sess-%d", w), srcs[w])
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) { // content worker
			defer wg.Done()
			for i := 0; i < iters; i++ {
				j := (w + i) % len(srcs)
				if _, _, err := c.Get(context.Background(), srcs[j], builds[j]); err != nil {
					t.Errorf("content Get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("resident %d bytes over budget %d", st.Bytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("budget pressure produced no evictions; the test exercised nothing")
	}

	// Neither population is starved once the storm has passed: a fresh
	// session put is resident, and so is a fresh content build.
	k := slicecache.SessionKey("after")
	c.PutKey(k, srcs[0], probe)
	if _, ok := c.GetKey(k); !ok {
		t.Fatal("session entry cannot become resident after content pressure")
	}
	if _, _, err := c.Get(context.Background(), srcs[1], builds[1]); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(srcs[1]) {
		t.Fatal("content entry cannot become resident alongside sessions")
	}
	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}
