package slicecache_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"jumpslice/internal/core"
	"jumpslice/internal/lang"
	"jumpslice/internal/obs"
	"jumpslice/internal/paper"
	"jumpslice/internal/slicecache"
)

// buildFig5 is the canonical build function the tests share: parse and
// analyze the paper's Figure 5 program, detached for caching.
func buildFig5(t *testing.T) (string, func(context.Context) (*core.Analysis, error)) {
	t.Helper()
	src := lang.Format(paper.Fig5().Parse(), lang.PrintOptions{})
	return src, func(ctx context.Context) (*core.Analysis, error) {
		p, err := lang.Parse(src)
		if err != nil {
			return nil, err
		}
		a, err := core.AnalyzeObservedContext(ctx, p, nil, nil)
		if err != nil {
			return nil, err
		}
		return a.Rebind(nil, nil, nil), nil
	}
}

func TestKeyOf(t *testing.T) {
	a, b := slicecache.KeyOf("x = 1"), slicecache.KeyOf("x = 2")
	if a == b {
		t.Fatal("distinct sources share a key")
	}
	if a != slicecache.KeyOf("x = 1") {
		t.Fatal("same source, different keys")
	}
	if len(a.Hex()) != 64 || strings.ToLower(a.Hex()) != a.Hex() {
		t.Fatalf("Hex() = %q, want 64 lowercase hex chars", a.Hex())
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[slicecache.Outcome]string{
		slicecache.Miss:      "miss",
		slicecache.Hit:       "hit",
		slicecache.Coalesced: "coalesced",
	} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}

// TestMissThenHit asserts the basic contract: first Get builds, second
// is served the same analysis without rebuilding, and both produce
// identical slices.
func TestMissThenHit(t *testing.T) {
	src, build := buildFig5(t)
	builds := 0
	counted := func(ctx context.Context) (*core.Analysis, error) {
		builds++
		return build(ctx)
	}
	c := slicecache.New(slicecache.Options{})
	a1, out, err := c.Get(context.Background(), src, counted)
	if err != nil || out != slicecache.Miss {
		t.Fatalf("first Get: outcome=%v err=%v, want miss/nil", out, err)
	}
	a2, out, err := c.Get(context.Background(), src, counted)
	if err != nil || out != slicecache.Hit {
		t.Fatalf("second Get: outcome=%v err=%v, want hit/nil", out, err)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if a1 != a2 {
		t.Fatal("hit returned a different analysis pointer than the miss")
	}
	if !c.Contains(src) {
		t.Fatal("Contains(src) = false after positive insert")
	}
	f := paper.Fig5()
	crit := core.Criterion{Var: f.Criterion.Var, Line: f.Criterion.Line}
	s1, err1 := a1.Rebind(context.Background(), nil, nil).Agrawal(crit)
	s2, err2 := a2.Rebind(context.Background(), nil, nil).Agrawal(crit)
	if err1 != nil || err2 != nil {
		t.Fatalf("slicing rebound views: %v / %v", err1, err2)
	}
	if !s1.Nodes.Equal(s2.Nodes) {
		t.Fatal("cached analysis slices differently across views")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry, positive bytes", st)
	}
	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeCaching asserts build errors are cached and served for
// NegTTL, then rebuilt after expiry — under an injected clock.
func TestNegativeCaching(t *testing.T) {
	clock := time.Unix(1000, 0)
	c := slicecache.New(slicecache.Options{
		NegTTL: time.Second,
		Now:    func() time.Time { return clock },
	})
	boom := errors.New("parse error: unbalanced block")
	builds := 0
	build := func(context.Context) (*core.Analysis, error) {
		builds++
		return nil, boom
	}
	if _, out, err := c.Get(context.Background(), "bad src", build); !errors.Is(err, boom) || out != slicecache.Miss {
		t.Fatalf("first Get: outcome=%v err=%v", out, err)
	}
	if _, out, err := c.Get(context.Background(), "bad src", build); !errors.Is(err, boom) || out != slicecache.Hit {
		t.Fatalf("within TTL: outcome=%v err=%v, want hit with cached error", out, err)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times within TTL, want 1", builds)
	}
	clock = clock.Add(2 * time.Second)
	if _, out, err := c.Get(context.Background(), "bad src", build); !errors.Is(err, boom) || out != slicecache.Miss {
		t.Fatalf("after TTL: outcome=%v err=%v, want rebuilt miss", out, err)
	}
	if builds != 2 {
		t.Fatalf("build ran %d times after expiry, want 2", builds)
	}
	st := c.Stats()
	if st.NegHits != 1 {
		t.Fatalf("NegHits = %d, want 1", st.NegHits)
	}
	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestContextErrorsNotCached asserts a canceled build poisons nothing:
// the next Get rebuilds.
func TestContextErrorsNotCached(t *testing.T) {
	c := slicecache.New(slicecache.Options{})
	builds := 0
	build := func(context.Context) (*core.Analysis, error) {
		builds++
		if builds == 1 {
			return nil, fmt.Errorf("analyze: %w", context.Canceled)
		}
		return nil, errors.New("real error")
	}
	if _, _, err := c.Get(context.Background(), "s", build); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Get err = %v", err)
	}
	if _, out, err := c.Get(context.Background(), "s", build); out != slicecache.Miss || err == nil {
		t.Fatalf("second Get: outcome=%v err=%v, want fresh miss", out, err)
	}
	if builds != 2 {
		t.Fatalf("build ran %d times, want 2 (context error must not be cached)", builds)
	}
}

// TestLRUEviction fills a tiny cache and asserts the least recently
// used entries are evicted first, with the ledger exact throughout.
func TestLRUEviction(t *testing.T) {
	src, build := buildFig5(t)
	probe := slicecache.New(slicecache.Options{})
	a, _, err := probe.Get(context.Background(), src, build)
	if err != nil {
		t.Fatal(err)
	}
	// One shard, budget for roughly two entries.
	per := a.Footprint() + int64(len(src)) + 256
	c := slicecache.New(slicecache.Options{MaxBytes: 2*per + per/2, Shards: 1})
	mk := func(tag string) string { return src + "\n# " + tag } // distinct keys, same parse
	wrap := func(s string) func(context.Context) (*core.Analysis, error) {
		return func(ctx context.Context) (*core.Analysis, error) { return build(ctx) }
	}
	for _, tag := range []string{"a", "b"} {
		if _, _, err := c.Get(context.Background(), mk(tag), wrap(mk(tag))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, out, _ := c.Get(context.Background(), mk("a"), wrap(mk("a"))); out != slicecache.Hit {
		t.Fatalf("touch of a: outcome=%v, want hit", out)
	}
	if _, _, err := c.Get(context.Background(), mk("c"), wrap(mk("c"))); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(mk("a")) || c.Contains(mk("b")) || !c.Contains(mk("c")) {
		t.Fatalf("residency after eviction: a=%v b=%v c=%v, want a and c only",
			c.Contains(mk("a")), c.Contains(mk("b")), c.Contains(mk("c")))
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedEntry asserts an analysis larger than the whole budget
// is still returned to its caller but never becomes resident.
func TestOversizedEntry(t *testing.T) {
	src, build := buildFig5(t)
	c := slicecache.New(slicecache.Options{MaxBytes: 64, Shards: 1})
	a, out, err := c.Get(context.Background(), src, build)
	if err != nil || a == nil || out != slicecache.Miss {
		t.Fatalf("Get: a=%v outcome=%v err=%v", a, out, err)
	}
	if c.Contains(src) {
		t.Fatal("oversized entry stayed resident")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after oversized insert = %+v, want empty cache", st)
	}
	if err := c.VerifyAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescing asserts N concurrent identical Gets run one build and
// all share its result, with N-1 counted as coalesced.
func TestCoalescing(t *testing.T) {
	src, build := buildFig5(t)
	gate := make(chan struct{})
	var builds int
	var bmu sync.Mutex
	slow := func(ctx context.Context) (*core.Analysis, error) {
		bmu.Lock()
		builds++
		bmu.Unlock()
		<-gate
		return build(ctx)
	}
	c := slicecache.New(slicecache.Options{})
	const n = 8
	var wg sync.WaitGroup
	results := make([]*core.Analysis, n)
	outcomes := make([]slicecache.Outcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], outcomes[i], errs[i] = c.Get(context.Background(), src, slow)
		}(i)
	}
	// Let the waiters pile up behind the one in-flight build.
	for {
		if st := c.Stats(); st.Misses == 1 && st.Coalesced == n-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatal("waiters received different analyses")
		}
	}
	bmu.Lock()
	defer bmu.Unlock()
	if builds != 1 {
		t.Fatalf("build ran %d times for %d concurrent identical Gets", builds, n)
	}
	misses, coalesced := 0, 0
	for _, o := range outcomes {
		switch o {
		case slicecache.Miss:
			misses++
		case slicecache.Coalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("outcomes: %d misses, %d coalesced; want 1 and %d", misses, coalesced, n-1)
	}
}

// TestWaiterCancellation asserts the singleflight cancellation
// contract: a canceled waiter detaches with its own context error while
// the build keeps running for the remaining waiter; and when every
// waiter is gone, the build's context is canceled.
func TestWaiterCancellation(t *testing.T) {
	src, build := buildFig5(t)
	gate := make(chan struct{})
	buildCtx := make(chan context.Context, 1)
	slow := func(ctx context.Context) (*core.Analysis, error) {
		buildCtx <- ctx
		<-gate
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return build(ctx)
	}
	c := slicecache.New(slicecache.Options{})

	// Phase 1: two waiters; cancel one. The survivor must still get
	// the result.
	ctx1, cancel1 := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var survivorA *core.Analysis
	var survivorErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		survivorA, _, survivorErr = c.Get(context.Background(), src, slow)
	}()
	bctx := <-buildCtx // build started; now join it and then bail out
	done1 := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx1, src, slow)
		done1 <- err
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
	}
	if bctx.Err() != nil {
		t.Fatal("build context canceled while a waiter remains")
	}
	close(gate)
	wg.Wait()
	if survivorErr != nil || survivorA == nil {
		t.Fatalf("surviving waiter: a=%v err=%v", survivorA, survivorErr)
	}

	// Phase 2: a lone waiter cancels — the build context must die too.
	gate = make(chan struct{})
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx2, src+" ", slow)
		done2 <- err
	}()
	bctx2 := <-buildCtx
	cancel2()
	if err := <-done2; !errors.Is(err, context.Canceled) {
		t.Fatalf("lone waiter err = %v, want context.Canceled", err)
	}
	select {
	case <-bctx2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("build context not canceled after last waiter left")
	}
	close(gate)
}

// TestMetrics asserts the cache mirrors its stats into the recorder
// under the pinned instrument names.
func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	clock := time.Unix(0, 0)
	c := slicecache.New(slicecache.Options{
		Recorder: reg,
		NegTTL:   time.Second,
		Now:      func() time.Time { return clock },
	})
	src, build := buildFig5(t)
	if _, _, err := c.Get(context.Background(), src, build); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(context.Background(), src, build); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("bad program")
	bad := func(context.Context) (*core.Analysis, error) { return nil, boom }
	c.Get(context.Background(), "junk", bad)
	c.Get(context.Background(), "junk", bad)

	st := c.Stats()
	want := map[string]int64{
		"cache.hits":      st.Hits,
		"cache.misses":    st.Misses,
		"cache.coalesced": st.Coalesced,
		"cache.neg_hits":  st.NegHits,
		"cache.evictions": st.Evictions,
	}
	for name, v := range want {
		if got := reg.Counter(name).Value(); got != v {
			t.Errorf("counter %s = %d, want %d (stats: %+v)", name, got, v, st)
		}
	}
	if got := reg.Gauge("cache.resident_bytes").Value(); got != st.Bytes {
		t.Errorf("gauge cache.resident_bytes = %d, want %d", got, st.Bytes)
	}
	if got := reg.Gauge("cache.entries").Value(); got != int64(st.Entries) {
		t.Errorf("gauge cache.entries = %d, want %d", got, st.Entries)
	}
	if st.Hits != 1 || st.Misses != 2 || st.NegHits != 1 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 1 neg hit", st)
	}
}

// TestBuildReturnsNeither asserts a build that returns (nil, nil) is
// surfaced as an error, not a nil-analysis hit.
func TestBuildReturnsNeither(t *testing.T) {
	c := slicecache.New(slicecache.Options{})
	_, _, err := c.Get(context.Background(), "s", func(context.Context) (*core.Analysis, error) {
		return nil, nil
	})
	if err == nil {
		t.Fatal("Get accepted a build returning (nil, nil)")
	}
}

// TestZeroOptions asserts the defaults advertised in Options.
func TestZeroOptions(t *testing.T) {
	c := slicecache.New(slicecache.Options{})
	st := c.Stats()
	if st.MaxBytes != slicecache.DefaultMaxBytes {
		t.Errorf("MaxBytes = %d, want %d", st.MaxBytes, slicecache.DefaultMaxBytes)
	}
	if c.ShardCount() != slicecache.DefaultShards {
		t.Errorf("shards = %d, want %d", c.ShardCount(), slicecache.DefaultShards)
	}
	// Non-power-of-two shard counts round up.
	if got := slicecache.New(slicecache.Options{Shards: 5}).ShardCount(); got != 8 {
		t.Errorf("Shards:5 rounded to %d, want 8", got)
	}
}
