package slicecache

import "fmt"

// VerifyAccounting cross-checks every internal invariant the cache's
// byte ledger rests on, under all shard locks:
//
//   - a shard's bytes equal the sum of its resident entries' costs;
//   - a shard's bytes never exceed its budget (an oversized entry is
//     evicted in the same critical section that inserted it);
//   - the LRU list and the key map hold exactly the same entries, and
//     the list's forward and backward links agree.
//
// Exported to the test package only.
func (c *Cache) VerifyAccounting() error {
	for i, sh := range c.shards {
		sh.mu.Lock()
		err := sh.verifyLocked(i)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (sh *shard) verifyLocked(i int) error {
	var sum int64
	listed := 0
	var prev *entry
	for e := sh.head; e != nil; e = e.next {
		if e.prev != prev {
			return fmt.Errorf("shard %d: broken back link at entry %d", i, listed)
		}
		if sh.entries[e.key] != e {
			return fmt.Errorf("shard %d: listed entry missing from map", i)
		}
		sum += e.cost
		listed++
		prev = e
	}
	if sh.tail != prev {
		return fmt.Errorf("shard %d: tail does not terminate the list", i)
	}
	if listed != len(sh.entries) {
		return fmt.Errorf("shard %d: %d listed entries vs %d mapped", i, listed, len(sh.entries))
	}
	if sum != sh.bytes {
		return fmt.Errorf("shard %d: ledger %d bytes, entries sum to %d", i, sh.bytes, sum)
	}
	if sh.bytes > sh.max {
		return fmt.Errorf("shard %d: resident %d bytes over budget %d", i, sh.bytes, sh.max)
	}
	return nil
}

// ShardCount is exported for tests that reason about per-shard budgets.
func (c *Cache) ShardCount() int { return len(c.shards) }
