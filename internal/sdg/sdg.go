// Package sdg builds the system dependence graph of Horwitz, Reps &
// Binkley (HRB) over the per-procedure analyses the core package
// already computes, and answers the pass-filtered backward
// reachability queries their two-pass interprocedural slicing
// algorithm needs.
//
// Each procedure contributes one vertex per flowgraph node (including
// Entry and Exit) plus the HRB parameter vertices: a formal-in and
// formal-out per parameter at the procedure's entry, and an actual-in
// per argument and actual-out per returned argument at every call
// site. Parameter passing is value-result: every argument is copied
// in, and every plain-identifier argument is copied back out, so an
// actual-out exists exactly for the identifier arguments (for a
// variable repeated as several arguments, the last occurrence wins —
// see lang.CallCopyOuts).
//
// Edges are stored backwards — deps[v] lists the vertices v depends
// on — because slicing only ever walks them backwards:
//
//   - Control: statement → its control-dependence parents, and every
//     parameter vertex → the vertex it is anchored to (actuals → the
//     call statement, formals → the procedure's entry);
//   - Data: classic flow dependence via reaching definitions, with
//     definitions made at a call node redirected to that call's
//     actual-out vertex for the variable;
//   - Invariant: the two slice invariants the core engines encode as
//     extra edges (predicate → its conditional jump, statement → its
//     enclosing switch tag), baked in so closures over this graph are
//     normalized by construction;
//   - Call: callee entry → call-site statement;
//   - ParamIn: formal-in → actual-in, at every call site;
//   - ParamOut: actual-out → formal-out;
//   - Summary: actual-out → actual-in at the same call site,
//     discovered by the ComputeSummaries worklist (transitive
//     dependence through the callee along same-level realizable
//     paths).
//
// The two-pass slice is then two filtered closures: pass one ignores
// ParamOut edges (it never descends into callees, crossing call sites
// via Summary edges and ascending to callers), pass two ignores Call
// and ParamIn edges (it never re-ascends). Summary computation itself
// uses the same-level filter, which ignores all three.
package sdg

import (
	"fmt"
	"sort"

	"jumpslice/internal/bits"
	"jumpslice/internal/cdg"
	"jumpslice/internal/cfg"
	"jumpslice/internal/dataflow"
	"jumpslice/internal/lang"
)

// EdgeKind labels a dependence edge; the names appear verbatim in
// explain payloads and diagnostics.
type EdgeKind uint8

const (
	EdgeControl EdgeKind = iota
	EdgeData
	EdgeInvariant
	EdgeCall
	EdgeParamIn
	EdgeParamOut
	EdgeSummary
)

var edgeNames = [...]string{
	EdgeControl:   "control",
	EdgeData:      "data",
	EdgeInvariant: "invariant",
	EdgeCall:      "call",
	EdgeParamIn:   "param-in",
	EdgeParamOut:  "param-out",
	EdgeSummary:   "summary",
}

func (k EdgeKind) String() string { return edgeNames[k] }

// NumEdgeKinds is the number of distinct edge kinds, for stats arrays.
const NumEdgeKinds = len(edgeNames)

// Pass selects which edge kinds a traversal ignores.
type Pass uint8

const (
	// PassOne is the first HRB pass: ascend to callers, never descend
	// (ParamOut edges are ignored).
	PassOne Pass = iota
	// PassTwo is the second HRB pass: descend into callees, never
	// re-ascend (Call and ParamIn edges are ignored).
	PassTwo
	// SameLevel never crosses a procedure boundary at all (Call,
	// ParamIn, and ParamOut are ignored); it is the traversal summary
	// computation uses.
	SameLevel
)

func (p Pass) skips(k EdgeKind) bool {
	switch p {
	case PassOne:
		return k == EdgeParamOut
	case PassTwo:
		return k == EdgeCall || k == EdgeParamIn
	case SameLevel:
		return k == EdgeCall || k == EdgeParamIn || k == EdgeParamOut
	}
	return false
}

// VertKind classifies a vertex.
type VertKind uint8

const (
	VertStmt VertKind = iota
	VertFormalIn
	VertFormalOut
	VertActualIn
	VertActualOut
)

var vertNames = [...]string{
	VertStmt:      "stmt",
	VertFormalIn:  "formal-in",
	VertFormalOut: "formal-out",
	VertActualIn:  "actual-in",
	VertActualOut: "actual-out",
}

func (k VertKind) String() string { return vertNames[k] }

// Vertex is one SDG vertex. Node is the local flowgraph node ID: the
// statement's own node for VertStmt, the call node for actuals, and
// the procedure's entry node for formals. Index is the parameter
// index for formals and the argument index for actuals (-1 for
// VertStmt). Var is the variable a formal or actual-out carries.
type Vertex struct {
	Kind  VertKind
	Proc  int
	Node  int
	Index int
	Var   string
}

// Dep is one backward dependence edge: the owning vertex depends on
// To.
type Dep struct {
	To   int
	Kind EdgeKind
}

// Site is a call site: the calling procedure's index and the call
// statement's node ID in that procedure's flowgraph.
type Site struct {
	Proc int
	Node int
}

// ProcInfo is the per-procedure input to Build: the analyses core
// already ran on the procedure body, plus the invariant edges its
// batch engine would add (Extra[n] lists the extra dependence targets
// of node n).
type ProcInfo struct {
	Name     string
	Params   []string
	DeclLine int // source line of the proc declaration; 0 for main
	CFG      *cfg.Graph
	CDG      *cdg.Graph
	RD       *dataflow.ReachingDefs
	Extra    map[int][]int
}

// Graph is the system dependence graph.
type Graph struct {
	Procs []*ProcInfo
	Verts []Vertex

	deps [][]Dep

	stmtVert     [][]int                   // [proc][node] -> vertex
	formalIn     [][]int                   // [proc][param] -> vertex
	formalOut    [][]int                   // [proc][param] -> vertex
	actualIn     []map[int][]int           // [proc][call node] -> per-arg vertices
	actualOutIdx []map[int]map[int]int     // [proc][call node][arg index] -> vertex
	actualOutVar []map[int]map[string]int  // [proc][call node][var] -> vertex
	argVars      []map[int][][]string      // [proc][call node] -> per-arg variable sets
	calleeOf     []map[int]int             // [proc][call node] -> callee proc
	sites        [][]Site                  // [callee] -> call sites
	byName       map[string]int

	edgeCount [NumEdgeKinds]int

	summariesDone  bool
	summaryEdges   int
	summaryRounds  int
}

// Stats reports graph size for metrics and explain payloads.
type Stats struct {
	Procs         int
	Verts         int
	Edges         map[string]int
	SummaryEdges  int
	SummaryRounds int
}

// cancelCheckVerts is the cadence of cooperative cancellation checks
// inside closure walks, mirroring the pdg package.
const cancelCheckVerts = 1024

// Build constructs the SDG. Summary edges are NOT computed here —
// call ComputeSummaries before slicing; keeping it separate lets the
// caller cache the (comparatively expensive) summary fixpoint across
// slices of the same program set.
func Build(procs []*ProcInfo) (*Graph, error) {
	g := &Graph{
		Procs:        procs,
		stmtVert:     make([][]int, len(procs)),
		formalIn:     make([][]int, len(procs)),
		formalOut:    make([][]int, len(procs)),
		actualIn:     make([]map[int][]int, len(procs)),
		actualOutIdx: make([]map[int]map[int]int, len(procs)),
		actualOutVar: make([]map[int]map[string]int, len(procs)),
		argVars:      make([]map[int][][]string, len(procs)),
		calleeOf:     make([]map[int]int, len(procs)),
		sites:        make([][]Site, len(procs)),
		byName:       map[string]int{},
	}
	for i, p := range procs {
		if p.Name != "" {
			g.byName[p.Name] = i
		}
	}
	if err := g.allocVerts(); err != nil {
		return nil, err
	}
	g.deps = make([][]Dep, len(g.Verts))
	g.buildEdges()
	return g, nil
}

// allocVerts assigns vertex IDs: per procedure, statement vertices in
// node order, then formals, then actuals per call node in node order.
// The layout is deterministic, which the daemon's byte-identical
// response caching relies on transitively.
func (g *Graph) allocVerts() error {
	add := func(v Vertex) int {
		g.Verts = append(g.Verts, v)
		return len(g.Verts) - 1
	}
	for pi, p := range g.Procs {
		g.stmtVert[pi] = make([]int, p.CFG.NumNodes())
		for _, n := range p.CFG.Nodes {
			g.stmtVert[pi][n.ID] = add(Vertex{Kind: VertStmt, Proc: pi, Node: n.ID, Index: -1})
		}
		g.formalIn[pi] = make([]int, len(p.Params))
		g.formalOut[pi] = make([]int, len(p.Params))
		entryID := p.CFG.Entry.ID
		for j, param := range p.Params {
			g.formalIn[pi][j] = add(Vertex{Kind: VertFormalIn, Proc: pi, Node: entryID, Index: j, Var: param})
			g.formalOut[pi][j] = add(Vertex{Kind: VertFormalOut, Proc: pi, Node: entryID, Index: j, Var: param})
		}
		g.actualIn[pi] = map[int][]int{}
		g.actualOutIdx[pi] = map[int]map[int]int{}
		g.actualOutVar[pi] = map[int]map[string]int{}
		g.argVars[pi] = map[int][][]string{}
		g.calleeOf[pi] = map[int]int{}
		for _, n := range p.CFG.Nodes {
			if n.Kind != cfg.KindCall {
				continue
			}
			call, ok := lang.Unlabel(n.Stmt).(*lang.CallStmt)
			if !ok {
				return fmt.Errorf("sdg: call node %d in %s has no CallStmt", n.ID, g.procLabel(pi))
			}
			qi, ok := g.byName[call.Name]
			if !ok {
				return fmt.Errorf("sdg: call to unknown procedure %q", call.Name)
			}
			if got, want := len(call.Args), len(g.Procs[qi].Params); got != want {
				return fmt.Errorf("sdg: call to %q has %d arguments, want %d", call.Name, got, want)
			}
			g.calleeOf[pi][n.ID] = qi
			g.sites[qi] = append(g.sites[qi], Site{Proc: pi, Node: n.ID})
			ins := make([]int, len(call.Args))
			vars := make([][]string, len(call.Args))
			for j, arg := range call.Args {
				vars[j] = argVarSet(arg)
				ins[j] = add(Vertex{Kind: VertActualIn, Proc: pi, Node: n.ID, Index: j})
			}
			g.actualIn[pi][n.ID] = ins
			g.argVars[pi][n.ID] = vars
			outIdx := map[int]int{}
			outVar := map[string]int{}
			for _, j := range lang.CallCopyOuts(call) {
				v := call.Args[j].(*lang.Ident).Name
				id := add(Vertex{Kind: VertActualOut, Proc: pi, Node: n.ID, Index: j, Var: v})
				outIdx[j] = id
				outVar[v] = id
			}
			g.actualOutIdx[pi][n.ID] = outIdx
			g.actualOutVar[pi][n.ID] = outVar
		}
	}
	return nil
}

// argVarSet is the sorted variable set an argument expression reads,
// including the input cursor when the argument calls eof().
func argVarSet(arg lang.Expr) []string {
	vars := lang.ExprVars(nil, arg)
	for _, name := range lang.ExprCalls(nil, arg) {
		if name == "eof" {
			vars = append(vars, dataflow.InputVar)
			break
		}
	}
	sort.Strings(vars)
	out := vars[:0]
	for i, v := range vars {
		if i == 0 || vars[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// defVert is the vertex standing for "node d's definition of v": the
// statement vertex, except that a call's copy-out definitions live on
// its actual-out vertices.
func (g *Graph) defVert(pi, d int, v string) int {
	if g.Procs[pi].CFG.Nodes[d].Kind == cfg.KindCall {
		if out, ok := g.actualOutVar[pi][d][v]; ok {
			return out
		}
	}
	return g.stmtVert[pi][d]
}

func (g *Graph) addDep(from, to int, k EdgeKind) {
	for _, d := range g.deps[from] {
		if d.To == to && d.Kind == k {
			return
		}
	}
	g.deps[from] = append(g.deps[from], Dep{To: to, Kind: k})
	g.edgeCount[k]++
}

func (g *Graph) buildEdges() {
	for pi, p := range g.Procs {
		// Statement vertices: control, invariant, and (except at call
		// nodes, whose argument reads live on actual-ins) data.
		for _, n := range p.CFG.Nodes {
			sv := g.stmtVert[pi][n.ID]
			for _, parent := range p.CDG.ParentIDs(n.ID) {
				g.addDep(sv, g.stmtVert[pi][parent], EdgeControl)
			}
			for _, t := range p.Extra[n.ID] {
				g.addDep(sv, g.stmtVert[pi][t], EdgeInvariant)
			}
			if n.Kind == cfg.KindCall {
				continue
			}
			for _, v := range dataflow.UsesOf(n) {
				for _, d := range p.RD.ReachingDefsOf(n.ID, v) {
					g.addDep(sv, g.defVert(pi, d, v), EdgeData)
				}
			}
		}
		// Call sites: actual-in/out anchoring, linkage edges.
		for _, n := range p.CFG.Nodes {
			if n.Kind != cfg.KindCall {
				continue
			}
			qi := g.calleeOf[pi][n.ID]
			callV := g.stmtVert[pi][n.ID]
			g.addDep(g.entryVert(qi), callV, EdgeCall)
			for j, vars := range g.argVars[pi][n.ID] {
				aiv := g.actualIn[pi][n.ID][j]
				g.addDep(aiv, callV, EdgeControl)
				for _, v := range vars {
					for _, d := range p.RD.ReachingDefsOf(n.ID, v) {
						g.addDep(aiv, g.defVert(pi, d, v), EdgeData)
					}
				}
				g.addDep(g.formalIn[qi][j], aiv, EdgeParamIn)
			}
			for j, aov := range g.actualOutIdx[pi][n.ID] {
				g.addDep(aov, callV, EdgeControl)
				g.addDep(aov, g.formalOut[qi][j], EdgeParamOut)
			}
		}
		// Formals: anchored to entry; formal-out collects the
		// definitions of its parameter reaching Exit; upward-exposed
		// uses of the parameter depend on formal-in.
		entryV := g.entryVert(pi)
		for j, param := range p.Params {
			fiv, fov := g.formalIn[pi][j], g.formalOut[pi][j]
			g.addDep(fiv, entryV, EdgeControl)
			g.addDep(fov, entryV, EdgeControl)
			for _, d := range p.RD.ReachingDefsOf(p.CFG.Exit.ID, param) {
				g.addDep(fov, g.defVert(pi, d, param), EdgeData)
			}
			g.exposeParam(pi, j, param)
		}
	}
}

// exposeParam adds the dependence edges carried by the copy-in
// definition of parameter j: every use of the parameter reachable
// from Entry along a path free of intervening definitions depends on
// formal-in, and if such a path reaches Exit the incoming value
// survives to the copy-out, so formal-out depends on formal-in.
func (g *Graph) exposeParam(pi, j int, param string) {
	p := g.Procs[pi]
	fiv := g.formalIn[pi][j]
	seen := make([]bool, p.CFG.NumNodes())
	stack := []int{p.CFG.Entry.ID}
	seen[p.CFG.Entry.ID] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := p.CFG.Nodes[id]
		if id != p.CFG.Entry.ID {
			if n.Kind == cfg.KindCall {
				for k, vars := range g.argVars[pi][id] {
					for _, v := range vars {
						if v == param {
							g.addDep(g.actualIn[pi][id][k], fiv, EdgeData)
						}
					}
				}
			} else {
				for _, v := range dataflow.UsesOf(n) {
					if v == param {
						g.addDep(g.stmtVert[pi][id], fiv, EdgeData)
					}
				}
			}
			if id == p.CFG.Exit.ID {
				g.addDep(g.formalOut[pi][j], fiv, EdgeData)
			}
		}
		// The incoming value is killed here; don't continue past a
		// redefinition (uses at the defining node itself happen before
		// the kill and were handled above).
		if id != p.CFG.Entry.ID && defines(n, param) {
			continue
		}
		for _, s := range n.Succs() {
			if id == p.CFG.Entry.ID && s == p.CFG.Exit.ID {
				// The Entry→Exit edge exists only to root the control
				// dependence computation; it is not an executable path,
				// so it must not make every parameter look live-through.
				continue
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
}

func defines(n *cfg.Node, v string) bool {
	for _, d := range dataflow.DefsOf(n) {
		if d == v {
			return true
		}
	}
	return false
}

// ComputeSummaries runs the HRB worklist: for each procedure and each
// formal-out, find the formal-ins reachable along same-level
// realizable paths and install the matching actual-out → actual-in
// summary edges at every call site; repeat (new summary edges can
// extend same-level paths in callers) until a fixpoint. Idempotent:
// later calls return the recorded totals without re-running.
func (g *Graph) ComputeSummaries(cancel func() error) (edges, rounds int, err error) {
	if g.summariesDone {
		return g.summaryEdges, g.summaryRounds, nil
	}
	known := make([][][]bool, len(g.Procs))
	inList := make([]bool, len(g.Procs))
	var wl []int
	for qi, p := range g.Procs {
		if len(p.Params) > 0 {
			known[qi] = make([][]bool, len(p.Params))
			for j := range known[qi] {
				known[qi][j] = make([]bool, len(p.Params))
			}
			wl = append(wl, qi)
			inList[qi] = true
		}
	}
	for len(wl) > 0 {
		qi := wl[0]
		wl = wl[1:]
		inList[qi] = false
		g.summaryRounds++
		changed := false
		for j := range g.Procs[qi].Params {
			reach, err := g.Closure([]int{g.formalOut[qi][j]}, SameLevel, cancel)
			if err != nil {
				return g.summaryEdges, g.summaryRounds, err
			}
			for k := range g.Procs[qi].Params {
				if known[qi][j][k] || !reach.Has(g.formalIn[qi][k]) {
					continue
				}
				known[qi][j][k] = true
				changed = true
				for _, site := range g.sites[qi] {
					if aov, ok := g.actualOutIdx[site.Proc][site.Node][j]; ok {
						g.addDep(aov, g.actualIn[site.Proc][site.Node][k], EdgeSummary)
						g.summaryEdges++
					}
				}
			}
		}
		if changed {
			for _, site := range g.sites[qi] {
				ci := site.Proc
				if len(g.Procs[ci].Params) > 0 && !inList[ci] {
					inList[ci] = true
					wl = append(wl, ci)
				}
			}
		}
	}
	g.summariesDone = true
	return g.summaryEdges, g.summaryRounds, nil
}

// SummariesComputed reports whether ComputeSummaries has run.
func (g *Graph) SummariesComputed() bool { return g.summariesDone }

// Closure returns the backward closure of the seeds under the pass's
// edge filter as a fresh set. cancel (nil to disable) is consulted at
// a bounded cadence; a non-nil error abandons the walk.
func (g *Graph) Closure(seeds []int, pass Pass, cancel func() error) (*bits.Set, error) {
	set := bits.New(len(g.Verts))
	_, err := g.GrowInto(set, seeds, pass, cancel)
	return set, err
}

// GrowInto unions the seeds' backward closure under the pass filter
// into set, reporting whether set grew.
func (g *Graph) GrowInto(set *bits.Set, seeds []int, pass Pass, cancel func() error) (bool, error) {
	var stack []int
	grew := false
	for _, s := range seeds {
		if !set.Has(s) {
			set.Add(s)
			stack = append(stack, s)
			grew = true
		}
	}
	budget := cancelCheckVerts
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if budget--; budget <= 0 {
			budget = cancelCheckVerts
			if cancel != nil {
				if err := cancel(); err != nil {
					return grew, err
				}
			}
		}
		for _, d := range g.deps[v] {
			if pass.skips(d.Kind) {
				continue
			}
			if !set.Has(d.To) {
				set.Add(d.To)
				stack = append(stack, d.To)
				grew = true
			}
		}
	}
	return grew, nil
}

// --- lookups ---

func (g *Graph) entryVert(pi int) int {
	return g.stmtVert[pi][g.Procs[pi].CFG.Entry.ID]
}

// NumVerts returns the vertex count.
func (g *Graph) NumVerts() int { return len(g.Verts) }

// Vert returns the vertex record for id.
func (g *Graph) Vert(id int) Vertex { return g.Verts[id] }

// Deps returns v's backward dependence edges. Shared; do not modify.
func (g *Graph) Deps(v int) []Dep { return g.deps[v] }

// StmtVert returns the statement vertex of a local flowgraph node.
func (g *Graph) StmtVert(pi, node int) int { return g.stmtVert[pi][node] }

// EntryVert returns the statement vertex of a procedure's Entry node.
func (g *Graph) EntryVert(pi int) int { return g.entryVert(pi) }

// ProcIndex resolves a procedure name ("" does not resolve).
func (g *Graph) ProcIndex(name string) (int, bool) {
	i, ok := g.byName[name]
	return i, ok
}

// ActualInVerts returns the actual-in vertices of a call node, in
// argument order (nil if the node is not a call).
func (g *Graph) ActualInVerts(pi, node int) []int { return g.actualIn[pi][node] }

// ActualOutVerts returns the actual-out vertices of a call node in
// ascending argument order.
func (g *Graph) ActualOutVerts(pi, node int) []int {
	m := g.actualOutIdx[pi][node]
	if len(m) == 0 {
		return nil
	}
	idx := make([]int, 0, len(m))
	for j := range m {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = m[j]
	}
	return out
}

// ActualOutVertByVar returns the actual-out vertex carrying variable v
// at a call node, if the call copies v back out.
func (g *Graph) ActualOutVertByVar(pi, node int, v string) (int, bool) {
	id, ok := g.actualOutVar[pi][node][v]
	return id, ok
}

// ActualInVertsMentioning returns the actual-in vertices at a call
// node whose argument expression reads variable v.
func (g *Graph) ActualInVertsMentioning(pi, node int, v string) []int {
	var out []int
	for j, vars := range g.argVars[pi][node] {
		for _, av := range vars {
			if av == v {
				out = append(out, g.actualIn[pi][node][j])
				break
			}
		}
	}
	return out
}

// CalleeOf returns the callee procedure index of a call node.
func (g *Graph) CalleeOf(pi, node int) (int, bool) {
	qi, ok := g.calleeOf[pi][node]
	return qi, ok
}

// Sites returns the call sites of procedure qi. Shared; do not modify.
func (g *Graph) Sites(qi int) []Site { return g.sites[qi] }

// ProcVertRange returns the half-open vertex ID range [lo, hi) of
// procedure pi's vertices; statements, formals, and actuals are
// allocated contiguously per procedure, so membership tests over one
// procedure's vertices are a range scan.
func (g *Graph) ProcVertRange(pi int) (lo, hi int) {
	lo = g.stmtVert[pi][0]
	if pi+1 < len(g.Procs) {
		hi = g.stmtVert[pi+1][0]
	} else {
		hi = len(g.Verts)
	}
	return lo, hi
}

// VertLine maps a vertex to the source line it should be attributed
// to: statements and actuals use their node's line, formals use the
// procedure declaration's line.
func (g *Graph) VertLine(id int) int {
	v := g.Verts[id]
	switch v.Kind {
	case VertFormalIn, VertFormalOut:
		return g.Procs[v.Proc].DeclLine
	default:
		return g.Procs[v.Proc].CFG.Nodes[v.Node].Line
	}
}

// VertString renders a vertex for diagnostics and explain payloads:
// "p2.formal-in(x)", "main.actual-out(sum)@12", "main.stmt@7".
func (g *Graph) VertString(id int) string {
	v := g.Verts[id]
	label := g.procLabel(v.Proc)
	switch v.Kind {
	case VertStmt:
		n := g.Procs[v.Proc].CFG.Nodes[v.Node]
		if n.Stmt == nil {
			return fmt.Sprintf("%s.%s", label, n.Kind)
		}
		return fmt.Sprintf("%s.stmt@%d", label, n.Line)
	case VertFormalIn, VertFormalOut:
		return fmt.Sprintf("%s.%s(%s)", label, v.Kind, v.Var)
	case VertActualIn:
		return fmt.Sprintf("%s.actual-in#%d@%d", label, v.Index, g.VertLine(id))
	default:
		return fmt.Sprintf("%s.actual-out(%s)@%d", label, v.Var, g.VertLine(id))
	}
}

func (g *Graph) procLabel(pi int) string {
	if name := g.Procs[pi].Name; name != "" {
		return name
	}
	return "main"
}

// Stats summarizes the graph for metrics and explain payloads.
func (g *Graph) Stats() Stats {
	s := Stats{
		Procs:         len(g.Procs),
		Verts:         len(g.Verts),
		Edges:         map[string]int{},
		SummaryEdges:  g.summaryEdges,
		SummaryRounds: g.summaryRounds,
	}
	for k, n := range g.edgeCount {
		if n > 0 {
			s.Edges[EdgeKind(k).String()] = n
		}
	}
	return s
}
