// Package dom computes dominator and postdominator trees.
//
// Two independent algorithms are provided: the iterative dataflow
// algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance
// Algorithm"), which is the package default, and the classic
// Lengauer–Tarjan algorithm [20 in the paper's references]. The two
// are cross-checked against each other by property tests.
//
// Postdominators are dominators of the reverse flowgraph, per the
// paper's Section 3: "S' postdominates S if S' dominates S in the
// reverse flowgraph". The cfg package exposes the reverse graph; this
// package is graph-representation agnostic.
package dom

import (
	"fmt"
	"sort"
)

// Directed is the minimal graph interface the algorithms need. Nodes
// are identified by dense integer IDs 0..NumNodes()-1.
type Directed interface {
	NumNodes() int
	Succs(i int) []int
}

// Reverse adapts a graph with predecessor access into a Directed view
// of its reverse. cfg.Graph satisfies both directions.
type reversed struct {
	g interface {
		NumNodes() int
		Preds(i int) []int
	}
}

func (r reversed) NumNodes() int     { return r.g.NumNodes() }
func (r reversed) Succs(i int) []int { return r.g.Preds(i) }

// Reverse returns the reverse of a graph that exposes predecessors.
func Reverse(g interface {
	NumNodes() int
	Preds(i int) []int
}) Directed {
	return reversed{g}
}

// Tree is a dominator tree. For a postdominator tree, build it over
// the reverse graph rooted at Exit; then Dominates(a, b) means "a
// postdominates b" and Idom is the immediate postdominator.
type Tree struct {
	Root int
	// Idom[v] is the immediate dominator of v, the root's Idom is the
	// root itself, and unreachable nodes have Idom -1.
	Idom []int
	// children[v] lists v's dominator tree children in ascending ID
	// order, giving deterministic traversals.
	children [][]int
	// pre/post order numbers for O(1) ancestor queries.
	preNum, postNum []int
}

// Children returns v's children in the tree, in ascending ID order.
func (t *Tree) Children(v int) []int { return t.children[v] }

// Equal reports whether two trees encode the same dominance relation:
// same root and the same immediate dominator for every node. The
// incremental engine's tests use it to certify that a reused
// postdominator tree matches the one a cold rebuild would produce.
func (t *Tree) Equal(other *Tree) bool {
	if t.Root != other.Root || len(t.Idom) != len(other.Idom) {
		return false
	}
	for v, d := range t.Idom {
		if other.Idom[v] != d {
			return false
		}
	}
	return true
}

// Reachable reports whether v participates in the tree (is reachable
// from the root in the underlying graph).
func (t *Tree) Reachable(v int) bool { return v == t.Root || t.Idom[v] >= 0 }

// Dominates reports whether a dominates b (reflexively: every node
// dominates itself). For trees built on the reverse graph this reads
// "a postdominates b". Nodes not in the tree dominate nothing and are
// dominated by nothing.
func (t *Tree) Dominates(a, b int) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	return t.preNum[a] <= t.preNum[b] && t.postNum[b] <= t.postNum[a]
}

// StrictlyDominates reports a dominates b and a != b.
func (t *Tree) StrictlyDominates(a, b int) bool {
	return a != b && t.Dominates(a, b)
}

// Preorder returns the tree's nodes in preorder: each node before its
// children, children in ascending ID order. This is the traversal
// order the paper's Figure 7 algorithm uses on the postdominator tree.
func (t *Tree) Preorder() []int {
	out := make([]int, 0, len(t.Idom))
	var visit func(v int)
	visit = func(v int) {
		out = append(out, v)
		for _, c := range t.children[v] {
			visit(c)
		}
	}
	visit(t.Root)
	return out
}

// Walk calls fn for each tree ancestor of v starting at Idom[v] and
// ending at the root (v itself is not visited). It stops early if fn
// returns false. Walking from an unreachable node visits nothing.
func (t *Tree) Walk(v int, fn func(ancestor int) bool) {
	if !t.Reachable(v) {
		return
	}
	for v != t.Root {
		v = t.Idom[v]
		if !fn(v) {
			return
		}
	}
}

// finish computes children lists and pre/post numbering from Idom.
func (t *Tree) finish() {
	n := len(t.Idom)
	t.children = make([][]int, n)
	for v := 0; v < n; v++ {
		if v == t.Root || t.Idom[v] < 0 {
			continue
		}
		p := t.Idom[v]
		t.children[p] = append(t.children[p], v)
	}
	for _, c := range t.children {
		sort.Ints(c)
	}
	t.preNum = make([]int, n)
	t.postNum = make([]int, n)
	for i := range t.preNum {
		t.preNum[i] = -1
		t.postNum[i] = -1
	}
	// Iterative DFS to avoid recursion depth limits on long chains.
	counter := 0
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{v: t.Root}}
	t.preNum[t.Root] = counter
	counter++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.children[f.v]) {
			c := t.children[f.v][f.next]
			f.next++
			t.preNum[c] = counter
			counter++
			stack = append(stack, frame{v: c})
			continue
		}
		t.postNum[f.v] = counter
		counter++
		stack = stack[:len(stack)-1]
	}
}

// Dominators computes the dominator tree of g rooted at root using the
// Cooper–Harvey–Kennedy iterative algorithm. Nodes unreachable from
// root get Idom -1.
func Dominators(g Directed, root int) *Tree {
	n := g.NumNodes()
	if root < 0 || root >= n {
		panic(fmt.Sprintf("dom: root %d out of range [0,%d)", root, n))
	}

	// Reverse postorder of the reachable subgraph.
	rpo := make([]int, 0, n)
	seen := make([]bool, n)
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{v: root}}
	seen[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Succs(f.v)
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{v: s})
			}
			continue
		}
		rpo = append(rpo, f.v)
		stack = stack[:len(stack)-1]
	}
	// rpo currently holds postorder; reverse it.
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, v := range rpo {
		rpoNum[v] = i
	}

	// Predecessors restricted to reachable nodes.
	preds := make([][]int, n)
	for _, v := range rpo {
		for _, s := range g.Succs(v) {
			preds[s] = append(preds[s], v)
		}
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[v] {
				if idom[p] < 0 {
					continue // p not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	idom[root] = root

	t := &Tree{Root: root, Idom: idom}
	t.finish()
	return t
}

// PostDominators computes the postdominator tree of a graph that
// exposes predecessors, rooted at exit. It is Dominators on the
// reverse graph.
func PostDominators(g interface {
	NumNodes() int
	Preds(i int) []int
}, exit int) *Tree {
	return Dominators(Reverse(g), exit)
}
