package dom

import (
	"math/rand"
	"reflect"
	"testing"
)

// adj is a simple adjacency-list graph for tests.
type adj [][]int

func (a adj) NumNodes() int     { return len(a) }
func (a adj) Succs(i int) []int { return a[i] }
func (a adj) Preds(i int) []int {
	var out []int
	for v, ss := range a {
		for _, s := range ss {
			if s == i {
				out = append(out, v)
			}
		}
	}
	return out
}

// bruteDominators computes dominators from the definition: v dominates
// u iff every path from root to u passes through v, i.e. u is
// unreachable from root when v is removed.
func bruteDominators(g adj, root int) [][]bool {
	n := g.NumNodes()
	reach := func(skip int) []bool {
		seen := make([]bool, n)
		if root == skip {
			return seen
		}
		stack := []int{root}
		seen[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g[v] {
				if s != skip && !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return seen
	}
	base := reach(-1)
	dom := make([][]bool, n)
	for v := 0; v < n; v++ {
		dom[v] = make([]bool, n)
		if !base[v] {
			continue
		}
		without := reach(v)
		for u := 0; u < n; u++ {
			if base[u] && (u == v || !without[u]) {
				dom[v][u] = true
			}
		}
	}
	return dom
}

func TestDominatorsDiamond(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//     \ /
	//      3
	g := adj{{1, 2}, {3}, {3}, {}}
	for name, tree := range map[string]*Tree{
		"iterative": Dominators(g, 0),
		"lt":        DominatorsLT(g, 0),
	} {
		want := []int{0, 0, 0, 0}
		if !reflect.DeepEqual(tree.Idom, want) {
			t.Errorf("%s: Idom = %v, want %v", name, tree.Idom, want)
		}
		if !tree.Dominates(0, 3) {
			t.Errorf("%s: 0 should dominate 3", name)
		}
		if tree.Dominates(1, 3) {
			t.Errorf("%s: 1 should not dominate 3", name)
		}
		if !tree.Dominates(2, 2) {
			t.Errorf("%s: dominance should be reflexive", name)
		}
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, 2 -> 1 (loop), 1 -> 4
	g := adj{{1}, {2, 4}, {3, 1}, {}, {}}
	tree := Dominators(g, 0)
	want := []int{0, 0, 1, 2, 1}
	if !reflect.DeepEqual(tree.Idom, want) {
		t.Errorf("Idom = %v, want %v", tree.Idom, want)
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := adj{{1}, {}, {1}} // node 2 unreachable from 0
	tree := Dominators(g, 0)
	if tree.Reachable(2) {
		t.Error("node 2 should be unreachable")
	}
	if tree.Idom[2] != -1 {
		t.Errorf("Idom[2] = %d, want -1", tree.Idom[2])
	}
	if tree.Dominates(2, 1) || tree.Dominates(0, 2) {
		t.Error("unreachable nodes neither dominate nor are dominated")
	}
}

func TestPostDominatorsStraightLine(t *testing.T) {
	// 0 -> 1 -> 2 (exit)
	g := adj{{1}, {2}, {}}
	tree := PostDominators(g, 2)
	if !tree.Dominates(2, 0) || !tree.Dominates(1, 0) {
		t.Error("later nodes should postdominate earlier ones in a straight line")
	}
	if tree.Dominates(0, 1) {
		t.Error("0 should not postdominate 1")
	}
	if got := tree.Idom[0]; got != 1 {
		t.Errorf("ipdom(0) = %d, want 1", got)
	}
}

func TestPreorderParentFirst(t *testing.T) {
	g := adj{{1, 2}, {3}, {3}, {4}, {}}
	tree := Dominators(g, 0)
	order := tree.Preorder()
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for v := range tree.Idom {
		if v == tree.Root || !tree.Reachable(v) {
			continue
		}
		if pos[tree.Idom[v]] >= pos[v] {
			t.Errorf("parent %d visited after child %d", tree.Idom[v], v)
		}
	}
	if len(order) != 5 {
		t.Errorf("preorder visited %d nodes, want 5", len(order))
	}
}

func TestWalkAncestors(t *testing.T) {
	// chain 0 -> 1 -> 2 -> 3
	g := adj{{1}, {2}, {3}, {}}
	tree := Dominators(g, 0)
	var seen []int
	tree.Walk(3, func(a int) bool {
		seen = append(seen, a)
		return true
	})
	if !reflect.DeepEqual(seen, []int{2, 1, 0}) {
		t.Errorf("Walk(3) = %v, want [2 1 0]", seen)
	}
	// Early stop.
	seen = nil
	tree.Walk(3, func(a int) bool {
		seen = append(seen, a)
		return false
	})
	if !reflect.DeepEqual(seen, []int{2}) {
		t.Errorf("Walk with stop = %v, want [2]", seen)
	}
}

// randomGraph builds a random rooted digraph where node 0 reaches a
// good fraction of nodes.
func randomGraph(rng *rand.Rand, n int) adj {
	g := make(adj, n)
	for v := 1; v < n; v++ {
		// Ensure likely reachability with an edge from a smaller node.
		from := rng.Intn(v)
		g[from] = append(g[from], v)
	}
	extra := n * 2
	for i := 0; i < extra; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		g[from] = append(g[from], to)
	}
	return g
}

func TestDominatorsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		g := randomGraph(rng, n)
		tree := Dominators(g, 0)
		want := bruteDominators(g, 0)
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if got := tree.Dominates(v, u); got != want[v][u] {
					t.Fatalf("trial %d graph %v: Dominates(%d,%d) = %v, want %v",
						trial, g, v, u, got, want[v][u])
				}
			}
		}
	}
}

func TestLengauerTarjanMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n)
		a := Dominators(g, 0)
		b := DominatorsLT(g, 0)
		if !reflect.DeepEqual(a.Idom, b.Idom) {
			t.Fatalf("trial %d graph %v:\niterative Idom = %v\nLT Idom        = %v",
				trial, g, a.Idom, b.Idom)
		}
	}
}

func TestPostDominatorsLTMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n)
		// Use node 0 as "exit" of the reverse graph; any root works
		// for the equivalence check.
		a := PostDominators(g, 0)
		b := PostDominatorsLT(g, 0)
		if !reflect.DeepEqual(a.Idom, b.Idom) {
			t.Fatalf("trial %d: postdom mismatch\niterative = %v\nLT = %v", trial, a.Idom, b.Idom)
		}
	}
}

func TestDominanceIsPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		g := randomGraph(rng, n)
		tree := Dominators(g, 0)
		for a := 0; a < n; a++ {
			if tree.Reachable(a) && !tree.Dominates(a, a) {
				t.Fatalf("not reflexive at %d", a)
			}
			for b := 0; b < n; b++ {
				if a != b && tree.Dominates(a, b) && tree.Dominates(b, a) {
					t.Fatalf("antisymmetry violated for %d,%d", a, b)
				}
				for c := 0; c < n; c++ {
					if tree.Dominates(a, b) && tree.Dominates(b, c) && !tree.Dominates(a, c) {
						t.Fatalf("transitivity violated for %d,%d,%d", a, b, c)
					}
				}
			}
		}
	}
}

func TestRootOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range root")
		}
	}()
	Dominators(adj{{}}, 5)
}
