package dom

// DominatorsLT computes the dominator tree of g rooted at root using
// the Lengauer–Tarjan algorithm (the "simple" variant with path
// compression). It produces exactly the same tree as Dominators; the
// duplication exists because the paper's construction (Section 3)
// cites Lengauer–Tarjan [20] for postdominator trees, and having two
// independent implementations lets the tests cross-validate them.
func DominatorsLT(g Directed, root int) *Tree {
	n := g.NumNodes()

	// DFS numbering.
	const unvisited = -1
	dfnum := make([]int, n)
	for i := range dfnum {
		dfnum[i] = unvisited
	}
	vertex := make([]int, 0, n) // vertex[i] = node with dfnum i
	parent := make([]int, n)    // DFS tree parent (as node ID)

	type frame struct {
		v    int
		next int
	}
	stack := []frame{{v: root}}
	dfnum[root] = 0
	parent[root] = -1
	vertex = append(vertex, root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Succs(f.v)
		if f.next < len(succs) {
			w := succs[f.next]
			f.next++
			if dfnum[w] == unvisited {
				dfnum[w] = len(vertex)
				vertex = append(vertex, w)
				parent[w] = f.v
				stack = append(stack, frame{v: w})
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}
	reach := len(vertex)

	// Predecessors restricted to reachable nodes.
	preds := make([][]int, n)
	for _, v := range vertex {
		for _, w := range g.Succs(v) {
			if dfnum[w] != unvisited {
				preds[w] = append(preds[w], v)
			}
		}
	}

	semi := make([]int, n)     // semidominator dfnum
	ancestor := make([]int, n) // forest ancestor, -1 if root of its tree
	label := make([]int, n)    // node with minimal semi on the path
	idom := make([]int, n)
	samedom := make([]int, n)
	bucket := make([][]int, n)
	for i := 0; i < n; i++ {
		semi[i] = -1
		ancestor[i] = -1
		label[i] = i
		idom[i] = -1
		samedom[i] = -1
	}

	// ancestorWithLowestSemi with path compression (iterative).
	var compress func(v int) int
	compress = func(v int) int {
		// Collect the path to the forest root.
		var path []int
		for ancestor[ancestor[v]] != -1 {
			path = append(path, v)
			v = ancestor[v]
		}
		// v's ancestor is a forest root; unwind.
		for i := len(path) - 1; i >= 0; i-- {
			w := path[i]
			a := ancestor[w]
			if semi[label[a]] < semi[label[w]] {
				label[w] = label[a]
			}
			ancestor[w] = ancestor[a]
		}
		if len(path) > 0 {
			return path[0]
		}
		return v
	}
	eval := func(v int) int {
		if ancestor[v] == -1 {
			return label[v]
		}
		compress(v)
		return label[v]
	}

	for i := reach - 1; i >= 1; i-- {
		w := vertex[i]
		p := parent[w]
		s := dfnum[p]
		for _, v := range preds[w] {
			var sPrime int
			if dfnum[v] <= dfnum[w] {
				sPrime = dfnum[v]
			} else {
				sPrime = semi[eval(v)]
			}
			if sPrime < s {
				s = sPrime
			}
		}
		semi[w] = s
		sv := vertex[s]
		bucket[sv] = append(bucket[sv], w)
		// link(p, w)
		ancestor[w] = p

		for _, v := range bucket[p] {
			y := eval(v)
			if semi[y] == semi[v] {
				idom[v] = p
			} else {
				samedom[v] = y
			}
		}
		bucket[p] = nil
	}
	for i := 1; i < reach; i++ {
		w := vertex[i]
		if samedom[w] != -1 {
			idom[w] = idom[samedom[w]]
		}
	}
	idom[root] = root

	t := &Tree{Root: root, Idom: idom}
	t.finish()
	return t
}

// PostDominatorsLT is DominatorsLT on the reverse graph.
func PostDominatorsLT(g interface {
	NumNodes() int
	Preds(i int) []int
}, exit int) *Tree {
	return DominatorsLT(Reverse(g), exit)
}
